(* Experiment harness: regenerates every table and figure of the
   paper's evaluation (§6) against the pipeline-simulator oracle.
   See DESIGN.md for the per-experiment index. *)

open Facile_uarch
open Facile_core
module Sim = Facile_sim.Sim
module Baselines = Facile_baselines.Baselines
module Suite = Facile_bhive.Suite
module Genblock = Facile_bhive.Genblock
module Stats = Facile_stats
module Report = Facile_report
module Engine = Facile_engine.Engine

let eval_seed = 2023
let train_seed = 77

(* One shared worker pool for every embarrassingly-parallel per-block
   loop below. Memoization is off: the harness caches analyzed samples
   itself, and variant predictions must not alias default ones. *)
let engine = lazy (Engine.create ~memoize:false ())

type mode = U | L

let mode_str = function U -> "U" | L -> "L"

(* Machine-readable benchmark records: one `BENCH {...}` line on stdout
   (greppable from CI logs) and the same JSON persisted to
   BENCH_<name>.json in $FACILE_BENCH_DIR (default: the working
   directory), so benchmark results survive as artifacts. *)
let bench_record name fields =
  let module Json = Facile_obs.Json in
  let line = Json.to_string (Json.Obj (("name", Json.Str name) :: fields)) in
  Printf.printf "BENCH %s\n" line;
  let dir =
    match Sys.getenv_opt "FACILE_BENCH_DIR" with
    | Some d when d <> "" -> d
    | _ -> Filename.current_dir_name
  in
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" name) in
  (* write-then-rename so a crash mid-bench can never leave a torn
     BENCH_<name>.json to poison the bench-perf regression gate: the
     rename is atomic, so readers see the old record or the new one,
     never a prefix *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc line;
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Cached evaluation data: per (arch, mode), the analyzed blocks and    *)
(* the oracle measurement.                                             *)

type sample = {
  case : Suite.case;
  block : Block.t;
  measured : float;
}

let corpus = lazy (Suite.corpus ~seed:eval_seed ~size:(Suite.default_size ()) ())

let data_cache : (Config.arch * mode, sample list) Hashtbl.t = Hashtbl.create 32

let samples cfg mode =
  let key = (cfg.Config.arch, mode) in
  match Hashtbl.find_opt data_cache key with
  | Some s -> s
  | None ->
    (* analyzing + simulating the corpus is by far the most expensive
       part of the harness and every case is independent: fan out *)
    let s =
      Engine.map_list (Lazy.force engine)
        (fun (c : Suite.case) ->
          let insts = match mode with U -> c.Suite.body | L -> c.Suite.loop in
          let block = Block.of_instructions cfg insts in
          match Sim.measure block with
          | m -> Some { case = c; block; measured = m }
          | exception Sim.Did_not_converge -> None)
        (Lazy.force corpus)
      |> List.filter_map Fun.id
    in
    Hashtbl.add data_cache key s;
    s

(* Trained models, per arch (trained on TP_U, like Ithemal). *)
let learned_cache : (Config.arch, Baselines.learned) Hashtbl.t =
  Hashtbl.create 16

let learned_model cfg =
  match Hashtbl.find_opt learned_cache cfg.Config.arch with
  | Some m -> m
  | None ->
    let train_corpus = Suite.corpus ~seed:train_seed ~size:300 () in
    let samples =
      List.filter_map
        (fun (c : Suite.case) ->
          let block = Block.of_instructions cfg c.Suite.body in
          match Sim.measure block with
          | m -> Some (block, m)
          | exception Sim.Did_not_converge -> None)
        train_corpus
    in
    let m = Baselines.train samples in
    Hashtbl.add learned_cache cfg.Config.arch m;
    m

(* ------------------------------------------------------------------ *)
(* Predictors                                                          *)

type predictor = {
  pname : string;
  notion : mode option; (* the throughput notion it is designed for *)
  predict : Config.t -> Block.t -> float;
}

let facile_predictor =
  { pname = "FACILE"; notion = None;
    predict = (fun _ b -> (Model.predict b).Model.cycles) }

let predictors =
  [ facile_predictor;
    { pname = "uiCA-like"; notion = None;
      predict = (fun _ b -> Sim.uica_like b) };
    { pname = "llvm-mca-like"; notion = Some L;
      predict = (fun _ b -> Baselines.llvm_mca_like b) };
    { pname = "OSACA-like"; notion = Some L;
      predict = (fun _ b -> Baselines.osaca_like b) };
    { pname = "IACA-like"; notion = Some L;
      predict = (fun _ b -> Baselines.iaca_like b) };
    { pname = "learned"; notion = Some U;
      predict = (fun cfg b -> Baselines.predict_learned (learned_model cfg) b) } ]

let accuracy pairs =
  let pairs =
    List.map
      (fun (m, p) -> (Stats.Error_metrics.round2 m, Stats.Error_metrics.round2 p))
      pairs
  in
  (Stats.Error_metrics.mape pairs, Stats.Kendall.tau_b pairs)

let eval_predictor cfg mode (p : predictor) =
  let s = samples cfg mode in
  (* warm any lazily-trained state (the learned model) on the calling
     domain before fanning out *)
  (match s with x :: _ -> ignore (p.predict cfg x.block) | [] -> ());
  accuracy
    (Engine.map_list (Lazy.force engine)
       (fun x -> (x.measured, p.predict cfg x.block))
       s)

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)

let table1 () =
  Report.Table.print ~title:"Table 1: Microarchitectures used for the evaluation"
    ~header:[ "uArch"; "Abbr."; "Released"; "CPU" ]
    (List.map
       (fun (c : Config.t) ->
         [ c.Config.name; c.Config.abbrev; string_of_int c.Config.released;
           c.Config.cpu ])
       Config.all)

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)

let table2 () =
  let rows = ref [] in
  List.iter
    (fun (cfg : Config.t) ->
      List.iter
        (fun p ->
          let mape_u, tau_u = eval_predictor cfg U p in
          let mape_l, tau_l = eval_predictor cfg L p in
          let mark m =
            (* parenthesize results on the notion the predictor was not
               designed for, like the gray cells in the paper *)
            match p.notion with
            | Some n when n <> m -> fun s -> "(" ^ s ^ ")"
            | _ -> fun s -> s
          in
          rows :=
            [ cfg.Config.abbrev; p.pname;
              mark U (Report.Table.pct mape_u);
              mark U (Report.Table.f4 tau_u);
              mark L (Report.Table.pct mape_l);
              mark L (Report.Table.f4 tau_l) ]
            :: !rows)
        predictors)
    Config.all;
  Report.Table.print
    ~title:
      "Table 2: Comparison of predictors on BHive_U and BHive_L \
       (vs. pipeline-simulator oracle)"
    ~header:
      [ "uArch"; "Predictor"; "MAPE(U)"; "Kendall(U)"; "MAPE(L)"; "Kendall(L)" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Table 3: component ablations                                        *)

let variant_rows =
  let open Model in
  [ "FACILE", default, `Both;
    "FACILE w/ SimplePredec", { default with simple_predec = true }, `U;
    "FACILE w/ SimpleDec", { default with simple_dec = true }, `U;
    "only Predec", { default with only = Some [ Predec ] }, `U;
    "only Dec", { default with only = Some [ Dec ] }, `U;
    "only DSB", { default with only = Some [ DSB ] }, `L;
    "only LSD", { default with only = Some [ LSD ] }, `L;
    "only Issue", { default with only = Some [ Issue ] }, `Both;
    "only Ports", { default with only = Some [ Ports ] }, `Both;
    "only Precedence", { default with only = Some [ Precedence ] }, `Both;
    "only Predec+Ports", { default with only = Some [ Predec; Ports ] }, `U;
    "only Precedence+Ports",
    { default with only = Some [ Precedence; Ports ] }, `Both;
    "FACILE w/o Predec", { default with without = [ Predec ] }, `U;
    "FACILE w/o Dec", { default with without = [ Dec ] }, `U;
    "FACILE w/o DSB", { default with without = [ DSB ] }, `L;
    "FACILE w/o LSD", { default with without = [ LSD ] }, `L;
    "FACILE w/o Issue", { default with without = [ Issue ] }, `Both;
    "FACILE w/o Ports", { default with without = [ Ports ] }, `Both;
    "FACILE w/o Precedence", { default with without = [ Precedence ] }, `Both ]

let table3 () =
  let archs = [ Config.RKL; Config.SKL; Config.SNB ] in
  let rows = ref [] in
  List.iter
    (fun arch ->
      let cfg = Config.by_arch arch in
      List.iter
        (fun (name, variant, applicable) ->
          let cell mode =
            let applies =
              match applicable, mode with
              | `Both, _ -> true
              | `U, U -> true
              | `L, L -> true
              | _ -> false
            in
            if not applies then ("", "")
            else begin
              let s = samples cfg mode in
              let predict b =
                match mode with
                | U -> (Model.predict_u ~variant b).Model.cycles
                | L -> (Model.predict_l ~variant b).Model.cycles
              in
              let mape, tau =
                accuracy
                  (Engine.map_list (Lazy.force engine)
                     (fun x -> (x.measured, predict x.block))
                     s)
              in
              (Report.Table.pct mape, Report.Table.f4 tau)
            end
          in
          let mu, tu = cell U in
          let ml, tl = cell L in
          rows := [ cfg.Config.abbrev; name; mu; tu; ml; tl ] :: !rows)
        variant_rows)
    archs;
  Report.Table.print
    ~title:"Table 3: Influence of components on the prediction accuracy"
    ~header:
      [ "uArch"; "Predictor"; "MAPE(U)"; "Kendall(U)"; "MAPE(L)"; "Kendall(L)" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Table 4: speedup when idealizing a single component                 *)

let table4 () =
  let comps =
    Model.[ Predec, "Predec"; Dec, "Dec"; Issue, "Issue"; Ports, "Ports";
            Precedence, "Precedence" ]
  in
  let rows =
    List.map
      (fun (cfg : Config.t) ->
        let s = samples cfg U in
        let sum f =
          List.fold_left ( +. ) 0.0 (Engine.map_list (Lazy.force engine) f s)
        in
        let base = sum (fun x -> (Model.predict_u x.block).Model.cycles) in
        cfg.Config.abbrev
        :: List.map
             (fun (c, _) ->
               let ideal =
                 sum (fun x ->
                     (Model.predict_u
                        ~variant:{ Model.default with Model.idealized = [ c ] }
                        x.block)
                       .Model.cycles)
               in
               Printf.sprintf "%.2f" (base /. Float.max ideal 1e-9))
             comps)
      Config.all
  in
  Report.Table.print
    ~title:"Table 4: Speedup when idealizing a single component (TP_U)"
    ~header:("uArch" :: List.map snd comps)
    rows

(* ------------------------------------------------------------------ *)
(* Figure 3: heatmaps measured vs. predicted (RKL, BHive_L, < 10 cyc)  *)

let fig3 () =
  let cfg = Config.by_arch Config.RKL in
  let s = samples cfg L in
  let plot name predict =
    let pairs =
      List.filter_map
        (fun x ->
          if x.measured < 10.0 then Some (x.measured, predict x.block)
          else None)
        s
    in
    Printf.printf "\nFigure 3 (%s, Rocket Lake, BHive_L):\n%s" name
      (Report.Heatmap.render ~max_value:10.0 ~bins:40 pairs)
  in
  plot "FACILE" (fun b -> (Model.predict_l b).Model.cycles);
  plot "uiCA-like" Sim.uica_like

(* ------------------------------------------------------------------ *)
(* Figure 4: distribution of per-component analysis times              *)

let time_one f =
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  Unix.gettimeofday () -. t0

let fig4 () =
  let cfg = Config.by_arch Config.SKL in
  let describe name times_us =
    [ name;
      Printf.sprintf "%.1f" (Stats.Descriptive.percentile 25.0 times_us);
      Printf.sprintf "%.1f" (Stats.Descriptive.median times_us);
      Printf.sprintf "%.1f" (Stats.Descriptive.mean times_us);
      Printf.sprintf "%.1f" (Stats.Descriptive.percentile 90.0 times_us) ]
  in
  let run mode =
    let s = samples cfg mode in
    let component name f =
      describe name
        (List.map (fun x -> 1e6 *. time_one (fun () -> f x.block)) s)
    in
    let mode_tag = match mode with U -> `Unrolled | L -> `Loop in
    let rows =
      [ describe "overhead (decode+analyze)"
          (List.map
             (fun x -> 1e6 *. time_one (fun () ->
                  Block.of_bytes cfg x.block.Block.bytes))
             s);
        component "Predec" (fun b -> Predec.throughput ~mode:mode_tag b);
        component "Dec" Dec.throughput;
        component "DSB" Dsb.throughput;
        component "LSD" Lsd.throughput;
        component "Issue" Issue.throughput;
        component "Ports" Ports.throughput;
        component "Precedence" Precedence.throughput ]
    in
    Report.Table.print
      ~title:
        (Printf.sprintf
           "Figure 4: per-component execution times under TP_%s (microseconds)"
           (mode_str mode))
      ~header:[ "component"; "p25"; "median"; "mean"; "p90" ]
      rows
  in
  run U;
  run L

(* ------------------------------------------------------------------ *)
(* Figure 5: end-to-end predictor latency comparison                   *)

let fig5 () =
  let cfg = Config.by_arch Config.SKL in
  let su = samples cfg U and sl = samples cfg L in
  let all = su @ sl in
  (* make sure the learned model is trained outside the timed region *)
  ignore (learned_model cfg);
  let timed name f =
    let t0 = Unix.gettimeofday () in
    List.iter (fun x -> ignore (f x.block)) all;
    let dt = Unix.gettimeofday () -. t0 in
    (name, dt, 1e6 *. dt /. float_of_int (List.length all))
  in
  let results =
    [ timed "FACILE" (fun b -> (Model.predict b).Model.cycles);
      timed "pipeline sim (oracle)" Sim.measure;
      timed "uiCA-like" Sim.uica_like;
      timed "llvm-mca-like" Baselines.llvm_mca_like;
      timed "OSACA-like" Baselines.osaca_like;
      timed "IACA-like" Baselines.iaca_like;
      timed "learned" (Baselines.predict_learned (learned_model cfg)) ]
  in
  let _, facile_t, _ = List.hd results in
  Report.Table.print
    ~title:
      (Printf.sprintf
         "Figure 5: efficiency on %d blocks (Skylake, BHive_U + BHive_L)"
         (List.length all))
    ~header:[ "predictor"; "total s"; "us/block"; "rel. to FACILE" ]
    (List.map
       (fun (name, dt, per) ->
         [ name; Printf.sprintf "%.3f" dt; Printf.sprintf "%.1f" per;
           Printf.sprintf "%.1fx" (dt /. facile_t) ])
       results)

(* Bechamel micro-benchmark: one Test.make per predictor on a
   representative block. *)
let microbench () =
  let open Bechamel in
  let cfg = Config.by_arch Config.SKL in
  let case = List.nth (Lazy.force corpus) 7 in
  let block = Block.of_instructions cfg case.Suite.loop in
  ignore (learned_model cfg);
  let learned = learned_model cfg in
  let mk name f = Test.make ~name (Staged.stage (fun () -> ignore (f block))) in
  let tests =
    Test.make_grouped ~name:"predictors" ~fmt:"%s %s"
      [ mk "facile" (fun b -> (Model.predict b).Model.cycles);
        mk "sim-oracle" Sim.measure;
        mk "uica-like" Sim.uica_like;
        mk "llvm-mca-like" Baselines.llvm_mca_like;
        mk "osaca-like" Baselines.osaca_like;
        mk "iaca-like" Baselines.iaca_like;
        mk "learned" (Baselines.predict_learned learned) ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg' =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw_results = Benchmark.all cfg' instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    let results = Analyze.merge ols instances results in
    results
  in
  let results = benchmark () in
  Printf.printf "\nBechamel micro-benchmark (ns per prediction, one block):\n";
  Hashtbl.iter
    (fun _k v ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-28s %12.0f ns\n" name est
          | _ -> ())
        v)
    results

(* ------------------------------------------------------------------ *)
(* Figure 6: Sankey of bottleneck evolution (TP_U)                     *)

let fig6 () =
  let chain = [ Config.SNB; Config.HSW; Config.CLX; Config.RKL ] in
  let bottleneck cfg (c : Suite.case) =
    let b = Block.of_instructions cfg c.Suite.body in
    Model.component_name (Model.bottleneck b)
  in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  List.iter
    (fun (a1, a2) ->
      let c1 = Config.by_arch a1 and c2 = Config.by_arch a2 in
      let keys =
        Engine.map_list (Lazy.force engine)
          (fun case -> (bottleneck c1 case, bottleneck c2 case))
          (Lazy.force corpus)
      in
      let flows = Hashtbl.create 16 in
      List.iter
        (fun k ->
          Hashtbl.replace flows k
            (1 + Option.value ~default:0 (Hashtbl.find_opt flows k)))
        keys;
      let flow_list =
        Hashtbl.fold (fun (s, d) n acc -> (s, d, n) :: acc) flows []
      in
      Printf.printf "\nFigure 6: bottlenecks %s -> %s (TP_U)\n%s"
        c1.Config.abbrev c2.Config.abbrev
        (Report.Sankey.render ~from_label:c1.Config.abbrev
           ~to_label:c2.Config.abbrev flow_list))
    (pairs chain)

(* ------------------------------------------------------------------ *)
(* Ablations of Facile's own design choices (see DESIGN.md)            *)

let ablations () =
  let cfg = Config.by_arch Config.SKL in
  let s = samples cfg L @ samples cfg U in
  (* 1. Ports: pairwise heuristic vs exhaustive subset enumeration *)
  let t0 = Unix.gettimeofday () in
  let fast = List.map (fun x -> Ports.throughput x.block) s in
  let t_fast = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let exact = List.map (fun x -> Ports.throughput_exhaustive x.block) s in
  let t_exact = Unix.gettimeofday () -. t0 in
  let agree =
    List.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) fast exact
  in
  (* 2. Precedence: Howard vs Lawler *)
  let t0 = Unix.gettimeofday () in
  let howard = List.map (fun x -> Precedence.throughput x.block) s in
  let t_howard = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let lawler = List.map (fun x -> Precedence.throughput_lawler x.block) s in
  let t_lawler = Unix.gettimeofday () -. t0 in
  let prec_agree =
    List.for_all2 (fun a b -> abs_float (a -. b) < 1e-5) howard lawler
  in
  (* 3. Full vs simple front-end component models: accuracy from Table 3,
     timing here *)
  let t0 = Unix.gettimeofday () in
  List.iter (fun x -> ignore (Predec.throughput ~mode:`Unrolled x.block)) s;
  let t_predec = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  List.iter (fun x -> ignore (Predec.simple x.block)) s;
  let t_spredec = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  List.iter (fun x -> ignore (Dec.throughput x.block)) s;
  let t_dec = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  List.iter (fun x -> ignore (Dec.simple x.block)) s;
  let t_sdec = Unix.gettimeofday () -. t0 in
  let us t = Printf.sprintf "%.1f" (1e6 *. t /. float_of_int (List.length s)) in
  Report.Table.print
    ~title:
      (Printf.sprintf
         "Ablations: design choices on %d blocks (Skylake); accuracy \
          impact is in Table 3"
         (List.length s))
    ~header:[ "design choice"; "us/block"; "alternative"; "us/block ";
              "same bound?" ]
    [ [ "Ports pairwise"; us t_fast; "exhaustive subsets"; us t_exact;
        string_of_bool agree ];
      [ "Precedence Howard"; us t_howard; "Lawler bin-search"; us t_lawler;
        string_of_bool prec_agree ];
      [ "Predec full"; us t_predec; "SimplePredec"; us t_spredec; "no" ];
      [ "Dec Algorithm 1"; us t_dec; "SimpleDec"; us t_sdec; "no" ] ]

(* ------------------------------------------------------------------ *)
(* Region extension demo (paper §7 future work)                        *)

let region () =
  let cfg = Config.by_arch Config.SKL in
  let parse s =
    match Facile_x86.Asm.parse_block s with
    | Ok l -> l
    | Error m -> failwith m
  in
  (* an if/else diamond: hot arithmetic path, cold shuffle path *)
  let hot =
    parse "imul rax, rbx\nadd rax, rcx\nadd rdx, 8\ncmp rdx, rsi\njne -20"
  in
  let cold =
    parse "pshufd xmm0, xmm1, 0x1b\npshufd xmm2, xmm0, 0x1b\nadd rdx, 8\njne -16"
  in
  let r =
    Region.analyze cfg
      [ { Region.insts = hot; weight = 0.9 };
        { Region.insts = cold; weight = 0.1 } ]
  in
  Printf.printf
    "\nRegion analysis (90%% hot / 10%% cold):\n\
    \  naive weighted sum:     %.2f cycles\n\
    \  aggregated region bound: %.2f cycles (bottleneck: %s)\n"
    r.Region.naive r.Region.cycles
    (Model.component_name r.Region.bottleneck);
  List.iter
    (fun (c, v) ->
      Printf.printf "    %-11s %.2f\n" (Model.component_name c) v)
    r.Region.component_values

(* ------------------------------------------------------------------ *)
(* Engine: sequential vs. parallel batch prediction throughput         *)

let engine_bench () =
  let cfg = Config.by_arch Config.SKL in
  let cases = Suite.corpus ~seed:eval_seed ~size:(Suite.default_size ()) () in
  let blocks =
    List.concat_map
      (fun (c : Suite.case) ->
        [ Block.of_instructions cfg c.Suite.body;
          Block.of_instructions cfg c.Suite.loop ])
      cases
  in
  (* duplicate the corpus, like a real trace, so memoization has
     repeats to exploit *)
  let blocks = blocks @ blocks in
  let n = List.length blocks in
  let run ~workers ~memoize =
    Engine.with_pool ~workers ~memoize (fun pool ->
        let t0 = Unix.gettimeofday () in
        let preds = Engine.predict_batch pool ~mode:`Auto blocks in
        let dt = Unix.gettimeofday () -. t0 in
        ( List.map (fun (p : Model.prediction) -> p.Model.cycles) preds,
          dt, Engine.memo_stats pool ))
  in
  let workers = max 1 (Domain.recommended_domain_count ()) in
  let seq, t_seq, _ = run ~workers:1 ~memoize:false in
  let par, t_par, _ = run ~workers ~memoize:false in
  let memo, t_memo, (hits, misses) = run ~workers ~memoize:true in
  let identical =
    List.for_all2 Float.equal seq par && List.for_all2 Float.equal seq memo
  in
  let rate t = float_of_int n /. Float.max t 1e-9 in
  Report.Table.print
    ~title:
      (Printf.sprintf
         "Engine: batch prediction of %d blocks (Skylake, %d worker%s)" n
         workers
         (if workers = 1 then "" else "s"))
    ~header:[ "configuration"; "total s"; "blocks/s"; "speedup" ]
    [ [ "sequential (1 worker)"; Printf.sprintf "%.3f" t_seq;
        Printf.sprintf "%.0f" (rate t_seq); "1.00x" ];
      [ Printf.sprintf "parallel (%d workers)" workers;
        Printf.sprintf "%.3f" t_par; Printf.sprintf "%.0f" (rate t_par);
        Printf.sprintf "%.2fx" (t_seq /. Float.max t_par 1e-9) ];
      [ Printf.sprintf "parallel + memo (%d hits, %d unique)" hits misses;
        Printf.sprintf "%.3f" t_memo; Printf.sprintf "%.0f" (rate t_memo);
        Printf.sprintf "%.2fx" (t_seq /. Float.max t_memo 1e-9) ] ];
  Printf.printf "predictions bit-identical across configurations: %b\n"
    identical;
  let module Json = Facile_obs.Json in
  bench_record "engine"
    [ "blocks", Json.Int n; "workers", Json.Int workers;
      "seq_blocks_per_sec", Json.Float (rate t_seq);
      "par_blocks_per_sec", Json.Float (rate t_par);
      "memo_blocks_per_sec", Json.Float (rate t_memo);
      "speedup", Json.Float (t_seq /. Float.max t_par 1e-9);
      "memo_hits", Json.Int hits; "identical", Json.Bool identical ]

(* ------------------------------------------------------------------ *)
(* Notion gap: TP_U vs TP_L (the §3.1 motivation)                      *)

let notion () =
  let rows =
    List.map
      (fun (cfg : Config.t) ->
        let pairs =
          Engine.map_list (Lazy.force engine)
            (fun (c : Suite.case) ->
              let bu = Block.of_instructions cfg c.Suite.body in
              let bl = Block.of_instructions cfg c.Suite.loop in
              let u = (Model.predict_u bu).Model.cycles in
              let l = (Model.predict_l bl).Model.cycles in
              if u > 0.0 && l > 0.0 then Some (u, l) else None)
            (Lazy.force corpus)
          |> List.filter_map Fun.id
        in
        let ratios = List.map (fun (u, l) -> u /. l) pairs in
        let u_worse =
          List.length (List.filter (fun (u, l) -> u > l +. 1e-9) pairs)
        in
        let l_worse =
          List.length (List.filter (fun (u, l) -> l > u +. 1e-9) pairs)
        in
        [ cfg.Config.abbrev;
          Printf.sprintf "%.3f" (Stats.Descriptive.geomean ratios);
          Printf.sprintf "%d" u_worse;
          Printf.sprintf "%d" l_worse;
          string_of_int (List.length pairs) ])
      Config.all
  in
  Report.Table.print
    ~title:
      "Notion gap: unrolled (TP_U) vs. loop (TP_L) predictions per uarch \
       (geomean of TP_U/TP_L; counts of blocks where each notion is slower)"
    ~header:[ "uArch"; "geomean U/L"; "#U slower"; "#L slower"; "blocks" ]
    rows

(* ------------------------------------------------------------------ *)
(* Serving mode vs one-shot CLI processes (the point of `facile        *)
(* serve`: callers stop paying process startup per prediction)         *)

let obs_bench () =
  let module Serve = Facile_engine.Serve in
  let module Json = Facile_obs.Json in
  let cfg = Config.by_arch Config.SKL in
  let cases = Suite.corpus ~seed:eval_seed ~size:(Suite.default_size ()) () in
  let hex_of_block (b : Block.t) =
    String.concat ""
      (List.init (String.length b.Block.bytes) (fun i ->
           Printf.sprintf "%02x" (Char.code b.Block.bytes.[i])))
  in
  let blocks =
    List.concat_map
      (fun (c : Suite.case) ->
        [ Block.of_instructions cfg c.Suite.body;
          Block.of_instructions cfg c.Suite.loop ])
      cases
  in
  (* duplicate the corpus, like a real trace, so the service's memo
     cache has repeats to exploit *)
  let blocks = blocks @ blocks in
  let requests =
    List.mapi
      (fun i b ->
        Json.to_string
          (Json.Obj
             [ "id", Json.Int i; "arch", Json.Str "SKL";
               "mode", Json.Str "auto"; "hex", Json.Str (hex_of_block b) ]))
      blocks
  in
  let n = List.length requests in
  let serve = Serve.create ~workers:1 () in
  let t0 = Unix.gettimeofday () in
  List.iter (fun line -> ignore (Serve.handle_line serve line)) requests;
  let dt_serve = Unix.gettimeofday () -. t0 in
  let stats = Serve.stats_json serve in
  Serve.shutdown serve;
  let stat_float path dflt =
    match
      List.fold_left
        (fun acc key -> Option.bind acc (Json.member key))
        (Some stats) path
    with
    | Some v -> Option.value ~default:dflt (Json.float_opt v)
    | None -> dflt
  in
  let p50 = stat_float [ "latency_us"; "p50" ] 0.0 in
  let p99 = stat_float [ "latency_us"; "p99" ] 0.0 in
  let hit_rate = stat_float [ "cache"; "hit_rate" ] 0.0 in
  let served_rps = float_of_int n /. Float.max dt_serve 1e-9 in
  (* one-shot baseline: a fresh `facile predict` process per request,
     which is what callers do without a serving mode *)
  let facile_bin =
    let candidate =
      Filename.concat
        (Filename.dirname Sys.executable_name)
        (Filename.concat ".." (Filename.concat "bin" "facile.exe"))
    in
    if Sys.file_exists candidate then Some candidate else None
  in
  let oneshot_k = 20 in
  let oneshot_rps =
    match facile_bin with
    | None ->
      print_endline "one-shot baseline skipped: bin/facile.exe not built";
      0.0
    | Some bin ->
      let sample = hex_of_block (List.hd blocks) in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to oneshot_k do
        ignore
          (Sys.command
             (Printf.sprintf
                "printf '%s' | %s predict -x -a SKL --json >/dev/null 2>&1"
                sample (Filename.quote bin)))
      done;
      float_of_int oneshot_k /. Float.max (Unix.gettimeofday () -. t0) 1e-9
  in
  let speedup =
    if oneshot_rps > 0.0 then served_rps /. oneshot_rps else 0.0
  in
  Report.Table.print
    ~title:
      (Printf.sprintf
         "Serving mode: %d NDJSON requests through one persistent service \
          vs one-shot CLI processes (Skylake)"
         n)
    ~header:[ "configuration"; "requests/s"; "p50 us"; "p99 us" ]
    [ [ "facile serve (persistent)"; Printf.sprintf "%.0f" served_rps;
        Printf.sprintf "%.1f" p50; Printf.sprintf "%.1f" p99 ];
      [ "one-shot CLI process";
        (if oneshot_rps > 0.0 then Printf.sprintf "%.0f" oneshot_rps
         else "n/a");
        "-"; "-" ] ];
  Printf.printf "cache hit rate: %.2f; speedup vs one-shot: %s\n" hit_rate
    (if speedup > 0.0 then Printf.sprintf "%.1fx" speedup else "n/a");
  bench_record "obs"
    [ "requests", Json.Int n; "served_rps", Json.Float served_rps;
      "oneshot_rps", Json.Float oneshot_rps;
      "speedup", Json.Float speedup; "p50_us", Json.Float p50;
      "p99_us", Json.Float p99; "cache_hit_rate", Json.Float hit_rate ]

(* ------------------------------------------------------------------ *)
(* perf: hot-path ns/block per arch, fast pipeline vs the reference    *)
(* (pre-flattening) pipeline, with a CI regression gate against the    *)
(* committed bench/baseline_perf.json.                                 *)

exception Perf_regression of string

let perf () =
  let module Json = Facile_obs.Json in
  let cases = Suite.corpus ~seed:eval_seed ~size:100 () in
  let reps = 5 in
  let measure f blocks =
    (* one untimed pass warms the arenas and the memo-free caches; the
       fastest of [reps] timed passes is reported, so transient
       scheduler interference cannot fake a regression *)
    List.iter (fun b -> ignore (f b)) blocks;
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      List.iter (fun b -> ignore (f b)) blocks;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best *. 1e9 /. float_of_int (List.length blocks)
  in
  let rows =
    List.map
      (fun (cfg : Config.t) ->
        let blocks =
          List.map
            (fun (c : Suite.case) -> Block.of_instructions cfg c.Suite.loop)
            cases
        in
        let fast = measure (fun b -> Model.predict b) blocks in
        let refn = measure (fun b -> Model.predict_reference b) blocks in
        (cfg, fast, refn, refn /. Float.max fast 1e-9))
      Config.all
  in
  Report.Table.print
    ~title:
      (Printf.sprintf
         "Hot path: ns per predicted block (loop notion, %d blocks x %d reps)"
         (List.length cases) reps)
    ~header:[ "uArch"; "ns/block"; "reference ns/block"; "speedup" ]
    (List.map
       (fun (cfg, fast, refn, s) ->
         [ cfg.Config.abbrev; Printf.sprintf "%.0f" fast;
           Printf.sprintf "%.0f" refn; Printf.sprintf "%.2fx" s ])
       rows);
  List.iter
    (fun (cfg, fast, _, s) ->
      Printf.printf "%s ns/block %.0f (%.2fx vs reference)\n" cfg.Config.abbrev
        fast s)
    rows;
  bench_record "perf"
    [ "corpus", Json.Int (List.length cases);
      "reps", Json.Int reps;
      ( "arches",
        Json.Arr
          (List.map
             (fun (cfg, fast, refn, s) ->
               Json.Obj
                 [ "arch", Json.Str cfg.Config.abbrev;
                   "ns_per_block", Json.Float fast;
                   "ref_ns_per_block", Json.Float refn;
                   "speedup", Json.Float s ])
             rows) ) ];
  (* Regression gate: each arch's ns/block may exceed its committed
     baseline by at most 20%.  FACILE_PERF_BASELINE overrides the
     baseline path; an absent file skips the gate (fresh checkouts
     regenerate it with `main.exe perf`). *)
  let baseline_path =
    match Sys.getenv_opt "FACILE_PERF_BASELINE" with
    | Some p when p <> "" -> p
    | _ -> "bench/baseline_perf.json"
  in
  if not (Sys.file_exists baseline_path) then
    Printf.printf "perf gate skipped: no baseline at %s\n" baseline_path
  else begin
    let ic = open_in baseline_path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let baseline =
      match Json.parse text with
      | Ok j -> j
      | Error e -> raise (Perf_regression ("unreadable baseline: " ^ e))
    in
    let baseline_ns arch =
      match Json.member "arches" baseline with
      | Some (Json.Arr entries) ->
        List.find_map
          (fun e ->
            match Json.member "arch" e with
            | Some (Json.Str a) when a = arch ->
              Option.bind (Json.member "ns_per_block" e) Json.float_opt
            | _ -> None)
          entries
      | _ -> None
    in
    let failures =
      List.filter_map
        (fun ((cfg : Config.t), fast, _, _) ->
          match baseline_ns cfg.Config.abbrev with
          | Some base when fast > base *. 1.2 ->
            Some
              (Printf.sprintf "%s: %.0f ns/block > baseline %.0f x 1.2"
                 cfg.Config.abbrev fast base)
          | _ -> None)
        rows
    in
    match failures with
    | [] -> Printf.printf "perf gate passed against %s\n" baseline_path
    | fs -> raise (Perf_regression (String.concat "; " fs))
  end

(* ------------------------------------------------------------------ *)
(* Worker-scaling bench: contention behavior of the serving cache      *)

exception Scale_regression of string

(* N driver domains hammer [Engine.predict] on one shared pool
   (workers = 1, so all parallelism is the drivers' — exactly the
   shape of N TCP sessions sharing a service).  Hit-heavy: a prewarmed
   corpus, so every request is pure cache traffic and measures shard
   lock contention.  Miss-heavy: disjoint cold keys per driver, so
   every request runs the model and the cache only absorbs inserts.
   Fastest-of-[reps] wall time per driver count -> req/s, plus a
   regression gate requiring hit-heavy throughput to at least double
   from 1 to 4 drivers on machines with the cores to show it. *)
let scale () =
  let module Json = Facile_obs.Json in
  let cfg = Config.by_arch Config.SKL in
  let reps = 5 in
  let driver_counts = [ 1; 2; 4; 8 ] in
  let hit_iters = 50_000 in
  let blocks_of ~seed ~size =
    Array.of_list
      (List.map
         (fun (c : Suite.case) -> Block.of_instructions cfg c.Suite.loop)
         (Suite.corpus ~seed ~size ()))
  in
  let hit_blocks = blocks_of ~seed:eval_seed ~size:256 in
  let miss_blocks = blocks_of ~seed:train_seed ~size:4096 in
  (* run [body 0..drivers-1] concurrently, return wall seconds *)
  let drive drivers body =
    let t0 = Unix.gettimeofday () in
    let rest =
      List.init (drivers - 1) (fun i -> Domain.spawn (fun () -> body (i + 1)))
    in
    body 0;
    List.iter Domain.join rest;
    Unix.gettimeofday () -. t0
  in
  let fastest f =
    let best = ref infinity in
    for _ = 1 to reps do
      let dt = f () in
      if dt < !best then best := dt
    done;
    !best
  in
  let hit_rps drivers =
    Engine.with_pool ~workers:1 (fun pool ->
        Array.iter
          (fun b -> ignore (Engine.predict pool ~mode:`Auto b))
          hit_blocks;
        let n = Array.length hit_blocks in
        let best =
          fastest (fun () ->
              drive drivers (fun idx ->
                  (* per-driver stride so drivers do not touch the same
                     shard in lockstep *)
                  let off = idx * 7919 in
                  for i = 0 to hit_iters - 1 do
                    ignore
                      (Engine.predict pool ~mode:`Auto
                         hit_blocks.((off + i) mod n))
                  done))
        in
        float_of_int (drivers * hit_iters) /. Float.max best 1e-9)
  in
  let miss_rps drivers =
    let per = Array.length miss_blocks / drivers in
    let best =
      (* fresh pool per rep: every key cold again *)
      fastest (fun () ->
          Engine.with_pool ~workers:1 (fun pool ->
              drive drivers (fun idx ->
                  for i = idx * per to ((idx + 1) * per) - 1 do
                    ignore (Engine.predict pool ~mode:`Auto miss_blocks.(i))
                  done)))
    in
    float_of_int (per * drivers) /. Float.max best 1e-9
  in
  (* shard-count insensitivity: the sharded cache must not change a
     single bit of any prediction vs the single-shard configuration *)
  let sample = Array.to_list (Array.sub miss_blocks 0 256) in
  let with_shards cache_shards =
    Engine.with_pool ~workers:1 ~cache_shards (fun pool ->
        Engine.predict_batch pool ~mode:`Auto sample)
  in
  let identical =
    List.for_all2
      (fun (a : Model.prediction) (b : Model.prediction) ->
        Float.equal a.Model.cycles b.Model.cycles
        && List.for_all2
             (fun (c1, v1) (c2, v2) -> c1 = c2 && Float.equal v1 v2)
             a.Model.values b.Model.values)
      (with_shards 1) (with_shards 16)
  in
  if not identical then
    raise (Scale_regression "predictions diverge across shard counts");
  let rows = List.map (fun d -> (d, hit_rps d, miss_rps d)) driver_counts in
  let hit1 =
    match rows with (_, h, _) :: _ -> h | [] -> assert false
  in
  let cores = Domain.recommended_domain_count () in
  Report.Table.print
    ~title:
      (Printf.sprintf
         "Serving-cache scaling: req/s by driver domains (fastest of %d, %d \
          core(s))"
         reps cores)
    ~header:[ "drivers"; "hit-heavy req/s"; "miss-heavy req/s"; "hit speedup" ]
    (List.map
       (fun (d, hit, miss) ->
         [ string_of_int d; Printf.sprintf "%.0f" hit;
           Printf.sprintf "%.0f" miss;
           Printf.sprintf "%.2fx" (hit /. Float.max hit1 1e-9) ])
       rows);
  let speedup4 =
    match List.find_opt (fun (d, _, _) -> d = 4) rows with
    | Some (_, h4, _) -> h4 /. Float.max hit1 1e-9
    | None -> 0.0
  in
  Printf.printf
    "scale parallel efficiency: 1->4 drivers %.2fx (%.0f%% of linear)\n"
    speedup4
    (speedup4 /. 4.0 *. 100.0);
  bench_record "scale"
    [ "cores", Json.Int cores;
      "reps", Json.Int reps;
      "hit_iters_per_driver", Json.Int hit_iters;
      "hit_corpus", Json.Int (Array.length hit_blocks);
      "miss_corpus", Json.Int (Array.length miss_blocks);
      "identical_across_shards", Json.Bool identical;
      "speedup_1_to_4_hit", Json.Float speedup4;
      ( "rows",
        Json.Arr
          (List.map
             (fun (d, hit, miss) ->
               Json.Obj
                 [ "drivers", Json.Int d;
                   "hit_rps", Json.Float hit;
                   "miss_rps", Json.Float miss ])
             rows) ) ];
  (* Regression gate: 4 concurrent drivers must at least double the
     1-driver hit-heavy throughput.  Meaningless without the cores to
     run 4 drivers in parallel, so it self-disables there (the CI
     bench-scale job runs on 4-vCPU runners).  FACILE_SCALE_GATE=0/1
     forces it off/on; FACILE_SCALE_MIN overrides the 2.0 factor. *)
  let gate_on =
    match Sys.getenv_opt "FACILE_SCALE_GATE" with
    | Some "0" -> false
    | Some "1" -> true
    | _ -> cores >= 4
  in
  let min_factor =
    match
      Option.bind (Sys.getenv_opt "FACILE_SCALE_MIN") float_of_string_opt
    with
    | Some f -> f
    | None -> 2.0
  in
  if not gate_on then
    Printf.printf
      "scale gate skipped: %d core(s) available, need 4 (FACILE_SCALE_GATE=1 \
       forces)\n"
      cores
  else if speedup4 < min_factor then
    raise
      (Scale_regression
         (Printf.sprintf
            "hit-heavy throughput scaled %.2fx from 1 to 4 drivers, required \
             %.2fx"
            speedup4 min_factor))
  else
    Printf.printf "scale gate passed: %.2fx >= %.2fx\n" speedup4 min_factor
