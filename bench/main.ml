(* Entry point: regenerate the paper's tables and figures.
   Usage: main.exe [table1|table2|table3|table4|fig3|fig4|fig5|fig6|microbench]...
   With no arguments, everything runs in paper order.
   FACILE_CORPUS_SIZE controls the corpus size (default 500). *)

let experiments =
  [ "table1", Experiments.table1;
    "table2", Experiments.table2;
    "table3", Experiments.table3;
    "table4", Experiments.table4;
    "fig3", Experiments.fig3;
    "fig4", Experiments.fig4;
    "fig5", Experiments.fig5;
    "fig6", Experiments.fig6;
    "microbench", Experiments.microbench;
    "engine", Experiments.engine_bench;
    "obs", Experiments.obs_bench;
    "perf", Experiments.perf;
    "ablations", Experiments.ablations;
    "region", Experiments.region;
    "notion", Experiments.notion;
    "scale", Experiments.scale ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        let t0 = Unix.gettimeofday () in
        f ();
        Printf.printf "\n[%s done in %.1fs]\n%!" name
          (Unix.gettimeofday () -. t0)
      | None ->
        Printf.eprintf
          "unknown experiment %S; available: %s\n" name
          (String.concat ", " (List.map fst experiments));
        exit 1)
    requested
