open Facile_uarch

let of_issued (b : Block.t) n =
  float_of_int n /. float_of_int b.Block.cfg.Config.issue_width

let throughput (b : Block.t) = of_issued b (Block.issued_uops b)
let throughput_ref (b : Block.t) = of_issued b (Block.issued_uops_ref b)
