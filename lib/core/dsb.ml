open Facile_uarch

let of_fused (b : Block.t) n =
  if n = 0 then 0.0
  else begin
    let w = b.Block.cfg.Config.dsb_width in
    if b.Block.len < 32 then float_of_int ((n + w - 1) / w)
    else float_of_int n /. float_of_int w
  end

let throughput (b : Block.t) = of_fused b (Block.fused_uops b)
let throughput_ref (b : Block.t) = of_fused b (Block.fused_uops_ref b)
