(** The decoded stream buffer (µop cache) component (paper §4.5):
    fused-domain µops over the DSB width, with a whole-cycle round-up
    for blocks shorter than 32 bytes (after a branch no further µops
    from the same 32-byte window can be delivered in the same cycle). *)

val throughput : Block.t -> float

(** Same bound from the reference (list-fold) µop count; kept for the
    perf bench's pre-flattening lane. *)
val throughput_ref : Block.t -> float
