(** The issue (rename) component (paper §4.7): fused-domain µops after
    unlamination, divided by the issue width. *)

val throughput : Block.t -> float

(** Same bound from the reference (list-fold) µop count; kept for the
    perf bench's pre-flattening lane. *)
val throughput_ref : Block.t -> float
