(* Domain-local scratch buffers for the prediction hot path.

   Every component predictor used to allocate its working arrays per
   call; the arena keeps one growable buffer per use site, owned by
   the domain (so the engine's worker domains never share or race on
   scratch).  Buffers only grow; callers must treat the contents as
   garbage on entry and not hold a buffer across a call into another
   component that uses the same field. *)

type t = {
  (* Predec: per-16-byte-chunk counters *)
  mutable predec_last : int array;
  mutable predec_opc : int array;
  mutable predec_lcp : int array;
  (* Dec: per-iteration complex-decoder counts, first-decoder table *)
  mutable dec_complex : int array;
  mutable dec_first : int array;
  (* Ports: deduplicated masks and their pairwise unions *)
  mutable ports_dedup : Facile_uarch.Port.t array;
  mutable ports_pairs : Facile_uarch.Port.t array;
  (* Ports: multiplicity of each deduplicated mask *)
  mutable ports_cnt : int array;
  (* Precedence: node-id table (generation-stamped so it needs no
     per-call clear), flattened per-logical read/write resource codes,
     write-set bitmasks, and edge-push buffers *)
  mutable prec_nodes : int array;
  mutable prec_gen : int array;
  mutable prec_generation : int;
  mutable prec_roff : int array;
  mutable prec_rcode : int array;
  mutable prec_rlat : int array;
  mutable prec_woff : int array;
  mutable prec_wcode : int array;
  mutable prec_wlo : int array;
  mutable prec_whi : int array;
  mutable prec_src : int array;
  mutable prec_dst : int array;
  mutable prec_w : float array;
  mutable prec_cnt : int array;
  (* Model: the seven component bounds of the current prediction *)
  vals : float array;
}

let create () =
  { predec_last = [||];
    predec_opc = [||];
    predec_lcp = [||];
    dec_complex = [||];
    dec_first = [||];
    ports_dedup = [||];
    ports_pairs = [||];
    ports_cnt = [||];
    prec_nodes = [||];
    prec_gen = [||];
    prec_generation = 0;
    prec_roff = [||];
    prec_rcode = [||];
    prec_rlat = [||];
    prec_woff = [||];
    prec_wcode = [||];
    prec_wlo = [||];
    prec_whi = [||];
    prec_src = [||];
    prec_dst = [||];
    prec_w = [||];
    prec_cnt = [||];
    vals = Array.make 7 0.0 }

let key = Domain.DLS.new_key create

let get () = Domain.DLS.get key

(* Round the requested size up so repeated growth is amortized. *)
let cap n =
  let c = ref 16 in
  while !c < n do
    c := !c * 2
  done;
  !c

let ints buf n = if Array.length buf >= n then buf else Array.make (cap n) 0

let ports buf n =
  if Array.length buf >= n then buf
  else Array.make (cap n) Facile_uarch.Port.empty

let floats buf n = if Array.length buf >= n then buf else Array.make (cap n) 0.0
