open Facile_x86

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let simple (b : Block.t) = float_of_int b.Block.len /. 16.0

(* resolved once: recording is lock-free, only the first lookup locks *)
let span = Facile_obs.Obs.histogram "model.predec"

(* Shared cycle computation over the per-chunk counters: the byte walk
   differs between the fast (array) and reference (list) paths, the
   arithmetic does not. *)
let total_cycles ~width ~n ~u last_count opcode_count lcp_count =
  let cyc_nlcp bi =
    let c = last_count.(bi) + opcode_count.(bi) in
    (c + width - 1) / width
  in
  let total = ref 0 in
  for bi = 0 to n - 1 do
    let prev = (bi + n - 1) mod n in
    let lcp_cycles =
      max 0 ((3 * lcp_count.(bi)) - (cyc_nlcp prev - 1))
    in
    total := !total + cyc_nlcp bi + lcp_cycles
  done;
  float_of_int !total /. float_of_int u

let params ~mode (b : Block.t) =
  let l = b.Block.len in
  let width = b.Block.cfg.Facile_uarch.Config.predecode_width in
  let u =
    match mode with
    | `Unrolled -> 16 / gcd l 16
    | `Loop -> 1
  in
  let n =
    match mode with
    | `Unrolled -> u * l / 16
    | `Loop -> (l + 15) / 16
  in
  (l, width, u, n)

(* Fast path: entry byte positions from the flat arrays, chunk counters
   in the arena. Allocation-free after arena warm-up. *)
let throughput_in (a : Arena.t) ~mode (b : Block.t) =
  Facile_obs.Obs.timed span @@ fun () ->
  let l = b.Block.len in
  if l = 0 then 0.0
  else begin
    let _, width, u, n = params ~mode b in
    let last_count = Arena.ints a.Arena.predec_last n in
    a.Arena.predec_last <- last_count;
    let opcode_count = Arena.ints a.Arena.predec_opc n in
    a.Arena.predec_opc <- opcode_count;
    let lcp_count = Arena.ints a.Arena.predec_lcp n in
    a.Arena.predec_lcp <- lcp_count;
    Array.fill last_count 0 n 0;
    Array.fill opcode_count 0 n 0;
    Array.fill lcp_count 0 n 0;
    let fl = b.Block.flat in
    let e_last = fl.Block.e_last in
    let e_opc = fl.Block.e_opc in
    let e_lcp = fl.Block.e_lcp in
    let n_ent = Array.length e_last in
    for copy = 0 to u - 1 do
      let base = copy * l in
      for k = 0 to n_ent - 1 do
        let last_b = (base + e_last.(k)) / 16 in
        let opc_b = (base + e_opc.(k)) / 16 in
        last_count.(last_b) <- last_count.(last_b) + 1;
        if opc_b <> last_b then
          opcode_count.(opc_b) <- opcode_count.(opc_b) + 1;
        if e_lcp.(k) then lcp_count.(opc_b) <- lcp_count.(opc_b) + 1
      done
    done;
    total_cycles ~width ~n ~u last_count opcode_count lcp_count
  end

let throughput ~mode b = throughput_in (Arena.get ()) ~mode b

(* Reference path: the pre-flattening implementation (per-call arrays,
   entry-list walk), kept for differential tests and the perf bench. *)
let throughput_ref ~mode (b : Block.t) =
  Facile_obs.Obs.timed span @@ fun () ->
  let l = b.Block.len in
  if l = 0 then 0.0
  else begin
    let _, width, u, n = params ~mode b in
    let last_count = Array.make n 0 in
    let opcode_count = Array.make n 0 in
    let lcp_count = Array.make n 0 in
    for copy = 0 to u - 1 do
      List.iter
        (fun (e : Block.entry) ->
          let lay = e.Block.layout in
          let last = (copy * l) + lay.Encode.off + lay.Encode.len - 1 in
          let opc = (copy * l) + lay.Encode.nominal_opcode_off in
          let last_b = last / 16 in
          let opc_b = opc / 16 in
          last_count.(last_b) <- last_count.(last_b) + 1;
          if opc_b <> last_b then
            opcode_count.(opc_b) <- opcode_count.(opc_b) + 1;
          if lay.Encode.lcp then lcp_count.(opc_b) <- lcp_count.(opc_b) + 1)
        b.Block.entries
    done;
    total_cycles ~width ~n ~u last_count opcode_count lcp_count
  end
