(** The decoder component (paper §4.4, Algorithm 1).

    Simulates the allocation of (logical) instructions to the one
    complex + several simple decoders until the first instruction of the
    block lands on the same decoder for the second time, then reads the
    steady-state throughput off the complex-decoder usage counts.

    Extension over the paper's Algorithm 1: microcoded instructions
    (more than 4 fused µops) occupy the complex decoder for
    [ceil (µops / 4)] cycles instead of one. *)

val throughput : Block.t -> float

(** [throughput] with the caller's arena (the model threads one arena
    through all components of a prediction). *)
val throughput_in : Arena.t -> Block.t -> float

(** The SimpleDec baseline: [max (n / #decoders) c] where [c] is the
    number of instructions requiring the complex decoder. *)
val simple : Block.t -> float

(** Reference (pre-flattening) implementation: logical-list walk with
    per-call scratch allocation. Identical results to {!throughput};
    kept for differential tests and the perf bench. *)
val throughput_ref : Block.t -> float
