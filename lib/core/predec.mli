(** The predecoder component (paper §4.3).

    Models 16-byte fetch blocks, the 5-instructions-per-cycle predecode
    width, the one-cycle penalty for instructions whose nominal opcode
    and last byte fall in different fetch blocks, and the three-cycle
    penalty per length-changing prefix (partially hidden behind the
    previous block's predecode time). *)

(** [throughput ~mode b] is the average predecode cycles per iteration
    of [b]. Under [`Unrolled] the steady state repeats after
    [lcm (len, 16) / len] copies; under [`Loop] fetch restarts at the
    block start every iteration. *)
val throughput : mode:[ `Unrolled | `Loop ] -> Block.t -> float

(** [throughput] with the caller's arena (the model threads one arena
    through all components of a prediction). *)
val throughput_in : Arena.t -> mode:[ `Unrolled | `Loop ] -> Block.t -> float

(** The SimplePredec baseline: [len / 16]. *)
val simple : Block.t -> float

(** Reference (pre-flattening) implementation: entry-list walk with
    per-call counter arrays. Identical results to {!throughput}; kept
    for differential tests and the perf bench. *)
val throughput_ref : mode:[ `Unrolled | `Loop ] -> Block.t -> float
