open Facile_uarch

let complex_cycles_of_fused fu = if fu > 4 then (fu + 3) / 4 else 1

let complex_cycles (l : Block.logical) =
  complex_cycles_of_fused l.Block.fused_uops

let simple (b : Block.t) =
  let items = b.Block.logicals in
  if items = [] then 0.0
  else begin
    let d = b.Block.cfg.Config.n_decoders in
    let n = List.length items in
    let c =
      List.fold_left
        (fun acc l ->
          if l.Block.complex_decode then acc + complex_cycles l else acc)
        0 items
    in
    Float.max (float_of_int n /. float_of_int d) (float_of_int c)
  end

let span = Facile_obs.Obs.histogram "model.dec"

(* Fast path: the decoder-allocation simulation of Algorithm 1 over the
   flat per-logical arrays, with the two scratch tables in the arena.
   Allocation-free after arena warm-up. *)
let throughput_in (a : Arena.t) (b : Block.t) =
  Facile_obs.Obs.timed span @@ fun () ->
  let fl = b.Block.flat in
  let l_complex = fl.Block.l_complex in
  let n_items = Array.length l_complex in
  if n_items = 0 then 0.0
  else begin
    let cfg = b.Block.cfg in
    let l_fused = fl.Block.l_fused in
    let l_avail = fl.Block.l_avail in
    let l_branch = fl.Block.l_branch in
    let l_mfused = fl.Block.l_mfused in
    let ndec = cfg.Config.n_decoders in
    let max_iter = (ndec * 4) + 8 in
    let n_complex = Arena.ints a.Arena.dec_complex (max_iter + 2) in
    a.Arena.dec_complex <- n_complex;
    let first_on_dec = Arena.ints a.Arena.dec_first ndec in
    a.Arena.dec_first <- first_on_dec;
    Array.fill first_on_dec 0 ndec (-1);
    let cur_dec = ref (ndec - 1) in
    let n_avail = ref 0 in
    let result = ref (-1.0) in
    let iteration = ref 0 in
    while !result < 0.0 && !iteration < max_iter do
      incr iteration;
      let it = !iteration in
      n_complex.(it) <- 0;
      let idx = ref 0 in
      while !result < 0.0 && !idx < n_items do
        let i = !idx in
        if l_complex.(i) then begin
          cur_dec := 0;
          n_avail := l_avail.(i)
        end
        else if
          !n_avail = 0
          || (!cur_dec + 1 = ndec - 1
              && l_mfused.(i)
              && not cfg.Config.macro_fusible_on_last_decoder)
        then begin
          cur_dec := 0;
          n_avail := ndec - 1
        end
        else begin
          incr cur_dec;
          decr n_avail
        end;
        if l_branch.(i) then n_avail := 0;
        if !cur_dec = 0 then
          n_complex.(it) <-
            n_complex.(it) + complex_cycles_of_fused l_fused.(i);
        if i = 0 then begin
          let f = first_on_dec.(!cur_dec) in
          if f >= 0 then begin
            let u = it - f in
            let cycles = ref 0 in
            for r = f to it - 1 do
              cycles := !cycles + n_complex.(r)
            done;
            result := float_of_int !cycles /. float_of_int u
          end
          else first_on_dec.(!cur_dec) <- it
        end;
        incr idx
      done
    done;
    if !result >= 0.0 then !result
    else
      (* cannot happen: with [ndec] decoders the first instruction can
         only land on [ndec] distinct decoders *)
      simple b
  end

let throughput b = throughput_in (Arena.get ()) b

(* Reference path: the pre-flattening implementation (per-call list ->
   array conversion and scratch allocation), kept for differential
   tests and the perf bench. *)
let throughput_ref (b : Block.t) =
  Facile_obs.Obs.timed span @@ fun () ->
  let items = Array.of_list b.Block.logicals in
  let n_items = Array.length items in
  if n_items = 0 then 0.0
  else begin
    let cfg = b.Block.cfg in
    let ndec = cfg.Config.n_decoders in
    let max_iter = (ndec * 4) + 8 in
    let n_complex = Array.make (max_iter + 2) 0 in
    let first_on_dec = Array.make ndec (-1) in
    let cur_dec = ref (ndec - 1) in
    let n_avail = ref 0 in
    let result = ref None in
    let iteration = ref 0 in
    while !result = None && !iteration < max_iter do
      incr iteration;
      let it = !iteration in
      n_complex.(it) <- 0;
      Array.iteri
        (fun idx item ->
          if !result = None then begin
            if item.Block.complex_decode then begin
              cur_dec := 0;
              n_avail := item.Block.available_simple_dec
            end
            else if
              !n_avail = 0
              || (!cur_dec + 1 = ndec - 1
                  && item.Block.macro_fused
                  && not cfg.Config.macro_fusible_on_last_decoder)
            then begin
              cur_dec := 0;
              n_avail := ndec - 1
            end
            else begin
              incr cur_dec;
              decr n_avail
            end;
            if item.Block.is_branch then n_avail := 0;
            if !cur_dec = 0 then
              n_complex.(it) <- n_complex.(it) + complex_cycles item;
            if idx = 0 then begin
              let f = first_on_dec.(!cur_dec) in
              if f >= 0 then begin
                let u = it - f in
                let cycles = ref 0 in
                for r = f to it - 1 do
                  cycles := !cycles + n_complex.(r)
                done;
                result := Some (float_of_int !cycles /. float_of_int u)
              end
              else first_on_dec.(!cur_dec) <- it
            end
          end)
        items
    done;
    match !result with
    | Some r -> r
    | None -> simple b
  end
