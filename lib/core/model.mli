(** The Facile throughput model: combination of the component bounds
    (paper §4.1, §4.2), bottleneck identification, component ablations
    (Table 3) and counterfactual idealization (Table 4). *)

type component = Predec | Dec | DSB | LSD | Issue | Ports | Precedence

val all_components : component list
val component_name : component -> string

(** Ablation/variant switches. [without] removes components from the
    max; [only] predicts from the listed components alone (raw values,
    ignoring the front-end path selection); [idealized] treats
    components as infinitely fast (Table 4); [simple_predec] /
    [simple_dec] substitute the simple baselines of §4.3/§4.4. *)
type variant = {
  simple_predec : bool;
  simple_dec : bool;
  without : component list;
  only : component list option;
  idealized : component list;
}

val default : variant

(** Which front-end source serves the loop in steady state (TP_L). *)
type fe_path = FE_decoders | FE_lsd | FE_dsb | FE_none

type prediction = {
  cycles : float;  (** predicted inverse throughput (cycles/iteration) *)
  bottlenecks : component list;
      (** components whose bound equals [cycles]; ordered front-end
          first (Predec > Dec > LSD > DSB > Issue > Ports > Precedence) *)
  values : (component * float) list;
      (** every component's bound (before ablation filtering, but after
          [idealized] zeroing, so the table is consistent with
          [cycles] and [bottlenecks]) *)
  fe_path : fe_path;
}

(** Throughput notion: [U] — unrolled (TP_U, Equation 1); [L] — the
    block executed as a loop (TP_L, Equations 2 and 3, including the
    JCC-erratum and LSD conditions); [Auto] dispatches on
    {!Block.ends_in_branch} (the paper's §3.1 convention). *)
type notion = U | L | Auto

(** [predict ?variant ?notion b] — the single prediction entry point;
    [notion] defaults to [Auto]. *)
val predict : ?variant:variant -> ?notion:notion -> Block.t -> prediction

(** The pre-flattening model pipeline, verbatim: list-based component
    values (the [_ref] component spellings) and the list-based combine.
    Equal to {!predict} on every block — property-tested — and timed by
    the perf bench as the pre-PR inner loop. *)
val predict_reference :
  ?variant:variant -> ?notion:notion -> Block.t -> prediction

(** [predict_u b] is [predict ~notion:U b].
    @deprecated use [predict ~notion:U]. *)
val predict_u : ?variant:variant -> Block.t -> prediction

(** [predict_l b] is [predict ~notion:L b].
    @deprecated use [predict ~notion:L]. *)
val predict_l : ?variant:variant -> Block.t -> prediction

(** [bottleneck b] — the single bottleneck under the paper's
    front-end-first tie-breaking (used for the Figure 6 Sankey). *)
val bottleneck : ?variant:variant -> Block.t -> component

(** [speedup_idealizing b c] — ratio [cycles / cycles-with-c-idealized]
    under TP_U (Table 4); 1.0 when [c] is not a bottleneck. *)
val speedup_idealizing : Block.t -> component -> float

(** Wire name of a front-end path ("decoders", "lsd", "dsb", "none"). *)
val fe_path_name : fe_path -> string

(** The one JSON encoding of a prediction, shared by
    [facile predict --json], [facile batch --json], and
    [facile serve] so the three surfaces cannot drift.
    @raise Facile_x86.Err.Error with kind [Internal] if any float in
    the prediction is non-finite (a broken model invariant; emitting it
    would produce a silently null JSON value). *)
val prediction_to_json : prediction -> Facile_obs.Json.t
