(** The Facile throughput model: combination of the component bounds
    (paper §4.1, §4.2), bottleneck identification, component ablations
    (Table 3) and counterfactual idealization (Table 4). *)

type component = Predec | Dec | DSB | LSD | Issue | Ports | Precedence

val all_components : component list
val component_name : component -> string

(** Ablation/variant switches. [without] removes components from the
    max; [only] predicts from the listed components alone (raw values,
    ignoring the front-end path selection); [idealized] treats
    components as infinitely fast (Table 4); [simple_predec] /
    [simple_dec] substitute the simple baselines of §4.3/§4.4. *)
type variant = {
  simple_predec : bool;
  simple_dec : bool;
  without : component list;
  only : component list option;
  idealized : component list;
}

val default : variant

(** Which front-end source serves the loop in steady state (TP_L). *)
type fe_path = FE_decoders | FE_lsd | FE_dsb | FE_none

type prediction = {
  cycles : float;  (** predicted inverse throughput (cycles/iteration) *)
  bottlenecks : component list;
      (** components whose bound equals [cycles]; ordered front-end
          first (Predec > Dec > LSD > DSB > Issue > Ports > Precedence) *)
  values : (component * float) list;
      (** every component's bound (before ablation filtering, but after
          [idealized] zeroing, so the table is consistent with
          [cycles] and [bottlenecks]) *)
  fe_path : fe_path;
}

(** [predict_u b] — throughput under unrolling (Equation 1). *)
val predict_u : ?variant:variant -> Block.t -> prediction

(** [predict_l b] — throughput of the block executed as a loop
    (Equations 2 and 3, including the JCC-erratum and LSD conditions). *)
val predict_l : ?variant:variant -> Block.t -> prediction

(** [predict b] dispatches on {!Block.ends_in_branch}. *)
val predict : ?variant:variant -> Block.t -> prediction

(** [bottleneck b] — the single bottleneck under the paper's
    front-end-first tie-breaking (used for the Figure 6 Sankey). *)
val bottleneck : ?variant:variant -> Block.t -> component

(** [speedup_idealizing b c] — ratio [cycles / cycles-with-c-idealized]
    under TP_U (Table 4); 1.0 when [c] is not a bottleneck. *)
val speedup_idealizing : Block.t -> component -> float
