open Facile_uarch

type component = Predec | Dec | DSB | LSD | Issue | Ports | Precedence

let all_components = [ Predec; Dec; LSD; DSB; Issue; Ports; Precedence ]

let component_name = function
  | Predec -> "Predec"
  | Dec -> "Dec"
  | DSB -> "DSB"
  | LSD -> "LSD"
  | Issue -> "Issue"
  | Ports -> "Ports"
  | Precedence -> "Precedence"

type variant = {
  simple_predec : bool;
  simple_dec : bool;
  without : component list;
  only : component list option;
  idealized : component list;
}

let default =
  { simple_predec = false; simple_dec = false; without = [];
    only = None; idealized = [] }

type fe_path = FE_decoders | FE_lsd | FE_dsb | FE_none

type prediction = {
  cycles : float;
  bottlenecks : component list;
  values : (component * float) list;
  fe_path : fe_path;
}

(* Raw value of every component for the given execution mode. *)
let raw_values variant mode (b : Block.t) =
  let predec =
    if variant.simple_predec then Predec.simple b
    else Predec.throughput ~mode b
  in
  let dec = if variant.simple_dec then Dec.simple b else Dec.throughput b in
  [ Predec, predec;
    Dec, dec;
    LSD, Lsd.throughput b;
    DSB, Dsb.throughput b;
    Issue, Issue.throughput b;
    Ports, Ports.throughput b;
    Precedence, Precedence.throughput b ]

let apply_idealized variant (c, v) =
  if List.mem c variant.idealized then (c, 0.0) else (c, v)

let combine variant values candidates fe_path =
  let considered =
    match variant.only with
    | Some comps -> List.filter (fun (c, _) -> List.mem c comps) values
    | None ->
      List.filter
        (fun (c, _) ->
          List.mem c candidates && not (List.mem c variant.without))
        values
  in
  let considered = List.map (apply_idealized variant) considered in
  let cycles =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 considered
  in
  let bottlenecks =
    List.filter_map
      (fun c ->
        match List.assoc_opt c considered with
        | Some v when cycles > 0.0 && abs_float (v -. cycles) < 1e-9 -> Some c
        | _ -> None)
      all_components
  in
  (* report values after idealization too: [bottlenecks] and [cycles]
     are computed on idealized bounds, so reporting the raw ones would
     print a component table in which no entry equals [cycles] *)
  let values = List.map (apply_idealized variant) values in
  { cycles; bottlenecks; values; fe_path }

(* Throughput notion: TP_U (unrolled), TP_L (loop), or pick from the
   block's final instruction, the paper's §3.1 convention. *)
type notion = U | L | Auto

let unrolled variant b =
  let values = raw_values variant `Unrolled b in
  combine variant values [ Predec; Dec; Issue; Ports; Precedence ] FE_none

let looped variant b =
  let values = raw_values variant `Loop b in
  let cfg = b.Block.cfg in
  let fe_candidates, fe_path =
    if cfg.Config.jcc_erratum && Block.jcc_erratum_affected b then
      ([ Predec; Dec ], FE_decoders)
    else if Lsd.applicable b then ([ LSD ], FE_lsd)
    else ([ DSB ], FE_dsb)
  in
  combine variant values
    (fe_candidates @ [ Issue; Ports; Precedence ])
    fe_path

(* The single prediction entry point; every surface (CLI, engine,
   bench, serve) goes through here. *)
let predict ?(variant = default) ?(notion = Auto) b =
  match notion with
  | U -> unrolled variant b
  | L -> looped variant b
  | Auto ->
    if Block.ends_in_branch b then looped variant b else unrolled variant b

(* Deprecated spellings, kept as thin wrappers so existing callers and
   published snippets keep compiling; prefer [predict ~notion]. *)
let predict_u ?(variant = default) b = predict ~variant ~notion:U b
let predict_l ?(variant = default) b = predict ~variant ~notion:L b

let bottleneck ?(variant = default) b =
  let p = predict ~variant b in
  match p.bottlenecks with
  | c :: _ -> c
  | [] -> Issue (* empty block: arbitrary but stable *)

let speedup_idealizing b c =
  let base = (predict ~notion:U b).cycles in
  let ideal =
    (predict ~variant:{ default with idealized = [ c ] } ~notion:U b).cycles
  in
  if ideal <= 0.0 then 1.0 else base /. ideal

(* ----- serialization ----- *)

let fe_path_name = function
  | FE_decoders -> "decoders"
  | FE_lsd -> "lsd"
  | FE_dsb -> "dsb"
  | FE_none -> "none"

(* The one JSON encoding of a prediction.  `facile predict --json`,
   `facile batch --json`, and `facile serve` all call this, so the
   three surfaces cannot drift in field names. *)
let prediction_to_json (p : prediction) : Facile_obs.Json.t =
  let open Facile_obs in
  Json.Obj
    [ "cycles", Json.Float p.cycles;
      "bottlenecks",
      Json.Arr (List.map (fun c -> Json.Str (component_name c)) p.bottlenecks);
      "values",
      Json.Obj
        (List.map (fun (c, v) -> (component_name c, Json.Float v)) p.values);
      "fe_path", Json.Str (fe_path_name p.fe_path) ]
