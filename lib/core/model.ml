open Facile_uarch

type component = Predec | Dec | DSB | LSD | Issue | Ports | Precedence

let all_components = [ Predec; Dec; LSD; DSB; Issue; Ports; Precedence ]

let component_name = function
  | Predec -> "Predec"
  | Dec -> "Dec"
  | DSB -> "DSB"
  | LSD -> "LSD"
  | Issue -> "Issue"
  | Ports -> "Ports"
  | Precedence -> "Precedence"

type variant = {
  simple_predec : bool;
  simple_dec : bool;
  without : component list;
  only : component list option;
  idealized : component list;
}

let default =
  { simple_predec = false; simple_dec = false; without = [];
    only = None; idealized = [] }

type fe_path = FE_decoders | FE_lsd | FE_dsb | FE_none

type prediction = {
  cycles : float;
  bottlenecks : component list;
  values : (component * float) list;
  fe_path : fe_path;
}

(* Raw value of every component for the given execution mode. *)
let raw_values variant mode (b : Block.t) =
  let predec =
    if variant.simple_predec then Predec.simple b
    else Predec.throughput ~mode b
  in
  let dec = if variant.simple_dec then Dec.simple b else Dec.throughput b in
  [ Predec, predec;
    Dec, dec;
    LSD, Lsd.throughput b;
    DSB, Dsb.throughput b;
    Issue, Issue.throughput b;
    Ports, Ports.throughput b;
    Precedence, Precedence.throughput b ]

let apply_idealized variant (c, v) =
  if List.mem c variant.idealized then (c, 0.0) else (c, v)

let combine variant values candidates fe_path =
  let considered =
    match variant.only with
    | Some comps -> List.filter (fun (c, _) -> List.mem c comps) values
    | None ->
      List.filter
        (fun (c, _) ->
          List.mem c candidates && not (List.mem c variant.without))
        values
  in
  let considered = List.map (apply_idealized variant) considered in
  let cycles =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 considered
  in
  let bottlenecks =
    List.filter_map
      (fun c ->
        match List.assoc_opt c considered with
        | Some v when cycles > 0.0 && abs_float (v -. cycles) < 1e-9 -> Some c
        | _ -> None)
      all_components
  in
  (* report values after idealization too: [bottlenecks] and [cycles]
     are computed on idealized bounds, so reporting the raw ones would
     print a component table in which no entry equals [cycles] *)
  let values = List.map (apply_idealized variant) values in
  { cycles; bottlenecks; values; fe_path }

let predict_u ?(variant = default) b =
  let values = raw_values variant `Unrolled b in
  combine variant values [ Predec; Dec; Issue; Ports; Precedence ] FE_none

let predict_l ?(variant = default) b =
  let values = raw_values variant `Loop b in
  let cfg = b.Block.cfg in
  let fe_candidates, fe_path =
    if cfg.Config.jcc_erratum && Block.jcc_erratum_affected b then
      ([ Predec; Dec ], FE_decoders)
    else if Lsd.applicable b then ([ LSD ], FE_lsd)
    else ([ DSB ], FE_dsb)
  in
  combine variant values
    (fe_candidates @ [ Issue; Ports; Precedence ])
    fe_path

let predict ?(variant = default) b =
  if Block.ends_in_branch b then predict_l ~variant b
  else predict_u ~variant b

let bottleneck ?(variant = default) b =
  let p = predict ~variant b in
  match p.bottlenecks with
  | c :: _ -> c
  | [] -> Issue (* empty block: arbitrary but stable *)

let speedup_idealizing b c =
  let base = (predict_u b).cycles in
  let ideal = (predict_u ~variant:{ default with idealized = [ c ] } b).cycles in
  if ideal <= 0.0 then 1.0 else base /. ideal
