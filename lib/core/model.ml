open Facile_uarch

type component = Predec | Dec | DSB | LSD | Issue | Ports | Precedence

let all_components = [ Predec; Dec; LSD; DSB; Issue; Ports; Precedence ]

let component_name = function
  | Predec -> "Predec"
  | Dec -> "Dec"
  | DSB -> "DSB"
  | LSD -> "LSD"
  | Issue -> "Issue"
  | Ports -> "Ports"
  | Precedence -> "Precedence"

type variant = {
  simple_predec : bool;
  simple_dec : bool;
  without : component list;
  only : component list option;
  idealized : component list;
}

let default =
  { simple_predec = false; simple_dec = false; without = [];
    only = None; idealized = [] }

type fe_path = FE_decoders | FE_lsd | FE_dsb | FE_none

type prediction = {
  cycles : float;
  bottlenecks : component list;
  values : (component * float) list;
  fe_path : fe_path;
}

(* The components as bit positions: the hot path represents component
   sets as int masks and component values as the arena's 7-slot float
   array, indexed in [all_components] order. *)
let component_index = function
  | Predec -> 0
  | Dec -> 1
  | LSD -> 2
  | DSB -> 3
  | Issue -> 4
  | Ports -> 5
  | Precedence -> 6

let component_bit c = 1 lsl component_index c

let mask_of = List.fold_left (fun m c -> m lor component_bit c) 0

(* Fill the arena's value slots for the given execution mode, threading
   the arena through every component that uses scratch buffers. *)
let fill_values (a : Arena.t) variant mode b =
  let vals = a.Arena.vals in
  vals.(0) <-
    (if variant.simple_predec then Predec.simple b
     else Predec.throughput_in a ~mode b);
  vals.(1) <-
    (if variant.simple_dec then Dec.simple b else Dec.throughput_in a b);
  vals.(2) <- Lsd.throughput b;
  vals.(3) <- Dsb.throughput b;
  vals.(4) <- Issue.throughput b;
  vals.(5) <- Ports.throughput_in a b;
  vals.(6) <- Precedence.throughput b

(* Mask-based combine: same max / bottleneck / reporting semantics as
   the reference list pipeline below, without its per-candidate
   [List.map]s — the only allocations left are the two constant-size
   lists of the returned prediction. *)
let combine_masks variant (vals : float array) candidates fe_path =
  let considered =
    match variant.only with
    | Some comps -> mask_of comps
    | None -> candidates land lnot (mask_of variant.without)
  in
  let ideal = mask_of variant.idealized in
  let value i = if ideal land (1 lsl i) <> 0 then 0.0 else vals.(i) in
  let cycles = ref 0.0 in
  for i = 0 to 6 do
    if considered land (1 lsl i) <> 0 then cycles := Float.max !cycles (value i)
  done;
  let cycles = !cycles in
  let bottlenecks =
    List.filter_map
      (fun c ->
        let i = component_index c in
        if
          considered land (1 lsl i) <> 0
          && cycles > 0.0
          && abs_float (value i -. cycles) < 1e-9
        then Some c
        else None)
      all_components
  in
  (* report values after idealization too: [bottlenecks] and [cycles]
     are computed on idealized bounds, so reporting the raw ones would
     print a component table in which no entry equals [cycles] *)
  let values =
    List.map (fun c -> (c, value (component_index c))) all_components
  in
  { cycles; bottlenecks; values; fe_path }

(* Throughput notion: TP_U (unrolled), TP_L (loop), or pick from the
   block's final instruction, the paper's §3.1 convention. *)
type notion = U | L | Auto

let unrolled_candidates = mask_of [ Predec; Dec; Issue; Ports; Precedence ]
let be_candidates = mask_of [ Issue; Ports; Precedence ]

let unrolled variant b =
  let a = Arena.get () in
  fill_values a variant `Unrolled b;
  combine_masks variant a.Arena.vals unrolled_candidates FE_none

let looped variant b =
  let a = Arena.get () in
  fill_values a variant `Loop b;
  let cfg = b.Block.cfg in
  let fe_candidates, fe_path =
    if cfg.Config.jcc_erratum && Block.jcc_erratum_affected b then
      (mask_of [ Predec; Dec ], FE_decoders)
    else if Lsd.applicable b then (component_bit LSD, FE_lsd)
    else (component_bit DSB, FE_dsb)
  in
  combine_masks variant a.Arena.vals (fe_candidates lor be_candidates) fe_path

(* The single prediction entry point; every surface (CLI, engine,
   bench, serve) goes through here. *)
let predict ?(variant = default) ?(notion = Auto) b =
  match notion with
  | U -> unrolled variant b
  | L -> looped variant b
  | Auto ->
    if Block.ends_in_branch b then looped variant b else unrolled variant b

(* ----- reference pipeline ----------------------------------------- *)
(* The pre-flattening model, verbatim: list-based component values and
   the [List.map]-per-candidate combine. [predict_reference] must equal
   [predict] on every block (property-tested); the perf bench times it
   as the pre-PR inner loop. *)

let raw_values_ref variant mode (b : Block.t) =
  let predec =
    if variant.simple_predec then Predec.simple b
    else Predec.throughput_ref ~mode b
  in
  let dec =
    if variant.simple_dec then Dec.simple b else Dec.throughput_ref b
  in
  [ Predec, predec;
    Dec, dec;
    LSD, Lsd.throughput_ref b;
    DSB, Dsb.throughput_ref b;
    Issue, Issue.throughput_ref b;
    Ports, Ports.throughput_ref b;
    Precedence, Precedence.throughput_ref b ]

let apply_idealized variant (c, v) =
  if List.mem c variant.idealized then (c, 0.0) else (c, v)

let combine_ref variant values candidates fe_path =
  let considered =
    match variant.only with
    | Some comps -> List.filter (fun (c, _) -> List.mem c comps) values
    | None ->
      List.filter
        (fun (c, _) ->
          List.mem c candidates && not (List.mem c variant.without))
        values
  in
  let considered = List.map (apply_idealized variant) considered in
  let cycles =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 considered
  in
  let bottlenecks =
    List.filter_map
      (fun c ->
        match List.assoc_opt c considered with
        | Some v when cycles > 0.0 && abs_float (v -. cycles) < 1e-9 -> Some c
        | _ -> None)
      all_components
  in
  let values = List.map (apply_idealized variant) values in
  { cycles; bottlenecks; values; fe_path }

let unrolled_ref variant b =
  let values = raw_values_ref variant `Unrolled b in
  combine_ref variant values [ Predec; Dec; Issue; Ports; Precedence ] FE_none

let looped_ref variant b =
  let values = raw_values_ref variant `Loop b in
  let cfg = b.Block.cfg in
  let fe_candidates, fe_path =
    if cfg.Config.jcc_erratum && Block.jcc_erratum_affected_ref b then
      ([ Predec; Dec ], FE_decoders)
    else if Lsd.applicable_ref b then ([ LSD ], FE_lsd)
    else ([ DSB ], FE_dsb)
  in
  combine_ref variant values
    (fe_candidates @ [ Issue; Ports; Precedence ])
    fe_path

let predict_reference ?(variant = default) ?(notion = Auto) b =
  match notion with
  | U -> unrolled_ref variant b
  | L -> looped_ref variant b
  | Auto ->
    if Block.ends_in_branch_ref b then looped_ref variant b
    else unrolled_ref variant b

(* ------------------------------------------------------------------ *)

(* Deprecated spellings, kept as thin wrappers so existing callers and
   published snippets keep compiling; prefer [predict ~notion]. *)
let predict_u ?(variant = default) b = predict ~variant ~notion:U b
let predict_l ?(variant = default) b = predict ~variant ~notion:L b

let bottleneck ?(variant = default) b =
  let p = predict ~variant b in
  match p.bottlenecks with
  | c :: _ -> c
  | [] -> Issue (* empty block: arbitrary but stable *)

let speedup_idealizing b c =
  let base = (predict ~notion:U b).cycles in
  let ideal =
    (predict ~variant:{ default with idealized = [ c ] } ~notion:U b).cycles
  in
  if ideal <= 0.0 then 1.0 else base /. ideal

(* ----- serialization ----- *)

let fe_path_name = function
  | FE_decoders -> "decoders"
  | FE_lsd -> "lsd"
  | FE_dsb -> "dsb"
  | FE_none -> "none"

(* Every float a prediction serializes must be finite: [Json.float_repr]
   would otherwise emit "null" and clients would see a silently missing
   value. A non-finite bound here means a model invariant broke, so
   fail loudly with the typed error instead. *)
let finite name v =
  if Float.is_finite v then v
  else
    raise
      (Facile_x86.Err.Error
         (Facile_x86.Err.v Facile_x86.Err.Internal
            (Printf.sprintf "non-finite %s in prediction: %h" name v)))

(* The one JSON encoding of a prediction.  `facile predict --json`,
   `facile batch --json`, and `facile serve` all call this, so the
   three surfaces cannot drift in field names. *)
let prediction_to_json (p : prediction) : Facile_obs.Json.t =
  let open Facile_obs in
  Json.Obj
    [ "cycles", Json.Float (finite "cycles" p.cycles);
      "bottlenecks",
      Json.Arr (List.map (fun c -> Json.Str (component_name c)) p.bottlenecks);
      "values",
      Json.Obj
        (List.map
           (fun (c, v) ->
             let name = component_name c in
             (name, Json.Float (finite name v)))
           p.values);
      "fe_path", Json.Str (fe_path_name p.fe_path) ]
