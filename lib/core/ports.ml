open Facile_uarch

let uop_masks (b : Block.t) =
  List.concat_map
    (fun (l : Block.logical) ->
      if l.Block.eliminated then []
      else
        List.filter_map
          (fun (u : Facile_db.Db.uop) ->
            if Port.is_empty u.Facile_db.Db.ports then None
            else Some u.Facile_db.Db.ports)
          l.Block.dispatched)
    b.Block.logicals

let dedup l =
  List.fold_left
    (fun acc x -> if List.exists (Port.equal x) acc then acc else x :: acc)
    [] l

let best (b : Block.t) =
  let masks = uop_masks b in
  let pc = dedup masks in
  let pc' =
    dedup
      (List.concat_map (fun a -> List.map (fun c -> Port.union a c) pc) pc)
  in
  List.fold_left
    (fun acc comb ->
      let count =
        List.length (List.filter (fun m -> Port.subset m comb) masks)
      in
      let bound = float_of_int count /. float_of_int (Port.cardinal comb) in
      match acc with
      | Some (_, _, b0) when b0 >= bound -> acc
      | _ -> Some (comb, count, bound))
    None pc'

let span = Facile_obs.Obs.histogram "model.ports"

(* Fast path: the same pairwise-union bound over the precomputed
   [port_masks] array, with the two dedup tables in the arena. The
   result is the maximum of the same set of bounds the list-based [best]
   folds over, so the two paths return identical floats (the list path's
   dedup order only affects which combination ties are reported on).
   Allocation-free after arena warm-up. *)
let throughput_in (a : Arena.t) (b : Block.t) =
  Facile_obs.Obs.timed span @@ fun () ->
  let masks = b.Block.flat.Block.port_masks in
  let nm = Array.length masks in
  if nm = 0 then 0.0
  else begin
    (* dedup with multiplicities: [cnt.(j)] µops share mask [pc.(j)] *)
    let pc = Arena.ports a.Arena.ports_dedup nm in
    a.Arena.ports_dedup <- pc;
    let cnt = Arena.ints a.Arena.ports_cnt nm in
    a.Arena.ports_cnt <- cnt;
    let np = ref 0 in
    for i = 0 to nm - 1 do
      let m = masks.(i) in
      let slot = ref (-1) in
      for j = 0 to !np - 1 do
        if Port.equal pc.(j) m then slot := j
      done;
      if !slot >= 0 then cnt.(!slot) <- cnt.(!slot) + 1
      else begin
        pc.(!np) <- m;
        cnt.(!np) <- 1;
        incr np
      end
    done;
    let np = !np in
    let pc2 = Arena.ports a.Arena.ports_pairs (np * np) in
    a.Arena.ports_pairs <- pc2;
    let np2 = ref 0 in
    for i = 0 to np - 1 do
      for j = 0 to np - 1 do
        let u = Port.union pc.(i) pc.(j) in
        let seen = ref false in
        for k = 0 to !np2 - 1 do
          if Port.equal pc2.(k) u then seen := true
        done;
        if not !seen then begin
          pc2.(!np2) <- u;
          incr np2
        end
      done
    done;
    let best = ref 0.0 in
    for k = 0 to !np2 - 1 do
      let comb = pc2.(k) in
      let count = ref 0 in
      for j = 0 to np - 1 do
        if Port.subset pc.(j) comb then count := !count + cnt.(j)
      done;
      let bound =
        float_of_int !count /. float_of_int (Port.cardinal comb)
      in
      if bound > !best then best := bound
    done;
    !best
  end

let throughput b = throughput_in (Arena.get ()) b

(* Reference path: the pre-flattening list pipeline. *)
let throughput_ref b =
  Facile_obs.Obs.timed span @@ fun () ->
  match best b with Some (_, _, bound) -> bound | None -> 0.0

let critical_combination b =
  match best b with Some (comb, count, _) -> Some (comb, count) | None -> None

let throughput_exhaustive (b : Block.t) =
  let masks = uop_masks b in
  if masks = [] then 0.0
  else begin
    (* only ports that actually appear matter; enumerate all subsets of
       their union *)
    let union = List.fold_left Port.union Port.empty masks in
    let ports = Port.to_list union in
    let k = List.length ports in
    let best = ref 0.0 in
    for subset = 1 to (1 lsl k) - 1 do
      let pc =
        List.fold_left
          (fun acc (bit, p) ->
            if subset land (1 lsl bit) <> 0 then Port.union acc (Port.singleton p)
            else acc)
          Port.empty
          (List.mapi (fun i p -> (i, p)) ports)
      in
      let count =
        List.length (List.filter (fun m -> Port.subset m pc) masks)
      in
      let bound = float_of_int count /. float_of_int (Port.cardinal pc) in
      if bound > !best then best := bound
    done;
    !best
  end
