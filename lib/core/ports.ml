open Facile_uarch

let uop_masks (b : Block.t) =
  List.concat_map
    (fun (l : Block.logical) ->
      if l.Block.eliminated then []
      else
        List.filter_map
          (fun (u : Facile_db.Db.uop) ->
            if Port.is_empty u.Facile_db.Db.ports then None
            else Some u.Facile_db.Db.ports)
          l.Block.dispatched)
    b.Block.logicals

let dedup l =
  List.fold_left
    (fun acc x -> if List.exists (Port.equal x) acc then acc else x :: acc)
    [] l

let best (b : Block.t) =
  let masks = uop_masks b in
  let pc = dedup masks in
  let pc' =
    dedup
      (List.concat_map (fun a -> List.map (fun c -> Port.union a c) pc) pc)
  in
  List.fold_left
    (fun acc comb ->
      let count =
        List.length (List.filter (fun m -> Port.subset m comb) masks)
      in
      let bound = float_of_int count /. float_of_int (Port.cardinal comb) in
      match acc with
      | Some (_, _, b0) when b0 >= bound -> acc
      | _ -> Some (comb, count, bound))
    None pc'

let span = Facile_obs.Obs.histogram "model.ports"

let throughput b =
  Facile_obs.Obs.timed span @@ fun () ->
  match best b with Some (_, _, bound) -> bound | None -> 0.0

let critical_combination b =
  match best b with Some (comb, count, _) -> Some (comb, count) | None -> None

let throughput_exhaustive (b : Block.t) =
  let masks = uop_masks b in
  if masks = [] then 0.0
  else begin
    (* only ports that actually appear matter; enumerate all subsets of
       their union *)
    let union = List.fold_left Port.union Port.empty masks in
    let ports = Port.to_list union in
    let k = List.length ports in
    let best = ref 0.0 in
    for subset = 1 to (1 lsl k) - 1 do
      let pc =
        List.fold_left
          (fun acc (bit, p) ->
            if subset land (1 lsl bit) <> 0 then Port.union acc (Port.singleton p)
            else acc)
          Port.empty
          (List.mapi (fun i p -> (i, p)) ports)
      in
      let count =
        List.length (List.filter (fun m -> Port.subset m pc) masks)
      in
      let bound = float_of_int count /. float_of_int (Port.cardinal pc) in
      if bound > !best then best := bound
    done;
    !best
  end
