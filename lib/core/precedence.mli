(** The precedence-constraint component (paper §4.9).

    Builds the weighted dependence graph over consumed/produced values
    (registers and flags, at full-register granularity), connects
    producers to their consumers within and across iterations, and
    computes the maximum cycle ratio — the recurrence-constrained
    minimum initiation interval — with Howard's algorithm. *)

open Facile_x86

(** [throughput b] is the cycles-per-iteration bound due to loop-carried
    dependence chains (0 when the block has none). *)
val throughput : Block.t -> float

(** Reference (pre-flattening) implementation: labeled hashtable graph
    build + list-based Howard. Identical results to {!throughput}
    (property-tested); kept for differential tests and the perf
    bench. *)
val throughput_ref : Block.t -> float

(** The dependence graph itself, for tests and for interpretable
    critical-chain extraction. Node [2*i + 0] / [2*i + 1] don't have a
    fixed meaning; use {!node_label} to render them. *)
val graph : Block.t -> Facile_graph.Digraph.t * (int -> string)

(** [critical_chain b] describes the dependency cycle that limits
    throughput, as a list of human-readable node labels, when the
    Precedence bound is non-trivial. *)
val critical_chain : Block.t -> string list

(** Exposed for testing: the same bound computed with Lawler's
    algorithm instead of Howard's. *)
val throughput_lawler : Block.t -> float

val resource_name : Semantics.resource -> string
