(** Analyzed basic blocks: instructions + encoding layout + per-µarch
    instruction descriptors + macro-fusion pairing.

    This is the input representation shared by all of Facile's component
    predictors, the baselines, and the pipeline simulator. *)

open Facile_x86
open Facile_db
open Facile_uarch

(** One raw instruction with its encoding layout and DB descriptor. *)
type entry = {
  inst : Inst.t;
  layout : Encode.layout;
  desc : Db.t;
  fuses_with_next : bool;  (** macro-fuses with the following Jcc *)
  fused_into_prev : bool;  (** this Jcc is absorbed by its predecessor *)
}

(** A {e logical} instruction: either a single instruction or a
    macro-fused pair, with the merged µop-level characteristics.
    This is the unit the decoder, renamer and scheduler operate on. *)
type logical = {
  insts : Inst.t list;
  fused_uops : int;
  issued_uops : int;
  dispatched : Db.uop list;
  latency : int;
  complex_decode : bool;
  available_simple_dec : int;
  eliminated : bool;
  zero_idiom : bool;
  is_branch : bool;
  macro_fused : bool;
  reads : Semantics.resource list;
  writes : Semantics.resource list;
  loads : bool;
}

(** The flattened view of the block, decoded once at build time: plain
    arrays of everything the component predictors read per logical
    instruction ([l_*]), per raw entry ([e_*]), plus block-level
    precomputed facts. The hot path indexes these instead of walking
    [entries]/[logicals].

    [flat] mirrors the lists except for per-logical latency, which
    {!Precedence} re-reads from [logicals] so that ablation blocks built
    with [{ b with logicals }] (perturbed latencies) stay correct. *)
type flat = {
  l_fused : int array;  (** fused-domain µops per logical *)
  l_complex : bool array;  (** needs the complex decoder *)
  l_avail : int array;  (** simple decoders available alongside *)
  l_branch : bool array;
  l_mfused : bool array;  (** macro-fused pair *)
  l_addr_mask : int array;  (** GPR bitmask of load-address registers *)
  port_masks : Port.t array;
      (** port sets of all dispatched µops of non-eliminated logicals,
          empty sets dropped — the [Ports] component's input *)
  e_last : int array;  (** per entry: offset of its last byte *)
  e_opc : int array;  (** per entry: nominal opcode offset *)
  e_lcp : bool array;  (** per entry: has a length-changing prefix *)
  tot_fused : int;
  tot_issued : int;
  ends_branch : bool;
  jcc_affected : bool;
  form_sig : int;
      (** order-sensitive hash of the form ids ({!Facile_db.Flat}) of
          the block's instructions — a cheap memo-key discriminator *)
}

type t = {
  cfg : Config.t;
  entries : entry list;
  logicals : logical list;
  bytes : string;
  len : int;  (** block length in bytes *)
  flat : flat;  (** flattened hot-path view, see {!flat} *)
}

(** [of_instructions cfg insts] encodes and analyzes a block.
    @raise Encode.Unencodable or [Db.Unsupported] on bad input. *)
val of_instructions : Config.t -> Inst.t list -> t

(** [of_bytes cfg code] decodes machine code and analyzes it.
    @raise Decode.Decode_error on undecodable input. *)
val of_bytes : Config.t -> string -> t

(** Whether the block ends in a (possibly conditional) branch and is
    therefore analyzed as a loop ([TP_L]); otherwise as unrolled
    ([TP_U]). *)
val ends_in_branch : t -> bool

(** Total fused-domain µops (decode/DSB/LSD view). *)
val fused_uops : t -> int

(** Total issue-domain µops (after unlamination). *)
val issued_uops : t -> int

(** The JCC-erratum test: does some branch (or macro-fused pair) cross
    or end on a 32-byte boundary? Only meaningful when
    [cfg.jcc_erratum] holds. *)
val jcc_erratum_affected : t -> bool

(** The block's form-id signature (see {!flat.form_sig}). *)
val form_sig : t -> int

(** Reference (pre-flattening) spellings of the block accessors: list
    walks kept for differential tests and for timing the pre-PR inner
    loop in the perf bench. Semantically identical to the array-backed
    accessors above. *)

val ends_in_branch_ref : t -> bool
val fused_uops_ref : t -> int
val issued_uops_ref : t -> int
val jcc_erratum_affected_ref : t -> bool
