open Facile_x86
open Facile_db
open Facile_uarch

type entry = {
  inst : Inst.t;
  layout : Encode.layout;
  desc : Db.t;
  fuses_with_next : bool;
  fused_into_prev : bool;
}

type logical = {
  insts : Inst.t list;
  fused_uops : int;
  issued_uops : int;
  dispatched : Db.uop list;
  latency : int;
  complex_decode : bool;
  available_simple_dec : int;
  eliminated : bool;
  zero_idiom : bool;
  is_branch : bool;
  macro_fused : bool;
  reads : Semantics.resource list;
  writes : Semantics.resource list;
  loads : bool;
}

(* The flattened view of the block: everything the component predictors
   read per logical instruction / per entry, decoded once at build time
   into plain arrays so the hot path never walks the lists above.

   Invariant: [flat] mirrors [logicals]/[entries] except for per-logical
   [latency], which [Precedence] deliberately re-reads from [logicals]
   (baseline ablations build [{ b with logicals }] blocks with perturbed
   latencies and must see them). Any other [{ b with ... }] update would
   desynchronize the two views. *)
type flat = {
  l_fused : int array;
  l_complex : bool array;
  l_avail : int array;
  l_branch : bool array;
  l_mfused : bool array;
  l_addr_mask : int array;
  port_masks : Port.t array;
  e_last : int array;
  e_opc : int array;
  e_lcp : bool array;
  tot_fused : int;
  tot_issued : int;
  ends_branch : bool;
  jcc_affected : bool;
  form_sig : int;
}

type t = {
  cfg : Config.t;
  entries : entry list;
  logicals : logical list;
  bytes : string;
  len : int;
  flat : flat;
}

let logical_of_entry (e : entry) =
  let d = e.desc in
  { insts = [ e.inst ];
    fused_uops = d.Db.fused_uops;
    issued_uops = d.Db.issued_uops;
    dispatched = d.Db.dispatched;
    latency = d.Db.latency;
    complex_decode = d.Db.complex_decode;
    available_simple_dec = d.Db.available_simple_dec;
    eliminated = d.Db.eliminated;
    zero_idiom = d.Db.zero_idiom;
    is_branch = Inst.is_branch e.inst;
    macro_fused = false;
    reads = (if d.Db.zero_idiom then [] else Semantics.reads e.inst);
    writes = Semantics.writes e.inst;
    loads = Inst.loads e.inst }

(* A macro-fused pair: one fused-domain µop executing on the branch
   unit; the first instruction's load µop (if any) stays micro-fused. *)
let logical_of_pair cfg (first : entry) (jcc : entry) =
  let d = first.desc in
  let load_uops =
    List.filter (fun u -> u.Db.kind = Db.Load) d.Db.dispatched
  in
  let branch_uop =
    { Db.kind = Db.Compute; ports = cfg.Config.pm.Config.branch }
  in
  let reads_first = Semantics.reads first.inst in
  let writes_first = Semantics.writes first.inst in
  let reads_jcc =
    List.filter
      (fun r -> not (List.mem r writes_first))
      (Semantics.reads jcc.inst)
  in
  let dedup l =
    List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l
    |> List.rev
  in
  { insts = [ first.inst; jcc.inst ];
    fused_uops = d.Db.fused_uops;
    issued_uops = d.Db.issued_uops;
    dispatched = load_uops @ [ branch_uop ];
    latency = d.Db.latency;
    complex_decode = d.Db.complex_decode;
    available_simple_dec = d.Db.available_simple_dec;
    eliminated = false;
    zero_idiom = false;
    is_branch = true;
    macro_fused = true;
    reads = dedup (reads_first @ reads_jcc);
    writes = writes_first;
    loads = Inst.loads first.inst }

(* GPR bitmask of the load-address registers of a logical instruction
   (0 when it performs no load): the Precedence component adds the load
   latency on exactly these inputs. *)
let addr_mask (l : logical) =
  if not l.loads then 0
  else
    List.fold_left
      (fun acc inst ->
        match Inst.mem_operand inst with
        | Some m ->
          let acc =
            match m.Operand.base with
            | Some g -> acc lor (1 lsl Register.gpr_index g)
            | None -> acc
          in
          (match m.Operand.index with
           | Some (g, _) -> acc lor (1 lsl Register.gpr_index g)
           | None -> acc)
        | None -> acc)
      0 l.insts

let jcc_check entries =
  (* a jump (or macro-fused jump pair) that crosses or ends on a 32-byte
     boundary prevents the block from being cached in the DSB/LSD *)
  let rec check = function
    | a :: b :: rest when a.fuses_with_next ->
      let s = a.layout.Encode.off in
      let e = b.layout.Encode.off + b.layout.Encode.len in
      touches s e || check rest
    | a :: rest when Inst.is_branch a.inst ->
      let s = a.layout.Encode.off in
      let e = s + a.layout.Encode.len in
      touches s e || check rest
    | _ :: rest -> check rest
    | [] -> false
  and touches s e = s / 32 <> (e - 1) / 32 || e mod 32 = 0 in
  check entries

let build_flat entries logicals form_sig =
  let n_log = List.length logicals in
  let l_fused = Array.make n_log 0 in
  let l_complex = Array.make n_log false in
  let l_avail = Array.make n_log 0 in
  let l_branch = Array.make n_log false in
  let l_mfused = Array.make n_log false in
  let l_addr_mask = Array.make n_log 0 in
  let tot_fused = ref 0 in
  let tot_issued = ref 0 in
  let n_masks = ref 0 in
  List.iteri
    (fun i l ->
      l_fused.(i) <- l.fused_uops;
      l_complex.(i) <- l.complex_decode;
      l_avail.(i) <- l.available_simple_dec;
      l_branch.(i) <- l.is_branch;
      l_mfused.(i) <- l.macro_fused;
      l_addr_mask.(i) <- addr_mask l;
      tot_fused := !tot_fused + l.fused_uops;
      tot_issued := !tot_issued + l.issued_uops;
      if not l.eliminated then
        List.iter
          (fun (u : Db.uop) ->
            if not (Port.is_empty u.Db.ports) then incr n_masks)
          l.dispatched)
    logicals;
  let port_masks = Array.make !n_masks Port.empty in
  let k = ref 0 in
  List.iter
    (fun l ->
      if not l.eliminated then
        List.iter
          (fun (u : Db.uop) ->
            if not (Port.is_empty u.Db.ports) then begin
              port_masks.(!k) <- u.Db.ports;
              incr k
            end)
          l.dispatched)
    logicals;
  let n_ent = List.length entries in
  let e_last = Array.make n_ent 0 in
  let e_opc = Array.make n_ent 0 in
  let e_lcp = Array.make n_ent false in
  List.iteri
    (fun i e ->
      let lay = e.layout in
      e_last.(i) <- lay.Encode.off + lay.Encode.len - 1;
      e_opc.(i) <- lay.Encode.nominal_opcode_off;
      e_lcp.(i) <- lay.Encode.lcp)
    entries;
  let ends_branch =
    match List.rev entries with
    | e :: _ -> Inst.is_branch e.inst
    | [] -> false
  in
  let jcc_affected = jcc_check entries in
  { l_fused; l_complex; l_avail; l_branch; l_mfused; l_addr_mask;
    port_masks; e_last; e_opc; e_lcp;
    tot_fused = !tot_fused; tot_issued = !tot_issued;
    ends_branch; jcc_affected; form_sig }

let build cfg bytes (layouts : Encode.layout list) =
  let form_sig = ref 0x811c9dc5 in
  let raw =
    List.map
      (fun (l : Encode.layout) ->
        let desc, id = Flat.describe_id cfg l.Encode.inst in
        form_sig :=
          ((!form_sig lxor (id + 8)) * 0x01000193) land max_int;
        { inst = l.Encode.inst;
          layout = l;
          desc;
          fuses_with_next = false;
          fused_into_prev = false })
      layouts
  in
  (* mark macro-fusion pairs *)
  let rec mark = function
    | a :: b :: rest
      when cfg.Config.macro_fusion
           && a.desc.Db.macro_fusible
           && Inst.is_cond_branch b.inst ->
      { a with fuses_with_next = true }
      :: { b with fused_into_prev = true }
      :: mark rest
    | a :: rest -> a :: mark rest
    | [] -> []
  in
  let entries = mark raw in
  let rec logicals = function
    | a :: b :: rest when a.fuses_with_next ->
      logical_of_pair cfg a b :: logicals rest
    | a :: rest -> logical_of_entry a :: logicals rest
    | [] -> []
  in
  let logicals = logicals entries in
  { cfg; entries; logicals; bytes;
    len = String.length bytes;
    flat = build_flat entries logicals !form_sig }

let of_instructions cfg insts =
  let bytes, layouts = Encode.encode_block insts in
  build cfg bytes layouts

let of_bytes cfg code = build cfg code (Decode.decode_block code)

let ends_in_branch t = t.flat.ends_branch

let fused_uops t = t.flat.tot_fused

let issued_uops t = t.flat.tot_issued

let jcc_erratum_affected t = t.flat.jcc_affected

let form_sig t = t.flat.form_sig

(* Reference (pre-flattening) spellings: list walks over the block, kept
   for the differential tests and for timing the pre-PR inner loop in
   the perf bench. *)

let ends_in_branch_ref t =
  match List.rev t.entries with
  | e :: _ -> Inst.is_branch e.inst
  | [] -> false

let fused_uops_ref t =
  List.fold_left (fun acc l -> acc + l.fused_uops) 0 t.logicals

let issued_uops_ref t =
  List.fold_left (fun acc l -> acc + l.issued_uops) 0 t.logicals

let jcc_erratum_affected_ref t = jcc_check t.entries
