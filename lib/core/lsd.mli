(** The loop stream detector component (paper §4.6): the LSD streams the
    locked-down µops, cannot issue the last µop of one iteration with the
    first of the next in the same cycle, and unrolls small loops to
    amortize that bubble ([Config.lsd_unroll]). *)

val throughput : Block.t -> float

(** Whether the LSD applies to this block: enabled on the µarch and the
    loop's fused µops fit in the IDQ. *)
val applicable : Block.t -> bool

(** Reference (list-fold µop count) spellings; kept for the perf
    bench's pre-flattening lane. *)
val throughput_ref : Block.t -> float

val applicable_ref : Block.t -> bool
