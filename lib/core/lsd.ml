open Facile_uarch

let applicable_of_fused (b : Block.t) n =
  b.Block.cfg.Config.lsd_enabled && n <= b.Block.cfg.Config.idq_size

let applicable (b : Block.t) = applicable_of_fused b (Block.fused_uops b)

let applicable_ref (b : Block.t) =
  applicable_of_fused b (Block.fused_uops_ref b)

let of_fused (b : Block.t) n =
  if n = 0 then 0.0
  else begin
    let cfg = b.Block.cfg in
    let i = cfg.Config.issue_width in
    let u = Config.lsd_unroll cfg n in
    float_of_int (((n * u) + i - 1) / i) /. float_of_int u
  end

let throughput (b : Block.t) = of_fused b (Block.fused_uops b)
let throughput_ref (b : Block.t) = of_fused b (Block.fused_uops_ref b)
