(** The execution-port contention component (paper §4.8).

    Assumes the renamer distributes µops optimally. For every port
    combination [pc] that is the union of the port sets of some pair of
    µops, the µops whose port set is a subset of [pc] can only execute
    on the [|pc|] ports of [pc], bounding throughput by
    [count / |pc|]. The prediction is the maximum such bound. *)

open Facile_uarch

val throughput : Block.t -> float

(** [throughput] with the caller's arena (the model threads one arena
    through all components of a prediction). *)
val throughput_in : Arena.t -> Block.t -> float

(** Reference (pre-flattening) implementation: the list pipeline over
    [uop_masks]. Identical results to {!throughput} (the bound is the
    maximum over the same set of port combinations); kept for
    differential tests and the perf bench. *)
val throughput_ref : Block.t -> float

(** The port combination achieving the bound, with its µop count —
    the interpretable feedback for a Ports bottleneck. *)
val critical_combination : Block.t -> (Port.t * int) option

(** The exact bound: the maximum of [count / |pc|] over {e every}
    subset [pc] of the machine's ports (equivalent to the linear
    program of uops.info [8] on these instances). The paper observes
    that the pairwise heuristic reaches the same bound on all BHive
    benchmarks; [throughput b = throughput_exhaustive b] is
    property-tested on our corpus, and an ablation bench compares their
    cost. *)
val throughput_exhaustive : Block.t -> float
