(* The one module allowed to touch Mutex.lock/Mutex.unlock directly.

   Every critical section in the tree goes through [with_lock] (or
   [with_lock_cond] for the condition-variable wait idiom), so an
   exception raised mid-section can never leak a held lock and
   deadlock the pool — the failure class `facile lint`'s lock-safety
   rule exists to keep extinct.  The linter enforces the discipline
   structurally: raw Mutex.lock/unlock and raw Condition.wait outside
   sync.ml are error findings (DESIGN.md section 14). *)

let with_lock mu f =
  Mutex.lock mu;
  match f () with
  | v ->
    Mutex.unlock mu;
    v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    Mutex.unlock mu;
    Printexc.raise_with_backtrace e bt

(* The sanctioned blocking-wait idiom: hold [mu], wait on [cond] until
   [until ()] holds, then run [f] in the same critical section.
   Condition.wait atomically releases and re-acquires [mu], so the
   lock-is-held invariant survives the sleep; it is the only blocking
   call the lint blocking-under-lock rule allowlists. *)
let with_lock_cond mu cond ~until f =
  with_lock mu (fun () ->
      while not (until ()) do
        Condition.wait cond mu
      done;
      f ())
