open Facile_x86
open Facile_graph

let resource_name = function
  | Semantics.Reg r -> Register.name r
  | Semantics.Flags -> "flags"

(* Node identity: (logical index, resource, consumed-or-produced). *)
type node_key = int * Semantics.resource * [ `Consumed | `Produced ]

let build (b : Block.t) =
  let logs = Array.of_list b.Block.logicals in
  let n = Array.length logs in
  let load_lat = b.Block.cfg.Facile_uarch.Config.load_latency in
  let tbl : (node_key, int) Hashtbl.t = Hashtbl.create 64 in
  let labels = ref [] in
  let counter = ref 0 in
  let node key =
    match Hashtbl.find_opt tbl key with
    | Some id -> id
    | None ->
      let id = !counter in
      incr counter;
      Hashtbl.add tbl key id;
      let i, r, dir = key in
      let dir_s = match dir with `Consumed -> "use" | `Produced -> "def" in
      labels := (id, Printf.sprintf "%d:%s:%s" i (resource_name r) dir_s)
                :: !labels;
      id
  in
  (* First pass: create nodes and record edges to add (node creation must
     precede graph sizing). *)
  let edges = ref [] in
  let add_edge src dst weight count = edges := (src, dst, weight, count) :: !edges in
  (* intra-instruction edges: every consumed value -> every produced
     value, weighted by the instruction latency. Only address-register
     inputs additionally pay the load latency: a register operand of a
     load-op instruction feeds the ALU µop directly, while the address
     registers feed the load µop first. *)
  let addr_resources (l : Block.logical) =
    List.concat_map
      (fun inst ->
        match Inst.mem_operand inst with
        | Some m ->
          let base =
            match m.Operand.base with
            | Some g -> [ Semantics.Reg (Register.Gpr (Register.W64, g)) ]
            | None -> []
          in
          let index =
            match m.Operand.index with
            | Some (g, _) ->
              [ Semantics.Reg (Register.Gpr (Register.W64, g)) ]
            | None -> []
          in
          base @ index
        | None -> [])
      l.Block.insts
  in
  Array.iteri
    (fun i (l : Block.logical) ->
      let addr = if l.Block.loads then addr_resources l else [] in
      List.iter
        (fun r ->
          let lat =
            l.Block.latency + (if List.mem r addr then load_lat else 0)
          in
          let src = node (i, r, `Consumed) in
          List.iter
            (fun w ->
              let dst = node (i, w, `Produced) in
              add_edge src dst (float_of_int lat) 0)
            l.Block.writes)
        l.Block.reads)
    logs;
  (* dependency edges: producer -> consumer, 0 weight; iteration count 1
     when the producing instruction comes later in program order (the
     value crosses the loop back-edge) *)
  let last_writer_before j r =
    let rec scan i =
      if i < 0 then None
      else if List.mem r logs.(i).Block.writes then Some i
      else scan (i - 1)
    in
    match scan (j - 1) with
    | Some i -> Some (i, 0)
    | None ->
      (* wrap around: last writer anywhere in the block *)
      (match scan (n - 1) with
       | Some i -> Some (i, 1)
       | None -> None)
  in
  Array.iteri
    (fun j (l : Block.logical) ->
      List.iter
        (fun r ->
          match last_writer_before j r with
          | Some (i, count) ->
            let src = node (i, r, `Produced) in
            let dst = node (j, r, `Consumed) in
            add_edge src dst 0.0 count
          | None -> ())
        l.Block.reads)
    logs;
  let g = Digraph.create ~n:!counter in
  List.iter (fun (src, dst, weight, count) ->
      Digraph.add_edge g ~src ~dst ~weight ~count)
    !edges;
  let label_arr = Array.make (max !counter 1) "?" in
  List.iter (fun (id, s) -> label_arr.(id) <- s) !labels;
  (g, fun id -> if id >= 0 && id < Array.length label_arr then label_arr.(id) else "?")

let graph = build

let span = Facile_obs.Obs.histogram "model.precedence"

let throughput b =
  Facile_obs.Obs.timed span @@ fun () ->
  let g, _ = build b in
  match Cycle_ratio.howard g with
  | Some r when r > 0.0 -> r
  | _ -> 0.0

let throughput_lawler b =
  let g, _ = build b in
  match Cycle_ratio.lawler g with
  | Some r when r > 0.0 -> r
  | _ -> 0.0

let critical_chain b =
  let g, label = build b in
  match Cycle_ratio.howard g with
  | Some r when r > 0.0 ->
    (match Cycle_ratio.critical_cycle g r with
     | Some edges -> List.map (fun e -> label e.Digraph.src) edges
     | None -> [])
  | _ -> []
