open Facile_x86
open Facile_graph

let resource_name = function
  | Semantics.Reg r -> Register.name r
  | Semantics.Flags -> "flags"

(* Node identity: (logical index, resource, consumed-or-produced). *)
type node_key = int * Semantics.resource * [ `Consumed | `Produced ]

let build (b : Block.t) =
  let logs = Array.of_list b.Block.logicals in
  let n = Array.length logs in
  let load_lat = b.Block.cfg.Facile_uarch.Config.load_latency in
  let tbl : (node_key, int) Hashtbl.t = Hashtbl.create 64 in
  let labels = ref [] in
  let counter = ref 0 in
  let node key =
    match Hashtbl.find_opt tbl key with
    | Some id -> id
    | None ->
      let id = !counter in
      incr counter;
      Hashtbl.add tbl key id;
      let i, r, dir = key in
      let dir_s = match dir with `Consumed -> "use" | `Produced -> "def" in
      labels := (id, Printf.sprintf "%d:%s:%s" i (resource_name r) dir_s)
                :: !labels;
      id
  in
  (* First pass: create nodes and record edges to add (node creation must
     precede graph sizing). *)
  let edges = ref [] in
  let add_edge src dst weight count = edges := (src, dst, weight, count) :: !edges in
  (* intra-instruction edges: every consumed value -> every produced
     value, weighted by the instruction latency. Only address-register
     inputs additionally pay the load latency: a register operand of a
     load-op instruction feeds the ALU µop directly, while the address
     registers feed the load µop first. *)
  let addr_resources (l : Block.logical) =
    List.concat_map
      (fun inst ->
        match Inst.mem_operand inst with
        | Some m ->
          let base =
            match m.Operand.base with
            | Some g -> [ Semantics.Reg (Register.Gpr (Register.W64, g)) ]
            | None -> []
          in
          let index =
            match m.Operand.index with
            | Some (g, _) ->
              [ Semantics.Reg (Register.Gpr (Register.W64, g)) ]
            | None -> []
          in
          base @ index
        | None -> [])
      l.Block.insts
  in
  Array.iteri
    (fun i (l : Block.logical) ->
      let addr = if l.Block.loads then addr_resources l else [] in
      List.iter
        (fun r ->
          let lat =
            l.Block.latency + (if List.mem r addr then load_lat else 0)
          in
          let src = node (i, r, `Consumed) in
          List.iter
            (fun w ->
              let dst = node (i, w, `Produced) in
              add_edge src dst (float_of_int lat) 0)
            l.Block.writes)
        l.Block.reads)
    logs;
  (* dependency edges: producer -> consumer, 0 weight; iteration count 1
     when the producing instruction comes later in program order (the
     value crosses the loop back-edge) *)
  let last_writer_before j r =
    let rec scan i =
      if i < 0 then None
      else if List.mem r logs.(i).Block.writes then Some i
      else scan (i - 1)
    in
    match scan (j - 1) with
    | Some i -> Some (i, 0)
    | None ->
      (* wrap around: last writer anywhere in the block *)
      (match scan (n - 1) with
       | Some i -> Some (i, 1)
       | None -> None)
  in
  Array.iteri
    (fun j (l : Block.logical) ->
      List.iter
        (fun r ->
          match last_writer_before j r with
          | Some (i, count) ->
            let src = node (i, r, `Produced) in
            let dst = node (j, r, `Consumed) in
            add_edge src dst 0.0 count
          | None -> ())
        l.Block.reads)
    logs;
  let g = Digraph.create ~n:!counter in
  List.iter (fun (src, dst, weight, count) ->
      Digraph.add_edge g ~src ~dst ~weight ~count)
    !edges;
  let label_arr = Array.make (max !counter 1) "?" in
  List.iter (fun (id, s) -> label_arr.(id) <- s) !labels;
  (g, fun id -> if id >= 0 && id < Array.length label_arr then label_arr.(id) else "?")

let graph = build

let span = Facile_obs.Obs.histogram "model.precedence"

(* ------------------------------------------------------------------ *)
(* Fast path: the same graph, built without labels, without the
   polymorphic node-key hashtable and without edge lists.

   Node identity is the integer [((i * n_res) + res_code r) * 2 + dir]
   resolved through a flat arena table; [res_code] is injective on
   resources (Flags, every width x GPR, every XMM/YMM register), so the
   node table is exactly the reference hashtable. Nodes are discovered
   and edges pushed in the reference order, and the push buffer is
   reversed before the Howard run because the reference build adds its
   accumulated edge list in reverse push order — [Cycle_ratio.howard_flat]
   therefore sees bit-identical input and returns bit-identical floats.

   Latency is read from [b.logicals] (not from [Block.flat]) on purpose:
   ablation baselines perturb latencies via [{ b with logicals }]. *)

let n_res = 97

let res_code = function
  | Semantics.Flags -> 0
  | Semantics.Reg (Register.Gpr (w, g)) ->
    let wi =
      match w with
      | Register.W8 -> 0
      | Register.W16 -> 1
      | Register.W32 -> 2
      | Register.W64 -> 3
    in
    1 + (wi * 16) + Register.gpr_index g
  | Semantics.Reg (Register.Xmm n) -> 65 + n
  | Semantics.Reg (Register.Ymm n) -> 81 + n

(* Is [r] a load-address register of the logical with GPR mask [mask]?
   Address resources are always full-width GPRs. *)
let in_addr mask = function
  | Semantics.Reg (Register.Gpr (Register.W64, g)) ->
    mask land (1 lsl Register.gpr_index g) <> 0
  | _ -> false

let throughput b =
  Facile_obs.Obs.timed span @@ fun () ->
  let logicals = b.Block.logicals in
  let n = List.length logicals in
  if n = 0 then 0.0
  else begin
    let a = Arena.get () in
    let load_lat = b.Block.cfg.Facile_uarch.Config.load_latency in
    let amask = b.Block.flat.Block.l_addr_mask in
    (* Pre-pass: flatten every logical's reads and writes to resource
       codes (reads with their load-latency-adjusted edge weight) and
       build per-logical write-set bitmasks, so the two edge passes
       below run on ints only. *)
    let total_r = ref 0 and total_w = ref 0 in
    List.iter
      (fun (l : Block.logical) ->
        total_r := !total_r + List.length l.Block.reads;
        total_w := !total_w + List.length l.Block.writes)
      logicals;
    let roff = Arena.ints a.Arena.prec_roff (n + 1) in
    a.Arena.prec_roff <- roff;
    let rcode = Arena.ints a.Arena.prec_rcode (max !total_r 1) in
    a.Arena.prec_rcode <- rcode;
    let rlat = Arena.ints a.Arena.prec_rlat (max !total_r 1) in
    a.Arena.prec_rlat <- rlat;
    let woff = Arena.ints a.Arena.prec_woff (n + 1) in
    a.Arena.prec_woff <- woff;
    let wcode = Arena.ints a.Arena.prec_wcode (max !total_w 1) in
    a.Arena.prec_wcode <- wcode;
    let wlo = Arena.ints a.Arena.prec_wlo n in
    a.Arena.prec_wlo <- wlo;
    let whi = Arena.ints a.Arena.prec_whi n in
    a.Arena.prec_whi <- whi;
    let nr = ref 0 and nw = ref 0 in
    List.iteri
      (fun i (l : Block.logical) ->
        roff.(i) <- !nr;
        woff.(i) <- !nw;
        let mask = amask.(i) in
        List.iter
          (fun r ->
            rcode.(!nr) <- res_code r;
            rlat.(!nr) <-
              l.Block.latency + (if in_addr mask r then load_lat else 0);
            incr nr)
          l.Block.reads;
        let lo = ref 0 and hi = ref 0 in
        List.iter
          (fun w ->
            let c = res_code w in
            wcode.(!nw) <- c;
            incr nw;
            if c < 63 then lo := !lo lor (1 lsl c)
            else hi := !hi lor (1 lsl (c - 63)))
          l.Block.writes;
        wlo.(i) <- !lo;
        whi.(i) <- !hi)
      logicals;
    roff.(n) <- !nr;
    woff.(n) <- !nw;
    (* Node ids through the generation-stamped table: a slot is valid
       only when its stamp equals this call's generation, so the table
       never needs clearing. *)
    let gen = a.Arena.prec_generation + 1 in
    a.Arena.prec_generation <- gen;
    let ntab = n * n_res * 2 in
    let nodes = Arena.ints a.Arena.prec_nodes ntab in
    a.Arena.prec_nodes <- nodes;
    let stamps = Arena.ints a.Arena.prec_gen ntab in
    a.Arena.prec_gen <- stamps;
    let counter = ref 0 in
    let node i rc dir =
      let k = (((i * n_res) + rc) * 2) + dir in
      if stamps.(k) = gen then nodes.(k)
      else begin
        let id = !counter in
        incr counter;
        stamps.(k) <- gen;
        nodes.(k) <- id;
        id
      end
    in
    let m = ref 0 in
    let grow_edges () =
      let c = max 64 (2 * Array.length a.Arena.prec_src) in
      let ns = Array.make c 0 in
      Array.blit a.Arena.prec_src 0 ns 0 !m;
      a.Arena.prec_src <- ns;
      let nd = Array.make c 0 in
      Array.blit a.Arena.prec_dst 0 nd 0 !m;
      a.Arena.prec_dst <- nd;
      let nw = Array.make c 0.0 in
      Array.blit a.Arena.prec_w 0 nw 0 !m;
      a.Arena.prec_w <- nw;
      let nc = Array.make c 0 in
      Array.blit a.Arena.prec_cnt 0 nc 0 !m;
      a.Arena.prec_cnt <- nc
    in
    (* [push] takes the weight as an int so no boxed float crosses the
       closure boundary (all edge weights are integral latencies) *)
    let push src dst wi c =
      if !m >= Array.length a.Arena.prec_src then grow_edges ();
      let k = !m in
      a.Arena.prec_src.(k) <- src;
      a.Arena.prec_dst.(k) <- dst;
      a.Arena.prec_w.(k) <- float_of_int wi;
      a.Arena.prec_cnt.(k) <- c;
      incr m
    in
    (* intra-instruction edges (see [build] for the load-latency rule) *)
    for i = 0 to n - 1 do
      for ri = roff.(i) to roff.(i + 1) - 1 do
        let src = node i rcode.(ri) 0 in
        let w = rlat.(ri) in
        for wi = woff.(i) to woff.(i + 1) - 1 do
          push src (node i wcode.(wi) 1) w 0
        done
      done
    done;
    (* dependency edges: producer -> consumer. The last-writer scan is
       a bitmask test against each candidate's write set — [res_code]
       is injective, so this is exactly the reference [List.mem]. *)
    let writes_res i blo bhi =
      (wlo.(i) land blo) lor (whi.(i) land bhi) <> 0
    in
    for j = 0 to n - 1 do
      for ri = roff.(j) to roff.(j + 1) - 1 do
        let rc = rcode.(ri) in
        let blo = if rc < 63 then 1 lsl rc else 0
        and bhi = if rc < 63 then 0 else 1 lsl (rc - 63) in
        let i = ref (j - 1) in
        while !i >= 0 && not (writes_res !i blo bhi) do
          decr i
        done;
        let i, c =
          if !i >= 0 then (!i, 0)
          else begin
            let i = ref (n - 1) in
            while !i >= 0 && not (writes_res !i blo bhi) do
              decr i
            done;
            (!i, 1)
          end
        in
        if i >= 0 then begin
          let src = node i rc 1 in
          let dst = node j rc 0 in
          push src dst 0 c
        end
      done
    done;
    (* the reference build adds its accumulated list in reverse push
       order; mirror that so the Howard run sees identical input *)
    let mm = !m in
    let src = a.Arena.prec_src
    and dst = a.Arena.prec_dst
    and w = a.Arena.prec_w
    and cnt = a.Arena.prec_cnt in
    for k = 0 to (mm / 2) - 1 do
      let k' = mm - 1 - k in
      let t = src.(k) in
      src.(k) <- src.(k');
      src.(k') <- t;
      let t = dst.(k) in
      dst.(k) <- dst.(k');
      dst.(k') <- t;
      let t = w.(k) in
      w.(k) <- w.(k');
      w.(k') <- t;
      let t = cnt.(k) in
      cnt.(k) <- cnt.(k');
      cnt.(k') <- t
    done;
    match
      Cycle_ratio.howard_flat ~n:!counter ~m:mm ~src ~dst ~weight:w
        ~count:cnt
    with
    | Some r when r > 0.0 -> r
    | _ -> 0.0
  end

(* Reference path: labeled hashtable build + list-based Howard. *)
let throughput_ref b =
  Facile_obs.Obs.timed span @@ fun () ->
  let g, _ = build b in
  match Cycle_ratio.howard g with
  | Some r when r > 0.0 -> r
  | _ -> 0.0

let throughput_lawler b =
  let g, _ = build b in
  match Cycle_ratio.lawler g with
  | Some r when r > 0.0 -> r
  | _ -> 0.0

let critical_chain b =
  let g, label = build b in
  match Cycle_ratio.howard g with
  | Some r when r > 0.0 ->
    (match Cycle_ratio.critical_cycle g r with
     | Some edges -> List.map (fun e -> label e.Digraph.src) edges
     | None -> [])
  | _ -> []
