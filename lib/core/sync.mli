(** Exception-safe critical sections — the only sanctioned way to use
    a [Mutex.t] in this tree.  `facile lint` (DESIGN.md section 14)
    flags raw [Mutex.lock]/[Mutex.unlock] and raw [Condition.wait]
    anywhere outside this module's implementation. *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
(** [with_lock mu f] runs [f ()] with [mu] held and releases [mu] on
    every exit path, including an exception from [f] (re-raised with
    its original backtrace). *)

val with_lock_cond :
  Mutex.t -> Condition.t -> until:(unit -> bool) -> (unit -> 'a) -> 'a
(** [with_lock_cond mu cond ~until f] is the condition-wait idiom as
    one combinator: with [mu] held, wait on [cond] until [until ()]
    is true, then run [f ()] in the same critical section.  [until]
    and [f] both run under [mu]. *)
