(** Domain-local scratch buffers for the prediction hot path.

    Each component predictor owns a few named growable buffers here
    instead of allocating working arrays per call; the arena is
    per-domain (via [Domain.DLS]), so the engine's worker domains never
    share scratch. Buffers only grow and their contents are garbage on
    entry; a caller must not hold one across a call into another
    component that uses the same field. *)

type t = {
  mutable predec_last : int array;
  mutable predec_opc : int array;
  mutable predec_lcp : int array;
  mutable dec_complex : int array;
  mutable dec_first : int array;
  mutable ports_dedup : Facile_uarch.Port.t array;
  mutable ports_pairs : Facile_uarch.Port.t array;
  mutable ports_cnt : int array;
  mutable prec_nodes : int array;
  mutable prec_gen : int array;
  mutable prec_generation : int;
  mutable prec_roff : int array;
  mutable prec_rcode : int array;
  mutable prec_rlat : int array;
  mutable prec_woff : int array;
  mutable prec_wcode : int array;
  mutable prec_wlo : int array;
  mutable prec_whi : int array;
  mutable prec_src : int array;
  mutable prec_dst : int array;
  mutable prec_w : float array;
  mutable prec_cnt : int array;
  vals : float array;  (** the seven component bounds, see {!Model} *)
}

(** The current domain's arena. *)
val get : unit -> t

(** [ints buf n] ([ports buf n], [floats buf n]) is [buf] if it already
    holds [n] elements, else a fresh larger buffer; the caller stores
    the result back into the arena field it came from. Contents are
    unspecified. *)
val ints : int array -> int -> int array

val ports : Facile_uarch.Port.t array -> int -> Facile_uarch.Port.t array
val floats : float array -> int -> float array
