(** Microarchitecture configurations for the nine Intel Core
    generations evaluated in the paper (Table 1), mirroring the role of
    uiCA's [microArchConfigs.py].

    Parameter values follow publicly documented characteristics
    (issue width, buffer sizes, port layouts, the SKL150 LSD erratum,
    the JCC erratum mitigation); see DESIGN.md for the approximations
    made where exact values are not public. *)

type arch = SNB | IVB | HSW | BDW | SKL | CLX | ICL | TGL | RKL

(** Dispatch-port sets for the operation categories used by the
    instruction database. *)
type port_map = {
  alu : Port.t;          (** simple integer ALU *)
  shift : Port.t;        (** shifts and rotates *)
  branch : Port.t;       (** taken/conditional branch unit *)
  slow_int : Port.t;     (** imul, popcnt, lzcnt, bit scans *)
  divider : Port.t;      (** integer and FP divide *)
  load : Port.t;         (** load AGU + data *)
  store_agu : Port.t;    (** store-address generation *)
  store_data : Port.t;
  lea : Port.t;          (** fast (2-component) LEA *)
  slow_lea : Port.t;     (** 3-component / scaled-index LEA *)
  fp_add : Port.t;
  fp_mul : Port.t;
  fp_fma : Port.t;
  vec_alu : Port.t;      (** SIMD integer / logical *)
  vec_imul : Port.t;     (** pmulld, pmuludq *)
  shuffle : Port.t;
  vec_shift : Port.t;
}

type t = {
  arch : arch;
  name : string;
  abbrev : string;
  released : int;
  cpu : string;                 (** representative CPU from Table 1 *)
  n_decoders : int;
  predecode_width : int;        (** instructions predecoded per cycle *)
  issue_width : int;
  dsb_width : int;              (** µops the DSB delivers per cycle *)
  idq_size : int;               (** µop capacity of the IDQ (LSD window) *)
  lsd_enabled : bool;
  lsd_unroll_max : int;         (** maximum LSD unroll factor *)
  lsd_unroll_target : int;      (** unroll until [n * u >= target] *)
  macro_fusible_on_last_decoder : bool;
  macro_fusion : bool;          (** CMP/TEST (+ALU) fuse with Jcc *)
  jcc_erratum : bool;           (** mitigation for the JCC erratum active *)
  mov_elim_gpr : bool;          (** register moves eliminated at rename *)
  mov_elim_vec : bool;
  unlamination_simple_ok : bool;
  (** on SKL+ micro-fused µops with indexed addressing stay fused unless
      the instruction has additional register sources *)
  rob_size : int;
  rs_size : int;
  load_latency : int;
  has_avx2_fma : bool;          (** FMA instructions available (HSW+) *)
  ports : Port.t;               (** all execution ports *)
  pm : port_map;
}

(** The named dispatch-port sets of a [port_map], in declaration
    order — the single place the field list is spelled out, used by
    [ports]-derivation and the [facile check] config linter. *)
val pm_fields : port_map -> (string * Port.t) list

(** All nine configurations, oldest (SNB) first. *)
val all : t list

val by_arch : arch -> t
val of_abbrev : string -> t option
val arch_name : arch -> string

(** [lsd_unroll cfg n] is the LSD unroll factor for a loop of [n]
    fused-domain µops: the smallest [u <= lsd_unroll_max] such that
    [n * u >= lsd_unroll_target] (or [lsd_unroll_max] if none). *)
val lsd_unroll : t -> int -> int
