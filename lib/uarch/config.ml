type arch = SNB | IVB | HSW | BDW | SKL | CLX | ICL | TGL | RKL

type port_map = {
  alu : Port.t;
  shift : Port.t;
  branch : Port.t;
  slow_int : Port.t;
  divider : Port.t;
  load : Port.t;
  store_agu : Port.t;
  store_data : Port.t;
  lea : Port.t;
  slow_lea : Port.t;
  fp_add : Port.t;
  fp_mul : Port.t;
  fp_fma : Port.t;
  vec_alu : Port.t;
  vec_imul : Port.t;
  shuffle : Port.t;
  vec_shift : Port.t;
}

type t = {
  arch : arch;
  name : string;
  abbrev : string;
  released : int;
  cpu : string;
  n_decoders : int;
  predecode_width : int;
  issue_width : int;
  dsb_width : int;
  idq_size : int;
  lsd_enabled : bool;
  lsd_unroll_max : int;
  lsd_unroll_target : int;
  macro_fusible_on_last_decoder : bool;
  macro_fusion : bool;
  jcc_erratum : bool;
  mov_elim_gpr : bool;
  mov_elim_vec : bool;
  unlamination_simple_ok : bool;
  rob_size : int;
  rs_size : int;
  load_latency : int;
  has_avx2_fma : bool;
  ports : Port.t;
  pm : port_map;
}

let p = Port.of_list

(* Sandy Bridge / Ivy Bridge: six ports, shared load/store-address AGUs
   on p2/p3, FP add on p1, FP mul on p0. *)
let pm_snb =
  { alu = p [ 0; 1; 5 ];
    shift = p [ 0; 5 ];
    branch = p [ 5 ];
    slow_int = p [ 1 ];
    divider = p [ 0 ];
    load = p [ 2; 3 ];
    store_agu = p [ 2; 3 ];
    store_data = p [ 4 ];
    lea = p [ 1; 5 ];
    slow_lea = p [ 1 ];
    fp_add = p [ 1 ];
    fp_mul = p [ 0 ];
    fp_fma = Port.empty;
    vec_alu = p [ 0; 1; 5 ];
    vec_imul = p [ 0 ];
    shuffle = p [ 5 ];
    vec_shift = p [ 0 ] }

(* Haswell / Broadwell: eight ports, p6 branch/ALU, p7 simple store AGU,
   two FMA units on p0/p1 (FP add only p1 on HSW). *)
let pm_hsw =
  { alu = p [ 0; 1; 5; 6 ];
    shift = p [ 0; 6 ];
    branch = p [ 0; 6 ];
    slow_int = p [ 1 ];
    divider = p [ 0 ];
    load = p [ 2; 3 ];
    store_agu = p [ 2; 3; 7 ];
    store_data = p [ 4 ];
    lea = p [ 1; 5 ];
    slow_lea = p [ 1 ];
    fp_add = p [ 1 ];
    fp_mul = p [ 0; 1 ];
    fp_fma = p [ 0; 1 ];
    vec_alu = p [ 0; 1; 5 ];
    vec_imul = p [ 0 ];
    shuffle = p [ 5 ];
    vec_shift = p [ 0 ] }

(* Skylake / Cascade Lake: FP add/mul/FMA unified on p0/p1. *)
let pm_skl =
  { pm_hsw with
    fp_add = p [ 0; 1 ];
    fp_mul = p [ 0; 1 ];
    fp_fma = p [ 0; 1 ];
    vec_imul = p [ 0; 1 ];
    vec_shift = p [ 0; 1 ] }

(* Ice Lake family: dedicated store AGUs on p7/p8, second shuffle unit
   on p1. TGL/RKL add a second store-data port (p9). *)
let pm_icl =
  { alu = p [ 0; 1; 5; 6 ];
    shift = p [ 0; 6 ];
    branch = p [ 0; 6 ];
    slow_int = p [ 1 ];
    divider = p [ 0 ];
    load = p [ 2; 3 ];
    store_agu = p [ 7; 8 ];
    store_data = p [ 4 ];
    lea = p [ 1; 5 ];
    slow_lea = p [ 1 ];
    fp_add = p [ 0; 1 ];
    fp_mul = p [ 0; 1 ];
    fp_fma = p [ 0; 1 ];
    vec_alu = p [ 0; 1; 5 ];
    vec_imul = p [ 0; 1 ];
    shuffle = p [ 1; 5 ];
    vec_shift = p [ 0; 1 ] }

let pm_tgl = { pm_icl with store_data = p [ 4; 9 ] }

let pm_fields pm =
  [ "alu", pm.alu; "shift", pm.shift; "branch", pm.branch;
    "slow_int", pm.slow_int; "divider", pm.divider; "load", pm.load;
    "store_agu", pm.store_agu; "store_data", pm.store_data;
    "lea", pm.lea; "slow_lea", pm.slow_lea; "fp_add", pm.fp_add;
    "fp_mul", pm.fp_mul; "fp_fma", pm.fp_fma; "vec_alu", pm.vec_alu;
    "vec_imul", pm.vec_imul; "shuffle", pm.shuffle;
    "vec_shift", pm.vec_shift ]

let ports_of_pm pm =
  List.fold_left (fun acc (_, p) -> Port.union acc p) Port.empty
    (pm_fields pm)

let mk ~arch ~name ~abbrev ~released ~cpu ~issue_width ~dsb_width ~idq_size
    ~lsd_enabled ~jcc_erratum ~mov_elim_gpr ~mov_elim_vec
    ~unlamination_simple_ok ~rob_size ~rs_size ~load_latency ~has_avx2_fma
    ~macro_fusible_on_last_decoder pm =
  { arch; name; abbrev; released; cpu;
    n_decoders = 4;
    predecode_width = 5;
    issue_width; dsb_width; idq_size; lsd_enabled;
    lsd_unroll_max = 8;
    lsd_unroll_target = 4 * issue_width;
    macro_fusible_on_last_decoder;
    macro_fusion = true;
    jcc_erratum;
    mov_elim_gpr; mov_elim_vec; unlamination_simple_ok;
    rob_size; rs_size; load_latency; has_avx2_fma;
    ports = ports_of_pm pm;
    pm }

let snb =
  mk ~arch:SNB ~name:"Sandy Bridge" ~abbrev:"SNB" ~released:2011
    ~cpu:"Intel Core i7-2600" ~issue_width:4 ~dsb_width:4 ~idq_size:28
    ~lsd_enabled:true ~jcc_erratum:false ~mov_elim_gpr:false
    ~mov_elim_vec:false ~unlamination_simple_ok:false ~rob_size:168
    ~rs_size:54 ~load_latency:4 ~has_avx2_fma:false
    ~macro_fusible_on_last_decoder:false pm_snb

let ivb =
  mk ~arch:IVB ~name:"Ivy Bridge" ~abbrev:"IVB" ~released:2012
    ~cpu:"Intel Core i5-3470" ~issue_width:4 ~dsb_width:4 ~idq_size:28
    ~lsd_enabled:true ~jcc_erratum:false ~mov_elim_gpr:true
    ~mov_elim_vec:true ~unlamination_simple_ok:false ~rob_size:168
    ~rs_size:54 ~load_latency:4 ~has_avx2_fma:false
    ~macro_fusible_on_last_decoder:false pm_snb

let hsw =
  mk ~arch:HSW ~name:"Haswell" ~abbrev:"HSW" ~released:2013
    ~cpu:"Intel Xeon E3-1225 v3" ~issue_width:4 ~dsb_width:4 ~idq_size:56
    ~lsd_enabled:true ~jcc_erratum:false ~mov_elim_gpr:true
    ~mov_elim_vec:true ~unlamination_simple_ok:false ~rob_size:192
    ~rs_size:60 ~load_latency:4 ~has_avx2_fma:true
    ~macro_fusible_on_last_decoder:false pm_hsw

let bdw =
  mk ~arch:BDW ~name:"Broadwell" ~abbrev:"BDW" ~released:2015
    ~cpu:"Intel Core i5-5200U" ~issue_width:4 ~dsb_width:4 ~idq_size:56
    ~lsd_enabled:true ~jcc_erratum:false ~mov_elim_gpr:true
    ~mov_elim_vec:true ~unlamination_simple_ok:false ~rob_size:192
    ~rs_size:64 ~load_latency:4 ~has_avx2_fma:true
    ~macro_fusible_on_last_decoder:false pm_hsw

let skl =
  mk ~arch:SKL ~name:"Skylake" ~abbrev:"SKL" ~released:2015
    ~cpu:"Intel Core i7-6500U" ~issue_width:4 ~dsb_width:6 ~idq_size:64
    ~lsd_enabled:false (* SKL150 erratum *) ~jcc_erratum:true
    ~mov_elim_gpr:true ~mov_elim_vec:true ~unlamination_simple_ok:true
    ~rob_size:224 ~rs_size:97 ~load_latency:4 ~has_avx2_fma:true
    ~macro_fusible_on_last_decoder:true pm_skl

let clx =
  mk ~arch:CLX ~name:"Cascade Lake" ~abbrev:"CLX" ~released:2019
    ~cpu:"Intel Core i9-10980XE" ~issue_width:4 ~dsb_width:6 ~idq_size:64
    ~lsd_enabled:false ~jcc_erratum:true ~mov_elim_gpr:true
    ~mov_elim_vec:true ~unlamination_simple_ok:true ~rob_size:224
    ~rs_size:97 ~load_latency:4 ~has_avx2_fma:true
    ~macro_fusible_on_last_decoder:true pm_skl

let icl =
  mk ~arch:ICL ~name:"Ice Lake" ~abbrev:"ICL" ~released:2019
    ~cpu:"Intel Core i5-1035G1" ~issue_width:5 ~dsb_width:6 ~idq_size:70
    ~lsd_enabled:true ~jcc_erratum:false
    ~mov_elim_gpr:false (* disabled by microcode on the ICL family *)
    ~mov_elim_vec:true ~unlamination_simple_ok:true ~rob_size:352
    ~rs_size:160 ~load_latency:5 ~has_avx2_fma:true
    ~macro_fusible_on_last_decoder:true pm_icl

let tgl =
  mk ~arch:TGL ~name:"Tiger Lake" ~abbrev:"TGL" ~released:2020
    ~cpu:"Intel Core i7-1165G7" ~issue_width:5 ~dsb_width:6 ~idq_size:70
    ~lsd_enabled:true ~jcc_erratum:false ~mov_elim_gpr:false
    ~mov_elim_vec:true ~unlamination_simple_ok:true ~rob_size:352
    ~rs_size:160 ~load_latency:5 ~has_avx2_fma:true
    ~macro_fusible_on_last_decoder:true pm_tgl

let rkl =
  mk ~arch:RKL ~name:"Rocket Lake" ~abbrev:"RKL" ~released:2021
    ~cpu:"Intel Core i9-11900" ~issue_width:5 ~dsb_width:6 ~idq_size:70
    ~lsd_enabled:true ~jcc_erratum:false ~mov_elim_gpr:false
    ~mov_elim_vec:true ~unlamination_simple_ok:true ~rob_size:352
    ~rs_size:160 ~load_latency:5 ~has_avx2_fma:true
    ~macro_fusible_on_last_decoder:true pm_tgl

let all = [ snb; ivb; hsw; bdw; skl; clx; icl; tgl; rkl ]

let by_arch a = List.find (fun c -> c.arch = a) all

let of_abbrev s =
  let s = String.uppercase_ascii s in
  List.find_opt (fun c -> c.abbrev = s) all

let arch_name a = (by_arch a).name

let lsd_unroll cfg n =
  if n <= 0 then 1
  else
    let rec go u =
      if u >= cfg.lsd_unroll_max then cfg.lsd_unroll_max
      else if n * u >= cfg.lsd_unroll_target then u
      else go (u + 1)
    in
    go 1
