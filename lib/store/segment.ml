let magic = "FACSTOR1"
let version = 1
let header_size = 24
let max_frame = 16 * 1024 * 1024

let put_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF))

let get_u32 s off =
  let b i = Char.code s.[off + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let encode_header ~fingerprint =
  let b = Buffer.create header_size in
  Buffer.add_string b magic;
  put_u32 b version;
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr
         (Int64.to_int (Int64.shift_right_logical fingerprint (8 * i))
          land 0xFF))
  done;
  let body = Buffer.contents b in
  put_u32 b (Crc32.string body);
  Buffer.contents b

type header_error =
  | Truncated of int
  | Bad_magic
  | Bad_crc
  | Version_skew of { found : int; expected : int }

let header_error_to_string = function
  | Truncated n -> Printf.sprintf "file is %d bytes, shorter than a header" n
  | Bad_magic -> "bad magic (not a facile store)"
  | Bad_crc -> "header checksum mismatch"
  | Version_skew { found; expected } ->
    Printf.sprintf "format version %d, this build expects %d" found expected

let decode_header s =
  if String.length s < header_size then Error (Truncated (String.length s))
  else if String.sub s 0 8 <> magic then Error Bad_magic
  else if get_u32 s 20 <> Crc32.sub s 0 20 then Error Bad_crc
  else begin
    let found = get_u32 s 8 in
    if found <> version then Error (Version_skew { found; expected = version })
    else begin
      let fp = ref 0L in
      for i = 7 downto 0 do
        fp := Int64.logor (Int64.shift_left !fp 8)
                (Int64.of_int (Char.code s.[12 + i]))
      done;
      Ok !fp
    end
  end

let encode_frame payload =
  let b = Buffer.create (8 + String.length payload) in
  put_u32 b (String.length payload);
  put_u32 b (Crc32.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

type finding =
  | Crc_mismatch of { off : int; len : int }
  | Torn_tail of { off : int; remaining : int }

let finding_to_string = function
  | Crc_mismatch { off; len } ->
    Printf.sprintf "frame at offset %d (%d bytes): checksum mismatch, \
                    quarantined" off len
  | Torn_tail { off; remaining } ->
    Printf.sprintf "torn tail at offset %d (%d trailing bytes)" off remaining

type scan = {
  frames : (int * string) list;
  findings : finding list;
  good_end : int;
}

(* Flip one bit of [payload] when the "store.read" fault point draws,
   so recovery paths can be exercised without hand-built fixtures. *)
let maybe_corrupt payload =
  if String.length payload = 0 then payload
  else
    match Facile_engine.Fault.draw "store.read" with
    | None -> payload
    | Some r ->
      let bit = r mod (String.length payload * 8) in
      let b = Bytes.of_string payload in
      let i = bit / 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
      Bytes.to_string b

let scan content =
  let n = String.length content in
  let frames = ref [] in
  let findings = ref [] in
  let good_end = ref header_size in
  let off = ref header_size in
  let stop = ref false in
  while (not !stop) && !off < n do
    let o = !off in
    if o + 8 > n then begin
      findings := Torn_tail { off = o; remaining = n - o } :: !findings;
      stop := true
    end
    else begin
      let len = get_u32 content o in
      if len > max_frame || o + 8 + len > n then begin
        findings := Torn_tail { off = o; remaining = n - o } :: !findings;
        stop := true
      end
      else begin
        let crc = get_u32 content (o + 4) in
        let payload = maybe_corrupt (String.sub content (o + 8) len) in
        if Crc32.string payload = crc then frames := (o, payload) :: !frames
        else findings := Crc_mismatch { off = o; len } :: !findings;
        off := o + 8 + len;
        good_end := !off
      end
    end
  done;
  { frames = List.rev !frames;
    findings = List.rev !findings;
    good_end = !good_end }
