(* Table-driven CRC-32 (IEEE, reflected, poly 0xEDB88320) — the same
   checksum zlib/PNG/ethernet use, so segments can be cross-checked
   with standard tools.  OCaml ints are 63-bit here, so the 32-bit
   arithmetic fits natively. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let sub s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Crc32.sub";
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := t.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string s = sub s 0 (String.length s)
