open Facile_uarch
module Err = Facile_x86.Err
module Json = Facile_obs.Json
module Fault = Facile_engine.Fault
module Flat = Facile_db.Flat

(* ----- table/config fingerprint -----

   FNV-1a 64 over every value that can change a prediction: the flat
   instruction tables of all nine arches plus every config field.
   Derived caches (descriptor objects, slot hashtable) are skipped —
   they are functions of what is hashed.  The hash is content-based,
   not build-id-based, so a rebuild with identical tables keeps its
   caches warm. *)

let fnv_prime = 0x100000001B3L
let fnv_basis = 0xCBF29CE484222325L

let fingerprint_of_tables () =
  let h = ref fnv_basis in
  let byte b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xFF))) fnv_prime
  in
  let i64 (v : int64) =
    for i = 0 to 7 do
      byte (Int64.to_int (Int64.shift_right_logical v (8 * i)))
    done
  in
  let int v = i64 (Int64.of_int v) in
  let fl v = i64 (Int64.bits_of_float v) in
  let bool v = byte (if v then 1 else 0) in
  let str s =
    int (String.length s);
    String.iter (fun c -> byte (Char.code c)) s
  in
  let port p = int (p : Port.t :> int) in
  List.iter
    (fun cfg ->
      str cfg.Config.abbrev;
      int cfg.Config.released;
      int cfg.Config.n_decoders;
      int cfg.Config.predecode_width;
      int cfg.Config.issue_width;
      int cfg.Config.dsb_width;
      int cfg.Config.idq_size;
      bool cfg.Config.lsd_enabled;
      int cfg.Config.lsd_unroll_max;
      int cfg.Config.lsd_unroll_target;
      bool cfg.Config.macro_fusible_on_last_decoder;
      bool cfg.Config.macro_fusion;
      bool cfg.Config.jcc_erratum;
      bool cfg.Config.mov_elim_gpr;
      bool cfg.Config.mov_elim_vec;
      bool cfg.Config.unlamination_simple_ok;
      int cfg.Config.rob_size;
      int cfg.Config.rs_size;
      int cfg.Config.load_latency;
      bool cfg.Config.has_avx2_fma;
      port cfg.Config.ports;
      List.iter (fun (n, p) -> str n; port p)
        (Config.pm_fields cfg.Config.pm);
      let t = Flat.table cfg in
      Array.iter bool t.Flat.supported;
      Array.iter int t.Flat.fused;
      Array.iter int t.Flat.issued;
      Array.iter int t.Flat.latency;
      Array.iter fl t.Flat.latency_f;
      Array.iter int t.Flat.avail;
      Array.iter int t.Flat.flags;
      Array.iter int t.Flat.uop_off;
      Array.iter int t.Flat.uop_kind;
      Array.iter port t.Flat.uop_ports)
    Config.all;
  !h

let fingerprint =
  let fp = lazy (fingerprint_of_tables ()) in
  fun () -> Lazy.force fp

(* ----- scan reports ----- *)

type report = {
  records : Codec.record list;
  frames_ok : int;
  quarantined : int;
  undecodable : int;
  torn_tail : int;
  file_size : int;
  good_end : int;
  stored_fingerprint : int64;
}

let report_clean r =
  r.quarantined = 0 && r.undecodable = 0 && r.torn_tail = 0

let report_to_json r =
  Json.Obj
    [ "records", Json.Int (List.length r.records);
      "frames_ok", Json.Int r.frames_ok;
      "quarantined", Json.Int r.quarantined;
      "undecodable", Json.Int r.undecodable;
      "torn_tail_bytes", Json.Int r.torn_tail;
      "file_size", Json.Int r.file_size;
      "good_end", Json.Int r.good_end;
      "fingerprint", Json.Str (Printf.sprintf "%016Lx" r.stored_fingerprint);
      "clean", Json.Bool (report_clean r) ]

let err kind fmt = Printf.ksprintf (fun msg -> Error (Err.v kind msg)) fmt

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Ok s
  | exception Sys_error m -> err Err.Internal "%s" m

let check_header ?(check_fingerprint = true) path content =
  match Segment.decode_header content with
  | Error (Segment.Version_skew _ as e) ->
    err Err.Store_skew "%s: %s" path (Segment.header_error_to_string e)
  | Error e ->
    err Err.Check_failed "%s: %s" path (Segment.header_error_to_string e)
  | Ok fp ->
    if check_fingerprint && fp <> fingerprint () then
      err Err.Store_skew
        "%s: written against tables/configs %016Lx, this build is %016Lx"
        path fp (fingerprint ())
    else Ok fp

let scan_to_report content stored_fingerprint =
  let s = Segment.scan content in
  let quarantined, torn =
    List.fold_left
      (fun (q, t) f ->
        match f with
        | Segment.Crc_mismatch _ -> (q + 1, t)
        | Segment.Torn_tail { remaining; _ } -> (q, t + remaining))
      (0, 0) s.Segment.findings
  in
  let records, undecodable =
    List.fold_left
      (fun (rs, bad) (_off, payload) ->
        match Codec.decode payload with
        | Ok r -> (r :: rs, bad)
        | Error _ -> (rs, bad + 1))
      ([], 0) s.Segment.frames
  in
  { records = List.rev records;
    frames_ok = List.length s.Segment.frames;
    quarantined;
    undecodable;
    torn_tail = torn;
    file_size = String.length content;
    good_end = s.Segment.good_end;
    stored_fingerprint }

let load ?check_fingerprint path =
  let ( let* ) = Result.bind in
  let* content = read_file path in
  let* fp = check_header ?check_fingerprint path content in
  Ok (scan_to_report content fp)

(* ----- writer ----- *)

type writer = {
  fd : Unix.file_descr;
  wpath : string;
  seen : (Facile_engine.Engine.memo_key, unit) Hashtbl.t;
  mutable closed : bool; (* lint: unguarded — writer is single-owner; Serve serializes flushes *)
}

let path w = w.wpath
let seen_count w = Hashtbl.length w.seen

let io_fail w fmt =
  Printf.ksprintf
    (fun msg -> Err.raise_err Err.Internal (w.wpath ^ ": " ^ msg))
    fmt

(* Full write with the store fault points applied first.  A short
   write leaves its prefix on disk — exactly what a crash mid-append
   does — and then surfaces as an error. *)
let write_all w s =
  (match Fault.draw "store.enospc" with
   | Some _ -> io_fail w "write: no space left on device (injected)"
   | None -> ());
  let n = String.length s in
  let upto =
    match Fault.draw "store.short_write" with
    | Some r when n > 0 -> r mod n  (* strictly less than the frame *)
    | _ -> n
  in
  let b = Bytes.of_string s in
  let written = ref 0 in
  (try
     while !written < upto do
       written := !written + Unix.write w.fd b !written (upto - !written)
     done
   with Unix.Unix_error (e, _, _) ->
     io_fail w "write: %s" (Unix.error_message e));
  if upto < n then io_fail w "short write (%d of %d bytes, injected)" upto n

let open_rw p =
  let ( let* ) = Result.bind in
  let* existing =
    if Sys.file_exists p then Result.map Option.some (read_file p)
    else Ok None
  in
  let fresh_header () =
    (* New store, or a file shorter than one header: a crash during
       creation can leave a torn header, and no frame can precede it,
       so rewriting from scratch loses nothing. *)
    Ok (Segment.encode_header ~fingerprint:(fingerprint ()), None)
  in
  let* content, report =
    match existing with
    | None -> fresh_header ()
    | Some c when String.length c < Segment.header_size -> fresh_header ()
    | Some c ->
      let* fp = check_header p c in
      let r = scan_to_report c fp in
      Ok (String.sub c 0 r.good_end, Some r)
  in
  match
    let fd = Unix.openfile p [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
    let w = { fd; wpath = p; seen = Hashtbl.create 256; closed = false } in
    (* Recovery: rewrite the recovered prefix bound and drop the torn
       tail (no-op when the store was clean). *)
    Unix.ftruncate fd (String.length content);
    (match report with
     | Some _ -> ()
     | None ->
       let n = Unix.write_substring fd content 0 (String.length content) in
       if n <> String.length content then io_fail w "short header write");
    ignore (Unix.lseek fd 0 Unix.SEEK_END);
    (match report with
     | None -> ()
     | Some r ->
       List.iter
         (fun rec_ ->
           let k, _ = Codec.to_memo rec_ in
           Hashtbl.replace w.seen k ())
         r.records);
    let report =
      match report with
      | Some r -> { r with torn_tail = 0; file_size = String.length content }
      | None ->
        { records = []; frames_ok = 0; quarantined = 0; undecodable = 0;
          torn_tail = 0; file_size = String.length content;
          good_end = String.length content;
          stored_fingerprint = fingerprint () }
    in
    (w, report)
  with
  | wr -> Ok wr
  | exception Unix.Unix_error (e, fn, _) ->
    err Err.Internal "%s: %s: %s" p fn (Unix.error_message e)
  | exception Err.Error e -> Error e

let append w r =
  if w.closed then Err.raise_err Err.Internal (w.wpath ^ ": writer is closed");
  write_all w (Segment.encode_frame (Codec.encode r));
  let k, _ = Codec.to_memo r in
  Hashtbl.replace w.seen k ()

let sync_memo w entries =
  let fresh =
    List.filter (fun (k, _) -> not (Hashtbl.mem w.seen k)) entries
  in
  (* memo_entries is most-recent first; append oldest first so file
     order stays recency order and a warm load replays it exactly. *)
  List.iter (fun e -> append w (Codec.of_memo e)) (List.rev fresh);
  let n = List.length fresh in
  if n > 0 then Unix.fsync w.fd;
  n

let close w =
  if not w.closed then begin
    w.closed <- true;
    (try Unix.fsync w.fd with Unix.Unix_error _ -> ());
    Unix.close w.fd
  end
