(** The persistent prediction store: crash-safe warm-restart cache for
    the engine's memo table, one {!Segment} file per store.

    Durability contract (tested by the chaos harness and the [store]
    family of [facile check]):
    - a kill -9 mid-append loses at most the frame being written;
    - reopening a torn store truncates the tail and resumes appending;
    - corrupt frames inside the file are quarantined (skipped and
      counted), never served;
    - a store written by a different format version or against
      different instruction tables/configs than this build's is
      refused with {!Facile_x86.Err.Store_skew} (exit code 12) rather
      than silently served. *)

open Facile_core

(** Fingerprint of this build's instruction tables and configurations
    (FNV-1a 64 over every flat table and config field of all nine
    microarchitectures).  Computed once, cached.  A store is bound to
    the fingerprint it was written under. *)
val fingerprint : unit -> int64

type report = {
  records : Codec.record list;  (** decodable records, in file order *)
  frames_ok : int;       (** CRC-clean frames *)
  quarantined : int;     (** frames skipped for a CRC mismatch *)
  undecodable : int;     (** CRC-clean frames {!Codec} rejected *)
  torn_tail : int;       (** bytes of structural damage at the end *)
  file_size : int;
  good_end : int;        (** truncation point a writer would use *)
  stored_fingerprint : int64;
}

(** No quarantined, undecodable, or torn bytes. *)
val report_clean : report -> bool

val report_to_json : report -> Facile_obs.Json.t

(** [load path] reads and scans a store without modifying it.
    [check_fingerprint] defaults to [true]; pass [false] to inspect a
    skewed store ([facile cache stat] does).  Errors: corrupt or
    foreign header → [Check_failed]; version or fingerprint skew →
    [Store_skew]; missing/unreadable file → [Internal]. *)
val load :
  ?check_fingerprint:bool -> string -> (report, Facile_x86.Err.t) result

(** Append handle.  Not synchronized — callers serialize access (the
    serve persist hook runs under its own lock). *)
type writer

(** [open_rw path] opens or creates a store for appending, recovering
    first: a torn tail (or a torn header on a file shorter than one)
    is truncated away, quarantined frames are left in place.  The
    returned report describes the state {e after} recovery.  Refuses
    corrupt headers and skewed stores like {!load}. *)
val open_rw : string -> (writer * report, Facile_x86.Err.t) result

val path : writer -> string

(** Records appended through this writer plus those recovered at open
    — the dedup set {!sync_memo} consults. *)
val seen_count : writer -> int

(** [append w r] writes one frame and registers [r]'s key as seen.
    Honours the ["store.short_write"] (partial frame hits the disk,
    then the error surfaces — the torn-tail case) and ["store.enospc"]
    fault points.
    @raise Facile_x86.Err.Error with kind [Internal] on I/O failure,
    injected or real. *)
val append : writer -> Codec.record -> unit

(** [sync_memo w entries] appends every entry whose key the writer has
    not seen, oldest-recency first, then fsyncs if anything was
    written.  [entries] is in {!Facile_engine.Engine.memo_entries}
    order (most-recent first).  Returns the number appended. *)
val sync_memo :
  writer ->
  (Facile_engine.Engine.memo_key * Model.prediction) list ->
  int

(** Fsync and close.  Idempotent. *)
val close : writer -> unit
