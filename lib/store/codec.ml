(* Binary record codec.  Layout (all little-endian):

     u8   arch code            (SNB=0 .. RKL=8, declaration order)
     u8   notion               (0 = unrolled/TP_U, 1 = loop/TP_L)
     i64  form_sig
     u32  len(bytes) | bytes   (the block's machine code)
     f64  cycles               (IEEE-754 bits)
     u8   fe_path              (decoders=0, lsd=1, dsb=2, none=3)
     u8   n | n * u8           (bottleneck component codes)
     u8   n | n * (u8, f64)    (component value table)

   The numeric codes are wire format: changing any of them requires a
   segment format-version bump (Segment.version). *)

open Facile_uarch
open Facile_core
module Json = Facile_obs.Json

type record = {
  arch : Config.arch;
  notion : [ `Loop | `Unrolled ];
  form_sig : int;
  bytes : string;
  pred : Model.prediction;
}

let to_memo r = ((r.arch, r.notion, r.form_sig, r.bytes), r.pred)

let of_memo ((arch, notion, form_sig, bytes), pred) =
  { arch; notion; form_sig; bytes; pred }

(* ----- wire codes ----- *)

let arch_code = function
  | Config.SNB -> 0 | Config.IVB -> 1 | Config.HSW -> 2 | Config.BDW -> 3
  | Config.SKL -> 4 | Config.CLX -> 5 | Config.ICL -> 6 | Config.TGL -> 7
  | Config.RKL -> 8

let arch_of_code = function
  | 0 -> Some Config.SNB | 1 -> Some Config.IVB | 2 -> Some Config.HSW
  | 3 -> Some Config.BDW | 4 -> Some Config.SKL | 5 -> Some Config.CLX
  | 6 -> Some Config.ICL | 7 -> Some Config.TGL | 8 -> Some Config.RKL
  | _ -> None

let component_code = function
  | Model.Predec -> 0 | Model.Dec -> 1 | Model.DSB -> 2 | Model.LSD -> 3
  | Model.Issue -> 4 | Model.Ports -> 5 | Model.Precedence -> 6

let component_of_code = function
  | 0 -> Some Model.Predec | 1 -> Some Model.Dec | 2 -> Some Model.DSB
  | 3 -> Some Model.LSD | 4 -> Some Model.Issue | 5 -> Some Model.Ports
  | 6 -> Some Model.Precedence
  | _ -> None

let fe_code = function
  | Model.FE_decoders -> 0 | Model.FE_lsd -> 1 | Model.FE_dsb -> 2
  | Model.FE_none -> 3

let fe_of_code = function
  | 0 -> Some Model.FE_decoders | 1 -> Some Model.FE_lsd
  | 2 -> Some Model.FE_dsb | 3 -> Some Model.FE_none
  | _ -> None

(* ----- bit-exact equality ----- *)

let float_bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

let pred_equal (a : Model.prediction) (b : Model.prediction) =
  float_bits_equal a.Model.cycles b.Model.cycles
  && a.Model.fe_path = b.Model.fe_path
  && a.Model.bottlenecks = b.Model.bottlenecks
  && List.length a.Model.values = List.length b.Model.values
  && List.for_all2
       (fun (c1, v1) (c2, v2) -> c1 = c2 && float_bits_equal v1 v2)
       a.Model.values b.Model.values

(* ----- encoding ----- *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let add_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.add_u32";
  add_u8 b v;
  add_u8 b (v lsr 8);
  add_u8 b (v lsr 16);
  add_u8 b (v lsr 24)

let add_i64 b (v : int64) =
  for i = 0 to 7 do
    add_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let add_f64 b f = add_i64 b (Int64.bits_of_float f)

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let encode r =
  let b = Buffer.create (64 + String.length r.bytes) in
  add_u8 b (arch_code r.arch);
  add_u8 b (match r.notion with `Unrolled -> 0 | `Loop -> 1);
  add_i64 b (Int64.of_int r.form_sig);
  add_str b r.bytes;
  let p = r.pred in
  add_f64 b p.Model.cycles;
  add_u8 b (fe_code p.Model.fe_path);
  add_u8 b (List.length p.Model.bottlenecks);
  List.iter (fun c -> add_u8 b (component_code c)) p.Model.bottlenecks;
  add_u8 b (List.length p.Model.values);
  List.iter
    (fun (c, v) ->
      add_u8 b (component_code c);
      add_f64 b v)
    p.Model.values;
  Buffer.contents b

(* ----- decoding ----- *)

exception Bad of string

let decode s =
  let n = String.length s in
  let pos = ref 0 in
  let need k what =
    if !pos + k > n then raise (Bad (Printf.sprintf "truncated %s" what))
  in
  let u8 what =
    need 1 what;
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let u32 what =
    need 4 what;
    let b i = Char.code s.[!pos + i] in
    let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    pos := !pos + 4;
    v
  in
  let i64 what =
    need 8 what;
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (Char.code s.[!pos + i]))
    done;
    pos := !pos + 8;
    !v
  in
  let f64 what = Int64.float_of_bits (i64 what) in
  let str what =
    let len = u32 what in
    need len what;
    let v = String.sub s !pos len in
    pos := !pos + len;
    v
  in
  match
    let arch =
      match arch_of_code (u8 "arch") with
      | Some a -> a
      | None -> raise (Bad "unknown arch code")
    in
    let notion =
      match u8 "notion" with
      | 0 -> `Unrolled
      | 1 -> `Loop
      | c -> raise (Bad (Printf.sprintf "unknown notion code %d" c))
    in
    let form_sig = Int64.to_int (i64 "form_sig") in
    let bytes = str "bytes" in
    let cycles = f64 "cycles" in
    let fe_path =
      match fe_of_code (u8 "fe_path") with
      | Some f -> f
      | None -> raise (Bad "unknown fe_path code")
    in
    let component what =
      match component_of_code (u8 what) with
      | Some c -> c
      | None -> raise (Bad (Printf.sprintf "unknown component code in %s" what))
    in
    let bottlenecks =
      List.init (u8 "bottlenecks") (fun _ -> component "bottlenecks")
    in
    let values =
      List.init (u8 "values") (fun _ ->
          let c = component "values" in
          (c, f64 "values"))
    in
    if !pos <> n then
      raise (Bad (Printf.sprintf "%d trailing bytes after record" (n - !pos)));
    { arch; notion; form_sig; bytes;
      pred = { Model.cycles; bottlenecks; values; fe_path } }
  with
  | r -> Ok r
  | exception Bad m -> Error m

(* ----- NDJSON exchange ----- *)

let to_hex s =
  String.concat ""
    (List.init (String.length s) (fun i ->
         Printf.sprintf "%02x" (Char.code s.[i])))

let notion_name = function `Loop -> "loop" | `Unrolled -> "unroll"

let to_json r =
  Json.Obj
    [ "arch", Json.Str (Config.by_arch r.arch).Config.abbrev;
      "notion", Json.Str (notion_name r.notion);
      "form_sig", Json.Int r.form_sig;
      "hex", Json.Str (to_hex r.bytes);
      "prediction", Model.prediction_to_json r.pred ]

let component_of_name s =
  List.find_opt (fun c -> Model.component_name c = s) Model.all_components

let fe_of_name s =
  List.find_opt
    (fun f -> Model.fe_path_name f = s)
    [ Model.FE_decoders; Model.FE_lsd; Model.FE_dsb; Model.FE_none ]

let of_json j =
  let ( let* ) = Result.bind in
  let str_field name =
    match Option.bind (Json.member name j) Json.string_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing or non-string field %S" name)
  in
  let* arch_s = str_field "arch" in
  let* arch =
    match Config.of_abbrev arch_s with
    | Some cfg -> Ok cfg.Config.arch
    | None -> Error (Printf.sprintf "unknown arch %S" arch_s)
  in
  let* notion_s = str_field "notion" in
  let* notion =
    match notion_s with
    | "loop" -> Ok `Loop
    | "unroll" -> Ok `Unrolled
    | s -> Error (Printf.sprintf "unknown notion %S" s)
  in
  let* form_sig =
    match Option.bind (Json.member "form_sig" j) Json.int_opt with
    | Some i -> Ok i
    | None -> Error "missing or non-int field \"form_sig\""
  in
  let* hex = str_field "hex" in
  let* bytes =
    match Facile_x86.Hex.decode hex with
    | Ok b -> Ok b
    | Error e -> Error ("bad hex: " ^ e.Facile_x86.Err.msg)
  in
  let* pj =
    match Json.member "prediction" j with
    | Some p -> Ok p
    | None -> Error "missing field \"prediction\""
  in
  let* cycles =
    match Option.bind (Json.member "cycles" pj) Json.float_opt with
    | Some f -> Ok f
    | None -> Error "prediction: missing \"cycles\""
  in
  let* fe_path =
    match
      Option.bind
        (Option.bind (Json.member "fe_path" pj) Json.string_opt)
        fe_of_name
    with
    | Some f -> Ok f
    | None -> Error "prediction: missing or unknown \"fe_path\""
  in
  let* bottlenecks =
    match Json.member "bottlenecks" pj with
    | Some (Json.Arr items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match Option.bind (Json.string_opt item) component_of_name with
          | Some c -> Ok (c :: acc)
          | None -> Error "prediction: unknown bottleneck component")
        (Ok []) items
      |> Result.map List.rev
    | _ -> Error "prediction: missing \"bottlenecks\" array"
  in
  let* values =
    match Json.member "values" pj with
    | Some (Json.Obj kvs) ->
      List.fold_left
        (fun acc (name, v) ->
          let* acc = acc in
          match component_of_name name, Json.float_opt v with
          | Some c, Some f -> Ok ((c, f) :: acc)
          | _ -> Error (Printf.sprintf "prediction: bad value entry %S" name))
        (Ok []) kvs
      |> Result.map List.rev
    | _ -> Error "prediction: missing \"values\" object"
  in
  Ok
    { arch; notion; form_sig; bytes;
      pred = { Model.cycles; bottlenecks; values; fe_path } }
