(** On-disk segment format of the persistent prediction store.

    A segment is a 24-byte header followed by append-only frames:

    {v
    header:  "FACSTOR1" (8)  version u32  fingerprint i64  crc32 u32
    frame:   payload_len u32  crc32(payload) u32  payload
    v}

    All integers little-endian.  The header CRC covers the first 20
    bytes; each frame CRC covers its payload only, so a bit flip in
    one frame cannot hide a flip in another.

    The scanner is the recovery policy in code form:
    - a frame whose length is plausible but whose CRC fails is
      {e quarantined}: reported and skipped, scanning continues at the
      next frame boundary;
    - an implausible length or a frame extending past end-of-file is a
      {e torn tail}: scanning stops and [good_end] marks the offset
      where the damage starts, so a writer can truncate and resume.

    A kill -9 mid-append therefore loses at most the final frame. *)

val magic : string

(** Current format version.  Any change to the header, frame, or
    {!Codec} wire layout must bump this. *)
val version : int

(** Header size in bytes (24). *)
val header_size : int

(** Frames longer than this are treated as framing damage, not data. *)
val max_frame : int

val encode_header : fingerprint:int64 -> string

type header_error =
  | Truncated of int  (** file shorter than a header; holds the size *)
  | Bad_magic
  | Bad_crc
  | Version_skew of { found : int; expected : int }

val header_error_to_string : header_error -> string

(** Returns the stored table/config fingerprint.  Fingerprint
    {e matching} is the caller's concern ({!Store}); the header only
    carries it. *)
val decode_header : string -> (int64, header_error) result

val encode_frame : string -> string

type finding =
  | Crc_mismatch of { off : int; len : int }
      (** quarantined frame at [off] with payload length [len] *)
  | Torn_tail of { off : int; remaining : int }
      (** structural damage at [off]; [remaining] bytes unscannable *)

val finding_to_string : finding -> string

type scan = {
  frames : (int * string) list;
      (** CRC-clean payloads with their frame offsets, in file order *)
  findings : finding list;
  good_end : int;
      (** offset after the last structurally complete frame — the
          truncation point that removes the torn tail (and nothing
          else; quarantined frames are left in place and re-skipped
          on every load) *)
}

(** [scan content] walks every frame after the header.  [content] is
    the whole file including the header, which must already have been
    validated.  Honours the ["store.read"] fault point by flipping one
    payload bit per drawn frame, simulating media corruption. *)
val scan : string -> scan
