(** Binary codec for one persisted prediction record.

    A record is the full memoization unit of the engine —
    [(arch, notion, form_sig, bytes)] plus the prediction — encoded
    into a compact little-endian byte string.  Floats are carried as
    their IEEE-754 bit patterns, so a decode∘encode round trip is
    bit-identical (enforced by the [store] family of [facile check]).

    The codec is strict on decode: unknown arch/notion/component/
    fe-path codes, truncated fields, and trailing bytes are all
    rejected with a reason, so a frame whose CRC passed but whose
    content is skewed is quarantined rather than half-trusted. *)

open Facile_uarch
open Facile_core

type record = {
  arch : Config.arch;
  notion : [ `Loop | `Unrolled ];
  form_sig : int;   (** {!Facile_core.Block.form_sig} of the block *)
  bytes : string;   (** the block's machine code, verbatim *)
  pred : Model.prediction;
}

(** The engine's memoization spelling of a record. *)
val to_memo : record -> Facile_engine.Engine.memo_key * Model.prediction

val of_memo : Facile_engine.Engine.memo_key * Model.prediction -> record

(** Bit-exact prediction equality (floats compared by IEEE bits). *)
val pred_equal : Model.prediction -> Model.prediction -> bool

val encode : record -> string

(** [decode s] — inverse of {!encode}; [Error reason] on anything
    malformed, including trailing bytes. *)
val decode : string -> (record, string) result

(** {2 NDJSON exchange format}

    [facile cache export] writes one {!to_json} object per line;
    [facile cache import] reads them back.  The JSON float printer
    emits the shortest decimal that round-trips, so the exchange is
    bit-identical too. *)

val to_json : record -> Facile_obs.Json.t
val of_json : Facile_obs.Json.t -> (record, string) result
