(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the per-frame checksum
    of the persistent prediction store.  Pure OCaml, table-driven; the
    result is the standard reflected CRC as a non-negative [int] in
    [0, 0xFFFFFFFF]. *)

(** CRC of a whole string. *)
val string : string -> int

(** [sub s off len] — CRC of the substring.
    @raise Invalid_argument if the range is out of bounds. *)
val sub : string -> int -> int -> int
