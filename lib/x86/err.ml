(* Typed error taxonomy for every user-facing input path.  The CLI
   maps each kind to a distinct exit code and `facile serve` maps it
   to the wire `error.kind` field, so scripts and clients can branch
   on the failure class instead of grepping message text. *)

type kind =
  | Bad_hex       (* input is not valid hexadecimal machine code *)
  | Parse_error   (* assembly text does not parse *)
  | Unknown_arch  (* microarchitecture abbreviation not recognised *)
  | Unknown_mode  (* throughput notion not loop/unroll/auto *)
  | Encode_error  (* bytes <-> instruction translation failed *)
  | Too_large     (* input exceeds the configured size limits *)
  | Timeout       (* the request's wall-clock deadline was exceeded *)
  | Check_failed  (* facile check found error-severity findings *)
  | Internal      (* an internal invariant broke, e.g. a non-finite
                     value reached a serialization boundary *)
  | Store_skew    (* a persistent prediction store was written by an
                     incompatible format version or against different
                     instruction tables/configs than this build's *)
  | Lint_failed   (* facile lint found error-severity findings *)

type t = { kind : kind; msg : string; pos : int option }

let v ?pos kind msg = { kind; msg; pos }

(* The typed-error exception: surfaces that cannot return a [result]
   (deep inside a serializer, for instance) raise this and the CLI /
   server boundary maps it like any other [t]. *)
exception Error of t

let raise_err ?pos kind msg = raise (Error (v ?pos kind msg))

let all_kinds =
  [ Bad_hex; Parse_error; Unknown_arch; Unknown_mode; Encode_error;
    Too_large; Timeout; Check_failed; Internal; Store_skew; Lint_failed ]

(* stable snake_case names: these are wire protocol, not display text *)
let kind_name = function
  | Bad_hex -> "bad_hex"
  | Parse_error -> "parse_error"
  | Unknown_arch -> "unknown_arch"
  | Unknown_mode -> "unknown_mode"
  | Encode_error -> "encode_error"
  | Too_large -> "too_large"
  | Timeout -> "timeout"
  | Check_failed -> "check_failed"
  | Internal -> "internal"
  | Store_skew -> "store_skew"
  | Lint_failed -> "lint_failed"

let kind_of_name s =
  List.find_opt (fun k -> kind_name k = s) all_kinds

(* Distinct, stable exit codes.  0 success and 1 generic failure stay
   untouched; cmdliner reserves 124/125 for CLI and internal errors. *)
let exit_code = function
  | Bad_hex -> 3
  | Parse_error -> 4
  | Unknown_arch -> 5
  | Unknown_mode -> 6
  | Encode_error -> 7
  | Too_large -> 8
  | Timeout -> 9
  | Check_failed -> 10
  | Internal -> 11
  | Store_skew -> 12
  | Lint_failed -> 13

let to_string e =
  match e.pos with
  | Some p -> Printf.sprintf "%s at byte %d (%s)" e.msg p (kind_name e.kind)
  | None -> Printf.sprintf "%s (%s)" e.msg (kind_name e.kind)
