(** Instruction representation: mnemonic plus operand list.

    The mnemonic set is a substantial x86-64 subset covering the
    instruction mix found in compiler-generated basic blocks: integer
    ALU, moves, address generation, multiplies/divides, shifts, bit
    scans, conditional moves/sets, branches, scalar and packed SSE
    floating point, SSE integer, and VEX-encoded AVX including FMA. *)

(** Condition codes, in hardware encoding order (tttn field). *)
type cond =
  | O | NO | B | NB | E | NE | BE | NBE
  | S | NS | P | NP | L | NL | LE | NLE

type mnemonic =
  (* integer ALU *)
  | ADD | SUB | ADC | SBB | AND | OR | XOR | CMP
  | MOV | TEST | LEA | INC | DEC | NEG | NOT
  | IMUL | MUL | DIV | IDIV
  | SHL | SHR | SAR | ROL | ROR
  | MOVZX | MOVSX | MOVSXD | XCHG | BSWAP
  | PUSH | POP
  | BSF | BSR | POPCNT | LZCNT | TZCNT
  | CDQ | CQO | CWDE | CDQE | NOP | NOPL
  | SHLD | SHRD
  | BT | BTS | BTR | BTC
  | MOVBE
  | CLC | STC | CMC
  (* BMI (VEX-encoded general-purpose) *)
  | ANDN | BZHI | SHLX | SHRX | SARX
  (* control flow *)
  | JMP
  | Jcc of cond
  | SETcc of cond
  | CMOVcc of cond
  (* SSE data movement *)
  | MOVAPS | MOVUPS | MOVAPD | MOVSS | MOVSD
  | MOVDQA | MOVDQU
  | MOVD | MOVQ
  (* SSE floating-point arithmetic *)
  | ADDPS | ADDPD | ADDSS | ADDSD
  | SUBPS | SUBPD | SUBSS | SUBSD
  | MULPS | MULPD | MULSS | MULSD
  | DIVPS | DIVPD | DIVSS | DIVSD
  | MINPS | MAXPS | MINPD | MAXPD | MINSS | MAXSS | MINSD | MAXSD
  | SQRTPS | SQRTPD | SQRTSS | SQRTSD
  | ANDPS | ANDPD | ORPS | XORPS | XORPD
  | UCOMISS | UCOMISD
  | HADDPS | ROUNDSD
  | SHUFPS | UNPCKHPS | UNPCKLPD
  (* SSE integer *)
  | PXOR | POR | PAND
  | PADDB | PADDD | PADDQ | PSUBD
  | PMULLD | PMULUDQ
  | PCMPEQB | PCMPEQD | PCMPGTD
  | PMAXSD | PMINSD | PMAXUB | PMINUB
  | PSHUFB | PALIGNR | PACKSSDW
  | PUNPCKLDQ | PSHUFD | PSLLD | PSRLD | PSLLDQ | PSRLDQ
  (* SSE conversions *)
  | CVTSI2SD | CVTSI2SS | CVTTSD2SI | CVTSS2SD | CVTSD2SS
  | CVTDQ2PS | CVTPS2DQ | CVTTPS2DQ
  (* AVX / VEX-encoded *)
  | VMOVAPS | VMOVUPS | VMOVDQA | VMOVDQU
  | VADDPS | VADDPD | VSUBPS | VMULPS | VMULPD | VDIVPS
  | VSQRTPS | VXORPS | VANDPS | VMINPS | VMAXPS
  | VPXOR | VPADDD | VPMULLD | VPAND | VPOR
  | VFMADD231PS | VFMADD231PD | VFMADD231SS | VFMADD231SD
  | VFMADD132PS | VFMADD213PS

type t = { mnem : mnemonic; ops : Operand.t list }

val make : mnemonic -> Operand.t list -> t
val equal : t -> t -> bool

(** [cond_code c] is the 4-bit tttn encoding of [c]. *)
val cond_code : cond -> int

(** [cond_of_code n] is the inverse of {!cond_code}.
    @raise Invalid_argument if [n] is outside [0, 15]. *)
val cond_of_code : int -> cond

(** [cond_name c] is the canonical suffix ("e", "ne", "a", "ge", ...). *)
val cond_name : cond -> string

val cond_of_name : string -> cond option

(** All sixteen condition codes, in encoding order. *)
val all_conds : cond list

(** Every mnemonic, with the [Jcc]/[SETcc]/[CMOVcc] families
    instantiated over all sixteen condition codes. Lets the static
    checker ([facile check]) prove its form enumeration covers the
    whole instruction space. *)
val all_mnemonics : mnemonic list

(** Canonical lower-case mnemonic text ("add", "jne", "cmovge", ...). *)
val mnemonic_name : mnemonic -> string

val mnemonic_of_name : string -> mnemonic option

(** [is_branch i] holds for JMP and all conditional jumps. *)
val is_branch : t -> bool

(** [is_cond_branch i] holds for conditional jumps only. *)
val is_cond_branch : t -> bool

(** [is_vex i] holds for VEX-encoded (AVX) mnemonics. *)
val is_vex : t -> bool

(** [loads i] / [stores i] report whether the instruction has a memory
    source / destination operand (LEA does not access memory). *)
val loads : t -> bool

val stores : t -> bool

(** [mem_operand i] is the memory operand, if any. *)
val mem_operand : t -> Operand.mem option

(** [vec_mem_width ~w ~ymm m] is the canonical memory access width in
    bytes of vector mnemonic [m]: 4 for scalar-single, 8 for
    scalar-double, and the full register width for packed operations.
    [w] is the REX/VEX.W bit (selects 4 vs. 8 for MOVD/CVTSI2xx);
    [ymm] selects 32 over 16 for packed AVX. Used by both the decoder
    and the block generator so that round-trips are exact. *)
val vec_mem_width : w:bool -> ymm:bool -> mnemonic -> int

(** Intel-syntax printer, e.g. [add rax, qword ptr \[rbx+8\]]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
