(* Hex machine-code decoding, shared by the CLI and the serving
   layer.  Whitespace is ignored; errors carry the byte offset of the
   offending character in the input as the user wrote it. *)

let digit_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let decode s : (string, Err.t) result =
  let digits = Buffer.create (String.length s) in
  let bad = ref None in
  String.iteri
    (fun i c ->
      if !bad = None then
        match c with
        | ' ' | '\n' | '\t' | '\r' -> ()
        | c ->
          (match digit_value c with
           | Some _ -> Buffer.add_char digits c
           | None ->
             bad :=
               Some
                 (Err.v ~pos:i Err.Bad_hex
                    (Printf.sprintf "invalid hex character %C" c))))
    s;
  match !bad with
  | Some e -> Error e
  | None ->
    let clean = Buffer.contents digits in
    let n = String.length clean in
    if n mod 2 <> 0 then
      Error
        (Err.v Err.Bad_hex
           (Printf.sprintf
              "hex input must have an even number of digits, got %d" n))
    else
      Ok
        (String.init (n / 2) (fun i ->
             let hi = Option.get (digit_value clean.[2 * i]) in
             let lo = Option.get (digit_value clean.[(2 * i) + 1]) in
             Char.chr ((hi lsl 4) lor lo)))
