type cond =
  | O | NO | B | NB | E | NE | BE | NBE
  | S | NS | P | NP | L | NL | LE | NLE

type mnemonic =
  | ADD | SUB | ADC | SBB | AND | OR | XOR | CMP
  | MOV | TEST | LEA | INC | DEC | NEG | NOT
  | IMUL | MUL | DIV | IDIV
  | SHL | SHR | SAR | ROL | ROR
  | MOVZX | MOVSX | MOVSXD | XCHG | BSWAP
  | PUSH | POP
  | BSF | BSR | POPCNT | LZCNT | TZCNT
  | CDQ | CQO | CWDE | CDQE | NOP | NOPL
  | SHLD | SHRD
  | BT | BTS | BTR | BTC
  | MOVBE
  | CLC | STC | CMC
  | ANDN | BZHI | SHLX | SHRX | SARX
  | JMP
  | Jcc of cond
  | SETcc of cond
  | CMOVcc of cond
  | MOVAPS | MOVUPS | MOVAPD | MOVSS | MOVSD
  | MOVDQA | MOVDQU
  | MOVD | MOVQ
  | ADDPS | ADDPD | ADDSS | ADDSD
  | SUBPS | SUBPD | SUBSS | SUBSD
  | MULPS | MULPD | MULSS | MULSD
  | DIVPS | DIVPD | DIVSS | DIVSD
  | MINPS | MAXPS | MINPD | MAXPD | MINSS | MAXSS | MINSD | MAXSD
  | SQRTPS | SQRTPD | SQRTSS | SQRTSD
  | ANDPS | ANDPD | ORPS | XORPS | XORPD
  | UCOMISS | UCOMISD
  | HADDPS | ROUNDSD
  | SHUFPS | UNPCKHPS | UNPCKLPD
  | PXOR | POR | PAND
  | PADDB | PADDD | PADDQ | PSUBD
  | PMULLD | PMULUDQ
  | PCMPEQB | PCMPEQD | PCMPGTD
  | PMAXSD | PMINSD | PMAXUB | PMINUB
  | PSHUFB | PALIGNR | PACKSSDW
  | PUNPCKLDQ | PSHUFD | PSLLD | PSRLD | PSLLDQ | PSRLDQ
  | CVTSI2SD | CVTSI2SS | CVTTSD2SI | CVTSS2SD | CVTSD2SS
  | CVTDQ2PS | CVTPS2DQ | CVTTPS2DQ
  | VMOVAPS | VMOVUPS | VMOVDQA | VMOVDQU
  | VADDPS | VADDPD | VSUBPS | VMULPS | VMULPD | VDIVPS
  | VSQRTPS | VXORPS | VANDPS | VMINPS | VMAXPS
  | VPXOR | VPADDD | VPMULLD | VPAND | VPOR
  | VFMADD231PS | VFMADD231PD | VFMADD231SS | VFMADD231SD
  | VFMADD132PS | VFMADD213PS

type t = { mnem : mnemonic; ops : Operand.t list }

let make mnem ops = { mnem; ops }
let equal (a : t) (b : t) = a = b

let all_conds = [ O; NO; B; NB; E; NE; BE; NBE; S; NS; P; NP; L; NL; LE; NLE ]

let cond_code c =
  let rec idx i = function
    | [] -> assert false
    | x :: rest -> if x = c then i else idx (i + 1) rest
  in
  idx 0 all_conds

let cond_of_code n =
  match List.nth_opt all_conds n with
  | Some c -> c
  | None -> invalid_arg "Inst.cond_of_code"

let cond_name = function
  | O -> "o" | NO -> "no" | B -> "b" | NB -> "ae"
  | E -> "e" | NE -> "ne" | BE -> "be" | NBE -> "a"
  | S -> "s" | NS -> "ns" | P -> "p" | NP -> "np"
  | L -> "l" | NL -> "ge" | LE -> "le" | NLE -> "g"

(* Accept the canonical name plus the common synonyms. *)
let cond_of_name s =
  match s with
  | "o" -> Some O | "no" -> Some NO
  | "b" | "c" | "nae" -> Some B
  | "ae" | "nb" | "nc" -> Some NB
  | "e" | "z" -> Some E
  | "ne" | "nz" -> Some NE
  | "be" | "na" -> Some BE
  | "a" | "nbe" -> Some NBE
  | "s" -> Some S | "ns" -> Some NS
  | "p" | "pe" -> Some P
  | "np" | "po" -> Some NP
  | "l" | "nge" -> Some L
  | "ge" | "nl" -> Some NL
  | "le" | "ng" -> Some LE
  | "g" | "nle" -> Some NLE
  | _ -> None

let simple_mnemonics =
  [ ADD, "add"; SUB, "sub"; ADC, "adc"; SBB, "sbb"; AND, "and"; OR, "or";
    XOR, "xor"; CMP, "cmp"; MOV, "mov"; TEST, "test"; LEA, "lea";
    INC, "inc"; DEC, "dec"; NEG, "neg"; NOT, "not";
    IMUL, "imul"; MUL, "mul"; DIV, "div"; IDIV, "idiv";
    SHL, "shl"; SHR, "shr"; SAR, "sar"; ROL, "rol"; ROR, "ror";
    MOVZX, "movzx"; MOVSX, "movsx"; MOVSXD, "movsxd"; XCHG, "xchg";
    BSWAP, "bswap"; PUSH, "push"; POP, "pop";
    BSF, "bsf"; BSR, "bsr"; POPCNT, "popcnt"; LZCNT, "lzcnt";
    TZCNT, "tzcnt"; CDQ, "cdq"; CQO, "cqo"; CWDE, "cwde"; CDQE, "cdqe";
    NOP, "nop"; NOPL, "nopl";
    SHLD, "shld"; SHRD, "shrd";
    BT, "bt"; BTS, "bts"; BTR, "btr"; BTC, "btc";
    MOVBE, "movbe"; CLC, "clc"; STC, "stc"; CMC, "cmc";
    ANDN, "andn"; BZHI, "bzhi"; SHLX, "shlx"; SHRX, "shrx"; SARX, "sarx";
    JMP, "jmp";
    MOVAPS, "movaps"; MOVUPS, "movups"; MOVAPD, "movapd";
    MOVSS, "movss"; MOVSD, "movsd"; MOVDQA, "movdqa"; MOVDQU, "movdqu";
    MOVD, "movd"; MOVQ, "movq";
    ADDPS, "addps"; ADDPD, "addpd"; ADDSS, "addss"; ADDSD, "addsd";
    SUBPS, "subps"; SUBPD, "subpd"; SUBSS, "subss"; SUBSD, "subsd";
    MULPS, "mulps"; MULPD, "mulpd"; MULSS, "mulss"; MULSD, "mulsd";
    DIVPS, "divps"; DIVPD, "divpd"; DIVSS, "divss"; DIVSD, "divsd";
    MINPS, "minps"; MAXPS, "maxps"; MINPD, "minpd"; MAXPD, "maxpd";
    MINSS, "minss"; MAXSS, "maxss"; MINSD, "minsd"; MAXSD, "maxsd";
    HADDPS, "haddps"; ROUNDSD, "roundsd";
    SHUFPS, "shufps"; UNPCKHPS, "unpckhps"; UNPCKLPD, "unpcklpd";
    SQRTPS, "sqrtps"; SQRTPD, "sqrtpd"; SQRTSS, "sqrtss"; SQRTSD, "sqrtsd";
    ANDPS, "andps"; ANDPD, "andpd"; ORPS, "orps"; XORPS, "xorps";
    XORPD, "xorpd"; UCOMISS, "ucomiss"; UCOMISD, "ucomisd";
    PXOR, "pxor"; POR, "por"; PAND, "pand";
    PADDB, "paddb"; PADDD, "paddd"; PADDQ, "paddq"; PSUBD, "psubd";
    PMULLD, "pmulld"; PMULUDQ, "pmuludq";
    PCMPEQB, "pcmpeqb"; PCMPEQD, "pcmpeqd"; PCMPGTD, "pcmpgtd";
    PMAXSD, "pmaxsd"; PMINSD, "pminsd"; PMAXUB, "pmaxub"; PMINUB, "pminub";
    PSHUFB, "pshufb"; PALIGNR, "palignr"; PACKSSDW, "packssdw";
    PSLLDQ, "pslldq"; PSRLDQ, "psrldq";
    PUNPCKLDQ, "punpckldq"; PSHUFD, "pshufd"; PSLLD, "pslld";
    PSRLD, "psrld";
    CVTSI2SD, "cvtsi2sd"; CVTSI2SS, "cvtsi2ss"; CVTTSD2SI, "cvttsd2si";
    CVTSS2SD, "cvtss2sd"; CVTSD2SS, "cvtsd2ss";
    CVTDQ2PS, "cvtdq2ps"; CVTPS2DQ, "cvtps2dq"; CVTTPS2DQ, "cvttps2dq";
    VMOVAPS, "vmovaps"; VMOVUPS, "vmovups";
    VMOVDQA, "vmovdqa"; VMOVDQU, "vmovdqu";
    VMINPS, "vminps"; VMAXPS, "vmaxps"; VPAND, "vpand"; VPOR, "vpor";
    VFMADD132PS, "vfmadd132ps"; VFMADD213PS, "vfmadd213ps";
    VADDPS, "vaddps"; VADDPD, "vaddpd"; VSUBPS, "vsubps";
    VMULPS, "vmulps"; VMULPD, "vmulpd"; VDIVPS, "vdivps";
    VSQRTPS, "vsqrtps"; VXORPS, "vxorps"; VANDPS, "vandps";
    VPXOR, "vpxor"; VPADDD, "vpaddd"; VPMULLD, "vpmulld";
    VFMADD231PS, "vfmadd231ps"; VFMADD231PD, "vfmadd231pd";
    VFMADD231SS, "vfmadd231ss"; VFMADD231SD, "vfmadd231sd" ]

let mnemonic_name = function
  | Jcc c -> "j" ^ cond_name c
  | SETcc c -> "set" ^ cond_name c
  | CMOVcc c -> "cmov" ^ cond_name c
  | m -> List.assoc m simple_mnemonics

let all_mnemonics =
  List.map fst simple_mnemonics
  @ List.concat_map (fun c -> [ Jcc c; SETcc c; CMOVcc c ]) all_conds

let strip_prefix p s =
  let n = String.length p in
  if String.length s > n && String.sub s 0 n = p then
    Some (String.sub s n (String.length s - n))
  else None

let mnemonic_of_name s =
  let s = String.lowercase_ascii s in
  let rec find = function
    | [] -> None
    | (m, n) :: rest -> if n = s then Some m else find rest
  in
  match find simple_mnemonics with
  | Some _ as r -> r
  | None ->
    (* setcc / cmovcc before jcc: "set"/"cmov" are unambiguous prefixes *)
    (match strip_prefix "set" s with
     | Some c -> Option.map (fun c -> SETcc c) (cond_of_name c)
     | None ->
       match strip_prefix "cmov" s with
       | Some c -> Option.map (fun c -> CMOVcc c) (cond_of_name c)
       | None ->
         match strip_prefix "j" s with
         | Some c -> Option.map (fun c -> Jcc c) (cond_of_name c)
         | None -> None)

let is_branch i = match i.mnem with JMP | Jcc _ -> true | _ -> false
let is_cond_branch i = match i.mnem with Jcc _ -> true | _ -> false

let is_vex i =
  match i.mnem with
  | VMOVAPS | VMOVUPS | VMOVDQA | VMOVDQU
  | VADDPS | VADDPD | VSUBPS | VMULPS | VMULPD
  | VDIVPS | VSQRTPS | VXORPS | VANDPS | VMINPS | VMAXPS
  | VPXOR | VPADDD | VPMULLD | VPAND | VPOR
  | VFMADD231PS | VFMADD231PD | VFMADD231SS | VFMADD231SD
  | VFMADD132PS | VFMADD213PS
  | ANDN | BZHI | SHLX | SHRX | SARX -> true
  | _ -> false

let mem_operand i =
  if i.mnem = LEA || i.mnem = NOPL then None
  else
    List.find_map (function Operand.Mem m -> Some m | _ -> None) i.ops

let loads i =
  match mem_operand i with
  | None -> i.mnem = POP
  | Some _ ->
    (* memory-destination forms both load and store, except plain
       stores (MOV/MOVAPS/... with a memory destination just store) *)
    (match i.mnem, i.ops with
     | (MOV | MOVAPS | MOVUPS | MOVAPD | MOVSS | MOVSD | MOVD | MOVQ
       | MOVDQA | MOVDQU | VMOVAPS | VMOVUPS | VMOVDQA | VMOVDQU | MOVBE),
       Operand.Mem _ :: _ -> false
     | (SETcc _), _ -> false
     | _ -> true)

let stores i =
  match i.ops with
  | Operand.Mem _ :: _ ->
    (* first-operand memory is a destination except for CMP/TEST/UCOMI *)
    (match i.mnem with
     | CMP | TEST | UCOMISS | UCOMISD | NOPL | BT -> false
     | _ -> true)
  | _ -> i.mnem = PUSH

let vec_mem_width ~w ~ymm = function
  | MOVSS | ADDSS | SUBSS | MULSS | DIVSS | SQRTSS | CVTSS2SD | UCOMISS
  | MINSS | MAXSS | VFMADD231SS -> 4
  | MOVSD | ADDSD | SUBSD | MULSD | DIVSD | SQRTSD | CVTSD2SS | UCOMISD
  | MINSD | MAXSD | ROUNDSD | CVTTSD2SI | VFMADD231SD -> 8
  | MOVD | CVTSI2SD | CVTSI2SS -> if w then 8 else 4
  | MOVQ -> 8
  | _ -> if ymm then 32 else 16

let pp fmt i =
  Format.pp_print_string fmt (mnemonic_name i.mnem);
  match i.ops with
  | [] -> ()
  | ops ->
    Format.pp_print_string fmt " ";
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      Operand.pp fmt ops

let to_string i = Format.asprintf "%a" pp i
