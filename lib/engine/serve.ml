(* NDJSON prediction service core, shared by every transport: one
   JSON request object per line in, one JSON response object per line
   out.  The engine pool and its bounded LRU memo cache persist across
   requests and across *connections*, so a traffic-serving deployment
   pays decode+predict once per distinct block instead of a process
   start per request.

   This module is the protocol/session core only: request parsing,
   admission limits, deadlines, supervised execution, response
   encoding, and the shared statistics.  Byte-stream mechanics live in
   {!Session} (framing, per-session queue/backpressure, write
   serialization); {!run} below drives one stdio session, and
   {!Net.run} drives one session per TCP connection — both against
   the same [t].

   The pipeline is built to degrade gracefully rather than die:

   - the heavy per-request work (decode + predict) runs on a
     supervised executor domain ({!Supervise}); a crash there — real
     bug or injected fault — yields a typed "internal" error for that
     request only, and the executor is respawned with exponential
     backoff behind a circuit breaker;
   - each request runs under an optional wall-clock deadline
     ({!Fault.with_deadline}) and answers "timeout" when the budget is
     spent;
   - a bounded per-session request queue decouples reading from
     handling; when it fills, new lines are shed with a "retry_after"
     error instead of growing memory, and a per-session token bucket
     can refuse over-rate clients with "rate_limited";
   - oversized lines, inputs, and blocks answer "too_large";
   - EOF, SIGINT, and SIGTERM all drain in-flight work, flush a final
     stats snapshot to stderr, and return normally; a client that
     closes its end (EPIPE/ECONNRESET) kills only its own session's
     writer, is counted under io.epipe, and never takes down the
     process or the shared executor. *)

open Facile_x86
open Facile_uarch
open Facile_core
module Json = Facile_obs.Json
module Obs = Facile_obs.Obs
module Clock = Facile_obs.Clock
module Sync = Facile_core.Sync

(* Version of the wire protocol.  Bump on any incompatible change to
   the request/response shapes; responses carry it as "proto" and
   {"cmd":"version"} reports it alongside build info. *)
let proto_version = 1

type limits = {
  max_line_bytes : int;
  max_input_bytes : int;
  max_insts : int;
}

let default_limits =
  { max_line_bytes = 1 lsl 20; (* 1 MiB: an adversarial line cannot OOM us *)
    max_input_bytes = 65536;
    max_insts = 4096 }

type config = {
  workers : int option;
  memoize : bool;
  cache_cap : int option;
  cache_shards : int option;
  deadline_ms : int option;
  queue_cap : int;
  retry_after_ms : int;
  flush_every : int option;
  limits : limits;
  supervisor : Supervise.config;
}

let default_config =
  { workers = None;
    memoize = true;
    cache_cap = None;
    cache_shards = None;
    deadline_ms = None;
    queue_cap = 128;
    retry_after_ms = 50;
    flush_every = None;
    limits = default_limits;
    supervisor = Supervise.default_config }

(* Connection-level accounting, shared by every transport against this
   core.  Atomics, not the stats mutex: these are bumped from N
   session threads on the byte-moving path. *)
type conns = {
  accepted : int Atomic.t;
  active : int Atomic.t;
  rejected : int Atomic.t;       (* refused at the connection limit *)
  rate_limited : int Atomic.t;   (* requests refused by a session bucket *)
  bytes_in : int Atomic.t;
  bytes_out : int Atomic.t;
}

type t = {
  engine : Engine.t;
  sup : Supervise.t;
  limits : limits;
  deadline_ns : int option;            (* per-request budget; None = off *)
  queue_cap : int;
  retry_after_ms : int;
  latency : Obs.Histogram.t;  (* per-line handling latency, ns *)
  (* request tallies: atomic accumulators (and lock-free counter maps),
     bumped from N session threads plus the executor — no stats mutex
     on the serving path.  Each counter is exact and monotone;
     [stats_json] reads them one by one, not as one snapshot. *)
  by_arch : Obs.Cmap.t;                (* successful predictions per arch *)
  by_kind : Obs.Cmap.t;                (* error responses per kind *)
  total : int Atomic.t;                (* every line handled, incl. stats *)
  predicted : int Atomic.t;            (* successful predictions *)
  stats_served : int Atomic.t;
  version_served : int Atomic.t;
  errors : int Atomic.t;
  shed : int Atomic.t;                 (* lines refused by a full queue *)
  epipe : int Atomic.t;                (* writes that found the peer gone *)
  conns : conns;
  started_ns : int;
  stop : bool Atomic.t;                (* graceful-shutdown request *)
  (* Persistence hook (the CLI installs one that syncs the memo cache
     to a Facile_store writer; this module stays store-agnostic to
     avoid a dependency cycle).  Invoked under [persist_mu] after
     every [flush_every] successful predictions and once more at
     graceful shutdown. *)
  flush_every : int option;
  persist_mu : Mutex.t;
  mutable persist : (unit -> unit) option;
  mutable since_flush : int;
  mutable flushes : int;
  mutable persist_errors : int;
}

let of_config (c : config) =
  if c.queue_cap < 1 then
    invalid_arg (Printf.sprintf "Serve.create: queue_cap = %d" c.queue_cap);
  if c.retry_after_ms < 0 then
    invalid_arg
      (Printf.sprintf "Serve.create: retry_after_ms = %d" c.retry_after_ms);
  if c.limits.max_line_bytes < 1 || c.limits.max_input_bytes < 1
     || c.limits.max_insts < 1
  then invalid_arg "Serve.create: limits must be positive";
  (match c.flush_every with
   | Some n when n < 1 ->
     invalid_arg (Printf.sprintf "Serve.create: flush_every = %d" n)
   | _ -> ());
  { engine =
      Engine.create ?workers:c.workers ~memoize:c.memoize
        ?cache_cap:c.cache_cap ?cache_shards:c.cache_shards ();
    sup = Supervise.create ~config:c.supervisor ();
    limits = c.limits;
    deadline_ns =
      Option.map (fun ms ->
          if ms < 0 then invalid_arg "Serve.create: deadline_ms < 0"
          else ms * 1_000_000)
        c.deadline_ms;
    queue_cap = c.queue_cap;
    retry_after_ms = c.retry_after_ms;
    latency = Obs.Histogram.create ();
    by_arch = Obs.Cmap.create ();
    by_kind = Obs.Cmap.create ();
    total = Atomic.make 0;
    predicted = Atomic.make 0;
    stats_served = Atomic.make 0;
    version_served = Atomic.make 0;
    errors = Atomic.make 0;
    shed = Atomic.make 0;
    epipe = Atomic.make 0;
    conns =
      { accepted = Atomic.make 0;
        active = Atomic.make 0;
        rejected = Atomic.make 0;
        rate_limited = Atomic.make 0;
        bytes_in = Atomic.make 0;
        bytes_out = Atomic.make 0 };
    started_ns = Clock.now_ns ();
    stop = Atomic.make false;
    flush_every = c.flush_every;
    persist_mu = Mutex.create ();
    persist = None;
    since_flush = 0;
    flushes = 0;
    persist_errors = 0 }

(* Deprecated spelling of {!of_config}, kept for embedders. *)
let create ?workers ?memoize ?cache_cap ?deadline_ms ?(queue_cap = 128)
    ?(limits = default_limits) ?(supervisor = Supervise.default_config) () =
  of_config
    { default_config with
      workers;
      memoize = Option.value memoize ~default:true;
      cache_cap;
      deadline_ms;
      queue_cap;
      limits;
      supervisor }

let engine t = t.engine

let set_persist t f =
  Sync.with_lock t.persist_mu (fun () -> t.persist <- Some f)

(* Run the persistence hook; a failing flush (disk full, injected
   fault) is counted, never propagated — serving keeps its answers
   even when it cannot keep its cache. *)
let run_persist t =
  Sync.with_lock t.persist_mu (fun () ->
      match t.persist with
      | None -> ()
      | Some f ->
        t.since_flush <- 0;
        (match f () with
         | () -> t.flushes <- t.flushes + 1
         | exception _ -> t.persist_errors <- t.persist_errors + 1))

(* Count one successful prediction towards the periodic flush. *)
let tick_persist t =
  match t.flush_every with
  | None -> ()
  | Some n ->
    let due =
      Sync.with_lock t.persist_mu (fun () ->
          t.since_flush <- t.since_flush + 1;
          t.since_flush >= n && t.persist <> None)
    in
    if due then run_persist t

let shutdown t =
  run_persist t;
  Supervise.shutdown t.sup;
  Engine.shutdown t.engine

let request_shutdown t = Atomic.set t.stop true
let stopping t = Atomic.get t.stop

let conn_opened t =
  Atomic.incr t.conns.accepted;
  Atomic.incr t.conns.active

let conn_closed t = Atomic.decr t.conns.active
let conn_rejected t = Atomic.incr t.conns.rejected

(* ----- responses ----- *)

(* Wire error kinds are the Err.t taxonomy plus four serving-layer
   kinds: "bad_request" (the line is not a valid request object),
   "retry_after" (the request queue is full; shed), "rate_limited"
   (the per-connection admission bucket is empty), and "internal"
   (the supervised executor crashed — a bug or an injected fault). *)
let error_response t ~id ~kind ?pos ?(extra = []) msg =
  Atomic.incr t.errors;
  Obs.Cmap.bump t.by_kind kind;
  Json.Obj
    [ "id", id;
      "error",
      Json.Obj
        ([ "kind", Json.Str kind; "msg", Json.Str msg ]
         @ (match pos with Some p -> [ "pos", Json.Int p ] | None -> [])
         @ extra) ]

let err_response t ~id (e : Err.t) =
  error_response t ~id ~kind:(Err.kind_name e.Err.kind) ?pos:e.Err.pos
    e.Err.msg

let shed_response t ~id =
  Atomic.incr t.shed;
  error_response t ~id ~kind:"retry_after"
    ~extra:[ "retry_after_ms", Json.Int t.retry_after_ms ]
    (Printf.sprintf "request queue full (capacity %d)" t.queue_cap)

(* Wire responses carry the protocol version; appended last so the
   leading fields (id, cycles/error/stats) keep their shape. *)
let with_proto = function
  | Json.Obj kvs when not (List.mem_assoc "proto" kvs) ->
    Json.Obj (kvs @ [ "proto", Json.Int proto_version ])
  | j -> j

let version_json t =
  Json.Obj
    [ "proto", Json.Int proto_version;
      "name", Json.Str "facile";
      "version", Json.Str "1.0";
      "ocaml", Json.Str Sys.ocaml_version;
      "os", Json.Str Sys.os_type;
      "word_size", Json.Int Sys.word_size;
      "workers", Json.Int (Engine.size t.engine);
      "arches",
      Json.Arr
        (List.map (fun (c : Config.t) -> Json.Str c.Config.abbrev) Config.all) ]

let stats_json t =
  let c = Engine.cache_stats t.engine in
  let lookups = c.Engine.hits + c.Engine.misses in
  let hit_rate =
    if lookups = 0 then 0.0
    else float_of_int c.Engine.hits /. float_of_int lookups
  in
  let sup = Supervise.stats t.sup in
  let sorted cmap =
    List.map (fun (k, v) -> (k, Json.Int v)) (Obs.Cmap.bindings cmap)
  in
  let q p = Clock.ns_to_us (int_of_float (Obs.Histogram.quantile t.latency p)) in
  let store_enabled, flushes, persist_errors =
    Sync.with_lock t.persist_mu (fun () ->
        (t.persist <> None, t.flushes, t.persist_errors))
  in
  Json.Obj
        [ "uptime_s",
          Json.Float (Clock.ns_to_s (Clock.now_ns () - t.started_ns));
          "workers", Json.Int (Engine.size t.engine);
          "requests",
          Json.Obj
            [ "total", Json.Int (Atomic.get t.total);
              "predicted", Json.Int (Atomic.get t.predicted);
              "stats", Json.Int (Atomic.get t.stats_served);
              "version", Json.Int (Atomic.get t.version_served);
              "by_arch", Json.Obj (sorted t.by_arch) ];
          "errors",
          Json.Obj
            [ "total", Json.Int (Atomic.get t.errors);
              "by_kind", Json.Obj (sorted t.by_kind) ];
          "cache",
          Json.Obj
            [ "hits", Json.Int c.Engine.hits;
              "misses", Json.Int c.Engine.misses;
              "hit_rate", Json.Float hit_rate;
              "coalesced", Json.Int c.Engine.coalesced;
              "evictions", Json.Int c.Engine.evictions;
              "entries", Json.Int c.Engine.entries;
              "capacity", Json.Int c.Engine.capacity;
              "shards", Json.Int c.Engine.shards ];
          "queue",
          Json.Obj
            [ "capacity", Json.Int t.queue_cap;
              "shed", Json.Int (Atomic.get t.shed) ];
          "connections",
          Json.Obj
            [ "accepted", Json.Int (Atomic.get t.conns.accepted);
              "active", Json.Int (Atomic.get t.conns.active);
              "rejected", Json.Int (Atomic.get t.conns.rejected);
              "rate_limited", Json.Int (Atomic.get t.conns.rate_limited);
              "bytes_in", Json.Int (Atomic.get t.conns.bytes_in);
              "bytes_out", Json.Int (Atomic.get t.conns.bytes_out) ];
          "supervisor",
          Json.Obj
            [ "respawns", Json.Int sup.Supervise.respawns;
              "crashes", Json.Int sup.Supervise.crashes;
              "degraded", Json.Bool sup.Supervise.degraded;
              "degraded_transitions",
              Json.Int sup.Supervise.degraded_transitions;
              "inline_runs", Json.Int sup.Supervise.inline_runs ];
          "faults",
          Json.Obj
            (List.map
               (fun (p, (injected, hits)) ->
                 ( p,
                   Json.Obj
                     [ "injected", Json.Int injected;
                       "hits", Json.Int hits ] ))
               (Fault.snapshot ()));
          "io", Json.Obj [ "epipe", Json.Int (Atomic.get t.epipe) ];
          "store",
          Json.Obj
            [ "enabled", Json.Bool store_enabled;
              "flush_every",
              (match t.flush_every with
               | None -> Json.Null
               | Some n -> Json.Int n);
              "flushes", Json.Int flushes;
              "persist_errors", Json.Int persist_errors ];
          "limits",
          Json.Obj
            [ "max_line_bytes", Json.Int t.limits.max_line_bytes;
              "max_input_bytes", Json.Int t.limits.max_input_bytes;
              "max_insts", Json.Int t.limits.max_insts;
              "deadline_ms",
              (match t.deadline_ns with
               | None -> Json.Null
               | Some ns -> Json.Int (ns / 1_000_000)) ];
          "latency_us",
          Json.Obj
            [ "count", Json.Int (Obs.Histogram.count t.latency);
              "mean", Json.Float (Clock.ns_to_us
                                    (int_of_float
                                       (Obs.Histogram.mean_ns t.latency)));
              "p50", Json.Float (q 0.50);
              "p95", Json.Float (q 0.95);
              "p99", Json.Float (q 0.99) ];
          (* global span/counter registry: attributes time to the
             model components (model.predec, model.dec, model.ports,
             model.precedence) and the engine *)
          "process", Obs.snapshot () ]

(* ----- request handling ----- *)

let mode_of_string = function
  | "loop" -> Ok `Loop
  | "unroll" -> Ok `Unrolled
  | "auto" -> Ok `Auto
  | m ->
    Error
      (Err.v Err.Unknown_mode
         (Printf.sprintf "unknown mode: %s (expected loop|unroll|auto)" m))

let block_of_request cfg ~hex ~asm =
  Fault.point "decode";
  match hex, asm with
  | Some h, _ ->
    Result.bind (Hex.decode h) (fun code ->
        match Block.of_bytes cfg code with
        | b -> Ok b
        | exception Decode.Decode_error (m, off) ->
          Error (Err.v ~pos:off Err.Encode_error ("cannot decode: " ^ m))
        | exception Facile_db.Db.Unsupported m ->
          Error (Err.v Err.Encode_error ("unsupported instruction: " ^ m))
        | exception Failure m -> Error (Err.v Err.Encode_error m))
  | None, Some a ->
    (match Asm.parse_block a with
     | Error m -> Error (Err.v Err.Parse_error m)
     | Ok insts ->
       (match Block.of_instructions cfg insts with
        | b -> Ok b
        | exception Encode.Unencodable m ->
          Error (Err.v Err.Encode_error ("cannot encode: " ^ m))
        | exception Facile_db.Db.Unsupported m ->
          Error (Err.v Err.Encode_error ("unsupported instruction: " ^ m))
        | exception Failure m -> Error (Err.v Err.Encode_error m)))
  | None, None -> assert false

(* The heavy half of a request: decode + size check + predict.  Runs
   on the supervised executor domain under the request deadline;
   injected faults and real bugs raise and kill the executor, a spent
   deadline surfaces as [`Timeout]. *)
let compute t cfg ~mode ~hex ~asm =
  match
    Fault.with_deadline t.deadline_ns (fun () ->
        Result.bind (block_of_request cfg ~hex ~asm) (fun block ->
            if List.length block.Block.entries > t.limits.max_insts then
              Error
                (Err.v Err.Too_large
                   (Printf.sprintf
                      "block has %d instructions, limit is %d"
                      (List.length block.Block.entries) t.limits.max_insts))
            else Ok (Engine.predict t.engine ~mode block)))
  with
  | r -> `Done r
  | exception Fault.Deadline_exceeded -> `Timeout

let timeout_err t =
  Err.v Err.Timeout
    (Printf.sprintf "request exceeded its %dms deadline"
       (match t.deadline_ns with Some ns -> ns / 1_000_000 | None -> 0))

(* Every key a request object may carry; anything else is rejected
   with a bad_request naming the offending key, so protocol typos and
   version skew fail loudly instead of being silently ignored. *)
let allowed_keys = [ "id"; "proto"; "cmd"; "arch"; "mode"; "hex"; "asm" ]

let handle_request t (req : Json.t) : Json.t =
  let id = Option.value ~default:Json.Null (Json.member "id" req) in
  match req with
  | Json.Obj kvs ->
    (match
       List.find_opt (fun (k, _) -> not (List.mem k allowed_keys)) kvs
     with
     | Some (k, _) ->
       error_response t ~id ~kind:"bad_request"
         (Printf.sprintf "unknown request field %S (expected %s)" k
            (String.concat "|" allowed_keys))
     | None ->
       (match Json.member "proto" req with
        | Some p when p <> Json.Int proto_version ->
          error_response t ~id ~kind:"bad_request"
            (Printf.sprintf
               "unsupported proto %s (this server speaks proto %d)"
               (Json.to_string p) proto_version)
        | _ ->
          (match Json.member "cmd" req with
           | Some (Json.Str "stats") ->
             Atomic.incr t.stats_served;
             Json.Obj [ "id", id; "stats", stats_json t ]
           | Some (Json.Str "version") ->
             Atomic.incr t.version_served;
             Json.Obj [ "id", id; "version", version_json t ]
           | Some c ->
             error_response t ~id ~kind:"bad_request"
               (Printf.sprintf
                  "unknown cmd %s (expected \"stats\"|\"version\")"
                  (Json.to_string c))
           | None ->
             let field name =
               match Json.member name req with
               | Some (Json.Str s) -> Ok (Some s)
               | Some _ ->
                 Error
                   (Printf.sprintf "field %S must be a string" name)
               | None -> Ok None
             in
             (match field "arch", field "mode", field "hex", field "asm" with
              | Error m, _, _, _ | _, Error m, _, _ | _, _, Error m, _
              | _, _, _, Error m ->
                error_response t ~id ~kind:"bad_request" m
              | Ok _, Ok _, Ok None, Ok None ->
                error_response t ~id ~kind:"bad_request"
                  "request needs a \"hex\" or \"asm\" field"
              | Ok arch, Ok mode, Ok hex, Ok asm ->
                let arch = Option.value ~default:"SKL" arch in
                let mode = Option.value ~default:"auto" mode in
                let input_bytes =
                  String.length (Option.value ~default:"" hex)
                  + String.length (Option.value ~default:"" asm)
                in
                if input_bytes > t.limits.max_input_bytes then
                  err_response t ~id
                    (Err.v Err.Too_large
                       (Printf.sprintf
                          "input of %d bytes exceeds the %d-byte limit"
                          input_bytes t.limits.max_input_bytes))
                else begin
                  match Config.of_abbrev arch, mode_of_string mode with
                  | None, _ ->
                    err_response t ~id
                      (Err.v Err.Unknown_arch
                         ("unknown microarchitecture: " ^ arch))
                  | Some _, Error e -> err_response t ~id e
                  | Some cfg, Ok mode ->
                    (match
                       Supervise.run t.sup (fun () ->
                           compute t cfg ~mode ~hex ~asm)
                     with
                     | Ok (`Done (Error e)) -> err_response t ~id e
                     | Ok `Timeout -> err_response t ~id (timeout_err t)
                     | Error (Fault.Injected p) ->
                       error_response t ~id ~kind:"internal"
                         (Printf.sprintf
                            "injected fault at %s killed the worker \
                             (respawning)" p)
                     | Error e ->
                       error_response t ~id ~kind:"internal"
                         (Printexc.to_string e)
                     | Ok (`Done (Ok p)) ->
                       Atomic.incr t.predicted;
                       Obs.Cmap.bump t.by_arch cfg.Config.abbrev;
                       tick_persist t;
                       (match Model.prediction_to_json p with
                        | Json.Obj fields -> Json.Obj (("id", id) :: fields)
                        | other -> Json.Obj [ "id", id; "prediction", other ]))
                end))))
  | _ ->
    error_response t ~id:Json.Null ~kind:"bad_request"
      "request must be a JSON object"

let line_too_large_err len cap =
  Err.v Err.Too_large
    (Printf.sprintf "request line of %d bytes exceeds the %d-byte limit" len
       cap)

(* [handle_line] never raises: whatever arrives on the wire, the
   caller gets exactly one JSON response object back. *)
let handle_line t line : Json.t =
  Obs.timed t.latency @@ fun () ->
  Atomic.incr t.total;
  let resp =
    if String.length line > t.limits.max_line_bytes then
      err_response t ~id:Json.Null
        (line_too_large_err (String.length line) t.limits.max_line_bytes)
    else
      match Json.parse line with
      | Error m -> error_response t ~id:Json.Null ~kind:"bad_request" m
      | Ok req ->
        (match handle_request t req with
         | resp -> resp
         | exception e ->
           error_response t
             ~id:(Option.value ~default:Json.Null (Json.member "id" req))
             ~kind:"internal" (Printexc.to_string e))
  in
  (* the respond fault point models a failure while producing the
     answer: the response is replaced by a typed internal error, the
     loop survives *)
  match Fault.point "respond" with
  | () -> resp
  | exception Fault.Injected _ ->
    error_response t
      ~id:(Option.value ~default:Json.Null (Json.member "id" resp))
      ~kind:"internal" "injected fault at respond"
  | exception Fault.Deadline_exceeded -> resp

(* A line the framer discarded for being over the cap gets the same
   accounting and response as an oversized line through [handle_line],
   without the line ever having been buffered. *)
let handle_oversized t len : Json.t =
  Obs.timed t.latency @@ fun () ->
  Atomic.incr t.total;
  err_response t ~id:Json.Null
    (line_too_large_err len t.limits.max_line_bytes)

(* ----- the session API: protocol callbacks over any transport ----- *)

(* Shed and rate-limit answers are produced on the reader side, where
   only the id is worth parsing out of the raw line. *)
let id_of_line line =
  match Json.parse line with
  | Ok r -> Option.value ~default:Json.Null (Json.member "id" r)
  | Error _ -> Json.Null

let shed_for_line t line =
  Atomic.incr t.total;
  shed_response t ~id:(id_of_line line)

let rate_limited_for_line t line =
  Atomic.incr t.total;
  Atomic.incr t.conns.rate_limited;
  error_response t ~id:(id_of_line line) ~kind:"rate_limited"
    ~extra:[ "retry_after_ms", Json.Int t.retry_after_ms ]
    "request rate limit exceeded for this connection"

(* [session t transport] wires the protocol core to one byte-stream
   transport: responses (with the proto tag appended at this, the
   wire, layer), the line cap, the per-session queue bound, and the
   shared connection byte/EPIPE accounting.  {!run} (stdio) and
   {!Net.run} (each TCP connection) are both built on this. *)
let session ?rate ?on_peer_gone t transport =
  let out j = Json.to_string (with_proto j) in
  let callbacks =
    { Session.on_line = (fun line -> out (handle_line t line));
      on_oversized = (fun len -> out (handle_oversized t len));
      on_shed = (fun line -> out (shed_for_line t line));
      on_rate_limited = (fun line -> out (rate_limited_for_line t line)) }
  in
  let sink =
    { Session.on_bytes_in =
        (fun n -> ignore (Atomic.fetch_and_add t.conns.bytes_in n));
      on_bytes_out =
        (fun n -> ignore (Atomic.fetch_and_add t.conns.bytes_out n));
      on_epipe = (fun () -> Atomic.incr t.epipe) }
  in
  Session.create ~queue_cap:t.queue_cap ?rate
    ~should_stop:(fun () -> Atomic.get t.stop)
    ?on_peer_gone ~sink ~max_line_bytes:t.limits.max_line_bytes callbacks
    transport

(* ----- the stdio serving loop ----- *)

let install_signal_handlers t =
  let quiet f = try f () with Invalid_argument _ | Sys_error _ -> () in
  (* a closed client pipe must surface as Sys_error on write (counted,
     clean shutdown), not as a process-killing SIGPIPE *)
  quiet (fun () -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore);
  List.iter
    (fun s ->
      quiet (fun () ->
          Sys.set_signal s
            (Sys.Signal_handle (fun _ -> Atomic.set t.stop true))))
    [ Sys.sigint; Sys.sigterm ]

(* final snapshot on stderr: stdout carries only protocol responses.
   The persistence hook runs first — end of service is the last safe
   flush point, and the snapshot's store counters must reflect it. *)
let print_final_stats t =
  run_persist t;
  try
    prerr_endline
      (Json.to_string (Json.Obj [ "final_stats", stats_json t ]));
    flush stderr
  with Sys_error _ -> ()

(* Stdio NDJSON loop: exactly one {!Session} whose transport is the
   given channel pair.  Ends — after draining everything queued — on
   EOF, SIGINT/SIGTERM, or a client that closed the pipe, flushing a
   final stats snapshot to stderr. *)
let run ?(signals = true) t ic oc =
  if signals then install_signal_handlers t;
  (* park stdout on /dev/null once the client is gone so the runtime's
     at-exit flush of the dead descriptor cannot turn a clean shutdown
     into a fatal Sys_error *)
  let park_stdout () =
    if oc == stdout then
      try
        let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        (* if fd 1 was closed outright, openfile just reused it *)
        if null <> Unix.stdout then begin
          Unix.dup2 null Unix.stdout;
          Unix.close null
        end
      with Unix.Unix_error _ | Sys_error _ -> ()
  in
  let transport =
    { Session.read =
        (fun buf off len ->
          try input ic buf off len with End_of_file | Sys_error _ -> 0);
      write =
        (fun s ->
          try
            output_string oc s;
            flush oc
          with Sys_error _ ->
            (* EPIPE: the client went away *)
            park_stdout ();
            raise Session.Peer_closed);
      close = (fun () -> ()) }
  in
  conn_opened t;
  let s =
    session t transport ~on_peer_gone:(fun () -> Atomic.set t.stop true)
  in
  Fun.protect ~finally:(fun () -> conn_closed t) (fun () -> Session.run s);
  print_final_stats t
