(* Long-running NDJSON prediction service on top of the engine: one
   JSON request object per line in, one JSON response object per line
   out.  The engine pool and its memo cache persist across requests,
   so a traffic-serving deployment pays decode+predict once per
   distinct block instead of a process start per request.  Malformed
   input of any shape produces a typed error response, never a crash:
   the loop only ends at EOF. *)

open Facile_x86
open Facile_uarch
open Facile_core
module Json = Facile_obs.Json
module Obs = Facile_obs.Obs
module Clock = Facile_obs.Clock

type t = {
  engine : Engine.t;
  latency : Obs.Histogram.t;  (* per-line handling latency, ns *)
  mu : Mutex.t;
  by_arch : (string, int) Hashtbl.t;   (* successful predictions per arch *)
  by_kind : (string, int) Hashtbl.t;   (* error responses per kind *)
  mutable total : int;                 (* every line handled, incl. stats *)
  mutable predicted : int;             (* successful predictions *)
  mutable stats_served : int;
  mutable errors : int;
  started_ns : int;
}

let create ?workers ?memoize () =
  { engine = Engine.create ?workers ?memoize ();
    latency = Obs.Histogram.create ();
    mu = Mutex.create ();
    by_arch = Hashtbl.create 16;
    by_kind = Hashtbl.create 16;
    total = 0;
    predicted = 0;
    stats_served = 0;
    errors = 0;
    started_ns = Clock.now_ns () }

let shutdown t = Engine.shutdown t.engine

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let bump tbl key =
  Hashtbl.replace tbl key
    (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* ----- responses ----- *)

(* Wire error kinds are the Err.t taxonomy plus two serving-layer
   kinds: "bad_request" (the line is not a valid request object) and
   "internal" (a bug's backstop — the loop must survive anything). *)
let error_response t ~id ~kind ?pos msg =
  locked t (fun () ->
      t.errors <- t.errors + 1;
      bump t.by_kind kind);
  Json.Obj
    [ "id", id;
      "error",
      Json.Obj
        ([ "kind", Json.Str kind; "msg", Json.Str msg ]
         @ match pos with Some p -> [ "pos", Json.Int p ] | None -> []) ]

let err_response t ~id (e : Err.t) =
  error_response t ~id ~kind:(Err.kind_name e.Err.kind) ?pos:e.Err.pos
    e.Err.msg

let stats_json t =
  let hits, misses = Engine.memo_stats t.engine in
  let lookups = hits + misses in
  let hit_rate =
    if lookups = 0 then 0.0
    else float_of_int hits /. float_of_int lookups
  in
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) tbl []
    |> List.sort compare
  in
  let q p = Clock.ns_to_us (int_of_float (Obs.Histogram.quantile t.latency p)) in
  locked t (fun () ->
      Json.Obj
        [ "uptime_s",
          Json.Float (Clock.ns_to_s (Clock.now_ns () - t.started_ns));
          "workers", Json.Int (Engine.size t.engine);
          "requests",
          Json.Obj
            [ "total", Json.Int t.total;
              "predicted", Json.Int t.predicted;
              "stats", Json.Int t.stats_served;
              "by_arch", Json.Obj (sorted t.by_arch) ];
          "errors",
          Json.Obj
            [ "total", Json.Int t.errors;
              "by_kind", Json.Obj (sorted t.by_kind) ];
          "cache",
          Json.Obj
            [ "hits", Json.Int hits;
              "misses", Json.Int misses;
              "hit_rate", Json.Float hit_rate ];
          "latency_us",
          Json.Obj
            [ "count", Json.Int (Obs.Histogram.count t.latency);
              "mean", Json.Float (Clock.ns_to_us
                                    (int_of_float
                                       (Obs.Histogram.mean_ns t.latency)));
              "p50", Json.Float (q 0.50);
              "p95", Json.Float (q 0.95);
              "p99", Json.Float (q 0.99) ];
          (* global span/counter registry: attributes time to the
             model components (model.predec, model.dec, model.ports,
             model.precedence) and the engine *)
          "process", Obs.snapshot () ])

(* ----- request handling ----- *)

let mode_of_string = function
  | "loop" -> Ok `Loop
  | "unroll" -> Ok `Unrolled
  | "auto" -> Ok `Auto
  | m ->
    Error
      (Err.v Err.Unknown_mode
         (Printf.sprintf "unknown mode: %s (expected loop|unroll|auto)" m))

let block_of_request cfg ~hex ~asm =
  match hex, asm with
  | Some h, _ ->
    Result.bind (Hex.decode h) (fun code ->
        match Block.of_bytes cfg code with
        | b -> Ok b
        | exception Decode.Decode_error (m, off) ->
          Error (Err.v ~pos:off Err.Encode_error ("cannot decode: " ^ m))
        | exception Facile_db.Db.Unsupported m ->
          Error (Err.v Err.Encode_error ("unsupported instruction: " ^ m))
        | exception Failure m -> Error (Err.v Err.Encode_error m))
  | None, Some a ->
    (match Asm.parse_block a with
     | Error m -> Error (Err.v Err.Parse_error m)
     | Ok insts ->
       (match Block.of_instructions cfg insts with
        | b -> Ok b
        | exception Encode.Unencodable m ->
          Error (Err.v Err.Encode_error ("cannot encode: " ^ m))
        | exception Facile_db.Db.Unsupported m ->
          Error (Err.v Err.Encode_error ("unsupported instruction: " ^ m))
        | exception Failure m -> Error (Err.v Err.Encode_error m)))
  | None, None -> assert false

let handle_request t (req : Json.t) : Json.t =
  let id = Option.value ~default:Json.Null (Json.member "id" req) in
  match req with
  | Json.Obj _ when Json.member "cmd" req = Some (Json.Str "stats") ->
    locked t (fun () -> t.stats_served <- t.stats_served + 1);
    Json.Obj [ "id", id; "stats", stats_json t ]
  | Json.Obj _ when Json.member "cmd" req <> None ->
    error_response t ~id ~kind:"bad_request"
      (Printf.sprintf "unknown cmd %s (expected \"stats\")"
         (Json.to_string (Option.get (Json.member "cmd" req))))
  | Json.Obj _ ->
    let field name =
      match Json.member name req with
      | Some (Json.Str s) -> Ok (Some s)
      | Some _ ->
        Error
          (Printf.sprintf "field %S must be a string" name)
      | None -> Ok None
    in
    (match field "arch", field "mode", field "hex", field "asm" with
     | Error m, _, _, _ | _, Error m, _, _ | _, _, Error m, _
     | _, _, _, Error m ->
       error_response t ~id ~kind:"bad_request" m
     | Ok _, Ok _, Ok None, Ok None ->
       error_response t ~id ~kind:"bad_request"
         "request needs a \"hex\" or \"asm\" field"
     | Ok arch, Ok mode, Ok hex, Ok asm ->
       let arch = Option.value ~default:"SKL" arch in
       let mode = Option.value ~default:"auto" mode in
       let result =
         match Config.of_abbrev arch with
         | None ->
           Error
             (Err.v Err.Unknown_arch ("unknown microarchitecture: " ^ arch))
         | Some cfg ->
           Result.bind (mode_of_string mode) (fun mode ->
               Result.bind (block_of_request cfg ~hex ~asm) (fun block ->
                   Ok (cfg, Engine.predict t.engine ~mode block)))
       in
       (match result with
        | Error e -> err_response t ~id e
        | Ok (cfg, p) ->
          locked t (fun () ->
              t.predicted <- t.predicted + 1;
              bump t.by_arch cfg.Config.abbrev);
          (match Model.prediction_to_json p with
           | Json.Obj fields -> Json.Obj (("id", id) :: fields)
           | other -> Json.Obj [ "id", id; "prediction", other ])))
  | _ ->
    error_response t ~id:Json.Null ~kind:"bad_request"
      "request must be a JSON object"

(* [handle_line] never raises: whatever arrives on the wire, the
   caller gets exactly one JSON response object back. *)
let handle_line t line : Json.t =
  Obs.timed t.latency @@ fun () ->
  locked t (fun () -> t.total <- t.total + 1);
  match Json.parse line with
  | Error m -> error_response t ~id:Json.Null ~kind:"bad_request" m
  | Ok req ->
    (match handle_request t req with
     | resp -> resp
     | exception e ->
       error_response t
         ~id:(Option.value ~default:Json.Null (Json.member "id" req))
         ~kind:"internal" (Printexc.to_string e))

(* Blocking NDJSON loop: read request lines from [ic] until EOF,
   answer each on [oc].  Blank lines are ignored so interactive use
   with an occasional empty return works. *)
let run t ic oc =
  let rec loop () =
    match input_line ic with
    | line ->
      if String.trim line <> "" then begin
        output_string oc (Json.to_string (handle_line t line));
        output_char oc '\n';
        flush oc
      end;
      loop ()
    | exception End_of_file -> ()
  in
  loop ()
