(* Long-running NDJSON prediction service on top of the engine: one
   JSON request object per line in, one JSON response object per line
   out.  The engine pool and its bounded LRU memo cache persist across
   requests, so a traffic-serving deployment pays decode+predict once
   per distinct block instead of a process start per request.

   The loop is built to degrade gracefully rather than die:

   - the heavy per-request work (decode + predict) runs on a
     supervised executor domain ({!Supervise}); a crash there — real
     bug or injected fault — yields a typed "internal" error for that
     request only, and the executor is respawned with exponential
     backoff behind a circuit breaker;
   - each request runs under an optional wall-clock deadline
     ({!Fault.with_deadline}) and answers "timeout" when the budget is
     spent;
   - a bounded request queue ({!Bqueue}) decouples reading from
     handling; when it fills, new lines are shed with a "retry_after"
     error instead of growing memory;
   - oversized lines, inputs, and blocks answer "too_large";
   - EOF, SIGINT, and SIGTERM all drain in-flight work, flush a final
     stats snapshot to stderr, and return normally; a client that
     closes its end (EPIPE) is counted and triggers the same clean
     shutdown instead of killing the process. *)

open Facile_x86
open Facile_uarch
open Facile_core
module Json = Facile_obs.Json
module Obs = Facile_obs.Obs
module Clock = Facile_obs.Clock

type limits = {
  max_line_bytes : int;
  max_input_bytes : int;
  max_insts : int;
}

let default_limits =
  { max_line_bytes = 1 lsl 20; (* 1 MiB: an adversarial line cannot OOM us *)
    max_input_bytes = 65536;
    max_insts = 4096 }

type t = {
  engine : Engine.t;
  sup : Supervise.t;
  limits : limits;
  deadline_ns : int option;            (* per-request budget; None = off *)
  queue_cap : int;
  retry_after_ms : int;
  latency : Obs.Histogram.t;  (* per-line handling latency, ns *)
  mu : Mutex.t;
  by_arch : (string, int) Hashtbl.t;   (* successful predictions per arch *)
  by_kind : (string, int) Hashtbl.t;   (* error responses per kind *)
  mutable total : int;                 (* every line handled, incl. stats *)
  mutable predicted : int;             (* successful predictions *)
  mutable stats_served : int;
  mutable errors : int;
  mutable shed : int;                  (* lines refused by the full queue *)
  mutable epipe : int;                 (* writes that found the pipe closed *)
  started_ns : int;
  stop : bool Atomic.t;                (* graceful-shutdown request *)
}

let create ?workers ?memoize ?cache_cap ?deadline_ms ?(queue_cap = 128)
    ?(limits = default_limits) ?(supervisor = Supervise.default_config) () =
  if queue_cap < 1 then
    invalid_arg (Printf.sprintf "Serve.create: queue_cap = %d" queue_cap);
  if limits.max_line_bytes < 1 || limits.max_input_bytes < 1
     || limits.max_insts < 1
  then invalid_arg "Serve.create: limits must be positive";
  { engine = Engine.create ?workers ?memoize ?cache_cap ();
    sup = Supervise.create ~config:supervisor ();
    limits;
    deadline_ns =
      Option.map (fun ms ->
          if ms < 0 then invalid_arg "Serve.create: deadline_ms < 0"
          else ms * 1_000_000)
        deadline_ms;
    queue_cap;
    retry_after_ms = 50;
    latency = Obs.Histogram.create ();
    mu = Mutex.create ();
    by_arch = Hashtbl.create 16;
    by_kind = Hashtbl.create 16;
    total = 0;
    predicted = 0;
    stats_served = 0;
    errors = 0;
    shed = 0;
    epipe = 0;
    started_ns = Clock.now_ns ();
    stop = Atomic.make false }

let shutdown t =
  Supervise.shutdown t.sup;
  Engine.shutdown t.engine

let request_shutdown t = Atomic.set t.stop true

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let bump tbl key =
  Hashtbl.replace tbl key
    (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* ----- responses ----- *)

(* Wire error kinds are the Err.t taxonomy plus three serving-layer
   kinds: "bad_request" (the line is not a valid request object),
   "retry_after" (the request queue is full; shed), and "internal"
   (the supervised executor crashed — a bug or an injected fault). *)
let error_response t ~id ~kind ?pos ?(extra = []) msg =
  locked t (fun () ->
      t.errors <- t.errors + 1;
      bump t.by_kind kind);
  Json.Obj
    [ "id", id;
      "error",
      Json.Obj
        ([ "kind", Json.Str kind; "msg", Json.Str msg ]
         @ (match pos with Some p -> [ "pos", Json.Int p ] | None -> [])
         @ extra) ]

let err_response t ~id (e : Err.t) =
  error_response t ~id ~kind:(Err.kind_name e.Err.kind) ?pos:e.Err.pos
    e.Err.msg

let shed_response t ~id =
  locked t (fun () -> t.shed <- t.shed + 1);
  error_response t ~id ~kind:"retry_after"
    ~extra:[ "retry_after_ms", Json.Int t.retry_after_ms ]
    (Printf.sprintf "request queue full (capacity %d)" t.queue_cap)

let stats_json t =
  let c = Engine.cache_stats t.engine in
  let lookups = c.Engine.hits + c.Engine.misses in
  let hit_rate =
    if lookups = 0 then 0.0
    else float_of_int c.Engine.hits /. float_of_int lookups
  in
  let sup = Supervise.stats t.sup in
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) tbl []
    |> List.sort compare
  in
  let q p = Clock.ns_to_us (int_of_float (Obs.Histogram.quantile t.latency p)) in
  locked t (fun () ->
      Json.Obj
        [ "uptime_s",
          Json.Float (Clock.ns_to_s (Clock.now_ns () - t.started_ns));
          "workers", Json.Int (Engine.size t.engine);
          "requests",
          Json.Obj
            [ "total", Json.Int t.total;
              "predicted", Json.Int t.predicted;
              "stats", Json.Int t.stats_served;
              "by_arch", Json.Obj (sorted t.by_arch) ];
          "errors",
          Json.Obj
            [ "total", Json.Int t.errors;
              "by_kind", Json.Obj (sorted t.by_kind) ];
          "cache",
          Json.Obj
            [ "hits", Json.Int c.Engine.hits;
              "misses", Json.Int c.Engine.misses;
              "hit_rate", Json.Float hit_rate;
              "evictions", Json.Int c.Engine.evictions;
              "entries", Json.Int c.Engine.entries;
              "capacity", Json.Int c.Engine.capacity ];
          "queue",
          Json.Obj
            [ "capacity", Json.Int t.queue_cap; "shed", Json.Int t.shed ];
          "supervisor",
          Json.Obj
            [ "respawns", Json.Int sup.Supervise.respawns;
              "crashes", Json.Int sup.Supervise.crashes;
              "degraded", Json.Bool sup.Supervise.degraded;
              "degraded_transitions",
              Json.Int sup.Supervise.degraded_transitions;
              "inline_runs", Json.Int sup.Supervise.inline_runs ];
          "faults",
          Json.Obj
            (List.map
               (fun (p, (injected, hits)) ->
                 ( p,
                   Json.Obj
                     [ "injected", Json.Int injected;
                       "hits", Json.Int hits ] ))
               (Fault.snapshot ()));
          "io", Json.Obj [ "epipe", Json.Int t.epipe ];
          "limits",
          Json.Obj
            [ "max_line_bytes", Json.Int t.limits.max_line_bytes;
              "max_input_bytes", Json.Int t.limits.max_input_bytes;
              "max_insts", Json.Int t.limits.max_insts;
              "deadline_ms",
              (match t.deadline_ns with
               | None -> Json.Null
               | Some ns -> Json.Int (ns / 1_000_000)) ];
          "latency_us",
          Json.Obj
            [ "count", Json.Int (Obs.Histogram.count t.latency);
              "mean", Json.Float (Clock.ns_to_us
                                    (int_of_float
                                       (Obs.Histogram.mean_ns t.latency)));
              "p50", Json.Float (q 0.50);
              "p95", Json.Float (q 0.95);
              "p99", Json.Float (q 0.99) ];
          (* global span/counter registry: attributes time to the
             model components (model.predec, model.dec, model.ports,
             model.precedence) and the engine *)
          "process", Obs.snapshot () ])

(* ----- request handling ----- *)

let mode_of_string = function
  | "loop" -> Ok `Loop
  | "unroll" -> Ok `Unrolled
  | "auto" -> Ok `Auto
  | m ->
    Error
      (Err.v Err.Unknown_mode
         (Printf.sprintf "unknown mode: %s (expected loop|unroll|auto)" m))

let block_of_request cfg ~hex ~asm =
  Fault.point "decode";
  match hex, asm with
  | Some h, _ ->
    Result.bind (Hex.decode h) (fun code ->
        match Block.of_bytes cfg code with
        | b -> Ok b
        | exception Decode.Decode_error (m, off) ->
          Error (Err.v ~pos:off Err.Encode_error ("cannot decode: " ^ m))
        | exception Facile_db.Db.Unsupported m ->
          Error (Err.v Err.Encode_error ("unsupported instruction: " ^ m))
        | exception Failure m -> Error (Err.v Err.Encode_error m))
  | None, Some a ->
    (match Asm.parse_block a with
     | Error m -> Error (Err.v Err.Parse_error m)
     | Ok insts ->
       (match Block.of_instructions cfg insts with
        | b -> Ok b
        | exception Encode.Unencodable m ->
          Error (Err.v Err.Encode_error ("cannot encode: " ^ m))
        | exception Facile_db.Db.Unsupported m ->
          Error (Err.v Err.Encode_error ("unsupported instruction: " ^ m))
        | exception Failure m -> Error (Err.v Err.Encode_error m)))
  | None, None -> assert false

(* The heavy half of a request: decode + size check + predict.  Runs
   on the supervised executor domain under the request deadline;
   injected faults and real bugs raise and kill the executor, a spent
   deadline surfaces as [`Timeout]. *)
let compute t cfg ~mode ~hex ~asm =
  match
    Fault.with_deadline t.deadline_ns (fun () ->
        Result.bind (block_of_request cfg ~hex ~asm) (fun block ->
            if List.length block.Block.entries > t.limits.max_insts then
              Error
                (Err.v Err.Too_large
                   (Printf.sprintf
                      "block has %d instructions, limit is %d"
                      (List.length block.Block.entries) t.limits.max_insts))
            else Ok (Engine.predict t.engine ~mode block)))
  with
  | r -> `Done r
  | exception Fault.Deadline_exceeded -> `Timeout

let timeout_err t =
  Err.v Err.Timeout
    (Printf.sprintf "request exceeded its %dms deadline"
       (match t.deadline_ns with Some ns -> ns / 1_000_000 | None -> 0))

let handle_request t (req : Json.t) : Json.t =
  let id = Option.value ~default:Json.Null (Json.member "id" req) in
  match req with
  | Json.Obj _ when Json.member "cmd" req = Some (Json.Str "stats") ->
    locked t (fun () -> t.stats_served <- t.stats_served + 1);
    Json.Obj [ "id", id; "stats", stats_json t ]
  | Json.Obj _ when Json.member "cmd" req <> None ->
    error_response t ~id ~kind:"bad_request"
      (Printf.sprintf "unknown cmd %s (expected \"stats\")"
         (Json.to_string (Option.get (Json.member "cmd" req))))
  | Json.Obj _ ->
    let field name =
      match Json.member name req with
      | Some (Json.Str s) -> Ok (Some s)
      | Some _ ->
        Error
          (Printf.sprintf "field %S must be a string" name)
      | None -> Ok None
    in
    (match field "arch", field "mode", field "hex", field "asm" with
     | Error m, _, _, _ | _, Error m, _, _ | _, _, Error m, _
     | _, _, _, Error m ->
       error_response t ~id ~kind:"bad_request" m
     | Ok _, Ok _, Ok None, Ok None ->
       error_response t ~id ~kind:"bad_request"
         "request needs a \"hex\" or \"asm\" field"
     | Ok arch, Ok mode, Ok hex, Ok asm ->
       let arch = Option.value ~default:"SKL" arch in
       let mode = Option.value ~default:"auto" mode in
       let input_bytes =
         String.length (Option.value ~default:"" hex)
         + String.length (Option.value ~default:"" asm)
       in
       if input_bytes > t.limits.max_input_bytes then
         err_response t ~id
           (Err.v Err.Too_large
              (Printf.sprintf "input of %d bytes exceeds the %d-byte limit"
                 input_bytes t.limits.max_input_bytes))
       else begin
         match Config.of_abbrev arch, mode_of_string mode with
         | None, _ ->
           err_response t ~id
             (Err.v Err.Unknown_arch ("unknown microarchitecture: " ^ arch))
         | Some _, Error e -> err_response t ~id e
         | Some cfg, Ok mode ->
           (match
              Supervise.run t.sup (fun () -> compute t cfg ~mode ~hex ~asm)
            with
            | Ok (`Done (Error e)) -> err_response t ~id e
            | Ok `Timeout -> err_response t ~id (timeout_err t)
            | Error (Fault.Injected p) ->
              error_response t ~id ~kind:"internal"
                (Printf.sprintf
                   "injected fault at %s killed the worker (respawning)" p)
            | Error e ->
              error_response t ~id ~kind:"internal" (Printexc.to_string e)
            | Ok (`Done (Ok p)) ->
              locked t (fun () ->
                  t.predicted <- t.predicted + 1;
                  bump t.by_arch cfg.Config.abbrev);
              (match Model.prediction_to_json p with
               | Json.Obj fields -> Json.Obj (("id", id) :: fields)
               | other -> Json.Obj [ "id", id; "prediction", other ]))
       end)
  | _ ->
    error_response t ~id:Json.Null ~kind:"bad_request"
      "request must be a JSON object"

(* [handle_line] never raises: whatever arrives on the wire, the
   caller gets exactly one JSON response object back. *)
let handle_line t line : Json.t =
  Obs.timed t.latency @@ fun () ->
  locked t (fun () -> t.total <- t.total + 1);
  let resp =
    if String.length line > t.limits.max_line_bytes then
      err_response t ~id:Json.Null
        (Err.v Err.Too_large
           (Printf.sprintf "request line of %d bytes exceeds the %d-byte limit"
              (String.length line) t.limits.max_line_bytes))
    else
      match Json.parse line with
      | Error m -> error_response t ~id:Json.Null ~kind:"bad_request" m
      | Ok req ->
        (match handle_request t req with
         | resp -> resp
         | exception e ->
           error_response t
             ~id:(Option.value ~default:Json.Null (Json.member "id" req))
             ~kind:"internal" (Printexc.to_string e))
  in
  (* the respond fault point models a failure while producing the
     answer: the response is replaced by a typed internal error, the
     loop survives *)
  match Fault.point "respond" with
  | () -> resp
  | exception Fault.Injected _ ->
    error_response t
      ~id:(Option.value ~default:Json.Null (Json.member "id" resp))
      ~kind:"internal" "injected fault at respond"
  | exception Fault.Deadline_exceeded -> resp

(* ----- the serving loop ----- *)

let install_signal_handlers t =
  let quiet f = try f () with Invalid_argument _ | Sys_error _ -> () in
  (* a closed client pipe must surface as Sys_error on write (counted,
     clean shutdown), not as a process-killing SIGPIPE *)
  quiet (fun () -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore);
  List.iter
    (fun s ->
      quiet (fun () ->
          Sys.set_signal s
            (Sys.Signal_handle (fun _ -> Atomic.set t.stop true))))
    [ Sys.sigint; Sys.sigterm ]

(* Pipelined NDJSON loop: a reader thread feeds the bounded request
   queue (shedding with "retry_after" when it is full) while the
   calling thread drains it through the supervised handler.  Ends —
   after draining everything queued — on EOF, SIGINT/SIGTERM, or a
   client that closed the pipe, flushing a final stats snapshot to
   stderr. *)
let run ?(signals = true) t ic oc =
  if signals then install_signal_handlers t;
  let q = Bqueue.create t.queue_cap in
  let omu = Mutex.create () in
  let write_json j =
    Mutex.lock omu;
    Fun.protect ~finally:(fun () -> Mutex.unlock omu) @@ fun () ->
    try
      output_string oc (Json.to_string j);
      output_char oc '\n';
      flush oc
    with Sys_error _ ->
      (* EPIPE: the client went away; count it and shut down cleanly *)
      locked t (fun () -> t.epipe <- t.epipe + 1);
      Atomic.set t.stop true;
      Bqueue.close q;
      (* park stdout on /dev/null so the runtime's at-exit flush of
         the dead descriptor cannot turn this clean shutdown into a
         fatal Sys_error *)
      if oc == stdout then
        (try
           let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
           (* if fd 1 was closed outright, openfile just reused it *)
           if null <> Unix.stdout then begin
             Unix.dup2 null Unix.stdout;
             Unix.close null
           end
         with Unix.Unix_error _ | Sys_error _ -> ())
  in
  let reader () =
    let rec loop () =
      if not (Atomic.get t.stop) then
        match input_line ic with
        | line ->
          if String.trim line <> "" then begin
            if not (Bqueue.push q line) && not (Bqueue.is_closed q) then begin
              (* shed: answer immediately from the reader so the queue
                 stays bounded; only the id is parsed out of the line *)
              locked t (fun () -> t.total <- t.total + 1);
              let id =
                match Json.parse line with
                | Ok r -> Option.value ~default:Json.Null (Json.member "id" r)
                | Error _ -> Json.Null
              in
              write_json (shed_response t ~id)
            end
          end;
          loop ()
        | exception End_of_file -> ()
        | exception Sys_error _ -> ()
    in
    loop ();
    Bqueue.close q
  in
  let reader_thread = Thread.create reader () in
  (* the signal handler may only set an atomic; this watcher turns the
     flag into a queue close so the drain loop below wakes up *)
  let finished = Atomic.make false in
  let watcher =
    Thread.create
      (fun () ->
        while not (Atomic.get finished) && not (Atomic.get t.stop) do
          Thread.delay 0.02
        done;
        Bqueue.close q)
      ()
  in
  let rec drain () =
    match Bqueue.pop q with
    | Some line ->
      write_json (handle_line t line);
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set finished true;
  (try Thread.join watcher with _ -> ());
  (* the reader may still be blocked in input_line on an open pipe
     after a signal; it is not joined — it dies with the process *)
  if Bqueue.is_closed q && Atomic.get t.stop = false then
    (try Thread.join reader_thread with _ -> ());
  (* final snapshot on stderr: stdout carries only protocol responses *)
  (try
     prerr_endline
       (Json.to_string (Json.Obj [ "final_stats", stats_json t ]));
     flush stderr
   with Sys_error _ -> ())
