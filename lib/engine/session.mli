(** Transport-agnostic NDJSON protocol session.

    A session owns one side of a byte-stream conversation: it
    reassembles chunked input into request lines ({!Framing}), applies
    per-session admission (a token-bucket request rate) and
    backpressure (a bounded request queue, shed inline when full),
    dispatches complete lines to protocol callbacks, and writes the
    responses back — one line each — under a per-session write lock.

    The session knows nothing about sockets, pipes, or the prediction
    protocol: the transport is three functions over bytes, and the
    protocol is four callbacks from line to response string.  The
    stdio serving loop ({!Serve.run}) and every TCP connection
    ({!Net.run}) are the same [Session.run] over different transports
    against one shared {!Serve.t} core.

    Failure model: a write that finds the peer gone ({!Peer_closed},
    [EPIPE]/[ECONNRESET] mapped by the transport) stops *this* session
    only — it is counted in the session's [epipe] counter, the
    optional [on_peer_gone] policy hook runs, and [run] drains and
    returns normally.  Nothing here ever raises out of {!run}. *)

(** Raised by [transport.write] when the peer has closed the
    connection; the transport must map its I/O errors ([EPIPE],
    [ECONNRESET], [Sys_error] on a broken pipe) to this. *)
exception Peer_closed

type transport = {
  read : bytes -> int -> int -> int;
      (** [read buf off len] — blocking partial read; [0] means end of
          stream (transports map connection-reset errors on the read
          side to end-of-stream too). *)
  write : string -> unit;
      (** Write a complete response chunk (the session appends the
          ['\n'] itself).  Raises {!Peer_closed} when the peer went
          away. *)
  close : unit -> unit;
      (** Release the underlying channel; called once when {!run}
          finishes.  Must not raise. *)
}

(** The protocol half, supplied by the serving core.  Every callback
    returns the complete response line (without trailing newline). *)
type callbacks = {
  on_line : string -> string;          (** a complete request line *)
  on_oversized : int -> string;        (** a discarded over-cap line *)
  on_shed : string -> string;          (** queue full: shed this line *)
  on_rate_limited : string -> string;  (** admission rate exceeded *)
}

(** Live accounting hooks for aggregating into shared service stats;
    all optional, all called from session threads. *)
type sink = {
  on_bytes_in : int -> unit;
  on_bytes_out : int -> unit;
  on_epipe : unit -> unit;
}

(** This session's transport-level counters.  Each is an exact,
    monotone atomic accumulator; the record is read counter by
    counter, not as one simultaneous snapshot. *)
type counters = {
  bytes_in : int;       (** raw bytes read, including newlines *)
  bytes_out : int;      (** raw bytes written, including newlines *)
  lines : int;          (** non-blank request lines seen *)
  shed : int;           (** lines shed by the full request queue *)
  rate_limited : int;   (** lines refused by the rate limiter *)
  epipe : int;          (** writes that found the peer gone *)
}

type t

(** [create ~max_line_bytes callbacks transport] — a fresh session.

    [queue_cap] (default 128) bounds the in-session request queue;
    when it is full, lines are answered inline with [on_shed].
    [rate] > 0 arms a token-bucket admission limit of [rate] requests
    per second with burst capacity [burst] (default
    [max 1. rate]); refused lines are answered inline with
    [on_rate_limited].  [should_stop] is polled (by a watcher thread
    and the reader) so a process-wide shutdown flag also stops the
    session.  [on_peer_gone] runs once if a write finds the peer
    closed — transport policy like "stdio client vanished: stop the
    whole process" lives there.
    @raise Invalid_argument if [queue_cap < 1], [rate < 0], or
    [burst < 1] when a rate is set. *)
val create :
  ?queue_cap:int ->
  ?rate:float ->
  ?burst:float ->
  ?should_stop:(unit -> bool) ->
  ?on_peer_gone:(unit -> unit) ->
  ?sink:sink ->
  max_line_bytes:int ->
  callbacks ->
  transport ->
  t

(** Drive the session to completion: a reader thread feeds the queue
    through the framer while the calling thread answers.  Returns
    after end-of-stream, {!stop}, [should_stop ()], or a closed peer —
    always draining already-queued requests first (per-connection
    graceful drain).  Never raises. *)
val run : t -> unit

(** Ask a running session to stop reading and drain: queued requests
    are still answered, then {!run} returns.  Safe from any thread;
    idempotent. *)
val stop : t -> unit

(** [true] once {!stop} was called or the peer went away. *)
val stopped : t -> bool

val counters : t -> counters
