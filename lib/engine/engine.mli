(** Domain-based parallel batch-prediction engine.

    A fixed pool of worker domains (sized from
    [Domain.recommended_domain_count] by default) executes batches of
    independent per-block work over a chunked work queue. Results are
    always ordered by input index, and — because every predictor in
    [Facile_core] is a pure function of its block — a batch produces
    bit-identical results whatever the pool size. With [workers = 1]
    no domain is ever spawned and every batch runs sequentially on the
    calling domain, so the pool can be used unconditionally.

    [predict_batch] adds a memoization layer keyed on
    [(arch, throughput notion, block bytes)]: repeated blocks in a
    corpus — common in BHive-style suites — are predicted once and the
    result is reused, both within a batch and across batches of the
    same pool.  The cache is sharded ({!Shard_cache}): each key hashes
    to one of [cache_shards] independently locked bounded LRUs, and
    concurrent misses on the same key coalesce onto a single compute
    (single flight), so N domains predicting distinct blocks never
    serialize on one lock. *)

open Facile_core

type t

(** [create ?workers ?memoize ?cache_cap ?cache_shards ()] starts a
    pool. [workers] defaults to [Domain.recommended_domain_count ()];
    with [workers = 1] the pool is purely sequential. [memoize]
    (default [true]) enables the prediction cache of {!predict_batch}
    and {!predict}; the cache holds at most [cache_cap] entries
    (default 65536) split over [cache_shards] shards (default
    [workers * 4]; rounded up to a power of two and clamped so every
    shard keeps a useful capacity — see {!Shard_cache.create}), so
    cache memory stays flat under endless distinct traffic and cache
    locking stays off the contended path.
    @raise Invalid_argument if [workers < 1], [cache_cap < 1], or
    [cache_shards < 1]. *)
val create :
  ?workers:int -> ?memoize:bool -> ?cache_cap:int -> ?cache_shards:int ->
  unit -> t

val default_cache_cap : int

(** Number of domains doing work for this pool, including the caller. *)
val size : t -> int

(** Shard count of the memoization cache actually in use (after
    power-of-two rounding and capacity clamping). *)
val cache_shard_count : t -> int

(** [shutdown t] joins the worker domains. The pool must not be used
    afterwards. Idempotent. *)
val shutdown : t -> unit

(** [with_pool ?workers ?memoize ?cache_shards f] runs [f] on a fresh
    pool and shuts it down afterwards, also on exception. *)
val with_pool :
  ?workers:int -> ?memoize:bool -> ?cache_shards:int -> (t -> 'a) -> 'a

type cache_stats = {
  hits : int;
  misses : int;
  coalesced : int; (** requests that waited on another's compute *)
  evictions : int; (** entries dropped by the LRU bound *)
  entries : int;   (** currently cached *)
  capacity : int;
  shards : int;
}

(** Full memoization-cache accounting (see also {!memo_stats}).
    Counters are atomic accumulators: each is exact and monotone, but
    the record is not a simultaneous snapshot across counters. *)
val cache_stats : t -> cache_stats

(** [map t f xs] — [Array.map f xs], spread over the pool. [f] must be
    safe to call from any domain (in particular it must not touch
    domain-unsafe shared state). The result array is ordered like the
    input; an exception raised by any [f x] is re-raised in the caller
    after the batch drains. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [map_list t f xs] — [List.map f xs] via {!map}. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** The throughput notion for a batch: [`Loop] forces TP_L, [`Unrolled]
    forces TP_U, [`Auto] dispatches per block on
    {!Facile_core.Block.ends_in_branch} (like {!Facile_core.Model.predict}). *)
type mode = [ `Loop | `Unrolled | `Auto ]

(** [predict_batch t ~mode blocks] predicts every block, in parallel,
    memoized. The result list is ordered like the input, and is
    bit-identical to a sequential [List.map] of
    [Model.predict ~notion] for every pool size and shard count.
    Duplicate blocks within the batch are predicted once: workers that
    race on the same key coalesce through the cache's single-flight
    path instead of probing and re-adding under two lock rounds. *)
val predict_batch : t -> mode:mode -> Block.t list -> Model.prediction list

(** [predict t ~mode b] — memoized single-block prediction on the
    calling domain, sharing the cache (and hit/miss accounting) with
    {!predict_batch}. This is the serving layer's per-request path. *)
val predict : t -> mode:mode -> Block.t -> Model.prediction

(** [(hits, misses)] of the memoization layer since [create]. A miss is
    a distinct key actually predicted; a hit is a reuse, whether from a
    duplicate within one batch, a coalesced concurrent request, or an
    earlier batch. *)
val memo_stats : t -> int * int

(** The memoization key: microarchitecture, resolved throughput
    notion, the block's form signature ({!Facile_core.Block.form_sig})
    and its exact bytes.  Exposed so the persistent prediction store
    ([Facile_store]) can flush and re-seed the cache across process
    restarts. *)
type memo_key = Facile_uarch.Config.arch * [ `Loop | `Unrolled ] * int * string

(** Snapshot of the memo cache in deterministic shard-merge order
    (shard 0 most-recent first, then shard 1, ...). *)
val memo_entries : t -> (memo_key * Model.prediction) list

(** [memo_seed t entries] pre-populates the memo cache (warm start)
    with [entries] in {!memo_entries} order (most-recent first within
    each shard), preserving per-shard recency.  Seeded entries do not
    count as hits or misses; a bounded cache keeps only the most
    recent entries per shard.  A no-op on a pool created with
    [~memoize:false]. *)
val memo_seed : t -> (memo_key * Model.prediction) list -> unit
