(** Multi-client TCP transport for the NDJSON prediction service.

    [Net.run t cfg] listens on [cfg.host:cfg.port] and serves each
    accepted connection as one {!Session} ({!Serve.session}) against
    the shared {!Serve.t} core — every client shares the engine pool,
    memo cache, supervised executor, and statistics, while framing,
    admission, backpressure, and write failures stay per connection:

    - at most [max_conns] connections are served concurrently;
      connections over the limit are answered with one
      ["retry_after"] line and closed, counted under
      [connections.rejected];
    - [conn_rate] > 0 arms a per-connection token bucket of that many
      requests/second; refused requests answer ["rate_limited"] with
      a [retry_after_ms] hint, counted under
      [connections.rate_limited];
    - a client that floods faster than the engine drains is shed per
      connection with ["retry_after"] (its session's bounded queue),
      never stalling other clients;
    - a client that disconnects mid-write ([EPIPE]/[ECONNRESET])
      kills only its own session, counted under [io.epipe];
    - SIGINT/SIGTERM (or {!Serve.request_shutdown}) stop the accept
      loop, drain every in-flight connection (queued requests are
      still answered), and flush the final stats snapshot to stderr.

    Observable counters: [net.conns.accepted], [net.conns.active],
    [net.conns.rejected] in the process registry, plus the
    ["connections"] section of [{"cmd":"stats"}]. *)

type config = {
  host : string;      (** bind address, e.g. "127.0.0.1" or "0.0.0.0" *)
  port : int;         (** TCP port; [0] picks an ephemeral port *)
  max_conns : int;    (** concurrent-connection limit *)
  conn_rate : float;  (** per-connection requests/second; [0.] = off *)
}

(** [{host = "127.0.0.1"; port = 0; max_conns = 64; conn_rate = 0.}] *)
val default_config : config

(** [parse_endpoint "HOST:PORT"] splits at the last [':'] (so bare
    IPv6 textual addresses with an appended port parse), validating
    the port. *)
val parse_endpoint : string -> (string * int, string) result

(** [fd_transport fd] — a {!Session.transport} over a connected
    socket (or any stream fd): reads map reset-style errors to
    end-of-stream, writes map [EPIPE]/[ECONNRESET] to
    {!Session.Peer_closed}, close shuts the socket down and closes
    it. *)
val fd_transport : Unix.file_descr -> Session.transport

(** [run ?signals ?announce t cfg] — bind, listen, and serve until
    shutdown.  [announce] (default ignore) receives the actually
    bound address and port once listening — the way callers learn the
    ephemeral port when [cfg.port = 0].  [signals] (default [true])
    installs the serving signal discipline
    ({!Serve.install_signal_handlers}).  Returns after the graceful
    drain; does not call {!Serve.shutdown}.
    @raise Invalid_argument if [max_conns < 1], [conn_rate] is
    negative or not finite, or the port is out of range.
    @raise Failure if the address cannot be resolved or bound. *)
val run :
  ?signals:bool ->
  ?announce:(host:string -> port:int -> unit) ->
  Serve.t ->
  config ->
  unit
