(* Supervised execution of request work on a dedicated executor
   domain, isolating the caller from crashes in the work itself.

   The contract: [run t f] executes [f] on the executor and returns
   [Ok v] — or, if [f] raises, the exception is posted back as
   [Error e] and the executor domain *dies* (we treat any escaped
   exception as domain death, which is also how the fault-injection
   harness kills workers on purpose).  The supervisor joins the dead
   domain and respawns a fresh one with exponential backoff; while
   backing off, and after a circuit breaker trips (>= max_respawns
   crashes inside a sliding window), work runs inline on the calling
   thread in guarded "degraded sequential mode" instead.  The breaker
   closes again after a cooldown.

   [run] is designed for one dispatcher thread (the serve handler
   loop); it is not a general-purpose thread-safe job pool. *)

module Clock = Facile_obs.Clock
module Sync = Facile_core.Sync

type config = {
  max_respawns : int;     (* breaker threshold within [window_ns] *)
  window_ns : int;
  backoff_base_ns : int;  (* first respawn delay, doubling per crash *)
  backoff_cap_ns : int;
  cooldown_ns : int;      (* breaker-open duration *)
}

let default_config =
  { max_respawns = 5;
    window_ns = 10_000_000_000;     (* 10 s *)
    backoff_base_ns = 1_000_000;    (* 1 ms *)
    backoff_cap_ns = 200_000_000;   (* 200 ms *)
    cooldown_ns = 2_000_000_000 }   (* 2 s *)

type stats = {
  respawns : int;
  crashes : int;
  degraded : bool;
  degraded_transitions : int;
  inline_runs : int;
  last_crash : string option;
}

type worker = {
  wmu : Mutex.t;
  wcond : Condition.t;
  mutable pending : (unit -> unit) option;
  mutable stop : bool;
  mutable dom : unit Domain.t option;
}

type t = {
  cfg : config;
  mu : Mutex.t;
  run_mu : Mutex.t;  (* serializes dispatch onto the single executor *)
  mutable worker : worker option;
  mutable respawns : int;
  mutable crashes : int;
  mutable recent : int list;       (* crash timestamps (ns), windowed *)
  mutable backoff_ns : int;
  mutable retry_at_ns : int;       (* no respawn before this instant *)
  mutable degraded_until_ns : int;
  mutable is_degraded : bool;
  mutable degraded_transitions : int;
  mutable inline_runs : int;
  mutable last_crash : string option;
  mutable shut : bool;
}

let worker_loop w =
  let rec loop () =
    let job =
      Sync.with_lock_cond w.wmu w.wcond
        ~until:(fun () -> w.pending <> None || w.stop)
        (fun () ->
          if w.stop then None
          else begin
            let j = Option.get w.pending in
            w.pending <- None;
            Some j
          end)
    in
    match job with
    | None -> ()
    | Some job ->
      (* a raise here escapes loop and kills the domain — by design;
         the job therefore runs outside the critical section *)
      job ();
      loop ()
  in
  loop ()

let spawn_worker () =
  let w =
    { wmu = Mutex.create (); wcond = Condition.create (); pending = None;
      stop = false; dom = None }
  in
  (* swallow the crash exception at the domain's top so Domain.join
     stays clean; the crash itself was already posted to the caller *)
  w.dom <- Some (Domain.spawn (fun () -> try worker_loop w with _ -> ()));
  w

let create ?(config = default_config) () =
  if config.max_respawns < 1 then invalid_arg "Supervise: max_respawns < 1";
  { cfg = config; mu = Mutex.create (); run_mu = Mutex.create ();
    worker = Some (spawn_worker ());
    respawns = 0; crashes = 0; recent = []; backoff_ns = config.backoff_base_ns;
    retry_at_ns = 0; degraded_until_ns = 0; is_degraded = false;
    degraded_transitions = 0; inline_runs = 0; last_crash = None;
    shut = false }

let join_worker w =
  Sync.with_lock w.wmu (fun () ->
      w.stop <- true;
      Condition.broadcast w.wcond);
  match w.dom with Some d -> Domain.join d | None -> ()

(* Spawn the replacement once the backoff has elapsed, even with no
   traffic, so a supervisor that crashed recovers on its own and stats
   probes see the respawn promptly.  [acquire] below keeps a lazy
   respawn path as a fallback (e.g. right after the breaker closes). *)
let respawn_after t delay_ns =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay (float_of_int delay_ns /. 1e9);
         Sync.with_lock t.mu (fun () ->
             if
               (not t.shut) && (not t.is_degraded) && t.worker = None
               && Clock.now_ns () >= t.retry_at_ns
             then begin
               t.worker <- Some (spawn_worker ());
               t.respawns <- t.respawns + 1
             end))
       ())

let record_crash t e =
  let degraded_now, delay =
    Sync.with_lock t.mu (fun () ->
        (match t.worker with
         | Some w ->
           (* the executor domain is already dead (its job raised), so
              joining here cannot block on live work *)
           join_worker w;
           t.worker <- None
         | None -> ());
        t.crashes <- t.crashes + 1;
        t.last_crash <- Some (Printexc.to_string e);
        let now = Clock.now_ns () in
        t.recent <-
          now :: List.filter (fun ts -> now - ts <= t.cfg.window_ns) t.recent;
        t.retry_at_ns <- now + t.backoff_ns;
        let delay = t.backoff_ns in
        t.backoff_ns <- min (t.backoff_ns * 2) t.cfg.backoff_cap_ns;
        if
          List.length t.recent >= t.cfg.max_respawns && not t.is_degraded
        then begin
          t.is_degraded <- true;
          t.degraded_until_ns <- now + t.cfg.cooldown_ns;
          t.degraded_transitions <- t.degraded_transitions + 1
        end;
        (t.is_degraded, delay))
  in
  if not degraded_now then respawn_after t delay

(* Pick the execution vehicle for one job: the live executor, a freshly
   respawned one, or — degraded / backing off / shut — the caller. *)
let acquire t =
  Sync.with_lock t.mu (fun () ->
      let now = Clock.now_ns () in
      if t.is_degraded && now >= t.degraded_until_ns then begin
        (* breaker half-open -> closed: try real workers again *)
        t.is_degraded <- false;
        t.degraded_transitions <- t.degraded_transitions + 1;
        t.recent <- [];
        t.backoff_ns <- t.cfg.backoff_base_ns
      end;
      let w =
        if t.shut || t.is_degraded then None
        else
          match t.worker with
          | Some w -> Some w
          | None ->
            if now >= t.retry_at_ns then begin
              let w = spawn_worker () in
              t.worker <- Some w;
              t.respawns <- t.respawns + 1;
              Some w
            end
            else None
      in
      if w = None then t.inline_runs <- t.inline_runs + 1;
      w)

(* [run] is safe for concurrent callers (one per live connection):
   there is one executor domain, so dispatch-and-wait is serialized on
   [run_mu] — acquire and post must be one atomic step, or caller B
   could overwrite caller A's pending job, or post to a worker A just
   declared dead.  The degraded/backing-off inline path runs outside
   the lock: guarded inline jobs cannot interfere with each other. *)
let run t f =
  let dispatched =
    Sync.with_lock t.run_mu (fun () ->
        match acquire t with
        | None -> None
        | Some w ->
          let smu = Mutex.create () in
          let scond = Condition.create () in
          let result = ref None in
          let post r =
            Sync.with_lock smu (fun () ->
                result := Some r;
                Condition.signal scond)
          in
          let wrapped () =
            match f () with
            | v -> post (Ok v)
            | exception e ->
              post (Error e);
              raise e (* kill the executor domain *)
          in
          Sync.with_lock w.wmu (fun () ->
              w.pending <- Some wrapped;
              Condition.signal w.wcond);
          let r =
            Sync.with_lock_cond smu scond
              ~until:(fun () -> !result <> None)
              (fun () -> Option.get !result)
          in
          (match r with
           | Ok _ ->
             Sync.with_lock t.mu (fun () ->
                 t.backoff_ns <- t.cfg.backoff_base_ns)
           | Error e -> record_crash t e);
          Some r)
  in
  match dispatched with
  | Some r -> r
  | None ->
    (* degraded / backing off / shut: guarded inline on the caller,
       outside [run_mu] — inline jobs cannot interfere with each other *)
    (match f () with v -> Ok v | exception e -> Error e)

let stats t =
  Sync.with_lock t.mu (fun () ->
      { respawns = t.respawns; crashes = t.crashes; degraded = t.is_degraded;
        degraded_transitions = t.degraded_transitions;
        inline_runs = t.inline_runs; last_crash = t.last_crash })

let degraded t = Sync.with_lock t.mu (fun () -> t.is_degraded)

let shutdown t =
  let w =
    Sync.with_lock t.mu (fun () ->
        t.shut <- true;
        let w = t.worker in
        t.worker <- None;
        w)
  in
  Option.iter join_worker w
