(* Bounded multi-producer queue with explicit backpressure: [push]
   never blocks — a full (or closed) queue refuses the item so the
   producer can shed load instead of growing memory.  [pop] blocks
   until an item arrives or the queue is closed and drained, which
   doubles as the graceful-shutdown signal for consumers. *)

type 'a t = {
  cap : int;
  mu : Mutex.t;
  not_empty : Condition.t;
  q : 'a Queue.t;
  mutable closed : bool;
}

let create cap =
  if cap < 1 then invalid_arg (Printf.sprintf "Bqueue.create: cap = %d" cap);
  { cap; mu = Mutex.create (); not_empty = Condition.create ();
    q = Queue.create (); closed = false }

let capacity t = t.cap

let length t =
  Mutex.lock t.mu;
  let n = Queue.length t.q in
  Mutex.unlock t.mu;
  n

let push t x =
  Mutex.lock t.mu;
  let accepted =
    if t.closed || Queue.length t.q >= t.cap then false
    else begin
      Queue.push x t.q;
      Condition.signal t.not_empty;
      true
    end
  in
  Mutex.unlock t.mu;
  accepted

let pop t =
  Mutex.lock t.mu;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.not_empty t.mu
  done;
  let item = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
  Mutex.unlock t.mu;
  item

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.mu

let is_closed t =
  Mutex.lock t.mu;
  let c = t.closed in
  Mutex.unlock t.mu;
  c
