(* Bounded multi-producer queue with explicit backpressure: [push]
   never blocks — a full (or closed) queue refuses the item so the
   producer can shed load instead of growing memory.  [pop] blocks
   until an item arrives or the queue is closed and drained, which
   doubles as the graceful-shutdown signal for consumers.

   Every critical section goes through {!Facile_core.Sync}: a raising
   caller (or a future edit that raises mid-section) releases the
   lock on the way out instead of deadlocking every other producer
   and consumer of the queue. *)

module Sync = Facile_core.Sync

type 'a t = {
  cap : int;
  mu : Mutex.t;
  not_empty : Condition.t;
  q : 'a Queue.t;
  mutable closed : bool;
}

let create cap =
  if cap < 1 then invalid_arg (Printf.sprintf "Bqueue.create: cap = %d" cap);
  { cap; mu = Mutex.create (); not_empty = Condition.create ();
    q = Queue.create (); closed = false }

let capacity t = t.cap

let length t = Sync.with_lock t.mu (fun () -> Queue.length t.q)

let push t x =
  Sync.with_lock t.mu (fun () ->
      if t.closed || Queue.length t.q >= t.cap then false
      else begin
        Queue.push x t.q;
        Condition.signal t.not_empty;
        true
      end)

let pop t =
  Sync.with_lock_cond t.mu t.not_empty
    ~until:(fun () -> t.closed || not (Queue.is_empty t.q))
    (fun () -> if Queue.is_empty t.q then None else Some (Queue.pop t.q))

let close t =
  Sync.with_lock t.mu (fun () ->
      t.closed <- true;
      Condition.broadcast t.not_empty)

let is_closed t = Sync.with_lock t.mu (fun () -> t.closed)
