(** Sharded concurrent bounded cache with single-flight miss
    coalescing.

    A [('k, 'v) t] is an array of independent bounded {!Lru} shards,
    each behind its own lock, selected by masking the caller-supplied
    key hash — concurrent operations on keys in different shards never
    contend.  A miss is computed under {e single-flight}: the first
    requester of a key computes it (outside any lock) while concurrent
    requesters of the same key wait on the shard's condition variable
    and reuse the result, so K racing identical requests cost one
    compute.  Hit/miss/coalesced counters are [Atomic] accumulators:
    monotone and cheap to bump, but {!stats} is not a simultaneous
    snapshot (see DESIGN.md section 15).

    Safe to use from any number of domains and threads. *)

type ('k, 'v) t

type stats = {
  hits : int;        (** found cached, including coalesced waits *)
  misses : int;      (** computed by {!find_or_compute} *)
  coalesced : int;   (** requests that waited on another's compute *)
  evictions : int;   (** summed over shards *)
  entries : int;     (** summed over shards *)
  capacity : int;    (** summed over shards; equals the [cap] given *)
  shards : int;      (** actual shard count after rounding/clamping *)
}

(** [create ~shards ~cap ~hash ()] — a cache of at most [cap] entries
    split over [shards] shards ([hash] routes each key).  The shard
    count is rounded up to a power of two and clamped so each shard
    keeps at least 16 entries of capacity (down to a single shard,
    which behaves exactly like one locked {!Lru}); the per-shard
    capacities sum to exactly [cap].
    @raise Invalid_argument if [cap < 1] or [shards < 1]. *)
val create : shards:int -> cap:int -> hash:('k -> int) -> unit -> ('k, 'v) t

(** Shard count actually in use (a power of two). *)
val shard_count : ('k, 'v) t -> int

(** [find_or_compute t k compute] — the cached value for [k], or
    [compute ()] stored under [k].  Concurrent calls for the same [k]
    compute once: one caller owns the compute, the others block until
    it resolves and share the result (counted as [coalesced] and then
    [hits]).  If the owner's [compute] raises, the exception
    propagates to the owner only; waiters retry and one of them
    becomes the new owner. *)
val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

(** Plain lookup; promotes to most-recent, does not count a hit. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** Plain insert; does not count a miss (the warm-restart seed path —
    seeded entries must not pollute traffic accounting). *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** Monotone counter totals plus summed shard occupancy. *)
val stats : ('k, 'v) t -> stats

(** Every binding in deterministic merge order: shard 0 most-recent
    first, then shard 1, ... — the warm-restart flush order. *)
val to_list : ('k, 'v) t -> ('k * 'v) list
