(* Chunked line reassembly with a hard per-line memory bound.

   State machine: either accumulating the current line in [buf]
   (at most [cap] bytes), or — once the line has provably exceeded
   [cap] — discarding until the next '\n' while only counting the
   dropped length.  Either way a chunk is scanned exactly once. *)

type event = Line of string | Oversized of int

type t = {
  cap : int;
  buf : Buffer.t;
  mutable discarding : bool; (* lint: unguarded — single reader thread *)
  mutable dropped : int; (* lint: unguarded — bytes of the current oversized line; single reader thread *)
}

let create ~max_line_bytes =
  if max_line_bytes < 1 then
    invalid_arg
      (Printf.sprintf "Framing.create: max_line_bytes = %d" max_line_bytes);
  { cap = max_line_bytes;
    buf = Buffer.create (min max_line_bytes 4096);
    discarding = false;
    dropped = 0 }

let max_line_bytes t = t.cap
let buffered t = Buffer.length t.buf

let feed t b off len =
  if off < 0 || len < 0 || off > Bytes.length b - len then
    invalid_arg "Framing.feed: invalid range";
  let events = ref [] in
  let emit e = events := e :: !events in
  let i = ref off in
  let stop = off + len in
  while !i < stop do
    (* the current segment: [!i, j) holds no '\n' *)
    let j = ref !i in
    while !j < stop && Bytes.unsafe_get b !j <> '\n' do
      incr j
    done;
    let seg = !j - !i in
    if !j < stop then begin
      (* the segment completes a line at the '\n' in position !j *)
      if t.discarding then begin
        emit (Oversized (t.dropped + seg));
        t.discarding <- false;
        t.dropped <- 0
      end
      else begin
        let total = Buffer.length t.buf + seg in
        if total > t.cap then emit (Oversized total)
        else begin
          Buffer.add_subbytes t.buf b !i seg;
          emit (Line (Buffer.contents t.buf))
        end;
        Buffer.clear t.buf
      end;
      i := !j + 1
    end
    else begin
      (* chunk ended mid-line: buffer (or drop) the partial segment *)
      if t.discarding then t.dropped <- t.dropped + seg
      else if Buffer.length t.buf + seg > t.cap then begin
        t.dropped <- Buffer.length t.buf + seg;
        t.discarding <- true;
        Buffer.clear t.buf
      end
      else Buffer.add_subbytes t.buf b !i seg;
      i := !j
    end
  done;
  List.rev !events

let feed_string t s = feed t (Bytes.unsafe_of_string s) 0 (String.length s)

let finish t =
  if t.discarding then begin
    let n = t.dropped in
    t.discarding <- false;
    t.dropped <- 0;
    Some (Oversized n)
  end
  else if Buffer.length t.buf > 0 then begin
    let line = Buffer.contents t.buf in
    Buffer.clear t.buf;
    Some (Line line)
  end
  else None
