(** Supervised execution on a dedicated executor domain.

    [run t f] executes [f] on the executor domain.  An exception
    escaping [f] is treated as domain death: the caller gets
    [Error e], the dead domain is joined, and a replacement is spawned
    with exponential backoff.  A circuit breaker flips the supervisor
    into degraded sequential mode — jobs run guarded on the calling
    thread — after [max_respawns] crashes inside [window_ns], closing
    again after [cooldown_ns].

    [run] is safe to call from concurrent dispatcher threads (one per
    serving connection); jobs are serialized onto the single executor
    domain, and degraded/backing-off jobs run guarded inline on their
    own caller. *)

type config = {
  max_respawns : int;     (** breaker threshold within [window_ns] *)
  window_ns : int;
  backoff_base_ns : int;  (** first respawn delay, doubling per crash *)
  backoff_cap_ns : int;
  cooldown_ns : int;      (** breaker-open duration *)
}

val default_config : config

type stats = {
  respawns : int;             (** executors spawned after a crash *)
  crashes : int;              (** jobs that killed their executor *)
  degraded : bool;            (** breaker currently open *)
  degraded_transitions : int; (** breaker flips, both directions *)
  inline_runs : int;          (** jobs run degraded/backing-off inline *)
  last_crash : string option;
}

type t

(** Spawns the initial executor domain. *)
val create : ?config:config -> unit -> t

(** Run [f] under supervision; [Error e] if [f] raised (crashing the
    executor) wherever it ran. *)
val run : t -> (unit -> 'a) -> ('a, exn) result

val stats : t -> stats
val degraded : t -> bool

(** Stop and join the executor. Further [run]s execute inline. *)
val shutdown : t -> unit
