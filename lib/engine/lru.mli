(** Bounded LRU map with O(1) find/add and an eviction counter.

    Not synchronized: callers that share an instance across domains
    must hold their own lock (the engine memo cache does). *)

type ('k, 'v) t

(** [create cap] holds at most [cap] entries.
    @raise Invalid_argument if [cap < 1]. *)
val create : int -> ('k, 'v) t

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

(** Entries dropped to stay within capacity since [create]. *)
val evictions : ('k, 'v) t -> int

(** [find t k] returns the bound value and marks it most-recent. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [add t k v] binds [k] to [v] as most-recent, evicting the
    least-recent entry if the map is full and [k] is new. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

val mem : ('k, 'v) t -> 'k -> bool

(** Every binding, most-recent first.  Does not touch recency. *)
val to_list : ('k, 'v) t -> ('k * 'v) list
