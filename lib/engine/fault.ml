(* Deterministic fault injection and cooperative request deadlines.

   Both are checked at named *points* in the request pipeline
   ("decode", "predict", "respond"): [point p] first consults the
   injection table and raises [Injected p] when the seeded PRNG fires,
   then checks the active wall-clock deadline and raises
   [Deadline_exceeded] when the budget is spent.  With no spec
   configured and no deadline armed, [point] is two atomic loads.

   The spec grammar (env var FACILE_FAULT or [configure]) is

     point:rate:seed[:limit][,point:rate:seed[:limit]...]

   e.g. "predict:0.05:42" injects at the predict point with
   probability 0.05 from a splitmix64 stream seeded with 42, and
   "predict:1:7:1" injects exactly once (limit 1) then never again.
   Every injection increments a per-point counter, snapshotted by
   [snapshot] so the serving layer can report each injected fault. *)

module Sync = Facile_core.Sync

exception Injected of string
exception Deadline_exceeded

type rule = {
  rate : float;               (* injection probability per hit *)
  mutable prng : int64;       (* splitmix64 state, mutated per hit *)
  limit : int;                (* max injections; -1 = unlimited *)
  mutable injected : int;     (* faults actually raised *)
  mutable hits : int;         (* times the point was consulted *)
}

(* rules keyed by point name; a mutex serializes PRNG stepping so the
   stream is deterministic even if two domains ever share a point *)
let mu = Mutex.create ()
let rules : (string, rule) Hashtbl.t = Hashtbl.create 8
let armed = Atomic.make false (* fast-path gate: any rules configured? *)

let clear () =
  Sync.with_lock mu (fun () ->
      Hashtbl.reset rules;
      Atomic.set armed false)

(* splitmix64: tiny, seedable, good enough for Bernoulli draws *)
let splitmix64 state =
  let z = Int64.add state 0x9e3779b97f4a7c15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94d049bb133111ebL in
  (z, Int64.logxor z (Int64.shift_right_logical z 31))

let uniform rule =
  let state, out = splitmix64 rule.prng in
  rule.prng <- state;
  (* 53 high bits -> [0,1) *)
  Int64.to_float (Int64.shift_right_logical out 11) /. 9007199254740992.0

let parse_spec spec =
  let parse_one s =
    match String.split_on_char ':' (String.trim s) with
    | point :: rate :: seed :: rest when point <> "" ->
      let rate =
        match float_of_string_opt rate with
        | Some r when r >= 0.0 && r <= 1.0 -> r
        | _ -> invalid_arg (Printf.sprintf "FACILE_FAULT: bad rate %S" rate)
      in
      let seed =
        match Int64.of_string_opt seed with
        | Some s -> s
        | None -> invalid_arg (Printf.sprintf "FACILE_FAULT: bad seed %S" seed)
      in
      let limit =
        match rest with
        | [] -> -1
        | [ l ] ->
          (match int_of_string_opt l with
           | Some n when n >= 0 -> n
           | _ -> invalid_arg (Printf.sprintf "FACILE_FAULT: bad limit %S" l))
        | _ -> invalid_arg ("FACILE_FAULT: too many fields in " ^ s)
      in
      (point, { rate; prng = seed; limit; injected = 0; hits = 0 })
    | _ ->
      invalid_arg
        ("FACILE_FAULT: expected point:rate:seed[:limit], got " ^ s)
  in
  String.split_on_char ',' spec
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map parse_one

let configure spec =
  let parsed = parse_spec spec in
  Sync.with_lock mu (fun () ->
      Hashtbl.reset rules;
      List.iter (fun (p, r) -> Hashtbl.replace rules p r) parsed;
      Atomic.set armed (parsed <> []))

let configure_from_env () =
  match Sys.getenv_opt "FACILE_FAULT" with
  | None | Some "" -> ()
  | Some spec -> configure spec

(* ----- deadlines ----- *)

(* Absolute monotonic deadline in ns; 0 = disarmed.  One request is in
   flight at a time in the serving layer, so a single process-wide
   atomic is sufficient and visible across the executor domain. *)
let deadline_ns = Atomic.make 0

let set_deadline = function
  | None -> Atomic.set deadline_ns 0
  | Some abs_ns -> Atomic.set deadline_ns (max 1 abs_ns)

let check_deadline () =
  let d = Atomic.get deadline_ns in
  if d <> 0 && Facile_obs.Clock.now_ns () > d then raise Deadline_exceeded

let with_deadline budget_ns f =
  match budget_ns with
  | None -> f ()
  | Some b ->
    set_deadline (Some (Facile_obs.Clock.now_ns () + b));
    Fun.protect ~finally:(fun () -> set_deadline None) f

(* ----- the hook ----- *)

let inject p =
  let fire =
    Sync.with_lock mu (fun () ->
        match Hashtbl.find_opt rules p with
        | None -> false
        | Some r ->
          r.hits <- r.hits + 1;
          if r.limit >= 0 && r.injected >= r.limit then false
          else begin
            let fire = r.rate >= 1.0 || uniform r < r.rate in
            if fire then r.injected <- r.injected + 1;
            fire
          end)
  in
  if fire then raise (Injected p)

let point p =
  if Atomic.get armed then inject p;
  check_deadline ()

(* Non-raising draw for data-corrupting fault points (store I/O short
   writes, bit flips): when the rule fires the injection is counted
   and a PRNG payload is handed to the caller, who derives the
   corruption (bit position, truncated length) from it so the damage
   is as deterministic as the firing schedule. *)
let draw p =
  if not (Atomic.get armed) then None
  else
    Sync.with_lock mu (fun () ->
        match Hashtbl.find_opt rules p with
        | None -> None
        | Some r ->
          r.hits <- r.hits + 1;
          if r.limit >= 0 && r.injected >= r.limit then None
          else begin
            let fire = r.rate >= 1.0 || uniform r < r.rate in
            if fire then begin
              r.injected <- r.injected + 1;
              let state, out = splitmix64 r.prng in
              r.prng <- state;
              (* land with the native max_int: Int64.max_int keeps 63
                 bits, whose top bit is the sign of OCaml's 63-bit int —
                 the contract promises a non-negative payload *)
              Some (Int64.to_int out land max_int)
            end
            else None
          end)

let snapshot () =
  Sync.with_lock mu (fun () ->
      Hashtbl.fold (fun p r acc -> (p, (r.injected, r.hits)) :: acc) rules []
      |> List.sort compare)
