(** Bounded queue with non-blocking producers (explicit backpressure)
    and blocking consumers with a close/drain shutdown protocol. *)

type 'a t

(** @raise Invalid_argument if [cap < 1]. *)
val create : int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int

(** [push t x] is [false] — the caller must shed the item — when the
    queue is full or closed. Never blocks. *)
val push : 'a t -> 'a -> bool

(** [pop t] blocks for the next item; [None] once the queue is closed
    and drained. *)
val pop : 'a t -> 'a option

(** Refuse further pushes and wake every blocked consumer; already
    queued items still drain. Idempotent. *)
val close : 'a t -> unit

val is_closed : 'a t -> bool
