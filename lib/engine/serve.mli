(** Fault-tolerant NDJSON prediction service on top of {!Engine}.

    Wire protocol (one JSON object per line):
    {v
    -> {"id":1,"arch":"SKL","mode":"auto","hex":"4801d8"}
    <- {"id":1,"cycles":..,"bottlenecks":[..],"values":{..},"fe_path":..}
    -> {"id":2,"asm":"add rax, rbx"}
    <- {"id":2,"cycles":..,...}
    -> {"id":3,"hex":"zz"}
    <- {"id":3,"error":{"kind":"bad_hex","msg":..,"pos":0}}
    -> {"cmd":"stats"}
    <- {"id":null,"stats":{"requests":..,"errors":..,"cache":..,
                           "queue":..,"supervisor":..,"faults":..,
                           "limits":..,"latency_us":..,"process":..}}
    v}

    [arch] defaults to "SKL", [mode] to "auto"; [id] is echoed
    verbatim (any JSON value, default null).  Error kinds are the
    {!Facile_x86.Err.kind} names (including ["too_large"] and
    ["timeout"]) plus ["bad_request"], ["retry_after"] (the bounded
    request queue was full and the line was shed; the error object
    carries a ["retry_after_ms"] hint), and ["internal"] (the
    supervised executor crashed — a bug or an injected fault — and was
    respawned).

    Robustness model: decode + predict run on a supervised executor
    domain with respawn/backoff and a circuit breaker ({!Supervise});
    requests carry an optional wall-clock deadline; input sizes are
    capped; the memo cache is a bounded LRU; EOF/SIGINT/SIGTERM/EPIPE
    all drain queued work and flush a final stats snapshot
    ([{"final_stats":..}] on stderr) before returning. *)

type limits = {
  max_line_bytes : int;   (** longest accepted request line *)
  max_input_bytes : int;  (** longest accepted hex/asm payload *)
  max_insts : int;        (** most instructions per block *)
}

val default_limits : limits

type t

(** [create ?workers ?memoize ?cache_cap ?deadline_ms ?queue_cap
    ?limits ?supervisor ()] starts the service state, including its
    engine pool (see {!Engine.create}) and supervised executor.
    [deadline_ms] arms a per-request wall-clock budget ([0] means an
    already-spent budget — every predict request answers "timeout" —
    which the chaos harness uses); omitted, deadlines are off.
    [queue_cap] (default 128) bounds the request queue of {!run}. *)
val create :
  ?workers:int ->
  ?memoize:bool ->
  ?cache_cap:int ->
  ?deadline_ms:int ->
  ?queue_cap:int ->
  ?limits:limits ->
  ?supervisor:Supervise.config ->
  unit ->
  t

(** Join the supervised executor and the engine's worker domains. *)
val shutdown : t -> unit

(** Ask a running {!run} loop to drain and return (what the
    SIGINT/SIGTERM handlers call). *)
val request_shutdown : t -> unit

(** [handle_line t line] processes one request line and returns the
    response object. Never raises. *)
val handle_line : t -> string -> Facile_obs.Json.t

(** The service-level statistics snapshot served for
    [{"cmd":"stats"}]: request counts (total/predicted/per-arch),
    error counts by kind, cache hits/misses/evictions, queue
    capacity/shed, supervisor respawns/crashes/degraded state,
    per-point fault-injection counters, I/O (EPIPE) counts, the
    configured limits, p50/p95/p99 request latency, and the global
    span registry attributing time to model components. *)
val stats_json : t -> Facile_obs.Json.t

(** [run ?signals t ic oc] — pipelined NDJSON request/response loop:
    a reader thread feeds the bounded queue (shedding with
    "retry_after" when full) while the calling thread drains it.
    Returns after EOF, {!request_shutdown}, SIGINT/SIGTERM, or EPIPE,
    draining queued work first.  [signals] (default [true]) installs
    the SIGPIPE-ignore and SIGINT/SIGTERM handlers; pass [false] in
    embedded/test use. *)
val run : ?signals:bool -> t -> in_channel -> out_channel -> unit
