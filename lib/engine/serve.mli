(** Long-running NDJSON prediction service on top of {!Engine}.

    Wire protocol (one JSON object per line):
    {v
    -> {"id":1,"arch":"SKL","mode":"auto","hex":"4801d8"}
    <- {"id":1,"cycles":..,"bottlenecks":[..],"values":{..},"fe_path":..}
    -> {"id":2,"asm":"add rax, rbx"}
    <- {"id":2,"cycles":..,...}
    -> {"id":3,"hex":"zz"}
    <- {"id":3,"error":{"kind":"bad_hex","msg":..,"pos":0}}
    -> {"cmd":"stats"}
    <- {"id":null,"stats":{"requests":..,"errors":..,"cache":..,
                           "latency_us":..,"process":..}}
    v}

    [arch] defaults to "SKL", [mode] to "auto"; [id] is echoed
    verbatim (any JSON value, default null).  Error kinds are the
    {!Facile_x86.Err.kind} names plus ["bad_request"] and
    ["internal"].  The loop never dies on malformed input; it ends
    only at EOF. *)

type t

(** [create ?workers ?memoize ()] starts the service state, including
    its engine pool (see {!Engine.create}). *)
val create : ?workers:int -> ?memoize:bool -> unit -> t

(** Join the engine's worker domains. *)
val shutdown : t -> unit

(** [handle_line t line] processes one request line and returns the
    response object. Never raises. *)
val handle_line : t -> string -> Facile_obs.Json.t

(** The service-level statistics snapshot served for
    [{"cmd":"stats"}]: request counts (total/predicted/per-arch),
    error counts by kind, cache hit rate, p50/p95/p99 request latency,
    and the global span registry attributing time to model
    components. *)
val stats_json : t -> Facile_obs.Json.t

(** [run t ic oc] — blocking NDJSON request/response loop until EOF on
    [ic]. *)
val run : t -> in_channel -> out_channel -> unit
