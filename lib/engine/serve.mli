(** Fault-tolerant NDJSON prediction service on top of {!Engine}.

    Wire protocol, version {!proto_version} (one JSON object per
    line; responses from {!run}/{!Net.run} carry ["proto"]):
    {v
    -> {"id":1,"arch":"SKL","mode":"auto","hex":"4801d8"}
    <- {"id":1,"cycles":..,"bottlenecks":[..],"values":{..},
        "fe_path":..,"proto":1}
    -> {"id":2,"asm":"add rax, rbx"}
    <- {"id":2,"cycles":..,...,"proto":1}
    -> {"id":3,"hex":"zz"}
    <- {"id":3,"error":{"kind":"bad_hex","msg":..,"pos":0},"proto":1}
    -> {"cmd":"stats"}
    <- {"id":null,"stats":{"requests":..,"errors":..,"cache":..,
                           "queue":..,"connections":..,"supervisor":..,
                           "faults":..,"limits":..,"latency_us":..,
                           "process":..},"proto":1}
    -> {"cmd":"version"}
    <- {"id":null,"version":{"proto":1,"name":"facile",..},"proto":1}
    v}

    [arch] defaults to "SKL", [mode] to "auto"; [id] is echoed
    verbatim (any JSON value, default null).  A request may carry
    ["proto"]: absent or [1] is accepted, anything else is rejected
    with ["bad_request"].  Unknown top-level request keys are rejected
    with a ["bad_request"] naming the offending key.  Error kinds are
    the {!Facile_x86.Err.kind} names (including ["too_large"] and
    ["timeout"]) plus ["bad_request"], ["retry_after"] (the bounded
    request queue was full and the line was shed; the error object
    carries a ["retry_after_ms"] hint), ["rate_limited"] (a
    per-connection admission rate was exceeded; same hint), and
    ["internal"] (the supervised executor crashed — a bug or an
    injected fault — and was respawned).

    Robustness model: decode + predict run on a supervised executor
    domain with respawn/backoff and a circuit breaker ({!Supervise});
    requests carry an optional wall-clock deadline; input sizes are
    capped; the memo cache is a bounded LRU; EOF/SIGINT/SIGTERM/EPIPE
    all drain queued work and flush a final stats snapshot
    ([{"final_stats":..}] on stderr) before returning.  A dead client
    kills only its own session, never the process or the shared
    executor.

    One [t] serves any number of concurrent transports: {!run} drives
    it over stdio, {!Net.run} over N TCP connections, and {!session}
    builds a {!Session.t} over any custom transport — all sharing the
    engine pool, memo cache, supervisor, and statistics. *)

(** Version of the NDJSON wire protocol spoken by this build. *)
val proto_version : int

type limits = {
  max_line_bytes : int;   (** longest accepted request line *)
  max_input_bytes : int;  (** longest accepted hex/asm payload *)
  max_insts : int;        (** most instructions per block *)
}

val default_limits : limits

(** Full service configuration; see {!default_config} for the
    defaults and {!of_config} for validation. *)
type config = {
  workers : int option;      (** engine pool size; [None] = auto *)
  memoize : bool;            (** memoize predictions in a bounded LRU *)
  cache_cap : int option;    (** LRU capacity; [None] = default *)
  cache_shards : int option;
      (** memo-cache shard count; [None] = [workers * 4] (see
          {!Engine.create}) *)
  deadline_ms : int option;  (** per-request budget; [None] = off *)
  queue_cap : int;           (** per-session request queue bound *)
  retry_after_ms : int;      (** hint sent with shed/rate_limited *)
  flush_every : int option;
      (** invoke the persistence hook ({!set_persist}) after every
          [n] successful predictions; [None] = only at shutdown *)
  limits : limits;
  supervisor : Supervise.config;
}

val default_config : config

type t

(** [of_config c] starts the service state, including its engine pool
    (see {!Engine.create}) and supervised executor.
    [c.deadline_ms = Some 0] means an already-spent budget — every
    predict request answers "timeout" — which the chaos harness uses.
    @raise Invalid_argument on non-positive [queue_cap] or limits, or
    a negative [retry_after_ms]/[deadline_ms]. *)
val of_config : config -> t

(** Deprecated spelling of {!of_config} taking the fields as optional
    arguments; kept for embedders of the pre-TCP API. *)
val create :
  ?workers:int ->
  ?memoize:bool ->
  ?cache_cap:int ->
  ?deadline_ms:int ->
  ?queue_cap:int ->
  ?limits:limits ->
  ?supervisor:Supervise.config ->
  unit ->
  t

(** The engine pool behind this service (the CLI uses it to warm the
    memo cache from a persistent store and to dump it back). *)
val engine : t -> Engine.t

(** [set_persist t f] installs the persistence hook: [f] is invoked
    under the service's persistence lock after every
    [config.flush_every] successful predictions and once more at the
    start of {!shutdown}.  The hook is supplied from outside (the CLI
    wires it to a {!Facile_store} writer) so this module stays
    store-agnostic.  A raising hook is counted in the stats ["store"]
    section as [persist_errors], never propagated. *)
val set_persist : t -> (unit -> unit) -> unit

(** Join the supervised executor and the engine's worker domains,
    running the persistence hook first (flush-on-graceful-shutdown —
    this covers the stdio, TCP, and signal paths, which all funnel
    through here). *)
val shutdown : t -> unit

(** Ask every serving loop on this [t] to drain and return (what the
    SIGINT/SIGTERM handlers call). *)
val request_shutdown : t -> unit

(** [true] once {!request_shutdown} (or a handled signal) asked this
    service to stop; accept loops and sessions poll it. *)
val stopping : t -> bool

(** [handle_line t line] processes one request line and returns the
    response object (without the wire-layer ["proto"] tag — transports
    add it via {!with_proto}). Never raises. *)
val handle_line : t -> string -> Facile_obs.Json.t

(** Append [("proto", proto_version)] to a response object that does
    not already carry it; what every transport applies when
    serializing to the wire. *)
val with_proto : Facile_obs.Json.t -> Facile_obs.Json.t

(** The service-level statistics snapshot served for
    [{"cmd":"stats"}]: request counts (total/predicted/per-arch),
    error counts by kind, cache hits/misses/evictions, queue
    capacity/shed, connection counts
    (accepted/active/rejected/rate_limited/bytes in and out),
    supervisor respawns/crashes/degraded state, per-point
    fault-injection counters, I/O (EPIPE) counts, the configured
    limits, p50/p95/p99 request latency, and the global span registry
    attributing time to model components. *)
val stats_json : t -> Facile_obs.Json.t

(** {2 Transport plumbing}

    Building blocks for serving loops ({!run} here, {!Net.run} for
    TCP): connection accounting surfaced in the stats ["connections"]
    section, and session construction over an arbitrary transport. *)

val conn_opened : t -> unit
val conn_closed : t -> unit

(** Count a connection refused at the connection limit. *)
val conn_rejected : t -> unit

(** [session t transport] — a {!Session.t} speaking this service's
    protocol over [transport]: responses carry ["proto"], lines over
    [limits.max_line_bytes] answer ["too_large"], queue overflow
    answers ["retry_after"], and [rate] (requests/second, off by
    default) arms a per-session token bucket answering
    ["rate_limited"].  Bytes and EPIPEs are accounted into [t]'s
    shared stats; [on_peer_gone] is the session's policy hook (stdio
    passes "stop the whole service", TCP connections pass nothing). *)
val session :
  ?rate:float -> ?on_peer_gone:(unit -> unit) -> t -> Session.transport ->
  Session.t

(** Install the serving signal discipline on the process: ignore
    SIGPIPE, and turn SIGINT/SIGTERM into {!request_shutdown}. *)
val install_signal_handlers : t -> unit

(** Run the persistence hook (if any), then emit the
    [{"final_stats":..}] snapshot on stderr — so the snapshot's store
    counters include the end-of-service flush. *)
val print_final_stats : t -> unit

(** [run ?signals t ic oc] — one stdio NDJSON session: a reader
    thread feeds the bounded queue (shedding with "retry_after" when
    full) while the calling thread drains it.  Returns after EOF,
    {!request_shutdown}, SIGINT/SIGTERM, or EPIPE, draining queued
    work first and flushing final stats to stderr.  [signals] (default
    [true]) installs the SIGPIPE-ignore and SIGINT/SIGTERM handlers;
    pass [false] in embedded/test use. *)
val run : ?signals:bool -> t -> in_channel -> out_channel -> unit
