(** Deterministic fault injection and cooperative request deadlines.

    The request pipeline calls {!point} at its named stages ("decode",
    "predict", "respond").  When a fault spec is configured (env var
    [FACILE_FAULT] or {!configure}) the point may raise {!Injected};
    when a deadline is armed and the wall-clock budget is spent it
    raises {!Deadline_exceeded}.  Unconfigured and disarmed, {!point}
    costs two atomic loads.

    Spec grammar: [point:rate:seed[:limit]], comma-separated.  The
    PRNG stream is seeded, so a given spec injects at the same hook
    hits in every run. *)

exception Injected of string
exception Deadline_exceeded

(** Replace the active fault rules with [spec].
    @raise Invalid_argument on a malformed spec. *)
val configure : string -> unit

(** [configure] from [FACILE_FAULT] if set and non-empty. *)
val configure_from_env : unit -> unit

(** Remove all fault rules (deadline state is untouched). *)
val clear : unit -> unit

(** Consult the injection table for point [p], then the deadline. *)
val point : string -> unit

(** Arm ([Some abs_ns], monotonic clock) or disarm ([None]) the
    process-wide request deadline. *)
val set_deadline : int option -> unit

(** Raise {!Deadline_exceeded} if the armed deadline has passed. *)
val check_deadline : unit -> unit

(** [with_deadline (Some budget_ns) f] runs [f] with the deadline
    armed [budget_ns] from now, disarming it afterwards (also on
    exceptions). [None] runs [f] unguarded. *)
val with_deadline : int option -> (unit -> 'a) -> 'a

(** [(point, (injected, hits))] per configured rule, sorted. *)
val snapshot : unit -> (string * (int * int)) list
