(** Deterministic fault injection and cooperative request deadlines.

    The request pipeline calls {!point} at its named stages ("decode",
    "predict", "respond").  When a fault spec is configured (env var
    [FACILE_FAULT] or {!configure}) the point may raise {!Injected};
    when a deadline is armed and the wall-clock budget is spent it
    raises {!Deadline_exceeded}.  Unconfigured and disarmed, {!point}
    costs two atomic loads.

    Spec grammar: [point:rate:seed[:limit]], comma-separated.  The
    PRNG stream is seeded, so a given spec injects at the same hook
    hits in every run. *)

exception Injected of string
exception Deadline_exceeded

(** Replace the active fault rules with [spec].
    @raise Invalid_argument on a malformed spec. *)
val configure : string -> unit

(** [configure] from [FACILE_FAULT] if set and non-empty. *)
val configure_from_env : unit -> unit

(** Remove all fault rules (deadline state is untouched). *)
val clear : unit -> unit

(** Consult the injection table for point [p], then the deadline. *)
val point : string -> unit

(** [draw p] — the non-raising spelling of {!point} for fault points
    that corrupt data instead of crashing: when the rule for [p]
    fires, the injection is counted and [Some payload] is returned,
    where [payload] is a non-negative integer from the rule's seeded
    PRNG stream (the caller derives a deterministic bit position,
    write length, etc. from it).  Returns [None] when no rule is
    configured, the rule does not fire, or its limit is spent.  The
    store I/O points ("store.short_write", "store.enospc",
    "store.read") are consulted this way.  Does not check the
    deadline. *)
val draw : string -> int option

(** Arm ([Some abs_ns], monotonic clock) or disarm ([None]) the
    process-wide request deadline. *)
val set_deadline : int option -> unit

(** Raise {!Deadline_exceeded} if the armed deadline has passed. *)
val check_deadline : unit -> unit

(** [with_deadline (Some budget_ns) f] runs [f] with the deadline
    armed [budget_ns] from now, disarming it afterwards (also on
    exceptions). [None] runs [f] unguarded. *)
val with_deadline : int option -> (unit -> 'a) -> 'a

(** [(point, (injected, hits))] per configured rule, sorted. *)
val snapshot : unit -> (string * (int * int)) list
