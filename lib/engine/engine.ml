open Facile_uarch
open Facile_core
module Sync = Facile_core.Sync

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(*                                                                     *)
(* [size - 1] persistent domains block on [have_work] until a batch    *)
(* closure is published, run it to exhaustion, and report back via     *)
(* [quiesced]. The batch closure itself carries the work queue: an     *)
(* atomic next-chunk counter over the input array, so domains steal    *)
(* chunks without further coordination and each index is claimed by    *)
(* exactly one domain.                                                 *)

(* The memoization key: keyed on the block's form signature (cheap int
   hash of its dense form ids) before the bytes, so most lookups
   reject on an int compare instead of a string compare. *)
type memo_key = Config.arch * [ `Loop | `Unrolled ] * int * string

type t = {
  size : int;
  mutex : Mutex.t;
  have_work : Condition.t;
  quiesced : Condition.t;
  mutable batch : (unit -> unit) option;
  mutable epoch : int;  (* bumped per batch; wakes workers exactly once *)
  mutable active : int; (* workers still inside the current batch *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  (* memoization of predict/predict_batch: a sharded bounded LRU
     (lock per shard, single-flight misses) so a serving process under
     endless distinct traffic cannot grow without limit and concurrent
     requests do not serialize on one cache lock *)
  memoize : bool;
  memo : (memo_key, Model.prediction) Shard_cache.t;
}

let rec worker_loop pool seen_epoch =
  let work =
    Sync.with_lock_cond pool.mutex pool.have_work
      ~until:(fun () -> pool.stop || pool.epoch <> seen_epoch)
      (fun () ->
        if pool.stop then None else Some (pool.epoch, Option.get pool.batch))
  in
  match work with
  | None -> ()
  | Some (epoch, batch) ->
    (* batch closures store per-task exceptions themselves; a raise here
       would mean a bug in the engine, not in user code *)
    batch ();
    Sync.with_lock pool.mutex (fun () ->
        pool.active <- pool.active - 1;
        if pool.active = 0 then Condition.broadcast pool.quiesced);
    worker_loop pool epoch

let default_cache_cap = 65536

(* Shard selection must mix every key component: form signatures are
   already FNV-mixed, the arch and notion are small enums folded in so
   the same bytes on two arches spread over different shards. *)
let memo_hash ((arch, notion, sig_, _bytes) : memo_key) =
  let h = sig_ lxor (Hashtbl.hash arch * 0x9e3779b1) in
  h lxor (match notion with `Loop -> 0x5bd1e995 | `Unrolled -> 0)

let create ?workers ?(memoize = true) ?(cache_cap = default_cache_cap)
    ?cache_shards () =
  let size =
    match workers with
    | None -> max 1 (Domain.recommended_domain_count ())
    | Some n when n >= 1 -> n
    | Some n -> invalid_arg (Printf.sprintf "Engine.create: workers = %d" n)
  in
  if cache_cap < 1 then
    invalid_arg (Printf.sprintf "Engine.create: cache_cap = %d" cache_cap);
  let shards =
    match cache_shards with
    | None ->
      (* enough shards that even an unlucky hash spread keeps the
         expected contention per lock well below one domain *)
      size * 4
    | Some n when n >= 1 -> n
    | Some n ->
      invalid_arg (Printf.sprintf "Engine.create: cache_shards = %d" n)
  in
  let pool =
    { size; mutex = Mutex.create (); have_work = Condition.create ();
      quiesced = Condition.create (); batch = None; epoch = 0; active = 0;
      stop = false; domains = []; memoize;
      memo = Shard_cache.create ~shards ~cap:cache_cap ~hash:memo_hash () }
  in
  pool.domains <-
    List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool 0));
  pool

let size pool = pool.size
let cache_shard_count pool = Shard_cache.shard_count pool.memo

let shutdown pool =
  Sync.with_lock pool.mutex (fun () ->
      pool.stop <- true;
      Condition.broadcast pool.have_work);
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool ?workers ?memoize ?cache_shards f =
  let pool = create ?workers ?memoize ?cache_shards () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Run one batch closure on every domain of the pool (caller included)
   and wait until all of them drained the work queue. *)
let run_batch pool batch =
  if pool.domains = [] then batch ()
  else begin
    Sync.with_lock pool.mutex (fun () ->
        pool.batch <- Some batch;
        pool.epoch <- pool.epoch + 1;
        pool.active <- List.length pool.domains;
        Condition.broadcast pool.have_work);
    batch ();
    Sync.with_lock_cond pool.mutex pool.quiesced
      ~until:(fun () -> pool.active = 0)
      (fun () -> pool.batch <- None)
  end

let map pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if pool.size = 1 || n = 1 then
    Array.map (fun x -> f x) xs (* sequential fallback, same order *)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* small chunks balance load; large ones amortize the atomic — a few
       chunks per worker is a reasonable middle ground, floored at 16
       indices per steal so tiny batches don't pay one fetch-and-add
       per element *)
    let chunk = max 16 (n / (pool.size * 8)) in
    let batch () =
      let rec loop () =
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          for i = start to min (start + chunk) n - 1 do
            results.(i) <- Some (try Ok (f xs.(i)) with e -> Error e)
          done;
          loop ()
        end
      in
      loop ()
    in
    run_batch pool batch;
    Array.map
      (function
        | Some (Ok y) -> y
        | Some (Error e) -> raise e
        | None -> assert false (* run_batch drains every index *))
      results
  end

let map_list pool f xs = Array.to_list (map pool f (Array.of_list xs))

(* ------------------------------------------------------------------ *)
(* Memoized block prediction                                           *)

type mode = [ `Loop | `Unrolled | `Auto ]

let notion_of_block mode (b : Block.t) =
  match mode with
  | (`Loop | `Unrolled) as m -> m
  | `Auto -> if Block.ends_in_branch b then `Loop else `Unrolled

let predict_one notion b =
  match notion with
  | `Loop -> Model.predict ~notion:Model.L b
  | `Unrolled -> Model.predict ~notion:Model.U b

(* resolved once; see Facile_obs.Obs — recording is lock-free *)
let batch_span = Facile_obs.Obs.histogram "engine.batch"
let predict_span = Facile_obs.Obs.histogram "engine.predict"

(* One pass over the sharded cache: a single lock acquisition settles
   hit / join-flight / own-compute, and duplicates — within a batch or
   across concurrent requests — coalesce onto one compute. *)
let memo_predict pool notion b =
  let key =
    (b.Block.cfg.Config.arch, notion, Block.form_sig b, b.Block.bytes)
  in
  Shard_cache.find_or_compute pool.memo key (fun () -> predict_one notion b)

(* Memoized single-block prediction on the calling domain: the serving
   layer's per-request path, sharing the cross-batch cache (and its
   hit/miss accounting) with [predict_batch]. *)
let predict pool ~mode b =
  Facile_obs.Obs.timed predict_span @@ fun () ->
  (* fault-injection and deadline hook for the serving path; a no-op
     unless FACILE_FAULT or a request deadline is armed *)
  Fault.point "predict";
  let notion = notion_of_block mode b in
  if not pool.memoize then predict_one notion b
  else memo_predict pool notion b

let predict_batch pool ~mode blocks =
  Facile_obs.Obs.timed batch_span @@ fun () ->
  let blocks = Array.of_list blocks in
  let f =
    if not pool.memoize then fun b -> predict_one (notion_of_block mode b) b
    else fun b -> memo_predict pool (notion_of_block mode b) b
  in
  Array.to_list (map pool f blocks)

let memo_stats pool =
  let s = Shard_cache.stats pool.memo in
  (s.Shard_cache.hits, s.Shard_cache.misses)

(* ------------------------------------------------------------------ *)
(* Memo persistence: the warm-restart surface of the persistent
   prediction store (Facile_store).  [memo_entries] snapshots the
   cache for flushing to disk; [memo_seed] pre-populates it from
   loaded records without touching the hit/miss accounting, so stats
   reflect only this process's traffic. *)

let memo_entries pool = Shard_cache.to_list pool.memo

let memo_seed pool entries =
  if pool.memoize then
    (* entries arrive most-recent first ([memo_entries] order, which
       the store preserves); insert oldest first so each shard's LRU
       keeps the same recency and a bounded cache evicts the same cold
       tail *)
    List.iter (fun (k, v) -> Shard_cache.add pool.memo k v) (List.rev entries)

type cache_stats = {
  hits : int;
  misses : int;
  coalesced : int;
  evictions : int;
  entries : int;
  capacity : int;
  shards : int;
}

let cache_stats pool =
  let s = Shard_cache.stats pool.memo in
  { hits = s.Shard_cache.hits; misses = s.Shard_cache.misses;
    coalesced = s.Shard_cache.coalesced; evictions = s.Shard_cache.evictions;
    entries = s.Shard_cache.entries; capacity = s.Shard_cache.capacity;
    shards = s.Shard_cache.shards }
