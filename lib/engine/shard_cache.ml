(* Sharded concurrent bounded cache with single-flight miss
   coalescing: the contention-free replacement for the engine's old
   single-lock memo LRU.

   Layout: [shards] independent {!Lru.t} instances, each behind its
   own mutex, selected by masking the caller-supplied key hash — so a
   lookup contends only with lookups that hash to the same shard, and
   N domains hitting N distinct shards never serialize.  The shard
   count is rounded up to a power of two (mask, not modulo) and
   clamped so every shard keeps a useful capacity; the total capacity
   is distributed exactly (shard [i] gets [cap/n] entries plus one of
   the [cap mod n] remainders), so the sum of shard bounds equals the
   requested bound and "entries <= cap" holds globally.

   Single flight: each shard carries an in-flight table of keys being
   computed right now.  The first requester of a missing key becomes
   the owner and computes outside the lock; the K-1 others find the
   flight record and wait on the shard condition instead of burning
   K-1 domains on identical work.  An owner that raises removes the
   flight and broadcasts, so waiters wake, observe no result, and
   retry — one of them becomes the new owner.  Waiters compare the
   flight record they joined by physical identity, so a completed
   flight whose entry was evicted and re-missed can never strand a
   stale waiter on a newer flight's result.

   Statistics are [Atomic] accumulators, not lock-guarded fields: hot
   paths pay one fetch-and-add, and {!stats} sums a monotone-but-not-
   simultaneous snapshot (documented in DESIGN.md section 15). *)

module Sync = Facile_core.Sync

type ('k, 'v) flight = {
  mutable result : 'v option;
      (* lint: unguarded — written by the owner and read by waiters
         under the shard mutex *)
}

type ('k, 'v) shard = {
  mu : Mutex.t;
  resolved : Condition.t;
  lru : ('k, 'v) Lru.t;
  inflight : ('k, ('k, 'v) flight) Hashtbl.t;
}

type ('k, 'v) t = {
  mask : int;
  shards : ('k, 'v) shard array;
  hash : 'k -> int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  coalesced : int Atomic.t;
}

type stats = {
  hits : int;
  misses : int;
  coalesced : int;
  evictions : int;
  entries : int;
  capacity : int;
  shards : int;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Shards below ~16 entries thrash their LRU instead of caching, so a
   tiny total capacity caps the shard count (down to 1, where the
   structure degenerates to exactly the old single-lock LRU). *)
let min_shard_cap = 16

let clamp_shards ~cap n =
  let n = next_pow2 (max 1 n) in
  let rec fit n = if n > 1 && cap / n < min_shard_cap then fit (n / 2) else n in
  fit n

let create ~shards ~cap ~hash () =
  if cap < 1 then
    invalid_arg (Printf.sprintf "Shard_cache.create: cap = %d" cap);
  if shards < 1 then
    invalid_arg (Printf.sprintf "Shard_cache.create: shards = %d" shards);
  let n = clamp_shards ~cap shards in
  let shard_cap i = (cap / n) + (if i < cap mod n then 1 else 0) in
  { mask = n - 1;
    shards =
      Array.init n (fun i ->
          { mu = Mutex.create ();
            resolved = Condition.create ();
            lru = Lru.create (shard_cap i);
            inflight = Hashtbl.create 8 });
    hash;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    coalesced = Atomic.make 0 }

let shard_count (t : ('k, 'v) t) = Array.length t.shards

(* Scramble the low bits with the high ones before masking: form_sig
   hashes are well mixed, but the cache is generic and a caller hash
   with low-bit structure must not collapse every key onto shard 0. *)
let shard_of (t : ('k, 'v) t) k =
  let h = t.hash k in
  let h = h lxor (h lsr 16) in
  t.shards.(h land t.mask)

let find t k =
  let s = shard_of t k in
  Sync.with_lock s.mu (fun () -> Lru.find s.lru k)

(* Insert without touching hit/miss accounting: the warm-restart seed
   path ({!Engine.memo_seed}) must leave stats reflecting only this
   process's traffic. *)
let add t k v =
  let s = shard_of t k in
  Sync.with_lock s.mu (fun () -> Lru.add s.lru k v)

let rec find_or_compute t k compute =
  let s = shard_of t k in
  let action =
    Sync.with_lock s.mu (fun () ->
        match Lru.find s.lru k with
        | Some v -> `Hit v
        | None ->
          (match Hashtbl.find_opt s.inflight k with
           | Some f -> `Join f
           | None ->
             let f = { result = None } in
             Hashtbl.add s.inflight k f;
             `Own f))
  in
  match action with
  | `Hit v ->
    Atomic.incr t.hits;
    v
  | `Own f ->
    (match compute () with
     | v ->
       Sync.with_lock s.mu (fun () ->
           f.result <- Some v;
           Lru.add s.lru k v;
           Hashtbl.remove s.inflight k;
           Condition.broadcast s.resolved);
       Atomic.incr t.misses;
       v
     | exception e ->
       let bt = Printexc.get_raw_backtrace () in
       Sync.with_lock s.mu (fun () ->
           Hashtbl.remove s.inflight k;
           Condition.broadcast s.resolved);
       Printexc.raise_with_backtrace e bt)
  | `Join f ->
    Atomic.incr t.coalesced;
    let r =
      Sync.with_lock_cond s.mu s.resolved
        ~until:(fun () ->
          Option.is_some f.result
          ||
          (* flight gone (owner failed) or replaced by a newer one for
             the same key: either way this flight is over *)
          (match Hashtbl.find_opt s.inflight k with
           | Some g -> not (g == f)
           | None -> true))
        (fun () -> f.result)
    in
    (match r with
     | Some v ->
       Atomic.incr t.hits;
       v
     | None ->
       (* the owner raised; race for ownership of the retry *)
       find_or_compute t k compute)

let stats (t : ('k, 'v) t) =
  let evictions = ref 0 and entries = ref 0 and capacity = ref 0 in
  Array.iter
    (fun s ->
      Sync.with_lock s.mu (fun () ->
          evictions := !evictions + Lru.evictions s.lru;
          entries := !entries + Lru.length s.lru;
          capacity := !capacity + Lru.capacity s.lru))
    t.shards;
  { hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    coalesced = Atomic.get t.coalesced;
    evictions = !evictions;
    entries = !entries;
    capacity = !capacity;
    shards = Array.length t.shards }

(* Deterministic merge: shard 0's entries (most-recent first), then
   shard 1's, and so on.  Two caches that saw the same insertions with
   the same shard layout list identically; across different shard
   counts the *set* of entries for the same traffic is identical (and
   predictions are pure), which is what warm-restart bit-identity
   needs. *)
let to_list (t : ('k, 'v) t) =
  Array.to_list t.shards
  |> List.concat_map (fun s -> Sync.with_lock s.mu (fun () -> Lru.to_list s.lru))
