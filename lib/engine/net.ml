(* TCP listener for the NDJSON service: accept loop -> one thread +
   one {!Session} per connection, all against a shared {!Serve.t}.

   Concurrency shape: the accept loop runs on the calling thread with
   a 0.1s select timeout so it notices the shutdown flag promptly.
   Each accepted connection gets a plain [Thread] (the heavy work is
   already on the engine's domains; connection threads mostly block on
   socket I/O, which releases the runtime lock).  The connection
   registry is a mutex-guarded table used for the graceful drain:
   stop accepting, [Session.stop] every live session so queued work is
   answered, shut each socket's read side down to unblock its reader,
   and join. *)

module Json = Facile_obs.Json
module Obs = Facile_obs.Obs
module Sync = Facile_core.Sync

type config = {
  host : string;
  port : int;
  max_conns : int;
  conn_rate : float;
}

let default_config =
  { host = "127.0.0.1"; port = 0; max_conns = 64; conn_rate = 0. }

let parse_endpoint s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "expected HOST:PORT, got %S" s)
  | Some i ->
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
     | Some p when p >= 0 && p <= 65535 ->
       Ok ((if host = "" then "127.0.0.1" else host), p)
     | _ -> Error (Printf.sprintf "invalid port %S in %S" port s))

(* Reset-style errno sets: on the read side they mean "the stream is
   over", on the write side "the peer is gone" — neither is a bug. *)
let eof_errno = function
  | Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF | Unix.ENOTCONN
  | Unix.EINVAL | Unix.ESHUTDOWN ->
    true
  | _ -> false

let fd_transport fd =
  let rec read buf off len =
    match Unix.read fd buf off len with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read buf off len
    | exception Unix.Unix_error (e, _, _) when eof_errno e -> 0
    | exception (End_of_file | Sys_error _) -> 0
  in
  let write s =
    let b = Bytes.unsafe_of_string s in
    let n = Bytes.length b in
    let rec go off =
      if off < n then
        match Unix.write fd b off (n - off) with
        | w -> go (off + w)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error (e, _, _) when eof_errno e ->
          raise Session.Peer_closed
        | exception Sys_error _ -> raise Session.Peer_closed
    in
    go 0
  in
  let close () =
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ | Sys_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ | Sys_error _ -> ()
  in
  { Session.read; write; close }

(* One refusal line for a connection over the limit, then close; the
   write is best-effort (the client may already be gone). *)
let refuse_conn t fd ~max_conns =
  Serve.conn_rejected t;
  Obs.incr "net.conns.rejected";
  let line =
    Json.to_string
      (Serve.with_proto
         (Json.Obj
            [ "id", Json.Null;
              "error",
              Json.Obj
                [ "kind", Json.Str "retry_after";
                  "msg",
                  Json.Str
                    (Printf.sprintf
                       "connection limit reached (max %d concurrent)"
                       max_conns);
                  "retry_after_ms", Json.Int 100 ] ]))
    ^ "\n"
  in
  let b = Bytes.unsafe_of_string line in
  (try ignore (Unix.write fd b 0 (Bytes.length b))
   with Unix.Unix_error _ | Sys_error _ -> ());
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ | Sys_error _ -> ()

type conn = {
  cfd : Unix.file_descr;
  session : Session.t;
  thread : Thread.t;
}

let resolve host port =
  match Unix.inet_addr_of_string host with
  | addr -> Unix.ADDR_INET (addr, port)
  | exception Failure _ ->
    (match Unix.gethostbyname host with
     | { Unix.h_addr_list = [||]; _ } ->
       failwith (Printf.sprintf "cannot resolve host %S" host)
     | h -> Unix.ADDR_INET (h.Unix.h_addr_list.(0), port)
     | exception Not_found ->
       failwith (Printf.sprintf "cannot resolve host %S" host))

let run ?(signals = true) ?(announce = fun ~host:_ ~port:_ -> ()) t cfg =
  if cfg.max_conns < 1 then
    invalid_arg (Printf.sprintf "Net.run: max_conns = %d" cfg.max_conns);
  if cfg.conn_rate < 0. || not (Float.is_finite cfg.conn_rate) then
    invalid_arg (Printf.sprintf "Net.run: conn_rate = %g" cfg.conn_rate);
  if cfg.port < 0 || cfg.port > 65535 then
    invalid_arg (Printf.sprintf "Net.run: port = %d" cfg.port);
  if signals then Serve.install_signal_handlers t;
  let addr = resolve cfg.host cfg.port in
  let lfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lfd Unix.SO_REUSEADDR true;
     Unix.bind lfd addr;
     Unix.listen lfd 128
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     failwith
       (Printf.sprintf "cannot listen on %s:%d: %s" cfg.host cfg.port
          (Unix.error_message e)));
  (match Unix.getsockname lfd with
   | Unix.ADDR_INET (a, p) ->
     announce ~host:(Unix.string_of_inet_addr a) ~port:p
   | Unix.ADDR_UNIX _ -> ());
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 64 in
  let cmu = Mutex.create () in
  let locked f = Sync.with_lock cmu f in
  let active = Atomic.make 0 in
  let next_id = ref 0 in
  let serve_conn id cfd =
    let tr = fd_transport cfd in
    let rate = if cfg.conn_rate > 0. then Some cfg.conn_rate else None in
    let session = Serve.session ?rate t tr in
    let thread =
      Thread.create
        (fun () ->
          Fun.protect
            ~finally:(fun () ->
              Serve.conn_closed t;
              Obs.decr "net.conns.active";
              ignore (Atomic.fetch_and_add active (-1));
              locked (fun () -> Hashtbl.remove conns id))
            (fun () -> Session.run session))
        ()
    in
    locked (fun () -> Hashtbl.replace conns id { cfd; session; thread })
  in
  let accept_loop () =
    while not (Serve.stopping t) do
      match Unix.select [ lfd ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ :: _, _, _ ->
        (match Unix.accept ~cloexec:true lfd with
         | cfd, _peer ->
           if Serve.stopping t then (
             try Unix.close cfd with Unix.Unix_error _ -> ())
           else if Atomic.get active >= cfg.max_conns then
             refuse_conn t cfd ~max_conns:cfg.max_conns
           else begin
             Serve.conn_opened t;
             Obs.incr "net.conns.accepted";
             Obs.incr "net.conns.active";
             Atomic.incr active;
             incr next_id;
             serve_conn !next_id cfd
           end
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | exception
             Unix.Unix_error
               ((Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
           ->
           ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ | Sys_error _ -> ());
      (* graceful drain: ask each session to stop (queued requests are
         still answered), unblock its reader by shutting the read side
         down, then join every connection thread *)
      let live = locked (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc)
                                     conns []) in
      List.iter
        (fun c ->
          Session.stop c.session;
          try Unix.shutdown c.cfd Unix.SHUTDOWN_RECEIVE
          with Unix.Unix_error _ | Sys_error _ -> ())
        live;
      List.iter (fun c -> try Thread.join c.thread with _ -> ()) live;
      Serve.print_final_stats t)
    accept_loop
