(* One protocol session over one byte-stream transport.

   Thread structure (mirrors the original stdio serve loop, now per
   connection):

     reader thread:  transport.read -> Framing -> admission/shed ->
                     bounded queue (or inline shed/rate responses)
     caller thread:  queue -> callbacks -> transport.write
     watcher thread: turns stop flags into a queue close so the
                     caller-side drain wakes up

   The reader never blocks on the queue (push is non-blocking; full =
   shed inline), the writer is serialized by a per-session mutex, and
   a dead peer stops only this session. *)

module Sync = Facile_core.Sync

exception Peer_closed

type transport = {
  read : bytes -> int -> int -> int;
  write : string -> unit;
  close : unit -> unit;
}

type callbacks = {
  on_line : string -> string;
  on_oversized : int -> string;
  on_shed : string -> string;
  on_rate_limited : string -> string;
}

type sink = {
  on_bytes_in : int -> unit;
  on_bytes_out : int -> unit;
  on_epipe : unit -> unit;
}

type counters = {
  bytes_in : int;
  bytes_out : int;
  lines : int;
  shed : int;
  rate_limited : int;
  epipe : int;
}

type event = [ `Line of string | `Oversized of int ]

type t = {
  tr : transport;
  cb : callbacks;
  sink : sink option;
  should_stop : unit -> bool;
  on_peer_gone : unit -> unit;
  q : event Bqueue.t;
  framing : Framing.t;
  stop_flag : bool Atomic.t;
  peer_gone : bool Atomic.t;
  omu : Mutex.t;  (* serializes transport.write *)
  (* token bucket; touched only by the reader thread *)
  rate : float;
  burst : float;
  mutable tokens : float;
  mutable last_refill_ns : int;
  (* counters: atomic accumulators bumped from reader and caller
     threads; each is exact and monotone, but [counters] is not a
     simultaneous snapshot across them *)
  c_bytes_in : int Atomic.t;
  c_bytes_out : int Atomic.t;
  c_lines : int Atomic.t;
  c_shed : int Atomic.t;
  c_rate_limited : int Atomic.t;
  c_epipe : int Atomic.t;
}

let create ?(queue_cap = 128) ?(rate = 0.) ?burst
    ?(should_stop = fun () -> false) ?(on_peer_gone = fun () -> ()) ?sink
    ~max_line_bytes cb tr =
  if queue_cap < 1 then
    invalid_arg (Printf.sprintf "Session.create: queue_cap = %d" queue_cap);
  if rate < 0. || not (Float.is_finite rate) then
    invalid_arg (Printf.sprintf "Session.create: rate = %g" rate);
  let burst = Option.value burst ~default:(Float.max 1. rate) in
  if rate > 0. && (burst < 1. || not (Float.is_finite burst)) then
    invalid_arg (Printf.sprintf "Session.create: burst = %g" burst);
  { tr;
    cb;
    sink;
    should_stop;
    on_peer_gone;
    q = Bqueue.create queue_cap;
    framing = Framing.create ~max_line_bytes;
    stop_flag = Atomic.make false;
    peer_gone = Atomic.make false;
    omu = Mutex.create ();
    rate;
    burst;
    tokens = burst;
    last_refill_ns = Facile_obs.Clock.now_ns ();
    c_bytes_in = Atomic.make 0;
    c_bytes_out = Atomic.make 0;
    c_lines = Atomic.make 0;
    c_shed = Atomic.make 0;
    c_rate_limited = Atomic.make 0;
    c_epipe = Atomic.make 0 }

let stop t =
  Atomic.set t.stop_flag true;
  Bqueue.close t.q

let stopped t = Atomic.get t.stop_flag || Atomic.get t.peer_gone

let counters t =
  { bytes_in = Atomic.get t.c_bytes_in;
    bytes_out = Atomic.get t.c_bytes_out;
    lines = Atomic.get t.c_lines;
    shed = Atomic.get t.c_shed;
    rate_limited = Atomic.get t.c_rate_limited;
    epipe = Atomic.get t.c_epipe }

(* Refill-then-take token bucket; only the reader thread calls this,
   so the float state needs no lock. *)
let admit t =
  if t.rate <= 0. then true
  else begin
    let now = Facile_obs.Clock.now_ns () in
    let dt_s = float_of_int (now - t.last_refill_ns) /. 1e9 in
    t.last_refill_ns <- now;
    t.tokens <- Float.min t.burst (t.tokens +. (dt_s *. t.rate));
    if t.tokens >= 1. then begin
      t.tokens <- t.tokens -. 1.;
      true
    end
    else false
  end

(* Serialized response write.  A failed write means the peer is gone:
   count it, run the policy hook, and stop this session — queued work
   is dropped on the floor because there is nobody left to read it. *)
let write_resp t s =
  Sync.with_lock t.omu @@ fun () ->
  if not (Atomic.get t.peer_gone) then begin
    match t.tr.write (s ^ "\n") with
    | () ->
      let n = String.length s + 1 in
      ignore (Atomic.fetch_and_add t.c_bytes_out n);
      (match t.sink with Some k -> k.on_bytes_out n | None -> ())
    | exception (Peer_closed | Sys_error _ | Unix.Unix_error _) ->
      Atomic.set t.peer_gone true;
      Atomic.incr t.c_epipe;
      (match t.sink with Some k -> k.on_epipe () | None -> ());
      (try t.on_peer_gone () with _ -> ());
      stop t
  end

let dispatch t = function
  | Framing.Line l ->
    if String.trim l <> "" then begin
      Atomic.incr t.c_lines;
      if admit t then begin
        if not (Bqueue.push t.q (`Line l)) && not (Bqueue.is_closed t.q)
        then begin
          (* shed inline from the reader so the queue stays bounded *)
          Atomic.incr t.c_shed;
          write_resp t (t.cb.on_shed l)
        end
      end
      else begin
        Atomic.incr t.c_rate_limited;
        write_resp t (t.cb.on_rate_limited l)
      end
    end
  | Framing.Oversized n ->
    if not (Bqueue.push t.q (`Oversized n)) && not (Bqueue.is_closed t.q)
    then write_resp t (t.cb.on_oversized n)

let run t =
  let eof = Atomic.make false in
  let reader () =
    let buf = Bytes.create 65536 in
    let rec loop () =
      if not (stopped t || t.should_stop ()) then begin
        match t.tr.read buf 0 (Bytes.length buf) with
        | 0 -> Atomic.set eof true
        | n ->
          ignore (Atomic.fetch_and_add t.c_bytes_in n);
          (match t.sink with Some k -> k.on_bytes_in n | None -> ());
          List.iter (dispatch t) (Framing.feed t.framing buf 0 n);
          loop ()
        | exception End_of_file -> Atomic.set eof true
        | exception Sys_error _ -> Atomic.set eof true
        | exception Unix.Unix_error _ -> Atomic.set eof true
      end
    in
    loop ();
    (* like input_line: trailing bytes with no '\n' are still a line *)
    if Atomic.get eof then
      Option.iter (dispatch t) (Framing.finish t.framing);
    Bqueue.close t.q
  in
  let reader_thread = Thread.create reader () in
  (* stop flags may be set from signal handlers or other sessions'
     threads; this watcher turns them into a queue close so the drain
     below wakes up *)
  let finished = Atomic.make false in
  let watcher =
    Thread.create
      (fun () ->
        while
          (not (Atomic.get finished))
          && (not (stopped t))
          && not (t.should_stop ())
        do
          Thread.delay 0.02
        done;
        Bqueue.close t.q)
      ()
  in
  let rec drain () =
    match Bqueue.pop t.q with
    | Some (`Line l) ->
      write_resp t (t.cb.on_line l);
      drain ()
    | Some (`Oversized n) ->
      write_resp t (t.cb.on_oversized n);
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set finished true;
  (try Thread.join watcher with _ -> ());
  (* the reader is joined only when it provably finished (end of
     stream); after a signal it may still be blocked in a read on an
     open stream — the transport owner is responsible for shutting
     the stream down if it wants the thread back *)
  if Atomic.get eof then (try Thread.join reader_thread with _ -> ());
  try t.tr.close () with _ -> ()
