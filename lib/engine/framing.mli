(** Incremental newline framing over chunked byte input.

    The network and stdio transports hand the session layer whatever
    the kernel gave them — partial lines, many lines per chunk, lines
    split at arbitrary byte boundaries.  [Framing.t] reassembles that
    stream into complete lines while holding at most [max_line_bytes]
    of buffered data: a line that grows past the cap is discarded
    byte-by-byte (never buffered) and surfaces as a single
    {!Oversized} event carrying its total length, so an adversarial
    client cannot make the server buffer an unbounded line. *)

type event =
  | Line of string
      (** A complete line; the terminating ['\n'] is stripped, nothing
          else (in particular ['\r'] is preserved, as with
          [input_line]). *)
  | Oversized of int
      (** A line longer than [max_line_bytes] was discarded; the
          payload is its total length in bytes (without the ['\n']). *)

type t

(** [create ~max_line_bytes] — fresh framing state.
    @raise Invalid_argument if [max_line_bytes < 1]. *)
val create : max_line_bytes:int -> t

(** The line-length cap this framer was created with. *)
val max_line_bytes : t -> int

(** Bytes currently buffered waiting for a ['\n'] (always
    [<= max_line_bytes]). *)
val buffered : t -> int

(** [feed t buf off len] consumes [len] bytes of [buf] starting at
    [off] and returns the events completed by them, in stream order.
    @raise Invalid_argument if [off]/[len] do not denote a valid
    range of [buf]. *)
val feed : t -> bytes -> int -> int -> event list

(** [feed_string t s] — {!feed} over a whole string. *)
val feed_string : t -> string -> event list

(** Flush the trailing unterminated line at end of stream: like
    [input_line], data after the last ['\n'] still counts as a final
    line (or a final {!Oversized} if it was over the cap).  Returns
    [None] when nothing is pending.  Resets the state either way. *)
val finish : t -> event option
