(* Bounded LRU map: a hashtable over an intrusive doubly-linked
   recency list.  [find] promotes to most-recent; [add] beyond the
   capacity evicts the least-recent entry and counts it.  All
   operations are O(1); the structure is not synchronized — callers
   (the engine memo cache) hold their own mutex. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v; (* lint: unguarded — caller holds the memo mutex *)
  mutable prev : ('k, 'v) node option; (* lint: unguarded — towards most-recent *)
  mutable next : ('k, 'v) node option; (* lint: unguarded — towards least-recent *)
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option; (* lint: unguarded — most-recent; caller-locked *)
  mutable tail : ('k, 'v) node option; (* lint: unguarded — least-recent; caller-locked *)
  mutable evictions : int; (* lint: unguarded — caller holds the memo mutex *)
}

let create cap =
  if cap < 1 then invalid_arg (Printf.sprintf "Lru.create: cap = %d" cap);
  { cap; tbl = Hashtbl.create (min cap 1024); head = None; tail = None;
    evictions = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let evictions t = t.evictions

let unlink t n =
  (match n.prev with
   | Some p -> p.next <- n.next
   | None -> t.head <- n.next);
  (match n.next with
   | Some s -> s.prev <- n.prev
   | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let is_head t n = match t.head with Some h -> h == n | None -> false

let promote t n =
  if not (is_head t n) then begin
    unlink t n;
    push_front t n
  end

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
    promote t n;
    Some n.value

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
    n.value <- v;
    promote t n
  | None ->
    if Hashtbl.length t.tbl >= t.cap then begin
      match t.tail with
      | None -> assert false (* cap >= 1 and the table is non-empty *)
      | Some lru ->
        unlink t lru;
        Hashtbl.remove t.tbl lru.key;
        t.evictions <- t.evictions + 1
    end;
    let n = { key = k; value = v; prev = None; next = None } in
    push_front t n;
    Hashtbl.replace t.tbl k n

let mem t k = Hashtbl.mem t.tbl k

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.key, n.value) :: acc) n.next
  in
  go [] t.head
