(** Flat-table equivalence analyzer (rule family [flt-]): exhaustively
    compares [Facile_db.Flat.describe] against [Facile_db.Db.describe]
    on every enumerated form for each given config, and errors on any
    descriptor divergence or ambiguous shape key.  See DESIGN.md
    section 11. *)

open Facile_uarch

val run : ?cfgs:Config.t list -> unit -> Finding.t list
