(* Persistent-store self-verification, the store- rule family.

   Two layers: pure codec identities (no I/O), then recovery drills
   against real temp-file segments.  The drills are positive
   controls: each one deliberately damages a store in the exact way
   the recovery logic claims to handle — flipped payload byte, torn
   tail, patched version, foreign fingerprint — and asserts the
   corresponding guard fires.  A recovery path that is never
   exercised is indistinguishable from one that does not work. *)

open Facile_core
module Err = Facile_x86.Err
module Codec = Facile_store.Codec
module Segment = Facile_store.Segment
module Store = Facile_store.Store
module Crc32 = Facile_store.Crc32
module Json = Facile_obs.Json

let error = Finding.error
let info = Finding.info

(* Synthetic records covering every arch, both notions, every fe-path
   and component code, empty and binary-heavy byte strings. *)
let specimens () =
  let arches = List.map (fun c -> c.Facile_uarch.Config.arch)
                 Facile_uarch.Config.all in
  let fe_paths =
    [ Model.FE_decoders; Model.FE_lsd; Model.FE_dsb; Model.FE_none ]
  in
  let all_bytes = String.init 256 Char.chr in
  List.mapi
    (fun i arch ->
      let pred =
        { Model.cycles = 0.25 +. (float_of_int i *. 1.5);
          bottlenecks =
            [ List.nth Model.all_components
                (i mod List.length Model.all_components) ];
          values =
            List.mapi
              (fun j c -> (c, float_of_int (i + j) /. 3.0))
              Model.all_components;
          fe_path = List.nth fe_paths (i mod List.length fe_paths) }
      in
      { Codec.arch;
        notion = (if i mod 2 = 0 then `Loop else `Unrolled);
        form_sig = (i * 0x9E3779B9) - 7;
        bytes =
          (match i mod 3 with
           | 0 -> ""
           | 1 -> "\x48\x01\xd8"
           | _ -> all_bytes);
        pred })
    arches

let record_equal a b =
  a.Codec.arch = b.Codec.arch
  && a.Codec.notion = b.Codec.notion
  && a.Codec.form_sig = b.Codec.form_sig
  && a.Codec.bytes = b.Codec.bytes
  && Codec.pred_equal a.Codec.pred b.Codec.pred

(* --- pure codec identities ----------------------------------------- *)

let check_crc_vector () =
  (* the standard CRC-32 known-answer test ("check" value) *)
  let got = Crc32.string "123456789" in
  if got = 0xCBF43926 then []
  else
    [ error "store-crc-vector" "crc32"
        (Printf.sprintf "crc32(\"123456789\") = %08x, expected cbf43926" got) ]

let check_roundtrip r =
  let where = Printf.sprintf "record/%s"
      (Facile_uarch.Config.by_arch r.Codec.arch).Facile_uarch.Config.abbrev in
  (match Codec.decode (Codec.encode r) with
   | Ok r' when record_equal r r' -> []
   | Ok _ -> [ error "store-roundtrip" where "decode∘encode changed the record" ]
   | Error m -> [ error "store-roundtrip" where ("decode failed: " ^ m) ])
  @
  match Result.bind (Json.parse (Json.to_string (Codec.to_json r)))
          Codec.of_json
  with
  | Ok r' when record_equal r r' -> []
  | Ok _ ->
    [ error "store-json-roundtrip" where
        "JSON export/import changed the record" ]
  | Error m ->
    [ error "store-json-roundtrip" where ("import failed: " ^ m) ]

let check_decode_strict r =
  (* trailing garbage after a structurally valid record must be
     rejected, or frame CRCs could hide content-level skew *)
  match Codec.decode (Codec.encode r ^ "\x00") with
  | Error _ -> []
  | Ok _ ->
    [ error "store-decode-strict" "record"
        "decoder accepted a record with trailing bytes" ]

(* --- temp-file recovery drills ------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let with_temp f =
  let path = Filename.temp_file "facile-store-check" ".seg" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* Build a clean store of the specimen records and hand its content to
   the drill. *)
let with_store recs f =
  with_temp (fun path ->
      match Store.open_rw path with
      | Error e ->
        [ error "store-drill" "open_rw" (Err.to_string e) ]
      | Ok (w, _) ->
        List.iter (Store.append w) recs;
        Store.close w;
        f path (read_file path))

let check_load_identity recs =
  with_store recs (fun path _content ->
      match Store.load path with
      | Error e -> [ error "store-load" path (Err.to_string e) ]
      | Ok r ->
        if not (Store.report_clean r) then
          [ error "store-load" path "fresh store does not scan clean" ]
        else if List.length r.Store.records <> List.length recs
                || not (List.for_all2 record_equal recs r.Store.records)
        then [ error "store-load" path "loaded records differ from appended" ]
        else [])

let check_quarantine recs =
  with_store recs (fun path content ->
      (* flip one payload bit of the second frame; its CRC must catch
         it, and every other record must survive *)
      let off = Segment.header_size in
      let len1 = Char.code content.[off] lor (Char.code content.[off + 1] lsl 8)
                 lor (Char.code content.[off + 2] lsl 16)
                 lor (Char.code content.[off + 3] lsl 24) in
      let frame2 = off + 8 + len1 in
      let target = frame2 + 8 in  (* first payload byte of frame 2 *)
      let b = Bytes.of_string content in
      Bytes.set b target (Char.chr (Char.code (Bytes.get b target) lxor 0x10));
      write_file path (Bytes.to_string b);
      match Store.load path with
      | Error e -> [ error "store-quarantine" path (Err.to_string e) ]
      | Ok r ->
        if r.Store.quarantined <> 1 then
          [ error "store-quarantine" path
              (Printf.sprintf
                 "flipped one payload bit: %d frames quarantined, expected 1"
                 r.Store.quarantined) ]
        else if List.length r.Store.records <> List.length recs - 1 then
          [ error "store-quarantine" path
              "quarantine did not preserve the other records" ]
        else if Store.report_clean r then
          [ error "store-quarantine" path
              "report counts corruption but claims to be clean" ]
        else [])

let check_torn_tail recs =
  with_store recs (fun path content ->
      (* chop 3 bytes off the final frame: a torn tail, then reopen
         must truncate it away and scan clean *)
      write_file path (String.sub content 0 (String.length content - 3));
      let torn =
        match Store.load path with
        | Error e -> [ error "store-torn-tail" path (Err.to_string e) ]
        | Ok r ->
          if r.Store.torn_tail <= 0 then
            [ error "store-torn-tail" path
                "truncated file does not report a torn tail" ]
          else if List.length r.Store.records <> List.length recs - 1 then
            [ error "store-torn-tail" path
                "torn tail cost more than the final record" ]
          else []
      in
      let recovered =
        match Store.open_rw path with
        | Error e -> [ error "store-recovery" path (Err.to_string e) ]
        | Ok (w, r) ->
          Store.close w;
          if not (Store.report_clean r) then
            [ error "store-recovery" path
                "reopen did not recover the torn store" ]
          else
            (match Store.load path with
             | Ok r' when Store.report_clean r'
                          && List.length r'.Store.records
                             = List.length recs - 1 -> []
             | Ok _ ->
               [ error "store-recovery" path
                   "store does not scan clean after recovery" ]
             | Error e -> [ error "store-recovery" path (Err.to_string e) ])
      in
      torn @ recovered)

let patch_u32 b off v =
  for i = 0 to 3 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let check_version_skew recs =
  with_store recs (fun path content ->
      let b = Bytes.of_string content in
      patch_u32 b 8 (Segment.version + 1);
      let fixed = Bytes.to_string b in
      patch_u32 b 20 (Crc32.sub fixed 0 20);
      write_file path (Bytes.to_string b);
      match Store.load path with
      | Error e when e.Err.kind = Err.Store_skew -> []
      | Error e ->
        [ error "store-version-skew" path
            ("wrong kind for version skew: " ^ Err.kind_name e.Err.kind) ]
      | Ok _ ->
        [ error "store-version-skew" path
            "a future-version store was served instead of refused" ])

let check_fingerprint_skew () =
  with_temp (fun path ->
      let alien = Int64.lognot (Store.fingerprint ()) in
      write_file path (Segment.encode_header ~fingerprint:alien);
      (match Store.load path with
       | Error e when e.Err.kind = Err.Store_skew -> []
       | Error e ->
         [ error "store-fingerprint-skew" path
             ("wrong kind for fingerprint skew: " ^ Err.kind_name e.Err.kind) ]
       | Ok _ ->
         [ error "store-fingerprint-skew" path
             "a stale-table store was served instead of refused" ])
      @
      (* open_rw must refuse too: appending current-table records to a
         stale-table store would bless its stale predictions *)
      match Store.open_rw path with
      | Error e when e.Err.kind = Err.Store_skew -> []
      | Error e ->
        [ error "store-fingerprint-skew" (path ^ "/rw")
            ("wrong kind for fingerprint skew: " ^ Err.kind_name e.Err.kind) ]
      | Ok (w, _) ->
        Store.close w;
        [ error "store-fingerprint-skew" (path ^ "/rw")
            "open_rw accepted a stale-table store" ])

let check_corrupt_header () =
  with_temp (fun path ->
      let hdr = Segment.encode_header ~fingerprint:(Store.fingerprint ()) in
      let b = Bytes.of_string hdr in
      Bytes.set b 2 'X';  (* damage the magic *)
      write_file path (Bytes.to_string b);
      match Store.load path with
      | Error e when e.Err.kind = Err.Check_failed -> []
      | Error e ->
        [ error "store-header" path
            ("wrong kind for corrupt header: " ^ Err.kind_name e.Err.kind) ]
      | Ok _ ->
        [ error "store-header" path "corrupt header was not refused" ])

let run () =
  let recs = specimens () in
  let findings =
    check_crc_vector ()
    @ List.concat_map check_roundtrip recs
    @ check_decode_strict (List.hd recs)
    @ check_load_identity recs
    @ check_quarantine recs
    @ check_torn_tail recs
    @ check_version_skew recs
    @ check_fingerprint_skew ()
    @ check_corrupt_header ()
  in
  if findings = [] then
    [ info "store-ok" "store"
        (Printf.sprintf
           "%d records round-tripped; quarantine/torn-tail/skew drills passed \
            (fingerprint %016Lx)"
           (List.length recs) (Store.fingerprint ())) ]
  else findings
