(** Instruction-table cross-check (rule family [tbl-*]): every form
    enumerated by {!Forms} must have a coherent DB descriptor on every
    microarchitecture, and the ISA feature gate is re-derived and
    compared against what the DB accepts. *)

open Facile_x86
open Facile_uarch

(** Flags mnemonics whose form list is empty ([tbl-missing-form]).
    Exposed with an explicit list for mutation self-tests. *)
val coverage : (Inst.mnemonic * Inst.t list) list -> Finding.t list

(** Descriptor sanity for one instruction (µop counts, port sets,
    latency ranges, decoder arithmetic). *)
val check_desc : Config.t -> Inst.t -> Facile_db.Db.t -> Finding.t list

(** Gate agreement + descriptor sanity for one form on one arch.
    [?requires] substitutes the independent ISA-gate re-derivation
    (mutation self-tests corrupt it to force a disagreement). *)
val check_form :
  ?requires:(Inst.t -> bool) -> Config.t -> Inst.t -> Finding.t list

(** All enumerated forms on one arch. *)
val run_cfg :
  ?by_mnemonic:(Inst.mnemonic * Inst.t list) list ->
  Config.t ->
  Finding.t list

(** The full sweep (default: all nine shipped configs). *)
val run : ?cfgs:Config.t list -> unit -> Finding.t list
