(** Persistent-store self-verification (rule family [store-*]):
    CRC known-answer vector, binary and JSON decode∘encode identity
    over synthetic records covering every arch/notion/fe-path/
    component code, and positive-control recovery drills against real
    temp-file segments — corrupt-frame quarantine, torn-tail
    truncation on reopen, version skew, and fingerprint skew must all
    be detected (a passing rejection test is the control that the
    corresponding guard actually fires). *)

val run : unit -> Finding.t list
