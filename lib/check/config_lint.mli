(** Config linter (rule family [cfg-*]): structural invariants of the
    microarchitecture tables — port maps, width/buffer ordering,
    feature-flag consistency, uniqueness and generation monotonicity.
    See DESIGN.md section 10 for the rule catalog. *)

open Facile_uarch

(** Single-config rules, exposed for mutation self-tests. *)
val lint_one : Config.t -> Finding.t list

(** Cross-config uniqueness of abbrev/name/arch. *)
val lint_unique : Config.t list -> Finding.t list

(** The shipped catalog holds exactly nine generations. *)
val lint_catalog : unit -> Finding.t list

(** Monotone capacity/feature growth across the generation sequence. *)
val lint_generation : Config.t list -> Finding.t list

(** All config rules over [cfgs] (default: the nine shipped configs). *)
val run : ?cfgs:Config.t list -> unit -> Finding.t list
