(* Codec sweep, the codec- rule family: exhaustively encode every
   enumerated form and verify the decoder reconstructs it, the declared
   layout metadata matches the bytes, and the prefix/LCP assumptions
   the predecoder component builds on actually hold byte-for-byte.

   [?encode] lets mutation self-tests inject a corrupted encoder
   (wrong length, flipped LCP flag) and assert the matching rule
   fires; production runs use [Encode.encode]. *)

open Facile_x86

let error = Finding.error
let where inst = Inst.to_string inst

let is_legacy_prefix b = b = 0x66 || b = 0xF2 || b = 0xF3
let is_rex b = b land 0xF0 = 0x40

(* --- per-instruction checks ---------------------------------------- *)

let check_length inst (e : Encode.encoded) =
  let n = String.length e.bytes in
  (if n >= 1 && n <= 15 then []
   else
     [ error "codec-max-len" (where inst)
         (Printf.sprintf "encoding is %d bytes, outside [1, 15]" n) ])
  @
  if e.opcode_off >= 0 && e.opcode_off < n then []
  else
    [ error "codec-length" (where inst)
        (Printf.sprintf "opcode_off %d outside the %d encoded bytes"
           e.opcode_off n) ]

(* Everything before the nominal opcode must be a legacy prefix or REX,
   and REX (if present) must be the last byte before the opcode — the
   predecoder's length/LCP scan assumes exactly this layout. *)
let check_prefixes inst (e : Encode.encoded) =
  let stop = min e.opcode_off (String.length e.bytes) in
  let bad = ref [] in
  for i = 0 to stop - 1 do
    let b = Char.code e.bytes.[i] in
    if is_rex b then begin
      if i <> stop - 1 then
        bad :=
          error "codec-prefix-layout" (where inst)
            (Printf.sprintf "REX byte %02x at %d is not last before opcode" b
               i)
          :: !bad
    end
    else if not (is_legacy_prefix b) then
      bad :=
        error "codec-prefix-layout" (where inst)
          (Printf.sprintf "byte %02x at %d is not a legacy prefix" b i)
        :: !bad
  done;
  List.rev !bad

(* The LCP flag must agree with the bytes: it may only be set when a
   66H prefix precedes the opcode and the instruction actually carries
   an immediate on a 16-bit operand (the length-changing case). *)
let check_lcp inst (e : Encode.encoded) =
  let has_66 =
    let stop = min e.opcode_off (String.length e.bytes) in
    let rec go i = i < stop && (Char.code e.bytes.[i] = 0x66 || go (i + 1)) in
    go 0
  in
  let has_imm =
    List.exists (function Operand.Imm _ -> true | _ -> false) inst.Inst.ops
  in
  let has_w16 =
    List.exists
      (function
        | Operand.Reg (Register.Gpr (Register.W16, _)) -> true
        | Operand.Mem m -> m.Operand.width = 2
        | _ -> false)
      inst.Inst.ops
  in
  if e.has_lcp && not (has_66 && has_imm && has_w16) then
    [ error "codec-lcp-meta" (where inst)
        "has_lcp set without 66H prefix + immediate + 16-bit operand" ]
  else []

(* Positive control for the LCP flag: these canonical length-changing
   encodings must report [has_lcp]; an encoder that never sets the flag
   silently disables the paper's 3-cycle LCP stall (section 4.3). *)
let lcp_controls =
  let open Inst in
  let ax = Operand.Reg (Register.Gpr (Register.W16, Register.RAX)) in
  [ make ADD [ ax; Operand.imm 0x1234 ];
    make MOV [ ax; Operand.imm 0x1234 ];
    make CMP [ ax; Operand.imm 0x1234 ] ]

let check_lcp_controls encode =
  List.concat_map
    (fun inst ->
      match encode inst with
      | (e : Encode.encoded) when e.has_lcp -> []
      | _ ->
        [ error "codec-lcp-meta" (where inst)
            "known length-changing encoding does not report has_lcp" ]
      | exception Encode.Unencodable msg ->
        [ error "codec-encode" (where inst) msg ])
    lcp_controls

let check_roundtrip inst (e : Encode.encoded) =
  match Decode.decode_one e.bytes ~pos:0 with
  | inst', len ->
    (if Inst.equal inst inst' then []
     else
       [ error "codec-roundtrip" (where inst)
           (Printf.sprintf "decodes as %s" (Inst.to_string inst')) ])
    @
    if len = String.length e.bytes then []
    else
      [ error "codec-length" (where inst)
          (Printf.sprintf "declared %d bytes but decoder consumed %d"
             (String.length e.bytes) len) ]
  | exception Decode.Decode_error (msg, off) ->
    [ error "codec-roundtrip" (where inst)
        (Printf.sprintf "decode failed at %d: %s" off msg) ]

let check_one ?(encode = Encode.encode) inst =
  match encode inst with
  | e ->
    check_length inst e @ check_prefixes inst e @ check_lcp inst e
    @ check_roundtrip inst e
  | exception Encode.Unencodable msg ->
    [ error "codec-encode" (where inst) msg ]

(* --- block-level layout agreement ---------------------------------- *)

let rec chunks n = function
  | [] -> []
  | l ->
    let rec take k = function
      | x :: tl when k > 0 ->
        let a, b = take (k - 1) tl in
        (x :: a, b)
      | rest -> ([], rest)
    in
    let a, b = take n l in
    a :: chunks n b

let layouts_agree (a : Encode.layout) (b : Encode.layout) =
  Inst.equal a.inst b.inst && a.off = b.off && a.len = b.len
  && a.nominal_opcode_off = b.nominal_opcode_off
  && a.lcp = b.lcp

let check_block insts =
  let bytes, enc = Encode.encode_block insts in
  match Decode.decode_block bytes with
  | dec ->
    if List.length enc = List.length dec && List.for_all2 layouts_agree enc dec
    then []
    else
      [ error "codec-block-layout"
          (Printf.sprintf "block[%d insts]" (List.length insts))
          "encode_block and decode_block layouts disagree" ]
  | exception Decode.Decode_error (msg, off) ->
    [ error "codec-block-layout"
        (Printf.sprintf "block[%d insts]" (List.length insts))
        (Printf.sprintf "decode failed at %d: %s" off msg) ]

(* --- opcode-table liveness ----------------------------------------- *)

(* Every SSE/VEX table entry must be reachable by the decoder: the
   first entry matching its key must be the entry itself, or the row is
   dead (shadowed by an earlier row with the same key).  MOVD/MOVQ
   deliberately share 0x6E/0x7E and are distinguished by REX.W, so the
   MOVQ rows for those opcodes are exempt. *)
let shared_movd_movq (e : Sse_table.entry) =
  e.Sse_table.mnem = Inst.MOVQ && (e.Sse_table.op = 0x6E || e.Sse_table.op = 0x7E)

(* Opcode-group rows (shift-by-immediate) share one opcode and are told
   apart by the ModRM /digit, so liveness for them is keyed on the
   digit as well. *)
let same_group_digit (a : Sse_table.entry) (b : Sse_table.entry) =
  match a.Sse_table.kind, b.Sse_table.kind with
  | Sse_table.Grp_imm8 da, Sse_table.Grp_imm8 db -> da = db
  | Sse_table.Grp_imm8 _, _ | _, Sse_table.Grp_imm8 _ -> false
  | _ -> true

let check_dead_entries () =
  let sse =
    List.concat_map
      (fun (e : Sse_table.entry) ->
        let first =
          List.find_opt
            (fun (e' : Sse_table.entry) ->
              e'.pp = e.pp && e'.map = e.map && e'.op = e.op
              && same_group_digit e' e)
            Sse_table.entries
        in
        match Sse_table.find_by_opcode e.pp e.map e.op with
        | Some hit when hit == e -> []
        | _ when shared_movd_movq e -> []
        | _ when (match first with Some f -> f == e | None -> false) -> []
        | _ ->
          [ error "codec-dead-entry"
              (Printf.sprintf "sse:%s/%02x" (Inst.mnemonic_name e.mnem) e.op)
              "table row shadowed by an earlier row with the same key" ])
      Sse_table.entries
  in
  let vex =
    List.concat_map
      (fun (e : Sse_table.ventry) ->
        let w = match e.vw with Some w -> w | None -> false in
        match Sse_table.vfind_by_opcode ~pp:e.vpp ~map:e.vmap ~op:e.vop ~w with
        | Some hit when hit == e -> []
        | _ ->
          [ error "codec-dead-entry"
              (Printf.sprintf "vex:%s/%02x" (Inst.mnemonic_name e.vmnem)
                 e.vop)
              "VEX table row unreachable for its own key" ])
      Sse_table.ventries
  in
  sse @ vex

let run ?encode ?(forms = Forms.all) () =
  List.concat_map (fun i -> check_one ?encode i) forms
  @ check_lcp_controls (Option.value encode ~default:Encode.encode)
  @ List.concat_map check_block (chunks 8 forms)
  @ check_dead_entries ()
  @ [ Finding.info "codec-coverage" "forms"
        (Printf.sprintf "%d forms encoded and round-tripped"
           (List.length forms)) ]
