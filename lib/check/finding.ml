(* One structured result of a static-analysis rule.  Rule ids are
   stable wire/CI contract (DESIGN.md section 10 is the catalog);
   severity decides the exit code of `facile check`. *)

type severity = Error | Warn | Info

type t = {
  severity : severity;
  rule : string;   (* stable rule id, e.g. "cfg-ports-subset" *)
  where : string;  (* location, e.g. "SKL/pm.alu" or "HSW:add rax, rbx" *)
  msg : string;
}

let v severity rule where msg = { severity; rule; where; msg }
let error rule where msg = v Error rule where msg
let warn rule where msg = v Warn rule where msg
let info rule where msg = v Info rule where msg

let severity_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"

(* Error < Warn < Info so sorted output leads with what matters. *)
let severity_rank = function Error -> 0 | Warn -> 1 | Info -> 2

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 ->
    (match String.compare a.rule b.rule with
     | 0 -> String.compare a.where b.where
     | c -> c)
  | c -> c

let errors fs = List.filter (fun f -> f.severity = Error) fs
let count sev fs = List.length (List.filter (fun f -> f.severity = sev) fs)

let to_json (f : t) : Facile_obs.Json.t =
  let open Facile_obs in
  Json.Obj
    [ "severity", Json.Str (severity_name f.severity);
      "rule", Json.Str f.rule;
      "where", Json.Str f.where;
      "msg", Json.Str f.msg ]

let to_string f =
  Printf.sprintf "%-5s %-18s %-28s %s" (severity_name f.severity) f.rule
    f.where f.msg
