(** Codec sweep (rule family [codec-*]): encode/decode identity for
    every enumerated form, layout-metadata agreement, byte-level
    prefix/LCP validation, and opcode-table liveness. *)

open Facile_x86

(** All per-instruction codec rules for one form. [?encode] substitutes
    a corrupted encoder in mutation self-tests. *)
val check_one : ?encode:(Inst.t -> Encode.encoded) -> Inst.t -> Finding.t list

(** [encode_block] / [decode_block] layout agreement for one block. *)
val check_block : Inst.t list -> Finding.t list

(** Shadowed/unreachable SSE and VEX opcode-table rows. *)
val check_dead_entries : unit -> Finding.t list

(** The full sweep over [forms] (default: {!Forms.all}). *)
val run :
  ?encode:(Inst.t -> Encode.encoded) ->
  ?forms:Inst.t list ->
  unit ->
  Finding.t list
