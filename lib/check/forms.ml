(* The form enumeration moved to [Facile_db.Forms] so the flat table
   compiler in [lib/db] can use it as its index space; this alias keeps
   the historical [Facile_check.Forms] path working. *)
include Facile_db.Forms
