(** Structured findings emitted by the [facile check] analyzers.

    Every finding carries a stable rule id (catalogued in DESIGN.md
    section 10), a location string, and a message. [Error]-severity
    findings fail the build / make the CLI exit nonzero; [Warn] flags
    suspicious-but-tolerated table states; [Info] records coverage
    statistics so a silent no-op sweep is visible. *)

type severity = Error | Warn | Info

type t = {
  severity : severity;
  rule : string;
  where : string;
  msg : string;
}

val v : severity -> string -> string -> string -> t
val error : string -> string -> string -> t
val warn : string -> string -> string -> t
val info : string -> string -> string -> t

val severity_name : severity -> string

(** Orders [Error] first, then by rule id and location. *)
val compare : t -> t -> int

val errors : t list -> t list
val count : severity -> t list -> int
val to_json : t -> Facile_obs.Json.t

(** One fixed-width text line (severity, rule, location, message). *)
val to_string : t -> string
