(** Aggregator for the [facile check] static-analysis pass: runs the
    config, table, codec, model, flat, and store analyzer families and folds
    the findings into a single report. *)

open Facile_uarch

type report = {
  findings : Finding.t list;  (** sorted: errors first *)
  n_error : int;
  n_warn : int;
  n_info : int;
}

(** Names of the analyzer families, in run order:
    ["config"; "tables"; "codec"; "model"; "flat"; "store"]. *)
val analyzer_names : string list

(** [run_all ()] runs every family over all nine configs. [cfgs]
    restricts the arch set ("codec" and "store" are arch-independent and always
    run in full); [families] restricts the analyzer set.
    @raise Invalid_argument on a family name outside {!analyzer_names}
      (the message lists the valid names). *)
val run_all :
  ?cfgs:Config.t list -> ?families:string list -> unit -> report

(** No error-severity findings. *)
val ok : report -> bool

(** One-line count summary, e.g. ["0 errors, 0 warnings, 6 info"]. *)
val summary : report -> string

val report_to_json : report -> Facile_obs.Json.t
