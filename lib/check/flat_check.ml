(* Flat-table equivalence checks, the flt- rule family: the flattened
   form-indexed tables of [Flat] must serve exactly what [Db.describe]
   computes, on every enumerated form x every arch.  This is the static
   half of the equivalence obligation of DESIGN.md section 11 (the
   dynamic half is the differential qcheck over Genblock corpora in
   test/test_db.ml). *)

open Facile_x86
open Facile_uarch
open Facile_db

let where cfg tag = Printf.sprintf "%s:%s" cfg.Config.abbrev tag

(* Both paths either agree on the descriptor or agree on rejection. *)
let check_form cfg id =
  let f = Flat.form id in
  let ref_d = try Ok (Db.describe cfg f) with Db.Unsupported m -> Error m in
  let flat_d = try Ok (Flat.describe cfg f) with Db.Unsupported m -> Error m in
  match ref_d, flat_d with
  | Ok a, Ok b when a = b -> []
  | Error _, Error _ -> []
  | Ok _, Ok _ ->
    [ Finding.error "flt-mismatch"
        (where cfg (Inst.to_string f))
        (Printf.sprintf "form %d: flat descriptor differs from Db.describe"
           id) ]
  | Ok _, Error m ->
    [ Finding.error "flt-mismatch"
        (where cfg (Inst.to_string f))
        (Printf.sprintf "form %d: flat rejects (%s) what Db supports" id m) ]
  | Error m, Ok _ ->
    [ Finding.error "flt-mismatch"
        (where cfg (Inst.to_string f))
        (Printf.sprintf "form %d: flat serves what Db rejects (%s)" id m) ]

let check_cfg cfg =
  let t = Flat.table cfg in
  let ambiguous =
    List.map
      (fun (a, b) ->
        Finding.error "flt-ambiguous" (where cfg "table")
          (Printf.sprintf
             "forms %d and %d share a shape key but differ in descriptor" a b))
      t.Flat.ambiguous
  in
  let hits = ref 0 and fallbacks = ref 0 in
  let mismatches =
    List.concat_map
      (fun id ->
        (match Flat.id_of cfg (Flat.form id) with
         | -1 -> incr fallbacks
         | _ -> incr hits);
        check_form cfg id)
      (List.init Flat.n_forms (fun i -> i))
  in
  ambiguous @ mismatches
  @ [ Finding.info "flt-coverage" (where cfg "table")
        (Printf.sprintf "%d forms: %d table-served, %d fallback" Flat.n_forms
           !hits !fallbacks) ]

let run ?(cfgs = Config.all) () = List.concat_map check_cfg cfgs
