(** Model-invariant checks (rule family [mdl-*]) over a seeded
    Genblock corpus: max-combination correctness, finiteness of
    component bounds, bottleneck consistency and U/L/Auto notion
    dispatch. *)

open Facile_uarch
open Facile_core

(** Invariants of one prediction; exposed for mutation self-tests.
    [notion] says which throughput notion produced it. *)
val check_prediction :
  Config.t ->
  string ->
  notion:[ `U | `L ] ->
  Model.prediction ->
  Finding.t list

(** All model rules for one instruction sequence on one arch. *)
val check_block :
  Config.t -> string -> Facile_x86.Inst.t list -> Finding.t list

(** The full sweep: a deterministic Genblock corpus ([seed], default
    [0xFAC17E]; [blocks_per_profile] straight-line/looped pairs per
    profile, default 4) on every shipped config. *)
val run :
  ?cfgs:Config.t list ->
  ?seed:int ->
  ?blocks_per_profile:int ->
  unit ->
  Finding.t list
