(* Instruction-table cross-check, the tbl- rule family: every enumerated
   mnemonic x operand-shape form must have a µop decomposition, port
   mapping and latency on every microarchitecture, and the descriptor
   must satisfy the decode/rename-domain arithmetic the components rely
   on.  The ISA feature gate is re-derived independently in [Forms] and
   compared against what [Db.describe] actually accepts, so a gating
   bug cannot hide in the only place that implements it. *)

open Facile_x86
open Facile_uarch
open Facile_db

let error = Finding.error

let where cfg inst =
  Printf.sprintf "%s:%s" cfg.Config.abbrev (Inst.to_string inst)

(* Latency ceiling: the slowest supported operation (divide/sqrt) sits
   far below this; anything larger is a corrupted table entry. *)
let max_latency = 64

(* Forms with no enumerated shape: the enumerator lost coverage. *)
let coverage by_mnemonic =
  List.concat_map
    (fun (mn, forms) ->
      if forms = [] then
        [ error "tbl-missing-form" (Inst.mnemonic_name mn)
            "no operand shape enumerated for this mnemonic" ]
      else [])
    by_mnemonic

let check_desc cfg inst (d : Db.t) =
  let w = where cfg inst in
  let err rule msg = [ error rule w msg ] in
  let counts =
    (if d.fused_uops >= 1 then []
     else err "tbl-uop-count"
         (Printf.sprintf "fused_uops %d < 1" d.fused_uops))
    @ (if d.issued_uops >= d.fused_uops then []
       else err "tbl-uop-count"
           (Printf.sprintf "issued_uops %d < fused_uops %d" d.issued_uops
              d.fused_uops))
    @
    if d.eliminated then
      if d.dispatched = [] && d.latency = 0 then []
      else err "tbl-uop-count" "eliminated entry dispatches µops or has latency"
    else if d.dispatched = [] then
      err "tbl-uop-count" "non-eliminated entry dispatches no µops"
    else []
  in
  let ports =
    List.concat_map
      (fun (u : Db.uop) ->
        (if Port.is_empty u.ports then
           err "tbl-port-empty" "dispatched µop has empty port set"
         else [])
        @
        if Port.subset u.ports cfg.Config.ports then []
        else
          err "tbl-port-subset"
            (Printf.sprintf "µop ports %s outside machine ports %s"
               (Port.to_string u.ports)
               (Port.to_string cfg.Config.ports)))
      d.dispatched
  in
  let latency =
    if d.latency >= 0 && d.latency <= max_latency then []
    else
      err "tbl-latency"
        (Printf.sprintf "latency %d outside [0, %d]" d.latency max_latency)
  in
  let dec =
    let n = cfg.Config.n_decoders in
    (if d.available_simple_dec >= 0 && d.available_simple_dec <= n - 1 then []
     else
       err "tbl-simple-dec"
         (Printf.sprintf "available_simple_dec %d outside [0, %d]"
            d.available_simple_dec (n - 1)))
    @
    if d.complex_decode = (d.fused_uops > 1) then []
    else
      err "tbl-simple-dec"
        (Printf.sprintf "complex_decode %b inconsistent with fused_uops %d"
           d.complex_decode d.fused_uops)
  in
  counts @ ports @ latency @ dec

let check_form ?(requires = Forms.requires_avx2_fma) cfg inst =
  let expected = (not (requires inst)) || cfg.Config.has_avx2_fma in
  match Db.describe cfg inst with
  | d ->
    if expected then check_desc cfg inst d
    else
      [ error "tbl-gate-leak" (where cfg inst)
          "accepted by the DB but the ISA gate says unsupported here" ]
  | exception Db.Unsupported msg ->
    if expected then
      [ error "tbl-hole" (where cfg inst)
          (Printf.sprintf "no table entry on this arch: %s" msg) ]
    else []

let run_cfg ?(by_mnemonic = Forms.by_mnemonic) cfg =
  List.concat_map
    (fun (_, forms) -> List.concat_map (check_form cfg) forms)
    by_mnemonic

let run ?(cfgs = Config.all) () =
  let forms = List.length Forms.all in
  coverage Forms.by_mnemonic
  @ List.concat_map (fun cfg -> run_cfg cfg) cfgs
  @ [ Finding.info "tbl-coverage" "forms"
        (Printf.sprintf "%d forms x %d arches cross-checked" forms
           (List.length cfgs)) ]
