(* Aggregator for the six analyzer families.  `facile check` and the
   `@check` build alias both come through [run_all]; the summary and
   JSON encodings live here so the CLI stays a thin shell. *)

open Facile_uarch

type report = {
  findings : Finding.t list;
  n_error : int;
  n_warn : int;
  n_info : int;
}

let analyzers =
  [ "config", (fun cfgs -> Config_lint.run ~cfgs ());
    "tables", (fun cfgs -> Table_check.run ~cfgs ());
    "codec", (fun _ -> Codec_check.run ());
    "model", (fun cfgs -> Model_check.run ~cfgs ());
    "flat", (fun cfgs -> Flat_check.run ~cfgs ());
    "store", (fun _ -> Store_check.run ()) ]

let analyzer_names = List.map fst analyzers

let run_all ?(cfgs = Config.all) ?(families = analyzer_names) () =
  (match List.filter (fun f -> not (List.mem_assoc f analyzers)) families with
   | [] -> ()
   | bad ->
     invalid_arg
       (Printf.sprintf "Check.run_all: unknown analyzer famil%s %s (valid: %s)"
          (if List.length bad = 1 then "y" else "ies")
          (String.concat ", " bad)
          (String.concat ", " analyzer_names)));
  let findings =
    List.concat_map
      (fun (name, f) -> if List.mem name families then f cfgs else [])
      analyzers
  in
  let findings = List.sort Finding.compare findings in
  { findings;
    n_error = Finding.count Finding.Error findings;
    n_warn = Finding.count Finding.Warn findings;
    n_info = Finding.count Finding.Info findings }

let ok r = r.n_error = 0

let summary r =
  Printf.sprintf "%d error%s, %d warning%s, %d info" r.n_error
    (if r.n_error = 1 then "" else "s")
    r.n_warn
    (if r.n_warn = 1 then "" else "s")
    r.n_info

let report_to_json r : Facile_obs.Json.t =
  let open Facile_obs in
  Json.Obj
    [ "ok", Json.Bool (ok r);
      "errors", Json.Int r.n_error;
      "warnings", Json.Int r.n_warn;
      "infos", Json.Int r.n_info;
      "findings", Json.Arr (List.map Finding.to_json r.findings) ]
