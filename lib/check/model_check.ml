(* Model-invariant checks, the mdl- rule family, over a seeded Genblock
   corpus: the prediction must be the max over exactly the candidate
   components its front-end path declares, every component bound must
   be finite and non-negative, the bottleneck list must be consistent
   with the reported cycles, and the U/L/Auto notions must dispatch
   coherently on [Block.ends_in_branch]. *)

open Facile_uarch
open Facile_core
open Facile_bhive

let error = Finding.error
let eps = 1e-9

let where cfg tag = Printf.sprintf "%s:%s" cfg.Config.abbrev tag

(* Candidate components implied by the notion/front-end path; mirrors
   the combination rule of section 4.1 / 4.2 (Equations 1-3)
   independently of [Model.predict]'s internal plumbing. *)
let candidates (p : Model.prediction) =
  let fe =
    match p.Model.fe_path with
    | Model.FE_none -> [ Model.Predec; Model.Dec ]
    | Model.FE_decoders -> [ Model.Predec; Model.Dec ]
    | Model.FE_lsd -> [ Model.LSD ]
    | Model.FE_dsb -> [ Model.DSB ]
  in
  fe @ [ Model.Issue; Model.Ports; Model.Precedence ]

let value p c = List.assoc_opt c p.Model.values

let check_prediction cfg tag ~notion (p : Model.prediction) =
  let w = where cfg tag in
  let err rule msg = [ error rule w msg ] in
  let finite =
    List.concat_map
      (fun (c, v) ->
        if Float.is_finite v && v >= 0.0 then []
        else
          err "mdl-finite"
            (Printf.sprintf "%s bound is %g" (Model.component_name c) v))
      p.Model.values
  in
  let complete =
    List.concat_map
      (fun c ->
        if value p c <> None then []
        else
          err "mdl-finite"
            (Printf.sprintf "no bound reported for %s"
               (Model.component_name c)))
      Model.all_components
  in
  let max_rule =
    let expected =
      List.fold_left
        (fun acc c ->
          match value p c with Some v -> Float.max acc v | None -> acc)
        0.0 (candidates p)
    in
    if Float.abs (p.Model.cycles -. expected) <= eps then []
    else
      err "mdl-max"
        (Printf.sprintf "cycles %g is not the max %g over candidates %s"
           p.Model.cycles expected
           (String.concat "," (List.map Model.component_name (candidates p))))
  in
  let bottleneck =
    (if p.Model.cycles > 0.0 && p.Model.bottlenecks = [] then
       err "mdl-bottleneck" "positive cycles but empty bottleneck list"
     else [])
    @ List.concat_map
        (fun c ->
          match value p c with
          | Some v when Float.abs (v -. p.Model.cycles) <= eps -> []
          | _ ->
            err "mdl-bottleneck"
              (Printf.sprintf "bottleneck %s bound differs from cycles %g"
                 (Model.component_name c) p.Model.cycles))
        p.Model.bottlenecks
  in
  let fe =
    match notion, p.Model.fe_path with
    | `U, Model.FE_none -> []
    | `U, _ -> err "mdl-notion" "TP_U prediction carries a loop front-end path"
    | `L, Model.FE_none -> err "mdl-notion" "TP_L prediction reports FE_none"
    | `L, _ -> []
  in
  finite @ complete @ max_rule @ bottleneck @ fe

let same_prediction (a : Model.prediction) (b : Model.prediction) =
  Float.abs (a.Model.cycles -. b.Model.cycles) <= eps
  && a.Model.bottlenecks = b.Model.bottlenecks
  && a.Model.fe_path = b.Model.fe_path

let check_block cfg tag insts =
  match Block.of_instructions cfg insts with
  | b ->
    let pu = Model.predict ~notion:Model.U b in
    let pl = Model.predict ~notion:Model.L b in
    let pa = Model.predict ~notion:Model.Auto b in
    let dispatch =
      let want = if Block.ends_in_branch b then pl else pu in
      if same_prediction pa want then []
      else
        [ error "mdl-notion" (where cfg tag)
            "Auto notion disagrees with ends_in_branch dispatch" ]
    in
    check_prediction cfg tag ~notion:`U pu
    @ check_prediction cfg tag ~notion:`L pl
    @ dispatch
  | exception exn ->
    [ error "mdl-corpus" (where cfg tag)
        (Printf.sprintf "generated block failed analysis: %s"
           (Printexc.to_string exn)) ]

(* Seeded corpus: every profile, straight-line and looped variants.
   FMA-free so all nine arches accept every block. *)
let corpus ~seed ~blocks_per_profile =
  let rng = Prng.create seed in
  List.concat_map
    (fun profile ->
      List.concat_map
        (fun i ->
          let len = 3 + ((i * 7) mod 14) in
          let body = Genblock.body rng profile ~allow_fma:false ~len in
          let tag k =
            Printf.sprintf "%s/%d/%s" (Genblock.profile_name profile) i k
          in
          [ (tag "u", body); (tag "l", Genblock.looped body) ])
        (List.init blocks_per_profile (fun i -> i)))
    Genblock.all_profiles

let run ?(cfgs = Config.all) ?(seed = 0xFAC17E) ?(blocks_per_profile = 4) () =
  let blocks = corpus ~seed ~blocks_per_profile in
  List.concat_map
    (fun cfg ->
      List.concat_map (fun (tag, insts) -> check_block cfg tag insts) blocks)
    cfgs
  @ [ Finding.info "mdl-coverage" "corpus"
        (Printf.sprintf "%d blocks x %d arches checked under U, L and Auto"
           (List.length blocks) (List.length cfgs)) ]
