(* Config linter: structural invariants of the per-microarchitecture
   configuration tables — the cfg- rule family.

   Single-config rules run on one [Config.t] so mutation tests can feed
   corrupted copies; cross-config rules (uniqueness, generation
   ordering) run on a config list. *)

open Facile_uarch

let error = Finding.error
let where cfg field = Printf.sprintf "%s/%s" cfg.Config.abbrev field

(* --- per-config ---------------------------------------------------- *)

let lint_ports cfg =
  let pm = cfg.Config.pm in
  let fields = Config.pm_fields pm in
  let empties =
    List.concat_map
      (fun (name, p) ->
        (* fp_fma is legitimately empty on pre-FMA parts (SNB/IVB) *)
        if Port.is_empty p && not (name = "fp_fma" && not cfg.Config.has_avx2_fma)
        then
          [ error "cfg-ports-empty" (where cfg ("pm." ^ name))
              "dispatch-port set is empty" ]
        else [])
      fields
  in
  let subsets =
    List.concat_map
      (fun (name, p) ->
        if Port.subset p cfg.Config.ports then []
        else
          [ error "cfg-ports-subset" (where cfg ("pm." ^ name))
              (Printf.sprintf "ports %s not a subset of machine ports %s"
                 (Port.to_string p) (Port.to_string cfg.Config.ports)) ])
      fields
  in
  let union =
    let u =
      List.fold_left (fun acc (_, p) -> Port.union acc p) Port.empty fields
    in
    if Port.equal u cfg.Config.ports then []
    else
      [ error "cfg-ports-union" (where cfg "ports")
          (Printf.sprintf "ports %s is not the union %s of the port map"
             (Port.to_string cfg.Config.ports) (Port.to_string u)) ]
  in
  empties @ subsets @ union

let lint_widths cfg =
  let open Config in
  let pos =
    List.concat_map
      (fun (name, v) ->
        if v > 0 then []
        else
          [ error "cfg-width-positive" (where cfg name)
              (Printf.sprintf "must be positive, got %d" v) ])
      [ "n_decoders", cfg.n_decoders;
        "predecode_width", cfg.predecode_width;
        "issue_width", cfg.issue_width;
        "dsb_width", cfg.dsb_width;
        "idq_size", cfg.idq_size;
        "lsd_unroll_max", cfg.lsd_unroll_max;
        "lsd_unroll_target", cfg.lsd_unroll_target;
        "rob_size", cfg.rob_size;
        "rs_size", cfg.rs_size;
        "load_latency", cfg.load_latency ]
  in
  let order =
    List.concat_map
      (fun (msg, la, a, lb, b) ->
        if a <= b then []
        else
          [ error "cfg-width-order" (where cfg msg)
              (Printf.sprintf "%s (%d) exceeds %s (%d)" la a lb b) ])
      [ "issue<=dsb", "issue_width", cfg.issue_width, "dsb_width",
        cfg.dsb_width;
        "idq<=rob", "idq_size", cfg.idq_size, "rob_size", cfg.rob_size;
        "rs<=rob", "rs_size", cfg.rs_size, "rob_size", cfg.rob_size;
        "dec<=predec", "n_decoders", cfg.n_decoders, "predecode_width",
        cfg.predecode_width;
        "unroll<=idq", "lsd_unroll_target", cfg.lsd_unroll_target,
        "idq_size", cfg.idq_size ]
  in
  pos @ order

(* The JCC-erratum mitigation and the LSD never coexist: the only parts
   with the mitigation (SKL/CLX) are exactly the ones whose LSD is
   fused off by the SKL150 erratum. *)
let lint_flags cfg =
  if cfg.Config.jcc_erratum && cfg.Config.lsd_enabled then
    [ error "cfg-jcc-lsd" (where cfg "lsd_enabled")
        "jcc_erratum mitigation and LSD cannot both be active" ]
  else []

let lint_one cfg = lint_ports cfg @ lint_widths cfg @ lint_flags cfg

(* --- cross-config -------------------------------------------------- *)

let lint_unique cfgs =
  let dup name proj =
    let seen = Hashtbl.create 16 in
    List.concat_map
      (fun cfg ->
        let k = proj cfg in
        if Hashtbl.mem seen k then
          [ error "cfg-unique" (where cfg name)
              (Printf.sprintf "duplicate %s %S" name k) ]
        else begin
          Hashtbl.add seen k ();
          []
        end)
      cfgs
  in
  dup "abbrev" (fun c -> c.Config.abbrev)
  @ dup "name" (fun c -> c.Config.name)
  @ dup "arch" (fun c -> Config.arch_name c.Config.arch)

(* The shipped catalog (not the user's -a selection) must hold exactly
   the paper's nine generations. *)
let lint_catalog () =
  let n = List.length Config.all in
  if n = 9 then []
  else
    [ error "cfg-unique" "configs"
        (Printf.sprintf "expected 9 microarchitectures, found %d" n) ]

(* Capacities and ISA features only grow across the generation sequence
   (Table 1 of the paper); a regression in the tables is a typo. *)
let lint_generation cfgs =
  let mono name proj =
    let rec go acc = function
      | a :: (b :: _ as rest) ->
        let acc =
          if proj a <= proj b then acc
          else
            error "cfg-generation-order" (where b name)
              (Printf.sprintf "%s decreases %d -> %d from %s" name (proj a)
                 (proj b) a.Config.abbrev)
            :: acc
        in
        go acc rest
      | _ -> List.rev acc
    in
    go [] cfgs
  in
  let mono_flag name proj = mono name (fun c -> if proj c then 1 else 0) in
  mono "released" (fun c -> c.Config.released)
  @ mono "issue_width" (fun c -> c.Config.issue_width)
  @ mono "dsb_width" (fun c -> c.Config.dsb_width)
  @ mono "idq_size" (fun c -> c.Config.idq_size)
  @ mono "rob_size" (fun c -> c.Config.rob_size)
  @ mono "rs_size" (fun c -> c.Config.rs_size)
  @ mono "load_latency" (fun c -> c.Config.load_latency)
  @ mono_flag "has_avx2_fma" (fun c -> c.Config.has_avx2_fma)
  @ mono_flag "unlamination_simple_ok" (fun c ->
        c.Config.unlamination_simple_ok)
  @ mono_flag "macro_fusible_on_last_decoder" (fun c ->
        c.Config.macro_fusible_on_last_decoder)

let run ?(cfgs = Config.all) () =
  List.concat_map lint_one cfgs @ lint_unique cfgs @ lint_generation cfgs
  @ lint_catalog ()
