/* Monotonic clock for span timing.  CLOCK_MONOTONIC never jumps on
   NTP adjustments, unlike gettimeofday, so latency histograms stay
   sane on long-running servers.  Nanoseconds fit an OCaml immediate
   int (63 bits ~ 292 years), so the call is allocation-free. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value facile_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
