(* Monotonic time in integer nanoseconds (see obs_clock_stubs.c). *)

external now_ns : unit -> int = "facile_obs_monotonic_ns" [@@noalloc]

let ns_to_us ns = float_of_int ns /. 1e3
let ns_to_ms ns = float_of_int ns /. 1e6
let ns_to_s ns = float_of_int ns /. 1e9
