(* Structured observability with no external dependencies: monotonic
   spans, counters, and fixed-bucket latency histograms, all safe to
   update from the engine's worker domains, plus a JSON snapshot for
   the serving layer's stats endpoint. *)

module Histogram = struct
  (* Fixed log2 buckets: bucket [i] counts samples [v] (nanoseconds)
     with 2^i <= v < 2^(i+1); bucket 0 also absorbs v <= 1.  63
     buckets cover every representable duration, recording is two
     atomic adds (no lock, no allocation), and quantiles are read by
     scanning 63 integers — the right trade for a hot path that must
     never block the predictor. *)

  let buckets = 63

  type t = { counts : int Atomic.t array; sum : int Atomic.t }

  let create () =
    { counts = Array.init buckets (fun _ -> Atomic.make 0);
      sum = Atomic.make 0 }

  let bucket_of v =
    let rec highest_bit i v = if v <= 1 then i else highest_bit (i + 1) (v lsr 1) in
    if v <= 1 then 0 else min (buckets - 1) (highest_bit 0 v)

  let record t v =
    let v = max 0 v in
    Atomic.incr t.counts.(bucket_of v);
    ignore (Atomic.fetch_and_add t.sum v)

  let count t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.counts
  let sum_ns t = Atomic.get t.sum

  let mean_ns t =
    let n = count t in
    if n = 0 then 0.0 else float_of_int (sum_ns t) /. float_of_int n

  (* q-quantile in nanoseconds, linearly interpolated inside the
     bucket that contains the target rank; exact up to bucket
     resolution (a factor of 2). *)
  let quantile t q =
    let n = count t in
    if n = 0 then 0.0
    else begin
      let q = Float.min 1.0 (Float.max 0.0 q) in
      let target = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let rec scan i cum =
        let here = Atomic.get t.counts.(i) in
        if cum + here >= target || i = buckets - 1 then begin
          let lo = if i = 0 then 0.0 else Float.of_int (1 lsl i) in
          let hi = Float.of_int (1 lsl (i + 1)) in
          let inside = float_of_int (target - cum) /. float_of_int (max 1 here) in
          lo +. (inside *. (hi -. lo))
        end
        else scan (i + 1) (cum + here)
      in
      scan 0 0
    end

  let reset t =
    Array.iter (fun c -> Atomic.set c 0) t.counts;
    Atomic.set t.sum 0

  let to_json t =
    let n = count t in
    Json.Obj
      [ "count", Json.Int n;
        "sum_ns", Json.Int (sum_ns t);
        "mean_ns", Json.Float (mean_ns t);
        "p50_ns", Json.Float (quantile t 0.50);
        "p95_ns", Json.Float (quantile t 0.95);
        "p99_ns", Json.Float (quantile t 0.99) ]
end

(* ----- global registry ----- *)

(* Lock-free registry: a CAS-published assoc list per metric kind.
   This library sits below Facile_core in the dependency order, so it
   cannot use Sync.with_lock — and it should not need to: registries
   are tiny (tens of entries, touched at module init), and a
   compare-and-set retry loop gives the same "first registration wins"
   semantics with no lock to leak.  Hot call sites still resolve their
   histogram once at module initialization and use
   [timed]/[Histogram.record] directly, which touch only atomics. *)

let spans : (string * Histogram.t) list Atomic.t = Atomic.make []
let counters : (string * int Atomic.t) list Atomic.t = Atomic.make []

(* Register-or-find under CAS.  A lost race re-reads the list, so a
   name resolves to exactly one cell for every caller; a losing
   freshly-allocated cell is dropped before anyone records into it. *)
let rec registered reg create name =
  let cur = Atomic.get reg in
  match List.assoc_opt name cur with
  | Some v -> v
  | None ->
    let v = create () in
    if Atomic.compare_and_set reg cur ((name, v) :: cur) then v
    else registered reg create name

(* Per-instance concurrent counter map over the same CAS-published
   assoc-list idiom as the registries: the serving layer's
   by-arch/by-kind tallies are bumped from N session threads, and a
   lock there would sit exactly where the stats path should stay
   wait-free.  Key sets are tiny (arch abbrevs, error kinds), so an
   assoc list beats a hashed structure and needs no synchronization
   beyond the publish CAS. *)
module Cmap = struct
  type t = (string * int Atomic.t) list Atomic.t

  let create () : t = Atomic.make []

  let rec cell (t : t) name =
    let cur = Atomic.get t in
    match List.assoc_opt name cur with
    | Some c -> c
    | None ->
      let c = Atomic.make 0 in
      if Atomic.compare_and_set t cur ((name, c) :: cur) then c
      else cell t name

  let bump ?(by = 1) t name = ignore (Atomic.fetch_and_add (cell t name) by)

  let get t name =
    match List.assoc_opt name (Atomic.get t) with
    | Some c -> Atomic.get c
    | None -> 0

  (* sorted for deterministic JSON field order *)
  let bindings t =
    List.sort compare
      (List.map (fun (k, c) -> (k, Atomic.get c)) (Atomic.get t))
end

let histogram name = registered spans Histogram.create name
let counter name = registered counters (fun () -> Atomic.make 0) name

let incr ?(by = 1) name = ignore (Atomic.fetch_and_add (counter name) by)
let decr ?(by = 1) name = ignore (Atomic.fetch_and_add (counter name) (-by))
let counter_value name = Atomic.get (counter name)

(* Time [f] into [h]; the sample is recorded even when [f] raises, so
   error paths stay visible in the latency distribution. *)
let timed h f =
  let t0 = Clock.now_ns () in
  match f () with
  | r ->
    Histogram.record h (Clock.now_ns () - t0);
    r
  | exception e ->
    Histogram.record h (Clock.now_ns () - t0);
    raise e

let with_span name f = timed (histogram name) f
let record_ns name ns = Histogram.record (histogram name) ns

let sorted_bindings reg =
  List.sort (fun (a, _) (b, _) -> compare a b) (Atomic.get reg)

let snapshot () =
  Json.Obj
    [ "counters",
      Json.Obj
        (List.map
           (fun (k, c) -> (k, Json.Int (Atomic.get c)))
           (sorted_bindings counters));
      "spans",
      Json.Obj
        (List.map
           (fun (k, h) -> (k, Histogram.to_json h))
           (sorted_bindings spans)) ]

(* Zero every metric in place.  Entries stay registered: call sites
   cache [Histogram.t] values at module init, and clearing the lists
   would silently detach those from future snapshots. *)
let reset () =
  List.iter (fun (_, h) -> Histogram.reset h) (Atomic.get spans);
  List.iter (fun (_, c) -> Atomic.set c 0) (Atomic.get counters)
