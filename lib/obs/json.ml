(* Minimal JSON: just enough for the NDJSON wire protocol and the
   metrics snapshot, so the serving path carries no external
   dependency.  Integers are kept distinct from floats because request
   ids and counters round-trip more predictably that way. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ----- printing ----- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  (* JSON has no nan/inf; shortest decimal form that round-trips *)
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> add_escaped buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ----- parsing ----- *)

exception Bad of int * string

let max_depth = 256

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      v := (!v lsl 4) lor d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
         | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
         | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
         | Some 'u' ->
           advance ();
           let cp = hex4 () in
           let cp =
             (* surrogate pair *)
             if cp >= 0xd800 && cp <= 0xdbff && !pos + 1 < n
                && s.[!pos] = '\\'
                && !pos + 1 < n
                && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo >= 0xdc00 && lo <= 0xdfff then
                 0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
               else fail "bad surrogate pair"
             end
             else cp
           in
           add_utf8 buf cp;
           go ()
         | _ -> fail "bad escape")
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_digit () =
      match peek () with Some ('0' .. '9') -> true | _ -> false
    in
    if not (is_digit ()) then fail "expected digit";
    while is_digit () do
      advance ()
    done;
    let fractional = ref false in
    if peek () = Some '.' then begin
      fractional := true;
      advance ();
      if not (is_digit ()) then fail "expected digit after '.'";
      while is_digit () do
        advance ()
      done
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       fractional := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       if not (is_digit ()) then fail "expected digit in exponent";
       while is_digit () do
         advance ()
       done
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !fractional then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value depth =
    if depth > max_depth then fail "input nested too deeply";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elements [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Bad (p, msg) ->
    Error (Printf.sprintf "%s at byte %d" msg p)
  | exception Stack_overflow -> Error "input nested too deeply"

(* ----- accessors ----- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let string_opt = function Str s -> Some s | _ -> None
let int_opt = function Int i -> Some i | _ -> None

let float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
