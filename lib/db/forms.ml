(* Deterministic enumeration of the mnemonic x operand-shape space.

   One canonical instruction per supported encoding shape of every
   mnemonic in [Inst.all_mnemonics].  The codec sweep encodes and
   decodes each form; the table cross-check looks each one up in the
   instruction DB on every microarchitecture.  A mnemonic for which
   this module produces no form at all is itself a finding
   ([tbl-missing-form]) - the enumerator cannot silently fall out of
   sync with the mnemonic type. *)

open Facile_x86

let gq g = Operand.Reg (Register.Gpr (Register.W64, g))
let gd g = Operand.Reg (Register.Gpr (Register.W32, g))
let gw g = Operand.Reg (Register.Gpr (Register.W16, g))
let gb g = Operand.Reg (Register.Gpr (Register.W8, g))
let x n = Operand.Reg (Register.Xmm n)
let y n = Operand.Reg (Register.Ymm n)

let rax = gq Register.RAX
let rbx = gq Register.RBX
let eax = gd Register.RAX
let ebx = gd Register.RBX
let ax = gw Register.RAX
let bx = gw Register.RBX
let al = gb Register.RAX
let bl = gb Register.RBX
let cl = gb Register.RCX

(* canonical [rbx+8] memory operand *)
let m width = Operand.mem ~base:Register.RBX ~disp:8 ~width ()

(* indexed [rbx+rcx*4+8]: exercises SIB and the slow-LEA / unlamination
   paths *)
let mi width =
  Operand.mem ~base:Register.RBX ~index:(Register.RCX, Operand.S4) ~disp:8
    ~width ()

let i8 = Operand.imm 5
let i32 = Operand.imm 74565 (* 0x12345: needs the full-width immediate *)
let i16 = Operand.imm 0x1234 (* 16-bit operand + imm16 -> LCP *)

let mk = Inst.make

(* Canonical memory width of a vector mnemonic (scalar-single 4,
   scalar-double 8, packed = register width), shared with the decoder
   so round-trips are exact. *)
let vw ?(w = false) ?(ymm = false) mn = Inst.vec_mem_width ~w ~ymm mn

let of_mnemonic (mn : Inst.mnemonic) : Inst.t list =
  let open Inst in
  match mn with
  (* ----- integer ALU, full shape matrix ----- *)
  | ADD | SUB | ADC | SBB | AND | OR | XOR | CMP ->
    [ mk mn [ rax; rbx ]; mk mn [ eax; ebx ]; mk mn [ ax; bx ];
      mk mn [ al; bl ]; mk mn [ rax; i8 ]; mk mn [ rax; i32 ];
      mk mn [ ax; i16 ]; mk mn [ rax; m 8 ]; mk mn [ m 8; rax ];
      mk mn [ m 4; i8 ]; mk mn [ rax; mi 8 ] ]
  | MOV ->
    [ mk mn [ rax; rbx ]; mk mn [ eax; ebx ]; mk mn [ ax; bx ];
      mk mn [ al; bl ]; mk mn [ rax; i32 ];
      mk mn [ rax; Operand.Imm 0x1122334455667788L ];
      mk mn [ eax; i32 ]; mk mn [ ax; i16 ]; mk mn [ al; i8 ];
      mk mn [ rax; m 8 ]; mk mn [ m 8; rax ]; mk mn [ m 4; i32 ];
      mk mn [ m 2; i16 ]; mk mn [ eax; mi 4 ]; mk mn [ mi 4; eax ] ]
  | TEST ->
    [ mk mn [ rax; rbx ]; mk mn [ rax; i32 ]; mk mn [ ax; i16 ];
      mk mn [ m 8; rax ] ]
  | NEG | NOT ->
    [ mk mn [ rax ]; mk mn [ eax ]; mk mn [ m 4 ] ]
  | MUL | DIV | IDIV ->
    [ mk mn [ rax ]; mk mn [ eax ]; mk mn [ m 4 ] ]
  | INC | DEC ->
    [ mk mn [ rax ]; mk mn [ eax ]; mk mn [ m 4 ] ]
  | IMUL ->
    [ mk mn [ rax; rbx ]; mk mn [ eax; ebx ]; mk mn [ rax; m 8 ];
      mk mn [ rax; rbx; i8 ]; mk mn [ rax; rbx; i32 ];
      mk mn [ ax; bx; i16 ] ]
  | SHL | SHR | SAR | ROL | ROR ->
    [ mk mn [ rax; i8 ]; mk mn [ eax; i8 ]; mk mn [ rax; cl ];
      mk mn [ m 4; i8 ] ]
  | MOVZX | MOVSX ->
    [ mk mn [ eax; bl ]; mk mn [ eax; bx ]; mk mn [ rax; bl ];
      mk mn [ eax; m 1 ]; mk mn [ eax; m 2 ] ]
  | MOVSXD -> [ mk mn [ rax; ebx ]; mk mn [ rax; m 4 ] ]
  | XCHG -> [ mk mn [ rax; rbx ]; mk mn [ eax; ebx ] ]
  | BSWAP -> [ mk mn [ rax ]; mk mn [ eax ] ]
  | PUSH | POP -> [ mk mn [ rax ] ]
  | BSF | BSR | POPCNT | LZCNT | TZCNT ->
    [ mk mn [ rax; rbx ]; mk mn [ eax; ebx ]; mk mn [ rax; m 8 ] ]
  | CDQ | CQO | CWDE | CDQE | NOP | CLC | STC | CMC -> [ mk mn [] ]
  | NOPL -> [ mk mn [ m 4 ]; mk mn [ m 2 ] ]
  | SHLD | SHRD ->
    [ mk mn [ rax; rbx; i8 ]; mk mn [ eax; ebx; i8 ] ]
  | BT | BTS | BTR | BTC ->
    [ mk mn [ rax; rbx ]; mk mn [ rax; i8 ]; mk mn [ eax; i8 ] ]
  | MOVBE ->
    [ mk mn [ rax; m 8 ]; mk mn [ m 8; rax ]; mk mn [ eax; m 4 ];
      mk mn [ m 4; eax ] ]
  | ANDN | BZHI ->
    [ mk mn [ rax; rbx; gq Register.RCX ];
      mk mn [ eax; ebx; gd Register.RCX ] ]
  | SHLX | SHRX | SARX ->
    [ mk mn [ rax; rbx; gq Register.RCX ];
      mk mn [ eax; ebx; gd Register.RCX ] ]
  | JMP -> [ mk mn [ i8 ]; mk mn [ Operand.imm (-1000) ] ]
  | Jcc _ -> [ mk mn [ i8 ]; mk mn [ Operand.imm (-1000) ] ]
  | SETcc _ -> [ mk mn [ al ] ]
  | CMOVcc _ -> [ mk mn [ rax; rbx ]; mk mn [ eax; m 4 ] ]
  | LEA ->
    [ mk mn [ rax; Operand.mem ~base:Register.RBX ~disp:8 ~width:8 () ];
      mk mn [ rax; mi 8 ]; (* 3-component: slow LEA *)
      mk mn [ eax; Operand.mem ~base:Register.RBX ~width:4 () ] ]
  (* ----- SSE data movement ----- *)
  | MOVAPS | MOVUPS | MOVAPD | MOVDQA | MOVDQU ->
    [ mk mn [ x 1; x 2 ]; mk mn [ x 1; m 16 ]; mk mn [ m 16; x 1 ] ]
  | MOVSS | MOVSD ->
    let w = vw mn in
    [ mk mn [ x 1; x 2 ]; mk mn [ x 1; m w ]; mk mn [ m w; x 1 ] ]
  | MOVD ->
    [ mk mn [ x 1; ebx ]; mk mn [ x 1; m 4 ]; mk mn [ m 4; x 1 ] ]
  | MOVQ ->
    [ mk mn [ x 1; x 2 ]; mk mn [ x 1; rbx ]; mk mn [ x 1; m 8 ];
      mk mn [ m 8; x 1 ] ]
  (* ----- SSE arithmetic / logic / compare: reg and load shapes ----- *)
  | ADDPS | ADDPD | ADDSS | ADDSD | SUBPS | SUBPD | SUBSS | SUBSD
  | MULPS | MULPD | MULSS | MULSD | DIVPS | DIVPD | DIVSS | DIVSD
  | MINPS | MAXPS | MINPD | MAXPD | MINSS | MAXSS | MINSD | MAXSD
  | SQRTPS | SQRTPD | SQRTSS | SQRTSD
  | ANDPS | ANDPD | ORPS | XORPS | XORPD | UCOMISS | UCOMISD
  | HADDPS
  | PXOR | POR | PAND | PADDB | PADDD | PADDQ | PSUBD
  | PMULLD | PMULUDQ | PCMPEQB | PCMPEQD | PCMPGTD
  | PMAXSD | PMINSD | PMAXUB | PMINUB | PSHUFB | PACKSSDW | PUNPCKLDQ
  | CVTSS2SD | CVTSD2SS | CVTDQ2PS | CVTPS2DQ | CVTTPS2DQ ->
    [ mk mn [ x 1; x 2 ]; mk mn [ x 1; m (vw mn) ] ]
  | SHUFPS | PALIGNR | PSHUFD ->
    [ mk mn [ x 1; x 2; i8 ] ]
  | ROUNDSD -> [ mk mn [ x 1; x 2; Operand.imm 3 ] ]
  | UNPCKHPS | UNPCKLPD -> [ mk mn [ x 1; x 2 ] ]
  | PSLLD | PSRLD | PSLLDQ | PSRLDQ -> [ mk mn [ x 1; i8 ] ]
  | CVTSI2SD | CVTSI2SS ->
    [ mk mn [ x 1; ebx ]; mk mn [ x 1; rbx ]; mk mn [ x 1; m 4 ] ]
  | CVTTSD2SI -> [ mk mn [ ebx; x 1 ]; mk mn [ rbx; x 1 ] ]
  (* ----- AVX ----- *)
  | VMOVAPS | VMOVUPS | VMOVDQA | VMOVDQU ->
    [ mk mn [ x 1; x 2 ]; mk mn [ y 1; y 2 ]; mk mn [ x 1; m 16 ];
      mk mn [ m 16; x 1 ]; mk mn [ y 1; m 32 ]; mk mn [ m 32; y 1 ] ]
  | VSQRTPS ->
    [ mk mn [ x 1; x 2 ]; mk mn [ y 1; y 2 ];
      mk mn [ x 1; m (vw mn) ] ]
  | VADDPS | VADDPD | VSUBPS | VMULPS | VMULPD | VDIVPS
  | VXORPS | VANDPS | VMINPS | VMAXPS ->
    [ mk mn [ x 1; x 2; x 3 ]; mk mn [ y 1; y 2; y 3 ];
      mk mn [ x 1; x 2; m (vw mn) ] ]
  | VPXOR | VPADDD | VPMULLD | VPAND | VPOR ->
    (* ymm form is AVX2: expected unsupported before Haswell *)
    [ mk mn [ x 1; x 2; x 3 ]; mk mn [ y 1; y 2; y 3 ] ]
  | VFMADD231PS | VFMADD231PD | VFMADD132PS | VFMADD213PS ->
    [ mk mn [ x 1; x 2; x 3 ]; mk mn [ y 1; y 2; y 3 ] ]
  | VFMADD231SS | VFMADD231SD ->
    [ mk mn [ x 1; x 2; x 3 ] ]

(* The full enumeration, mnemonic by mnemonic. *)
let by_mnemonic : (Inst.mnemonic * Inst.t list) list =
  List.map (fun mn -> (mn, of_mnemonic mn)) Inst.all_mnemonics

let all : Inst.t list = List.concat_map snd by_mnemonic

(* Mnemonics with no enumerated form; must stay empty (proved by the
   exhaustive match above, re-proved at runtime for mutation tests). *)
let uncovered () =
  List.filter_map
    (fun (mn, forms) -> if forms = [] then Some mn else None)
    by_mnemonic

(* Feature gate mirrored from the ISA facts (paper Table 1): FMA, BMI,
   MOVBE and 256-bit integer AVX arrived with Haswell/AVX2.  The table
   cross-check re-derives this independently of [Db.describe] and
   flags any disagreement. *)
let requires_avx2_fma (i : Inst.t) =
  let open Inst in
  let fma_or_bmi =
    match i.mnem with
    | VFMADD231PS | VFMADD231PD | VFMADD231SS | VFMADD231SD
    | VFMADD132PS | VFMADD213PS
    | ANDN | BZHI | SHLX | SHRX | SARX | MOVBE -> true
    | _ -> false
  in
  let avx2_int =
    (match i.mnem with
     | VPXOR | VPADDD | VPMULLD | VPAND | VPOR -> true
     | _ -> false)
    && List.exists
         (function
           | Operand.Reg (Register.Ymm _) -> true
           | Operand.Mem m -> m.Operand.width = 32
           | _ -> false)
         i.ops
  in
  fma_or_bmi || avx2_int
