(* Flattened per-microarchitecture instruction tables.

   [Db.describe] re-derives a descriptor on every call by matching on
   the mnemonic and operand shapes.  That match is exactly as large as
   the instruction set and sits on the hottest path of the model
   (block analysis calls it once per instruction).  This module
   compiles the hand-written tables once per microarchitecture into
   flat int/float arrays indexed by the dense form-id space enumerated
   by [Forms] (one id per canonical mnemonic x operand-shape), and
   serves lookups by O(1) array indexing:

     instruction --key--> form id --index--> flat arrays

   The [key] function projects an instruction onto the features
   [Db.describe] actually distinguishes (mnemonic, memory-operand
   placement, indexed addressing, ymm width, integer width, immediate
   placement, register-source count, xmm positions, LEA shape).  Two
   instructions with the same key are table-equivalent by
   construction; the build step verifies this on the enumerated forms
   and the [flat] check family re-verifies it against [Db.describe]
   exhaustively (555 forms x 9 arches), so the flat path cannot drift
   from the hand-written source of truth.

   Safety: lookups fall back to [Db.describe] whenever the key misses
   (an operand shape outside the enumerated space) or the config is
   not the canonical one for its arch (ablation configs flip feature
   flags such as [macro_fusion] that are baked into the table).  The
   fallback is correctness-preserving: slower, never wrong. *)

open Facile_x86
open Facile_uarch

let n_arches = 9

let arch_index = function
  | Config.SNB -> 0
  | Config.IVB -> 1
  | Config.HSW -> 2
  | Config.BDW -> 3
  | Config.SKL -> 4
  | Config.CLX -> 5
  | Config.ICL -> 6
  | Config.TGL -> 7
  | Config.RKL -> 8

(* The canonical config records of [Config.all], by arch index.  Table
   lookups are only valid against these exact records: derived configs
   (e.g. the baselines' de-fused ablations) change fields the table
   bakes in, so they take the [Db.describe] fallback. *)
let canonical : Config.t array =
  let a = Array.make n_arches (List.hd Config.all) in
  List.iter (fun c -> a.(arch_index c.Config.arch) <- c) Config.all;
  a

let is_canonical cfg = canonical.(arch_index cfg.Config.arch) == cfg

(* ------------------------------------------------------------------ *)
(* Shape key: every feature [Db.describe] dispatches on, packed into   *)
(* one immediate int (mnemonic code * 4096 + 12 feature bits).         *)

let mnem_code : (Inst.mnemonic, int) Hashtbl.t =
  let h = Hashtbl.create 256 in
  List.iteri (fun i mn -> Hashtbl.add h mn i) Inst.all_mnemonics;
  h

let n_key_bits = 12

(* Mirrors [Db.int_width]: width of the first GPR or memory operand. *)
let int_width_code (ops : Operand.t list) =
  let rec go = function
    | [] -> 3
    | Operand.Reg (Register.Gpr (w, _)) :: _ ->
      (match w with
       | Register.W8 -> 0
       | Register.W16 -> 1
       | Register.W32 -> 2
       | Register.W64 -> 3)
    | Operand.Mem m :: _ ->
      (match m.Operand.width with 1 -> 0 | 2 -> 1 | 4 -> 2 | _ -> 3)
    | _ :: rest -> go rest
  in
  go ops

let key (i : Inst.t) =
  let mc =
    match Hashtbl.find_opt mnem_code i.Inst.mnem with
    | Some c -> c
    | None -> assert false (* [all_mnemonics] is exhaustive *)
  in
  let ops = i.Inst.ops in
  let mem_dst = match ops with Operand.Mem _ :: _ -> true | _ -> false in
  let mem_src =
    match ops with
    | _ :: rest ->
      List.exists (function Operand.Mem _ -> true | _ -> false) rest
    | [] -> false
  in
  let mem_indexed =
    List.exists
      (function
        | Operand.Mem m -> m.Operand.index <> None
        | _ -> false)
      ops
  in
  let ymm =
    List.exists
      (function
        | Operand.Reg (Register.Ymm _) -> true
        | Operand.Mem m -> m.Operand.width = 32
        | _ -> false)
      ops
  in
  let second_imm =
    match ops with _ :: Operand.Imm _ :: _ -> true | _ -> false
  in
  let any_imm =
    List.exists (function Operand.Imm _ -> true | _ -> false) ops
  in
  let reg_sources =
    List.length
      (List.filter (function Operand.Reg _ -> true | _ -> false) ops)
  in
  let lea3 =
    i.Inst.mnem = Inst.LEA
    && List.exists
         (function
           | Operand.Mem m ->
             m.Operand.base <> None && m.Operand.index <> None
             && m.Operand.disp <> 0
           | _ -> false)
         ops
  in
  let xmm0 =
    match ops with Operand.Reg (Register.Xmm _) :: _ -> true | _ -> false
  in
  let xmm1 =
    match ops with
    | _ :: Operand.Reg (Register.Xmm _) :: _ -> true
    | _ -> false
  in
  let b = ref (int_width_code ops lsl 4) in
  let set bit cond = if cond then b := !b lor bit in
  set 1 mem_src;
  set 2 mem_dst;
  set 4 mem_indexed;
  set 8 ymm;
  set 64 second_imm;
  set 128 any_imm;
  set 256 (reg_sources >= 2);
  set 512 lea3;
  set 1024 xmm0;
  set 2048 xmm1;
  (mc lsl n_key_bits) lor !b

(* ------------------------------------------------------------------ *)
(* Per-arch table: parallel arrays over the dense form-id space.       *)

let forms : Inst.t array = Array.of_list Forms.all
let n_forms = Array.length forms
let form id = forms.(id)

let kind_code = function
  | Db.Load -> 0
  | Db.Compute -> 1
  | Db.Store_addr -> 2
  | Db.Store_data -> 3
  | Db.Div_pseudo -> 4

let kind_of_code = function
  | 0 -> Db.Load
  | 1 -> Db.Compute
  | 2 -> Db.Store_addr
  | 3 -> Db.Store_data
  | _ -> Db.Div_pseudo

(* Descriptor flag bits, [flags] array. *)
let f_complex = 1
let f_eliminated = 2
let f_zero_idiom = 4
let f_macro_fusible = 8

type table = {
  cfg : Config.t;
  supported : bool array;  (* per form id: [Db.describe] succeeds *)
  fused : int array;
  issued : int array;
  latency : int array;
  latency_f : float array;  (* float mirror: precedence edge weights *)
  avail : int array;        (* available_simple_dec *)
  flags : int array;
  uop_off : int array;      (* n_forms + 1: offsets into uop_* *)
  uop_kind : int array;
  uop_ports : Port.t array;
  descs : Db.t option array;
      (* shared descriptor views reconstructed from the arrays above:
         a table hit returns the same immutable record every time *)
  slots : (int, int) Hashtbl.t;
      (* shape key -> representative form id; keys whose forms disagree
         are left out so such shapes take the describe fallback *)
  ambiguous : (int * int) list;
      (* (form id, form id) pairs sharing a key but disagreeing — must
         stay empty; surfaced as findings by the flat check family *)
  (* shared eliminated descriptors (depend only on n_decoders) *)
  elim_zero : Db.t;
  elim_plain : Db.t;
}

let desc_of_arrays t id : Db.t option =
  if not t.supported.(id) then None
  else
    let off = t.uop_off.(id) in
    let len = t.uop_off.(id + 1) - off in
    Some
      { Db.fused_uops = t.fused.(id);
        issued_uops = t.issued.(id);
        dispatched =
          List.init len (fun k ->
              { Db.kind = kind_of_code t.uop_kind.(off + k);
                ports = t.uop_ports.(off + k) });
        latency = t.latency.(id);
        complex_decode = t.flags.(id) land f_complex <> 0;
        available_simple_dec = t.avail.(id);
        eliminated = t.flags.(id) land f_eliminated <> 0;
        zero_idiom = t.flags.(id) land f_zero_idiom <> 0;
        macro_fusible = t.flags.(id) land f_macro_fusible <> 0 }

let build cfg =
  let supported = Array.make n_forms false in
  let fused = Array.make n_forms 0 in
  let issued = Array.make n_forms 0 in
  let latency = Array.make n_forms 0 in
  let latency_f = Array.make n_forms 0.0 in
  let avail = Array.make n_forms 0 in
  let flags = Array.make n_forms 0 in
  let uop_off = Array.make (n_forms + 1) 0 in
  let kinds = ref [] and ports = ref [] and n_uops = ref 0 in
  let described = Array.make n_forms None in
  for id = 0 to n_forms - 1 do
    uop_off.(id) <- !n_uops;
    match Db.describe cfg forms.(id) with
    | exception Db.Unsupported _ -> ()
    | d ->
      described.(id) <- Some d;
      supported.(id) <- true;
      fused.(id) <- d.Db.fused_uops;
      issued.(id) <- d.Db.issued_uops;
      latency.(id) <- d.Db.latency;
      latency_f.(id) <- float_of_int d.Db.latency;
      avail.(id) <- d.Db.available_simple_dec;
      flags.(id) <-
        (if d.Db.complex_decode then f_complex else 0)
        lor (if d.Db.eliminated then f_eliminated else 0)
        lor (if d.Db.zero_idiom then f_zero_idiom else 0)
        lor (if d.Db.macro_fusible then f_macro_fusible else 0);
      List.iter
        (fun (u : Db.uop) ->
          kinds := kind_code u.Db.kind :: !kinds;
          ports := u.Db.ports :: !ports;
          incr n_uops)
        d.Db.dispatched
  done;
  uop_off.(n_forms) <- !n_uops;
  let uop_kind = Array.of_list (List.rev !kinds) in
  let uop_ports = Array.of_list (List.rev !ports) in
  (* key -> representative form id; drop keys whose forms disagree *)
  let slots = Hashtbl.create (2 * n_forms) in
  let ambiguous = ref [] in
  for id = 0 to n_forms - 1 do
    match described.(id) with
    | None -> ()
    | Some d ->
      let k = key forms.(id) in
      (match Hashtbl.find_opt slots k with
       | None -> Hashtbl.add slots k id
       | Some id0 when described.(id0) = Some d -> ()
       | Some id0 -> ambiguous := (id0, id) :: !ambiguous)
  done;
  List.iter (fun (_, id) -> Hashtbl.remove slots (key forms.(id))) !ambiguous;
  let t =
    { cfg; supported; fused; issued; latency; latency_f; avail; flags;
      uop_off; uop_kind; uop_ports;
      descs = Array.make n_forms None;
      slots;
      ambiguous = !ambiguous;
      elim_zero = Db.eliminated_desc cfg ~zero_idiom:true;
      elim_plain = Db.eliminated_desc cfg ~zero_idiom:false }
  in
  for id = 0 to n_forms - 1 do
    t.descs.(id) <- desc_of_arrays t id
  done;
  t

(* One table per arch, built on first use and published through an
   atomic cell (this library sits below Facile_core, so no
   Sync.with_lock here — and none is needed).  Two domains racing on a
   cold arch may both build; the build is pure and deterministic from
   the same Db source, so the CAS loser discards an identical table
   and adopts the published one.  That duplicate work happens at most
   once per arch per process, a fair price for a lock-free read path. *)
let tables : table option Atomic.t array =
  Array.init n_arches (fun _ -> Atomic.make None)

let table cfg =
  let ai = arch_index cfg.Config.arch in
  match Atomic.get tables.(ai) with
  | Some t -> t
  | None ->
    let t = build canonical.(ai) in
    if Atomic.compare_and_set tables.(ai) None (Some t) then t
    else Option.get (Atomic.get tables.(ai))

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)

(* Ids reported by [describe_id] for shapes resolved before the table:
   rename-eliminated cases are decided per call (they depend on exact
   register identities the key deliberately ignores). *)
let id_fallback = -1
let id_zero_idiom = -2
let id_nop = -3
let id_mov_elim = -4

let id_of cfg (i : Inst.t) =
  if not (is_canonical cfg) then id_fallback
  else if Db.is_zero_idiom i then id_zero_idiom
  else if i.Inst.mnem = Inst.NOP || i.Inst.mnem = Inst.NOPL then id_nop
  else if Db.is_reg_move_elimination cfg i then id_mov_elim
  else
    let t = table cfg in
    match Hashtbl.find t.slots (key i) with
    | id -> id
    | exception Not_found -> id_fallback

(* The hot describe: preamble in the same order as [Db.describe]
   (support gate, then the rename-eliminated cases), then the O(1)
   table hit.  Allocation-free on hits: the returned descriptor is the
   table's shared view. *)
let describe_id cfg (i : Inst.t) : Db.t * int =
  Db.check_supported cfg i;
  if Db.is_zero_idiom i then
    ((if is_canonical cfg then (table cfg).elim_zero
      else Db.eliminated_desc cfg ~zero_idiom:true),
     id_zero_idiom)
  else if i.Inst.mnem = Inst.NOP || i.Inst.mnem = Inst.NOPL then
    ((if is_canonical cfg then (table cfg).elim_plain
      else Db.eliminated_desc cfg ~zero_idiom:false),
     id_nop)
  else if Db.is_reg_move_elimination cfg i then
    ((if is_canonical cfg then (table cfg).elim_plain
      else Db.eliminated_desc cfg ~zero_idiom:false),
     id_mov_elim)
  else if not (is_canonical cfg) then (Db.describe cfg i, id_fallback)
  else
    let t = table cfg in
    match Hashtbl.find t.slots (key i) with
    | id ->
      (match t.descs.(id) with
       | Some d -> (d, id)
       | None -> (Db.describe cfg i, id_fallback))
    | exception Not_found -> (Db.describe cfg i, id_fallback)

let describe cfg i = fst (describe_id cfg i)
