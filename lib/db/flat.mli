(** Flattened form-indexed instruction tables: [Db.describe] compiled
    once per microarchitecture into flat int/float arrays indexed by
    the dense form-id space of {!Forms}, served by O(1) array lookup
    with a correctness-preserving fallback to [Db.describe] for shapes
    outside the enumerated space (and for non-canonical configs, whose
    flipped feature flags the table does not bake in).

    The equivalence obligation — flat lookup = [Db.describe] on every
    form x every arch — is enforced by the [flat] analyzer family of
    [facile check] and by a differential qcheck over generated
    corpora (see DESIGN.md section 11). *)

open Facile_x86
open Facile_uarch

(** Number of enumerated forms (the id space is [0 .. n_forms - 1]). *)
val n_forms : int

(** The canonical instruction of a form id. *)
val form : int -> Inst.t

(** The shape key: a packed immediate int of every feature
    [Db.describe] dispatches on.  Key equality implies descriptor
    equality (verified exhaustively on the enumerated forms). *)
val key : Inst.t -> int

type table = private {
  cfg : Config.t;
  supported : bool array;
  fused : int array;
  issued : int array;
  latency : int array;
  latency_f : float array;
  avail : int array;
  flags : int array;
  uop_off : int array;
  uop_kind : int array;
  uop_ports : Port.t array;
  descs : Db.t option array;
  slots : (int, int) Hashtbl.t;
  ambiguous : (int * int) list;
  elim_zero : Db.t;
  elim_plain : Db.t;
}

(** Descriptor flag bits of the [flags] array. *)
val f_complex : int
val f_eliminated : int
val f_zero_idiom : int
val f_macro_fusible : int

(** µop kind codes of the [uop_kind] array. *)
val kind_code : Db.uop_kind -> int
val kind_of_code : int -> Db.uop_kind

(** The flat table of a microarchitecture (built once, cached;
    domain-safe). *)
val table : Config.t -> table

(** Whether [cfg] is the canonical record of its arch (the one in
    [Config.all]); only those are served from the table. *)
val is_canonical : Config.t -> bool

(** [describe cfg i] — same contract as [Db.describe] (including
    raising [Db.Unsupported]), served from the flat table when
    possible.  Table hits return a shared descriptor and allocate
    nothing. *)
val describe : Config.t -> Inst.t -> Db.t

(** [describe_id cfg i] additionally returns the form id served, or a
    negative marker: [-1] fallback, [-2] zero idiom, [-3] NOP,
    [-4] eliminated move (the rename-eliminated cases are decided per
    call because they depend on exact register identities the key
    ignores). *)
val describe_id : Config.t -> Inst.t -> Db.t * int

(** The form id [describe_id] would serve, without building the
    descriptor (used for block form signatures). *)
val id_of : Config.t -> Inst.t -> int
