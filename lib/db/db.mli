(** Per-(microarchitecture, instruction) performance characteristics —
    the role uops.info and the uiCA instruction data play for the
    original Facile implementation.

    The numbers follow published uops.info / optimization-manual values
    for the supported instruction subset; where exact per-SKU values are
    not public the table uses the family-typical value (see DESIGN.md).

    Domains, following the paper's terminology (§3.2):
    - {e fused-domain} µops as seen by decoders, DSB and LSD
      ([fused_uops]);
    - fused-domain µops {e after unlamination} as seen by the renamer
      ([issued_uops cfg inst]);
    - {e unfused-domain} µops dispatched to execution ports
      ([dispatched]). *)

open Facile_x86
open Facile_uarch

(** Role of a dispatched µop within its instruction; the simulator uses
    this to chain intra-instruction latencies (address generation →
    load → compute → store). *)
type uop_kind =
  | Load
  | Compute
  | Store_addr
  | Store_data
  | Div_pseudo
      (** extra occupancy of the (non-pipelined) divider port; carries
          no data dependency of its own *)

type uop = { kind : uop_kind; ports : Port.t }

type t = {
  fused_uops : int;            (** decode/DSB/LSD-domain µop count *)
  issued_uops : int;           (** after unlamination (renamer view) *)
  dispatched : uop list;       (** unfused µops with their port sets *)
  latency : int;               (** register-to-register result latency of
                                   the compute chain (load latency is the
                                   µarch's [load_latency] on top) *)
  complex_decode : bool;       (** must use the complex decoder *)
  available_simple_dec : int;  (** simple decoders usable in the same
                                   cycle (Algorithm 1, line 12) *)
  eliminated : bool;           (** handled at rename: dispatches nothing *)
  zero_idiom : bool;           (** dependency-breaking idiom *)
  macro_fusible : bool;        (** can macro-fuse with a following Jcc *)
}

(** [describe cfg inst] looks up the characteristics of [inst] on the
    microarchitecture [cfg].
    @raise Unsupported if the instruction does not exist on [cfg]
    (e.g. FMA before Haswell). *)
val describe : Config.t -> Inst.t -> t

exception Unsupported of string

(** [supported cfg inst] is [true] iff [describe] succeeds. *)
val supported : Config.t -> Inst.t -> bool

(** [is_zero_idiom inst] recognizes dependency-breaking idioms
    (XOR/SUB/PXOR/XORPS/... of a register with itself). *)
val is_zero_idiom : Inst.t -> bool

(** The pieces of [describe]'s preamble, exposed for the flat-table
    compiler ({!Flat}) which must reproduce them bit-for-bit before
    its array lookup. *)

(** @raise Unsupported when the instruction needs a feature the
    microarchitecture lacks (FMA/BMI/AVX2 before Haswell). *)
val check_supported : Config.t -> Inst.t -> unit

(** [is_reg_move_elimination cfg inst] — register-to-register moves
    eliminated at rename on [cfg]. *)
val is_reg_move_elimination : Config.t -> Inst.t -> bool

(** The descriptor of a rename-eliminated instruction (1 fused µop,
    nothing dispatched). *)
val eliminated_desc : Config.t -> zero_idiom:bool -> t
