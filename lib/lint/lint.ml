(* Driver for [facile lint]: walk the repo's own .ml sources, run the
   concurrency-discipline rule families over each parsed file, fold
   lock-acquisition edges into the global order graph, and report
   through the same Finding/report machinery as [facile check]. *)

module F = Facile_check.Finding
module A = Lint_ast

(* Rule families, in run order.  Stable names: the CLI's --only and
   the CI loop enumerate these via [facile lint --list]. *)
let rule_families = [ "lock"; "blocking"; "order"; "fields"; "handlers" ]

let family_doc = function
  | "lock" ->
    "raw Mutex.lock/unlock/try_lock and raw Condition.wait outside \
     lib/core/sync.ml; re-acquiring a held lock"
  | "blocking" -> "blocking calls (I/O, joins, queue pops) under a held lock"
  | "order" -> "cycles in the inter-module lock-acquisition graph"
  | "fields" ->
    "mutable record fields in concurrent code that are neither Atomic.t \
     nor mutex-guarded nor annotated (* lint: unguarded *)"
  | "handlers" -> "signal handlers and at_exit callbacks beyond Atomic flags"
  | f -> invalid_arg ("Lint.family_doc: " ^ f)

let default_roots = [ "lib"; "bin"; "test"; "bench"; "examples" ]

(* ----- source discovery ----- *)

(* Directories that hold sources which must not be linted: build
   artifacts, VCS internals, and the deliberately-bad fixture corpus
   (which tests lint file by file, on purpose). *)
let skip_dir name =
  name = "_build" || name = ".git" || name = "fixtures"

let rec walk acc path =
  if not (Sys.file_exists path) then acc
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if skip_dir entry then acc
        else walk acc (Filename.concat path entry))
      acc
      (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let discover roots =
  List.sort_uniq compare (List.fold_left walk [] roots)

(* ----- the run ----- *)

let validate_families fams =
  match List.filter (fun f -> not (List.mem f rule_families)) fams with
  | [] -> ()
  | bad ->
    invalid_arg
      (Printf.sprintf "Lint.run: unknown rule family %s (expected %s)"
         (String.concat "," bad)
         (String.concat "|" rule_families))

let run ?(families = rule_families) ?(roots = default_roots) () =
  validate_families families;
  let on f = List.mem f families in
  let files = discover roots in
  let findings = ref [] in
  let edges = ref [] in
  List.iter
    (fun path ->
      match A.load path with
      | exception A.Parse_failed { where; msg } ->
        findings :=
          F.error "lint-parse" where ("source does not parse: " ^ msg)
          :: !findings
      | src ->
        if on "lock" || on "blocking" || on "order" then begin
          let fs, es =
            Lock_rules.check ~lock:(on "lock") ~blocking:(on "blocking") src
          in
          findings := List.rev_append fs !findings;
          edges := List.rev_append es !edges
        end;
        if on "fields" then
          findings := List.rev_append (Field_rules.check src) !findings;
        if on "handlers" then
          findings := List.rev_append (Handler_rules.check src) !findings)
    files;
  if on "order" then
    findings :=
      List.rev_append (Lock_rules.order_findings (List.rev !edges)) !findings;
  (* coverage info so a silently-empty sweep is visible in the report *)
  findings :=
    F.info "lint-coverage" "lint"
      (Printf.sprintf "%d files scanned, %d lock-acquisition edges, %d rule \
                       families (%s)"
         (List.length files) (List.length !edges) (List.length families)
         (String.concat "," families))
    :: !findings;
  let findings = List.sort F.compare !findings in
  { Facile_check.Check.findings;
    n_error = F.count F.Error findings;
    n_warn = F.count F.Warn findings;
    n_info = F.count F.Info findings }
