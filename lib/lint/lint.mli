(** [facile lint]: AST-level concurrency-discipline analyzer over the
    repository's own OCaml sources, built on compiler-libs.  Rule
    catalog in DESIGN.md section 14. *)

(** Rule family names, in run order:
    ["lock"; "blocking"; "order"; "fields"; "handlers"]. *)
val rule_families : string list

(** One-line description of a family.
    @raise Invalid_argument on an unknown name. *)
val family_doc : string -> string

(** The directories scanned when no roots are given:
    ["lib"; "bin"; "test"; "bench"; "examples"]. *)
val default_roots : string list

(** [run ()] lints every .ml file under [roots] (directories are
    walked recursively, skipping [_build], [.git], and [fixtures];
    a root may also name a single file) with the selected rule
    [families], and folds the findings into a [facile check]-style
    report — errors first, with a coverage info line.
    @raise Invalid_argument on a family name outside
      {!rule_families} (the message lists the valid names). *)
val run :
  ?families:string list ->
  ?roots:string list ->
  unit ->
  Facile_check.Check.report
