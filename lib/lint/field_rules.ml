(* Atomic-discipline rule.

   field-unguarded   a [mutable] record field in concurrency-relevant
                     code that is neither [Atomic.t]-typed, nor in a
                     file that owns a mutex (a [Mutex.t] record field
                     or a [Mutex.create] at module level), nor
                     annotated [(* lint: unguarded — reason *)] on its
                     declaration line.

   Scope: files under lib/engine/ or lib/store/ — the concurrent
   serving stack — plus any file that spawns threads or domains
   itself.  Sequential analysis code (the model, the tables, the
   graph algorithms) mutates freely without annotations. *)

open Parsetree
module F = Facile_check.Finding
module A = Lint_ast

let norm_path p =
  String.map (fun c -> if c = '\\' then '/' else c) p

let iter_idents structure f =
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> f (A.last2 txt) loc
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let iter = { Ast_iterator.default_iterator with expr } in
  iter.Ast_iterator.structure iter structure

let spawns_concurrency src =
  let found = ref false in
  iter_idents src.A.structure (fun l2 _ ->
      if l2 = "Thread.create" || l2 = "Domain.spawn" then found := true);
  !found

let in_scope src =
  let p = norm_path src.A.path in
  A.contains p "lib/engine/" || A.contains p "lib/store/"
  || spawns_concurrency src

let type_last2 ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> A.last2 txt
  | _ -> ""

let is_atomic ty = type_last2 ty = "Atomic.t"

(* A file "owns a mutex" when some record declares a [Mutex.t] field
   or the module creates one at top level; its mutable fields are then
   presumed guarded by that mutex (the lock rules police the actual
   sections).  Files with no mutex at all must go field by field. *)
let owns_mutex src =
  let found = ref false in
  let typ it ty =
    if type_last2 ty = "Mutex.t" then found := true;
    Ast_iterator.default_iterator.typ it ty
  in
  let iter = { Ast_iterator.default_iterator with typ } in
  iter.Ast_iterator.structure iter src.A.structure;
  if not !found then
    iter_idents src.A.structure (fun l2 _ ->
        if l2 = "Mutex.create" then found := true);
  !found

let check src =
  if not (in_scope src) then []
  else if owns_mutex src then []
  else begin
    let findings = ref [] in
    let type_declaration it decl =
      (match decl.ptype_kind with
      | Ptype_record labels ->
        List.iter
          (fun ld ->
            if
              ld.pld_mutable = Asttypes.Mutable
              && (not (is_atomic ld.pld_type))
              && not (A.annotated_unguarded src ld.pld_loc)
            then
              findings :=
                F.error "field-unguarded"
                  (A.where_of_loc src ld.pld_loc)
                  (Printf.sprintf
                     "mutable field %s in concurrent code: make it \
                      Atomic.t, guard it with a module mutex, or annotate \
                      the line with (* lint: unguarded — reason *)"
                     ld.pld_name.Asttypes.txt)
                :: !findings)
          labels
      | _ -> ());
      Ast_iterator.default_iterator.type_declaration it decl
    in
    let iter = { Ast_iterator.default_iterator with type_declaration } in
    iter.Ast_iterator.structure iter src.A.structure;
    List.rev !findings
  end
