(* Shared front end for the lint rules: read one .ml source, parse it
   with the compiler's own parser (compiler-libs), and expose the raw
   line text alongside the AST.  Rules need both views — the parser
   drops comments, and the [(* lint: unguarded *)] annotation escape
   hatch lives in comments, so annotation checks scan the raw line of
   the flagged declaration. *)

type source = {
  path : string;     (* as given on the command line *)
  modname : string;  (* lowercase basename without extension *)
  lines : string array;  (* raw source lines, [lines.(n-1)] = line n *)
  structure : Parsetree.structure;
}

exception Parse_failed of { where : string; msg : string }

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let split_lines text = Array.of_list (String.split_on_char '\n' text)

let load path =
  let text =
    match read_file path with
    | t -> t
    | exception Sys_error msg -> raise (Parse_failed { where = path; msg })
  in
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  let structure =
    try Parse.implementation lexbuf with
    | e ->
      let where =
        Printf.sprintf "%s:%d" path lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum
      in
      raise (Parse_failed { where; msg = Printexc.to_string e })
  in
  { path;
    modname =
      String.lowercase_ascii
        (Filename.remove_extension (Filename.basename path));
    lines = split_lines text;
    structure }

(* ----- identifier paths ----- *)

let flatten lid = try Longident.flatten lid with Misc.Fatal_error -> []

let full_path lid = String.concat "." (flatten lid)

(* The last two path segments — "Stdlib.Unix.read" and "Unix.read"
   both become "Unix.read", which is how the rule tables name calls. *)
let last2 lid =
  match List.rev (flatten lid) with
  | x :: y :: _ -> y ^ "." ^ x
  | [ x ] -> x
  | [] -> ""

let last_segment lid =
  match List.rev (flatten lid) with x :: _ -> x | [] -> ""

(* ----- locations and annotations ----- *)

let line_of_loc (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let where_of_loc src loc = Printf.sprintf "%s:%d" src.path (line_of_loc loc)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* True when any raw source line spanned by [loc] carries the given
   comment annotation.  Annotations are the rules' explicit,
   grep-able escape hatch; each must state a reason. *)
let annotated src tag (loc : Location.t) =
  let first = loc.loc_start.Lexing.pos_lnum in
  let last = max first loc.loc_end.Lexing.pos_lnum in
  let ok = ref false in
  for n = first to last do
    if n >= 1 && n <= Array.length src.lines then
      if contains src.lines.(n - 1) tag then ok := true
  done;
  !ok

let annotated_unguarded src loc = annotated src "lint: unguarded" loc

(* [lint: raw-ok] allowlists a raw Mutex/Condition primitive on that
   line — reserved for code whose very subject is the primitive, like
   the lint self-tests proving a lock is re-acquirable after a raise. *)
let annotated_raw_ok src loc = annotated src "lint: raw-ok" loc
