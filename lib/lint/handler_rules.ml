(* Handler-safety rule.

   handler-unsafe    a [Sys.Signal_handle] function or an [at_exit]
                     callback that calls anything other than [Atomic]
                     operations.  Signal handlers run at arbitrary
                     points (possibly while a lock is held or a buffer
                     is half-written); the only safe action is flipping
                     an atomic flag for the main loop to notice.
                     [at_exit] runs during teardown when other domains
                     may still hold locks, so the same restriction
                     applies. *)

open Parsetree
module F = Facile_check.Finding
module A = Lint_ast

let first_segment lid =
  match A.flatten lid with x :: _ -> x | [] -> ""

(* Inside a handler body, applications must resolve into the Atomic
   module.  Bare identifier reads, field accesses, constants and
   constructors are fine — they cannot block or take locks. *)
let check_handler_body src kind body findings =
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _) ->
      if first_segment txt <> "Atomic" then
        findings :=
          F.error "handler-unsafe" (A.where_of_loc src loc)
            (Printf.sprintf
               "%s calls %s: handlers may only touch Atomic flags (locks, \
                I/O, and allocation-heavy work are unsafe here)"
               kind (A.full_path txt))
          :: !findings
    | Pexp_apply (_, _) ->
      findings :=
        F.error "handler-unsafe" (A.where_of_loc src e.pexp_loc)
          (Printf.sprintf
             "%s applies a computed function: handlers may only touch \
              Atomic flags"
             kind)
        :: !findings
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let iter = { Ast_iterator.default_iterator with expr } in
  iter.Ast_iterator.expr iter body

let check src =
  let findings = ref [] in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_construct ({ txt; _ }, Some handler)
      when A.last_segment txt = "Signal_handle" ->
      check_handler_body src "signal handler" handler findings
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt; _ }; _ },
          [ (Asttypes.Nolabel, callback) ] )
      when A.last_segment txt = "at_exit" ->
      check_handler_body src "at_exit callback" callback findings
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let iter = { Ast_iterator.default_iterator with expr } in
  iter.Ast_iterator.structure iter src.A.structure;
  List.rev !findings
