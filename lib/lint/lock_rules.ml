(* Lock-discipline rules over one parsed source file.

   lock-raw-mutex    Mutex.lock / Mutex.unlock / Mutex.try_lock anywhere
                     outside lib/core/sync.ml.  A raw pair cannot prove
                     the unlock runs on exceptional paths; Sync.with_lock
                     can, structurally.
   lock-raw-wait     Condition.wait outside sync.ml — the wait idiom is
                     Sync.with_lock_cond, which owns the surrounding
                     lock/predicate loop.
   lock-self-relock  Sync.with_lock on a lock that is syntactically
                     already held — OCaml mutexes are not reentrant, so
                     this is a guaranteed deadlock (or undefined
                     behaviour) the moment the path executes.
   lock-blocking     a known-blocking call (socket/file I/O, thread or
                     domain joins, queue pops, store I/O) made while a
                     Sync.with_lock section is syntactically open.

   The analysis is intraprocedural and syntactic: a blocking call hidden
   behind a function value passed into a critical section is not seen.
   That bounds the rule to zero false positives on closure-polymorphic
   helpers at the price of known false negatives, which the fixture
   corpus documents. *)

open Parsetree
module F = Facile_check.Finding
module A = Lint_ast

type edge = { e_from : string; e_to : string; e_where : string }

let raw_mutex_calls = [ "Mutex.lock"; "Mutex.unlock"; "Mutex.try_lock" ]

let blocking_calls =
  [ "Unix.read"; "Unix.write"; "Unix.select"; "Unix.sleep"; "Unix.sleepf";
    "Unix.fsync"; "Unix.accept"; "Unix.connect"; "Unix.recv"; "Unix.send";
    "Unix.waitpid"; "Thread.delay"; "Thread.join"; "Domain.join";
    "Bqueue.pop"; "Store.append"; "Store.load"; "Store.flush" ]

(* sync.ml implements the combinators; it is the one file allowed to
   touch the raw primitives. *)
let exempt_file src = Filename.basename src.A.path = "sync.ml"

(* Name a lock expression for the acquisition graph: the record field
   or identifier it loads, qualified by the defining module so
   "engine.mutex" and "supervise.mu" stay distinct across files. *)
let lock_name src e =
  let base =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> A.last_segment txt
    | Pexp_field (_, { txt; _ }) -> A.last_segment txt
    | _ -> "<expr>"
  in
  src.A.modname ^ "." ^ base

type lock_call =
  | Plain of expression * (Asttypes.arg_label * expression) list
  | Cond of expression * (Asttypes.arg_label * expression) list

(* Recognize [Sync.with_lock mu body] / [Sync.with_lock_cond mu cond
   ~until body] applications, by the callee's final path segment so
   module aliases ([module Sync = Facile_core.Sync]) are covered. *)
let as_lock_call e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, mu) :: rest)
    -> (
    match A.last_segment txt with
    | "with_lock" -> Some (Plain (mu, rest))
    | "with_lock_cond" -> Some (Cond (mu, rest))
    | _ -> None)
  | _ -> None

let check ~lock ~blocking src =
  let findings = ref [] in
  let edges = ref [] in
  let held = ref [] in (* innermost-first stack of held lock names *)
  let add sev rule loc msg =
    findings := F.v sev rule (A.where_of_loc src loc) msg :: !findings
  in
  let exempt = exempt_file src in
  let expr it e =
    match as_lock_call e with
    | Some call ->
      let mu, under, outside =
        match call with
        | Plain (mu, rest) -> (mu, List.map snd rest, [])
        (* with_lock_cond: the condition variable argument is evaluated
           outside the section; ~until and the body run inside it *)
        | Cond (mu, rest) -> (
          match rest with
          | (_, cond) :: rest -> (mu, List.map snd rest, [ cond ])
          | [] -> (mu, [], []))
      in
      let name = lock_name src mu in
      if lock && List.mem name !held then
        add F.Error "lock-self-relock" e.pexp_loc
          (Printf.sprintf
             "lock %s is already held here; OCaml mutexes are not reentrant"
             name);
      (match !held with
      | outer :: _ ->
        edges :=
          { e_from = outer; e_to = name;
            e_where = A.where_of_loc src e.pexp_loc }
          :: !edges
      | [] -> ());
      it.Ast_iterator.expr it mu;
      List.iter (it.Ast_iterator.expr it) outside;
      held := name :: !held;
      List.iter (it.Ast_iterator.expr it) under;
      held := List.tl !held
    | None -> (
      (match e.pexp_desc with
      | Pexp_ident { txt; loc } ->
        let l2 = A.last2 txt in
        let allowed = exempt || A.annotated_raw_ok src loc in
        if lock && (not allowed) && List.mem l2 raw_mutex_calls then
          add F.Error "lock-raw-mutex" loc
            (Printf.sprintf
               "raw %s: critical sections must use Sync.with_lock so the \
                lock is released on exceptional paths"
               l2)
        else if lock && (not allowed) && l2 = "Condition.wait" then
          add F.Error "lock-raw-wait" loc
            "raw Condition.wait: use Sync.with_lock_cond, which owns the \
             lock/predicate loop"
        else if blocking && !held <> [] && List.mem l2 blocking_calls then
          add F.Error "lock-blocking" loc
            (Printf.sprintf
               "blocking call %s while holding lock %s: move it outside \
                the critical section"
               l2
               (List.hd !held))
      | _ -> ());
      Ast_iterator.default_iterator.expr it e)
  in
  let iter = { Ast_iterator.default_iterator with expr } in
  iter.Ast_iterator.structure iter src.A.structure;
  (List.rev !findings, List.rev !edges)

(* ----- lock-order cycle detection over the whole run ----- *)

(* DFS over the acquisition edges collected from every file; any cycle
   means two code paths can acquire the same locks in opposite orders
   and deadlock under concurrency. *)
let order_findings edges =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt adj e.e_from) in
      if not (List.exists (fun (t, _) -> t = e.e_to) cur) then
        Hashtbl.replace adj e.e_from ((e.e_to, e.e_where) :: cur))
    edges;
  let nodes =
    List.sort_uniq compare
      (List.concat_map (fun e -> [ e.e_from; e.e_to ]) edges)
  in
  let color = Hashtbl.create 16 in (* 1 = on stack, 2 = done *)
  let findings = ref [] in
  let rec dfs path node =
    match Hashtbl.find_opt color node with
    | Some 2 -> ()
    | Some _ ->
      let cycle =
        match List.mapi (fun i n -> (i, n)) (List.rev path) with
        | l -> (
          match List.find_opt (fun (_, n) -> n = node) l with
          | Some (i, _) ->
            List.filter_map
              (fun (j, n) -> if j >= i then Some n else None)
              l
          | None -> List.rev path)
      in
      let where =
        match
          List.find_opt (fun e -> e.e_from = node || e.e_to = node) edges
        with
        | Some e -> e.e_where
        | None -> "lint"
      in
      findings :=
        F.error "lock-order-cycle" where
          (Printf.sprintf
             "lock acquisition cycle: %s -> %s — two paths can take these \
              locks in opposite orders and deadlock"
             (String.concat " -> " cycle) node)
        :: !findings
    | None ->
      Hashtbl.replace color node 1;
      List.iter
        (fun (t, _) -> dfs (node :: path) t)
        (Option.value ~default:[] (Hashtbl.find_opt adj node));
      Hashtbl.replace color node 2
  in
  List.iter (fun n -> dfs [] n) nodes;
  List.rev !findings
