(** Maximum cycle ratio: the largest value of
    [sum of edge weights / sum of edge counts] over all directed cycles.

    This is the quantity the Precedence component computes on the
    dependence graph (the recurrence-constrained minimum initiation
    interval of modulo scheduling). Two independent algorithms are
    provided; they agree on all inputs (property-tested) and the
    Howard implementation is the fast one used by Facile, as in the
    paper [16, 18]. *)

(** [howard g] computes the maximum cycle ratio by policy iteration
    (Howard's algorithm). Returns [None] when the graph is acyclic.
    @raise Failure if some cycle has total count 0 but positive weight
    (an infinite ratio — dependence graphs never contain such cycles). *)
val howard : Digraph.t -> float option

(** [howard_flat ~n ~m ~src ~dst ~weight ~count] is [howard] on a graph
    given as parallel edge arrays (first [m] entries, in the order the
    edges would have been [add_edge]d), with all working storage in a
    domain-local scratch that only grows — the allocation-free spelling
    used by the Precedence hot path. Iteration orders mirror [howard]
    exactly, so the two return identical floats on the same graph. *)
val howard_flat :
  n:int ->
  m:int ->
  src:int array ->
  dst:int array ->
  weight:float array ->
  count:int array ->
  float option

(** [lawler g] computes the same value by binary search over candidate
    ratios with positive-cycle detection (Bellman-Ford). Slower but
    independent; used to cross-check [howard]. [epsilon] bounds the
    absolute error (default [1e-9]). *)
val lawler : ?epsilon:float -> Digraph.t -> float option

(** [critical_cycle g r] returns the edges of a cycle whose ratio is at
    least [r - 1e-6], if one exists — the "dependency chain with maximal
    latency" Facile reports for interpretability. *)
val critical_cycle : Digraph.t -> float -> Digraph.edge list option
