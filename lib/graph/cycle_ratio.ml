let eps = 1e-9

(* A very negative finite sentinel used instead of [neg_infinity] so
   that [r * count] never produces NaN for count = 0. *)
let minus_huge = -1e30

(* ------------------------------------------------------------------ *)
(* Lawler's parametric search with positive-cycle detection.           *)

(* Does the graph contain a cycle of positive weight under the edge
   reweighting [w - r * t]? Bellman-Ford from a virtual super-source. *)
let has_positive_cycle g rho =
  let n = Digraph.n_nodes g in
  let dist = Array.make (max n 1) 0.0 in
  let edges = Digraph.edges g in
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass <= n do
    changed := false;
    incr pass;
    List.iter
      (fun e ->
        let w = e.Digraph.weight -. (rho *. float_of_int e.Digraph.count) in
        if dist.(e.Digraph.src) +. w > dist.(e.Digraph.dst) +. 1e-12 then begin
          dist.(e.Digraph.dst) <- dist.(e.Digraph.src) +. w;
          changed := true
        end)
      edges
  done;
  !changed

let lawler ?(epsilon = 1e-9) g =
  let bound =
    List.fold_left
      (fun acc e -> acc +. abs_float e.Digraph.weight)
      1.0 (Digraph.edges g)
  in
  let lo = -.bound and hi = bound in
  if has_positive_cycle g hi then
    failwith "Cycle_ratio.lawler: cycle with zero count";
  if not (has_positive_cycle g lo) then None
  else begin
    let lo = ref lo and hi = ref hi in
    while !hi -. !lo > epsilon do
      let mid = 0.5 *. (!lo +. !hi) in
      if has_positive_cycle g mid then lo := mid else hi := mid
    done;
    Some (0.5 *. (!lo +. !hi))
  end

(* ------------------------------------------------------------------ *)
(* Howard's policy iteration for the maximum cycle ratio.              *)

let howard g =
  let n = Digraph.n_nodes g in
  if n = 0 then None
  else begin
    (* Trim to the cyclic core: repeatedly drop nodes with no outgoing
       edge into the remaining set. Every surviving policy path then
       necessarily reaches a cycle, so node ratios stay finite and the
       improvement step cannot get stuck behind a sink. *)
    let alive = Array.make n true in
    let changed = ref true in
    while !changed do
      changed := false;
      for u = 0 to n - 1 do
        if alive.(u) then begin
          let has_out =
            List.exists
              (fun e -> alive.(e.Digraph.dst))
              (Digraph.out_edges g u)
          in
          if not has_out then begin
            alive.(u) <- false;
            changed := true
          end
        end
      done
    done;
    let out =
      Array.init n (fun u ->
          if not alive.(u) then [||]
          else
            Array.of_list
              (List.filter
                 (fun e -> alive.(e.Digraph.dst))
                 (Digraph.out_edges g u)))
    in
    let policy =
      Array.init n (fun u -> if Array.length out.(u) = 0 then None else Some out.(u).(0))
    in
    let r = Array.make n minus_huge in
    let d = Array.make n 0.0 in
    (* Evaluate the current policy: every node following its policy edge
       either reaches a cycle (giving it that cycle's ratio) or a sink
       (ratio stays [minus_huge]). *)
    let evaluate () =
      let state = Array.make n 0 in
      (* 0 = white, 1 = on current path, 2 = done *)
      Array.fill r 0 n minus_huge;
      Array.fill d 0 n 0.0;
      for s = 0 to n - 1 do
        if state.(s) = 0 then begin
          (* follow the policy, recording the path *)
          let path = ref [] in
          let u = ref s in
          let stop = ref false in
          while not !stop do
            state.(!u) <- 1;
            path := !u :: !path;
            match policy.(!u) with
            | None ->
              (* sink: ratio minus_huge *)
              state.(!u) <- 2;
              stop := true
            | Some e ->
              if state.(e.Digraph.dst) = 1 then begin
                (* found a new cycle: e.dst .. !u *)
                let rec cycle_nodes acc = function
                  | [] -> assert false
                  | v :: rest ->
                    if v = e.Digraph.dst then v :: acc
                    else cycle_nodes (v :: acc) rest
                in
                let cyc = cycle_nodes [] !path in
                let sum_w = ref 0.0 and sum_t = ref 0 in
                List.iter
                  (fun v ->
                    match policy.(v) with
                    | Some pe ->
                      sum_w := !sum_w +. pe.Digraph.weight;
                      sum_t := !sum_t + pe.Digraph.count
                    | None -> assert false)
                  cyc;
                let rc =
                  if !sum_t = 0 then
                    if !sum_w > eps then
                      failwith "Cycle_ratio.howard: cycle with zero count"
                    else minus_huge
                  else !sum_w /. float_of_int !sum_t
                in
                (* set d around the cycle: root = e.dst with d = 0, then
                   in reverse cycle order *)
                List.iter (fun v -> r.(v) <- rc; state.(v) <- 2) cyc;
                d.(e.Digraph.dst) <- 0.0;
                let rev = List.rev cyc in
                (* rev = [ u_k; ...; u_1; root ], where policy u_k = root *)
                List.iter
                  (fun v ->
                    if v <> e.Digraph.dst then
                      match policy.(v) with
                      | Some pe ->
                        d.(v) <-
                          pe.Digraph.weight
                          -. (rc *. float_of_int pe.Digraph.count)
                          +. d.(pe.Digraph.dst)
                      | None -> assert false)
                  rev;
                stop := true
              end
              else if state.(e.Digraph.dst) = 2 then begin
                state.(!u) <- 2;
                stop := true
              end
              else u := e.Digraph.dst
          done;
          (* unwind the path: propagate from each node's successor *)
          List.iter
            (fun v ->
              if state.(v) = 1 || (state.(v) = 2 && r.(v) = minus_huge) then begin
                (match policy.(v) with
                 | None -> r.(v) <- minus_huge; d.(v) <- 0.0
                 | Some pe ->
                   let w = pe.Digraph.dst in
                   if r.(w) <= minus_huge /. 2.0 then begin
                     r.(v) <- minus_huge; d.(v) <- 0.0
                   end
                   else begin
                     r.(v) <- r.(w);
                     d.(v) <-
                       pe.Digraph.weight
                       -. (r.(w) *. float_of_int pe.Digraph.count)
                       +. d.(w)
                   end);
                state.(v) <- 2
              end)
            !path
        end
      done
    in
    (* Improve: for each node pick the out-edge with the
       lexicographically best (successor ratio, reduced value). The
       current policy edge is scored with the same formula, so a switch
       happens only on a strict improvement. *)
    let improve () =
      let improved = ref false in
      for u = 0 to n - 1 do
        match policy.(u) with
        | None -> ()
        | Some cur ->
          let score e =
            let v = e.Digraph.dst in
            ( r.(v),
              e.Digraph.weight
              -. (r.(v) *. float_of_int e.Digraph.count)
              +. d.(v) )
          in
          let better (r1, v1) (r2, v2) =
            r1 > r2 +. eps
            || (abs_float (r1 -. r2) <= eps && v1 > v2 +. 1e-6)
          in
          let best = ref cur and best_score = ref (score cur) in
          Array.iter
            (fun e ->
              let s = score e in
              if better s !best_score then begin
                best := e;
                best_score := s
              end)
            out.(u);
          if !best != cur then begin
            policy.(u) <- Some !best;
            improved := true
          end
      done;
      !improved
    in
    let guard = ref ((n * Digraph.n_edges g) + 64) in
    evaluate ();
    while improve () && !guard > 0 do
      decr guard;
      evaluate ()
    done;
    if !guard <= 0 then
      (* extremely defensive: fall back to the parametric search *)
      lawler g
    else begin
      let best = Array.fold_left max minus_huge r in
      if best <= minus_huge /. 2.0 then None else Some best
    end
  end

(* ------------------------------------------------------------------ *)
(* Howard's algorithm on raw edge arrays.

   [howard_flat] is the allocation-free spelling used by the Precedence
   hot path: the caller supplies the graph as parallel arrays (edges in
   insertion order, exactly as [Digraph.add_edge] would have received
   them) and all working storage lives in a domain-local scratch that
   only grows. The control flow and, crucially, every iteration order
   (out-edges in insertion order, path unwinding from the top of the
   stack, cycle summation from the cycle root forward) mirror [howard]
   above, so the two return bit-identical floats on the same graph —
   property-tested in test/test_graph.ml. *)

type scratch = {
  mutable s_alive : bool array;
  mutable s_off0 : int array;  (* full CSR offsets (n+1) *)
  mutable s_adj0 : int array;  (* full CSR edge ids, insertion order *)
  mutable s_off : int array;  (* alive-filtered CSR offsets (n+1) *)
  mutable s_adj : int array;
  mutable s_cur : int array;  (* CSR fill cursors *)
  mutable s_policy : int array;  (* edge id, or -1 for sinks *)
  mutable s_r : float array;
  mutable s_d : float array;
  mutable s_state : int array;
  mutable s_stack : int array;
  s_tmp : float array;
      (* running float accumulators; OCaml float refs box on every
         update, float-array cells don't *)
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { s_alive = [||]; s_off0 = [||]; s_adj0 = [||]; s_off = [||];
        s_adj = [||]; s_cur = [||]; s_policy = [||]; s_r = [||];
        s_d = [||]; s_state = [||]; s_stack = [||];
        s_tmp = Array.make 4 0.0 })

let cap n =
  let c = ref 16 in
  while !c < n do
    c := !c * 2
  done;
  !c

let grow_i buf n = if Array.length buf >= n then buf else Array.make (cap n) 0

let grow_b buf n =
  if Array.length buf >= n then buf else Array.make (cap n) false

let grow_f buf n =
  if Array.length buf >= n then buf else Array.make (cap n) 0.0

let howard_flat ~n ~m ~src ~dst ~weight ~count =
  if n = 0 then None
  else begin
    let s = Domain.DLS.get scratch_key in
    (* Full CSR over all edges, per-source buckets in insertion order. *)
    let off0 = grow_i s.s_off0 (n + 1) in
    s.s_off0 <- off0;
    let adj0 = grow_i s.s_adj0 (max m 1) in
    s.s_adj0 <- adj0;
    let cur = grow_i s.s_cur (n + 1) in
    s.s_cur <- cur;
    Array.fill off0 0 (n + 1) 0;
    for k = 0 to m - 1 do
      off0.(src.(k) + 1) <- off0.(src.(k) + 1) + 1
    done;
    for u = 1 to n do
      off0.(u) <- off0.(u) + off0.(u - 1)
    done;
    Array.blit off0 0 cur 0 n;
    for k = 0 to m - 1 do
      let u = src.(k) in
      adj0.(cur.(u)) <- k;
      cur.(u) <- cur.(u) + 1
    done;
    (* Trim to the cyclic core (same fixpoint as [howard]). *)
    let alive = grow_b s.s_alive n in
    s.s_alive <- alive;
    Array.fill alive 0 n true;
    let changed = ref true in
    while !changed do
      changed := false;
      for u = 0 to n - 1 do
        if alive.(u) then begin
          let has_out = ref false in
          for k = off0.(u) to off0.(u + 1) - 1 do
            if alive.(dst.(adj0.(k))) then has_out := true
          done;
          if not !has_out then begin
            alive.(u) <- false;
            changed := true
          end
        end
      done
    done;
    (* Alive-filtered CSR; dead sources keep empty buckets. *)
    let off = grow_i s.s_off (n + 1) in
    s.s_off <- off;
    let adj = grow_i s.s_adj (max m 1) in
    s.s_adj <- adj;
    Array.fill off 0 (n + 1) 0;
    for k = 0 to m - 1 do
      if alive.(src.(k)) && alive.(dst.(k)) then
        off.(src.(k) + 1) <- off.(src.(k) + 1) + 1
    done;
    for u = 1 to n do
      off.(u) <- off.(u) + off.(u - 1)
    done;
    Array.blit off 0 cur 0 n;
    for k = 0 to m - 1 do
      let u = src.(k) in
      if alive.(u) && alive.(dst.(k)) then begin
        adj.(cur.(u)) <- k;
        cur.(u) <- cur.(u) + 1
      end
    done;
    let policy = grow_i s.s_policy n in
    s.s_policy <- policy;
    for u = 0 to n - 1 do
      policy.(u) <- (if off.(u + 1) > off.(u) then adj.(off.(u)) else -1)
    done;
    let r = grow_f s.s_r n in
    s.s_r <- r;
    let d = grow_f s.s_d n in
    s.s_d <- d;
    let state = grow_i s.s_state n in
    s.s_state <- state;
    let stack = grow_i s.s_stack n in
    s.s_stack <- stack;
    let tmp = s.s_tmp in
    let evaluate () =
      Array.fill state 0 n 0;
      (* 0 = white, 1 = on current path, 2 = done *)
      Array.fill r 0 n minus_huge;
      Array.fill d 0 n 0.0;
      for s0 = 0 to n - 1 do
        if state.(s0) = 0 then begin
          let sp = ref 0 in
          let u = ref s0 in
          let stop = ref false in
          while not !stop do
            state.(!u) <- 1;
            stack.(!sp) <- !u;
            incr sp;
            let pe = policy.(!u) in
            if pe < 0 then begin
              (* sink: ratio minus_huge *)
              state.(!u) <- 2;
              stop := true
            end
            else begin
              let v = dst.(pe) in
              if state.(v) = 1 then begin
                (* found a new cycle: v .. !u on top of the stack *)
                let root = ref (!sp - 1) in
                while stack.(!root) <> v do
                  decr root
                done;
                tmp.(0) <- 0.0;
                let sum_t = ref 0 in
                for j = !root to !sp - 1 do
                  let p = policy.(stack.(j)) in
                  tmp.(0) <- tmp.(0) +. weight.(p);
                  sum_t := !sum_t + count.(p)
                done;
                let rc =
                  if !sum_t = 0 then
                    if tmp.(0) > eps then
                      failwith "Cycle_ratio.howard: cycle with zero count"
                    else minus_huge
                  else tmp.(0) /. float_of_int !sum_t
                in
                for j = !root to !sp - 1 do
                  r.(stack.(j)) <- rc;
                  state.(stack.(j)) <- 2
                done;
                d.(v) <- 0.0;
                for j = !sp - 1 downto !root do
                  let x = stack.(j) in
                  if x <> v then begin
                    let p = policy.(x) in
                    d.(x) <-
                      weight.(p)
                      -. (rc *. float_of_int count.(p))
                      +. d.(dst.(p))
                  end
                done;
                stop := true
              end
              else if state.(v) = 2 then begin
                state.(!u) <- 2;
                stop := true
              end
              else u := v
            end
          done;
          (* unwind the path: propagate from each node's successor *)
          for j = !sp - 1 downto 0 do
            let v = stack.(j) in
            if state.(v) = 1 || (state.(v) = 2 && r.(v) = minus_huge) then begin
              let p = policy.(v) in
              (if p < 0 then begin
                 r.(v) <- minus_huge;
                 d.(v) <- 0.0
               end
               else begin
                 let w = dst.(p) in
                 if r.(w) <= minus_huge /. 2.0 then begin
                   r.(v) <- minus_huge;
                   d.(v) <- 0.0
                 end
                 else begin
                   r.(v) <- r.(w);
                   d.(v) <-
                     weight.(p)
                     -. (r.(w) *. float_of_int count.(p))
                     +. d.(w)
                 end
               end);
              state.(v) <- 2
            end
          done
        end
      done
    in
    let improve () =
      let improved = ref false in
      for u = 0 to n - 1 do
        let curp = policy.(u) in
        if curp >= 0 then begin
          let best = ref curp in
          (* tmp.(1) = best ratio, tmp.(2) = best value *)
          tmp.(1) <- r.(dst.(curp));
          tmp.(2) <-
            weight.(curp)
            -. (r.(dst.(curp)) *. float_of_int count.(curp))
            +. d.(dst.(curp));
          for k = off.(u) to off.(u + 1) - 1 do
            let e = adj.(k) in
            let r2 = r.(dst.(e)) in
            let v2 =
              weight.(e) -. (r2 *. float_of_int count.(e)) +. d.(dst.(e))
            in
            if
              r2 > tmp.(1) +. eps
              || (abs_float (r2 -. tmp.(1)) <= eps && v2 > tmp.(2) +. 1e-6)
            then begin
              best := e;
              tmp.(1) <- r2;
              tmp.(2) <- v2
            end
          done;
          if !best <> curp then begin
            policy.(u) <- !best;
            improved := true
          end
        end
      done;
      !improved
    in
    let guard = ref ((n * m) + 64) in
    evaluate ();
    while improve () && !guard > 0 do
      decr guard;
      evaluate ()
    done;
    if !guard <= 0 then begin
      (* extremely defensive: fall back to the parametric search on a
         materialized graph (never reached on dependence graphs) *)
      let g = Digraph.create ~n in
      for k = 0 to m - 1 do
        Digraph.add_edge g ~src:src.(k) ~dst:dst.(k) ~weight:weight.(k)
          ~count:count.(k)
      done;
      lawler g
    end
    else begin
      tmp.(3) <- minus_huge;
      for u = 0 to n - 1 do
        if r.(u) > tmp.(3) then tmp.(3) <- r.(u)
      done;
      if tmp.(3) <= minus_huge /. 2.0 then None else Some tmp.(3)
    end
  end

(* ------------------------------------------------------------------ *)

let critical_cycle g r =
  let n = Digraph.n_nodes g in
  if n = 0 then None
  else begin
    let rho = r -. 1e-6 in
    let dist = Array.make n 0.0 in
    let pred = Array.make n None in
    let edges = Digraph.edges g in
    let last_updated = ref (-1) in
    for _pass = 0 to n do
      last_updated := -1;
      List.iter
        (fun e ->
          let w = e.Digraph.weight -. (rho *. float_of_int e.Digraph.count) in
          if dist.(e.Digraph.src) +. w > dist.(e.Digraph.dst) +. 1e-12 then begin
            dist.(e.Digraph.dst) <- dist.(e.Digraph.src) +. w;
            pred.(e.Digraph.dst) <- Some e;
            last_updated := e.Digraph.dst
          end)
        edges
    done;
    if !last_updated < 0 then None
    else begin
      (* walk back n steps to land inside the cycle, then collect it *)
      let u = ref !last_updated in
      for _ = 1 to n do
        match pred.(!u) with
        | Some e -> u := e.Digraph.src
        | None -> ()
      done;
      let start = !u in
      let rec collect v acc =
        match pred.(v) with
        | None -> None
        | Some e ->
          let acc = e :: acc in
          if e.Digraph.src = start then Some acc else collect e.Digraph.src acc
      in
      collect start []
    end
  end
