type edge = { src : int; dst : int; weight : float; count : int }

type t = {
  n : int;
  out : edge list array;
  mutable all : edge list;  (* reverse insertion order *)
  mutable m : int;
}

let create ~n =
  if n < 0 then invalid_arg "Digraph.create";
  { n; out = Array.make (max n 1) []; all = []; m = 0 }

let n_nodes g = g.n

let add_edge g ~src ~dst ~weight ~count =
  if src < 0 || src >= g.n || dst < 0 || dst >= g.n then
    invalid_arg "Digraph.add_edge: node out of range";
  if count < 0 then invalid_arg "Digraph.add_edge: negative count";
  let e = { src; dst; weight; count } in
  g.out.(src) <- e :: g.out.(src);
  g.all <- e :: g.all;
  g.m <- g.m + 1

let out_edges g u = List.rev g.out.(u)
let edges g = List.rev g.all
let n_edges g = g.m
