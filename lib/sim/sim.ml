open Facile_x86
open Facile_uarch
open Facile_db
open Facile_core

type fidelity = Hardware | Model

let unreached = max_int

(* ------------------------------------------------------------------ *)
(* Dynamic (per-instance) instruction and µop state                    *)

type duop = {
  ukind : Db.uop_kind;
  uports : Port.t;
  mutable bound_port : int;          (* Hardware fidelity: set at rename *)
  mutable dep_uops : duop list;      (* intra-instruction ordering *)
  res_deps : dyn list;               (* data-producing instructions *)
  mutable done_cycle : int;
  mutable is_result : bool;
  mutable result_latency : int;
}

and dyn = {
  iter : int;
  idx : int;
  uops : duop array;
  issued_slots : int;
  mutable result_time : int;
}

type producer = Ready | P of dyn

(* Address registers feeding loads / store-address µops. *)
let addr_resources (l : Block.logical) =
  List.concat_map
    (fun inst ->
      match Inst.mem_operand inst with
      | Some m ->
        let base =
          match m.Operand.base with
          | Some g -> [ Semantics.Reg (Register.Gpr (Register.W64, g)) ]
          | None -> []
        in
        let index =
          match m.Operand.index with
          | Some (g, _) -> [ Semantics.Reg (Register.Gpr (Register.W64, g)) ]
          | None -> []
        in
        base @ index
      | None -> [])
    l.Block.insts

(* ------------------------------------------------------------------ *)
(* Front-end µop streams: per logical-instruction instance, in program  *)
(* order, the front-end cycle at which its µops are fully in the IDQ.   *)

type fe_stream = {
  mutable next_iter : int;
  mutable next_idx : int;
  gen : int -> int -> int; (* iter -> idx -> ready cycle *)
}

let make_stream gen = { next_iter = 0; next_idx = 0; gen }

let stream_next n (s : fe_stream) =
  let iter = s.next_iter and idx = s.next_idx in
  let ready = s.gen iter idx in
  if idx + 1 = n then begin
    s.next_iter <- iter + 1;
    s.next_idx <- 0
  end
  else s.next_idx <- idx + 1;
  (ready, iter, idx)

(* --- legacy decode path (predecoder + decoders) ------------------- *)

(* Per-period predecode finish times, one entry per raw instruction per
   period copy, using the same block/cycle accounting as the Predec
   component. *)
let predecode_schedule (b : Block.t) ~mode =
  let l = b.Block.len in
  let width = b.Block.cfg.Config.predecode_width in
  let rec gcd a c = if c = 0 then a else gcd c (a mod c) in
  let u = match mode with `Unrolled -> 16 / gcd l 16 | `Loop -> 1 in
  let n_blocks =
    match mode with `Unrolled -> u * l / 16 | `Loop -> (l + 15) / 16
  in
  let n_entries = List.length b.Block.entries in
  let last_count = Array.make n_blocks 0 in
  let opcode_count = Array.make n_blocks 0 in
  let lcp_count = Array.make n_blocks 0 in
  let entry_block = Array.make (max 1 (u * n_entries)) 0 in
  let entry_ord = Array.make (max 1 (u * n_entries)) 0 in
  for copy = 0 to u - 1 do
    List.iteri
      (fun k (e : Block.entry) ->
        let lay = e.Block.layout in
        let last = (copy * l) + lay.Encode.off + lay.Encode.len - 1 in
        let opc = (copy * l) + lay.Encode.nominal_opcode_off in
        let last_b = last / 16 in
        let opc_b = opc / 16 in
        entry_block.((copy * n_entries) + k) <- last_b;
        entry_ord.((copy * n_entries) + k) <- last_count.(last_b);
        last_count.(last_b) <- last_count.(last_b) + 1;
        if opc_b <> last_b then
          opcode_count.(opc_b) <- opcode_count.(opc_b) + 1;
        if lay.Encode.lcp then lcp_count.(opc_b) <- lcp_count.(opc_b) + 1)
      b.Block.entries
  done;
  let cyc_nlcp bi =
    (last_count.(bi) + opcode_count.(bi) + width - 1) / width
  in
  let block_start = Array.make (n_blocks + 1) 0 in
  for bi = 0 to n_blocks - 1 do
    let prev = (bi + n_blocks - 1) mod n_blocks in
    let lcp_cycles = max 0 ((3 * lcp_count.(bi)) - (cyc_nlcp prev - 1)) in
    block_start.(bi + 1) <- block_start.(bi) + cyc_nlcp bi + lcp_cycles
  done;
  let period_cycles = max 1 block_start.(n_blocks) in
  let time copy k =
    let i = (copy * n_entries) + k in
    block_start.(entry_block.(i)) + (entry_ord.(i) / width) + 1
  in
  (u, period_cycles, time)

let complex_cycles (l : Block.logical) =
  if l.Block.fused_uops > 4 then (l.Block.fused_uops + 3) / 4 else 1

let decode_stream (b : Block.t) ~mode ~branch_bubble =
  let cfg = b.Block.cfg in
  let u, period, predec_time_entry = predecode_schedule b ~mode in
  (* raw-entry index of each logical's last instruction *)
  let logical_last_entry =
    let rec walk entry_idx = function
      | (a : Block.entry) :: _ :: rest when a.Block.fuses_with_next ->
        (entry_idx + 1) :: walk (entry_idx + 2) rest
      | _ :: rest -> entry_idx :: walk (entry_idx + 1) rest
      | [] -> []
    in
    Array.of_list (walk 0 b.Block.entries)
  in
  let logicals = Array.of_list b.Block.logicals in
  let predec_time iter idx =
    let q = iter / u and copy = iter mod u in
    (q * period) + predec_time_entry copy logical_last_entry.(idx)
  in
  let ndec = cfg.Config.n_decoders in
  let dec_cycle = ref 0 in
  let n_avail = ref 0 in
  let gen iter idx =
    let l = logicals.(idx) in
    let pr = predec_time iter idx in
    if pr > !dec_cycle then begin
      dec_cycle := pr;
      n_avail := 0
    end;
    if l.Block.complex_decode then begin
      n_avail := l.Block.available_simple_dec;
      dec_cycle := !dec_cycle + complex_cycles l
    end
    else if
      !n_avail = 0
      || (l.Block.macro_fused
          && (not cfg.Config.macro_fusible_on_last_decoder)
          && !n_avail = 1)
    then begin
      n_avail := ndec - 1;
      incr dec_cycle
    end
    else decr n_avail;
    if l.Block.is_branch then begin
      n_avail := 0;
      if branch_bubble then incr dec_cycle
    end;
    !dec_cycle
  in
  make_stream gen

(* --- DSB path ------------------------------------------------------ *)

let dsb_stream (b : Block.t) =
  let cfg = b.Block.cfg in
  let w = cfg.Config.dsb_width in
  let logicals = Array.of_list b.Block.logicals in
  (* 32-byte window of each logical, by the offset of its first inst *)
  let offsets =
    let rec walk off = function
      | (a : Block.entry) :: b' :: rest when a.Block.fuses_with_next ->
        off
        :: walk
             (off + a.Block.layout.Encode.len + b'.Block.layout.Encode.len)
             rest
      | a :: rest -> off :: walk (off + a.Block.layout.Encode.len) rest
      | [] -> []
    in
    Array.of_list (walk 0 b.Block.entries)
  in
  let cycle = ref 0 in
  let budget = ref 0 in
  let cur_window = ref (-1, -1) in
  let gen iter idx =
    let l = logicals.(idx) in
    let window = (iter, offsets.(idx) / 32) in
    if window <> !cur_window || !budget = 0 then begin
      incr cycle;
      budget := w;
      cur_window := window
    end;
    let need = ref l.Block.fused_uops in
    while !need > 0 do
      if !budget = 0 then begin
        incr cycle;
        budget := w
      end;
      let take = min !budget !need in
      need := !need - take;
      budget := !budget - take
    done;
    !cycle
  in
  make_stream gen

(* --- LSD path ------------------------------------------------------ *)

let lsd_stream (b : Block.t) =
  let cfg = b.Block.cfg in
  let iw = cfg.Config.issue_width in
  let n_uops = Block.fused_uops b in
  let unroll = Config.lsd_unroll cfg n_uops in
  let logicals = Array.of_list b.Block.logicals in
  let cycle = ref 0 in
  let budget = ref 0 in
  let in_virtual = ref 0 in
  let gen _iter idx =
    let l = logicals.(idx) in
    let need = ref l.Block.fused_uops in
    while !need > 0 do
      if !budget = 0 then begin
        incr cycle;
        budget := iw
      end;
      let take = min !budget !need in
      need := !need - take;
      budget := !budget - take;
      in_virtual := !in_virtual + take;
      if !in_virtual >= n_uops * unroll then begin
        (* the last µop of a (virtually unrolled) iteration cannot share
           a cycle with the first µop of the next *)
        in_virtual := 0;
        budget := 0
      end
    done;
    !cycle
  in
  make_stream gen

(* ------------------------------------------------------------------ *)
(* Rename: build the dynamic instruction with resolved dependencies.   *)

let memq_dedup l =
  List.fold_left (fun acc d -> if List.memq d acc then acc else d :: acc) [] l

let rename_dyn cfg rename_table ~iter ~idx (l : Block.logical) =
  let lookup r =
    match Hashtbl.find_opt rename_table r with
    | Some (P d) -> Some d
    | Some Ready | None -> None
  in
  let addr = addr_resources l in
  let res_for kind =
    match kind with
    | Db.Load | Db.Store_addr -> addr
    | Db.Compute | Db.Div_pseudo | Db.Store_data -> l.Block.reads
  in
  let uops =
    Array.of_list
      (List.map
         (fun (u : Db.uop) ->
           { ukind = u.Db.kind;
             uports = u.Db.ports;
             bound_port = -1;
             dep_uops = [];
             res_deps = memq_dedup (List.filter_map lookup (res_for u.Db.kind));
             done_cycle = unreached;
             is_result = false;
             result_latency = 0 })
         l.Block.dispatched)
  in
  (* intra-instruction ordering: compute µops wait for the load; the
     divider's extra-occupancy µops are serialized (the unit is not
     pipelined); the store-data µop waits for the producing compute *)
  let find_uop p =
    let r = ref None in
    Array.iter (fun u -> if !r = None && p u then r := Some u) uops;
    !r
  in
  let load = find_uop (fun u -> u.ukind = Db.Load) in
  let computes =
    Array.to_list uops |> List.filter (fun u -> u.ukind = Db.Compute)
  in
  (match load with
   | Some ld -> List.iter (fun cu -> cu.dep_uops <- [ ld ]) computes
   | None -> ());
  let pseudo =
    Array.to_list uops |> List.filter (fun u -> u.ukind = Db.Div_pseudo)
  in
  let rec chain prev = function
    | p :: rest ->
      p.dep_uops <- prev :: p.dep_uops;
      chain p rest
    | [] -> ()
  in
  (match computes, pseudo with
   | first :: _, p :: rest -> chain first (p :: rest)
   | [], p :: rest -> chain p rest
   | _, [] -> ());
  Array.iter
    (fun u ->
      if u.ukind = Db.Store_data then
        match List.rev computes, load with
        | last :: _, _ -> u.dep_uops <- [ last ]
        | [], Some ld -> u.dep_uops <- [ ld ]
        | [], None -> ())
    uops;
  (* the result-producing µop: consumers can start [latency] cycles
     after the first compute µop starts (or [load_latency] after a pure
     load starts) *)
  (match List.find_opt (fun u -> u.ukind = Db.Compute) computes, load with
   | Some c, _ ->
     c.is_result <- true;
     c.result_latency <- l.Block.latency
   | None, Some ld ->
     ld.is_result <- true;
     ld.result_latency <- cfg.Config.load_latency
   | None, None -> ());
  let has_result = Array.exists (fun u -> u.is_result) uops in
  let d =
    { iter; idx; uops;
      issued_slots = max 1 l.Block.issued_uops;
      result_time = (if has_result then unreached else 0) }
  in
  (* writes update the rename table *)
  if l.Block.eliminated then begin
    let alias =
      if l.Block.zero_idiom then Ready
      else
        match l.Block.reads with
        | (Semantics.Reg _ as src) :: _ ->
          (match Hashtbl.find_opt rename_table src with
           | Some p -> p
           | None -> Ready)
        | _ -> Ready
    in
    List.iter (fun w -> Hashtbl.replace rename_table w alias) l.Block.writes
  end
  else
    List.iter (fun w -> Hashtbl.replace rename_table w (P d)) l.Block.writes;
  d

(* ------------------------------------------------------------------ *)

exception Did_not_converge

let cycles_per_iteration ?(fidelity = Hardware) ?(warmup = 64) ?(measure = 48)
    ~mode (b : Block.t) =
  let logicals = Array.of_list b.Block.logicals in
  let n = Array.length logicals in
  if n = 0 then 0.0
  else begin
    let cfg = b.Block.cfg in
    let stream =
      match mode with
      | `Unrolled ->
        decode_stream b ~mode:`Unrolled ~branch_bubble:(fidelity = Hardware)
      | `Loop ->
        if cfg.Config.jcc_erratum && Block.jcc_erratum_affected b then
          decode_stream b ~mode:`Loop ~branch_bubble:(fidelity = Hardware)
        else if Lsd.applicable b then lsd_stream b
        else dsb_stream b
    in
    let uses_idq_capacity =
      match mode with `Loop when Lsd.applicable b -> false | _ -> true
    in
    let target = warmup + measure in
    let rename_table : (Semantics.resource, producer) Hashtbl.t =
      Hashtbl.create 64
    in
    let idq : (int * int * Block.logical * int ref) Queue.t =
      Queue.create ()
    in
    let idq_uops = ref 0 in
    let fe_pending = ref (stream_next n stream) in
    let fe_delay = ref 0 in
    let rob : (dyn * Block.logical) Queue.t = Queue.create () in
    let rob_uops = ref 0 in
    let rs_count = ref 0 in
    let waiting : (duop * dyn) list ref = ref [] in
    let newly_renamed : (duop * dyn) list ref = ref [] in
    let port_pressure = Array.make 16 0 in
    let retire_time = Array.make (target + 2) (-1) in
    let retired_iters = ref 0 in
    let cycle = ref 0 in
    let max_cycles = 1_000_000 in
    let port_list = Port.to_list cfg.Config.ports in
    let ready_uop t (u : duop) =
      List.for_all (fun p -> p.done_cycle <= t) u.dep_uops
      && List.for_all (fun (d : dyn) -> d.result_time <= t) u.res_deps
    in
    let start_uop t (d : dyn) (u : duop) =
      u.done_cycle <-
        t + (if u.ukind = Db.Load then cfg.Config.load_latency else 1);
      if u.is_result then d.result_time <- t + u.result_latency;
      if fidelity = Hardware && u.bound_port >= 0 then
        port_pressure.(u.bound_port) <-
          max 0 (port_pressure.(u.bound_port) - 1);
      decr rs_count
    in
    while !retired_iters < target && !cycle < max_cycles do
      incr cycle;
      let t = !cycle in
      (* ---- dispatch ---- *)
      let free = Array.make 16 true in
      let remaining = ref [] in
      let dispatch_one ((u, d) as item) =
        if not (ready_uop t u) then remaining := item :: !remaining
        else
          match fidelity with
          | Hardware ->
            let p = u.bound_port in
            if p >= 0 && free.(p) then begin
              free.(p) <- false;
              start_uop t d u
            end
            else remaining := item :: !remaining
          | Model ->
            (match
               List.find_opt
                 (fun p -> free.(p) && Port.mem p u.uports)
                 port_list
             with
             | Some p ->
               free.(p) <- false;
               start_uop t d u
             | None -> remaining := item :: !remaining)
      in
      List.iter dispatch_one !waiting;
      waiting := List.rev !remaining;
      (* ---- retire (in order) ---- *)
      let retire_budget = ref cfg.Config.issue_width in
      let continue_retire = ref true in
      while !continue_retire && not (Queue.is_empty rob) do
        let d, _l = Queue.peek rob in
        (* complete: all µops executed and, if there is a result µop,
           the result has been produced *)
        let has_result = Array.exists (fun u -> u.is_result) d.uops in
        let complete =
          Array.for_all (fun u -> u.done_cycle <= t) d.uops
          && ((not has_result) || d.result_time <= t)
        in
        if complete && !retire_budget > 0 then begin
          retire_budget := !retire_budget - min d.issued_slots !retire_budget;
          ignore (Queue.pop rob);
          rob_uops := !rob_uops - d.issued_slots;
          if d.idx = n - 1 && d.iter < Array.length retire_time then begin
            retire_time.(d.iter) <- t;
            retired_iters := d.iter + 1
          end
        end
        else continue_retire := false
      done;
      (* ---- issue / rename ---- *)
      let budget = ref cfg.Config.issue_width in
      let continue_issue = ref true in
      while !continue_issue && !budget > 0 && not (Queue.is_empty idq) do
        let iter, idx, l, slots_left = Queue.peek idq in
        let fresh = !slots_left = max 1 l.Block.issued_uops in
        let n_disp = List.length l.Block.dispatched in
        if
          fresh
          && (!rob_uops + max 1 l.Block.issued_uops > cfg.Config.rob_size
              || !rs_count + n_disp > cfg.Config.rs_size)
        then continue_issue := false
        else begin
          let take = min !budget !slots_left in
          slots_left := !slots_left - take;
          budget := !budget - take;
          if !slots_left = 0 then begin
            ignore (Queue.pop idq);
            idq_uops := !idq_uops - l.Block.fused_uops;
            let d = rename_dyn cfg rename_table ~iter ~idx l in
            rob_uops := !rob_uops + d.issued_slots;
            rs_count := !rs_count + Array.length d.uops;
            if fidelity = Hardware then
              Array.iter
                (fun u ->
                  let best = ref (-1) in
                  List.iter
                    (fun p ->
                      if
                        Port.mem p u.uports
                        && (!best < 0
                            || port_pressure.(p) < port_pressure.(!best))
                      then best := p)
                    port_list;
                  u.bound_port <- !best;
                  if !best >= 0 then
                    port_pressure.(!best) <- port_pressure.(!best) + 1)
                d.uops;
            Array.iter (fun u -> newly_renamed := (u, d) :: !newly_renamed)
              d.uops;
            Queue.push (d, l) rob
          end
        end
      done;
      if !newly_renamed <> [] then begin
        waiting := !waiting @ List.rev !newly_renamed;
        newly_renamed := []
      end;
      (* ---- front end ---- *)
      let continue_fe = ref true in
      while !continue_fe do
        let ready, iter, idx = !fe_pending in
        if iter > target then continue_fe := false
        else if ready + !fe_delay > t then continue_fe := false
        else begin
          let l = logicals.(idx) in
          if
            uses_idq_capacity
            && !idq_uops > 0
            && !idq_uops + l.Block.fused_uops > cfg.Config.idq_size
          then begin
            (* backpressure: shift the remaining front-end schedule *)
            fe_delay := t + 1 - ready;
            continue_fe := false
          end
          else begin
            Queue.push (iter, idx, l, ref (max 1 l.Block.issued_uops)) idq;
            idq_uops := !idq_uops + l.Block.fused_uops;
            fe_pending := stream_next n stream
          end
        end
      done
    done;
    if !retired_iters < target then raise Did_not_converge;
    let t1 = retire_time.(warmup - 1) in
    let t2 = retire_time.(target - 1) in
    if t1 < 0 || t2 < 0 then raise Did_not_converge;
    float_of_int (t2 - t1) /. float_of_int measure
  end

let measure b =
  let mode = if Block.ends_in_branch b then `Loop else `Unrolled in
  cycles_per_iteration ~fidelity:Hardware ~mode b

let uica_like b =
  let mode = if Block.ends_in_branch b then `Loop else `Unrolled in
  cycles_per_iteration ~fidelity:Model ~mode b
