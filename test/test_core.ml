open Facile_x86
open Facile_uarch
open Facile_core

let parse_block s =
  match Asm.parse_block s with
  | Ok l -> l
  | Error m -> Alcotest.failf "parse error: %s" m

let skl = Config.by_arch Config.SKL
let hsw = Config.by_arch Config.HSW
let rkl = Config.by_arch Config.RKL
let snb = Config.by_arch Config.SNB

let block cfg s = Block.of_instructions cfg (parse_block s)

let four_adds = "add rax, rbx\nadd rcx, rdx\nadd rsi, rdi\nadd r8, r9"

let checkf = Alcotest.(check (float 1e-6))

let component_tests =
  [ Alcotest.test_case "issue width" `Quick (fun () ->
        checkf "4 adds on SKL" 1.0 (Issue.throughput (block skl four_adds));
        checkf "4 adds on RKL (5-wide)" 0.8
          (Issue.throughput (block rkl four_adds)));
    Alcotest.test_case "decoder steady state" `Quick (fun () ->
        checkf "4 simple insts, 4 decoders" 1.0
          (Dec.throughput (block skl four_adds));
        (* 5 one-µop instructions on 4 decoders: 2 cycles / iteration
           until wraparound evens out: steady state 1.25 *)
        let five = four_adds ^ "\nadd r10, r11" in
        checkf "5 simple insts" 1.25 (Dec.throughput (block skl five)));
    Alcotest.test_case "simple decoder model" `Quick (fun () ->
        checkf "simple dec, 4 insts" 1.0 (Dec.simple (block skl four_adds));
        (* cvtsi2sd needs the complex decoder (2 fused µops) *)
        let b = block skl "cvtsi2sd xmm0, rax\ncvtsi2sd xmm1, rbx" in
        checkf "2 complex" 2.0 (Dec.simple b));
    Alcotest.test_case "predecoder: 16 nops per 16-byte block" `Quick
      (fun () ->
        let b = block skl "nop" in
        checkf "single nop" 0.25 (Predec.throughput ~mode:`Unrolled b);
        checkf "simple predec" (1.0 /. 16.0) (Predec.simple b));
    Alcotest.test_case "predecoder: 12-byte block of adds" `Quick (fun () ->
        (* u = 4, 3 fetch blocks, L = [5;5;6], O = [0;1;0] -> 5 cycles *)
        checkf "4 adds" 1.25
          (Predec.throughput ~mode:`Unrolled (block skl four_adds)));
    Alcotest.test_case "predecoder LCP penalty" `Quick (fun () ->
        let no_lcp = Predec.throughput ~mode:`Loop (block skl four_adds) in
        let lcp =
          Predec.throughput ~mode:`Loop
            (block skl "add ax, 0x1234\nadd rcx, rdx\nadd rsi, rdi")
        in
        Alcotest.(check bool) "LCP costs cycles" true (lcp > no_lcp);
        (* one LCP instruction, one fetch block: 3-cycle penalty not
           hidden: 1 + max(0, 3 - (1-1)) = 4 *)
        checkf "isolated LCP" 4.0
          (Predec.throughput ~mode:`Loop (block skl "add ax, 0x1234")));
    Alcotest.test_case "DSB" `Quick (fun () ->
        (* 4 µops, width 6, block < 32 bytes: ceil -> 1 cycle *)
        checkf "short block rounds up" 1.0 (Dsb.throughput (block skl four_adds));
        (* long block >= 32 bytes: fractional *)
        let long =
          String.concat "\n" (List.init 12 (fun _ -> "add rax, 0x12345"))
        in
        let b = block skl long in
        Alcotest.(check bool) "block is long" true (b.Block.len >= 32);
        checkf "12 uops / 6" 2.0 (Dsb.throughput b));
    Alcotest.test_case "LSD" `Quick (fun () ->
        (* HSW: enabled, issue 4, unroll target 16: n=4 -> u=4,
           ceil(16/4)/4 = 1.0 *)
        let b = block hsw four_adds in
        Alcotest.(check bool) "applicable" true (Lsd.applicable b);
        checkf "4 uops" 1.0 (Lsd.throughput b);
        (* n=5 -> u=4 (20 >= 16): ceil(20/4)/4 = 1.25 *)
        checkf "5 uops" 1.25
          (Lsd.throughput (block hsw (four_adds ^ "\nadd r10, r11")));
        (* SKL: LSD disabled by the SKL150 erratum *)
        Alcotest.(check bool) "SKL disabled" false
          (Lsd.applicable (block skl four_adds)));
    Alcotest.test_case "ports" `Quick (fun () ->
        (* 4 ALU µops on p0156 -> 1.0 *)
        checkf "alu spread" 1.0 (Ports.throughput (block skl four_adds));
        (* shuffles are p5-only on SKL *)
        checkf "3 shuffles on one port" 3.0
          (Ports.throughput
             (block skl
                "pshufd xmm0, xmm1, 0\npshufd xmm2, xmm3, 0\npshufd xmm4, xmm5, 0"));
        (* 2 p5-only shuffles dominate: bound 2/1 beats 6 µops on the
           four ALU ports (p5 is one of them), 6/4 = 1.5 *)
        let b =
          block skl
            "pshufd xmm0, xmm1, 0\npshufd xmm2, xmm3, 0\nadd rax, rbx\nadd rcx, rdx\nadd rsi, rdi\nadd r8, r9"
        in
        checkf "mixed contention" 2.0 (Ports.throughput b);
        (* with a single shuffle the pair-union bound takes over:
           5 µops on p0156 -> 1.25 *)
        let b2 =
          block skl
            "pshufd xmm0, xmm1, 0\nadd rax, rbx\nadd rcx, rdx\nadd rsi, rdi\nadd r8, r9"
        in
        checkf "union bound" 1.25 (Ports.throughput b2));
    Alcotest.test_case "ports: pairwise heuristic = exhaustive bound" `Quick
      (fun () ->
        (* the paper reports the pairwise heuristic matches the LP bound
           on all BHive benchmarks; we verify it on our corpus and on
           all µarchs *)
        let cases = Facile_bhive.Suite.corpus ~seed:29 ~size:120 () in
        List.iter
          (fun cfg ->
            List.iter
              (fun (c : Facile_bhive.Suite.case) ->
                let b = Block.of_instructions cfg c.Facile_bhive.Suite.loop in
                let fast = Ports.throughput b in
                let exact = Ports.throughput_exhaustive b in
                if abs_float (fast -. exact) > 1e-9 then
                  Alcotest.failf
                    "case %d on %s: pairwise %.4f <> exhaustive %.4f"
                    c.Facile_bhive.Suite.id cfg.Config.abbrev fast exact)
              cases)
          [ skl; snb; rkl ]);
    Alcotest.test_case "precedence chains" `Quick (fun () ->
        checkf "independent adds" 1.0
          (Precedence.throughput (block skl four_adds));
        checkf "two-add chain" 2.0
          (Precedence.throughput (block skl "add rax, rbx\nadd rax, rcx"));
        checkf "imul self-chain" 3.0
          (Precedence.throughput (block skl "imul rax, rbx"));
        (* load in the chain: the configured L1 latency *)
        checkf "pointer chase"
          (float_of_int skl.Config.load_latency)
          (Precedence.throughput (block skl "mov rax, qword ptr [rax]"));
        checkf "pointer chase ICL"
          (float_of_int (Config.by_arch Config.ICL).Config.load_latency)
          (Precedence.throughput
             (block (Config.by_arch Config.ICL) "mov rax, qword ptr [rax]"));
        (* zero idiom breaks the chain *)
        checkf "xor breaks dep" 1.0
          (Precedence.throughput
             (block skl "xor rax, rax\nadd rax, rbx\nadd rcx, rax")));
    Alcotest.test_case "precedence: howard = lawler on blocks" `Quick
      (fun () ->
        let cases = Facile_bhive.Suite.corpus ~seed:11 ~size:60 () in
        List.iter
          (fun (c : Facile_bhive.Suite.case) ->
            let b = Block.of_instructions skl c.Facile_bhive.Suite.loop in
            let h = Precedence.throughput b in
            let l = Precedence.throughput_lawler b in
            if abs_float (h -. l) > 1e-5 then
              Alcotest.failf "howard %f <> lawler %f on case %d" h l
                c.Facile_bhive.Suite.id)
          cases) ]

let fusion_tests =
  [ Alcotest.test_case "macro fusion" `Quick (fun () ->
        let b = block skl "cmp rax, rbx\njne -10" in
        Alcotest.(check int) "one logical inst" 1
          (List.length b.Block.logicals);
        Alcotest.(check int) "one fused µop" 1 (Block.fused_uops b);
        (* SNB fuses CMP but the pair still exists *)
        let b2 = block snb "cmp rax, rbx\njne -10" in
        Alcotest.(check int) "SNB fuses cmp+jcc" 1
          (List.length b2.Block.logicals);
        (* inc+jcc does not fuse on SNB *)
        let b3 = block snb "inc rax\njne -10" in
        Alcotest.(check int) "SNB no inc fusion" 2
          (List.length b3.Block.logicals);
        let b4 = block skl "inc rax\njne -10" in
        Alcotest.(check int) "SKL inc fusion" 1
          (List.length b4.Block.logicals));
    Alcotest.test_case "mov elimination" `Quick (fun () ->
        let elim cfg s =
          (List.hd (block cfg s).Block.logicals).Block.eliminated
        in
        Alcotest.(check bool) "SKL eliminates mov r,r" true
          (elim skl "mov rax, rbx");
        Alcotest.(check bool) "SNB does not" false (elim snb "mov rax, rbx");
        Alcotest.(check bool) "ICL gpr elim disabled" false
          (elim (Config.by_arch Config.ICL) "mov rax, rbx");
        Alcotest.(check bool) "ICL still eliminates vec" true
          (elim (Config.by_arch Config.ICL) "movaps xmm0, xmm1");
        Alcotest.(check bool) "zero idiom" true (elim skl "xor rax, rax"));
    Alcotest.test_case "unlamination" `Quick (fun () ->
        (* indexed RMW unlaminates everywhere *)
        let b = block hsw "add qword ptr [rax+rbx*8], rcx" in
        let l = List.hd b.Block.logicals in
        Alcotest.(check int) "HSW fused" 2 l.Block.fused_uops;
        Alcotest.(check int) "HSW issued" 4 l.Block.issued_uops;
        (* simple addressing stays fused *)
        let b2 = block hsw "add qword ptr [rax], rcx" in
        let l2 = List.hd b2.Block.logicals in
        Alcotest.(check int) "simple stays fused" 2 l2.Block.issued_uops;
        (* SKL keeps an indexed load-op with one register source fused *)
        let b3 = block skl "add rcx, qword ptr [rax+rbx*8]" in
        let l3 = List.hd b3.Block.logicals in
        Alcotest.(check int) "SKL load-op" 1 l3.Block.fused_uops) ]

let model_tests =
  [ Alcotest.test_case "TP_U combination" `Quick (fun () ->
        let p = Model.predict_u (block skl four_adds) in
        (* Predec 1.25 dominates Dec/Issue/Ports/Precedence (all 1.0) *)
        checkf "cycles" 1.25 p.Model.cycles;
        Alcotest.(check bool) "predec bottleneck" true
          (List.mem Model.Predec p.Model.bottlenecks));
    Alcotest.test_case "TP_L uses LSD on HSW" `Quick (fun () ->
        let insts = parse_block four_adds in
        let looped = Facile_bhive.Genblock.looped insts in
        let b = Block.of_instructions hsw looped in
        let p = Model.predict_l b in
        Alcotest.(check bool) "fe path lsd" true (p.Model.fe_path = Model.FE_lsd));
    Alcotest.test_case "TP_L uses DSB on SKL (LSD off)" `Quick (fun () ->
        let insts = parse_block four_adds in
        let b = Block.of_instructions skl (Facile_bhive.Genblock.looped insts) in
        let p = Model.predict_l b in
        (* the 5-byte loop ends well inside the first 32-byte window;
           no erratum trigger at offset 12 *)
        Alcotest.(check bool) "fe path dsb" true (p.Model.fe_path = Model.FE_dsb));
    Alcotest.test_case "JCC erratum forces legacy decode" `Quick (fun () ->
        (* pad so that the branch crosses the 32-byte boundary *)
        let pad =
          String.concat "\n" (List.init 6 (fun _ -> "add rax, 0x12345"))
        in
        (* 6 * 6 = 36 bytes; add a jcc: it starts at 36... make the pad
           29 bytes so the branch crosses 32 *)
        ignore pad;
        let insts =
          parse_block
            "add rax, 0x12345\nadd rbx, 0x12345\nadd rcx, 0x12345\nadd rdx, 0x12345\nadd rsi, rdi\nadd r8, r9"
        in
        let looped = Facile_bhive.Genblock.looped insts in
        let b = Block.of_instructions skl looped in
        Alcotest.(check bool) "erratum detected" true
          (Block.jcc_erratum_affected b);
        let p = Model.predict_l b in
        Alcotest.(check bool) "decoders path" true
          (p.Model.fe_path = Model.FE_decoders);
        (* same block on RKL (no erratum): front end via LSD/DSB *)
        let b2 = Block.of_instructions rkl looped in
        let p2 = Model.predict_l b2 in
        Alcotest.(check bool) "no erratum on RKL" true
          (p2.Model.fe_path <> Model.FE_decoders));
    Alcotest.test_case "variants" `Quick (fun () ->
        let b = block skl four_adds in
        let base = (Model.predict_u b).Model.cycles in
        let without_predec =
          (Model.predict_u
             ~variant:{ Model.default with Model.without = [ Model.Predec ] }
             b).Model.cycles
        in
        Alcotest.(check bool) "removing the bottleneck lowers tp" true
          (without_predec < base);
        let only_ports =
          (Model.predict_u
             ~variant:{ Model.default with Model.only = Some [ Model.Ports ] }
             b).Model.cycles
        in
        checkf "only ports" 1.0 only_ports;
        let ideal =
          Model.speedup_idealizing b Model.Predec
        in
        checkf "idealizing predec" (1.25 /. 1.0) ideal);
    Alcotest.test_case "variant monotonicity" `Quick (fun () ->
        let cases = Facile_bhive.Suite.corpus ~seed:3 ~size:80 () in
        List.iter
          (fun (c : Facile_bhive.Suite.case) ->
            let b = Block.of_instructions skl c.Facile_bhive.Suite.body in
            let base = (Model.predict_u b).Model.cycles in
            List.iter
              (fun comp ->
                let v =
                  (Model.predict_u
                     ~variant:{ Model.default with Model.without = [ comp ] } b)
                    .Model.cycles
                in
                if v > base +. 1e-9 then
                  Alcotest.failf "removing %s raised tp on case %d"
                    (Model.component_name comp) c.Facile_bhive.Suite.id;
                let ideal =
                  (Model.predict_u
                     ~variant:{ Model.default with Model.idealized = [ comp ] }
                     b).Model.cycles
                in
                if ideal > base +. 1e-9 then
                  Alcotest.failf "idealizing %s raised tp on case %d"
                    (Model.component_name comp) c.Facile_bhive.Suite.id)
              Model.all_components)
          cases);
    Alcotest.test_case "corpus determinism" `Quick (fun () ->
        let a = Facile_bhive.Suite.corpus ~seed:123 ~size:50 () in
        let b = Facile_bhive.Suite.corpus ~seed:123 ~size:50 () in
        List.iter2
          (fun (x : Facile_bhive.Suite.case) (y : Facile_bhive.Suite.case) ->
            assert (List.for_all2 Inst.equal x.Facile_bhive.Suite.body
                      y.Facile_bhive.Suite.body))
          a b;
        let c = Facile_bhive.Suite.corpus ~seed:124 ~size:50 () in
        let same =
          List.for_all2
            (fun (x : Facile_bhive.Suite.case) (y : Facile_bhive.Suite.case) ->
              List.length x.Facile_bhive.Suite.body
              = List.length y.Facile_bhive.Suite.body
              && List.for_all2 Inst.equal x.Facile_bhive.Suite.body
                   y.Facile_bhive.Suite.body)
            a c
        in
        Alcotest.(check bool) "different seeds differ" false same);
    Alcotest.test_case "all corpus blocks analyzable on all µarchs" `Quick
      (fun () ->
        let cases = Facile_bhive.Suite.corpus ~seed:17 ~size:60 () in
        List.iter
          (fun cfg ->
            List.iter
              (fun (c : Facile_bhive.Suite.case) ->
                let bu = Block.of_instructions cfg c.Facile_bhive.Suite.body in
                let bl = Block.of_instructions cfg c.Facile_bhive.Suite.loop in
                let pu = Model.predict_u bu in
                let pl = Model.predict_l bl in
                if not (pu.Model.cycles > 0.0) then
                  Alcotest.failf "zero TP_U on %s case %d" cfg.Config.abbrev
                    c.Facile_bhive.Suite.id;
                if not (pl.Model.cycles > 0.0) then
                  Alcotest.failf "zero TP_L on %s case %d" cfg.Config.abbrev
                    c.Facile_bhive.Suite.id)
              cases)
          Config.all) ]

(* Cross-component invariants, checked over the whole corpus. *)
let invariant_tests =
  [ Alcotest.test_case "component bound invariants on corpus" `Quick
      (fun () ->
        let cases = Facile_bhive.Suite.corpus ~seed:31 ~size:120 () in
        List.iter
          (fun cfg ->
            List.iter
              (fun (c : Facile_bhive.Suite.case) ->
                let b = Block.of_instructions cfg c.Facile_bhive.Suite.loop in
                let iw = float_of_int cfg.Config.issue_width in
                let n_f = float_of_int (Block.fused_uops b) in
                let n_i = float_of_int (Block.issued_uops b) in
                (* Issue is exactly issued/width *)
                if abs_float (Issue.throughput b -. (n_i /. iw)) > 1e-9 then
                  Alcotest.failf "Issue formula broken on case %d"
                    c.Facile_bhive.Suite.id;
                (* DSB at least n/w; LSD between n/i and ceil(n/i) *)
                let w = float_of_int cfg.Config.dsb_width in
                if Dsb.throughput b +. 1e-9 < n_f /. w then
                  Alcotest.fail "DSB below n/w";
                let lsd = Lsd.throughput b in
                if lsd +. 1e-9 < n_f /. iw then Alcotest.fail "LSD below n/i";
                if lsd -. 1e-9 > Float.ceil (n_f /. iw) then
                  Alcotest.fail "LSD above ceil(n/i)";
                (* full predecoder dominates the simple model *)
                List.iter
                  (fun mode ->
                    if
                      Predec.throughput ~mode b +. 1e-9 < Predec.simple b
                    then Alcotest.fail "Predec below SimplePredec")
                  [ `Unrolled; `Loop ];
                (* Algorithm 1 dominates SimpleDec *)
                if Dec.throughput b +. 1e-9 < Dec.simple b then
                  Alcotest.failf "Dec %f below SimpleDec %f on case %d (%s)"
                    (Dec.throughput b) (Dec.simple b) c.Facile_bhive.Suite.id
                    cfg.Config.abbrev;
                (* the prediction equals the max over its bottlenecks *)
                let p = Model.predict_l b in
                (match p.Model.bottlenecks with
                 | [] -> Alcotest.fail "no bottleneck reported"
                 | bn :: _ ->
                   let v = List.assoc bn p.Model.values in
                   if abs_float (v -. p.Model.cycles) > 1e-9 then
                     Alcotest.fail "bottleneck value <> prediction"))
              cases)
          [ skl; hsw; snb; rkl ]);
    Alcotest.test_case "of_bytes and of_instructions agree" `Quick (fun () ->
        (* analyzing machine code must give exactly the same prediction
           as analyzing the instruction list it encodes *)
        let cases = Facile_bhive.Suite.corpus ~seed:37 ~size:80 () in
        List.iter
          (fun (c : Facile_bhive.Suite.case) ->
            List.iter
              (fun insts ->
                let from_insts = Block.of_instructions skl insts in
                let from_bytes = Block.of_bytes skl from_insts.Block.bytes in
                let p1 = Model.predict from_insts in
                let p2 = Model.predict from_bytes in
                if abs_float (p1.Model.cycles -. p2.Model.cycles) > 1e-9 then
                  Alcotest.failf "path mismatch on case %d: %.4f vs %.4f"
                    c.Facile_bhive.Suite.id p1.Model.cycles p2.Model.cycles;
                List.iter2
                  (fun (c1, v1) (c2, v2) ->
                    assert (c1 = c2);
                    if abs_float (v1 -. v2) > 1e-9 then
                      Alcotest.failf "component %s differs by path"
                        (Model.component_name c1))
                  p1.Model.values p2.Model.values)
              [ c.Facile_bhive.Suite.body; c.Facile_bhive.Suite.loop ])
          cases);
    Alcotest.test_case "blocks of one instruction" `Quick (fun () ->
        (* every generated single instruction analyzes on every µarch *)
        let rng = Facile_bhive.Prng.create 3 in
        List.iter
          (fun profile ->
            for _ = 1 to 200 do
              let i =
                Facile_bhive.Genblock.random_inst rng profile ~allow_fma:false
              in
              List.iter
                (fun cfg ->
                  let b = Block.of_instructions cfg [ i ] in
                  let p = Model.predict_u b in
                  if not (p.Model.cycles > 0.0) then
                    Alcotest.failf "zero prediction for %s" (Inst.to_string i))
                Config.all
            done)
          Facile_bhive.Genblock.all_profiles) ]

(* The masks the Ports component operates on: port sets of dispatched,
   non-eliminated µops. *)
let distinct_port_masks (b : Block.t) =
  List.concat_map
    (fun (l : Block.logical) ->
      if l.Block.eliminated then []
      else
        List.filter_map
          (fun (u : Facile_db.Db.uop) ->
            if Port.is_empty u.Facile_db.Db.ports then None
            else Some u.Facile_db.Db.ports)
          l.Block.dispatched)
    b.Block.logicals
  |> List.sort_uniq Port.compare

(* The pairwise heuristic only considers unions of pairs of occurring
   masks, the exhaustive bound every subset of the occurring ports; the
   heuristic can never exceed it, and with at most two distinct masks
   every relevant combination (A, B, A∪B) is a pair union, so the two
   must coincide. *)
let qcheck_ports_heuristic =
  QCheck.Test.make
    ~name:"ports: pairwise <= exhaustive, = with <= 2 distinct masks"
    ~count:300
    QCheck.(triple small_nat (int_range 1 10) (int_range 0 7))
    (fun (seed, len, profile_idx) ->
      let profiles = Facile_bhive.Genblock.all_profiles in
      let profile = List.nth profiles (profile_idx mod List.length profiles) in
      let rng = Facile_bhive.Prng.create (succ seed) in
      let len = max 1 (min 10 len) (* shrinking can escape int_range *) in
      let insts =
        Facile_bhive.Genblock.body rng profile ~allow_fma:false ~len
      in
      List.for_all
        (fun cfg ->
          let b = Block.of_instructions cfg insts in
          let fast = Ports.throughput b in
          let exact = Ports.throughput_exhaustive b in
          if fast > exact +. 1e-9 then
            QCheck.Test.fail_reportf
              "pairwise %.4f exceeds exhaustive %.4f on %s" fast exact
              cfg.Config.abbrev
          else
            let masks = distinct_port_masks b in
            if List.length masks <= 2 && abs_float (fast -. exact) > 1e-9 then
              QCheck.Test.fail_reportf
                "%d distinct masks but pairwise %.4f <> exhaustive %.4f on %s"
                (List.length masks) fast exact cfg.Config.abbrev
            else true)
        [ skl; snb; rkl ])

let ports_property_tests =
  [ QCheck_alcotest.to_alcotest qcheck_ports_heuristic ]

module Engine = Facile_engine.Engine

let check_predictions_equal (a : Model.prediction) (b : Model.prediction) =
  if not (Float.equal a.Model.cycles b.Model.cycles) then
    Alcotest.failf "cycles differ: %h vs %h" a.Model.cycles b.Model.cycles;
  if a.Model.bottlenecks <> b.Model.bottlenecks then
    Alcotest.fail "bottlenecks differ";
  if a.Model.fe_path <> b.Model.fe_path then Alcotest.fail "fe_path differs";
  List.iter2
    (fun (c1, v1) (c2, v2) ->
      assert (c1 = c2);
      if not (Float.equal v1 v2) then
        Alcotest.failf "component %s differs: %h vs %h"
          (Model.component_name c1) v1 v2)
    a.Model.values b.Model.values

let engine_tests =
  [ Alcotest.test_case "parallel = sequential, bit-identical" `Quick (fun () ->
        let cases = Facile_bhive.Suite.corpus ~seed:41 ~size:100 () in
        let blocks =
          List.concat_map
            (fun (c : Facile_bhive.Suite.case) ->
              [ Block.of_instructions skl c.Facile_bhive.Suite.body;
                Block.of_instructions skl c.Facile_bhive.Suite.loop ])
            cases
        in
        (* duplicates exercise the memoization path *)
        let blocks = blocks @ blocks in
        let predict ~workers ~memoize =
          Engine.with_pool ~workers ~memoize (fun pool ->
              Engine.predict_batch pool ~mode:`Auto blocks)
        in
        let seq = predict ~workers:1 ~memoize:false in
        List.iter
          (fun (workers, memoize) ->
            let par = predict ~workers ~memoize in
            List.iter2 check_predictions_equal seq par)
          [ (1, true); (2, false); (4, true);
            (max 1 (Domain.recommended_domain_count ()), true) ]);
    Alcotest.test_case "memoization predicts repeated blocks once" `Quick
      (fun () ->
        let cases = Facile_bhive.Suite.corpus ~seed:43 ~size:40 () in
        let blocks =
          List.map
            (fun (c : Facile_bhive.Suite.case) ->
              Block.of_instructions skl c.Facile_bhive.Suite.body)
            cases
        in
        let unique =
          List.length
            (List.sort_uniq compare
               (List.map (fun (b : Block.t) -> b.Block.bytes) blocks))
        in
        Engine.with_pool ~workers:2 (fun pool ->
            let n = 2 * List.length blocks in
            ignore (Engine.predict_batch pool ~mode:`Auto (blocks @ blocks));
            let hits, misses = Engine.memo_stats pool in
            Alcotest.(check int) "misses = unique blocks" unique misses;
            Alcotest.(check int) "hits = repeats" (n - unique) hits;
            (* a second identical batch is served from the cache *)
            ignore (Engine.predict_batch pool ~mode:`Auto blocks);
            let hits2, misses2 = Engine.memo_stats pool in
            Alcotest.(check int) "no new misses" misses misses2;
            Alcotest.(check int) "all hits" (hits + List.length blocks) hits2));
    Alcotest.test_case "map keeps order and propagates exceptions" `Quick
      (fun () ->
        Engine.with_pool ~workers:4 (fun pool ->
            let xs = Array.init 1000 Fun.id in
            let ys = Engine.map pool (fun x -> x * x) xs in
            Array.iteri
              (fun i y -> Alcotest.(check int) "ordered" (i * i) y)
              ys;
            (match
               Engine.map pool
                 (fun x -> if x = 37 then failwith "boom" else x)
                 xs
             with
             | _ -> Alcotest.fail "expected exception"
             | exception Failure m ->
               Alcotest.(check string) "original exception" "boom" m))) ]

(* ------------------------------------------------------------------ *)
(* Flattened hot path: the table-driven, arena-backed pipeline must be
   bit-identical to the reference (pre-flattening) pipeline, and must
   stop allocating once the arenas are warm. *)

let qcheck_flat_pipeline =
  QCheck.Test.make
    ~name:"predict is bit-identical to predict_reference" ~count:150
    QCheck.(triple small_nat (int_range 1 10) (int_range 0 7))
    (fun (seed, len, profile_idx) ->
      let profiles = Facile_bhive.Genblock.all_profiles in
      let profile = List.nth profiles (profile_idx mod List.length profiles) in
      let rng = Facile_bhive.Prng.create (succ seed) in
      let len = max 1 (min 10 len) in
      let insts =
        Facile_bhive.Genblock.body rng profile ~allow_fma:false ~len
      in
      let same cfg insts =
        let b = Block.of_instructions cfg insts in
        List.for_all
          (fun notion ->
            let f = Model.predict ~notion b in
            let r = Model.predict_reference ~notion b in
            if f = r then true
            else
              QCheck.Test.fail_reportf
                "fast %h <> reference %h on %s (notion %s)" f.Model.cycles
                r.Model.cycles cfg.Config.abbrev
                (match notion with
                 | Model.U -> "U"
                 | Model.L -> "L"
                 | Model.Auto -> "auto"))
          [ Model.U; Model.L; Model.Auto ]
      in
      List.for_all
        (fun cfg ->
          same cfg insts && same cfg (Facile_bhive.Genblock.looped insts))
        [ skl; snb; rkl ])

let flatpath_tests =
  [ QCheck_alcotest.to_alcotest qcheck_flat_pipeline;
    Alcotest.test_case "steady-state prediction allocation is constant" `Quick
      (fun () ->
        let cases = Facile_bhive.Suite.corpus ~seed:11 ~size:12 () in
        let blocks =
          List.map
            (fun (c : Facile_bhive.Suite.case) ->
              Block.of_instructions skl c.Facile_bhive.Suite.loop)
            cases
        in
        (* first pass grows every arena buffer to this corpus's sizes *)
        List.iter (fun b -> ignore (Model.predict b)) blocks;
        List.iter
          (fun b ->
            ignore (Model.predict b);
            let w0 = Gc.minor_words () in
            ignore (Model.predict b);
            let w1 = Gc.minor_words () in
            ignore (Model.predict b);
            let w2 = Gc.minor_words () in
            let d1 = w1 -. w0 and d2 = w2 -. w1 in
            if not (Float.equal d1 d2) then
              Alcotest.failf "allocation not steady: %.0f then %.0f words" d1
                d2;
            (* the budget: result records and bookkeeping, never
               per-element scratch (a regression to per-edge boxing or
               per-call arrays blows well past this) *)
            if d1 > 4096.0 then
              Alcotest.failf "allocation budget exceeded: %.0f words" d1)
          blocks);
    Alcotest.test_case "form signature is deterministic" `Quick (fun () ->
        let insts = parse_block "add rax, rbx\nimul rcx, rdx\nnop" in
        let a = Block.of_instructions skl insts in
        let b = Block.of_instructions skl insts in
        Alcotest.(check int) "same insts, same signature" (Block.form_sig a)
          (Block.form_sig b)) ]

let region_tests =
  [ Alcotest.test_case "single-block region = block prediction" `Quick
      (fun () ->
        let insts = parse_block "imul rax, rbx\nadd rax, rcx" in
        let r = Region.analyze skl [ { Region.insts; weight = 1.0 } ] in
        let p = Model.predict (Block.of_instructions skl insts) in
        checkf "naive equals prediction" p.Model.cycles r.Region.naive;
        (* the aggregated bound cannot exceed the naive sum by much, and
           dominates each pooled resource *)
        Alcotest.(check bool) "bounded" true
          (r.Region.cycles <= r.Region.naive +. 1e-9));
    Alcotest.test_case "weights are normalized" `Quick (fun () ->
        let a = parse_block "add rax, rbx" in
        let b = parse_block "imul rcx, rdx" in
        let r1 =
          Region.analyze skl
            [ { Region.insts = a; weight = 1.0 };
              { Region.insts = b; weight = 3.0 } ]
        in
        let r2 =
          Region.analyze skl
            [ { Region.insts = a; weight = 10.0 };
              { Region.insts = b; weight = 30.0 } ]
        in
        checkf "scale invariant" r1.Region.cycles r2.Region.cycles);
    Alcotest.test_case "pooled ports exceed per-block weighting" `Quick
      (fun () ->
        (* two blocks that each fill different ports lightly still share
           the same p5 shuffle unit; the pooled bound sees that *)
        let a = parse_block "pshufd xmm0, xmm1, 0\npshufd xmm2, xmm3, 0" in
        let b = parse_block "pshufd xmm4, xmm5, 0\npshufd xmm6, xmm7, 0" in
        let r =
          Region.analyze skl
            [ { Region.insts = a; weight = 1.0 };
              { Region.insts = b; weight = 1.0 } ]
        in
        checkf "p5 pressure pooled" 2.0
          (List.assoc Model.Ports r.Region.component_values));
    Alcotest.test_case "invalid regions rejected" `Quick (fun () ->
        (match Region.analyze skl [] with
         | _ -> Alcotest.fail "empty region"
         | exception Invalid_argument _ -> ());
        let a = parse_block "add rax, rbx" in
        match Region.analyze skl [ { Region.insts = a; weight = 0.0 } ] with
        | _ -> Alcotest.fail "zero weight"
        | exception Invalid_argument _ -> ()) ]

let suite =
  [ "core.components", component_tests;
    "core.fusion", fusion_tests;
    "core.model", model_tests;
    "core.invariants", invariant_tests;
    "core.ports.properties", ports_property_tests;
    "core.flatpath", flatpath_tests;
    "core.engine", engine_tests;
    "core.region", region_tests ]
