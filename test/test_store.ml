(* Persistent prediction store: codec bit-identity, segment recovery
   policy (quarantine vs torn tail), fault-injected write failures,
   warm-restart equality, and the CLI exit-code contract.

   Everything here runs against real temp files — the recovery rules
   are only meaningful on actual file contents, so the tests craft
   damage byte-by-byte rather than mocking the scanner. *)

open Facile_uarch
open Facile_core
open Facile_engine
module Crc32 = Facile_store.Crc32
module Codec = Facile_store.Codec
module Segment = Facile_store.Segment
module Store = Facile_store.Store
module Err = Facile_x86.Err

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let with_temp f =
  let path = Filename.temp_file "facile_test_store" ".seg" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let block_of_hex cfg h =
  match Facile_x86.Hex.decode h with
  | Ok bytes -> Block.of_bytes cfg bytes
  | Error _ -> Alcotest.failf "bad hex %s" h

(* A real record: run the model so predictions carry genuine
   bottleneck/value structure, not synthetic placeholders. *)
let mk_record ?(arch = Config.SKL) ?(notion = `Unrolled) hex =
  let cfg = Config.by_arch arch in
  let b = block_of_hex cfg hex in
  let n = match notion with `Loop -> Model.L | `Unrolled -> Model.U in
  { Codec.arch;
    notion;
    form_sig = Block.form_sig b;
    bytes = b.Block.bytes;
    pred = Model.predict ~notion:n b }

let records_for_suite () =
  [ mk_record "4801d8";                           (* add rax,rbx *)
    mk_record ~arch:Config.HSW ~notion:`Loop "4829d8";
    mk_record ~arch:Config.TGL "48c7c02a000000"; (* mov rax,42 *)
    mk_record ~arch:Config.ICL ~notion:`Loop "90" ]

let record_equal (a : Codec.record) (b : Codec.record) =
  a.Codec.arch = b.Codec.arch && a.Codec.notion = b.Codec.notion
  && a.Codec.form_sig = b.Codec.form_sig
  && String.equal a.Codec.bytes b.Codec.bytes
  && Codec.pred_equal a.Codec.pred b.Codec.pred

let check_load_ok path =
  match Store.load path with
  | Ok r -> r
  | Error e -> Alcotest.failf "load failed: %s" (Err.to_string e)

let check_load_err path =
  match Store.load path with
  | Ok _ -> Alcotest.fail "load accepted a store it must refuse"
  | Error e -> e

(* Write [records] to a fresh store at [path]. *)
let populate path records =
  match Store.open_rw path with
  | Error e -> Alcotest.failf "open_rw failed: %s" (Err.to_string e)
  | Ok (w, _) ->
    Fun.protect
      ~finally:(fun () -> Store.close w)
      (fun () -> List.iter (Store.append w) records)

(* Flip one bit inside a file at byte [off]. *)
let flip_bit path off =
  let s = Bytes.of_string (read_file path) in
  Bytes.set s off (Char.chr (Char.code (Bytes.get s off) lxor 0x40));
  write_file path (Bytes.to_string s)

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)

let crc_tests =
  [ Alcotest.test_case "IEEE known-answer vector" `Quick (fun () ->
        Alcotest.(check int32) "123456789" 0xCBF43926l
          (Int32.of_int (Crc32.string "123456789" land 0xFFFFFFFF)));
    Alcotest.test_case "sub window equals string of slice" `Quick (fun () ->
        let s = "the quick brown fox jumps over the lazy dog" in
        Alcotest.(check int) "slice" (Crc32.string (String.sub s 4 11))
          (Crc32.sub s 4 11));
    Alcotest.test_case "empty string" `Quick (fun () ->
        Alcotest.(check int) "crc('')" 0 (Crc32.string ""));
    Alcotest.test_case "single-bit sensitivity" `Quick (fun () ->
        Alcotest.(check bool) "differs" true
          (Crc32.string "facile\x00" <> Crc32.string "facile\x01")) ]

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let codec_tests =
  [ Alcotest.test_case "binary encode/decode is identity" `Quick (fun () ->
        List.iter
          (fun r ->
            match Codec.decode (Codec.encode r) with
            | Ok r' ->
              Alcotest.(check bool) "bit-identical" true (record_equal r r')
            | Error m -> Alcotest.failf "decode failed: %s" m)
          (records_for_suite ()));
    Alcotest.test_case "JSON export/import is identity" `Quick (fun () ->
        List.iter
          (fun r ->
            match Codec.of_json (Codec.to_json r) with
            | Ok r' ->
              Alcotest.(check bool) "bit-identical" true (record_equal r r')
            | Error m -> Alcotest.failf "of_json failed: %s" m)
          (records_for_suite ()));
    Alcotest.test_case "memo round trip preserves the key" `Quick (fun () ->
        List.iter
          (fun r ->
            let r' = Codec.of_memo (Codec.to_memo r) in
            Alcotest.(check bool) "same record" true (record_equal r r'))
          (records_for_suite ()));
    Alcotest.test_case "trailing bytes are rejected" `Quick (fun () ->
        let s = Codec.encode (mk_record "4801d8") ^ "\x00" in
        match Codec.decode s with
        | Ok _ -> Alcotest.fail "accepted trailing byte"
        | Error _ -> ());
    Alcotest.test_case "unknown arch code is rejected" `Quick (fun () ->
        let s = Bytes.of_string (Codec.encode (mk_record "4801d8")) in
        Bytes.set s 0 '\xFF';
        match Codec.decode (Bytes.to_string s) with
        | Ok _ -> Alcotest.fail "accepted arch code 255"
        | Error _ -> ());
    Alcotest.test_case "truncation at every length is rejected" `Quick
      (fun () ->
        let s = Codec.encode (mk_record ~arch:Config.HSW "4829d8") in
        for n = 0 to String.length s - 1 do
          match Codec.decode (String.sub s 0 n) with
          | Ok _ -> Alcotest.failf "accepted %d-byte prefix" n
          | Error _ -> ()
        done) ]

(* ------------------------------------------------------------------ *)
(* Segment scanning                                                    *)

let segment_tests =
  [ Alcotest.test_case "header round trip" `Quick (fun () ->
        let h = Segment.encode_header ~fingerprint:0x0123456789ABCDEFL in
        Alcotest.(check int) "size" Segment.header_size (String.length h);
        match Segment.decode_header h with
        | Ok fp -> Alcotest.(check int64) "fp" 0x0123456789ABCDEFL fp
        | Error e -> Alcotest.failf "%s" (Segment.header_error_to_string e));
    Alcotest.test_case "header rejects damage and skew" `Quick (fun () ->
        let h = Segment.encode_header ~fingerprint:1L in
        let damaged pos c =
          let b = Bytes.of_string h in
          Bytes.set b pos c;
          Bytes.to_string b
        in
        (match Segment.decode_header (damaged 0 'X') with
         | Error Segment.Bad_magic -> ()
         | _ -> Alcotest.fail "bad magic accepted");
        (match Segment.decode_header (damaged 12 '\xFF') with
         | Error Segment.Bad_crc -> ()
         | _ -> Alcotest.fail "flipped fingerprint byte not caught by crc");
        (match Segment.decode_header (String.sub h 0 10) with
         | Error (Segment.Truncated 10) -> ()
         | _ -> Alcotest.fail "short header accepted");
        (* version bump with a recomputed crc must decode as skew *)
        let b = Bytes.of_string h in
        Bytes.set_int32_le b 8 (Int32.of_int (Segment.version + 1));
        Bytes.set_int32_le b 20
          (Int32.of_int (Crc32.sub (Bytes.to_string b) 0 20));
        match Segment.decode_header (Bytes.to_string b) with
        | Error (Segment.Version_skew { found; expected }) ->
          Alcotest.(check int) "found" (Segment.version + 1) found;
          Alcotest.(check int) "expected" Segment.version expected
        | _ -> Alcotest.fail "version skew accepted");
    Alcotest.test_case "scan quarantines a middle frame, keeps the rest"
      `Quick (fun () ->
        let header = Segment.encode_header ~fingerprint:0L in
        let payloads = [ "alpha"; "bravo"; "charlie" ] in
        let file =
          header ^ String.concat "" (List.map Segment.encode_frame payloads)
        in
        (* flip a payload bit of frame 2 (offset: header + frame1 + 8) *)
        let off =
          Segment.header_size + (8 + String.length "alpha") + 8
        in
        let b = Bytes.of_string file in
        Bytes.set b off 'B';
        let scan = Segment.scan (Bytes.to_string b) in
        Alcotest.(check (list string)) "survivors" [ "alpha"; "charlie" ]
          (List.map snd scan.Segment.frames);
        (match scan.Segment.findings with
         | [ Segment.Crc_mismatch { len; _ } ] ->
           Alcotest.(check int) "len" 5 len
         | _ -> Alcotest.fail "expected exactly one quarantine finding");
        Alcotest.(check int) "good_end is EOF" (String.length file)
          scan.Segment.good_end);
    Alcotest.test_case "scan stops at an implausible length" `Quick (fun () ->
        let header = Segment.encode_header ~fingerprint:0L in
        let good = Segment.encode_frame "ok" in
        let bogus = Bytes.create 8 in
        Bytes.set_int32_le bogus 0 (Int32.of_int (Segment.max_frame + 1));
        Bytes.set_int32_le bogus 4 0l;
        let file = header ^ good ^ Bytes.to_string bogus ^ "junk" in
        let scan = Segment.scan file in
        Alcotest.(check (list string)) "frames before damage" [ "ok" ]
          (List.map snd scan.Segment.frames);
        Alcotest.(check int) "good_end before damage"
          (Segment.header_size + String.length good)
          scan.Segment.good_end;
        match scan.Segment.findings with
        | [ Segment.Torn_tail { off; remaining } ] ->
          Alcotest.(check int) "off" scan.Segment.good_end off;
          Alcotest.(check int) "remaining" 12 remaining
        | _ -> Alcotest.fail "expected a torn-tail finding") ]

(* ------------------------------------------------------------------ *)
(* Store recovery                                                      *)

let recovery_tests =
  [ Alcotest.test_case "append then load is bit-identical" `Quick (fun () ->
        with_temp @@ fun path ->
        let records = records_for_suite () in
        populate path records;
        let r = check_load_ok path in
        Alcotest.(check bool) "clean" true (Store.report_clean r);
        Alcotest.(check int) "count" (List.length records)
          (List.length r.Store.records);
        List.iter2
          (fun a b ->
            Alcotest.(check bool) "record equal" true (record_equal a b))
          records r.Store.records);
    Alcotest.test_case "every torn-tail truncation point recovers" `Quick
      (fun () ->
        (* chop the file at every length between "last frame intact"
           and EOF: each prefix must load as exactly the intact frames,
           and open_rw must truncate to that and resume appending *)
        with_temp @@ fun path ->
        let records = records_for_suite () in
        populate path records;
        let whole = read_file path in
        let r0 = check_load_ok path in
        let last_start =
          (* offset where the final frame begins *)
          let all_but_last =
            List.filteri
              (fun i _ -> i < List.length records - 1)
              records
          in
          Segment.header_size
          + List.fold_left
              (fun acc r ->
                acc + 8 + String.length (Codec.encode r))
              0 all_but_last
        in
        Alcotest.(check int) "file accounted for" r0.Store.file_size
          (String.length whole);
        for cut = last_start + 1 to String.length whole - 1 do
          write_file path (String.sub whole 0 cut);
          let r = check_load_ok path in
          Alcotest.(check int) "lost exactly the last frame"
            (List.length records - 1)
            (List.length r.Store.records);
          Alcotest.(check bool) "torn tail reported" true
            (r.Store.torn_tail > 0);
          Alcotest.(check int) "good_end" last_start r.Store.good_end;
          (* reopen: truncates, resumes, and the re-appended record
             brings the store back to full strength *)
          (match Store.open_rw path with
           | Error e -> Alcotest.failf "recovery open: %s" (Err.to_string e)
           | Ok (w, rep) ->
             Alcotest.(check bool) "recovered clean" true
               (Store.report_clean rep);
             Store.append w (List.nth records (List.length records - 1));
             Store.close w);
          let r' = check_load_ok path in
          Alcotest.(check bool) "clean after repair" true
            (Store.report_clean r');
          Alcotest.(check int) "full strength" (List.length records)
            (List.length r'.Store.records)
        done);
    Alcotest.test_case "corrupt frame is quarantined, not served" `Quick
      (fun () ->
        with_temp @@ fun path ->
        let records = records_for_suite () in
        populate path records;
        (* damage the first payload byte of frame 1 *)
        flip_bit path (Segment.header_size + 8);
        let r = check_load_ok path in
        Alcotest.(check int) "quarantined" 1 r.Store.quarantined;
        Alcotest.(check int) "served" (List.length records - 1)
          (List.length r.Store.records);
        Alcotest.(check bool) "not clean" false (Store.report_clean r);
        (* the quarantined frame survives a reopen (no truncation) *)
        (match Store.open_rw path with
         | Error e -> Alcotest.failf "reopen: %s" (Err.to_string e)
         | Ok (w, rep) ->
           Alcotest.(check int) "still quarantined" 1 rep.Store.quarantined;
           Store.close w);
        let r' = check_load_ok path in
        Alcotest.(check int) "still quarantined after reopen" 1
          r'.Store.quarantined);
    Alcotest.test_case "fingerprint skew is refused with exit code 12"
      `Quick (fun () ->
        with_temp @@ fun path ->
        let fp = Int64.lognot (Store.fingerprint ()) in
        write_file path
          (Segment.encode_header ~fingerprint:fp
          ^ Segment.encode_frame (Codec.encode (mk_record "90")));
        let e = check_load_err path in
        Alcotest.(check bool) "Store_skew" true (e.Err.kind = Err.Store_skew);
        Alcotest.(check int) "exit code" 12 (Err.exit_code e.Err.kind);
        (* a writer must refuse too — never append to a foreign store *)
        (match Store.open_rw path with
         | Ok (w, _) -> Store.close w; Alcotest.fail "open_rw accepted skew"
         | Error e' ->
           Alcotest.(check bool) "writer refuses" true
             (e'.Err.kind = Err.Store_skew));
        (* but a fingerprint-blind inspection load still works *)
        match Store.load ~check_fingerprint:false path with
        | Ok r ->
          Alcotest.(check int64) "stored fp visible" fp
            r.Store.stored_fingerprint
        | Error e' -> Alcotest.failf "blind load: %s" (Err.to_string e'));
    Alcotest.test_case "corrupt header is refused as Check_failed" `Quick
      (fun () ->
        with_temp @@ fun path ->
        populate path [ mk_record "90" ];
        flip_bit path 2;  (* inside the magic *)
        let e = check_load_err path in
        Alcotest.(check bool) "Check_failed" true
          (e.Err.kind = Err.Check_failed)) ]

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

(* The fault table is process-global: always clear it, also on
   failure, or later suites inherit the injection. *)
let with_fault spec f =
  Fault.configure spec;
  Fun.protect ~finally:Fault.clear f

let fault_tests =
  [ Alcotest.test_case "short write tears the tail; reopen recovers"
      `Quick (fun () ->
        with_temp @@ fun path ->
        let r1 = mk_record "4801d8" and r2 = mk_record "4829d8" in
        populate path [ r1 ];
        let size_before = (Unix.stat path).Unix.st_size in
        (match Store.open_rw path with
         | Error e -> Alcotest.failf "open: %s" (Err.to_string e)
         | Ok (w, _) ->
           Fun.protect ~finally:(fun () -> Store.close w) @@ fun () ->
           with_fault "store.short_write:1:7:1" @@ fun () ->
           match Store.append w r2 with
           | () -> Alcotest.fail "short write did not surface"
           | exception Err.Error e ->
             Alcotest.(check bool) "Internal" true
               (e.Err.kind = Err.Internal));
        (* some prefix of the frame hit the disk: the file grew but the
           new frame must not be served *)
        let size_after = (Unix.stat path).Unix.st_size in
        Alcotest.(check bool) "partial bytes on disk" true
          (size_after > size_before);
        let r = check_load_ok path in
        Alcotest.(check int) "only the old record" 1
          (List.length r.Store.records);
        Alcotest.(check bool) "torn" true (r.Store.torn_tail > 0);
        (* recovery: reopen truncates, the retry lands cleanly *)
        (match Store.open_rw path with
         | Error e -> Alcotest.failf "reopen: %s" (Err.to_string e)
         | Ok (w, rep) ->
           Alcotest.(check bool) "recovered" true (Store.report_clean rep);
           Store.append w r2;
           Store.close w);
        let r' = check_load_ok path in
        Alcotest.(check bool) "clean" true (Store.report_clean r');
        Alcotest.(check int) "both records" 2 (List.length r'.Store.records));
    Alcotest.test_case "enospc surfaces before any byte is written" `Quick
      (fun () ->
        with_temp @@ fun path ->
        populate path [ mk_record "90" ];
        let size_before = (Unix.stat path).Unix.st_size in
        (match Store.open_rw path with
         | Error e -> Alcotest.failf "open: %s" (Err.to_string e)
         | Ok (w, _) ->
           Fun.protect ~finally:(fun () -> Store.close w) @@ fun () ->
           with_fault "store.enospc:1:3:1" @@ fun () ->
           match Store.append w (mk_record "4801d8") with
           | () -> Alcotest.fail "enospc did not surface"
           | exception Err.Error e ->
             Alcotest.(check bool) "Internal" true
               (e.Err.kind = Err.Internal));
        Alcotest.(check int) "file untouched" size_before
          (Unix.stat path).Unix.st_size;
        Alcotest.(check bool) "still clean" true
          (Store.report_clean (check_load_ok path)));
    Alcotest.test_case "read fault quarantines instead of serving garbage"
      `Quick (fun () ->
        with_temp @@ fun path ->
        populate path (records_for_suite ());
        let r =
          with_fault "store.read:1:11:1" @@ fun () -> check_load_ok path
        in
        Alcotest.(check int) "one frame quarantined" 1 r.Store.quarantined;
        Alcotest.(check int) "rest served" 3 (List.length r.Store.records);
        (* the file itself is undamaged — a clean re-read proves the
           flip happened in memory, as real media corruption would *)
        Alcotest.(check bool) "file clean" true
          (Store.report_clean (check_load_ok path))) ]

(* ------------------------------------------------------------------ *)
(* Warm restart equality                                               *)

let warm_tests =
  [ Alcotest.test_case "warm-seeded engine serves bit-identical hits"
      `Quick (fun () ->
        with_temp @@ fun path ->
        let cfg = Config.by_arch Config.SKL in
        let blocks = List.map (block_of_hex cfg) [ "4801d8"; "4829d8"; "90" ] in
        (* cold engine: compute, then persist its memo table *)
        let cold_preds =
          Engine.with_pool ~workers:1 (fun t ->
              let ps = List.map (Engine.predict t ~mode:`Auto) blocks in
              (match Store.open_rw path with
               | Error e -> Alcotest.failf "open: %s" (Err.to_string e)
               | Ok (w, _) ->
                 let n = Store.sync_memo w (Engine.memo_entries t) in
                 Store.close w;
                 Alcotest.(check int) "all persisted" 3 n);
              ps)
        in
        (* warm engine: seed from the store, predict again *)
        let report = check_load_ok path in
        Engine.with_pool ~workers:1 (fun t ->
            Engine.memo_seed t
              (List.rev_map Codec.to_memo report.Store.records);
            let warm_preds = List.map (Engine.predict t ~mode:`Auto) blocks in
            let hits, misses = Engine.memo_stats t in
            Alcotest.(check int) "every block a hit" 3 hits;
            Alcotest.(check int) "no recompute" 0 misses;
            List.iter2
              (fun a b ->
                Alcotest.(check bool) "bit-identical" true
                  (Codec.pred_equal a b))
              cold_preds warm_preds));
    Alcotest.test_case "warm restart is shard-count agnostic" `Quick
      (fun () ->
        (* persist from a 4-shard cache, re-seed engines with different
           shard counts: every block must still be a bit-identical hit,
           whatever shard its key lands in after the restart *)
        with_temp @@ fun path ->
        let cfg = Config.by_arch Config.SKL in
        let blocks =
          List.map (block_of_hex cfg)
            [ "4801d8"; "4829d8"; "90"; "4801c8"; "4831c0"; "4889c3" ]
        in
        let cold_preds =
          Engine.with_pool ~workers:1 ~cache_shards:4 (fun t ->
              let ps = List.map (Engine.predict t ~mode:`Auto) blocks in
              (match Store.open_rw path with
               | Error e -> Alcotest.failf "open: %s" (Err.to_string e)
               | Ok (w, _) ->
                 let n = Store.sync_memo w (Engine.memo_entries t) in
                 Store.close w;
                 Alcotest.(check int) "all persisted" 6 n);
              ps)
        in
        let report = check_load_ok path in
        List.iter
          (fun cache_shards ->
            Engine.with_pool ~workers:1 ~cache_shards (fun t ->
                Engine.memo_seed t
                  (List.rev_map Codec.to_memo report.Store.records);
                let warm_preds =
                  List.map (Engine.predict t ~mode:`Auto) blocks
                in
                let hits, misses = Engine.memo_stats t in
                Alcotest.(check int)
                  (Printf.sprintf "%d shards: every block a hit" cache_shards)
                  6 hits;
                Alcotest.(check int)
                  (Printf.sprintf "%d shards: no recompute" cache_shards)
                  0 misses;
                List.iter2
                  (fun a b ->
                    Alcotest.(check bool) "bit-identical" true
                      (Codec.pred_equal a b))
                  cold_preds warm_preds))
          [ 1; 8 ]);
    Alcotest.test_case "sync_memo dedups against recovered records" `Quick
      (fun () ->
        with_temp @@ fun path ->
        let records = records_for_suite () in
        populate path records;
        match Store.open_rw path with
        | Error e -> Alcotest.failf "open: %s" (Err.to_string e)
        | Ok (w, _) ->
          Fun.protect ~finally:(fun () -> Store.close w) @@ fun () ->
          Alcotest.(check int) "seen covers the file"
            (List.length records) (Store.seen_count w);
          (* replaying the same entries appends nothing *)
          let n = Store.sync_memo w (List.map Codec.to_memo records) in
          Alcotest.(check int) "no duplicates" 0 n;
          (* one genuinely new entry appends exactly one frame *)
          let fresh = mk_record ~arch:Config.SNB "4801c8" in
          let n' =
            Store.sync_memo w (Codec.to_memo fresh :: List.map Codec.to_memo records)
          in
          Alcotest.(check int) "one fresh" 1 n') ]

(* ------------------------------------------------------------------ *)
(* CLI exit codes (subprocess)                                         *)

(* The binary is a declared dune dep of this test, so the relative
   path is stable under `dune runtest`. *)
let facile_exe = "../bin/facile.exe"

let run_cli args =
  Sys.command
    (Printf.sprintf "%s %s </dev/null >/dev/null 2>&1" facile_exe args)

let cli_tests =
  [ Alcotest.test_case "--cache-cap 0 exits 1 before reading input" `Quick
      (fun () ->
        Alcotest.(check int) "batch" 1 (run_cli "batch --cache-cap 0"));
    Alcotest.test_case "cache verify: skewed store exits 12" `Quick (fun () ->
        with_temp @@ fun path ->
        write_file path
          (Segment.encode_header
             ~fingerprint:(Int64.lognot (Store.fingerprint ()))
          ^ Segment.encode_frame (Codec.encode (mk_record "90")));
        Alcotest.(check int) "exit 12" 12
          (run_cli (Printf.sprintf "cache verify %s" (Filename.quote path))));
    Alcotest.test_case "cache verify: corrupt frame exits 10, clean exits 0"
      `Quick (fun () ->
        with_temp @@ fun path ->
        populate path (records_for_suite ());
        Alcotest.(check int) "clean store passes" 0
          (run_cli
             (Printf.sprintf "cache verify --recompute %s"
                (Filename.quote path)));
        flip_bit path (Segment.header_size + 8);
        Alcotest.(check int) "corrupt store fails" 10
          (run_cli (Printf.sprintf "cache verify %s" (Filename.quote path)))) ]

let suite =
  [ "store.crc32", crc_tests;
    "store.codec", codec_tests;
    "store.segment", segment_tests;
    "store.recovery", recovery_tests;
    "store.fault", fault_tests;
    "store.warm", warm_tests;
    "store.cli", cli_tests ]
