(* Chaos soak harness for `facile serve`.

   Drives the real binary end to end over OS pipes with thousands of
   mixed requests — valid hex, assembly, typed-error inputs, malformed
   JSON, stats probes — under deterministic fault injection
   (FACILE_FAULT), deadlines, saturation, signals, and tight cache
   bounds.  The service must never crash: every run must exit 0, answer
   every accepted line exactly once, keep the valid subset bit-identical
   to a fault-free baseline, and account for every injected fault in
   its final stats snapshot.

   Usage: chaos.exe path/to/facile.exe   (wired to `dune build @chaos`) *)

module Json = Facile_obs.Json
module Sync = Facile_core.Sync

let bin = Sys.argv.(1)

let failures = ref 0

let checkf name ok fmt =
  Printf.ksprintf
    (fun msg ->
      if ok then Printf.printf "  ok    %s\n%!" name
      else begin
        incr failures;
        Printf.printf "  FAIL  %s: %s\n%!" name msg
      end)
    fmt

let check name ok = checkf name ok "assertion failed"

(* ----- deterministic request corpus ----- *)

(* splitmix64, so the corpus (and any pacing decisions) are identical
   on every run *)
let mk_rng seed =
  let state = ref seed in
  fun () ->
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

let rand_int rng n = Int64.to_int (Int64.rem (Int64.logand (rng ()) Int64.max_int) (Int64.of_int n))

let valid_hexes =
  [| "90"; "4801d8"; "4829d8"; "4831c0"; "4889d8"; "90904801d8";
     "4801d84829d8"; "909090" |]

let valid_asms = [| "add rax, rbx"; "imul rcx, rdx"; "xor rax, rax" |]

(* a mixed request line; [i] is the wire id so responses can be joined
   back to requests *)
let mixed_request rng i =
  let id = [ "id", Json.Int i ] in
  let obj fields = Json.to_string (Json.Obj (id @ fields)) in
  match rand_int rng 20 with
  | 0 -> obj [ "hex", Json.Str "zz" ]                       (* bad_hex *)
  | 1 -> obj [ "arch", Json.Str "ZZZ"; "hex", Json.Str "90" ] (* unknown_arch *)
  | 2 -> obj [ "mode", Json.Str "spin"; "hex", Json.Str "90" ] (* unknown_mode *)
  | 3 -> obj [ "hex", Json.Str "62" ]                       (* encode_error *)
  | 4 -> "definitely not json"                              (* bad_request *)
  | 5 -> obj [ "asm", Json.Str valid_asms.(rand_int rng (Array.length valid_asms)) ]
  | 6 -> Json.to_string (Json.Obj (id @ [ "cmd", Json.Str "stats" ]))
  | 7 ->
    (* oversized: over the soak runs' --max-input-bytes 4096 *)
    obj [ "hex", Json.Str (String.concat "" (List.init 4100 (fun _ -> "90"))) ]
  | _ ->
    let arch = if rand_int rng 4 = 0 then "HSW" else "SKL" in
    obj
      [ "arch", Json.Str arch;
        "hex", Json.Str valid_hexes.(rand_int rng (Array.length valid_hexes)) ]

let corpus ~n ~seed = let rng = mk_rng (Int64.of_int seed) in List.init n (mixed_request rng)

(* ----- driving one live serve process ----- *)

type outcome = {
  exit_code : int;
  lines : string list;        (* stdout lines, in order *)
  err_lines : string list;    (* stderr lines (config announce, stats) *)
  final_stats : Json.t option; (* from the stderr snapshot *)
  wall_s : float;
}

(* Feed [requests] (optionally [pace]d in seconds), read every response
   line; [kill_after n] sends [kill_signal] (default SIGTERM) once [n]
   requests are written and keeps stdin open so shutdown is
   signal-driven — with SIGKILL this is the crash-recovery drill and
   the reported exit code is the real wait status (137). *)
let run_serve ?(args = []) ?(env = []) ?(pace = 0.)
    ?(kill_signal = Sys.sigterm) ?kill_after requests =
  (* cloexec: the child must NOT inherit the parent ends — holding a
     copy of in_w would stop its own stdin from ever reaching EOF.
     create_process dup2s the three fds onto 0/1/2, clearing cloexec
     on the child's copies. *)
  let in_r, in_w = Unix.pipe ~cloexec:true () in
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let err_r, err_w = Unix.pipe ~cloexec:true () in
  let env_array =
    Array.append (Unix.environment ())
      (Array.of_list (List.map (fun (k, v) -> k ^ "=" ^ v) env))
  in
  let argv = Array.of_list ((bin :: "serve" :: args)) in
  let started = Unix.gettimeofday () in
  let pid = Unix.create_process_env bin argv env_array in_r out_w err_w in
  Unix.close in_r; Unix.close out_w; Unix.close err_w;
  let reaped = ref None in
  let feeder =
    Thread.create
      (fun () ->
        let oc = Unix.out_channel_of_descr in_w in
        (try
           List.iteri
             (fun i line ->
               output_string oc line;
               output_char oc '\n';
               flush oc;
               if pace > 0. then Thread.delay pace;
               match kill_after with
               | Some n when i + 1 = n -> Unix.kill pid kill_signal
               | _ -> ())
             requests;
           if kill_after = None then close_out oc
           else begin
             (* signal-driven shutdown: wait for the server to exit
                before dropping the pipe *)
             let _, st = Unix.waitpid [ Unix.WUNTRACED ] pid in
             reaped := Some st;
             try close_out oc with Sys_error _ -> ()
           end
         with Sys_error _ -> (* server went away mid-write: fine *) ()))
      ()
  in
  let errbuf = Buffer.create 4096 in
  let err_reader =
    Thread.create
      (fun () ->
        let ic = Unix.in_channel_of_descr err_r in
        (try
           while true do
             Buffer.add_string errbuf (input_line ic);
             Buffer.add_char errbuf '\n'
           done
         with End_of_file -> ());
        close_in ic)
      ()
  in
  let lines = ref [] in
  let ic = Unix.in_channel_of_descr out_r in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Thread.join feeder;
  Thread.join err_reader;
  let status =
    if kill_after = None then snd (Unix.waitpid [] pid)
    else
      (* reaped by the feeder; a feeder that died on Sys_error before
         reaping leaves the child to us *)
      match !reaped with
      | Some st -> st
      | None -> snd (Unix.waitpid [] pid)
  in
  let wall_s = Unix.gettimeofday () -. started in
  let exit_code =
    (* OCaml's WSIGNALED carries the runtime's own (negative) signal
       encoding, not the POSIX number — translate the ones we send so
       the shell convention (128+N) holds *)
    let posix s =
      if s = Sys.sigkill then 9 else if s = Sys.sigterm then 15 else abs s
    in
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s -> 128 + posix s
    | Unix.WSTOPPED s -> 256 + posix s
  in
  let err_lines = Buffer.contents errbuf |> String.split_on_char '\n' in
  let final_stats =
    List.find_map
      (fun l ->
        match Json.parse l with
        | Ok j -> Json.member "final_stats" j
        | Error _ -> None)
      err_lines
  in
  { exit_code; lines = List.rev !lines; err_lines; final_stats; wall_s }

(* ----- response utilities ----- *)

let parse_resp line =
  match Json.parse line with
  | Ok j -> j
  | Error m -> failwith (Printf.sprintf "unparseable response %S: %s" line m)

let resp_id j = Option.bind (Json.member "id" j) Json.int_opt

let error_kind j =
  Option.bind (Json.member "error" j) (fun e ->
      Option.bind (Json.member "kind" e) Json.string_opt)

(* id -> raw response line, for exact comparison; stats responses vary
   between runs (latency, uptime) so they are excluded from equality *)
let by_id lines =
  List.fold_left
    (fun acc line ->
      let j = parse_resp line in
      match resp_id j with
      | Some id when Json.member "stats" j = None -> (id, (line, j)) :: acc
      | _ -> acc)
    [] lines

let get_int path j =
  let rec go path j =
    match path with
    | [] -> Json.int_opt j
    | k :: rest -> Option.bind (Json.member k j) (go rest)
  in
  match go path j with
  | Some i -> i
  | None -> failwith ("final_stats missing " ^ String.concat "." path)

(* ----- phases ----- *)

let soak_n = 5000

let soak_args = [ "--queue"; "100000"; "--max-input-bytes"; "4096" ]

let phase_baseline () =
  Printf.printf "phase: baseline soak (%d mixed requests)\n%!" soak_n;
  let reqs = corpus ~n:soak_n ~seed:1 in
  let r = run_serve ~args:soak_args reqs in
  check "exit 0" (r.exit_code = 0);
  checkf "one response per request" (List.length r.lines = soak_n)
    "%d responses for %d requests" (List.length r.lines) soak_n;
  List.iter (fun l -> ignore (parse_resp l)) r.lines;
  let leaked =
    List.filter (fun l -> error_kind (parse_resp l) = Some "internal") r.lines
  in
  checkf "no internal leak without faults" (leaked = []) "%d internal"
    (List.length leaked);
  let too_large =
    List.filter (fun l -> error_kind (parse_resp l) = Some "too_large")
      r.lines
  in
  checkf "oversized requests answered too_large" (too_large <> []) "none";
  check "final stats flushed" (r.final_stats <> None);
  (match r.final_stats with
   | Some s ->
     checkf "all requests counted" (get_int [ "requests"; "total" ] s = soak_n)
       "total=%d" (get_int [ "requests"; "total" ] s)
   | None -> ());
  r

let phase_faults baseline =
  Printf.printf "phase: fault-injected soak (same corpus, faults armed)\n%!";
  let reqs = corpus ~n:soak_n ~seed:1 in
  let r =
    run_serve ~args:soak_args
      ~env:[ "FACILE_FAULT", "decode:0.02:7,predict:0.02:11,respond:0.01:13" ]
      ~pace:0.0002 (* give crashed executors a chance to respawn *)
      reqs
  in
  check "exit 0 under faults" (r.exit_code = 0);
  checkf "every line answered" (List.length r.lines = soak_n)
    "%d responses" (List.length r.lines);
  let base = by_id baseline.lines in
  let faulted = by_id r.lines in
  let diverged =
    List.filter
      (fun (id, (line, j)) ->
        match error_kind j with
        | Some ("internal" | "timeout" | "retry_after") -> false
        | _ -> (
            match List.assoc_opt id base with
            | Some (bline, _) -> bline <> line
            | None -> true))
      faulted
  in
  checkf "valid subset identical to fault-free run" (diverged = [])
    "%d diverged (e.g. id %s)" (List.length diverged)
    (match diverged with (id, _) :: _ -> string_of_int id | [] -> "-");
  (match r.final_stats with
   | None -> check "final stats flushed" false
   | Some s ->
     let injected p = get_int [ "faults"; p; "injected" ] s in
     let total_injected =
       injected "decode" + injected "predict" + injected "respond"
     in
     checkf "faults actually injected" (total_injected > 0) "none injected";
     (* every injected fault surfaces as a typed internal error — and
        nothing else produces internal errors in this run *)
     let internal = get_int [ "errors"; "by_kind"; "internal" ] s in
     checkf "every injected fault counted"
       (internal = total_injected)
       "internal=%d injected=%d" internal total_injected;
     checkf "executor respawned" (get_int [ "supervisor"; "respawns" ] s > 0)
       "no respawns";
     (* at this crash intensity the breaker may or may not be open at
        snapshot time; if it is, the transition must be accounted *)
     let open_now =
       Json.member "supervisor" s
       |> Fun.flip Option.bind (Json.member "degraded")
       = Some (Json.Bool true)
     in
     check "breaker state accounted"
       ((not open_now)
        || get_int [ "supervisor"; "degraded_transitions" ] s >= 1))

let phase_saturation () =
  Printf.printf "phase: saturation shed (queue 8, no pacing)\n%!";
  let n = 2000 in
  let reqs = corpus ~n ~seed:2 in
  let r = run_serve ~args:[ "--queue"; "8" ] reqs in
  check "exit 0 at saturation" (r.exit_code = 0);
  checkf "no line dropped" (List.length r.lines = n) "%d responses"
    (List.length r.lines);
  match r.final_stats with
  | None -> check "final stats flushed" false
  | Some s ->
    let shed = get_int [ "queue"; "shed" ] s in
    checkf "backpressure shed" (shed > 0) "no shedding at queue 8";
    let sheds =
      List.filter (fun l -> error_kind (parse_resp l) = Some "retry_after")
        r.lines
    in
    checkf "shed lines answered retry_after" (List.length sheds = shed)
      "%d retry_after responses, stats say %d" (List.length sheds) shed;
    (* the number the CI tracks: overhead of shedding at saturation *)
    Printf.printf
      "BENCH {\"name\":\"chaos.saturation\",\"requests\":%d,\"shed\":%d,\
       \"wall_s\":%.3f,\"rps\":%.0f}\n%!"
      n shed r.wall_s (float_of_int n /. r.wall_s)

let phase_deadline () =
  Printf.printf "phase: exhausted deadline (--deadline-ms 0)\n%!";
  let n = 500 in
  let rng = mk_rng 3L in
  let reqs =
    List.init n (fun i ->
        Json.to_string
          (Json.Obj
             [ "id", Json.Int i;
               "hex",
               Json.Str valid_hexes.(rand_int rng (Array.length valid_hexes)) ]))
  in
  let r =
    run_serve ~args:[ "--deadline-ms"; "0"; "--queue"; "100000" ] reqs
  in
  check "exit 0 with deadlines" (r.exit_code = 0);
  let timeouts =
    List.length
      (List.filter (fun l -> error_kind (parse_resp l) = Some "timeout")
         r.lines)
  in
  checkf "every predict timed out" (timeouts = n) "%d/%d timeouts" timeouts n;
  match r.final_stats with
  | None -> check "final stats flushed" false
  | Some s ->
    checkf "timeouts counted" (get_int [ "errors"; "by_kind"; "timeout" ] s = n)
      "stats disagree";
    checkf "timeouts are not crashes"
      (get_int [ "supervisor"; "crashes" ] s = 0) "crash counted"

let phase_sigterm () =
  Printf.printf "phase: SIGTERM mid-stream\n%!";
  let reqs = corpus ~n:200 ~seed:4 in
  let r = run_serve ~args:[ "--queue"; "100000" ] ~pace:0.001 ~kill_after:100 reqs in
  check "exit 0 on SIGTERM" (r.exit_code = 0);
  check "final stats flushed on SIGTERM" (r.final_stats <> None);
  checkf "accepted work answered before exit" (List.length r.lines >= 1)
    "no responses at all"

let phase_breaker () =
  Printf.printf "phase: circuit breaker (every predict crashes, paced)\n%!";
  let n = 40 in
  let reqs =
    List.init n (fun i ->
        Json.to_string (Json.Obj [ "id", Json.Int i; "hex", Json.Str "90" ]))
  in
  let r =
    run_serve
      ~args:[ "--queue"; "100000" ]
      ~env:[ "FACILE_FAULT", "predict:1:5" ]
      ~pace:0.02 reqs
  in
  check "exit 0 with permanent faults" (r.exit_code = 0);
  checkf "all answered" (List.length r.lines = n) "%d responses"
    (List.length r.lines);
  check "all internal"
    (List.for_all (fun l -> error_kind (parse_resp l) = Some "internal")
       r.lines);
  match r.final_stats with
  | None -> check "final stats flushed" false
  | Some s ->
    checkf "breaker tripped"
      (get_int [ "supervisor"; "degraded_transitions" ] s >= 1)
      "degraded_transitions=%d respawns=%d"
      (get_int [ "supervisor"; "degraded_transitions" ] s)
      (get_int [ "supervisor"; "respawns" ] s);
    checkf "degraded work ran inline"
      (get_int [ "supervisor"; "inline_runs" ] s > 0) "none inline"

(* ----- TCP serving tier ----- *)

(* Same record convention as bench/experiments.ml: one `BENCH {...}`
   line on stdout and the JSON persisted to BENCH_<name>.json in
   $FACILE_BENCH_DIR (default: the working directory). *)
let bench_record name fields =
  let line = Json.to_string (Json.Obj (("name", Json.Str name) :: fields)) in
  Printf.printf "BENCH %s\n%!" line;
  let dir =
    match Sys.getenv_opt "FACILE_BENCH_DIR" with
    | Some d when d <> "" -> d
    | _ -> Filename.current_dir_name
  in
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" name) in
  let oc = open_out path in
  output_string oc line;
  output_char oc '\n';
  close_out oc

type tcp_server = {
  pid : int;
  port : int;
  err_thread : Thread.t;
  errbuf : Buffer.t;
  emu : Mutex.t;
}

(* Start `facile serve --tcp 127.0.0.1:0 ...` and wait for the
   ephemeral port announced as {"listening":"host:port"} on stderr. *)
let spawn_tcp ?(env = []) args =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let err_r, err_w = Unix.pipe ~cloexec:true () in
  let env_array =
    Array.append (Unix.environment ())
      (Array.of_list (List.map (fun (k, v) -> k ^ "=" ^ v) env))
  in
  let argv =
    Array.of_list (bin :: "serve" :: "--tcp" :: "127.0.0.1:0" :: args)
  in
  let pid = Unix.create_process_env bin argv env_array devnull out_w err_w in
  Unix.close devnull;
  Unix.close out_w;
  Unix.close err_w;
  (* stdout stays silent in TCP mode; drain it so the child never
     blocks on a full pipe *)
  ignore
    (Thread.create
       (fun () ->
         let ic = Unix.in_channel_of_descr out_r in
         (try
            while true do
              ignore (input_line ic)
            done
          with End_of_file -> ());
         close_in ic)
       ());
  let port = ref None in
  let pmu = Mutex.create () in
  let errbuf = Buffer.create 4096 in
  let emu = Mutex.create () in
  let err_thread =
    Thread.create
      (fun () ->
        let ic = Unix.in_channel_of_descr err_r in
        (try
           while true do
             let l = input_line ic in
             (match Json.parse l with
              | Ok j ->
                (match Json.member "listening" j with
                 | Some (Json.Str hp) ->
                   (match String.rindex_opt hp ':' with
                    | Some i ->
                      let p =
                        int_of_string
                          (String.sub hp (i + 1) (String.length hp - i - 1))
                      in
                      Sync.with_lock pmu (fun () -> port := Some p)
                    | None -> ())
                 | _ -> ())
              | Error _ -> ());
             Sync.with_lock emu (fun () ->
                 Buffer.add_string errbuf l;
                 Buffer.add_char errbuf '\n')
           done
         with End_of_file -> ());
        close_in ic)
      ()
  in
  let rec wait_port n =
    if n = 0 then failwith "TCP server never announced its port";
    let p = Sync.with_lock pmu (fun () -> !port) in
    match p with
    | Some p -> p
    | None ->
      Thread.delay 0.05;
      wait_port (n - 1)
  in
  let p = wait_port 100 in
  { pid; port = p; err_thread; errbuf; emu }

(* SIGTERM the server, reap it, and return (exit_code, final_stats). *)
let stop_tcp s =
  (try Unix.kill s.pid Sys.sigterm with Unix.Unix_error _ -> ());
  let _, status = Unix.waitpid [] s.pid in
  Thread.join s.err_thread;
  let exit_code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED n -> 128 + n
    | Unix.WSTOPPED n -> 256 + n
  in
  let err = Sync.with_lock s.emu (fun () -> Buffer.contents s.errbuf) in
  let final_stats =
    String.split_on_char '\n' err
    |> List.find_map (fun l ->
           match Json.parse l with
           | Ok j -> Json.member "final_stats" j
           | Error _ -> None)
  in
  (exit_code, final_stats)

let server_alive s =
  match Unix.kill s.pid 0 with
  | () -> true
  | exception Unix.Unix_error _ -> false

(* One TCP client conversation: send every request (optionally paced),
   half-close, collect every response line until the server's EOF.  A
   concurrent reader thread keeps both socket directions draining so
   neither side can deadlock on full kernel buffers. *)
let tcp_client ?(pace = 0.) port requests =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let lines = ref [] in
  let reader =
    Thread.create
      (fun () ->
        let ic = Unix.in_channel_of_descr fd in
        try
          while true do
            lines := input_line ic :: !lines
          done
        with End_of_file | Sys_error _ -> ())
      ()
  in
  let send s =
    let b = Bytes.unsafe_of_string s in
    let n = Bytes.length b in
    let rec go off =
      if off < n then go (off + Unix.write fd b off (n - off))
    in
    go 0
  in
  (try
     List.iter
       (fun r ->
         send (r ^ "\n");
         if pace > 0. then Thread.delay pace)
       requests;
     Unix.shutdown fd Unix.SHUTDOWN_SEND
   with Unix.Unix_error _ | Sys_error _ -> ());
  Thread.join reader;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  List.rev !lines

let tcp_get_stats port =
  match tcp_client port [ {|{"cmd":"stats"}|} ] with
  | [ l ] ->
    (match Json.member "stats" (parse_resp l) with
     | Some s -> s
     | None -> failwith "stats response without stats member")
  | ls -> failwith (Printf.sprintf "%d responses to one stats probe"
                      (List.length ls))

let phase_tcp_storm () =
  let clients = 32 and per = 150 in
  Printf.printf "phase: TCP storm (%d concurrent clients, faults armed)\n%!"
    clients;
  let s =
    spawn_tcp ~env:[ "FACILE_FAULT", "decode:0.02:7,predict:0.02:11,respond:0.01:13" ]
      soak_args
  in
  let results = Array.make clients [] in
  let threads =
    List.init clients (fun c ->
        Thread.create
          (fun () ->
            (* mixed valid/garbage/oversized traffic, distinct id
               ranges per client; light pacing lets crashed executors
               respawn, as in the stdio fault phase *)
            let rng = mk_rng (Int64.of_int (100 + c)) in
            let reqs =
              List.init per (fun i ->
                  mixed_request rng ((1_000_000 * (c + 1)) + i))
            in
            results.(c) <- tcp_client ~pace:0.002 s.port reqs)
          ())
  in
  List.iter Thread.join threads;
  check "server alive after the storm" (server_alive s);
  Array.iteri
    (fun c lines ->
      checkf
        (Printf.sprintf "client %d: every line answered" c)
        (List.length lines = per)
        "%d responses for %d requests" (List.length lines) per;
      List.iter (fun l -> ignore (parse_resp l)) lines)
    results;
  (* responses carry the protocol version on the wire *)
  let tagged =
    Array.for_all
      (List.for_all (fun l ->
           Option.bind (Json.member "proto" (parse_resp l)) Json.int_opt
           = Some 1))
      results
  in
  check "every response carries proto 1" tagged;
  let live = tcp_get_stats s.port in
  checkf "connections accounted"
    (get_int [ "connections"; "accepted" ] live >= clients)
    "accepted=%d" (get_int [ "connections"; "accepted" ] live);
  check "bytes accounted"
    (get_int [ "connections"; "bytes_in" ] live > 0
     && get_int [ "connections"; "bytes_out" ] live > 0);
  (* graceful SIGTERM drain with a client still connected and idle *)
  let idle = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect idle (Unix.ADDR_INET (Unix.inet_addr_loopback, s.port));
  Thread.delay 0.1;
  let exit_code, final = stop_tcp s in
  check "exit 0 on SIGTERM with open connections" (exit_code = 0);
  (* the drained server closed the idle connection cleanly *)
  let saw_eof =
    let buf = Bytes.create 64 in
    match Unix.read idle buf 0 64 with
    | 0 -> true
    | _ -> false
    | exception Unix.Unix_error _ -> true
  in
  check "idle connection drained to EOF" saw_eof;
  (try Unix.close idle with Unix.Unix_error _ -> ());
  match final with
  | None -> check "final stats flushed on SIGTERM" false
  | Some f ->
    checkf "final stats count every connection"
      (get_int [ "connections"; "accepted" ] f >= clients + 1)
      "accepted=%d" (get_int [ "connections"; "accepted" ] f);
    checkf "no connection left active"
      (get_int [ "connections"; "active" ] f = 0)
      "active=%d" (get_int [ "connections"; "active" ] f);
    let injected p = get_int [ "faults"; p; "injected" ] f in
    checkf "faults actually injected over TCP"
      (injected "decode" + injected "predict" + injected "respond" > 0)
      "none injected"

let phase_tcp_rate () =
  Printf.printf "phase: TCP per-connection rate limit (--conn-rate 20)\n%!";
  let s = spawn_tcp [ "--conn-rate"; "20"; "--queue"; "100000" ] in
  let n = 200 in
  let flood =
    List.init n (fun i ->
        Json.to_string (Json.Obj [ "id", Json.Int i; "hex", Json.Str "90" ]))
  in
  let lines = tcp_client s.port flood in
  checkf "flood fully answered" (List.length lines = n) "%d responses"
    (List.length lines);
  let limited =
    List.length
      (List.filter (fun l -> error_kind (parse_resp l) = Some "rate_limited")
         lines)
  in
  checkf "flooding client rate limited" (limited > 0) "no rate_limited";
  (* a polite client on its own connection has its own bucket *)
  let polite =
    tcp_client ~pace:0.06 s.port
      (List.init 20 (fun i ->
           Json.to_string
             (Json.Obj [ "id", Json.Int (1000 + i); "hex", Json.Str "90" ])))
  in
  check "polite client not limited"
    (List.for_all
       (fun l -> error_kind (parse_resp l) <> Some "rate_limited")
       polite);
  let exit_code, final = stop_tcp s in
  check "exit 0 after rate limiting" (exit_code = 0);
  match final with
  | None -> check "final stats flushed" false
  | Some f ->
    (* every refusal the client saw is accounted, nothing more *)
    checkf "per-connection refusals match final stats"
      (get_int [ "connections"; "rate_limited" ] f = limited)
      "stats=%d observed=%d"
      (get_int [ "connections"; "rate_limited" ] f)
      limited;
    checkf "refusals typed in the error taxonomy"
      (get_int [ "errors"; "by_kind"; "rate_limited" ] f = limited)
      "by_kind disagrees"

let phase_tcp_bench () =
  Printf.printf "phase: TCP throughput (1 vs 32 clients, fault-free)\n%!";
  let s = spawn_tcp [ "--queue"; "100000" ] in
  let valid_req id =
    Json.to_string
      (Json.Obj
         [ "id", Json.Int id;
           "hex",
           Json.Str valid_hexes.(id mod Array.length valid_hexes) ])
  in
  let n1 = 400 in
  let t0 = Unix.gettimeofday () in
  let lines1 = tcp_client s.port (List.init n1 valid_req) in
  let wall1 = Unix.gettimeofday () -. t0 in
  checkf "bench: single client answered" (List.length lines1 = n1)
    "%d responses" (List.length lines1);
  let rps1 = float_of_int n1 /. wall1 in
  let clients = 32 and per = 150 in
  let results = Array.make clients 0 in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun c ->
        Thread.create
          (fun () ->
            let reqs =
              List.init per (fun i -> valid_req ((1_000_000 * (c + 1)) + i))
            in
            results.(c) <- List.length (tcp_client s.port reqs))
          ())
  in
  List.iter Thread.join threads;
  let wall32 = Unix.gettimeofday () -. t0 in
  check "bench: every storm line answered"
    (Array.for_all (fun n -> n = per) results);
  let rps32 = float_of_int (clients * per) /. wall32 in
  let exit_code, _ = stop_tcp s in
  check "bench: clean exit" (exit_code = 0);
  bench_record "serve_tcp"
    [ "clients", Json.Int clients;
      "requests_1", Json.Int n1;
      "requests_32", Json.Int (clients * per);
      "rps_1", Json.Float (Float.round rps1);
      "rps_32", Json.Float (Float.round rps32);
      "wall_1_s", Json.Float wall1;
      "wall_32_s", Json.Float wall32 ]

let phase_lru () =
  Printf.printf "phase: bounded cache churn (--cache-cap 64 --cache-shards 8)\n%!";
  let n = 200 in
  let reqs =
    List.init n (fun i ->
        let hex = String.concat "" (List.init (i + 1) (fun _ -> "90")) in
        Json.to_string (Json.Obj [ "id", Json.Int i; "hex", Json.Str hex ]))
  in
  let r =
    (* 8 requested shards clamp to 4 at cap 64; the bound and the
       eviction accounting must hold across the shards *)
    run_serve
      ~args:
        [ "--cache-cap"; "64"; "--cache-shards"; "8"; "--queue"; "100000" ]
      reqs
  in
  check "exit 0 under cache churn" (r.exit_code = 0);
  match r.final_stats with
  | None -> check "final stats flushed" false
  | Some s ->
    checkf "evictions happened"
      (get_int [ "cache"; "evictions" ] s > 0) "none evicted";
    checkf "cache stayed bounded" (get_int [ "cache"; "entries" ] s <= 64)
      "entries=%d" (get_int [ "cache"; "entries" ] s);
    checkf "effective shard count reported"
      (get_int [ "cache"; "shards" ] s = 4)
      "shards=%d" (get_int [ "cache"; "shards" ] s)

(* ----- persistent prediction store ----- *)

let temp_path () =
  let p = Filename.temp_file "facile_chaos_store" ".seg" in
  Sys.remove p;
  p

(* Run `facile <args>` to completion, timed; output discarded. *)
let run_cmd args =
  let t0 = Unix.gettimeofday () in
  let code =
    Sys.command
      (String.concat " " (List.map Filename.quote (bin :: args))
      ^ " >/dev/null 2>&1")
  in
  (code, Unix.gettimeofday () -. t0)

(* The one-line {"config":...} announce on serve startup carries the
   warm-load count. *)
let announced_warm_records r =
  List.find_map
    (fun l ->
      match Json.parse l with
      | Ok j ->
        Option.bind (Json.member "config" j) (fun c ->
            Option.bind (Json.member "warm_records" c) Json.int_opt)
      | Error _ -> None)
    r.err_lines

let flip_file_bit path off =
  let ic = open_in_bin path in
  let s = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  Bytes.set s off (Char.chr (Char.code (Bytes.get s off) lxor 0x40));
  let oc = open_out_bin path in
  output_bytes oc s;
  close_out oc

(* [n] requests cycling 16 distinct memo keys (8 hexes x 2 arches);
   arch switches per block of 8 so the pairs don't alias on parity *)
let store_requests n =
  List.init n (fun i ->
      Json.to_string
        (Json.Obj
           [ "id", Json.Int i;
             "arch", Json.Str (if i / 8 mod 2 = 0 then "SKL" else "HSW");
             "hex", Json.Str valid_hexes.(i mod Array.length valid_hexes) ]))

let phase_store_warm () =
  Printf.printf "phase: persistent store warm restart\n%!";
  let path = temp_path () in
  let args =
    [ "--queue"; "100000"; "--cache-shards"; "4"; "--store"; path ]
  in
  let reqs = store_requests 48 in
  let cold = run_serve ~args reqs in
  check "cold run exit 0" (cold.exit_code = 0);
  check "cold run starts empty" (announced_warm_records cold = Some 0);
  (* the graceful-shutdown flush must leave a store that satisfies the
     full recompute audit: every persisted prediction equals a fresh
     model run, bit for bit *)
  let c, _ = run_cmd [ "cache"; "verify"; "--recompute"; path ] in
  checkf "store verifies against recomputation" (c = 0) "exit %d" c;
  let warm = run_serve ~args reqs in
  check "warm run exit 0" (warm.exit_code = 0);
  checkf "warm run announces the recovered records"
    (announced_warm_records warm = Some 16)
    "announced %s"
    (match announced_warm_records warm with
     | Some n -> string_of_int n
     | None -> "nothing");
  let base = by_id cold.lines and rerun = by_id warm.lines in
  let diverged =
    List.filter
      (fun (id, (line, _)) ->
        match List.assoc_opt id base with
        | Some (bline, _) -> bline <> line
        | None -> true)
      rerun
  in
  checkf "responses bit-identical across restart" (diverged = [])
    "%d diverged" (List.length diverged);
  (match warm.final_stats with
   | None -> check "final stats flushed" false
   | Some s ->
     (* with every key seeded, no warm request recomputes *)
     checkf "every warm request served from the seeded cache"
       (get_int [ "cache"; "hits" ] s = List.length reqs)
       "hits=%d" (get_int [ "cache"; "hits" ] s);
     checkf "shutdown flush accounted"
       (get_int [ "store"; "flushes" ] s >= 1)
       "flushes=%d" (get_int [ "store"; "flushes" ] s);
     checkf "no persist errors"
       (get_int [ "store"; "persist_errors" ] s = 0)
       "persist_errors=%d" (get_int [ "store"; "persist_errors" ] s));
  Sys.remove path

let phase_store_crash () =
  Printf.printf "phase: store crash recovery (SIGKILL mid-stream)\n%!";
  let path = temp_path () in
  let args =
    [ "--queue"; "100000"; "--store"; path; "--store-flush"; "1" ]
  in
  let r =
    run_serve ~args ~pace:0.002 ~kill_signal:Sys.sigkill ~kill_after:40
      (store_requests 120)
  in
  checkf "killed hard" (r.exit_code = 128 + 9) "exit %d" r.exit_code;
  check "predictions flushed before the kill"
    (Sys.file_exists path && (Unix.stat path).Unix.st_size > 24);
  (* restart over the same store: recovery truncates at most the frame
     being written, then serving resumes warm *)
  let r2 = run_serve ~args (store_requests 48) in
  check "restart exit 0" (r2.exit_code = 0);
  checkf "restart recovered records"
    (match announced_warm_records r2 with Some n -> n >= 1 | None -> false)
    "announced %s"
    (match announced_warm_records r2 with
     | Some n -> string_of_int n
     | None -> "nothing");
  let c, _ = run_cmd [ "cache"; "verify"; "--recompute"; path ] in
  checkf "verify passes after crash recovery" (c = 0) "exit %d" c;
  (* a corrupted frame must fail verification with the check exit code *)
  flip_file_bit path (24 + 8);  (* first payload byte of the first frame *)
  let c', _ = run_cmd [ "cache"; "verify"; path ] in
  checkf "verify rejects the corrupted store" (c' = 10) "exit %d" c';
  Sys.remove path

let phase_store_bench () =
  Printf.printf "phase: store warm-vs-cold batch bench\n%!";
  let path = temp_path () in
  let input = Filename.temp_file "facile_chaos_bench" ".hex" in
  let n = 256 in
  let oc = open_out input in
  for i = 1 to n do
    (* distinct blocks: nop sleds of increasing length ending in a
       real add, so every line is a fresh memo key *)
    output_string oc (String.concat "" (List.init i (fun _ -> "90")));
    output_string oc "4801d8\n"
  done;
  close_out oc;
  let cold_code, cold_s = run_cmd [ "batch"; "--store"; path; input ] in
  checkf "cold batch exit 0" (cold_code = 0) "exit %d" cold_code;
  let warm_code, warm_s = run_cmd [ "batch"; "--store"; path; input ] in
  checkf "warm batch exit 0" (warm_code = 0) "exit %d" warm_code;
  let speedup = if warm_s > 0. then cold_s /. warm_s else 0. in
  bench_record "store"
    [ "blocks", Json.Int n;
      "cold_s", Json.Float cold_s;
      "warm_s", Json.Float warm_s;
      "speedup", Json.Float speedup ];
  Sys.remove path;
  Sys.remove input

let () =
  (* writes to an already-dead server (SIGTERM phase) must raise
     Sys_error, not kill the harness *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t0 = Unix.gettimeofday () in
  let baseline = phase_baseline () in
  phase_faults baseline;
  phase_saturation ();
  phase_deadline ();
  phase_sigterm ();
  phase_breaker ();
  phase_lru ();
  phase_store_warm ();
  phase_store_crash ();
  phase_store_bench ();
  phase_tcp_storm ();
  phase_tcp_rate ();
  phase_tcp_bench ();
  Printf.printf "chaos: %s in %.1fs\n%!"
    (if !failures = 0 then "all phases passed"
     else Printf.sprintf "%d FAILURES" !failures)
    (Unix.gettimeofday () -. t0);
  exit (if !failures = 0 then 0 else 1)
