(* The sharded single-flight memo cache (Facile_engine.Shard_cache):
   equivalence against the reference single-lock Lru, single-flight
   coalescing, concurrent-stress invariants, and shard-count
   insensitivity of engine predictions. *)

open Facile_uarch
open Facile_core
module Engine = Facile_engine.Engine
module Lru = Facile_engine.Lru
module Shard_cache = Facile_engine.Shard_cache

let skl = Config.by_arch Config.SKL

(* ------------------------------------------------------------------ *)
(* Randomized op-trace equivalence vs the reference Lru.

   A single-shard cache must behave exactly like one locked Lru —
   same find results, same eviction count, same recency order.  With
   many shards and no eviction pressure, the *contents* must still
   match (eviction order is per-shard by design, so only the
   no-eviction regime is order-comparable). *)

type op = Find of int | Add of int * int | Compute of int

let op_gen ~keys =
  QCheck.Gen.(
    frequency
      [ 3, map (fun k -> Find k) (int_bound (keys - 1));
        3, map2 (fun k v -> Add (k, v)) (int_bound (keys - 1)) small_nat;
        2, map (fun k -> Compute k) (int_bound (keys - 1)) ])

let trace_arb ~keys =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Find k -> Printf.sprintf "find %d" k
             | Add (k, v) -> Printf.sprintf "add %d=%d" k v
             | Compute k -> Printf.sprintf "compute %d" k)
           ops))
    QCheck.Gen.(list_size (int_range 1 200) (op_gen ~keys))

(* compute is a pure function of the key, like a prediction *)
let value_of k = (k * 7919) + 13

let qcheck_single_shard_equivalence =
  QCheck.Test.make ~name:"1-shard cache is exactly the reference Lru"
    ~count:300
    (QCheck.pair (trace_arb ~keys:24) (QCheck.int_range 1 16))
    (fun (ops, cap) ->
      let sharded = Shard_cache.create ~shards:1 ~cap ~hash:Hashtbl.hash () in
      let reference = Lru.create cap in
      List.iter
        (fun op ->
          match op with
          | Find k ->
            let a = Shard_cache.find sharded k in
            let b = Lru.find reference k in
            if a <> b then
              QCheck.Test.fail_reportf "find %d: %s vs reference %s" k
                (match a with Some v -> string_of_int v | None -> "none")
                (match b with Some v -> string_of_int v | None -> "none")
          | Add (k, v) ->
            Shard_cache.add sharded k v;
            Lru.add reference k v
          | Compute k ->
            let a = Shard_cache.find_or_compute sharded k (fun () -> value_of k)
            and b =
              match Lru.find reference k with
              | Some v -> v
              | None ->
                let v = value_of k in
                Lru.add reference k v;
                v
            in
            if a <> b then
              QCheck.Test.fail_reportf "compute %d: %d vs reference %d" k a b)
        ops;
      let s = Shard_cache.stats sharded in
      s.Shard_cache.entries = Lru.length reference
      && s.Shard_cache.evictions = Lru.evictions reference
      && Shard_cache.to_list sharded = Lru.to_list reference)

let qcheck_sharded_contents_equivalence =
  QCheck.Test.make
    ~name:"8-shard cache holds the reference contents (no eviction)"
    ~count:300 (trace_arb ~keys:24)
    (fun ops ->
      (* cap >= keyspace on both sides: membership must coincide even
         though recency is per-shard *)
      let cap = 256 in
      let sharded = Shard_cache.create ~shards:8 ~cap ~hash:Hashtbl.hash () in
      let reference = Lru.create cap in
      List.iter
        (fun op ->
          match op with
          | Find k ->
            if Shard_cache.find sharded k <> Lru.find reference k then
              QCheck.Test.fail_reportf "find %d diverged" k
          | Add (k, v) ->
            Shard_cache.add sharded k v;
            Lru.add reference k v
          | Compute k ->
            let a = Shard_cache.find_or_compute sharded k (fun () -> value_of k)
            and b =
              match Lru.find reference k with
              | Some v -> v
              | None ->
                let v = value_of k in
                Lru.add reference k v;
                v
            in
            if a <> b then QCheck.Test.fail_reportf "compute %d diverged" k)
        ops;
      let s = Shard_cache.stats sharded in
      let sorted l = List.sort compare l in
      s.Shard_cache.evictions = 0
      && sorted (Shard_cache.to_list sharded) = sorted (Lru.to_list reference))

(* ------------------------------------------------------------------ *)
(* Concurrent stress: domains hammer an overlapping keyspace through
   [find_or_compute]; every result must be the pure function of its
   key, the per-call hit-or-miss accounting must balance exactly, and
   occupancy must respect the bound. *)

let concurrent_stress =
  Alcotest.test_case "concurrent find_or_compute keeps its invariants"
    `Quick (fun () ->
      let keys = 64 and per_domain = 2000 and domains = 4 in
      let cache =
        Shard_cache.create ~shards:8 ~cap:1024 ~hash:Hashtbl.hash ()
      in
      let bad = Atomic.make 0 in
      let worker seed () =
        let st = Random.State.make [| seed |] in
        for _ = 1 to per_domain do
          let k = Random.State.int st keys in
          let v = Shard_cache.find_or_compute cache k (fun () -> value_of k) in
          if v <> value_of k then Atomic.incr bad
        done
      in
      let ds = List.init domains (fun i -> Domain.spawn (worker (i + 41))) in
      List.iter Domain.join ds;
      Alcotest.(check int) "every result is the pure value" 0 (Atomic.get bad);
      let s = Shard_cache.stats cache in
      Alcotest.(check int) "each call counted exactly once"
        (domains * per_domain)
        (s.Shard_cache.hits + s.Shard_cache.misses);
      (* no eviction pressure: one compute per distinct key *)
      Alcotest.(check int) "misses = distinct keys" keys s.Shard_cache.misses;
      Alcotest.(check int) "entries = distinct keys" keys s.Shard_cache.entries;
      Alcotest.(check int) "nothing evicted" 0 s.Shard_cache.evictions)

(* ------------------------------------------------------------------ *)
(* Single flight: K racing requests for one key compute exactly once.
   The owner's compute spins until every domain has announced itself,
   so the race is real, not a lucky interleaving. *)

let single_flight =
  Alcotest.test_case "K=8 racing identical requests compute once" `Quick
    (fun () ->
      let k = 8 in
      let cache = Shard_cache.create ~shards:4 ~cap:64 ~hash:Hashtbl.hash () in
      let computes = Atomic.make 0 in
      let arrived = Atomic.make 0 in
      let compute () =
        Atomic.incr computes;
        (* hold the flight open until all K requesters are in the race *)
        while Atomic.get arrived < k do
          Domain.cpu_relax ()
        done;
        42
      in
      let racer () =
        Atomic.incr arrived;
        Shard_cache.find_or_compute cache 7 compute
      in
      let ds = List.init k (fun _ -> Domain.spawn racer) in
      let results = List.map Domain.join ds in
      Alcotest.(check (list int)) "all see the one result"
        (List.init k (fun _ -> 42))
        results;
      Alcotest.(check int) "exactly one compute" 1 (Atomic.get computes);
      let s = Shard_cache.stats cache in
      Alcotest.(check int) "one miss" 1 s.Shard_cache.misses;
      Alcotest.(check int) "the rest are hits" (k - 1) s.Shard_cache.hits)

let owner_failure_recovers =
  Alcotest.test_case "a raising owner releases the flight" `Quick (fun () ->
      let cache = Shard_cache.create ~shards:2 ~cap:32 ~hash:Hashtbl.hash () in
      (match
         Shard_cache.find_or_compute cache 3 (fun () -> failwith "boom")
       with
      | (_ : int) -> Alcotest.fail "expected the owner's exception"
      | exception Failure m ->
        Alcotest.(check string) "owner sees its own exception" "boom" m);
      (* the key is not wedged: the next requester becomes the owner *)
      Alcotest.(check int) "retry computes fresh" 99
        (Shard_cache.find_or_compute cache 3 (fun () -> 99));
      Alcotest.(check (option int)) "and the value is cached" (Some 99)
        (Shard_cache.find cache 3))

(* ------------------------------------------------------------------ *)
(* Capacity distribution and shard clamping                            *)

let shape_tests =
  [ Alcotest.test_case "per-shard capacities sum to the exact bound"
      `Quick (fun () ->
        List.iter
          (fun (shards, cap) ->
            let c : (int, int) Shard_cache.t =
              Shard_cache.create ~shards ~cap ~hash:Hashtbl.hash ()
            in
            let s = Shard_cache.stats c in
            Alcotest.(check int)
              (Printf.sprintf "cap %d over %d shards" cap shards)
              cap s.Shard_cache.capacity)
          [ (1, 7); (3, 100); (4, 65536); (8, 1000); (32, 97) ]);
    Alcotest.test_case "tiny capacities collapse to fewer shards" `Quick
      (fun () ->
        let count ~shards ~cap =
          Shard_cache.shard_count
            (Shard_cache.create ~shards ~cap ~hash:Hashtbl.hash ()
              : (int, int) Shard_cache.t)
        in
        Alcotest.(check int) "cap 2 -> 1 shard" 1 (count ~shards:4 ~cap:2);
        Alcotest.(check int) "cap 64 caps at 4 shards" 4
          (count ~shards:16 ~cap:64);
        Alcotest.(check int) "shard count rounds up to a power of two" 8
          (count ~shards:5 ~cap:65536));
    Alcotest.test_case "rejects invalid arguments" `Quick (fun () ->
        (match Shard_cache.create ~shards:0 ~cap:16 ~hash:Hashtbl.hash () with
        | (_ : (int, int) Shard_cache.t) -> Alcotest.fail "accepted shards 0"
        | exception Invalid_argument _ -> ());
        match Shard_cache.create ~shards:4 ~cap:0 ~hash:Hashtbl.hash () with
        | (_ : (int, int) Shard_cache.t) -> Alcotest.fail "accepted cap 0"
        | exception Invalid_argument _ -> ()) ]

(* ------------------------------------------------------------------ *)
(* Engine-level: predictions are bit-identical whatever the shard
   count (the acceptance bar for making the serving cache concurrent). *)

let shard_count_bit_identity =
  Alcotest.test_case "predictions identical across shard counts" `Quick
    (fun () ->
      let cases = Facile_bhive.Suite.corpus ~seed:47 ~size:60 () in
      let blocks =
        List.concat_map
          (fun (c : Facile_bhive.Suite.case) ->
            [ Block.of_instructions skl c.Facile_bhive.Suite.body;
              Block.of_instructions skl c.Facile_bhive.Suite.loop ])
          cases
      in
      let blocks = blocks @ blocks in
      let predict ~cache_shards =
        Engine.with_pool ~workers:2 ~cache_shards (fun pool ->
            Engine.predict_batch pool ~mode:`Auto blocks)
      in
      let reference = predict ~cache_shards:1 in
      List.iter
        (fun shards ->
          let got = predict ~cache_shards:shards in
          List.iter2
            (fun (a : Model.prediction) (b : Model.prediction) ->
              List.iter2
                (fun (c1, v1) (c2, v2) ->
                  assert (c1 = c2);
                  if not (Float.equal v1 v2) then
                    Alcotest.failf "%d shards: component %s differs" shards
                      (Model.component_name c1))
                a.Model.values b.Model.values;
              if not (Float.equal a.Model.cycles b.Model.cycles) then
                Alcotest.failf "%d shards: cycles differ" shards)
            reference got)
        [ 2; 8; 32 ])

let suite =
  [ ( "shard_cache",
      [ QCheck_alcotest.to_alcotest qcheck_single_shard_equivalence;
        QCheck_alcotest.to_alcotest qcheck_sharded_contents_equivalence;
        concurrent_stress; single_flight; owner_failure_recovers ]
      @ shape_tests
      @ [ shard_count_bit_identity ] ) ]
