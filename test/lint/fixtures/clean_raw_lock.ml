(* Clean twin of bad_raw_lock.ml: the same critical section through
   Sync.with_lock, which releases on every exit path.  Expected: no
   findings. *)

let mu = Mutex.create ()
let counter = ref 0
let incr_counter () = Sync.with_lock mu (fun () -> incr counter)
