(* Mutation fixture for the blocking family: socket I/O performed while
   a lock is held — every other user of [mu] stalls behind a slow peer.
   Expected finding: lock-blocking. *)

let mu = Mutex.create ()

let read_under_lock fd buf =
  Sync.with_lock mu (fun () -> Unix.read fd buf 0 (Bytes.length buf))
