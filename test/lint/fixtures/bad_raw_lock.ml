(* Mutation fixture for the lock family: a raw Mutex.lock/Mutex.unlock
   pair.  If [incr counter] ever raises (or the section grows a raising
   call), the unlock is skipped and every later caller deadlocks.
   Expected finding: lock-raw-mutex. *)

let mu = Mutex.create ()
let counter = ref 0

let incr_counter () =
  Mutex.lock mu;
  incr counter;
  Mutex.unlock mu
