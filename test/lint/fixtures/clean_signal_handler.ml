(* Clean twin of bad_signal_handler.ml: the handler only flips an
   Atomic flag for the main loop to notice.  Expected: no findings. *)

let stop = Atomic.make false

let install () =
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> Atomic.set stop true))
