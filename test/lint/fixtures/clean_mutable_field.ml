(* Clean twin of bad_mutable_field.ml: the same shape with the
   ownership documented on the declaration line.  Expected: no
   findings. *)

type state = {
  mutable count : int; (* lint: unguarded — single worker thread owns this *)
  name : string;
}

let spin s =
  ignore (Thread.create (fun () -> s.count <- s.count + 1) ());
  s.name
