(* Mutation fixture for the lock family: a hand-rolled Condition.wait
   loop inside a with_lock section.  The wait idiom belongs to
   Sync.with_lock_cond, which owns the lock/predicate loop.
   Expected finding: lock-raw-wait. *)

let mu = Mutex.create ()
let cond = Condition.create ()
let ready = ref false

let wait_ready () =
  Sync.with_lock mu (fun () ->
      while not !ready do
        Condition.wait cond mu
      done)
