(* Mutation fixture for the handlers family: a signal handler that does
   I/O.  Signals arrive at arbitrary points — possibly while a lock is
   held or a buffer is half-written — so anything beyond flipping an
   Atomic flag can deadlock or corrupt state.
   Expected finding: handler-unsafe. *)

let install () =
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> print_endline "terminating"))
