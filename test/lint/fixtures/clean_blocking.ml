(* Clean twin of bad_blocking.ml: the blocking read happens outside the
   critical section; only the bookkeeping is locked.  Expected: no
   findings. *)

let mu = Mutex.create ()
let bytes_seen = ref 0

let read_then_count fd buf =
  let n = Unix.read fd buf 0 (Bytes.length buf) in
  Sync.with_lock mu (fun () -> bytes_seen := !bytes_seen + n);
  n
