(* Mutation fixture for the fields family: a worker thread mutates a
   plain record field with no Atomic, no mutex anywhere in the module,
   and no annotation — a data race under domains, and at best a torn
   read under threads.  Expected finding: field-unguarded. *)

type state = {
  mutable count : int;
  name : string;
}

let spin s =
  ignore (Thread.create (fun () -> s.count <- s.count + 1) ());
  s.name
