(* Clean twin of bad_cond_wait.ml: the sanctioned wait combinator.
   Expected: no findings. *)

let mu = Mutex.create ()
let cond = Condition.create ()
let ready = ref false

let wait_ready () =
  Sync.with_lock_cond mu cond ~until:(fun () -> !ready) (fun () -> ())
