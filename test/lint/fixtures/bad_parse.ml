(* Mutation fixture for the driver: a file that does not parse must
   surface as a lint-parse error, not crash the sweep or silently
   vanish from coverage.  Expected finding: lint-parse. *)

let incr_counter ( = let in
