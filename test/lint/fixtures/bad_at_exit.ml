(* Mutation fixture for the handlers family: an at_exit callback that
   does I/O.  at_exit runs during teardown while other domains may
   still hold locks.  Expected finding: handler-unsafe. *)

let register () = at_exit (fun () -> print_endline "bye")
