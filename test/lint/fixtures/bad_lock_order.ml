(* Mutation fixture for the order family: two code paths that acquire
   the same pair of locks in opposite orders — the classic AB/BA
   deadlock.  Expected finding: lock-order-cycle. *)

let a = Mutex.create ()
let b = Mutex.create ()

let path_one f = Sync.with_lock a (fun () -> Sync.with_lock b f)
let path_two f = Sync.with_lock b (fun () -> Sync.with_lock a f)
