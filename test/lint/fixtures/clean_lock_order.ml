(* Clean twin of bad_lock_order.ml: both nesting paths agree on the
   a-before-b order, so the acquisition graph is acyclic.  Expected:
   no findings. *)

let a = Mutex.create ()
let b = Mutex.create ()

let path_one f = Sync.with_lock a (fun () -> Sync.with_lock b f)
let path_two f = Sync.with_lock a (fun () -> Sync.with_lock b f)
