(* Clean twin of bad_at_exit.ml: teardown is signalled through an
   Atomic flag only.  Expected: no findings. *)

let finished = Atomic.make false

let register () = at_exit (fun () -> Atomic.set finished true)
