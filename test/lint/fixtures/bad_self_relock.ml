(* Mutation fixture for the lock family: re-acquiring a lock that is
   already held.  OCaml mutexes are not reentrant, so this path
   deadlocks (or is undefined) the moment it runs.
   Expected finding: lock-self-relock. *)

let mu = Mutex.create ()

let outer f = Sync.with_lock mu (fun () -> Sync.with_lock mu f)
