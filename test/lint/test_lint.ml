(* Self-tests for [facile lint] (DESIGN.md section 14).

   Mutation coverage: each deliberately-bad fixture must produce its
   expected rule id, and each clean twin must produce zero findings —
   so a rule that silently stops firing (or starts over-firing) breaks
   this suite, not just the tree it was supposed to protect.  The CLI
   contract (exit 13, wire kind lint_failed, exit 0 on the shipped
   tree) is pinned through the real binary.  The Sync regression group
   proves the exception-path lock-leak class the sweep fixed is gone:
   a raising critical section must leave its lock re-acquirable. *)

module Lint = Facile_lint.Lint
module F = Facile_check.Finding
module Check = Facile_check.Check
module Sync = Facile_core.Sync
module Bqueue = Facile_engine.Bqueue
module Engine = Facile_engine.Engine

let fixture name = Filename.concat "fixtures" name
let run_one ?families name = Lint.run ?families ~roots:[ fixture name ] ()

let error_rules r =
  List.filter_map
    (fun f -> if f.F.severity = F.Error then Some f.F.rule else None)
    r.Check.findings
  |> List.sort_uniq compare

(* ----- mutation fixtures: each bad file trips its rule ----- *)

let bad_fixtures =
  [ ("bad_raw_lock.ml", "lock-raw-mutex");
    ("bad_cond_wait.ml", "lock-raw-wait");
    ("bad_self_relock.ml", "lock-self-relock");
    ("bad_blocking.ml", "lock-blocking");
    ("bad_lock_order.ml", "lock-order-cycle");
    ("bad_mutable_field.ml", "field-unguarded");
    ("bad_signal_handler.ml", "handler-unsafe");
    ("bad_at_exit.ml", "handler-unsafe");
    ("bad_parse.ml", "lint-parse") ]

let bad_tests =
  List.map
    (fun (file, rule) ->
      Alcotest.test_case (file ^ " trips " ^ rule) `Quick (fun () ->
          let r = run_one file in
          Alcotest.(check bool) "report not ok" false (Check.ok r);
          Alcotest.(check bool)
            (rule ^ " among error rules")
            true
            (List.mem rule (error_rules r))))
    bad_fixtures

(* ----- negative controls: clean twins produce zero findings ----- *)

let clean_fixtures =
  [ "clean_raw_lock.ml"; "clean_cond_wait.ml"; "clean_blocking.ml";
    "clean_lock_order.ml"; "clean_mutable_field.ml";
    "clean_signal_handler.ml"; "clean_at_exit.ml" ]

let clean_tests =
  List.map
    (fun file ->
      Alcotest.test_case (file ^ " is clean") `Quick (fun () ->
          let r = run_one file in
          Alcotest.(check bool) "report ok" true (Check.ok r);
          Alcotest.(check int) "no errors" 0 r.Check.n_error))
    clean_fixtures

(* ----- driver behaviour ----- *)

let driver_tests =
  [ Alcotest.test_case "--only isolates families" `Quick (fun () ->
        (* the blocking violation is invisible to the lock family *)
        let r = run_one ~families:[ "lock" ] "bad_blocking.ml" in
        Alcotest.(check bool) "lock-only passes" true (Check.ok r);
        let r = run_one ~families:[ "blocking" ] "bad_blocking.ml" in
        Alcotest.(check bool) "blocking-only fails" false (Check.ok r));
    Alcotest.test_case "unknown family is refused" `Quick (fun () ->
        match Lint.run ~families:[ "bogus" ] ~roots:[] () with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument msg ->
          Alcotest.(check bool)
            "message names the bad family" true
            (Facile_lint.Lint_ast.contains msg "bogus"));
    Alcotest.test_case "every family has a doc line" `Quick (fun () ->
        List.iter
          (fun f ->
            Alcotest.(check bool)
              (f ^ " documented") true
              (String.length (Lint.family_doc f) > 0))
          Lint.rule_families);
    Alcotest.test_case "coverage info counts the scanned files" `Quick
      (fun () ->
        let r = run_one "clean_raw_lock.ml" in
        Alcotest.(check bool)
          "one info finding" true
          (List.exists
             (fun f -> f.F.rule = "lint-coverage" && f.F.severity = F.Info)
             r.Check.findings)) ]

(* ----- CLI contract through the real binary ----- *)

let facile_exe = "../../bin/facile.exe"

let run_cli args =
  let err = Filename.temp_file "lint_cli" ".err" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s </dev/null >/dev/null 2>%s" facile_exe args err)
  in
  let text = In_channel.with_open_bin err In_channel.input_all in
  Sys.remove err;
  (code, text)

let cli_tests =
  [ Alcotest.test_case "shipped tree lints clean (exit 0)" `Quick (fun () ->
        let code, _ = run_cli "lint ../../lib ../../bin" in
        Alcotest.(check int) "exit 0" 0 code);
    Alcotest.test_case "bad fixture exits 13 with lint_failed" `Quick
      (fun () ->
        let code, err = run_cli ("lint " ^ fixture "bad_raw_lock.ml") in
        Alcotest.(check int) "exit 13" 13 code;
        Alcotest.(check bool)
          "stderr names the wire kind" true
          (Facile_lint.Lint_ast.contains err "lint_failed"));
    Alcotest.test_case "--list enumerates the rule families" `Quick
      (fun () ->
        let out = Filename.temp_file "lint_cli" ".out" in
        let code =
          Sys.command
            (Printf.sprintf "%s lint --list </dev/null >%s 2>/dev/null"
               facile_exe out)
        in
        let text = In_channel.with_open_bin out In_channel.input_all in
        Sys.remove out;
        Alcotest.(check int) "exit 0" 0 code;
        List.iter
          (fun f ->
            Alcotest.(check bool)
              (f ^ " listed") true
              (Facile_lint.Lint_ast.contains text f))
          Lint.rule_families) ]

(* ----- Sync regression: raising sections cannot leak locks ----- *)

exception Boom

let sync_tests =
  [ Alcotest.test_case "with_lock releases on raise" `Quick (fun () ->
        let mu = Mutex.create () in
        (try Sync.with_lock mu (fun () -> raise Boom)
         with Boom -> ());
        Alcotest.(check bool)
          "lock re-acquirable" true
          (Mutex.try_lock mu) (* lint: raw-ok — proves re-acquirability *);
        Mutex.unlock mu (* lint: raw-ok — undo the probe *));
    Alcotest.test_case "with_lock_cond releases on a raising predicate"
      `Quick (fun () ->
        let mu = Mutex.create () in
        let cond = Condition.create () in
        (try
           Sync.with_lock_cond mu cond
             ~until:(fun () -> raise Boom)
             (fun () -> ())
         with Boom -> ());
        Alcotest.(check bool)
          "lock re-acquirable" true
          (Mutex.try_lock mu) (* lint: raw-ok — proves re-acquirability *);
        Mutex.unlock mu (* lint: raw-ok — undo the probe *));
    Alcotest.test_case "bqueue survives a raising consumer" `Quick (fun () ->
        let q = Bqueue.create 4 in
        Alcotest.(check bool) "push" true (Bqueue.push q 1);
        (* a consumer that raises immediately after its pop must not
           wedge the queue's internal lock for everyone else *)
        (try
           match Bqueue.pop q with
           | Some _ -> raise Boom
           | None -> ()
         with Boom -> ());
        Alcotest.(check bool) "push still works" true (Bqueue.push q 2);
        Alcotest.(check int) "length still works" 1 (Bqueue.length q);
        Bqueue.close q;
        Alcotest.(check (option int)) "drain" (Some 2) (Bqueue.pop q);
        Alcotest.(check (option int)) "closed" None (Bqueue.pop q));
    Alcotest.test_case "engine pool survives a raising task" `Quick
      (fun () ->
        Engine.with_pool ~workers:2 (fun pool ->
            (try
               ignore
                 (Engine.map pool
                    (fun x -> if x = 1 then raise Boom else x)
                    [| 0; 1; 2 |]);
               Alcotest.fail "expected Boom"
             with Boom -> ());
            (* the pool's mutex and conditions must still be coherent:
               a second batch runs to completion *)
            let r = Engine.map pool (fun x -> x * 10) [| 1; 2; 3 |] in
            Alcotest.(check (array int)) "second batch" [| 10; 20; 30 |] r))
  ]

let () =
  Alcotest.run "facile-lint"
    [ ("lint.bad", bad_tests);
      ("lint.clean", clean_tests);
      ("lint.driver", driver_tests);
      ("lint.cli", cli_tests);
      ("sync.regression", sync_tests) ]
