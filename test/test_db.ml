open Facile_x86
open Facile_uarch
open Facile_db

let parse s =
  match Asm.parse_inst s with
  | Ok i -> i
  | Error m -> Alcotest.failf "parse: %s" m

let desc arch s = Db.describe (Config.by_arch arch) (parse s)

let db_tests =
  [ Alcotest.test_case "simple ALU" `Quick (fun () ->
        let d = desc Config.SKL "add rax, rbx" in
        Alcotest.(check int) "fused" 1 d.Db.fused_uops;
        Alcotest.(check int) "issued" 1 d.Db.issued_uops;
        Alcotest.(check int) "dispatched" 1 (List.length d.Db.dispatched);
        Alcotest.(check int) "latency" 1 d.Db.latency;
        Alcotest.(check bool) "simple decode" false d.Db.complex_decode);
    Alcotest.test_case "load-op micro-fusion" `Quick (fun () ->
        let d = desc Config.SKL "add rax, qword ptr [rbx]" in
        Alcotest.(check int) "fused" 1 d.Db.fused_uops;
        Alcotest.(check int) "dispatched" 2 (List.length d.Db.dispatched);
        assert (List.exists (fun u -> u.Db.kind = Db.Load) d.Db.dispatched));
    Alcotest.test_case "RMW" `Quick (fun () ->
        let d = desc Config.SKL "add qword ptr [rbx], rax" in
        Alcotest.(check int) "fused" 2 d.Db.fused_uops;
        Alcotest.(check int) "dispatched" 4 (List.length d.Db.dispatched);
        assert (List.exists (fun u -> u.Db.kind = Db.Store_data) d.Db.dispatched);
        assert (List.exists (fun u -> u.Db.kind = Db.Store_addr) d.Db.dispatched));
    Alcotest.test_case "ADC across generations" `Quick (fun () ->
        Alcotest.(check int) "SNB: 2 uops" 2
          (List.length (desc Config.SNB "adc rax, rbx").Db.dispatched);
        Alcotest.(check int) "HSW: 2 uops" 2
          (List.length (desc Config.HSW "adc rax, rbx").Db.dispatched);
        Alcotest.(check int) "BDW: 1 uop" 1
          (List.length (desc Config.BDW "adc rax, rbx").Db.dispatched);
        Alcotest.(check int) "SKL: 1 uop" 1
          (List.length (desc Config.SKL "adc rax, rbx").Db.dispatched));
    Alcotest.test_case "CMOV across generations" `Quick (fun () ->
        Alcotest.(check int) "HSW: 2 uops" 2
          (List.length (desc Config.HSW "cmove rax, rbx").Db.dispatched);
        Alcotest.(check int) "SKL: 1 uop" 1
          (List.length (desc Config.SKL "cmove rax, rbx").Db.dispatched));
    Alcotest.test_case "division is microcoded" `Quick (fun () ->
        let d = desc Config.SKL "div ecx" in
        Alcotest.(check bool) "complex" true d.Db.complex_decode;
        Alcotest.(check bool) "many uops" true (d.Db.fused_uops > 4);
        Alcotest.(check int) "no simple companions" 0 d.Db.available_simple_dec;
        assert (List.exists (fun u -> u.Db.kind = Db.Div_pseudo) d.Db.dispatched);
        (* much cheaper on Ice Lake *)
        let icl = desc Config.ICL "div rcx" in
        Alcotest.(check bool) "ICL faster 64-bit divide" true
          (icl.Db.latency < (desc Config.SKL "div rcx").Db.latency));
    Alcotest.test_case "mov elimination by generation" `Quick (fun () ->
        Alcotest.(check bool) "SNB no" false
          (desc Config.SNB "mov rax, rbx").Db.eliminated;
        Alcotest.(check bool) "IVB yes" true
          (desc Config.IVB "mov rax, rbx").Db.eliminated;
        Alcotest.(check bool) "ICL gpr disabled" false
          (desc Config.ICL "mov rax, rbx").Db.eliminated;
        Alcotest.(check bool) "ICL vec still on" true
          (desc Config.ICL "movdqa xmm0, xmm1").Db.eliminated;
        (* 8/16-bit moves are never eliminated *)
        Alcotest.(check bool) "mov ax, bx" false
          (desc Config.SKL "mov ax, bx").Db.eliminated);
    Alcotest.test_case "zero idioms" `Quick (fun () ->
        assert (Db.is_zero_idiom (parse "xor eax, eax"));
        assert (Db.is_zero_idiom (parse "sub rbx, rbx"));
        assert (Db.is_zero_idiom (parse "pxor xmm3, xmm3"));
        assert (Db.is_zero_idiom (parse "vpxor xmm1, xmm2, xmm2"));
        assert (not (Db.is_zero_idiom (parse "xor eax, ebx")));
        assert (not (Db.is_zero_idiom (parse "xor al, al")));
        let d = desc Config.SNB "xor eax, eax" in
        Alcotest.(check bool) "eliminated even on SNB" true d.Db.eliminated;
        Alcotest.(check int) "zero latency" 0 d.Db.latency);
    Alcotest.test_case "macro-fusibility rules" `Quick (fun () ->
        Alcotest.(check bool) "cmp on SKL" true
          (desc Config.SKL "cmp rax, rbx").Db.macro_fusible;
        Alcotest.(check bool) "add on SKL" true
          (desc Config.SKL "add rax, rbx").Db.macro_fusible;
        Alcotest.(check bool) "add on SNB" false
          (desc Config.SNB "add rax, rbx").Db.macro_fusible;
        Alcotest.(check bool) "cmp on SNB" true
          (desc Config.SNB "cmp rax, rbx").Db.macro_fusible;
        (* memory + immediate cannot fuse *)
        Alcotest.(check bool) "cmp [mem], imm" false
          (desc Config.SKL "cmp dword ptr [rax], 5").Db.macro_fusible);
    Alcotest.test_case "FMA/BMI gating" `Quick (fun () ->
        (match desc Config.SNB "vfmadd231ps xmm0, xmm1, xmm2" with
         | _ -> Alcotest.fail "FMA should be unsupported on SNB"
         | exception Db.Unsupported _ -> ());
        (match desc Config.IVB "andn eax, ebx, ecx" with
         | _ -> Alcotest.fail "BMI should be unsupported on IVB"
         | exception Db.Unsupported _ -> ());
        ignore (desc Config.HSW "vfmadd231ps xmm0, xmm1, xmm2");
        ignore (desc Config.HSW "shlx eax, ebx, ecx");
        Alcotest.(check bool) "supported reports" true
          (Db.supported (Config.by_arch Config.HSW)
             (parse "vfmadd231ps ymm0, ymm1, ymm2"));
        Alcotest.(check bool) "unsupported reports" false
          (Db.supported (Config.by_arch Config.SNB)
             (parse "vfmadd231ps ymm0, ymm1, ymm2")));
    Alcotest.test_case "slow LEA" `Quick (fun () ->
        Alcotest.(check int) "3-component" 3
          (desc Config.SKL "lea rax, [rbx+rcx*4+8]").Db.latency;
        Alcotest.(check int) "2-component" 1
          (desc Config.SKL "lea rax, [rbx+8]").Db.latency);
    Alcotest.test_case "dispatch ports are machine ports" `Quick (fun () ->
        (* every dispatched µop of every corpus instruction uses only
           ports that exist on the machine *)
        let cases = Facile_bhive.Suite.corpus ~seed:19 ~size:80 () in
        List.iter
          (fun (cfg : Config.t) ->
            List.iter
              (fun (c : Facile_bhive.Suite.case) ->
                List.iter
                  (fun inst ->
                    let d = Db.describe cfg inst in
                    List.iter
                      (fun u ->
                        if not (Port.subset u.Db.ports cfg.Config.ports) then
                          Alcotest.failf "%s: uop uses unknown port on %s"
                            (Inst.to_string inst) cfg.Config.abbrev;
                        if (not d.Db.eliminated) && Port.is_empty u.Db.ports
                        then
                          Alcotest.failf "%s: empty port mask"
                            (Inst.to_string inst))
                      d.Db.dispatched)
                  c.Facile_bhive.Suite.loop)
              cases)
          Config.all);
    Alcotest.test_case "fused <= issued <= dispatched+1" `Quick (fun () ->
        let cases = Facile_bhive.Suite.corpus ~seed:23 ~size:80 () in
        let cfg = Config.by_arch Config.SKL in
        List.iter
          (fun (c : Facile_bhive.Suite.case) ->
            List.iter
              (fun inst ->
                let d = Db.describe cfg inst in
                if d.Db.fused_uops > d.Db.issued_uops then
                  Alcotest.failf "%s: fused > issued" (Inst.to_string inst);
                if
                  (not d.Db.eliminated)
                  && d.Db.issued_uops
                     > max 1 (List.length d.Db.dispatched)
                then
                  Alcotest.failf "%s: issued %d > dispatched %d"
                    (Inst.to_string inst) d.Db.issued_uops
                    (List.length d.Db.dispatched))
              c.Facile_bhive.Suite.body)
          cases) ]

let uarch_tests =
  [ Alcotest.test_case "config lookup" `Quick (fun () ->
        Alcotest.(check int) "nine uarchs" 9 (List.length Config.all);
        assert (Config.of_abbrev "skl" <> None);
        assert (Config.of_abbrev "XXX" = None);
        Alcotest.(check string) "name" "Skylake" (Config.arch_name Config.SKL));
    Alcotest.test_case "issue width evolution" `Quick (fun () ->
        Alcotest.(check int) "SNB 4-wide" 4
          (Config.by_arch Config.SNB).Config.issue_width;
        Alcotest.(check int) "ICL 5-wide" 5
          (Config.by_arch Config.ICL).Config.issue_width);
    Alcotest.test_case "LSD availability" `Quick (fun () ->
        assert (Config.by_arch Config.HSW).Config.lsd_enabled;
        assert (not (Config.by_arch Config.SKL).Config.lsd_enabled);
        assert (not (Config.by_arch Config.CLX).Config.lsd_enabled);
        assert (Config.by_arch Config.ICL).Config.lsd_enabled);
    Alcotest.test_case "lsd_unroll" `Quick (fun () ->
        let hsw = Config.by_arch Config.HSW in
        (* target 16, max 8 *)
        Alcotest.(check int) "n=1" 8 (Config.lsd_unroll hsw 1);
        Alcotest.(check int) "n=4" 4 (Config.lsd_unroll hsw 4);
        Alcotest.(check int) "n=5" 4 (Config.lsd_unroll hsw 5);
        Alcotest.(check int) "n=16" 1 (Config.lsd_unroll hsw 16);
        Alcotest.(check int) "n=0 guard" 1 (Config.lsd_unroll hsw 0));
    Alcotest.test_case "port sets" `Quick (fun () ->
        let open Port in
        let p = of_list [ 0; 1; 5 ] in
        Alcotest.(check int) "cardinal" 3 (cardinal p);
        assert (mem 5 p && not (mem 2 p));
        assert (subset (of_list [ 0; 5 ]) p);
        assert (not (subset (of_list [ 0; 2 ]) p));
        Alcotest.(check string) "pp" "p015" (to_string p);
        Alcotest.(check string) "empty" "none" (to_string empty);
        assert (equal (union (of_list [ 0 ]) (of_list [ 1 ])) (of_list [ 0; 1 ]));
        assert (equal (inter p (of_list [ 1; 2 ])) (of_list [ 1 ]));
        Alcotest.(check (list int)) "to_list" [ 0; 1; 5 ] (to_list p)) ]

(* Differential check of the flattened form-indexed tables: on random
   generated instructions (which include register identities and
   shapes the static form enumeration cannot cover), [Flat.describe]
   must behave exactly like [Db.describe] on every arch — same
   descriptor or same rejection.  The exhaustive form x arch sweep
   lives in the [flat] analyzer family of `facile check`. *)
let qcheck_flat_differential =
  QCheck.Test.make ~name:"Flat.describe = Db.describe on generated insts"
    ~count:300
    QCheck.(triple small_nat (int_range 1 10) (int_range 0 7))
    (fun (seed, len, profile_idx) ->
      let profiles = Facile_bhive.Genblock.all_profiles in
      let profile = List.nth profiles (profile_idx mod List.length profiles) in
      let rng = Facile_bhive.Prng.create (succ seed) in
      let len = max 1 (min 10 len) in
      let insts =
        Facile_bhive.Genblock.body rng profile ~allow_fma:false ~len
      in
      List.for_all
        (fun cfg ->
          List.for_all
            (fun i ->
              let ref_d =
                try Ok (Db.describe cfg i) with Db.Unsupported m -> Error m
              in
              let flat_d =
                try Ok (Flat.describe cfg i) with Db.Unsupported m -> Error m
              in
              if ref_d = flat_d then true
              else
                QCheck.Test.fail_reportf "flat <> db on %s for %s"
                  cfg.Config.abbrev (Inst.to_string i))
            insts)
        Config.all)

let suite =
  [ "db.instructions", db_tests;
    "db.uarch", uarch_tests;
    "db.flat", [ QCheck_alcotest.to_alcotest qcheck_flat_differential ] ]
