(* The network serving tier: chunked line framing, the versioned wire
   protocol, the Session layer over socketpairs (concurrent clients,
   rate limiting, EPIPE isolation), and the real TCP listener. *)

open Facile_engine
module Json = Facile_obs.Json
module Sync = Facile_core.Sync

(* a test that writes into sockets the peer may have closed must not
   die of SIGPIPE *)
let () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* ----- framing ----- *)

(* Reference semantics: every '\n'-terminated line is one event (Line
   under the cap, Oversized over it), a non-empty unterminated tail is
   flushed by [finish]. *)
let expected_events cap lines tail =
  List.map
    (fun l ->
      if String.length l > cap then Framing.Oversized (String.length l)
      else Framing.Line l)
    lines
  @
  if tail = "" then []
  else if String.length tail > cap then [ Framing.Oversized (String.length tail) ]
  else [ Framing.Line tail ]

let feed_chunked seed cap stream =
  let f = Framing.create ~max_line_bytes:cap in
  let events = ref [] in
  let state = ref (seed lor 1) in
  let next_size () =
    (* xorshift; chunk sizes 1..8 exercise every split position *)
    state := !state lxor (!state lsl 13);
    state := !state lxor (!state lsr 7);
    state := !state lxor (!state lsl 17);
    1 + (abs !state mod 8)
  in
  let n = String.length stream in
  let i = ref 0 in
  while !i < n do
    let len = min (next_size ()) (n - !i) in
    events := !events @ Framing.feed_string f (String.sub stream !i len);
    i := !i + len
  done;
  (match Framing.finish f with Some e -> events := !events @ [ e ] | None -> ());
  !events

let pp_event = function
  | Framing.Line l -> Printf.sprintf "Line %S" l
  | Framing.Oversized n -> Printf.sprintf "Oversized %d" n

let qcheck_framing =
  let gen =
    QCheck.Gen.(
      let line_char = map (fun c -> if c = '\n' then ' ' else c) char in
      let line = string_size (0 -- 40) ~gen:line_char in
      quad (list_size (0 -- 12) line) line int (2 -- 16))
  in
  QCheck.Test.make ~count:500
    ~name:"framing: random chunk splits reassemble the line sequence"
    (QCheck.make gen ~print:(fun (lines, tail, seed, cap) ->
         Printf.sprintf "lines=[%s] tail=%S seed=%d cap=%d"
           (String.concat ";" (List.map (Printf.sprintf "%S") lines))
           tail seed cap))
    (fun (lines, tail, seed, cap) ->
      let stream =
        String.concat "" (List.map (fun l -> l ^ "\n") lines) ^ tail
      in
      feed_chunked seed cap stream = expected_events cap lines tail)

let framing_unit_tests =
  [ Alcotest.test_case "oversized line spanning 1-byte chunks" `Quick
      (fun () ->
        let f = Framing.create ~max_line_bytes:8 in
        let events = ref [] in
        String.iter
          (fun c ->
            events := !events @ Framing.feed_string f (String.make 1 c))
          "AAAAAAAAAAAA\nBB\n";
        Alcotest.(check (list string))
          "events"
          [ "Oversized 12"; "Line \"BB\"" ]
          (List.map pp_event !events);
        Alcotest.(check int) "nothing buffered" 0 (Framing.buffered f));
    Alcotest.test_case "cap boundary: exactly cap is a line" `Quick
      (fun () ->
        let f = Framing.create ~max_line_bytes:4 in
        Alcotest.(check (list string))
          "at cap" [ "Line \"AAAA\"" ]
          (List.map pp_event (Framing.feed_string f "AAAA\n"));
        Alcotest.(check (list string))
          "over cap" [ "Oversized 5" ]
          (List.map pp_event (Framing.feed_string f "AAAAA\n")));
    Alcotest.test_case "finish flushes the unterminated tail" `Quick
      (fun () ->
        let f = Framing.create ~max_line_bytes:64 in
        ignore (Framing.feed_string f "abc");
        (match Framing.finish f with
         | Some (Framing.Line "abc") -> ()
         | e ->
           Alcotest.failf "expected Line \"abc\", got %s"
             (match e with Some e -> pp_event e | None -> "None"));
        Alcotest.(check bool) "empty finish" true (Framing.finish f = None));
    Alcotest.test_case "invalid arguments rejected" `Quick (fun () ->
        Alcotest.check_raises "cap 0" (Invalid_argument
                                         "Framing.create: max_line_bytes = 0")
          (fun () -> ignore (Framing.create ~max_line_bytes:0));
        let f = Framing.create ~max_line_bytes:8 in
        Alcotest.check_raises "bad range"
          (Invalid_argument "Framing.feed: invalid range") (fun () ->
            ignore (Framing.feed f (Bytes.create 4) 2 3))) ]

(* ----- protocol versioning ----- *)

let kind_of resp =
  match Json.member "error" resp with
  | Some e -> Option.bind (Json.member "kind" e) Json.string_opt
  | None -> None

let msg_of resp =
  match Json.member "error" resp with
  | Some e -> Option.bind (Json.member "msg" e) Json.string_opt
  | None -> None

let protocol_tests serve =
  [ Alcotest.test_case "cmd version reports the protocol" `Quick (fun () ->
        let resp = Serve.handle_line serve {|{"cmd":"version"}|} in
        match Json.member "version" resp with
        | None -> Alcotest.fail "no version member"
        | Some v ->
          Alcotest.(check (option int))
            "proto" (Some Serve.proto_version)
            (Option.bind (Json.member "proto" v) Json.int_opt);
          Alcotest.(check (option string))
            "name" (Some "facile")
            (Option.bind (Json.member "name" v) Json.string_opt));
    Alcotest.test_case "unknown request keys are rejected by name" `Quick
      (fun () ->
        let resp = Serve.handle_line serve {|{"id":7,"hex":"90","bogus":1}|} in
        Alcotest.(check (option string))
          "kind" (Some "bad_request") (kind_of resp);
        let msg = Option.value ~default:"" (msg_of resp) in
        let contains s sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length s
            && (String.sub s i n = sub || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "msg %S names the key" msg)
          true (contains msg "bogus"));
    Alcotest.test_case "wrong proto rejected, proto 1 accepted" `Quick
      (fun () ->
        let bad = Serve.handle_line serve {|{"proto":2,"hex":"90"}|} in
        Alcotest.(check (option string))
          "kind" (Some "bad_request") (kind_of bad);
        let ok = Serve.handle_line serve {|{"proto":1,"hex":"90"}|} in
        Alcotest.(check bool)
          "proto 1 predicts" true
          (Json.member "cycles" ok <> None));
    Alcotest.test_case "with_proto tags the wire, not handle_line" `Quick
      (fun () ->
        let resp = Serve.handle_line serve {|{"hex":"90"}|} in
        Alcotest.(check bool)
          "handle_line untagged" true
          (Json.member "proto" resp = None);
        Alcotest.(check (option int))
          "with_proto appends" (Some Serve.proto_version)
          (Option.bind (Json.member "proto" (Serve.with_proto resp))
             Json.int_opt);
        (* idempotent: an already-tagged object is left alone *)
        Alcotest.(check bool)
          "idempotent" true
          (Serve.with_proto (Serve.with_proto resp)
           = Serve.with_proto resp)) ]

let config_tests =
  [ Alcotest.test_case "of_config and create agree" `Quick (fun () ->
        let t =
          Serve.of_config
            { Serve.default_config with Serve.workers = Some 1;
              deadline_ms = Some 0 }
        in
        Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
        let resp = Serve.handle_line t {|{"hex":"4801d8"}|} in
        Alcotest.(check (option string)) "deadline 0 times out"
          (Some "timeout") (kind_of resp));
    Alcotest.test_case "invalid configs are rejected" `Quick (fun () ->
        List.iter
          (fun cfg ->
            match Serve.of_config cfg with
            | t ->
              Serve.shutdown t;
              Alcotest.fail "config accepted"
            | exception Invalid_argument _ -> ())
          [ { Serve.default_config with Serve.queue_cap = 0 };
            { Serve.default_config with Serve.retry_after_ms = -1 };
            { Serve.default_config with
              Serve.limits =
                { Serve.default_limits with Serve.max_line_bytes = 0 } } ]) ]

(* ----- session over socketpairs ----- *)

let socketpair () =
  Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0

let send_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* read lines from [fd] until EOF *)
let recv_lines fd =
  let f = Framing.create ~max_line_bytes:(1 lsl 20) in
  let buf = Bytes.create 4096 in
  let lines = ref [] in
  let add = function
    | Framing.Line l -> lines := l :: !lines
    | Framing.Oversized _ -> ()
  in
  let rec loop () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
      List.iter add (Framing.feed f buf 0 n);
      loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ();
  Option.iter add (Framing.finish f);
  List.rev !lines

let parse_line l =
  match Json.parse l with
  | Ok j -> j
  | Error m -> Alcotest.failf "bad response line %S: %s" l m

(* Run one client against [serve] over a socketpair: send [payload],
   close the send side, collect every response line.  The session runs
   on its own thread, exactly as a TCP connection does under Net. *)
let with_session_client ?rate serve ~payload =
  let server_fd, client_fd = socketpair () in
  let session = Serve.session ?rate serve (Net.fd_transport server_fd) in
  Serve.conn_opened serve;
  let th =
    Thread.create
      (fun () ->
        Fun.protect
          ~finally:(fun () -> Serve.conn_closed serve)
          (fun () -> Session.run session))
      ()
  in
  send_all client_fd payload;
  Unix.shutdown client_fd Unix.SHUTDOWN_SEND;
  let lines = recv_lines client_fd in
  Thread.join th;
  (try Unix.close client_fd with Unix.Unix_error _ -> ());
  (lines, Session.counters session)

let session_tests serve =
  [ Alcotest.test_case "concurrent clients share one core" `Quick (fun () ->
        let payload c =
          String.concat ""
            (List.init 20 (fun i ->
                 Printf.sprintf {|{"id":%d,"hex":"4801d8"}|} ((100 * c) + i)
                 ^ "\n"))
          ^ {|{"cmd":"stats"}|} ^ "\n"
        in
        let results = Array.make 3 ([], None) in
        let clients =
          List.init 3 (fun c ->
              Thread.create
                (fun () ->
                  let lines, _ = with_session_client serve
                                   ~payload:(payload c) in
                  results.(c) <- (lines, None))
                ())
        in
        List.iter Thread.join clients;
        Array.iteri
          (fun c (lines, _) ->
            Alcotest.(check int)
              (Printf.sprintf "client %d answered" c)
              21 (List.length lines);
            (* every response carries the proto tag on the wire *)
            List.iter
              (fun l ->
                Alcotest.(check (option int))
                  "proto" (Some Serve.proto_version)
                  (Option.bind (Json.member "proto" (parse_line l))
                     Json.int_opt))
              lines;
            (* ids of prediction responses come back in order *)
            let ids =
              List.filter_map
                (fun l ->
                  let j = parse_line l in
                  if Json.member "stats" j <> None then None
                  else Option.bind (Json.member "id" j) Json.int_opt)
                lines
            in
            Alcotest.(check (list int))
              (Printf.sprintf "client %d ids ordered" c)
              (List.init 20 (fun i -> (100 * c) + i))
              ids)
          results);
    Alcotest.test_case "a flooding client is rate limited, and counted"
      `Quick (fun () ->
        let n = 30 in
        let payload =
          String.concat ""
            (List.init n (fun i ->
                 Printf.sprintf {|{"id":%d,"hex":"90"}|} i ^ "\n"))
        in
        let lines, counters =
          with_session_client ~rate:2.0 serve ~payload
        in
        Alcotest.(check int) "every request answered" n (List.length lines);
        let limited =
          List.length
            (List.filter
               (fun l -> kind_of (parse_line l) = Some "rate_limited")
               lines)
        in
        Alcotest.(check bool)
          (Printf.sprintf "%d of %d rate limited" limited n)
          true
          (limited >= n - 10 && limited < n);
        Alcotest.(check int)
          "session counter agrees" limited counters.Session.rate_limited;
        (* the refusals surface in the shared stats too *)
        let stats = Serve.stats_json serve in
        let conn_limited =
          Option.bind (Json.member "connections" stats) (fun c ->
              Option.bind (Json.member "rate_limited" c) Json.int_opt)
        in
        Alcotest.(check bool)
          "stats connections.rate_limited counted" true
          (Option.value ~default:0 conn_limited >= limited);
        (* rate-limited responses carry the retry hint *)
        let hinted =
          List.find_opt
            (fun l -> kind_of (parse_line l) = Some "rate_limited")
            lines
        in
        match hinted with
        | None -> Alcotest.fail "no rate_limited response found"
        | Some l ->
          let j = parse_line l in
          Alcotest.(check bool)
            "retry_after_ms hint" true
            (Option.bind (Json.member "error" j) (Json.member "retry_after_ms")
             <> None));
    Alcotest.test_case "a dead client kills only its own session" `Quick
      (fun () ->
        let server_fd, client_fd = socketpair () in
        let session = Serve.session serve (Net.fd_transport server_fd) in
        (* the client sends one request and stops reading before the
           answer can be written: the session's write must fail, be
           counted, and stop only this session *)
        send_all client_fd ({|{"id":1,"hex":"90"}|} ^ "\n");
        Unix.shutdown client_fd Unix.SHUTDOWN_RECEIVE;
        Session.run session;
        (try Unix.close client_fd with Unix.Unix_error _ -> ());
        let c = Session.counters session in
        Alcotest.(check int) "epipe counted" 1 c.Session.epipe;
        Alcotest.(check bool) "session stopped" true (Session.stopped session);
        (* the shared core survived and still serves *)
        Alcotest.(check bool)
          "core still serves" true
          (Json.member "cycles" (Serve.handle_line serve {|{"hex":"90"}|})
           <> None);
        let stats = Serve.stats_json serve in
        let epipe =
          Option.bind (Json.member "io" stats) (fun io ->
              Option.bind (Json.member "epipe" io) Json.int_opt)
        in
        Alcotest.(check bool)
          "io.epipe in stats" true
          (Option.value ~default:0 epipe >= 1)) ]

(* ----- the real TCP listener ----- *)

let start_tcp serve cfg =
  let addr = ref None in
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let th =
    Thread.create
      (fun () ->
        Net.run ~signals:false
          ~announce:(fun ~host ~port ->
            Sync.with_lock mu (fun () ->
                addr := Some (host, port);
                Condition.signal cond))
          serve cfg)
      ()
  in
  let host, port =
    Sync.with_lock_cond mu cond
      ~until:(fun () -> !addr <> None)
      (fun () -> Option.get !addr)
  in
  (th, host, port)

let connect host port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  fd

let tcp_tests () =
  [ Alcotest.test_case "TCP end to end: serve, stats, graceful stop" `Quick
      (fun () ->
        let serve = Serve.create ~workers:1 () in
        Fun.protect ~finally:(fun () -> Serve.shutdown serve) @@ fun () ->
        let th, host, port =
          start_tcp serve { Net.default_config with Net.port = 0 }
        in
        let fd = connect host port in
        send_all fd
          ({|{"id":1,"hex":"4801d8"}|} ^ "\n" ^ {|{"cmd":"stats"}|} ^ "\n");
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        let lines = recv_lines fd in
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Alcotest.(check int) "two responses" 2 (List.length lines);
        let pred = parse_line (List.nth lines 0) in
        Alcotest.(check (option int))
          "id echoed" (Some 1)
          (Option.bind (Json.member "id" pred) Json.int_opt);
        Alcotest.(check bool)
          "prediction" true
          (Json.member "cycles" pred <> None);
        let stats = parse_line (List.nth lines 1) in
        let accepted =
          Option.bind (Json.member "stats" stats) (fun s ->
              Option.bind (Json.member "connections" s) (fun c ->
                  Option.bind (Json.member "accepted" c) Json.int_opt))
        in
        Alcotest.(check bool)
          "connection accounted" true
          (Option.value ~default:0 accepted >= 1);
        Serve.request_shutdown serve;
        Thread.join th);
    Alcotest.test_case "connections over max-conns are refused" `Quick
      (fun () ->
        let serve = Serve.create ~workers:1 () in
        Fun.protect ~finally:(fun () -> Serve.shutdown serve) @@ fun () ->
        let th, host, port =
          start_tcp serve
            { Net.default_config with Net.port = 0; max_conns = 1 }
        in
        (* the first connection occupies the only slot... *)
        let held = connect host port in
        send_all held ({|{"id":1,"hex":"90"}|} ^ "\n");
        let buf = Bytes.create 4096 in
        ignore (Unix.read held buf 0 (Bytes.length buf));
        (* ...so the second is answered with one retry_after line and
           closed *)
        let refused = connect host port in
        let lines = recv_lines refused in
        (try Unix.close refused with Unix.Unix_error _ -> ());
        (match lines with
         | [ l ] ->
           Alcotest.(check (option string))
             "refusal kind" (Some "retry_after") (kind_of (parse_line l))
         | ls -> Alcotest.failf "expected one refusal line, got %d"
                   (List.length ls));
        let rejected =
          Option.bind (Json.member "connections" (Serve.stats_json serve))
            (fun c -> Option.bind (Json.member "rejected" c) Json.int_opt)
        in
        Alcotest.(check (option int)) "rejected counted" (Some 1) rejected;
        (try Unix.close held with Unix.Unix_error _ -> ());
        Serve.request_shutdown serve;
        Thread.join th);
    Alcotest.test_case "endpoint parsing" `Quick (fun () ->
        Alcotest.(check bool)
          "host:port" true
          (Net.parse_endpoint "127.0.0.1:9999" = Ok ("127.0.0.1", 9999));
        Alcotest.(check bool)
          ":port defaults the host" true
          (Net.parse_endpoint ":80" = Ok ("127.0.0.1", 80));
        Alcotest.(check bool)
          "missing port" true
          (Result.is_error (Net.parse_endpoint "localhost"));
        Alcotest.(check bool)
          "bad port" true
          (Result.is_error (Net.parse_endpoint "h:99999"))) ]

let suite =
  (* one shared long-lived core for the pure-protocol and session
     tests, exactly as a server process would hold it *)
  let serve = Serve.create ~workers:1 () in
  [ ( "net",
      [ QCheck_alcotest.to_alcotest qcheck_framing ]
      @ framing_unit_tests @ protocol_tests serve @ config_tests
      @ session_tests serve @ tcp_tests ()
      @ [ Alcotest.test_case "shutdown" `Quick (fun () ->
              Serve.shutdown serve) ] ) ]
