let () =
  Alcotest.run "facile"
    (Test_x86.suite @ Test_graph.suite @ Test_core.suite @ Test_db.suite
     @ Test_stats.suite @ Test_sim.suite @ Test_baselines.suite
     @ Test_obs.suite @ Test_supervise.suite @ Test_net.suite
     @ Test_check.suite @ Test_store.suite @ Test_shard_cache.suite)
