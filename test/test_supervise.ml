(* Fault-tolerance layer: bounded LRU semantics, backpressure queue
   protocol, supervised executor crash/respawn/breaker lifecycle,
   deterministic fault injection, deadlines, and the serve-level
   failure paths (timeout, too_large, shed, crash isolation, EOF
   drain). *)

open Facile_uarch
open Facile_core
module Json = Facile_obs.Json
module Lru = Facile_engine.Lru
module Bqueue = Facile_engine.Bqueue
module Supervise = Facile_engine.Supervise
module Fault = Facile_engine.Fault
module Engine = Facile_engine.Engine
module Serve = Facile_engine.Serve

let valid_hex = "4801d8" (* add rax, rbx *)

let get path j =
  List.fold_left
    (fun acc key -> Option.bind acc (Json.member key))
    (Some j) path

let get_int path j =
  match Option.bind (get path j) Json.int_opt with
  | Some i -> i
  | None ->
    Alcotest.failf "no int at %s in %s" (String.concat "." path)
      (Json.to_string j)

let error_kind resp =
  Option.bind (get [ "error"; "kind" ] resp) Json.string_opt

let req ?(extra = []) hex =
  Json.to_string (Json.Obj (("hex", Json.Str hex) :: extra))

(* ------------------------------------------------------------------ *)
(* LRU                                                                 *)

let lru_tests =
  [ Alcotest.test_case "evicts in LRU order" `Quick (fun () ->
        let t = Lru.create 3 in
        Lru.add t "a" 1; Lru.add t "b" 2; Lru.add t "c" 3;
        Lru.add t "d" 4;  (* evicts a, the least recent *)
        Alcotest.(check bool) "a gone" false (Lru.mem t "a");
        Alcotest.(check bool) "b stays" true (Lru.mem t "b");
        Alcotest.(check int) "length" 3 (Lru.length t);
        Alcotest.(check int) "evictions" 1 (Lru.evictions t));
    Alcotest.test_case "find promotes to most-recent" `Quick (fun () ->
        let t = Lru.create 3 in
        Lru.add t "a" 1; Lru.add t "b" 2; Lru.add t "c" 3;
        Alcotest.(check (option int)) "find a" (Some 1) (Lru.find t "a");
        Lru.add t "d" 4;  (* now b is least recent, not a *)
        Alcotest.(check bool) "a survived" true (Lru.mem t "a");
        Alcotest.(check bool) "b evicted" false (Lru.mem t "b"));
    Alcotest.test_case "re-adding an existing key does not evict" `Quick
      (fun () ->
        let t = Lru.create 2 in
        Lru.add t "a" 1; Lru.add t "b" 2;
        Lru.add t "a" 10;  (* update in place, promote *)
        Alcotest.(check int) "no eviction" 0 (Lru.evictions t);
        Alcotest.(check (option int)) "updated" (Some 10) (Lru.find t "a");
        Lru.add t "c" 3;  (* b was least recent *)
        Alcotest.(check bool) "b evicted" false (Lru.mem t "b");
        Alcotest.(check bool) "a stays" true (Lru.mem t "a"));
    Alcotest.test_case "capacity one churns correctly" `Quick (fun () ->
        let t = Lru.create 1 in
        for i = 1 to 50 do Lru.add t i i done;
        Alcotest.(check int) "length" 1 (Lru.length t);
        Alcotest.(check int) "evictions" 49 (Lru.evictions t);
        Alcotest.(check (option int)) "last one wins" (Some 50)
          (Lru.find t 50));
    Alcotest.test_case "capacity one: promote and update churn" `Quick
      (fun () ->
        (* cap 1 is the degenerate case where head = tail: promote of
           the only entry and update-in-place must not corrupt the
           recency list while every new key evicts *)
        let t = Lru.create 1 in
        Lru.add t "a" 1;
        Alcotest.(check (option int)) "promote sole entry" (Some 1)
          (Lru.find t "a");
        Lru.add t "a" 2;  (* update in place: no eviction *)
        Alcotest.(check int) "update is free" 0 (Lru.evictions t);
        for i = 1 to 25 do
          Lru.add t (string_of_int i) i;
          Alcotest.(check (option int)) "new key readable" (Some i)
            (Lru.find t (string_of_int i));
          Alcotest.(check int) "bounded" 1 (Lru.length t)
        done;
        Alcotest.(check int) "one eviction per new key" 25 (Lru.evictions t);
        Alcotest.(check bool) "a long gone" false (Lru.mem t "a"));
    Alcotest.test_case "to_list is most-recent first, no promotion" `Quick
      (fun () ->
        let t = Lru.create 3 in
        Lru.add t "a" 1; Lru.add t "b" 2; Lru.add t "c" 3;
        ignore (Lru.find t "a");  (* promote a over c *)
        Alcotest.(check (list (pair string int))) "snapshot order"
          [ ("a", 1); ("c", 3); ("b", 2) ] (Lru.to_list t);
        (* the snapshot itself must not have promoted anything *)
        Alcotest.(check (list (pair string int))) "stable"
          [ ("a", 1); ("c", 3); ("b", 2) ] (Lru.to_list t));
    Alcotest.test_case "rejects capacity < 1" `Quick (fun () ->
        match Lru.create 0 with
        | (_ : (int, int) Lru.t) -> Alcotest.fail "accepted cap 0"
        | exception Invalid_argument _ -> ()) ]

(* A memoized answer served after heavy eviction churn must equal a
   fresh computation: eviction must only cost speed, never accuracy. *)
let engine_eviction_correctness =
  Alcotest.test_case "evicted-and-recomputed predictions are identical"
    `Quick (fun () ->
      let cfg = Config.by_arch Config.SKL in
      let block_of_hex h =
        match Facile_x86.Hex.decode h with
        | Ok bytes -> Block.of_bytes cfg bytes
        | Error _ -> Alcotest.failf "bad hex %s" h
      in
      (* distinct blocks: 1..8 nops — distinct cache keys *)
      let blocks =
        List.init 8 (fun n ->
            block_of_hex (String.concat "" (List.init (n + 1) (fun _ -> "90"))))
      in
      let t = Engine.create ~workers:1 ~cache_cap:2 () in
      Fun.protect ~finally:(fun () -> Engine.shutdown t) @@ fun () ->
      let first = List.map (Engine.predict t ~mode:`Auto) blocks in
      (* every block but the last two was evicted — run them again *)
      let second = List.map (Engine.predict t ~mode:`Auto) blocks in
      List.iter2
        (fun (a : Model.prediction) (b : Model.prediction) ->
          Alcotest.(check (float 1e-12)) "same cycles" a.Model.cycles
            b.Model.cycles)
        first second;
      let cs = Engine.cache_stats t in
      Alcotest.(check bool) "evictions happened" true (cs.Engine.evictions > 0);
      Alcotest.(check int) "cache bounded" 2 cs.Engine.entries)

(* ------------------------------------------------------------------ *)
(* Bounded queue                                                       *)

let bqueue_tests =
  [ Alcotest.test_case "push sheds when full, never blocks" `Quick (fun () ->
        let q = Bqueue.create 2 in
        Alcotest.(check bool) "1st" true (Bqueue.push q 1);
        Alcotest.(check bool) "2nd" true (Bqueue.push q 2);
        Alcotest.(check bool) "3rd shed" false (Bqueue.push q 3);
        Alcotest.(check int) "length" 2 (Bqueue.length q));
    Alcotest.test_case "close drains queued items then yields None" `Quick
      (fun () ->
        let q = Bqueue.create 4 in
        ignore (Bqueue.push q 1);
        ignore (Bqueue.push q 2);
        Bqueue.close q;
        Alcotest.(check bool) "push after close" false (Bqueue.push q 3);
        Alcotest.(check (option int)) "drain 1" (Some 1) (Bqueue.pop q);
        Alcotest.(check (option int)) "drain 2" (Some 2) (Bqueue.pop q);
        Alcotest.(check (option int)) "then None" None (Bqueue.pop q);
        Alcotest.(check (option int)) "stays None" None (Bqueue.pop q));
    Alcotest.test_case "close wakes a blocked consumer" `Quick (fun () ->
        let q : int Bqueue.t = Bqueue.create 1 in
        let result = ref (Some 42) in
        let consumer = Thread.create (fun () -> result := Bqueue.pop q) () in
        Thread.delay 0.05;
        Bqueue.close q;
        Thread.join consumer;
        Alcotest.(check (option int)) "unblocked with None" None !result);
    Alcotest.test_case "close while full: pushers shed, no deadlock" `Quick
      (fun () ->
        (* a full queue that gets closed must neither wedge concurrent
           pushers (push sheds, never blocks) nor drop the items that
           were already queued *)
        let q : int Bqueue.t = Bqueue.create 2 in
        Alcotest.(check bool) "fill 1" true (Bqueue.push q 1);
        Alcotest.(check bool) "fill 2" true (Bqueue.push q 2);
        let shed = Atomic.make 0 in
        let pushers =
          List.init 4 (fun i ->
              Thread.create
                (fun () ->
                  for j = 0 to 24 do
                    if not (Bqueue.push q (100 + (i * 25) + j)) then
                      Atomic.incr shed
                  done)
                ())
        in
        Bqueue.close q;
        (* if close-while-full could deadlock a pusher, this join would
           hang and the test runner's timeout would flag it *)
        List.iter Thread.join pushers;
        Alcotest.(check int) "every racing push shed" 100 (Atomic.get shed);
        Alcotest.(check (option int)) "drain 1" (Some 1) (Bqueue.pop q);
        Alcotest.(check (option int)) "drain 2" (Some 2) (Bqueue.pop q);
        Alcotest.(check (option int)) "then None" None (Bqueue.pop q));
    Alcotest.test_case "producer/consumer keeps order" `Quick (fun () ->
        let q = Bqueue.create 4 in
        let seen = ref [] in
        let consumer =
          Thread.create
            (fun () ->
              let rec loop () =
                match Bqueue.pop q with
                | Some v -> seen := v :: !seen; loop ()
                | None -> ()
              in
              loop ())
            ()
        in
        for i = 1 to 100 do
          while not (Bqueue.push q i) do Thread.yield () done
        done;
        Bqueue.close q;
        Thread.join consumer;
        Alcotest.(check (list int)) "fifo" (List.init 100 (fun i -> i + 1))
          (List.rev !seen)) ]

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)

let fast_config =
  { Supervise.max_respawns = 3;
    window_ns = 1_000_000_000;
    backoff_base_ns = 1_000_000;
    backoff_cap_ns = 4_000_000;
    cooldown_ns = 120_000_000 }

exception Boom

let supervise_tests =
  [ Alcotest.test_case "ok results pass through" `Quick (fun () ->
        let t = Supervise.create () in
        Fun.protect ~finally:(fun () -> Supervise.shutdown t) @@ fun () ->
        (match Supervise.run t (fun () -> 6 * 7) with
         | Ok v -> Alcotest.(check int) "value" 42 v
         | Error e -> Alcotest.failf "unexpected %s" (Printexc.to_string e));
        let s = Supervise.stats t in
        Alcotest.(check int) "no crashes" 0 s.Supervise.crashes;
        Alcotest.(check bool) "not degraded" false s.Supervise.degraded);
    Alcotest.test_case "a crash isolates and the executor respawns" `Quick
      (fun () ->
        let t = Supervise.create ~config:fast_config () in
        Fun.protect ~finally:(fun () -> Supervise.shutdown t) @@ fun () ->
        (match Supervise.run t (fun () -> raise Boom) with
         | Error Boom -> ()
         | Error e -> Alcotest.failf "wrong exn %s" (Printexc.to_string e)
         | Ok _ -> Alcotest.fail "crash swallowed");
        (* the background respawner restores a real executor *)
        Thread.delay 0.05;
        (match Supervise.run t (fun () -> "alive") with
         | Ok v -> Alcotest.(check string) "works after respawn" "alive" v
         | Error e -> Alcotest.failf "still broken: %s" (Printexc.to_string e));
        let s = Supervise.stats t in
        Alcotest.(check int) "one crash" 1 s.Supervise.crashes;
        Alcotest.(check bool) "respawned" true (s.Supervise.respawns >= 1);
        Alcotest.(check bool) "crash recorded" true
          (s.Supervise.last_crash <> None));
    Alcotest.test_case "breaker trips under repeated crashes, then recovers"
      `Quick (fun () ->
        let t = Supervise.create ~config:fast_config () in
        Fun.protect ~finally:(fun () -> Supervise.shutdown t) @@ fun () ->
        (* paced crashes so each one lands on a live (respawned)
           executor and counts as a domain death *)
        for _ = 1 to fast_config.Supervise.max_respawns do
          (match Supervise.run t (fun () -> raise Boom) with
           | Error _ -> ()
           | Ok _ -> Alcotest.fail "crash swallowed");
          Thread.delay 0.02
        done;
        Alcotest.(check bool) "breaker open" true (Supervise.degraded t);
        (* degraded mode still serves, inline and guarded *)
        (match Supervise.run t (fun () -> 1) with
         | Ok 1 -> ()
         | _ -> Alcotest.fail "degraded mode does not serve");
        (match Supervise.run t (fun () -> raise Boom) with
         | Error Boom -> ()
         | _ -> Alcotest.fail "degraded crash not guarded");
        let s = Supervise.stats t in
        Alcotest.(check bool) "transitioned" true
          (s.Supervise.degraded_transitions >= 1);
        Alcotest.(check bool) "inline runs counted" true
          (s.Supervise.inline_runs >= 2);
        (* after the cooldown the breaker closes and real executors
           take over again *)
        Thread.delay
          (float_of_int fast_config.Supervise.cooldown_ns /. 1e9 +. 0.05);
        (match Supervise.run t (fun () -> "recovered") with
         | Ok v -> Alcotest.(check string) "closed" "recovered" v
         | Error e -> Alcotest.failf "no recovery: %s" (Printexc.to_string e));
        Alcotest.(check bool) "breaker closed" false (Supervise.degraded t));
    Alcotest.test_case "shutdown falls back to inline execution" `Quick
      (fun () ->
        let t = Supervise.create () in
        Supervise.shutdown t;
        match Supervise.run t (fun () -> 7) with
        | Ok 7 -> ()
        | _ -> Alcotest.fail "inline fallback broken") ]

(* ------------------------------------------------------------------ *)
(* Fault injection and deadlines                                       *)

let fault_tests =
  [ Alcotest.test_case "rate 1 always injects, hit counters track" `Quick
      (fun () ->
        Fun.protect ~finally:Fault.clear @@ fun () ->
        Fault.configure "predict:1:42";
        (match Fault.point "predict" with
         | () -> Alcotest.fail "no injection at rate 1"
         | exception Fault.Injected p ->
           Alcotest.(check string) "point name" "predict" p);
        Fault.point "decode";  (* unconfigured points stay silent *)
        let injected, hits = List.assoc "predict" (Fault.snapshot ()) in
        Alcotest.(check int) "hits" 1 hits;
        Alcotest.(check int) "injected" 1 injected);
    Alcotest.test_case "limit caps injections" `Quick (fun () ->
        Fun.protect ~finally:Fault.clear @@ fun () ->
        Fault.configure "p:1:7:2";
        let faults = ref 0 in
        for _ = 1 to 10 do
          match Fault.point "p" with
          | () -> ()
          | exception Fault.Injected _ -> incr faults
        done;
        Alcotest.(check int) "exactly the limit" 2 !faults);
    Alcotest.test_case "seeded rates are deterministic" `Quick (fun () ->
        let run () =
          Fun.protect ~finally:Fault.clear @@ fun () ->
          Fault.configure "p:0.5:1234";
          List.init 64 (fun _ ->
              match Fault.point "p" with
              | () -> false
              | exception Fault.Injected _ -> true)
        in
        let a = run () and b = run () in
        Alcotest.(check (list bool)) "same stream" a b;
        Alcotest.(check bool) "actually mixed" true
          (List.mem true a && List.mem false a));
    Alcotest.test_case "malformed specs are rejected" `Quick (fun () ->
        List.iter
          (fun spec ->
            match Fault.configure spec with
            | () -> Alcotest.failf "accepted %S" spec
            | exception Invalid_argument _ -> ())
          [ "nope"; "p:x:1"; "p:2:1"; "p:-0.5:1"; "p:0.5"; ":" ];
        Fault.clear ());
    Alcotest.test_case "with_deadline raises once the budget is spent" `Quick
      (fun () ->
        (match
           Fault.with_deadline (Some 0) (fun () ->
               Thread.delay 0.002;
               Fault.check_deadline ();
               "finished")
         with
         | _ -> Alcotest.fail "deadline ignored"
         | exception Fault.Deadline_exceeded -> ());
        (* disarmed on the way out, even on the raise *)
        Fault.check_deadline ();
        Alcotest.(check string) "no deadline runs free" "ok"
          (Fault.with_deadline None (fun () ->
               Fault.check_deadline (); "ok"))) ]

(* ------------------------------------------------------------------ *)
(* Serve-level failure paths                                           *)

let serve_fault_isolation =
  Alcotest.test_case "an injected crash answers internal, then recovers"
    `Quick (fun () ->
      Fun.protect ~finally:Fault.clear @@ fun () ->
      Fault.configure "predict:1:42:1";  (* exactly one crash *)
      let t = Serve.create ~workers:1 () in
      Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
      let r1 = Serve.handle_line t (req valid_hex) in
      Alcotest.(check (option string)) "typed internal error"
        (Some "internal") (error_kind r1);
      Thread.delay 0.05;  (* let the executor respawn *)
      let r2 = Serve.handle_line t (req valid_hex) in
      Alcotest.(check (option string)) "next request predicts" None
        (error_kind r2);
      Alcotest.(check bool) "has cycles" true
        (Json.member "cycles" r2 <> None);
      let s = Serve.handle_line t {|{"cmd":"stats"}|} in
      Alcotest.(check bool) "respawn counted" true
        (get_int [ "stats"; "supervisor"; "respawns" ] s >= 1);
      Alcotest.(check int) "internal counted" 1
        (get_int [ "stats"; "errors"; "by_kind"; "internal" ] s);
      Alcotest.(check int) "fault attributed" 1
        (get_int [ "stats"; "faults"; "predict"; "injected" ] s))

let serve_deadline =
  Alcotest.test_case "an exhausted deadline answers timeout" `Quick (fun () ->
      let t = Serve.create ~workers:1 ~deadline_ms:0 () in
      Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
      let r = Serve.handle_line t (req valid_hex) in
      Alcotest.(check (option string)) "timeout kind" (Some "timeout")
        (error_kind r);
      let s = Serve.handle_line t {|{"cmd":"stats"}|} in
      Alcotest.(check int) "timeout counted" 1
        (get_int [ "stats"; "errors"; "by_kind"; "timeout" ] s);
      (* a timeout is not a crash: no respawn burned *)
      Alcotest.(check int) "no crash" 0
        (get_int [ "stats"; "supervisor"; "crashes" ] s))

let serve_too_large =
  Alcotest.test_case "oversized inputs answer too_large" `Quick (fun () ->
      let limits =
        { Serve.default_limits with Serve.max_input_bytes = 8; max_insts = 2 }
      in
      let t = Serve.create ~workers:1 ~limits () in
      Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
      (* payload over max_input_bytes *)
      let r = Serve.handle_line t (req (String.concat "" (List.init 16 (fun _ -> "90")))) in
      Alcotest.(check (option string)) "payload cap" (Some "too_large")
        (error_kind r);
      (* decodes fine but has more than max_insts instructions *)
      let r2 = Serve.handle_line t (req "909090") in
      Alcotest.(check (option string)) "inst cap" (Some "too_large")
        (error_kind r2);
      (* a line bigger than max_line_bytes is refused outright *)
      let tiny =
        Serve.create ~workers:1
          ~limits:{ Serve.default_limits with Serve.max_line_bytes = 32 } ()
      in
      Fun.protect ~finally:(fun () -> Serve.shutdown tiny) @@ fun () ->
      let r3 = Serve.handle_line tiny (req (String.make 64 '9')) in
      Alcotest.(check (option string)) "line cap" (Some "too_large")
        (error_kind r3);
      (* within limits still predicts *)
      let ok = Serve.handle_line t (req valid_hex) in
      Alcotest.(check (option string)) "small input fine" None
        (error_kind ok))

(* Full loop over OS pipes: requests in, EOF, every response out, the
   queue drained, clean return. *)
let serve_eof_drain =
  Alcotest.test_case "run drains queued work on EOF" `Quick (fun () ->
      let t = Serve.create ~workers:1 ~queue_cap:64 () in
      Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
      let req_r, req_w = Unix.pipe ~cloexec:false () in
      let resp_r, resp_w = Unix.pipe ~cloexec:false () in
      let ic = Unix.in_channel_of_descr req_r in
      let oc = Unix.out_channel_of_descr resp_w in
      let n = 20 in
      let writer =
        Thread.create
          (fun () ->
            let out = Unix.out_channel_of_descr req_w in
            for i = 1 to n do
              output_string out
                (req ~extra:[ "id", Json.Int i ] valid_hex);
              output_char out '\n'
            done;
            close_out out (* EOF *))
          ()
      in
      let server = Thread.create (fun () -> Serve.run ~signals:false t ic oc) () in
      Thread.join writer;
      Thread.join server;
      close_out oc;
      let inc = Unix.in_channel_of_descr resp_r in
      let responses = ref [] in
      (try
         while true do
           responses := input_line inc :: !responses
         done
       with End_of_file -> ());
      close_in inc;
      Alcotest.(check int) "every request answered" n
        (List.length !responses);
      let ids =
        List.rev_map
          (fun line ->
            match Json.parse line with
            | Ok j -> get_int [ "id" ] j
            | Error m -> Alcotest.failf "bad response %S: %s" line m)
          !responses
      in
      Alcotest.(check (list int)) "in order, none lost"
        (List.init n (fun i -> i + 1)) ids)

let suite =
  [ "engine.lru", lru_tests @ [ engine_eviction_correctness ];
    "engine.bqueue", bqueue_tests;
    "engine.supervise", supervise_tests;
    "engine.fault", fault_tests;
    "engine.serve_faults",
    [ serve_fault_isolation; serve_deadline; serve_too_large;
      serve_eof_drain ] ]
