open Facile_graph

let mk n edges =
  let g = Digraph.create ~n in
  List.iter
    (fun (src, dst, weight, count) ->
      Digraph.add_edge g ~src ~dst ~weight ~count)
    edges;
  g

let check_ratio name g expected =
  Alcotest.test_case name `Quick (fun () ->
      (match Cycle_ratio.howard g with
       | Some r ->
         Alcotest.(check (float 1e-6)) (name ^ " (howard)") expected r
       | None -> Alcotest.failf "%s: howard found no cycle" name);
      match Cycle_ratio.lawler g with
      | Some r -> Alcotest.(check (float 1e-6)) (name ^ " (lawler)") expected r
      | None -> Alcotest.failf "%s: lawler found no cycle" name)

let known_tests =
  [ check_ratio "self loop" (mk 1 [ (0, 0, 3.0, 1) ]) 3.0;
    check_ratio "two-node cycle"
      (mk 2 [ (0, 1, 2.0, 0); (1, 0, 4.0, 1) ])
      6.0;
    check_ratio "two cycles, pick max"
      (mk 4
         [ (0, 1, 2.0, 0); (1, 0, 0.0, 1);  (* ratio 2 *)
           (2, 3, 5.0, 0); (3, 2, 5.0, 2) ])
      (* ratio 5 *)
      5.0;
    check_ratio "cycle spanning two iterations"
      (mk 2 [ (0, 1, 10.0, 1); (1, 0, 0.0, 1) ])
      5.0;
    check_ratio "long chain"
      (mk 5
         [ (0, 1, 1.0, 0); (1, 2, 1.0, 0); (2, 3, 1.0, 0); (3, 4, 1.0, 0);
           (4, 0, 1.0, 1) ])
      5.0;
    Alcotest.test_case "acyclic" `Quick (fun () ->
        let g = mk 3 [ (0, 1, 5.0, 0); (1, 2, 7.0, 1) ] in
        assert (Cycle_ratio.howard g = None);
        assert (Cycle_ratio.lawler g = None));
    Alcotest.test_case "empty graph" `Quick (fun () ->
        assert (Cycle_ratio.howard (mk 0 []) = None));
    Alcotest.test_case "critical cycle extraction" `Quick (fun () ->
        let g =
          mk 4
            [ (0, 1, 2.0, 0); (1, 0, 0.0, 1);
              (2, 3, 9.0, 0); (3, 2, 0.0, 1) ]
        in
        match Cycle_ratio.howard g with
        | Some r ->
          Alcotest.(check (float 1e-6)) "max ratio" 9.0 r;
          (match Cycle_ratio.critical_cycle g r with
           | Some edges ->
             let total_w =
               List.fold_left (fun a e -> a +. e.Digraph.weight) 0.0 edges
             in
             let total_t =
               List.fold_left (fun a e -> a + e.Digraph.count) 0 edges
             in
             Alcotest.(check (float 1e-3)) "cycle ratio"
               9.0 (total_w /. float_of_int total_t)
           | None -> Alcotest.fail "no critical cycle found")
        | None -> Alcotest.fail "no cycle found") ]

(* Property: Howard and Lawler agree on random graphs whose cycles all
   have positive iteration count (guaranteed here by giving every edge
   count >= 1). *)
let agreement =
  QCheck.Test.make ~name:"howard = lawler on random graphs" ~count:300
    QCheck.(
      pair (int_range 1 8)
        (list_of_size Gen.(int_range 0 20)
           (quad (int_range 0 7) (int_range 0 7) (int_range 0 20)
              (int_range 1 3))))
    (fun (n, edges) ->
      let g = Digraph.create ~n in
      List.iter
        (fun (s, d, w, t) ->
          (* clamp: QCheck shrinking can escape int_range bounds *)
          let t = max 1 (min 3 t) in
          if s < n && d < n then
            Digraph.add_edge g ~src:s ~dst:d ~weight:(float_of_int w) ~count:t)
        edges;
      match Cycle_ratio.howard g, Cycle_ratio.lawler g with
      | None, None -> true
      | Some a, Some b -> abs_float (a -. b) < 1e-5
      | Some a, None -> QCheck.Test.fail_reportf "howard %f, lawler none" a
      | None, Some b -> QCheck.Test.fail_reportf "howard none, lawler %f" b)

(* Property: adding an edge never decreases the maximum cycle ratio. *)
let monotone =
  QCheck.Test.make ~name:"adding edges is monotone" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 15)
           (quad (int_range 0 5) (int_range 0 5) (int_range 0 10)
              (int_range 1 2)))
        (quad (int_range 0 5) (int_range 0 5) (int_range 0 10) (int_range 1 2)))
    (fun (edges, extra) ->
      let build es =
        let g = Digraph.create ~n:6 in
        List.iter
          (fun (s, d, w, t) ->
            let t = max 1 (min 2 t) in
            Digraph.add_edge g ~src:s ~dst:d ~weight:(float_of_int w) ~count:t)
          es;
        g
      in
      let before = Cycle_ratio.howard (build edges) in
      let after = Cycle_ratio.howard (build (extra :: edges)) in
      match before, after with
      | None, _ -> true
      | Some _, None -> false
      | Some a, Some b -> b >= a -. 1e-9)

(* The allocation-free array spelling must return bit-identical ratios
   to the list-based howard when fed the same edges in the same
   insertion order (the Precedence hot path depends on exactly this). *)
let flat_agreement =
  QCheck.Test.make ~name:"howard_flat is bit-identical to howard" ~count:500
    QCheck.(
      list_of_size Gen.(int_range 0 25)
        (quad (int_range 0 7) (int_range 0 7) (int_range 0 12) (int_range 1 2)))
    (fun edges ->
      let edges =
        List.map (fun (s, d, w, t) -> (s, d, w, max 1 (min 2 t))) edges
      in
      let n = 8 in
      let g = Digraph.create ~n in
      List.iter
        (fun (s, d, w, t) ->
          Digraph.add_edge g ~src:s ~dst:d ~weight:(float_of_int w) ~count:t)
        edges;
      let m = List.length edges in
      let src = Array.make (max m 1) 0
      and dst = Array.make (max m 1) 0
      and weight = Array.make (max m 1) 0.0
      and count = Array.make (max m 1) 0 in
      List.iteri
        (fun i (s, d, w, t) ->
          src.(i) <- s;
          dst.(i) <- d;
          weight.(i) <- float_of_int w;
          count.(i) <- t)
        edges;
      match
        ( Cycle_ratio.howard g,
          Cycle_ratio.howard_flat ~n ~m ~src ~dst ~weight ~count )
      with
      | None, None -> true
      | Some a, Some b -> Float.equal a b
      | Some _, None | None, Some _ -> false)

let suite =
  [ "graph.known", known_tests;
    "graph.properties",
    List.map QCheck_alcotest.to_alcotest [ agreement; monotone; flat_agreement ] ]
