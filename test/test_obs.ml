(* Observability layer and serving loop: JSON round trips, histogram
   quantiles, the NDJSON wire protocol (every request line yields a
   well-formed response or a typed error, never a crash), stats
   snapshot accounting, and the typed error -> exit code mapping. *)

open Facile_x86
open Facile_uarch
open Facile_core
module Json = Facile_obs.Json
module Obs = Facile_obs.Obs
module Serve = Facile_engine.Serve

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error m -> Alcotest.failf "cannot parse %S: %s" s m

(* machine code for "add rax, rbx" *)
let valid_hex = "4801d8"

let get path j =
  List.fold_left
    (fun acc key ->
      match Option.bind acc (Json.member key) with
      | Some v -> Some v
      | None -> None)
    (Some j) path

let get_int path j =
  match Option.bind (get path j) Json.int_opt with
  | Some i -> i
  | None -> Alcotest.failf "no int at %s in %s" (String.concat "." path)
              (Json.to_string j)

let get_float path j =
  match Option.bind (get path j) Json.float_opt with
  | Some f -> f
  | None -> Alcotest.failf "no number at %s in %s" (String.concat "." path)
              (Json.to_string j)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let json_tests =
  [ Alcotest.test_case "round trips" `Quick (fun () ->
        List.iter
          (fun s ->
            let v = parse_ok s in
            Alcotest.(check bool)
              ("reprint/reparse " ^ s) true
              (Json.parse (Json.to_string v) = Ok v))
          [ {|{"id":1,"arch":"SKL","hex":"90"}|}; "[]"; "{}"; "null";
            "true"; "-42"; "3.5"; "1e3"; {|"a\nbé😀"|};
            {|[1,[2,[3,{"k":[]}]]]|} ]);
    Alcotest.test_case "rejects malformed" `Quick (fun () ->
        List.iter
          (fun s ->
            match Json.parse s with
            | Ok _ -> Alcotest.failf "accepted %S" s
            | Error _ -> ())
          [ ""; "{"; "[1,"; "tru"; "1.2.3"; "\"abc"; "{\"a\":}"; "nul";
            "1 2"; "{\"a\" 1}"; String.make 400 '[' ]);
    Alcotest.test_case "non-finite floats become null" `Quick (fun () ->
        Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float Float.nan));
        Alcotest.(check string) "inf" "null"
          (Json.to_string (Json.Float Float.infinity))) ]

let qcheck_json_roundtrip =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let leaf =
            oneof
              [ return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) small_signed_int;
                map
                  (fun f ->
                    if Float.is_finite f then Json.Float f else Json.Int 0)
                  float;
                map (fun s -> Json.Str s) string_printable ]
          in
          if n <= 0 then leaf
          else
            frequency
              [ 3, leaf;
                1,
                map (fun l -> Json.Arr l) (list_size (0 -- 4) (self (n / 2)));
                1,
                map
                  (fun l -> Json.Obj l)
                  (list_size (0 -- 4)
                     (pair string_printable (self (n / 2)))) ]))
  in
  QCheck.Test.make ~count:500
    ~name:"json print/parse round trip"
    (QCheck.make gen ~print:Json.to_string)
    (fun v -> Json.parse (Json.to_string v) = Ok v)

(* Satellite of the flattening PR: predictions are serialized float by
   float, so the emitter's float repr must parse back to the exact same
   IEEE value (the shortest-round-trip logic in [Json.float_repr]). *)
let qcheck_float_identity =
  QCheck.Test.make ~count:1000 ~name:"json float print/parse identity"
    QCheck.float
    (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float g) -> Float.is_finite f && Float.equal g f
      | Ok (Json.Int i) -> Float.is_finite f && Float.equal (float_of_int i) f
      | Ok Json.Null -> not (Float.is_finite f)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)

let histogram_tests =
  [ Alcotest.test_case "counts and totals are exact" `Quick (fun () ->
        let h = Obs.Histogram.create () in
        List.iter (Obs.Histogram.record h) [ 5; 5; 5; 100; 1000 ];
        Alcotest.(check int) "count" 5 (Obs.Histogram.count h);
        Alcotest.(check int) "sum" 1115 (Obs.Histogram.sum_ns h));
    Alcotest.test_case "quantiles land in the right bucket" `Quick (fun () ->
        let h = Obs.Histogram.create () in
        List.iter (Obs.Histogram.record h) [ 5; 5; 5; 100; 1000 ];
        let p50 = Obs.Histogram.quantile h 0.5 in
        (* rank 3 of [5;5;5;100;1000] is 5, whose bucket is [4,8) *)
        Alcotest.(check bool) "p50 in bucket of 5" true (p50 >= 4.0 && p50 <= 8.0);
        let p100 = Obs.Histogram.quantile h 1.0 in
        (* 1000 lives in [512,1024) *)
        Alcotest.(check bool) "max in bucket of 1000" true
          (p100 >= 512.0 && p100 <= 1024.0);
        Alcotest.(check (float 1e-9)) "empty histogram" 0.0
          (Obs.Histogram.quantile (Obs.Histogram.create ()) 0.5));
    Alcotest.test_case "reset keeps registered entries alive" `Quick (fun () ->
        let h = Obs.histogram "test.reset-probe" in
        Obs.Histogram.record h 10;
        Obs.reset ();
        Alcotest.(check int) "zeroed" 0 (Obs.Histogram.count h);
        Obs.Histogram.record h 10;
        (* the snapshot must still see the same histogram *)
        let snap = Obs.snapshot () in
        Alcotest.(check int) "still registered" 1
          (get_int [ "spans"; "test.reset-probe"; "count" ] snap)) ]

(* ------------------------------------------------------------------ *)
(* Serving loop: the wire never crashes and errors are typed           *)

let wire_kinds =
  [ "bad_hex"; "parse_error"; "unknown_arch"; "unknown_mode";
    "encode_error"; "too_large"; "timeout"; "bad_request"; "retry_after";
    "internal" ]

let well_formed_response (resp : Json.t) =
  (* every response reprints to parseable JSON and is a prediction, an
     error of a known kind, or a stats object *)
  match Json.parse (Json.to_string resp) with
  | Error _ -> false
  | Ok _ ->
    (match Json.member "error" resp with
     | Some e ->
       (match Option.bind (Json.member "kind" e) Json.string_opt with
        | Some k -> List.mem k wire_kinds
        | None -> false)
     | None ->
       Json.member "cycles" resp <> None || Json.member "stats" resp <> None)

let qcheck_wire_garbage serve =
  QCheck.Test.make ~count:300
    ~name:"serve survives arbitrary request lines"
    QCheck.(string)
    (fun line ->
      let resp = Serve.handle_line serve line in
      well_formed_response resp)

let qcheck_wire_requests serve =
  let gen =
    QCheck.Gen.(
      let* arch = oneofl [ "SKL"; "HSW"; "RKL"; "ZZZ"; "" ] in
      let* mode = oneofl [ "auto"; "loop"; "unroll"; "spin" ] in
      let* hex = oneofl [ valid_hex; "90"; "zz"; "4"; "62" ] in
      return (arch, mode, hex))
  in
  QCheck.Test.make ~count:200
    ~name:"wire requests answer with a prediction or the right error kind"
    (QCheck.make gen ~print:(fun (a, m, h) -> Printf.sprintf "%s/%s/%s" a m h))
    (fun (arch, mode, hex) ->
      let req =
        Json.Obj
          [ "id", Json.Int 7; "arch", Json.Str arch; "mode", Json.Str mode;
            "hex", Json.Str hex ]
      in
      let resp = Serve.handle_line serve (Json.to_string req) in
      if not (well_formed_response resp) then false
      else begin
        let error_kind =
          Option.bind (get [ "error"; "kind" ] resp) Json.string_opt
        in
        (* the service checks arch, then mode, then input *)
        let expected =
          if Config.of_abbrev arch = None then Some "unknown_arch"
          else if not (List.mem mode [ "auto"; "loop"; "unroll" ]) then
            Some "unknown_mode"
          else if String.contains hex 'z' then Some "bad_hex"
          else if String.length hex mod 2 = 1 then Some "bad_hex"
          else None (* either a prediction or a typed decode error *)
        in
        match expected, error_kind with
        | Some k, Some k' -> k = k'
        | Some _, None -> false
        | None, Some k -> k = "encode_error"
        | None, None ->
          (* echoed id and a numeric cycles field *)
          get [ "id" ] resp = Some (Json.Int 7)
          && Option.bind (get [ "cycles" ] resp) Json.float_opt <> None
      end)

(* ------------------------------------------------------------------ *)
(* Stats snapshot accounting                                           *)

let stats_snapshot =
  Alcotest.test_case "stats counts requests, errors, cache, latency" `Quick
    (fun () ->
      let t = Serve.create ~workers:1 () in
      Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
      let send line = ignore (Serve.handle_line t line) in
      let req ?(arch = "SKL") hex =
        Json.to_string
          (Json.Obj [ "arch", Json.Str arch; "hex", Json.Str hex ])
      in
      (* 3x the same SKL block: 1 miss + 2 hits *)
      send (req valid_hex);
      send (req valid_hex);
      send (req valid_hex);
      (* 2x the same bytes on HSW: a distinct cache key, 1 miss + 1 hit *)
      send (req ~arch:"HSW" valid_hex);
      send (req ~arch:"HSW" valid_hex);
      (* 2 typed errors and 1 malformed line *)
      send (req "zz");
      send (req "zz");
      send "definitely not json";
      let resp = Serve.handle_line t {|{"cmd":"stats"}|} in
      let s =
        match Json.member "stats" resp with
        | Some s -> s
        | None -> Alcotest.failf "no stats in %s" (Json.to_string resp)
      in
      Alcotest.(check int) "total" 9 (get_int [ "requests"; "total" ] s);
      Alcotest.(check int) "predicted" 5
        (get_int [ "requests"; "predicted" ] s);
      Alcotest.(check int) "stats served" 1
        (get_int [ "requests"; "stats" ] s);
      Alcotest.(check int) "SKL" 3 (get_int [ "requests"; "by_arch"; "SKL" ] s);
      Alcotest.(check int) "HSW" 2 (get_int [ "requests"; "by_arch"; "HSW" ] s);
      Alcotest.(check int) "errors" 3 (get_int [ "errors"; "total" ] s);
      Alcotest.(check int) "bad_hex" 2
        (get_int [ "errors"; "by_kind"; "bad_hex" ] s);
      Alcotest.(check int) "bad_request" 1
        (get_int [ "errors"; "by_kind"; "bad_request" ] s);
      Alcotest.(check int) "cache hits" 3 (get_int [ "cache"; "hits" ] s);
      Alcotest.(check int) "cache misses" 2 (get_int [ "cache"; "misses" ] s);
      Alcotest.(check (float 1e-9)) "hit rate" 0.6
        (get_float [ "cache"; "hit_rate" ] s);
      (* every line before the stats request has a recorded latency *)
      Alcotest.(check int) "latency count" 8
        (get_int [ "latency_us"; "count" ] s);
      Alcotest.(check bool) "p50 <= p99" true
        (get_float [ "latency_us"; "p50" ] s
         <= get_float [ "latency_us"; "p99" ] s);
      (* component spans are attributed in the snapshot *)
      Alcotest.(check bool) "predec span present" true
        (get_int [ "process"; "spans"; "model.predec"; "count" ] s > 0))

(* ------------------------------------------------------------------ *)
(* Error taxonomy and exit codes                                       *)

let err_tests =
  [ Alcotest.test_case "exit codes are distinct and reserved-safe" `Quick
      (fun () ->
        let codes = List.map Err.exit_code Err.all_kinds in
        Alcotest.(check int) "distinct" (List.length codes)
          (List.length (List.sort_uniq compare codes));
        List.iter
          (fun c ->
            Alcotest.(check bool) "not 0/1/2 and below cmdliner's 124" true
              (c > 2 && c < 124))
          codes);
    Alcotest.test_case "kind names round trip" `Quick (fun () ->
        List.iter
          (fun k ->
            Alcotest.(check bool) "kind_of_name inverts kind_name" true
              (Err.kind_of_name (Err.kind_name k) = Some k))
          Err.all_kinds);
    Alcotest.test_case "hex decoding reports position" `Quick (fun () ->
        match Hex.decode "90 q0" with
        | Ok _ -> Alcotest.fail "accepted bad hex"
        | Error e ->
          Alcotest.(check bool) "kind" true (e.Err.kind = Err.Bad_hex);
          Alcotest.(check (option int)) "pos" (Some 3) e.Err.pos);
    Alcotest.test_case "prediction_to_json rejects non-finite values" `Quick
      (fun () ->
        let cfg = Config.by_arch Config.SKL in
        let code =
          match Hex.decode valid_hex with Ok c -> c | Error _ -> assert false
        in
        let p = Model.predict (Block.of_bytes cfg code) in
        List.iter
          (fun bad ->
            match Model.prediction_to_json { p with Model.cycles = bad } with
            | _ -> Alcotest.failf "accepted cycles = %h" bad
            | exception Err.Error e ->
              Alcotest.(check bool) "internal kind" true
                (e.Err.kind = Err.Internal))
          [ Float.nan; Float.infinity; Float.neg_infinity ]) ]

(* ------------------------------------------------------------------ *)
(* Serialization: the serve wire format cannot drift from --json       *)

let no_drift =
  Alcotest.test_case "serve response equals Model.prediction_to_json" `Quick
    (fun () ->
      let cfg = Config.by_arch Config.SKL in
      let code =
        match Hex.decode valid_hex with Ok c -> c | Error _ -> assert false
      in
      let p = Model.predict (Block.of_bytes cfg code) in
      let t = Serve.create ~workers:1 () in
      Fun.protect ~finally:(fun () -> Serve.shutdown t) @@ fun () ->
      let resp =
        Serve.handle_line t
          (Json.to_string (Json.Obj [ "hex", Json.Str valid_hex ]))
      in
      let expected =
        match Model.prediction_to_json p with
        | Json.Obj fields -> Json.Obj (("id", Json.Null) :: fields)
        | j -> j
      in
      Alcotest.(check string) "identical wire object"
        (Json.to_string expected) (Json.to_string resp))

(* ------------------------------------------------------------------ *)
(* Model.predict ~notion unification                                   *)

let notion_tests =
  [ Alcotest.test_case "predict ~notion matches the deprecated entry points"
      `Quick (fun () ->
        let cfg = Config.by_arch Config.SKL in
        let b =
          match Asm.parse_block "add rax, rbx\nimul rcx, rdx" with
          | Ok insts -> Block.of_instructions cfg insts
          | Error m -> Alcotest.failf "parse: %s" m
        in
        Alcotest.(check (float 1e-12)) "U"
          (Model.predict_u b).Model.cycles
          (Model.predict ~notion:Model.U b).Model.cycles;
        Alcotest.(check (float 1e-12)) "L"
          (Model.predict_l b).Model.cycles
          (Model.predict ~notion:Model.L b).Model.cycles;
        let auto = (Model.predict ~notion:Model.Auto b).Model.cycles in
        let expect =
          if Block.ends_in_branch b then (Model.predict_l b).Model.cycles
          else (Model.predict_u b).Model.cycles
        in
        Alcotest.(check (float 1e-12)) "Auto dispatch" expect auto) ]

let suite =
  let serve = Serve.create ~workers:1 () in
  (* shared long-lived instance for the qcheck wire tests: exercising
     one state machine across hundreds of mixed requests is exactly
     the serving scenario *)
  [ "obs.json",
    QCheck_alcotest.to_alcotest qcheck_json_roundtrip
    :: QCheck_alcotest.to_alcotest qcheck_float_identity
    :: json_tests;
    "obs.histogram", histogram_tests;
    "obs.wire",
    [ QCheck_alcotest.to_alcotest (qcheck_wire_garbage serve);
      QCheck_alcotest.to_alcotest (qcheck_wire_requests serve);
      stats_snapshot; no_drift ];
    "obs.errors", err_tests;
    "obs.model", notion_tests ]
