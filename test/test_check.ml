(* The static checker checking itself: the shipped tables must come
   back clean, every rule family must fire on a seeded corruption
   (mutation self-tests), and the block-invariant analyzer must accept
   every Genblock block on every arch (no false positives). *)

open Facile_x86
open Facile_uarch
open Facile_check

let fired rule findings =
  List.exists
    (fun (f : Finding.t) ->
      f.Finding.rule = rule && f.Finding.severity = Finding.Error)
    findings

let assert_fires rule findings =
  if not (fired rule findings) then
    Alcotest.failf "expected rule %s to fire; got: %s" rule
      (String.concat "; " (List.map Finding.to_string findings))

let assert_clean findings =
  match Finding.errors findings with
  | [] -> ()
  | errs ->
    Alcotest.failf "expected no errors, got: %s"
      (String.concat "; " (List.map Finding.to_string errs))

let skl = Config.by_arch Config.SKL

(* ----- shipped tables are clean ----- *)

let test_shipped_clean () =
  let r = Check.run_all () in
  assert_clean r.Check.findings;
  Alcotest.(check bool) "ok" true (Check.ok r);
  Alcotest.(check int) "errors" 0 r.Check.n_error;
  (* each family contributes its coverage info line *)
  Alcotest.(check bool) "has info" true (r.Check.n_info >= 3)

let test_family_selection () =
  List.iter
    (fun fam ->
      let r = Check.run_all ~families:[ fam ] () in
      assert_clean r.Check.findings)
    Check.analyzer_names

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* The library entry point must reject unknown family names just like
   the CLI does (callers embedding the checker get the same contract). *)
let test_unknown_family () =
  List.iter
    (fun fams ->
      match Check.run_all ~families:fams () with
      | _ -> Alcotest.failf "run_all accepted %s" (String.concat "," fams)
      | exception Invalid_argument msg ->
        List.iter
          (fun valid ->
            Alcotest.(check bool)
              (Printf.sprintf "message lists %s" valid)
              true (contains msg valid))
          Check.analyzer_names)
    [ [ "nosuch" ]; [ "config"; "typo" ]; [ "flat"; "" ] ]

(* ----- config mutations ----- *)

let test_cfg_mutations () =
  let open Config in
  (* empty mandatory port set *)
  assert_fires "cfg-ports-empty"
    (Config_lint.lint_one { skl with pm = { skl.pm with alu = Port.empty } });
  (* a port-map field escaping the machine port set *)
  assert_fires "cfg-ports-subset"
    (Config_lint.lint_one
       { skl with pm = { skl.pm with alu = Port.of_list [ 15 ] } });
  (* ports no longer the union of the map *)
  assert_fires "cfg-ports-union"
    (Config_lint.lint_one { skl with ports = Port.of_list [ 0 ] });
  (* non-positive width *)
  assert_fires "cfg-width-positive"
    (Config_lint.lint_one { skl with issue_width = 0 });
  (* ordering violations *)
  assert_fires "cfg-width-order"
    (Config_lint.lint_one { skl with dsb_width = skl.issue_width - 1 });
  assert_fires "cfg-width-order"
    (Config_lint.lint_one { skl with idq_size = skl.rob_size + 1 });
  (* erratum/LSD contradiction: SKL has jcc_erratum set *)
  assert_fires "cfg-jcc-lsd"
    (Config_lint.lint_one { skl with lsd_enabled = true });
  (* duplicate abbreviation *)
  assert_fires "cfg-unique" (Config_lint.lint_unique [ skl; skl ]);
  (* capacity regression across generations *)
  assert_fires "cfg-generation-order"
    (Config_lint.lint_generation
       [ Config.by_arch Config.SNB; { skl with rob_size = 1 } ]);
  (* an undamaged config is clean *)
  assert_clean (Config_lint.lint_one skl)

(* ----- table mutations ----- *)

let test_tbl_mutations () =
  let add = Inst.make Inst.ADD
      [ Operand.Reg (Register.Gpr (Register.W64, Register.RAX));
        Operand.Reg (Register.Gpr (Register.W64, Register.RBX)) ]
  in
  let d = Facile_db.Db.describe skl add in
  let open Facile_db.Db in
  assert_fires "tbl-uop-count"
    (Table_check.check_desc skl add { d with fused_uops = 0 });
  assert_fires "tbl-uop-count"
    (Table_check.check_desc skl add { d with issued_uops = d.fused_uops - 1 });
  assert_fires "tbl-uop-count"
    (Table_check.check_desc skl add { d with dispatched = [] });
  (* corrupted port table entry: empty and out-of-machine port sets *)
  assert_fires "tbl-port-empty"
    (Table_check.check_desc skl add
       { d with
         dispatched = [ { kind = Compute; ports = Port.empty } ] });
  assert_fires "tbl-port-subset"
    (Table_check.check_desc skl add
       { d with
         dispatched = [ { kind = Compute; ports = Port.of_list [ 15 ] } ] });
  assert_fires "tbl-latency"
    (Table_check.check_desc skl add { d with latency = -1 });
  assert_fires "tbl-simple-dec"
    (Table_check.check_desc skl add { d with available_simple_dec = 99 });
  assert_fires "tbl-simple-dec"
    (Table_check.check_desc skl add { d with complex_decode = true });
  assert_clean (Table_check.check_desc skl add d);
  (* a mnemonic losing all enumerated forms *)
  assert_fires "tbl-missing-form" (Table_check.coverage [ (Inst.ADD, []) ]);
  (* feature-gate disagreement: corrupt the independent gate
     re-derivation and the cross-check must flag the DB/gate mismatch *)
  let snb = Config.by_arch Config.SNB in
  let fma =
    Inst.make Inst.VFMADD231PS
      [ Operand.Reg (Register.Xmm 1); Operand.Reg (Register.Xmm 2);
        Operand.Reg (Register.Xmm 3) ]
  in
  (* gate claims FMA exists everywhere, the DB rejects it on SNB *)
  assert_fires "tbl-hole"
    (Table_check.check_form ~requires:(fun _ -> false) snb fma);
  (* gate claims ADD is Haswell-only, the DB accepts it on SNB *)
  assert_fires "tbl-gate-leak"
    (Table_check.check_form ~requires:(fun _ -> true) snb add)

(* ----- codec mutations ----- *)

let test_codec_mutations () =
  let add = Inst.make Inst.ADD
      [ Operand.Reg (Register.Gpr (Register.W64, Register.RAX));
        Operand.Reg (Register.Gpr (Register.W64, Register.RBX)) ]
  in
  (* corrupt encoder length: a stray byte appended after the encoding *)
  let pad (e : Encode.encoded) =
    { e with Encode.bytes = e.Encode.bytes ^ "\x90" }
  in
  assert_fires "codec-length"
    (Codec_check.check_one ~encode:(fun i -> pad (Encode.encode i)) add);
  (* flipped LCP flag *)
  let flip (e : Encode.encoded) =
    { e with Encode.has_lcp = not e.Encode.has_lcp }
  in
  assert_fires "codec-lcp-meta"
    (Codec_check.check_one ~encode:(fun i -> flip (Encode.encode i)) add);
  (* corrupt opcode offset pointing into a non-prefix byte *)
  let skew (e : Encode.encoded) =
    { e with Encode.opcode_off = e.Encode.opcode_off + 1 }
  in
  assert_fires "codec-prefix-layout"
    (Codec_check.check_one ~encode:(fun i -> skew (Encode.encode i)) add);
  (* corrupt bytes: the decoder must expose the round-trip break *)
  let smash (e : Encode.encoded) =
    let b = Bytes.of_string e.Encode.bytes in
    Bytes.set b (Bytes.length b - 1) '\xc3';
    { e with Encode.bytes = Bytes.to_string b }
  in
  assert_fires "codec-roundtrip"
    (Codec_check.check_one ~encode:(fun i -> smash (Encode.encode i)) add);
  assert_clean (Codec_check.check_one add)

(* ----- model mutations ----- *)

let test_mdl_mutations () =
  let open Facile_core in
  let block =
    Block.of_instructions skl
      [ Inst.make Inst.ADD
          [ Operand.Reg (Register.Gpr (Register.W64, Register.RAX));
            Operand.Reg (Register.Gpr (Register.W64, Register.RBX)) ] ]
  in
  let p = Model.predict ~notion:Model.U block in
  assert_clean (Model_check.check_prediction skl "t" ~notion:`U p);
  (* prediction no longer the max over its candidates *)
  assert_fires "mdl-max"
    (Model_check.check_prediction skl "t" ~notion:`U
       { p with Model.cycles = p.Model.cycles +. 1.0 });
  (* a non-finite component bound *)
  assert_fires "mdl-finite"
    (Model_check.check_prediction skl "t" ~notion:`U
       { p with Model.values = (Model.Ports, Float.nan) :: p.Model.values });
  (* bottleneck list inconsistent with cycles: emptied despite a
     positive prediction *)
  assert_fires "mdl-bottleneck"
    (Model_check.check_prediction skl "t" ~notion:`U
       { p with Model.bottlenecks = [] });
  (* and a listed bottleneck whose bound does not equal cycles *)
  assert_fires "mdl-bottleneck"
    (Model_check.check_prediction skl "t" ~notion:`U
       { p with
         Model.values =
           List.map
             (fun (c, v) ->
               if List.mem c p.Model.bottlenecks then (c, v +. 1.0)
               else (c, v))
             p.Model.values;
         Model.cycles = p.Model.cycles +. 1.0;
         Model.bottlenecks = Model.all_components });
  (* notion/front-end-path contradiction *)
  assert_fires "mdl-notion"
    (Model_check.check_prediction skl "t" ~notion:`L
       { p with Model.fe_path = Model.FE_none })

(* ----- no false positives on generated blocks ----- *)

let gen_block =
  let open QCheck in
  let profile =
    Gen.oneofl Facile_bhive.Genblock.all_profiles
  in
  make
    ~print:(fun (seed, _, looped, len) ->
      Printf.sprintf "seed=%d looped=%b len=%d" seed looped len)
    Gen.(
      quad (int_bound 100000) profile bool (int_range 1 12)
      |> map (fun (seed, p, looped, len) -> (seed, p, looped, len)))

let prop_no_false_positive =
  QCheck.Test.make ~count:60 ~name:"checker accepts every Genblock block"
    gen_block (fun (seed, profile, looped, len) ->
      let rng = Facile_bhive.Prng.create (seed + 1) in
      let body =
        Facile_bhive.Genblock.body rng profile ~allow_fma:false ~len
      in
      let insts =
        if looped then Facile_bhive.Genblock.looped body else body
      in
      List.for_all
        (fun cfg ->
          Finding.errors (Model_check.check_block cfg "prop" insts) = [])
        Config.all)

let suite =
  [ ( "check",
      [ Alcotest.test_case "shipped tables clean" `Quick test_shipped_clean;
        Alcotest.test_case "family selection" `Quick test_family_selection;
        Alcotest.test_case "unknown family rejected" `Quick
          test_unknown_family;
        Alcotest.test_case "config mutations" `Quick test_cfg_mutations;
        Alcotest.test_case "table mutations" `Quick test_tbl_mutations;
        Alcotest.test_case "codec mutations" `Quick test_codec_mutations;
        Alcotest.test_case "model mutations" `Quick test_mdl_mutations;
        QCheck_alcotest.to_alcotest prop_no_false_positive ] ) ]
