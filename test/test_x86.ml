open Facile_x86

let hex s =
  String.concat " "
    (List.map (fun c -> Printf.sprintf "%02X" (Char.code c))
       (List.init (String.length s) (String.get s)))

let check_bytes name inst expected =
  Alcotest.test_case name `Quick (fun () ->
      let e = Encode.encode inst in
      Alcotest.(check string) name expected (hex e.Encode.bytes))

let parse s =
  match Asm.parse_inst s with
  | Ok i -> i
  | Error m -> Alcotest.failf "cannot parse %S: %s" s m

let check_asm name asm expected = check_bytes name (parse asm) expected

(* ------------------------------------------------------------------ *)

let golden_tests =
  [ check_asm "add rax, rbx" "add rax, rbx" "48 01 D8";
    check_asm "add eax, ebx" "add eax, ebx" "01 D8";
    check_asm "add al, bl" "add al, bl" "00 D8";
    check_asm "mov eax, 1" "mov eax, 1" "B8 01 00 00 00";
    check_asm "mov rax, big" "mov rax, 0x1122334455667788"
      "48 B8 88 77 66 55 44 33 22 11";
    check_asm "lea rax, [rbx+rcx*4+8]" "lea rax, [rbx+rcx*4+8]"
      "48 8D 44 8B 08";
    check_asm "nop" "nop" "90";
    check_asm "jmp -5" "jmp -5" "EB FB";
    check_asm "add ax, 0x1234 (LCP)" "add ax, 0x1234" "66 81 C0 34 12";
    check_asm "add rax, 1 (imm8 form)" "add rax, 1" "48 83 C0 01";
    check_asm "movaps xmm1, xmm2" "movaps xmm1, xmm2" "0F 28 CA";
    check_asm "addsd xmm0, xmm1" "addsd xmm0, xmm1" "F2 0F 58 C1";
    check_asm "vaddps ymm1, ymm2, ymm3" "vaddps ymm1, ymm2, ymm3"
      "C5 EC 58 CB";
    check_asm "vfmadd231ps xmm1, xmm2, xmm3" "vfmadd231ps xmm1, xmm2, xmm3"
      "C4 E2 69 B8 CB";
    check_asm "pmulld xmm1, xmm2" "pmulld xmm1, xmm2" "66 0F 38 40 CA";
    check_asm "push rax" "push rax" "50";
    check_asm "pop r12" "pop r12" "41 5C";
    check_asm "mov sil, 1 (forced REX)" "mov sil, 1" "40 B6 01";
    check_asm "cmp [rsp+4], 10" "cmp dword ptr [rsp+4], 10"
      "83 7C 24 04 0A";
    check_asm "imul rax, rbx, 1000" "imul rax, rbx, 1000"
      "48 69 C3 E8 03 00 00";
    check_asm "movzx eax, [rbp]" "movzx eax, byte ptr [rbp]" "0F B6 45 00";
    check_asm "div rcx" "div rcx" "48 F7 F1";
    check_asm "shl rdx, 3" "shl rdx, 3" "48 C1 E2 03";
    check_asm "sar ecx, cl" "sar ecx, cl" "D3 F9";
    check_asm "jne rel32" "jne -1000" "0F 85 18 FC FF FF";
    check_asm "jne rel8" "jne -12" "75 F4";
    check_asm "setg al" "setg al" "0F 9F C0";
    check_asm "cmovle r10d, r11d" "cmovle r10d, r11d" "45 0F 4E D3";
    check_asm "movsxd rdx, eax" "movsxd rdx, eax" "48 63 D0";
    check_asm "cqo" "cqo" "48 99";
    check_asm "popcnt r9, r10" "popcnt r9, r10" "F3 4D 0F B8 CA";
    check_asm "movd xmm3, edi" "movd xmm3, edi" "66 0F 6E DF";
    check_asm "movq xmm3, rdi" "movq xmm3, rdi" "66 48 0F 6E DF";
    check_asm "pshufd xmm1, xmm2, 0x1b" "pshufd xmm1, xmm2, 0x1b"
      "66 0F 70 CA 1B";
    check_asm "pslld xmm5, 7" "pslld xmm5, 7" "66 0F 72 F5 07";
    check_asm "mov [rax], ebx" "mov dword ptr [rax], ebx" "89 18";
    check_asm "mov r13, [r14+r15*8]" "mov r13, qword ptr [r14+r15*8]"
      "4F 8B 2C FE";
    check_asm "xchg rbx, rcx" "xchg rbx, rcx" "48 87 CB";
    check_asm "bswap r12" "bswap r12" "49 0F CC";
    check_asm "nopl [rax]" "nopl dword ptr [rax]" "0F 1F 00";
    (* extended subset *)
    check_asm "shld eax, ebx, 5" "shld eax, ebx, 5" "0F A4 D8 05";
    check_asm "bt rax, rbx" "bt rax, rbx" "48 0F A3 D8";
    check_asm "bts eax, 3" "bts eax, 3" "0F BA E8 03";
    check_asm "movbe eax, [rbx]" "movbe eax, dword ptr [rbx]" "0F 38 F0 03";
    check_asm "movbe [rbx], eax" "movbe dword ptr [rbx], eax" "0F 38 F1 03";
    check_asm "andn eax, ebx, ecx" "andn eax, ebx, ecx" "C4 E2 60 F2 C1";
    check_asm "shlx eax, ebx, ecx" "shlx eax, ebx, ecx" "C4 E2 71 F7 C3";
    check_asm "palignr xmm1, xmm2, 5" "palignr xmm1, xmm2, 5"
      "66 0F 3A 0F CA 05";
    check_asm "roundsd xmm1, xmm2, 1" "roundsd xmm1, xmm2, 1"
      "66 0F 3A 0B CA 01";
    check_asm "movdqa xmm1, xmm2" "movdqa xmm1, xmm2" "66 0F 6F CA";
    check_asm "movdqu xmm1, [rax]" "movdqu xmmword ptr [rax], xmm1"
      "F3 0F 7F 08";
    check_asm "cwde" "cwde" "98";
    check_asm "cdqe" "cdqe" "48 98";
    check_asm "clc" "clc" "F8";
    check_asm "pslldq xmm3, 4" "pslldq xmm3, 4" "66 0F 73 FB 04";
    check_asm "shufps xmm0, xmm1, 0x44" "shufps xmm0, xmm1, 0x44"
      "0F C6 C1 44";
    check_asm "haddps xmm0, xmm1" "haddps xmm0, xmm1" "F2 0F 7C C1";
    check_asm "pmaxsd xmm0, xmm1" "pmaxsd xmm0, xmm1" "66 0F 38 3D C1";
    check_asm "vpand ymm1, ymm2, ymm3" "vpand ymm1, ymm2, ymm3" "C5 ED DB CB";
    check_asm "vmovdqu ymm1, ymm2" "vmovdqu ymm1, ymm2" "C5 FE 6F CA" ]

(* ------------------------------------------------------------------ *)

let layout_tests =
  [ Alcotest.test_case "LCP flags" `Quick (fun () ->
        let lcp s = (Encode.encode (parse s)).Encode.has_lcp in
        Alcotest.(check bool) "add ax, imm16" true (lcp "add ax, 0x1234");
        Alcotest.(check bool) "mov bx, imm16" true (lcp "mov bx, 300");
        Alcotest.(check bool) "add ax, small imm8" false (lcp "add ax, 4");
        Alcotest.(check bool) "add eax, imm32" false (lcp "add eax, 0x1234");
        Alcotest.(check bool) "add ax, bx" false (lcp "add ax, bx");
        Alcotest.(check bool) "addpd (mandatory 66)" false
          (lcp "addpd xmm0, xmm1"));
    Alcotest.test_case "opcode offsets" `Quick (fun () ->
        let off s = (Encode.encode (parse s)).Encode.opcode_off in
        Alcotest.(check int) "add eax, ebx" 0 (off "add eax, ebx");
        Alcotest.(check int) "add rax, rbx (REX)" 1 (off "add rax, rbx");
        Alcotest.(check int) "add ax, bx (66)" 1 (off "add ax, bx");
        Alcotest.(check int) "popcnt r9, r10 (F3+REX)" 2
          (off "popcnt r9, r10");
        Alcotest.(check int) "addsd (F2)" 1 (off "addsd xmm0, xmm1");
        Alcotest.(check int) "vaddps (VEX)" 0 (off "vaddps ymm1, ymm2, ymm3")) ]

(* ------------------------------------------------------------------ *)
(* Round-trip: decode (encode i) = i for a large generated sample.     *)

let roundtrip_profile profile =
  Alcotest.test_case
    (Printf.sprintf "roundtrip %s" (Facile_bhive.Genblock.profile_name profile))
    `Quick
    (fun () ->
      let rng = Facile_bhive.Prng.create 42 in
      for _k = 1 to 1500 do
        let inst = Facile_bhive.Genblock.random_inst rng profile ~allow_fma:true in
        let e = Encode.encode inst in
        let len = String.length e.Encode.bytes in
        if len < 1 || len > 15 then
          Alcotest.failf "bad length %d for %s" len (Inst.to_string inst);
        let decoded, dlen = Decode.decode_one e.Encode.bytes ~pos:0 in
        if dlen <> len then
          Alcotest.failf "length mismatch for %s: %d vs %d"
            (Inst.to_string inst) dlen len;
        if not (Inst.equal decoded inst) then
          Alcotest.failf "roundtrip: %s became %s (bytes %s)"
            (Inst.to_string inst) (Inst.to_string decoded)
            (hex e.Encode.bytes)
      done)

let roundtrip_tests = List.map roundtrip_profile Facile_bhive.Genblock.all_profiles

let block_roundtrip =
  Alcotest.test_case "block decode = encode layouts" `Quick (fun () ->
      let cases =
        Facile_bhive.Suite.corpus ~seed:7 ~size:100 ()
      in
      List.iter
        (fun (c : Facile_bhive.Suite.case) ->
          let bytes, layouts = Encode.encode_block c.Facile_bhive.Suite.loop in
          let layouts' = Decode.decode_block bytes in
          Alcotest.(check int)
            "layout count"
            (List.length layouts) (List.length layouts');
          List.iter2
            (fun (a : Encode.layout) (b : Encode.layout) ->
              assert (Inst.equal a.Encode.inst b.Encode.inst);
              assert (a.Encode.off = b.Encode.off);
              assert (a.Encode.len = b.Encode.len);
              assert (a.Encode.nominal_opcode_off = b.Encode.nominal_opcode_off);
              assert (a.Encode.lcp = b.Encode.lcp))
            layouts layouts')
        cases)

(* ------------------------------------------------------------------ *)
(* Assembly printer/parser round-trip.                                 *)

let asm_roundtrip =
  Alcotest.test_case "asm print/parse roundtrip" `Quick (fun () ->
      let rng = Facile_bhive.Prng.create 99 in
      List.iter
        (fun profile ->
          for _k = 1 to 400 do
            let inst =
              Facile_bhive.Genblock.random_inst rng profile ~allow_fma:true
            in
            let printed = Asm.print_inst inst in
            match Asm.parse_inst printed with
            | Ok inst' ->
              if not (Inst.equal inst inst') then
                Alcotest.failf "asm roundtrip: %S reparsed as %S" printed
                  (Asm.print_inst inst')
            | Error m -> Alcotest.failf "cannot reparse %S: %s" printed m
          done)
        Facile_bhive.Genblock.all_profiles)

let register_names =
  Alcotest.test_case "register names" `Quick (fun () ->
      let check s r =
        Alcotest.(check string) s s (Register.name r);
        match Register.of_name s with
        | Some r' -> assert (Register.equal r r')
        | None -> Alcotest.failf "cannot parse register %s" s
      in
      check "rax" (Register.Gpr (Register.W64, Register.RAX));
      check "eax" (Register.Gpr (Register.W32, Register.RAX));
      check "ax" (Register.Gpr (Register.W16, Register.RAX));
      check "al" (Register.Gpr (Register.W8, Register.RAX));
      check "sil" (Register.Gpr (Register.W8, Register.RSI));
      check "r8b" (Register.Gpr (Register.W8, Register.R8));
      check "r10d" (Register.Gpr (Register.W32, Register.R10));
      check "r15" (Register.Gpr (Register.W64, Register.R15));
      check "xmm13" (Register.Xmm 13);
      check "ymm2" (Register.Ymm 2))

let semantics_tests =
  [ Alcotest.test_case "reads/writes" `Quick (fun () ->
        let r = parse "add rax, rbx" in
        let reads = Semantics.reads r and writes = Semantics.writes r in
        let reg name =
          Semantics.Reg (Option.get (Register.of_name name))
        in
        assert (List.mem (reg "rax") reads);
        assert (List.mem (reg "rbx") reads);
        assert (List.mem (reg "rax") writes);
        assert (List.mem Semantics.Flags writes);
        let c = parse "cmovne rcx, rdx" in
        assert (List.mem Semantics.Flags (Semantics.reads c));
        assert (List.mem (reg "rcx") (Semantics.reads c));
        let l = parse "mov rax, qword ptr [rbx+rcx*2]" in
        assert (List.mem (reg "rbx") (Semantics.reads l));
        assert (List.mem (reg "rcx") (Semantics.reads l));
        assert (not (List.mem (reg "rax") (Semantics.reads l)));
        let div = parse "div rcx" in
        assert (List.mem (reg "rax") (Semantics.reads div));
        assert (List.mem (reg "rdx") (Semantics.writes div));
        (* partial registers normalize to full width *)
        let p = parse "add al, bl" in
        assert (List.mem (reg "rax") (Semantics.writes p))) ]

(* Decoder robustness: arbitrary bytes either decode (within bounds) or
   raise Decode_error — never any other exception, never a length beyond
   the input. *)
let decoder_fuzz =
  Alcotest.test_case "decoder never crashes on random bytes" `Quick (fun () ->
      let rng = Facile_bhive.Prng.create 1234 in
      for _ = 1 to 20000 do
        let len = 1 + Facile_bhive.Prng.int rng 18 in
        let bytes =
          String.init len (fun _ -> Char.chr (Facile_bhive.Prng.int rng 256))
        in
        match Decode.decode_one bytes ~pos:0 with
        | _, dlen ->
          if dlen < 1 || dlen > String.length bytes then
            Alcotest.failf "bad decode length %d of %d" dlen
              (String.length bytes)
        | exception Decode.Decode_error _ -> ()
      done)

(* Mutating one byte of a valid encoding must not break the decoder. *)
let decoder_mutation =
  Alcotest.test_case "single-byte mutations are handled" `Quick (fun () ->
      let rng = Facile_bhive.Prng.create 77 in
      for _ = 1 to 2000 do
        let inst =
          Facile_bhive.Genblock.random_inst rng Facile_bhive.Genblock.Mixed
            ~allow_fma:true
        in
        let e = Encode.encode inst in
        let pos = Facile_bhive.Prng.int rng (String.length e.Encode.bytes) in
        let mutated =
          String.mapi
            (fun i c ->
              if i = pos then Char.chr (Facile_bhive.Prng.int rng 256) else c)
            e.Encode.bytes
        in
        match Decode.decode_one mutated ~pos:0 with
        | _ -> ()
        | exception Decode.Decode_error _ -> ()
      done)

(* qcheck variants of the robustness property: fully arbitrary strings
   (not just short random byte runs) through the block-level entry
   points — the only acceptable exception is Decode_error. *)
let qcheck_decode_no_crash =
  QCheck.Test.make ~count:2000
    ~name:"decode_block/instructions raise only Decode_error"
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun bytes ->
      let probe f =
        match f bytes with
        | _ -> true
        | exception Decode.Decode_error (_, off) ->
          (* the reported offset points into (or just past) the input *)
          off >= 0 && off <= String.length bytes
        | exception _ -> false
      in
      probe Decode.decode_block && probe Decode.instructions)

(* Hex.decode on arbitrary text: either a clean byte string that
   re-encodes to the digits we fed in, or a typed Bad_hex error whose
   position indexes the first offending character of the original
   input. *)
let qcheck_hex_roundtrip =
  QCheck.Test.make ~count:2000
    ~name:"Hex.decode round-trips or errors at the right position"
    QCheck.(string_of_size Gen.(0 -- 40))
    (fun s ->
      let is_space c = c = ' ' || c = '\n' || c = '\t' || c = '\r' in
      let is_digit c =
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
        || (c >= 'A' && c <= 'F')
      in
      match Hex.decode s with
      | Ok bytes ->
        let digits =
          String.to_seq s
          |> Seq.filter (fun c -> not (is_space c))
          |> String.of_seq
        in
        String.length bytes * 2 = String.length digits
        && String.lowercase_ascii
             (String.concat ""
                (List.init (String.length bytes) (fun i ->
                     Printf.sprintf "%02x" (Char.code bytes.[i]))))
           = String.lowercase_ascii digits
      | Error e ->
        e.Err.kind = Err.Bad_hex
        && (match e.Err.pos with
            | Some p ->
              (* first non-space non-digit character of the input *)
              p >= 0 && p < String.length s
              && (not (is_digit s.[p]))
              && not (is_space s.[p])
            | None ->
              (* only the odd-digit-count failure carries no position *)
              String.for_all (fun c -> is_digit c || is_space c) s))

let asm_errors =
  Alcotest.test_case "asm parser rejects garbage gracefully" `Quick (fun () ->
      let bad s =
        match Asm.parse_inst s with
        | Ok i -> Alcotest.failf "%S parsed as %s" s (Inst.to_string i)
        | Error _ -> ()
      in
      bad "frobnicate rax, rbx";
      bad "add rax, [rsp+";
      bad "add xyz, rbx";
      bad "lea rax, rbx";         (* LEA needs a memory operand *)
      bad "add rax, [rsp+rsp*2]"; (* RSP cannot be an index *)
      bad "";
      (* and accepts synonyms and formatting variants *)
      let ok s =
        match Asm.parse_inst s with
        | Ok i -> i
        | Error m -> Alcotest.failf "%S rejected: %s" s m
      in
      assert (Inst.equal (ok "jz -5") (ok "je -5"));
      assert (Inst.equal (ok "jnz -5") (ok "jne -5"));
      assert (Inst.equal (ok "cmova rax, rbx") (ok "cmovnbe rax, rbx"));
      assert (Inst.equal
                (ok "mov rax, [rbx]")  (* width inferred from rax *)
                (ok "mov rax, qword ptr [rbx]"));
      assert (Inst.equal (ok "add rax , rbx") (ok "add rax, rbx"));
      (* block-level comments and separators *)
      match Asm.parse_block "add rax, rbx # comment\n\n; \nsub rcx, rdx" with
      | Ok l -> Alcotest.(check int) "two instructions" 2 (List.length l)
      | Error m -> Alcotest.failf "block rejected: %s" m)

let suite =
  [ "x86.golden", golden_tests;
    "x86.robustness",
    [ decoder_fuzz; decoder_mutation;
      QCheck_alcotest.to_alcotest qcheck_decode_no_crash;
      QCheck_alcotest.to_alcotest qcheck_hex_roundtrip; asm_errors ];
    "x86.layout", layout_tests;
    "x86.roundtrip", block_roundtrip :: roundtrip_tests;
    "x86.asm", [ asm_roundtrip; register_names ];
    "x86.semantics", semantics_tests ]
