test/test_db.ml: Alcotest Asm Config Db Facile_bhive Facile_db Facile_uarch Facile_x86 Inst List Port
