test/test_core.ml: Alcotest Asm Block Config Dec Dsb Facile_bhive Facile_core Facile_uarch Facile_x86 Float Inst Issue List Lsd Model Ports Precedence Predec Region String
