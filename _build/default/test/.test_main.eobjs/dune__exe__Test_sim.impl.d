test/test_sim.ml: Alcotest Asm Block Config Facile_bhive Facile_core Facile_sim Facile_stats Facile_uarch Facile_x86 Float Inst List Model Operand Printf String
