test/test_graph.ml: Alcotest Cycle_ratio Digraph Facile_graph Gen List QCheck QCheck_alcotest
