test/test_baselines.ml: Alcotest Array Asm Block Config Facile_baselines Facile_bhive Facile_core Facile_sim Facile_stats Facile_uarch Facile_x86 List Model Printf String
