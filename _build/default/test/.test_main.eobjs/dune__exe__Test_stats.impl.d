test/test_stats.ml: Alcotest Array Descriptive Error_metrics Facile_baselines Facile_bhive Facile_report Facile_stats Float Kendall List QCheck QCheck_alcotest String
