test/test_main.ml: Alcotest Test_baselines Test_core Test_db Test_graph Test_sim Test_stats Test_x86
