test/test_x86.ml: Alcotest Asm Char Decode Encode Facile_bhive Facile_x86 Inst List Option Printf Register Semantics String
