open Facile_x86
open Facile_uarch
open Facile_core
module Sim = Facile_sim.Sim

let parse_block s =
  match Asm.parse_block s with
  | Ok l -> l
  | Error m -> Alcotest.failf "parse error: %s" m

let skl = Config.by_arch Config.SKL
let hsw = Config.by_arch Config.HSW
let checkf = Alcotest.(check (float 1e-6))

let block cfg s = Block.of_instructions cfg (parse_block s)

let run ?(fidelity = Sim.Hardware) cfg mode s =
  let insts = parse_block s in
  let insts =
    match mode with
    | `Loop -> Facile_bhive.Genblock.looped insts
    | `Unrolled -> insts
  in
  Sim.cycles_per_iteration ~fidelity ~mode (Block.of_instructions cfg insts)

let known_tests =
  [ Alcotest.test_case "dependency chains" `Quick (fun () ->
        checkf "imul chain" 3.0 (run skl `Loop "imul rax, rbx");
        checkf "two-add chain" 2.0 (run skl `Loop "add rax, rbx\nadd rax, rcx");
        checkf "pointer chase"
          (float_of_int skl.Config.load_latency)
          (run skl `Loop "mov rax, qword ptr [rax]"));
    Alcotest.test_case "independent throughput" `Quick (fun () ->
        (* 4 independent adds on a 4-wide machine: 1 cycle/iter via DSB *)
        checkf "adds via DSB" 1.0
          (run skl `Loop "add rax, rbx\nadd rcx, rdx\nadd rsi, rdi\nadd r8, r9"));
    Alcotest.test_case "port serialization" `Quick (fun () ->
        (* 3 p5-only shuffles: 3 cycles regardless of fidelity *)
        let s = "pshufd xmm0, xmm1, 0\npshufd xmm2, xmm3, 0\npshufd xmm4, xmm5, 0" in
        checkf "hardware" 3.0 (run ~fidelity:Sim.Hardware skl `Loop s);
        checkf "model" 3.0 (run ~fidelity:Sim.Model skl `Loop s));
    Alcotest.test_case "divider occupancy" `Quick (fun () ->
        (* SKL divss occupancy 3: three independent divisions take about
           3 cycles each in steady state, not 1 *)
        let v =
          run skl `Loop "divss xmm0, xmm1\ndivss xmm2, xmm3\ndivss xmm4, xmm5"
        in
        Alcotest.(check bool) "divider is busy" true (v >= 8.0));
    Alcotest.test_case "predecode-bound unrolled" `Quick (fun () ->
        (* 4x3-byte adds: Predec = 1.25 and the sim agrees *)
        checkf "12-byte block" 1.25
          (run skl `Unrolled "add rax, rbx\nadd rcx, rdx\nadd rsi, rdi\nadd r8, r9"));
    Alcotest.test_case "LSD bubble" `Quick (fun () ->
        (* HSW, 5 adds + a branch that macro-fuses with the fifth:
           5 fused uops, LSD unrolls 4x -> ceil(20/4)/4 = 1.25 *)
        let v =
          run hsw `Loop
            "add rax, 1\nadd rbx, 1\nadd rcx, 1\nadd rdx, 1\nadd rsi, 1"
        in
        checkf "lsd unroll" 1.25 v);
    Alcotest.test_case "DSB 32-byte window quantization" `Quick (fun () ->
        (* 10 adds + fused jcc: 32-byte body spans two DSB windows, one
           window per cycle -> 3 cycles/iter even though 11 fused µops
           would fit in 2 issue groups of 6 *)
        let body =
          String.concat "\n" (List.init 10 (fun i ->
              Printf.sprintf "add r%d, 1" (8 + (i mod 7))))
        in
        let v = run skl `Loop body in
        Alcotest.(check bool)
          (Printf.sprintf "window-limited (%.2f)" v)
          true (v >= 2.9));
    Alcotest.test_case "microcoded decode stalls the unrolled path" `Quick
      (fun () ->
        (* a 32-bit division is MSROM: decode alone costs
           ceil(10/4) = 3 cycles per iteration *)
        let v = run skl `Unrolled "div ecx\nadd rax, rbx" in
        Alcotest.(check bool)
          (Printf.sprintf "decode-bound (%.2f)" v)
          true (v >= 3.0));
    Alcotest.test_case "macro fusion saves issue slots in the sim" `Quick
      (fun () ->
        (* 4 independent (cmp+jcc won't fuse on SNB for add) — compare
           SKL (fusion) against a no-fusion config of the same machine *)
        let insts =
          parse_block "add rax, 1\nadd rbx, 1\nadd rcx, 1\ncmp rdx, rsi"
          @ [ Inst.make (Inst.Jcc Inst.NE) [ Operand.imm (-14) ] ]
        in
        let fused = Block.of_instructions skl insts in
        let nofuse =
          Block.of_instructions { skl with Config.macro_fusion = false } insts
        in
        let t_fused = Sim.cycles_per_iteration ~mode:`Loop fused in
        let t_nofuse = Sim.cycles_per_iteration ~mode:`Loop nofuse in
        Alcotest.(check bool)
          (Printf.sprintf "fused %.2f <= unfused %.2f" t_fused t_nofuse)
          true (t_fused <= t_nofuse);
        Alcotest.(check int) "4 fused uops" 4 (Block.fused_uops fused);
        Alcotest.(check int) "5 unfused uops" 5 (Block.fused_uops nofuse));
    Alcotest.test_case "JCC erratum slows SKL loops" `Quick (fun () ->
        (* a loop whose branch crosses a 32-byte boundary must go through
           the legacy decoders on SKL *)
        let body =
          "add rax, 0x12345\nadd rbx, 0x12345\nadd rcx, 0x12345\nadd rdx, 0x12345\nadd rsi, rdi\nadd r8, r9"
        in
        let insts = Facile_bhive.Genblock.looped (parse_block body) in
        let b_skl = Block.of_instructions skl insts in
        Alcotest.(check bool) "affected" true (Block.jcc_erratum_affected b_skl);
        let skl_t = Sim.cycles_per_iteration ~mode:`Loop b_skl in
        let rkl_t =
          Sim.cycles_per_iteration ~mode:`Loop
            (Block.of_instructions (Config.by_arch Config.RKL) insts)
        in
        Alcotest.(check bool)
          (Printf.sprintf "SKL (%.2f) slower than RKL (%.2f)" skl_t rkl_t)
          true (skl_t > rkl_t)) ]

(* Facile is optimistic w.r.t. the hardware-fidelity simulator (§6.2):
   predictions never exceed measurements beyond a 1% + 0.05-cycle
   transient tolerance. *)
let optimism =
  Alcotest.test_case "facile is optimistic vs simulator" `Slow (fun () ->
      let cases = Facile_bhive.Suite.corpus ~seed:41 ~size:120 () in
      List.iter
        (fun (cfg : Config.t) ->
          List.iter
            (fun (c : Facile_bhive.Suite.case) ->
              List.iter
                (fun mode ->
                  let insts =
                    match mode with
                    | `Loop -> c.Facile_bhive.Suite.loop
                    | `Unrolled -> c.Facile_bhive.Suite.body
                  in
                  let b = Block.of_instructions cfg insts in
                  let p =
                    (match mode with
                     | `Loop -> Model.predict_l b
                     | `Unrolled -> Model.predict_u b)
                      .Model.cycles
                  in
                  let hw = Sim.cycles_per_iteration ~mode b in
                  if p > (hw *. 1.01) +. 0.05 then
                    Alcotest.failf
                      "case %d on %s (%s): facile %.3f > sim %.3f"
                      c.Facile_bhive.Suite.id cfg.Config.abbrev
                      (match mode with `Loop -> "L" | _ -> "U")
                      p hw)
                [ `Unrolled; `Loop ])
            cases)
        [ skl; hsw; Config.by_arch Config.SNB; Config.by_arch Config.RKL ])

let fidelity_agreement =
  Alcotest.test_case "model fidelity close to hardware fidelity" `Slow
    (fun () ->
      let cases = Facile_bhive.Suite.corpus ~seed:43 ~size:100 () in
      let errs =
        List.concat_map
          (fun (c : Facile_bhive.Suite.case) ->
            List.map
              (fun mode ->
                let insts =
                  match mode with
                  | `Loop -> c.Facile_bhive.Suite.loop
                  | `Unrolled -> c.Facile_bhive.Suite.body
                in
                let b = Block.of_instructions skl insts in
                let hw = Sim.cycles_per_iteration ~fidelity:Sim.Hardware ~mode b in
                let md = Sim.cycles_per_iteration ~fidelity:Sim.Model ~mode b in
                abs_float ((hw -. md) /. Float.max hw 1e-9))
              [ `Unrolled; `Loop ])
          cases
      in
      let mape = Facile_stats.Descriptive.mean errs in
      if mape > 0.05 then
        Alcotest.failf "uiCA-like diverges from oracle: MAPE %.2f%%"
          (100.0 *. mape))

let determinism =
  Alcotest.test_case "simulation is deterministic" `Quick (fun () ->
      let cases = Facile_bhive.Suite.corpus ~seed:47 ~size:20 () in
      List.iter
        (fun (c : Facile_bhive.Suite.case) ->
          let b = Block.of_instructions skl c.Facile_bhive.Suite.loop in
          let a = Sim.measure b and b' = Sim.measure b in
          assert (a = b'))
        cases)

let warmup_independence =
  Alcotest.test_case "longer measurement window agrees" `Slow (fun () ->
      let cases = Facile_bhive.Suite.corpus ~seed:53 ~size:30 () in
      List.iter
        (fun (c : Facile_bhive.Suite.case) ->
          let b = Block.of_instructions skl c.Facile_bhive.Suite.loop in
          let short = Sim.cycles_per_iteration ~mode:`Loop b in
          let long =
            Sim.cycles_per_iteration ~warmup:32 ~measure:96 ~mode:`Loop b
          in
          if abs_float (short -. long) > 0.05 *. Float.max short 1.0 then
            Alcotest.failf "case %d: unstable measurement %.3f vs %.3f"
              c.Facile_bhive.Suite.id short long)
        cases)

let suite =
  [ "sim.known", known_tests;
    "sim.properties",
    [ optimism; fidelity_agreement; determinism; warmup_independence ] ]
