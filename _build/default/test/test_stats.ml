open Facile_stats

let checkf = Alcotest.(check (float 1e-9))

let kendall_tests =
  [ Alcotest.test_case "perfect correlation" `Quick (fun () ->
        let pairs = [ (1., 2.); (2., 4.); (3., 6.); (4., 8.) ] in
        checkf "tau=1" 1.0 (Kendall.tau_b pairs);
        checkf "naive" 1.0 (Kendall.tau_b_naive pairs));
    Alcotest.test_case "perfect anticorrelation" `Quick (fun () ->
        let pairs = [ (1., 8.); (2., 6.); (3., 4.); (4., 2.) ] in
        checkf "tau=-1" (-1.0) (Kendall.tau_b pairs));
    Alcotest.test_case "known mixed value" `Quick (fun () ->
        (* x = 1..4, y = (1,3,2,4): one discordant pair out of six *)
        let pairs = [ (1., 1.); (2., 3.); (3., 2.); (4., 4.) ] in
        checkf "tau = 4/6" (4.0 /. 6.0) (Kendall.tau_b pairs);
        checkf "naive agrees" (4.0 /. 6.0) (Kendall.tau_b_naive pairs));
    Alcotest.test_case "ties" `Quick (fun () ->
        let pairs = [ (1., 1.); (1., 2.); (2., 3.); (2., 4.); (3., 5.) ] in
        Alcotest.(check (float 1e-9))
          "tau-b with x ties"
          (Kendall.tau_b_naive pairs) (Kendall.tau_b pairs));
    Alcotest.test_case "constant input is nan" `Quick (fun () ->
        assert (Float.is_nan (Kendall.tau_b [ (1., 1.); (1., 2.) ])));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"fast = naive on random data" ~count:300
         QCheck.(
           list_of_size
             (QCheck.Gen.int_range 2 40)
             (pair (int_range 0 10) (int_range 0 10)))
         (fun l ->
           let pairs =
             List.map (fun (a, b) -> (float_of_int a, float_of_int b)) l
           in
           if List.length pairs < 2 then true
           else begin
             let fast = Kendall.tau_b pairs in
             let naive = Kendall.tau_b_naive pairs in
             (Float.is_nan fast && Float.is_nan naive)
             || abs_float (fast -. naive) < 1e-9
           end)) ]

let metric_tests =
  [ Alcotest.test_case "MAPE" `Quick (fun () ->
        checkf "exact" 0.0 (Error_metrics.mape [ (2.0, 2.0); (4.0, 4.0) ]);
        checkf "10%" 0.1 (Error_metrics.mape [ (10.0, 9.0); (10.0, 11.0) ]);
        (* zero measurements are skipped *)
        checkf "skip zeros" 0.1
          (Error_metrics.mape [ (0.0, 5.0); (10.0, 9.0) ]));
    Alcotest.test_case "round2" `Quick (fun () ->
        checkf "1.234 -> 1.23" 1.23 (Error_metrics.round2 1.234);
        checkf "1.235 -> 1.24" 1.24 (Error_metrics.round2 1.2351);
        checkf "negative" (-1.23) (Error_metrics.round2 (-1.2349)));
    Alcotest.test_case "within" `Quick (fun () ->
        checkf "half within 5%" 0.5
          (Error_metrics.within ~tol:0.05 [ (10., 10.2); (10., 12.) ])) ]

let descriptive_tests =
  [ Alcotest.test_case "mean/stddev/minmax" `Quick (fun () ->
        checkf "mean" 2.0 (Descriptive.mean [ 1.; 2.; 3. ]);
        checkf "min" 1.0 (Descriptive.minimum [ 3.; 1.; 2. ]);
        checkf "max" 3.0 (Descriptive.maximum [ 3.; 1.; 2. ]);
        checkf "stddev of constant" 0.0 (Descriptive.stddev [ 5.; 5.; 5. ]);
        checkf "geomean" 2.0 (Descriptive.geomean [ 1.; 2.; 4. ]));
    Alcotest.test_case "percentiles" `Quick (fun () ->
        let l = [ 1.; 2.; 3.; 4.; 5. ] in
        checkf "median" 3.0 (Descriptive.median l);
        checkf "p0" 1.0 (Descriptive.percentile 0.0 l);
        checkf "p100" 5.0 (Descriptive.percentile 100.0 l);
        checkf "p25" 2.0 (Descriptive.percentile 25.0 l);
        checkf "interpolated" 3.5 (Descriptive.percentile 62.5 l));
    Alcotest.test_case "histogram" `Quick (fun () ->
        let h = Descriptive.histogram ~buckets:2 [ 0.; 1.; 2.; 3. ] in
        Alcotest.(check int) "bucket count" 2 (List.length h);
        let total = List.fold_left (fun a (_, _, c) -> a + c) 0 h in
        Alcotest.(check int) "all points" 4 total) ]

let linalg_tests =
  [ Alcotest.test_case "solve 2x2" `Quick (fun () ->
        let x =
          Facile_baselines.Linalg.solve
            [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] [| 5.0; 10.0 |]
        in
        Alcotest.(check (float 1e-9)) "x0" 1.0 x.(0);
        Alcotest.(check (float 1e-9)) "x1" 3.0 x.(1));
    Alcotest.test_case "singular raises" `Quick (fun () ->
        match
          Facile_baselines.Linalg.solve
            [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] [| 1.0; 2.0 |]
        with
        | _ -> Alcotest.fail "expected failure"
        | exception Failure _ -> ());
    Alcotest.test_case "ridge recovers a linear map" `Quick (fun () ->
        (* y = 3*x1 - 2*x2 + 1 *)
        let rng = Facile_bhive.Prng.create 9 in
        let xs =
          List.init 50 (fun _ ->
              [| 1.0;
                 float_of_int (Facile_bhive.Prng.range rng 0 20);
                 float_of_int (Facile_bhive.Prng.range rng 0 20) |])
        in
        let ys = List.map (fun x -> 1.0 +. (3.0 *. x.(1)) -. (2.0 *. x.(2))) xs in
        let w = Facile_baselines.Linalg.ridge_fit ~lambda:1e-6 xs ys in
        Alcotest.(check (float 1e-3)) "intercept" 1.0 w.(0);
        Alcotest.(check (float 1e-3)) "w1" 3.0 w.(1);
        Alcotest.(check (float 1e-3)) "w2" (-2.0) w.(2)) ]

let report_tests =
  [ Alcotest.test_case "table rendering" `Quick (fun () ->
        let s =
          Facile_report.Table.render ~header:[ "a"; "bb" ]
            [ [ "x"; "1" ]; [ "yyy"; "22" ] ]
        in
        let lines = String.split_on_char '\n' s in
        Alcotest.(check int) "4 lines" 4 (List.length lines);
        (* all lines equally wide *)
        (match lines with
         | first :: rest ->
           List.iter
             (fun l ->
               Alcotest.(check int) "aligned" (String.length first)
                 (String.length l))
             rest
         | [] -> assert false));
    Alcotest.test_case "format helpers" `Quick (fun () ->
        Alcotest.(check string) "pct" "1.23%" (Facile_report.Table.pct 0.0123);
        Alcotest.(check string) "f2" "3.14" (Facile_report.Table.f2 3.14159);
        Alcotest.(check string) "f4" "0.9877" (Facile_report.Table.f4 0.98765));
    Alcotest.test_case "heatmap rendering" `Quick (fun () ->
        let s =
          Facile_report.Heatmap.render ~max_value:10.0 ~bins:10
            [ (1.0, 1.0); (5.0, 5.0); (9.0, 2.0) ]
        in
        Alcotest.(check bool) "mentions points" true
          (String.length s > 100);
        (* out-of-range points are dropped *)
        let s2 =
          Facile_report.Heatmap.render ~max_value:10.0 ~bins:10
            [ (100.0, 1.0) ]
        in
        Alcotest.(check bool) "0 points shown" true
          (String.length s2 > 0));
    Alcotest.test_case "sankey rendering" `Quick (fun () ->
        let s =
          Facile_report.Sankey.render ~from_label:"A" ~to_label:"B"
            [ ("Ports", "Predec", 10); ("Ports", "Ports", 5);
              ("Dec", "Dec", 3) ]
        in
        Alcotest.(check bool) "has flows" true
          (String.length s > 50
           && String.length s < 5000)) ]

let suite =
  [ "stats.kendall", kendall_tests;
    "stats.metrics", metric_tests;
    "stats.descriptive", descriptive_tests;
    "stats.linalg", linalg_tests;
    "stats.report", report_tests ]
