open Facile_x86
open Facile_uarch
open Facile_core
module Baselines = Facile_baselines.Baselines
module Sim = Facile_sim.Sim

let skl = Config.by_arch Config.SKL

let parse_block s =
  match Asm.parse_block s with
  | Ok l -> l
  | Error m -> Alcotest.failf "parse error: %s" m

let block cfg s = Block.of_instructions cfg (parse_block s)

let behaviour_tests =
  [ Alcotest.test_case "llvm-mca-like ignores the front end" `Quick (fun () ->
        (* an LCP-heavy block is predecoder-bound; the back-end-only
           model cannot see that *)
        let b = block skl "add ax, 0x1234\nmov bx, 300\nadd cx, 0x7fff" in
        let facile = (Model.predict_u b).Model.cycles in
        let mca = Baselines.llvm_mca_like b in
        Alcotest.(check bool)
          (Printf.sprintf "facile %.2f > mca %.2f" facile mca)
          true (facile > mca *. 1.5));
    Alcotest.test_case "llvm-mca-like ignores macro fusion" `Quick (fun () ->
        (* cmp+jcc fuses into one µop; without fusion the issue bound is
           higher (9 cmps + fused jcc = 9 fused µops vs 10 unfused) *)
        let body =
          String.concat "\n"
            (List.concat
               (List.init 9 (fun _ -> [ "cmp rax, rbx" ])))
        in
        let insts = Facile_bhive.Genblock.looped (parse_block body) in
        let b = Block.of_instructions skl insts in
        let facile = (Model.predict_l b).Model.cycles in
        let mca = Baselines.llvm_mca_like b in
        Alcotest.(check bool) "fusion-blind is slower" true (mca > facile));
    Alcotest.test_case "osaca-like spreads uops uniformly" `Quick (fun () ->
        (* one p5-only shuffle + three p0156 adds: optimal assignment
           gives 1.0; uniform spreading under-loads p5 *)
        let b =
          block skl "pshufd xmm0, xmm1, 0\nadd rax, rbx\nadd rcx, rdx\nadd rsi, rdi"
        in
        let osaca = Baselines.osaca_like b in
        (* p5 receives 1 + 3/4 = 1.75 fractional µops *)
        Alcotest.(check (float 1e-6)) "uniform spread" 1.75 osaca);
    Alcotest.test_case "iaca-like misses multi-instruction chains" `Quick
      (fun () ->
        (* a two-instruction dependence cycle through imul+mov: cycle
           latency 3, but no single RMW instruction shows it *)
        let b = block skl "imul rax, rbx, 9\nmov rbx, rax" in
        let facile = (Model.predict_u b).Model.cycles in
        let iaca = Baselines.iaca_like b in
        Alcotest.(check bool)
          (Printf.sprintf "facile %.2f > iaca %.2f" facile iaca)
          true (facile > iaca));
    Alcotest.test_case "all baselines positive on corpus" `Quick (fun () ->
        let cases = Facile_bhive.Suite.corpus ~seed:61 ~size:60 () in
        List.iter
          (fun (c : Facile_bhive.Suite.case) ->
            let b = Block.of_instructions skl c.Facile_bhive.Suite.loop in
            List.iter
              (fun (name, f) ->
                let v = f b in
                if not (v > 0.0 && v < 1e6) then
                  Alcotest.failf "%s returned %f on case %d" name v
                    c.Facile_bhive.Suite.id)
              [ "llvm-mca-like", Baselines.llvm_mca_like;
                "osaca-like", Baselines.osaca_like;
                "iaca-like", Baselines.iaca_like ])
          cases) ]

let learned_tests =
  [ Alcotest.test_case "learned model trains and generalizes" `Slow (fun () ->
        let train_corpus = Facile_bhive.Suite.corpus ~seed:71 ~size:200 () in
        let test_corpus = Facile_bhive.Suite.corpus ~seed:72 ~size:60 () in
        let labelled corpus =
          List.map
            (fun (c : Facile_bhive.Suite.case) ->
              let b = Block.of_instructions skl c.Facile_bhive.Suite.body in
              (b, Sim.measure b))
            corpus
        in
        let model = Baselines.train (labelled train_corpus) in
        let test = labelled test_corpus in
        let mape =
          Facile_stats.Error_metrics.mape
            (List.map
               (fun (b, m) -> (m, Baselines.predict_learned model b))
               test)
        in
        (* a linear model should beat a constant predictor by far but
           stay well behind Facile *)
        if mape > 0.60 then
          Alcotest.failf "learned model too weak: MAPE %.1f%%" (100. *. mape);
        let facile_mape =
          Facile_stats.Error_metrics.mape
            (List.map
               (fun (b, m) -> (m, (Model.predict_u b).Model.cycles))
               test)
        in
        if facile_mape > mape then
          Alcotest.failf "facile (%.1f%%) should beat learned (%.1f%%)"
            (100. *. facile_mape) (100. *. mape));
    Alcotest.test_case "featurize is stable" `Quick (fun () ->
        let b = block skl "add rax, rbx\nmulsd xmm0, xmm1" in
        let f1 = Baselines.featurize b and f2 = Baselines.featurize b in
        Alcotest.(check bool) "deterministic" true (f1 = f2);
        Alcotest.(check bool) "has features" true (Array.length f1 > 10)) ]

let ranking =
  Alcotest.test_case "accuracy ordering: facile < baselines" `Slow (fun () ->
      (* the headline of Table 2: Facile (and the uiCA-like simulator)
         are an order of magnitude more accurate than the rest *)
      let cases = Facile_bhive.Suite.corpus ~seed:81 ~size:100 () in
      let samples =
        List.map
          (fun (c : Facile_bhive.Suite.case) ->
            let b = Block.of_instructions skl c.Facile_bhive.Suite.loop in
            (b, Sim.measure b))
          cases
      in
      let mape f =
        Facile_stats.Error_metrics.mape
          (List.map (fun (b, m) -> (m, f b)) samples)
      in
      let facile = mape (fun b -> (Model.predict_l b).Model.cycles) in
      let mca = mape Baselines.llvm_mca_like in
      let osaca = mape Baselines.osaca_like in
      let iaca = mape Baselines.iaca_like in
      if not (facile < 0.05) then
        Alcotest.failf "facile MAPE %.1f%% too high" (100. *. facile);
      List.iter
        (fun (name, v) ->
          if not (v > facile *. 2.0) then
            Alcotest.failf "%s (%.1f%%) unexpectedly close to facile (%.1f%%)"
              name (100. *. v) (100. *. facile))
        [ "llvm-mca-like", mca; "osaca-like", osaca; "iaca-like", iaca ])

let suite =
  [ "baselines.behaviour", behaviour_tests;
    "baselines.learned", learned_tests @ [ ranking ] ]
