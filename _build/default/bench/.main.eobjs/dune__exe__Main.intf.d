bench/main.mli:
