type t = { mutable state : int64 }

let create seed =
  { state = Int64.logxor (Int64.of_int seed) 0x9E3779B97F4A7C15L }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Prng.int";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod n

let range t lo hi =
  if hi < lo then invalid_arg "Prng.range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let chance t p =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 < p

let choose t = function
  | [] -> invalid_arg "Prng.choose"
  | l -> List.nth l (int t (List.length l))

let weighted t l =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 l in
  if total <= 0 then invalid_arg "Prng.weighted";
  let k = int t total in
  let rec pick k = function
    | [] -> invalid_arg "Prng.weighted"
    | (w, x) :: rest -> if k < w then x else pick (k - w) rest
  in
  pick k l
