(** The evaluation corpus: a deterministic set of synthetic basic
    blocks, each available in the BHive_U (straight-line) and BHive_L
    (branch-terminated) variants, mirroring the modified BHive suite
    used by the paper (§6.1). *)

open Facile_x86

type case = {
  id : int;
  profile : Genblock.profile;
  body : Inst.t list;   (** straight-line BHive_U variant *)
  loop : Inst.t list;   (** branch-terminated BHive_L variant *)
}

(** [corpus ~seed ~size ()] generates [size] cases deterministically.
    Blocks have 1 to [max_len] instructions (default 16), drawn evenly
    from all profiles. FMA is excluded by default so every block runs
    on every µarch. *)
val corpus :
  ?max_len:int -> ?allow_fma:bool -> seed:int -> size:int -> unit -> case list

(** [default_size ()] reads [FACILE_CORPUS_SIZE] (default 500). *)
val default_size : unit -> int
