(** Deterministic pseudo-random number generator (splitmix64), so the
    synthetic corpus is reproducible across runs and platforms. *)

type t

val create : int -> t

(** Raw 64-bit step. *)
val next : t -> int64

(** [int t n] is uniform in [\[0, n)]. @raise Invalid_argument if
    [n <= 0]. *)
val int : t -> int -> int

(** [range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)
val range : t -> int -> int -> int

val bool : t -> bool

(** [chance t p] is true with probability [p]. *)
val chance : t -> float -> bool

(** [choose t l] picks a uniform element. @raise Invalid_argument on
    the empty list. *)
val choose : t -> 'a list -> 'a

(** [weighted t l] picks an element with probability proportional to
    its weight. *)
val weighted : t -> (int * 'a) list -> 'a
