(** Synthetic basic-block generator — the BHive-suite substitute.

    Generates valid, encodable, DB-supported instruction sequences from
    domain profiles chosen to span the same bottleneck diversity as the
    BHive applications (numerical kernels, integer/compiler code,
    pointer chasing, byte/string manipulation, hashing, front-end
    stress). By default blocks avoid FMA and 256-bit integer AVX so that
    every block runs on every evaluated microarchitecture. *)

open Facile_x86

type profile =
  | Int_alu        (** compiler-style integer code *)
  | Fp_vector      (** SSE/AVX numerical kernels *)
  | Dep_chain      (** long loop-carried dependency chains *)
  | Load_store     (** memory-traffic heavy *)
  | Decode_heavy   (** multi-µop instructions stressing the decoders *)
  | Lcp_heavy      (** 16-bit immediates (length-changing prefixes) *)
  | Hash_crypto    (** rotate/xor/multiply mixing *)
  | Mixed

val all_profiles : profile list
val profile_name : profile -> string

(** [random_inst rng profile ~allow_fma] draws one instruction. *)
val random_inst : Prng.t -> profile -> allow_fma:bool -> Inst.t

(** [body rng profile ~allow_fma ~len] draws a straight-line block of
    [len] instructions (no trailing branch). All results encode and are
    supported by the DB on every µarch (modulo [allow_fma]). *)
val body : Prng.t -> profile -> allow_fma:bool -> len:int -> Inst.t list

(** [looped insts] appends the back-edge conditional branch (JNZ to the
    block start, with the displacement computed from the encoded body
    length) — the BHive_L variant of a block. *)
val looped : Inst.t list -> Inst.t list
