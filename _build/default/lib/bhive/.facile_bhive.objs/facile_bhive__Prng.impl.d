lib/bhive/prng.ml: Int64 List
