lib/bhive/suite.ml: Array Facile_x86 Genblock Inst List Prng Sys
