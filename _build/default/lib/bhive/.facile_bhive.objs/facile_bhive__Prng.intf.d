lib/bhive/prng.mli:
