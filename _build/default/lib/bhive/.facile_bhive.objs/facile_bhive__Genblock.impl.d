lib/bhive/genblock.ml: Facile_x86 Inst Int64 List Operand Prng Register String
