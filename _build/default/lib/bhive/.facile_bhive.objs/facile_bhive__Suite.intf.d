lib/bhive/suite.mli: Facile_x86 Genblock Inst
