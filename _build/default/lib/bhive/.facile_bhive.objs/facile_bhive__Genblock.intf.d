lib/bhive/genblock.mli: Facile_x86 Inst Prng
