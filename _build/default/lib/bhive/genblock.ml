open Facile_x86

type profile =
  | Int_alu
  | Fp_vector
  | Dep_chain
  | Load_store
  | Decode_heavy
  | Lcp_heavy
  | Hash_crypto
  | Mixed

let all_profiles =
  [ Int_alu; Fp_vector; Dep_chain; Load_store; Decode_heavy; Lcp_heavy;
    Hash_crypto; Mixed ]

let profile_name = function
  | Int_alu -> "int-alu"
  | Fp_vector -> "fp-vector"
  | Dep_chain -> "dep-chain"
  | Load_store -> "load-store"
  | Decode_heavy -> "decode-heavy"
  | Lcp_heavy -> "lcp-heavy"
  | Hash_crypto -> "hash-crypto"
  | Mixed -> "mixed"

(* ------------------------------------------------------------------ *)
(* Operand pools                                                       *)

let gpr_pool =
  Register.
    [ RAX; RBX; RCX; RDX; RSI; RDI; R8; R9; R10; R11; R12; R13; R14 ]

let byte_pool = Register.[ RAX; RBX; RCX; RDX ]

let r64 rng = Register.Gpr (Register.W64, Prng.choose rng gpr_pool)
let r32 rng = Register.Gpr (Register.W32, Prng.choose rng gpr_pool)
let r16 rng = Register.Gpr (Register.W16, Prng.choose rng gpr_pool)
let r8 rng = Register.Gpr (Register.W8, Prng.choose rng byte_pool)
let xmm rng = Register.Xmm (Prng.int rng 16)
let ymm rng = Register.Ymm (Prng.int rng 16)

let rw rng = if Prng.bool rng then r64 rng else r32 rng

(* Two general-purpose registers of the same (random) width. *)
let rr_pair rng =
  let w = if Prng.bool rng then Register.W64 else Register.W32 in
  ( Register.Gpr (w, Prng.choose rng gpr_pool),
    Register.Gpr (w, Prng.choose rng gpr_pool) )

let small_imm rng = Operand.imm (Prng.range rng 1 127)
let med_imm rng = Operand.imm (Prng.choose rng [ 200; 1000; 4096; 65537; 1 lsl 20 ])
let imm16 rng = Operand.imm (Prng.choose rng [ 0x1234; 300; 1000; 32000; -300 ])

let disp rng = Prng.choose rng [ 0; 0; 4; 8; 16; 24; 64; 128; 1024; -8 ]

let mem rng ~width =
  let base = Prng.choose rng gpr_pool in
  let index =
    if Prng.chance rng 0.4 then
      let idx = Prng.choose rng gpr_pool in
      let scale = Prng.choose rng Operand.[ S1; S2; S4; S8 ] in
      Some (idx, scale)
    else None
  in
  Operand.mem ~base ?index ~disp:(disp rng) ~width ()

let width_of_reg = function
  | Register.Gpr (w, _) -> Register.width_bytes w
  | Register.Xmm _ -> 16
  | Register.Ymm _ -> 32

(* ------------------------------------------------------------------ *)
(* Instruction builders                                                *)

let alu_mnems = Inst.[ ADD; SUB; AND; OR; XOR; CMP ]

let mk = Inst.make

let alu_rr rng =
  let d = rw rng in
  let s = Register.Gpr ((match d with Register.Gpr (w, _) -> w | _ -> Register.W64),
                        Prng.choose rng gpr_pool) in
  mk (Prng.choose rng alu_mnems) [ Operand.Reg d; Operand.Reg s ]

let alu_ri rng =
  let d = rw rng in
  let i = if Prng.chance rng 0.7 then small_imm rng else med_imm rng in
  mk (Prng.choose rng alu_mnems) [ Operand.Reg d; i ]

let alu_rm rng =
  let d = rw rng in
  mk (Prng.choose rng alu_mnems)
    [ Operand.Reg d; mem rng ~width:(width_of_reg d) ]

let alu_mr rng =
  let s = rw rng in
  mk (Prng.choose rng Inst.[ ADD; SUB; AND; OR; XOR ])
    [ mem rng ~width:(width_of_reg s); Operand.Reg s ]

let mov_rr rng =
  let d = rw rng in
  let s = Register.Gpr ((match d with Register.Gpr (w, _) -> w | _ -> Register.W64),
                        Prng.choose rng gpr_pool) in
  mk Inst.MOV [ Operand.Reg d; Operand.Reg s ]

let mov_ri rng = mk Inst.MOV [ Operand.Reg (rw rng); med_imm rng ]
let mov_r64_big rng =
  mk Inst.MOV
    [ Operand.Reg (r64 rng); Operand.Imm 0x1122334455667788L ]

let mov_load rng =
  let d = rw rng in
  mk Inst.MOV [ Operand.Reg d; mem rng ~width:(width_of_reg d) ]

let mov_store rng =
  let s = rw rng in
  mk Inst.MOV [ mem rng ~width:(width_of_reg s); Operand.Reg s ]

let lea2 rng =
  let base = Prng.choose rng gpr_pool in
  mk Inst.LEA
    [ Operand.Reg (r64 rng); Operand.mem ~base ~disp:(disp rng) ~width:8 () ]

let lea3 rng =
  let base = Prng.choose rng gpr_pool in
  let idx = Prng.choose rng gpr_pool in
  mk Inst.LEA
    [ Operand.Reg (r64 rng);
      Operand.mem ~base ~index:(idx, Operand.S4) ~disp:8 ~width:8 () ]

let shift_imm rng =
  mk (Prng.choose rng Inst.[ SHL; SHR; SAR; ROL; ROR ])
    [ Operand.Reg (rw rng); Operand.imm (Prng.range rng 1 31) ]

let shift_cl rng =
  mk (Prng.choose rng Inst.[ SHL; SHR; SAR ])
    [ Operand.Reg (rw rng);
      Operand.Reg (Register.Gpr (Register.W8, Register.RCX)) ]

let imul_rr rng =
  let d, s = rr_pair rng in
  mk Inst.IMUL [ Operand.Reg d; Operand.Reg s ]

let imul_rri rng =
  let d = rw rng in
  let s = Register.Gpr ((match d with Register.Gpr (w, _) -> w | _ -> Register.W64),
                        Prng.choose rng gpr_pool) in
  mk Inst.IMUL [ Operand.Reg d; Operand.Reg s; med_imm rng ]

let movzx rng =
  let src = if Prng.bool rng then Operand.Reg (r8 rng)
            else Operand.Reg (r16 rng) in
  mk (Prng.choose rng Inst.[ MOVZX; MOVSX ]) [ Operand.Reg (r32 rng); src ]

let movzx_mem rng =
  mk Inst.MOVZX
    [ Operand.Reg (r32 rng); mem rng ~width:(if Prng.bool rng then 1 else 2) ]

let test_rr rng =
  let d = rw rng in
  let s = Register.Gpr ((match d with Register.Gpr (w, _) -> w | _ -> Register.W64),
                        Prng.choose rng gpr_pool) in
  mk Inst.TEST [ Operand.Reg d; Operand.Reg s ]

let cmov rng =
  let d = rw rng in
  let s = Register.Gpr ((match d with Register.Gpr (w, _) -> w | _ -> Register.W64),
                        Prng.choose rng gpr_pool) in
  mk (Inst.CMOVcc (Inst.cond_of_code (Prng.int rng 16)))
    [ Operand.Reg d; Operand.Reg s ]

let setcc rng =
  mk (Inst.SETcc (Inst.cond_of_code (Prng.int rng 16))) [ Operand.Reg (r8 rng) ]

let incdec rng =
  mk (if Prng.bool rng then Inst.INC else Inst.DEC) [ Operand.Reg (rw rng) ]

let bit_count rng =
  let d, s = rr_pair rng in
  mk (Prng.choose rng Inst.[ POPCNT; LZCNT; TZCNT; BSF; BSR ])
    [ Operand.Reg d; Operand.Reg s ]

let xchg_rr rng =
  let d, s = rr_pair rng in
  mk Inst.XCHG [ Operand.Reg d; Operand.Reg s ]

let adc_sbb rng =
  let d, s = rr_pair rng in
  mk (if Prng.bool rng then Inst.ADC else Inst.SBB)
    [ Operand.Reg d; Operand.Reg s ]

let bswap rng =
  mk Inst.BSWAP [ Operand.Reg (if Prng.bool rng then r64 rng else r32 rng) ]

let mul_div rng =
  mk (Prng.choose rng Inst.[ MUL; DIV; IDIV ]) [ Operand.Reg (r32 rng) ]

let nopl rng =
  mk Inst.NOPL [ mem rng ~width:(if Prng.bool rng then 2 else 4) ]

(* ----- SSE / AVX ----- *)

let sse_arith_pp rng =
  mk (Prng.choose rng
        Inst.[ ADDPS; SUBPS; MULPS; MINPS; MAXPS; ADDPD; SUBPD; MULPD ])
    [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]

let sse_arith_scalar rng =
  mk (Prng.choose rng
        Inst.[ ADDSS; SUBSS; MULSS; ADDSD; SUBSD; MULSD ])
    [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]

let sse_arith_mem rng =
  let m = Prng.choose rng Inst.[ ADDPS, 16; MULPD, 16; ADDSD, 8; MULSS, 4 ] in
  mk (fst m) [ Operand.Reg (xmm rng); mem rng ~width:(snd m) ]

let sse_logic rng =
  mk (Prng.choose rng Inst.[ ANDPS; ORPS; XORPS; PXOR; POR; PAND ])
    [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]

let sse_int rng =
  mk (Prng.choose rng Inst.[ PADDB; PADDD; PADDQ; PSUBD; PMULUDQ; PUNPCKLDQ ])
    [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]

let pmulld rng =
  mk Inst.PMULLD [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]

let shuffle rng =
  mk Inst.PSHUFD
    [ Operand.Reg (xmm rng); Operand.Reg (xmm rng);
      Operand.imm (Prng.int rng 256) ]

let vec_shift rng =
  mk (if Prng.bool rng then Inst.PSLLD else Inst.PSRLD)
    [ Operand.Reg (xmm rng); Operand.imm (Prng.range rng 1 31) ]

let sse_mov rng =
  let load = Prng.bool rng in
  let mn = Prng.choose rng Inst.[ MOVAPS, 16; MOVUPS, 16; MOVSD, 8; MOVSS, 4 ] in
  if load then mk (fst mn) [ Operand.Reg (xmm rng); mem rng ~width:(snd mn) ]
  else mk (fst mn) [ mem rng ~width:(snd mn); Operand.Reg (xmm rng) ]

let sse_mov_rr rng =
  mk (Prng.choose rng Inst.[ MOVAPS; MOVUPS; MOVSD ])
    [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]

let cvt rng =
  match Prng.int rng 4 with
  | 0 -> mk Inst.CVTSI2SD [ Operand.Reg (xmm rng); Operand.Reg (rw rng) ]
  | 1 -> mk Inst.CVTSI2SS [ Operand.Reg (xmm rng); Operand.Reg (r32 rng) ]
  | 2 -> mk Inst.CVTTSD2SI [ Operand.Reg (rw rng); Operand.Reg (xmm rng) ]
  | _ -> mk Inst.CVTSS2SD [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]

let fp_div_sqrt rng =
  mk (Prng.choose rng Inst.[ DIVPS; DIVSS; DIVSD; SQRTPS; SQRTSS; SQRTSD ])
    [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]

let ucomis rng =
  mk (if Prng.bool rng then Inst.UCOMISS else Inst.UCOMISD)
    [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]

let avx1 rng =
  let r = if Prng.chance rng 0.5 then ymm else xmm in
  mk (Prng.choose rng Inst.[ VADDPS; VSUBPS; VMULPS; VXORPS; VANDPS ])
    [ Operand.Reg (r rng); Operand.Reg (r rng); Operand.Reg (r rng) ]

let fma rng =
  let r = if Prng.chance rng 0.5 then ymm else xmm in
  let packed = Prng.bool rng in
  if packed then
    mk (if Prng.bool rng then Inst.VFMADD231PS else Inst.VFMADD231PD)
      [ Operand.Reg (r rng); Operand.Reg (r rng); Operand.Reg (r rng) ]
  else
    mk (if Prng.bool rng then Inst.VFMADD231SS else Inst.VFMADD231SD)
      [ Operand.Reg (xmm rng); Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]

let movd rng =
  if Prng.bool rng then
    mk Inst.MOVD [ Operand.Reg (xmm rng); Operand.Reg (r32 rng) ]
  else mk Inst.MOVQ [ Operand.Reg (xmm rng); Operand.Reg (r64 rng) ]

let bt_family rng =
  let d, s = rr_pair rng in
  if Prng.bool rng then
    mk (Prng.choose rng Inst.[ BT; BTS; BTR; BTC ])
      [ Operand.Reg d; Operand.Reg s ]
  else
    mk (Prng.choose rng Inst.[ BT; BTS; BTR; BTC ])
      [ Operand.Reg d; Operand.imm (Prng.range rng 0 31) ]

let shld rng =
  let d, s = rr_pair rng in
  mk (if Prng.bool rng then Inst.SHLD else Inst.SHRD)
    [ Operand.Reg d; Operand.Reg s; Operand.imm (Prng.range rng 1 31) ]

let movbe rng =
  let r = rw rng in
  if Prng.bool rng then
    mk Inst.MOVBE [ Operand.Reg r; mem rng ~width:(width_of_reg r) ]
  else mk Inst.MOVBE [ mem rng ~width:(width_of_reg r); Operand.Reg r ]

let flag_op rng =
  mk (Prng.choose rng Inst.[ CLC; STC; CMC ]) []

let widen_rax rng =
  mk (Prng.choose rng Inst.[ CWDE; CDQE; CDQ; CQO ]) []

let bmi rng =
  let w = if Prng.bool rng then Register.W64 else Register.W32 in
  let r () = Register.Gpr (w, Prng.choose rng gpr_pool) in
  mk (Prng.choose rng Inst.[ ANDN; BZHI; SHLX; SHRX; SARX ])
    [ Operand.Reg (r ()); Operand.Reg (r ()); Operand.Reg (r ()) ]

let sse_cmp rng =
  mk (Prng.choose rng
        Inst.[ PCMPEQB; PCMPEQD; PCMPGTD; PMAXSD; PMINSD; PMAXUB; PMINUB ])
    [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]

let sse_shuffle2 rng =
  match Prng.int rng 5 with
  | 0 ->
    mk Inst.PSHUFB [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]
  | 1 ->
    mk Inst.PALIGNR
      [ Operand.Reg (xmm rng); Operand.Reg (xmm rng);
        Operand.imm (Prng.range rng 0 15) ]
  | 2 ->
    mk Inst.SHUFPS
      [ Operand.Reg (xmm rng); Operand.Reg (xmm rng);
        Operand.imm (Prng.int rng 256) ]
  | 3 -> mk Inst.PACKSSDW [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]
  | _ ->
    mk (if Prng.bool rng then Inst.UNPCKHPS else Inst.UNPCKLPD)
      [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]

let sse_bytes_shift rng =
  mk (if Prng.bool rng then Inst.PSLLDQ else Inst.PSRLDQ)
    [ Operand.Reg (xmm rng); Operand.imm (Prng.range rng 1 15) ]

let sse_minmax rng =
  mk (Prng.choose rng
        Inst.[ MINPD; MAXPD; MINSS; MAXSS; MINSD; MAXSD ])
    [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]

let haddps rng =
  mk Inst.HADDPS [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]

let roundsd rng =
  mk Inst.ROUNDSD
    [ Operand.Reg (xmm rng); Operand.Reg (xmm rng);
      Operand.imm (Prng.range rng 0 3) ]

let cvt_packed rng =
  mk (Prng.choose rng Inst.[ CVTDQ2PS; CVTPS2DQ; CVTTPS2DQ ])
    [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]

let sse_mov_dq rng =
  let mn = if Prng.bool rng then Inst.MOVDQA else Inst.MOVDQU in
  match Prng.int rng 3 with
  | 0 -> mk mn [ Operand.Reg (xmm rng); Operand.Reg (xmm rng) ]
  | 1 -> mk mn [ Operand.Reg (xmm rng); mem rng ~width:16 ]
  | _ -> mk mn [ mem rng ~width:16; Operand.Reg (xmm rng) ]

let avx_mov rng =
  let r = if Prng.bool rng then ymm else xmm in
  mk (if Prng.bool rng then Inst.VMOVDQA else Inst.VMOVDQU)
    [ Operand.Reg (r rng); Operand.Reg (r rng) ]

let fma_variants rng =
  let r = if Prng.chance rng 0.5 then ymm else xmm in
  mk (Prng.choose rng Inst.[ VFMADD132PS; VFMADD213PS; VFMADD231PS ])
    [ Operand.Reg (r rng); Operand.Reg (r rng); Operand.Reg (r rng) ]

(* ----- LCP ----- *)

let lcp_inst rng =
  match Prng.int rng 4 with
  | 0 -> mk Inst.MOV [ Operand.Reg (r16 rng); imm16 rng ]
  | 1 ->
    mk (Prng.choose rng Inst.[ ADD; SUB; AND; CMP ])
      [ Operand.Reg (r16 rng); imm16 rng ]
  | 2 -> mk Inst.IMUL [ Operand.Reg (r16 rng); Operand.Reg (r16 rng); imm16 rng ]
  | _ -> mk Inst.TEST [ Operand.Reg (r16 rng); imm16 rng ]

let alu_r16 rng =
  mk (Prng.choose rng alu_mnems) [ Operand.Reg (r16 rng); Operand.Reg (r16 rng) ]

(* ------------------------------------------------------------------ *)
(* Profile menus                                                       *)

let menu profile ~allow_fma =
  match profile with
  | Int_alu ->
    [ 20, alu_rr; 14, alu_ri; 6, mov_rr; 10, mov_ri; 8, lea2; 4, lea3;
      6, shift_imm; 2, imul_rr; 5, imul_rri; 5, movzx; 5, test_rr;
      5, cmov; 3, setcc; 5, incdec; 4, bit_count; 3, alu_rm; 1, bswap;
      3, bt_family; 1, flag_op; 1, widen_rax ]
  | Fp_vector ->
    [ 18, sse_arith_pp; 10, sse_arith_scalar; 10, sse_logic; 7, sse_int;
      9, shuffle; 8, sse_mov; 4, sse_mov_rr; 4, sse_arith_mem; 4, cvt;
      2, fp_div_sqrt; 2, ucomis; 5, avx1; 2, movd; 4, vec_shift;
      2, pmulld; 5, sse_cmp; 5, sse_shuffle2; 3, sse_minmax;
      3, sse_mov_dq; 2, cvt_packed; 1, roundsd; 1, sse_bytes_shift ]
    @ (if allow_fma then [ 6, fma; 3, fma_variants; 2, avx_mov ] else [])
  | Dep_chain -> [ 1, alu_rr ] (* handled specially in [body] *)
  | Load_store ->
    [ 15, mov_load; 12, mov_store; 8, alu_rm; 6, alu_mr; 6, movzx_mem;
      8, sse_mov; 6, lea2; 6, alu_rr; 4, mov_rr; 3, sse_arith_mem;
      3, sse_mov_dq ]
    @ (if allow_fma then [ 3, movbe ] else [])
  | Decode_heavy ->
    [ 10, cvt; 8, xchg_rr; 8, shift_cl; 8, adc_sbb; 6, pmulld;
      5, fp_div_sqrt; 4, bswap; 3, mul_div; 8, alu_mr; 8, alu_rr;
      4, sse_mov; 4, nopl; 5, haddps; 4, shld ]
  | Lcp_heavy ->
    [ 16, lcp_inst; 8, alu_r16; 10, alu_rr; 6, mov_ri; 4, movzx;
      4, lea2; 3, mov_r64_big; 4, shift_imm ]
  | Hash_crypto ->
    [ 12, shift_imm; 10, alu_rr; 4, imul_rr; 4, imul_rri; 6, bswap;
      6, movzx; 6, alu_ri; 5, bit_count; 5, sse_logic; 4, sse_int;
      3, shift_cl; 2, pmulld; 4, mov_ri; 3, shld; 3, bt_family;
      3, sse_shuffle2 ]
    @ (if allow_fma then [ 4, bmi ] else [])
  | Mixed ->
    [ 12, alu_rr; 8, alu_ri; 5, mov_rr; 5, lea2; 4, shift_imm;
      4, imul_rr; 4, movzx; 4, cmov; 4, sse_arith_pp; 4, sse_logic;
      4, mov_load; 4, mov_store; 3, alu_rm; 3, cvt; 2, lcp_inst;
      2, fp_div_sqrt; 2, setcc; 2, test_rr; 2, incdec; 1, xchg_rr;
      1, avx1; 2, sse_cmp; 2, sse_shuffle2; 2, bt_family; 1, sse_minmax;
      1, sse_mov_dq; 1, flag_op ]

let random_inst rng profile ~allow_fma =
  match profile with
  | Dep_chain ->
    (* stateless fallback; real chains are built in [body] *)
    alu_rr rng
  | _ -> (Prng.weighted rng (menu profile ~allow_fma)) rng

(* A loop-carried chain: every instruction accumulates into one
   register, giving a cross-iteration dependency cycle. *)
let dep_chain_body rng ~len =
  if Prng.bool rng then begin
    (* integer chain *)
    let acc = Register.Gpr (Register.W64, Prng.choose rng gpr_pool) in
    List.init len (fun _ ->
        match Prng.int rng 5 with
        | 0 -> mk Inst.ADD [ Operand.Reg acc; Operand.Reg (r64 rng) ]
        | 1 -> mk Inst.IMUL [ Operand.Reg acc; Operand.Reg (r64 rng) ]
        | 2 ->
          let base = (match acc with Register.Gpr (_, g) -> g | _ -> Register.RAX) in
          mk Inst.LEA
            [ Operand.Reg acc; Operand.mem ~base ~disp:8 ~width:8 () ]
        | 3 -> mk Inst.ADD [ Operand.Reg acc; mem rng ~width:8 ]
        | _ -> mk Inst.XOR [ Operand.Reg acc; Operand.Reg (r64 rng) ])
  end
  else begin
    (* floating-point chain *)
    let acc = Register.Xmm (Prng.int rng 8) in
    List.init len (fun _ ->
        match Prng.int rng 4 with
        | 0 -> mk Inst.ADDSD [ Operand.Reg acc; Operand.Reg (xmm rng) ]
        | 1 -> mk Inst.MULSD [ Operand.Reg acc; Operand.Reg (xmm rng) ]
        | 2 -> mk Inst.ADDSD [ Operand.Reg acc; mem rng ~width:8 ]
        | _ -> mk Inst.ADDPD [ Operand.Reg acc; Operand.Reg (xmm rng) ])
  end

let body rng profile ~allow_fma ~len =
  match profile with
  | Dep_chain -> dep_chain_body rng ~len
  | _ -> List.init len (fun _ -> random_inst rng profile ~allow_fma)

let looped insts =
  let bytes, _ = Facile_x86.Encode.encode_block insts in
  let body_len = String.length bytes in
  let disp8 = -(body_len + 2) in
  let disp =
    if Operand.fits_i8 (Int64.of_int disp8) then disp8 else -(body_len + 6)
  in
  insts @ [ mk (Inst.Jcc Inst.NE) [ Operand.imm disp ] ]
