open Facile_x86

type case = {
  id : int;
  profile : Genblock.profile;
  body : Inst.t list;
  loop : Inst.t list;
}

(* Profile mix: front-end/back-end-diverse profiles dominate; pure
   dependency chains are rare, as in compiler-generated code. *)
let profile_mix =
  Genblock.
    [ Int_alu; Fp_vector; Load_store; Mixed;
      Int_alu; Decode_heavy; Lcp_heavy; Hash_crypto;
      Fp_vector; Mixed; Dep_chain; Int_alu;
      Load_store; Mixed; Fp_vector; Hash_crypto ]

let corpus ?(max_len = 16) ?(allow_fma = false) ~seed ~size () =
  let rng = Prng.create seed in
  let profiles = Array.of_list profile_mix in
  List.init size (fun id ->
      let profile = profiles.(id mod Array.length profiles) in
      let len = Prng.range rng 1 max_len in
      let body = Genblock.body rng profile ~allow_fma ~len in
      { id; profile; body; loop = Genblock.looped body })

let default_size () =
  match Sys.getenv_opt "FACILE_CORPUS_SIZE" with
  | Some s -> (match int_of_string_opt s with Some n when n > 0 -> n | _ -> 500)
  | None -> 500
