lib/baselines/linalg.ml: Array List
