lib/baselines/baselines.mli: Block Facile_core
