lib/baselines/baselines.ml: Array Block Config Db Encode Facile_core Facile_db Facile_uarch Facile_x86 Float Hashtbl Inst Linalg List Port Ports Precedence
