lib/baselines/linalg.mli:
