(** Reimplementations of the design points of the throughput predictors
    the paper compares against (§6.2, Table 2). Each reproduces the
    characteristic modeling choices (and therefore the characteristic
    error modes) of its namesake; see DESIGN.md for the mapping.

    All predictors take an analyzed {!Facile_core.Block.t} and return
    predicted cycles per iteration. *)

open Facile_core

(** llvm-mca-like: back-end-only scheduling model. No front end, no
    macro or micro fusion, no move elimination (the omissions the paper
    quotes for llvm-mca), and deterministically perturbed latencies
    standing in for LLVM's known scheduling-model miscalibrations. *)
val llvm_mca_like : Block.t -> float

(** OSACA-like: analytical port model with {e uniform} (fractional)
    distribution of each µop over its admissible ports — rather than
    Facile's optimal-assignment bound — combined with a loop-carried
    critical-path estimate. No front end. *)
val osaca_like : Block.t -> float

(** IACA-like: coarse front end (issue width only), optimal port bound,
    no predecode/LCP modeling and no dependency analysis. *)
val iaca_like : Block.t -> float

(** The learned (Ithemal/GRANITE-style) baseline: a ridge-regression
    model over block-level features. *)
type learned

(** [featurize b] — the feature vector (constant-1 feature included). *)
val featurize : Block.t -> float array

(** [train samples] fits the model on [(block, measured)] pairs. *)
val train : (Block.t * float) list -> learned

(** [predict_learned model b] — clamped to be nonnegative. *)
val predict_learned : learned -> Block.t -> float
