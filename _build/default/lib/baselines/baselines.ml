open Facile_x86
open Facile_uarch
open Facile_db
open Facile_core

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)

(* A configuration with the features llvm-mca/OSACA do not model turned
   off: macro fusion and move elimination. *)
let defused_cfg (cfg : Config.t) =
  { cfg with
    Config.macro_fusion = false;
    mov_elim_gpr = false;
    mov_elim_vec = false }

let reanalyze cfg' (b : Block.t) =
  Block.of_instructions cfg' (List.map (fun (e : Block.entry) -> e.Block.inst)
                                b.Block.entries)

let dispatched_uops (b : Block.t) =
  List.fold_left
    (fun acc (l : Block.logical) ->
      if l.Block.eliminated then acc else acc + List.length l.Block.dispatched)
    0 b.Block.logicals

(* ------------------------------------------------------------------ *)
(* llvm-mca-like                                                       *)

(* Deterministic per-mnemonic latency perturbation standing in for the
   miscalibration of LLVM scheduling models. *)
let latency_delta (l : Block.logical) =
  match l.Block.insts with
  | i :: _ -> (Hashtbl.hash (Inst.mnemonic_name i.Inst.mnem) mod 3) - 1
  | [] -> 0

let perturb_latencies (b : Block.t) =
  { b with
    Block.logicals =
      List.map
        (fun (l : Block.logical) ->
          { l with Block.latency = max 0 (l.Block.latency + latency_delta l) })
        b.Block.logicals }

let llvm_mca_like (b : Block.t) =
  let b' = perturb_latencies (reanalyze (defused_cfg b.Block.cfg) b) in
  let issue_unfused =
    float_of_int (dispatched_uops b')
    /. float_of_int b'.Block.cfg.Config.issue_width
  in
  List.fold_left Float.max 0.0
    [ issue_unfused; Ports.throughput b'; Precedence.throughput b' ]

(* ------------------------------------------------------------------ *)
(* OSACA-like                                                          *)

let osaca_like (b : Block.t) =
  let b' = reanalyze (defused_cfg b.Block.cfg) b in
  (* uniform fractional spread of each µop over its admissible ports *)
  let load = Array.make 16 0.0 in
  List.iter
    (fun (l : Block.logical) ->
      if not l.Block.eliminated then
        List.iter
          (fun (u : Db.uop) ->
            let ports = Port.to_list u.Db.ports in
            let share = 1.0 /. float_of_int (max 1 (List.length ports)) in
            List.iter (fun p -> load.(p) <- load.(p) +. share) ports)
          l.Block.dispatched)
    b'.Block.logicals;
  let port_bound = Array.fold_left Float.max 0.0 load in
  Float.max port_bound (Precedence.throughput b')

(* ------------------------------------------------------------------ *)
(* IACA-like                                                           *)

let iaca_like (b : Block.t) =
  let issue =
    float_of_int (Block.fused_uops b)
    /. float_of_int b.Block.cfg.Config.issue_width
  in
  (* IACA analyzed simple single-instruction recurrences but not full
     dependence cycles *)
  let self_chain =
    List.fold_left
      (fun acc (l : Block.logical) ->
        let rmw =
          List.exists (fun w -> List.mem w l.Block.reads) l.Block.writes
        in
        if rmw && not l.Block.eliminated then max acc l.Block.latency else acc)
      0 b.Block.logicals
  in
  List.fold_left Float.max 0.0
    [ issue; Ports.throughput b; float_of_int self_chain ]

(* ------------------------------------------------------------------ *)
(* Learned baseline                                                    *)

type learned = float array

let featurize (b : Block.t) =
  let logicals = b.Block.logicals in
  let count f = float_of_int (List.length (List.filter f logicals)) in
  let sum f = float_of_int (List.fold_left (fun a l -> a + f l) 0 logicals) in
  let maxi f = float_of_int (List.fold_left (fun a l -> max a (f l)) 0 logicals) in
  let div_occ =
    List.fold_left
      (fun a (l : Block.logical) ->
        a
        + List.length
            (List.filter (fun (u : Db.uop) -> u.Db.kind = Db.Div_pseudo)
               l.Block.dispatched))
      0 logicals
  in
  let lcp =
    List.length
      (List.filter (fun (e : Block.entry) -> e.Block.layout.Encode.lcp)
         b.Block.entries)
  in
  (* fractional pressure per port: a sequence model could learn this
     from the opcode mix *)
  let pressure = Array.make 10 0.0 in
  List.iter
    (fun (l : Block.logical) ->
      if not l.Block.eliminated then
        List.iter
          (fun (u : Db.uop) ->
            let ports = Port.to_list u.Db.ports in
            let share = 1.0 /. float_of_int (max 1 (List.length ports)) in
            List.iter
              (fun p -> if p < 10 then pressure.(p) <- pressure.(p) +. share)
              ports)
          l.Block.dispatched)
    logicals;
  (* proxy for loop-carried chains: instructions that read what they
     write contribute their latency serially *)
  let self_dep, self_dep_max =
    List.fold_left
      (fun (acc, mx) (l : Block.logical) ->
        let rmw =
          List.exists (fun w -> List.mem w l.Block.reads) l.Block.writes
        in
        if rmw then
          let lat =
            l.Block.latency
            + (if l.Block.loads then
                 b.Block.cfg.Facile_uarch.Config.load_latency
               else 0)
          in
          (acc + lat, max mx lat)
        else (acc, mx))
      (0, 0) logicals
  in
  let max_pressure = ref 0.0 in
  Array.append
    [| 1.0;
       float_of_int (List.length logicals);
       float_of_int (Block.fused_uops b);
       float_of_int (Block.issued_uops b);
       float_of_int (dispatched_uops b);
       count (fun l -> l.Block.loads);
       count (fun l ->
           List.exists (fun (u : Db.uop) -> u.Db.kind = Db.Store_data)
             l.Block.dispatched);
       count (fun l -> l.Block.is_branch);
       float_of_int b.Block.len;
       float_of_int b.Block.len /. 16.0;
       count (fun l -> l.Block.complex_decode);
       sum (fun l -> l.Block.latency);
       maxi (fun l -> l.Block.latency);
       float_of_int self_dep;
       float_of_int div_occ;
       float_of_int lcp;
       count (fun l -> l.Block.eliminated);
       (* max-style aggregates: the nonlinearities a sequence model
          learns implicitly *)
       (Array.iter (fun p -> max_pressure := Float.max !max_pressure p) pressure;
        !max_pressure);
       float_of_int self_dep_max;
       log (1.0 +. float_of_int self_dep_max);
       log (1.0 +. !max_pressure);
       log (1.0 +. float_of_int (Block.fused_uops b)) |]
    pressure

(* The model is fit in log space: throughput prediction is judged by
   relative error, and cycle counts span two orders of magnitude. *)
let train samples =
  let xs = List.map (fun (b, _) -> featurize b) samples in
  let ys = List.map (fun (_, y) -> log (Float.max y 0.1)) samples in
  Linalg.ridge_fit ~lambda:1.0 xs ys

let predict_learned w b =
  Float.min 10000.0 (Float.max 0.2 (exp (Linalg.dot w (featurize b))))
