(** Minimal dense linear algebra for the learned baseline: a ridge
    least-squares fit via the normal equations, solved by Gaussian
    elimination with partial pivoting. *)

(** [solve a b] solves [a x = b] for a square matrix [a] (destructive on
    copies; inputs are not modified).
    @raise Failure on (numerically) singular systems. *)
val solve : float array array -> float array -> float array

(** [ridge_fit ~lambda xs ys] returns coefficients [w] minimizing
    [sum (w . x - y)^2 + lambda |w|^2]. Each row of [xs] is one sample's
    feature vector (include a constant-1 feature for an intercept). *)
val ridge_fit : lambda:float -> float array list -> float list -> float array

val dot : float array -> float array -> float
