let dot a b =
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let solve a b =
  let n = Array.length b in
  let m = Array.map Array.copy a in
  let v = Array.copy b in
  for col = 0 to n - 1 do
    (* partial pivoting *)
    let piv = ref col in
    for row = col + 1 to n - 1 do
      if abs_float m.(row).(col) > abs_float m.(!piv).(col) then piv := row
    done;
    if abs_float m.(!piv).(col) < 1e-12 then
      failwith "Linalg.solve: singular matrix";
    if !piv <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!piv);
      m.(!piv) <- tmp;
      let tv = v.(col) in
      v.(col) <- v.(!piv);
      v.(!piv) <- tv
    end;
    for row = col + 1 to n - 1 do
      let f = m.(row).(col) /. m.(col).(col) in
      if f <> 0.0 then begin
        for k = col to n - 1 do
          m.(row).(k) <- m.(row).(k) -. (f *. m.(col).(k))
        done;
        v.(row) <- v.(row) -. (f *. v.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let s = ref v.(row) in
    for k = row + 1 to n - 1 do
      s := !s -. (m.(row).(k) *. x.(k))
    done;
    x.(row) <- !s /. m.(row).(row)
  done;
  x

let ridge_fit ~lambda xs ys =
  match xs with
  | [] -> invalid_arg "Linalg.ridge_fit: no samples"
  | first :: _ ->
    let d = Array.length first in
    let xtx = Array.make_matrix d d 0.0 in
    let xty = Array.make d 0.0 in
    List.iter2
      (fun x y ->
        for i = 0 to d - 1 do
          xty.(i) <- xty.(i) +. (x.(i) *. y);
          for j = 0 to d - 1 do
            xtx.(i).(j) <- xtx.(i).(j) +. (x.(i) *. x.(j))
          done
        done)
      xs ys;
    for i = 0 to d - 1 do
      xtx.(i).(i) <- xtx.(i).(i) +. lambda
    done;
    solve xtx xty
