lib/x86/decode.ml: Char Encode Inst Int64 List Operand Printf Register Sse_table String
