lib/x86/sse_table.ml: Inst List
