lib/x86/register.mli: Format
