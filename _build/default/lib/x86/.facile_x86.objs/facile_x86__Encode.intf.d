lib/x86/encode.mli: Inst
