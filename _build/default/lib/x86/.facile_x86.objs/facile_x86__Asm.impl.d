lib/x86/asm.ml: Buffer Encode Filename Inst Int64 List Operand Register String
