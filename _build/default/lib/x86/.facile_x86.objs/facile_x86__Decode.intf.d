lib/x86/decode.mli: Encode Inst
