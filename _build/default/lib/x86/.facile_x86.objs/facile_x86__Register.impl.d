lib/x86/register.ml: Array Format List Stdlib String
