lib/x86/asm.mli: Inst
