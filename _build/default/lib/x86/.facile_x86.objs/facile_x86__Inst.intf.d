lib/x86/inst.mli: Format Operand
