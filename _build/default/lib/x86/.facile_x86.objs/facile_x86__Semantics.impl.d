lib/x86/semantics.ml: Format Inst List Operand Register
