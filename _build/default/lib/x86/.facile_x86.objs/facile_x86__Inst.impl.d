lib/x86/inst.ml: Format List Operand Option String
