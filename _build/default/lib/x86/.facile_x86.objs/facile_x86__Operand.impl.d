lib/x86/operand.ml: Format Int64 Register
