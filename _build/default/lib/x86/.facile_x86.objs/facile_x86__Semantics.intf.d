lib/x86/semantics.mli: Format Inst Register
