lib/x86/encode.ml: Buffer Char Inst Int64 List Operand Option Register Sse_table String
