lib/x86/operand.mli: Format Register
