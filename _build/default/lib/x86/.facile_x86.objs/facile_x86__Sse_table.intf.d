lib/x86/sse_table.mli: Inst
