type scale = S1 | S2 | S4 | S8

type mem = {
  base : Register.gpr option;
  index : (Register.gpr * scale) option;
  disp : int;
  width : int;
}

type t =
  | Reg of Register.t
  | Mem of mem
  | Imm of int64

let equal (a : t) (b : t) = a = b

let scale_factor = function S1 -> 1 | S2 -> 2 | S4 -> 4 | S8 -> 8

let scale_of_int = function
  | 1 -> Some S1 | 2 -> Some S2 | 4 -> Some S4 | 8 -> Some S8
  | _ -> None

let mem ?base ?index ?(disp = 0) ~width () =
  (match index with
   | Some (Register.RSP, _) -> invalid_arg "Operand.mem: RSP cannot be an index"
   | _ -> ());
  Mem { base; index; disp; width }

let reg r = Reg r
let imm v = Imm (Int64.of_int v)

let fits_i8 v = Int64.compare v (-128L) >= 0 && Int64.compare v 127L <= 0

let fits_i32 v =
  Int64.compare v (-2147483648L) >= 0 && Int64.compare v 2147483647L <= 0

let size_keyword = function
  | 1 -> "byte" | 2 -> "word" | 4 -> "dword" | 8 -> "qword"
  | 16 -> "xmmword" | 32 -> "ymmword"
  | n -> string_of_int n ^ "byte"

let pp fmt = function
  | Reg r -> Register.pp fmt r
  | Imm v ->
    if Int64.compare v 0L >= 0 && Int64.compare v 4096L < 0 then
      Format.fprintf fmt "%Ld" v
    else if Int64.compare v 0L < 0 && Int64.compare v (-65536L) > 0 then
      Format.fprintf fmt "%Ld" v
    else Format.fprintf fmt "0x%Lx" v
  | Mem m ->
    Format.fprintf fmt "%s ptr [" (size_keyword m.width);
    let printed = ref false in
    (match m.base with
     | Some b ->
       Format.fprintf fmt "%s" (Register.name (Register.Gpr (Register.W64, b)));
       printed := true
     | None -> ());
    (match m.index with
     | Some (i, s) ->
       if !printed then Format.pp_print_string fmt "+";
       Format.fprintf fmt "%s*%d"
         (Register.name (Register.Gpr (Register.W64, i)))
         (scale_factor s);
       printed := true
     | None -> ());
    if m.disp <> 0 || not !printed then begin
      if !printed && m.disp >= 0 then Format.pp_print_string fmt "+";
      Format.fprintf fmt "%d" m.disp
    end;
    Format.pp_print_string fmt "]"
