type resource =
  | Reg of Register.t
  | Flags

let resource_equal (a : resource) (b : resource) = a = b

let pp_resource fmt = function
  | Reg r -> Register.pp fmt r
  | Flags -> Format.pp_print_string fmt "flags"

let reg r = Reg (Register.full r)

let gpr64 g = Reg (Register.Gpr (Register.W64, g))

let dedup l =
  List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l
  |> List.rev

(* Address registers of all memory operands: always reads. *)
let addr_reads ops =
  List.concat_map
    (function
      | Operand.Mem m ->
        let b = match m.Operand.base with Some g -> [ gpr64 g ] | None -> [] in
        let i = match m.Operand.index with Some (g, _) -> [ gpr64 g ] | None -> [] in
        b @ i
      | _ -> [])
    ops

let op_reg = function Operand.Reg r -> [ reg r ] | _ -> []

let nth ops n = match List.nth_opt ops n with Some o -> [ o ] | None -> []

let reg_of ops n = List.concat_map op_reg (nth ops n)

(* Value roles per mnemonic: which operand positions are read / written,
   plus implicit resources. The scalar-SSE merge rule: a reg-reg scalar
   operation also reads its destination (the upper lanes merge). *)

let rax = gpr64 Register.RAX
let rdx = gpr64 Register.RDX
let rsp = gpr64 Register.RSP

let scalar_merge_reads i =
  (* movss/movsd/cvt* with a register source merge into dst *)
  match i.Inst.ops with
  | Operand.Reg _ :: Operand.Reg _ :: _ -> reg_of i.Inst.ops 0
  | _ -> []

let reads i =
  let open Inst in
  let ops = i.ops in
  let explicit =
    match i.mnem with
    | ADD | SUB | AND | OR | XOR | SHL | SHR | SAR | ROL | ROR ->
      reg_of ops 0 @ reg_of ops 1
    | ADC | SBB -> reg_of ops 0 @ reg_of ops 1 @ [ Flags ]
    | CMP | TEST | UCOMISS | UCOMISD -> reg_of ops 0 @ reg_of ops 1
    | MOV | MOVZX | MOVSX | MOVSXD | BSF | BSR | POPCNT | LZCNT | TZCNT
    | SQRTPS | SQRTPD | PSHUFD | VSQRTPS | VMOVAPS | VMOVUPS
    | MOVAPS | MOVUPS | MOVAPD | MOVD | MOVQ ->
      reg_of ops 1
    | MOVSS | MOVSD | CVTSI2SD | CVTSI2SS | CVTSS2SD | CVTSD2SS ->
      scalar_merge_reads i @ reg_of ops 1
    | CVTTSD2SI | CVTDQ2PS | CVTPS2DQ | CVTTPS2DQ -> reg_of ops 1
    | SQRTSS | SQRTSD -> scalar_merge_reads i @ reg_of ops 1
    | LEA -> []
    | CWDE | CDQE -> [ rax ]
    | SHLD | SHRD -> reg_of ops 0 @ reg_of ops 1
    | BT | BTS | BTR | BTC -> reg_of ops 0 @ reg_of ops 1
    | MOVBE | MOVDQA | MOVDQU | VMOVDQA | VMOVDQU -> reg_of ops 1
    | CLC | STC -> []
    | CMC -> [ Flags ]
    | ANDN | BZHI | SHLX | SHRX | SARX -> reg_of ops 1 @ reg_of ops 2
    | INC | DEC | NEG | NOT | BSWAP -> reg_of ops 0
    | IMUL ->
      (match ops with
       | [ _; _ ] -> reg_of ops 0 @ reg_of ops 1 (* dst * src *)
       | _ -> reg_of ops 1 (* dst = src * imm *))
    | MUL -> reg_of ops 0 @ [ rax ]
    | DIV | IDIV -> reg_of ops 0 @ [ rax; rdx ]
    | XCHG -> reg_of ops 0 @ reg_of ops 1
    | PUSH -> reg_of ops 0 @ [ rsp ]
    | POP -> [ rsp ]
    | CDQ | CQO -> [ rax ]
    | NOP | NOPL | JMP -> []
    | Jcc _ | SETcc _ -> [ Flags ]
    | CMOVcc _ -> [ Flags ] @ reg_of ops 0 @ reg_of ops 1
    | ADDPS | ADDPD | ADDSS | ADDSD | SUBPS | SUBPD | SUBSS | SUBSD
    | MULPS | MULPD | MULSS | MULSD | DIVPS | DIVPD | DIVSS | DIVSD
    | MINPS | MAXPS | MINPD | MAXPD | MINSS | MAXSS | MINSD | MAXSD
    | ANDPS | ANDPD | ORPS | XORPS | XORPD
    | PXOR | POR | PAND | PADDB | PADDD | PADDQ | PSUBD
    | PMULLD | PMULUDQ | PUNPCKLDQ
    | PCMPEQB | PCMPEQD | PCMPGTD | PMAXSD | PMINSD | PMAXUB | PMINUB
    | PSHUFB | PALIGNR | PACKSSDW | HADDPS | ROUNDSD
    | SHUFPS | UNPCKHPS | UNPCKLPD ->
      reg_of ops 0 @ reg_of ops 1
    | PSLLD | PSRLD | PSLLDQ | PSRLDQ -> reg_of ops 0
    | VADDPS | VADDPD | VSUBPS | VMULPS | VMULPD | VDIVPS | VXORPS
    | VANDPS | VMINPS | VMAXPS | VPXOR | VPADDD | VPMULLD | VPAND | VPOR ->
      reg_of ops 1 @ reg_of ops 2
    | VFMADD231PS | VFMADD231PD | VFMADD231SS | VFMADD231SD
    | VFMADD132PS | VFMADD213PS ->
      reg_of ops 0 @ reg_of ops 1 @ reg_of ops 2
  in
  dedup (explicit @ addr_reads ops)

let writes i =
  let open Inst in
  let ops = i.ops in
  let dst0 =
    match ops with
    | Operand.Reg r :: _ -> [ reg r ]
    | _ -> []
  in
  let result =
    match i.mnem with
    | ADD | SUB | ADC | SBB | AND | OR | XOR -> dst0 @ [ Flags ]
    | CMP | TEST | UCOMISS | UCOMISD -> [ Flags ]
    | MOV | MOVZX | MOVSX | MOVSXD | LEA | CMOVcc _ -> dst0
    | SETcc _ -> dst0
    | INC | DEC | NEG -> dst0 @ [ Flags ]
    | NOT | BSWAP -> dst0
    | IMUL -> dst0 @ [ Flags ]
    | MUL | DIV | IDIV -> [ rax; rdx; Flags ]
    | SHL | SHR | SAR | ROL | ROR -> dst0 @ [ Flags ]
    | XCHG -> reg_of ops 0 @ reg_of ops 1
    | PUSH -> [ rsp ]
    | POP -> dst0 @ [ rsp ]
    | BSF | BSR | POPCNT | LZCNT | TZCNT -> dst0 @ [ Flags ]
    | CDQ | CQO -> [ rdx ]
    | CWDE | CDQE -> [ rax ]
    | SHLD | SHRD -> dst0 @ [ Flags ]
    | BT -> [ Flags ]
    | BTS | BTR | BTC -> dst0 @ [ Flags ]
    | MOVBE -> dst0
    | CLC | STC | CMC -> [ Flags ]
    | ANDN | BZHI -> dst0 @ [ Flags ]
    | SHLX | SHRX | SARX -> dst0
    | NOP | NOPL | JMP | Jcc _ -> []
    | MOVAPS | MOVUPS | MOVAPD | MOVSS | MOVSD | MOVDQA | MOVDQU
    | MOVD | MOVQ
    | ADDPS | ADDPD | ADDSS | ADDSD | SUBPS | SUBPD | SUBSS | SUBSD
    | MULPS | MULPD | MULSS | MULSD | DIVPS | DIVPD | DIVSS | DIVSD
    | MINPS | MAXPS | MINPD | MAXPD | MINSS | MAXSS | MINSD | MAXSD
    | SQRTPS | SQRTPD | SQRTSS | SQRTSD
    | ANDPS | ANDPD | ORPS | XORPS | XORPD
    | HADDPS | ROUNDSD | SHUFPS | UNPCKHPS | UNPCKLPD
    | PXOR | POR | PAND | PADDB | PADDD | PADDQ | PSUBD
    | PMULLD | PMULUDQ | PUNPCKLDQ | PSHUFD | PSLLD | PSRLD
    | PSLLDQ | PSRLDQ
    | PCMPEQB | PCMPEQD | PCMPGTD | PMAXSD | PMINSD | PMAXUB | PMINUB
    | PSHUFB | PALIGNR | PACKSSDW
    | CVTSI2SD | CVTSI2SS | CVTTSD2SI | CVTSS2SD | CVTSD2SS
    | CVTDQ2PS | CVTPS2DQ | CVTTPS2DQ
    | VMOVAPS | VMOVUPS | VMOVDQA | VMOVDQU
    | VADDPS | VADDPD | VSUBPS | VMULPS | VMULPD
    | VDIVPS | VSQRTPS | VXORPS | VANDPS | VMINPS | VMAXPS
    | VPXOR | VPADDD | VPMULLD | VPAND | VPOR
    | VFMADD231PS | VFMADD231PD | VFMADD231SS | VFMADD231SD
    | VFMADD132PS | VFMADD213PS ->
      dst0
  in
  dedup result
