(** x86-64 register model.

    General-purpose registers are identified by a 64-bit base name and an
    access width; vector registers by an index and a width class (XMM or
    YMM). The predecoder, encoder, and dependence analysis all work on
    this representation. *)

(** The sixteen 64-bit general-purpose register files, in hardware
    encoding order (RAX = 0, RCX = 1, ..., R15 = 15). *)
type gpr =
  | RAX | RCX | RDX | RBX | RSP | RBP | RSI | RDI
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

(** Access width of a general-purpose register operand. [W8] always
    denotes the low byte (AL, R8B, ...); the high-byte registers (AH,
    BH, ...) are not modeled. *)
type width = W8 | W16 | W32 | W64

type t =
  | Gpr of width * gpr  (** e.g. [Gpr (W32, RAX)] is EAX *)
  | Xmm of int          (** XMM0 .. XMM15 *)
  | Ymm of int          (** YMM0 .. YMM15 *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** [gpr_index r] is the 4-bit hardware encoding of [r]. *)
val gpr_index : gpr -> int

(** [gpr_of_index i] is the inverse of {!gpr_index}.
    @raise Invalid_argument if [i] is outside [0, 15]. *)
val gpr_of_index : int -> gpr

(** All sixteen general-purpose registers, in encoding order. *)
val all_gprs : gpr list

(** [width_bytes w] is the operand size in bytes (1, 2, 4 or 8). *)
val width_bytes : width -> int

(** [full r] is the canonical full-width register containing [r]
    (e.g. EAX and AX both map to RAX; XMM3 and YMM3 both map to YMM3).
    Used as the renaming unit in dependence analysis. *)
val full : t -> t

(** [name r] is the conventional lower-case assembly name ("rax",
    "r10d", "xmm4", ...). *)
val name : t -> string

(** [of_name s] parses a register name as printed by {!name}. *)
val of_name : string -> t option

val pp : Format.formatter -> t -> unit
