(** Intel-syntax assembly parser and printer for the supported subset.

    The printer ({!print_block}) and parser ({!parse_block}) round-trip:
    parsing a printed block yields the original instructions. The parser
    also accepts minor variations (missing size keywords when the width
    is implied by a register operand, condition-code synonyms like
    [jz] / [jnz], hex or decimal immediates). *)

(** [parse_inst s] parses one instruction, e.g.
    ["add rax, qword ptr [rbx+rcx*8+16]"]. *)
val parse_inst : string -> (Inst.t, string) result

(** [parse_block s] parses a whole block: one instruction per line
    (or [;]-separated); [#] starts a comment. *)
val parse_block : string -> (Inst.t list, string) result

(** [print_inst i] is the canonical Intel-syntax rendering of [i]. *)
val print_inst : Inst.t -> string

(** [print_block insts] renders one instruction per line. *)
val print_block : Inst.t list -> string
