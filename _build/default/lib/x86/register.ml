type gpr =
  | RAX | RCX | RDX | RBX | RSP | RBP | RSI | RDI
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

type width = W8 | W16 | W32 | W64

type t =
  | Gpr of width * gpr
  | Xmm of int
  | Ymm of int

let equal (a : t) (b : t) = a = b
let compare = Stdlib.compare

let gpr_index = function
  | RAX -> 0 | RCX -> 1 | RDX -> 2 | RBX -> 3
  | RSP -> 4 | RBP -> 5 | RSI -> 6 | RDI -> 7
  | R8 -> 8 | R9 -> 9 | R10 -> 10 | R11 -> 11
  | R12 -> 12 | R13 -> 13 | R14 -> 14 | R15 -> 15

let all_gprs =
  [ RAX; RCX; RDX; RBX; RSP; RBP; RSI; RDI;
    R8; R9; R10; R11; R12; R13; R14; R15 ]

let gpr_of_index i =
  match List.nth_opt all_gprs i with
  | Some r -> r
  | None -> invalid_arg "Register.gpr_of_index"

let width_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

let full = function
  | Gpr (_, g) -> Gpr (W64, g)
  | Xmm i | Ymm i -> Ymm i

(* Names of the eight legacy registers at each width; the numbered
   registers follow the r8b/r8w/r8d/r8 scheme. *)
let legacy_names = [| "ax"; "cx"; "dx"; "bx"; "sp"; "bp"; "si"; "di" |]

let gpr_name w g =
  let i = gpr_index g in
  if i < 8 then
    let base = legacy_names.(i) in
    match w with
    | W8 -> (match g with
             | RAX | RCX | RDX | RBX -> String.sub base 0 1 ^ "l"
             | RSP | RBP | RSI | RDI -> base ^ "l"
             | _ -> assert false)
    | W16 -> base
    | W32 -> "e" ^ base
    | W64 -> "r" ^ base
  else
    let base = "r" ^ string_of_int i in
    match w with
    | W8 -> base ^ "b"
    | W16 -> base ^ "w"
    | W32 -> base ^ "d"
    | W64 -> base

let name = function
  | Gpr (w, g) -> gpr_name w g
  | Xmm i -> "xmm" ^ string_of_int i
  | Ymm i -> "ymm" ^ string_of_int i

let of_name s =
  let s = String.lowercase_ascii s in
  let vec prefix mk =
    let n = String.length prefix in
    if String.length s > n && String.sub s 0 n = prefix then
      match int_of_string_opt (String.sub s n (String.length s - n)) with
      | Some i when i >= 0 && i <= 15 -> Some (mk i)
      | _ -> None
    else None
  in
  match vec "xmm" (fun i -> Xmm i) with
  | Some _ as r -> r
  | None ->
    match vec "ymm" (fun i -> Ymm i) with
    | Some _ as r -> r
    | None ->
      let rec find = function
        | [] -> None
        | g :: rest ->
          let try_width w = if gpr_name w g = s then Some (Gpr (w, g)) else None in
          (match try_width W64 with
           | Some _ as r -> r
           | None ->
             match try_width W32 with
             | Some _ as r -> r
             | None ->
               match try_width W16 with
               | Some _ as r -> r
               | None ->
                 match try_width W8 with
                 | Some _ as r -> r
                 | None -> find rest)
      in
      find all_gprs

let pp fmt r = Format.pp_print_string fmt (name r)
