type encoded = {
  bytes : string;
  opcode_off : int;
  has_lcp : bool;
}

exception Unencodable of string

let unencodable i =
  raise (Unencodable (Inst.to_string i))

(* ------------------------------------------------------------------ *)
(* Abstract instruction form, rendered to bytes by [render].           *)

type rm = RmReg of int | RmMem of Operand.mem

type vexinfo = { vpp : int; vmap : int; vw : bool; vl : bool; vvvv : int }

type form = {
  legacy : int list;
  rex_w : bool;
  force_rex : bool;
  map : [ `Primary | `Esc0F | `Esc0F38 | `Esc0F3A ];
  opcode : int;
  plus_reg : int option;
  modrm : (int * rm) option;
  imm : (int64 * int) option;
  vex : vexinfo option;
  lcp : bool;
}

let base_form =
  { legacy = []; rex_w = false; force_rex = false; map = `Primary;
    opcode = 0; plus_reg = None; modrm = None; imm = None; vex = None;
    lcp = false }

let gidx = Register.gpr_index

let reg_num = function
  | Register.Gpr (_, g) -> gidx g
  | Register.Xmm i | Register.Ymm i -> i

(* SPL/BPL/SIL/DIL require a REX prefix to be addressable as low bytes. *)
let needs_force_rex ops =
  let check = function
    | Operand.Reg (Register.Gpr (Register.W8, g)) ->
      let i = gidx g in
      i >= 4 && i <= 7
    | _ -> false
  in
  List.exists check ops

let add_byte buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let add_int_le buf v n =
  for k = 0 to n - 1 do
    add_byte buf (Int64.to_int (Int64.shift_right_logical v (8 * k)))
  done

let pick_mod ~rbp_like disp =
  if disp = 0 && not rbp_like then (0b00, None)
  else if disp >= -128 && disp <= 127 then (0b01, Some (disp, 1))
  else (0b10, Some (disp, 4))

let scale_bits = function
  | Operand.S1 -> 0 | Operand.S2 -> 1 | Operand.S4 -> 2 | Operand.S8 -> 3

let emit_modrm buf reg_field rm =
  let reg3 = (reg_field land 7) lsl 3 in
  let add_disp = function
    | None -> ()
    | Some (d, n) -> add_int_le buf (Int64.of_int d) n
  in
  match rm with
  | RmReg n -> add_byte buf (0b11_000_000 lor reg3 lor (n land 7))
  | RmMem m ->
    (match m.Operand.base, m.Operand.index with
     | None, None ->
       (* absolute: SIB form with no base, disp32 (mod 00, base 101) *)
       add_byte buf (reg3 lor 0b100);
       add_byte buf 0b00_100_101;
       add_disp (Some (m.disp, 4))
     | Some b, None when gidx b land 7 <> 4 ->
       let b3 = gidx b land 7 in
       let md, disp = pick_mod ~rbp_like:(b3 = 5) m.disp in
       add_byte buf ((md lsl 6) lor reg3 lor b3);
       add_disp disp
     | Some b, None ->
       (* RSP/R12 base: SIB required *)
       let b3 = gidx b land 7 in
       let md, disp = pick_mod ~rbp_like:false m.disp in
       add_byte buf ((md lsl 6) lor reg3 lor 0b100);
       add_byte buf (0b00_100_000 lor b3);
       add_disp disp
     | None, Some (i, s) ->
       add_byte buf (reg3 lor 0b100);
       add_byte buf ((scale_bits s lsl 6) lor ((gidx i land 7) lsl 3) lor 0b101);
       add_disp (Some (m.disp, 4))
     | Some b, Some (i, s) ->
       let b3 = gidx b land 7 in
       let md, disp = pick_mod ~rbp_like:(b3 = 5) m.disp in
       add_byte buf ((md lsl 6) lor reg3 lor 0b100);
       add_byte buf ((scale_bits s lsl 6) lor ((gidx i land 7) lsl 3) lor b3);
       add_disp disp)

let render (f : form) : encoded =
  let buf = Buffer.create 15 in
  List.iter (add_byte buf) f.legacy;
  let reg_ext = match f.modrm with Some (r, _) -> r >= 8 | None -> false in
  let rm_ext, idx_ext, base_ext =
    match f.modrm with
    | Some (_, RmReg n) -> (n >= 8, false, false)
    | Some (_, RmMem m) ->
      let bext = match m.base with Some b -> gidx b >= 8 | None -> false in
      let xext = match m.index with Some (i, _) -> gidx i >= 8 | None -> false in
      (false, xext, bext)
    | None -> (false, false, false)
  in
  let plus_ext = match f.plus_reg with Some n -> n >= 8 | None -> false in
  let opcode_off =
    match f.vex with
    | Some v ->
      let off = Buffer.length buf in
      let r = not reg_ext and x = not idx_ext and b = not (rm_ext || base_ext) in
      let vvvv_inv = lnot v.vvvv land 0xF in
      if v.vmap = 1 && not v.vw && x && b then begin
        add_byte buf 0xC5;
        add_byte buf
          ((if r then 0x80 else 0) lor (vvvv_inv lsl 3)
           lor (if v.vl then 4 else 0) lor v.vpp)
      end else begin
        add_byte buf 0xC4;
        add_byte buf
          ((if r then 0x80 else 0) lor (if x then 0x40 else 0)
           lor (if b then 0x20 else 0) lor v.vmap);
        add_byte buf
          ((if v.vw then 0x80 else 0) lor (vvvv_inv lsl 3)
           lor (if v.vl then 4 else 0) lor v.vpp)
      end;
      off
    | None ->
      let bits =
        (if f.rex_w then 8 else 0)
        lor (if reg_ext then 4 else 0)
        lor (if idx_ext then 2 else 0)
        lor (if rm_ext || base_ext || plus_ext then 1 else 0)
      in
      if bits <> 0 || f.force_rex then add_byte buf (0x40 lor bits);
      let off = Buffer.length buf in
      (match f.map with
       | `Primary -> ()
       | `Esc0F -> add_byte buf 0x0F
       | `Esc0F38 -> add_byte buf 0x0F; add_byte buf 0x38
       | `Esc0F3A -> add_byte buf 0x0F; add_byte buf 0x3A);
      off
  in
  (match f.plus_reg with
   | Some n -> add_byte buf (f.opcode lor (n land 7))
   | None -> add_byte buf f.opcode);
  (match f.modrm with
   | Some (reg_field, rm) -> emit_modrm buf reg_field rm
   | None -> ());
  (match f.imm with
   | Some (v, n) -> add_int_le buf v n
   | None -> ());
  let bytes = Buffer.contents buf in
  assert (String.length bytes >= 1 && String.length bytes <= 15);
  { bytes; opcode_off; has_lcp = f.lcp }

(* ------------------------------------------------------------------ *)
(* Form construction                                                   *)

let reg_width_bytes = function
  | Register.Gpr (w, _) -> Register.width_bytes w
  | Register.Xmm _ -> 16
  | Register.Ymm _ -> 32

(* Operand width of an integer instruction, from its first register
   operand or memory access size. *)
let int_width i =
  let rec go = function
    | [] -> 8
    | Operand.Reg r :: _ -> reg_width_bytes r
    | Operand.Mem m :: _ -> m.Operand.width
    | Operand.Imm _ :: rest -> go rest
  in
  go i.Inst.ops

(* Apply 66-prefix / REX.W for a given integer operand width. *)
let with_width w f =
  match w with
  | 2 -> { f with legacy = f.legacy @ [ 0x66 ] }
  | 8 -> { f with rex_w = true }
  | _ -> f

let rm_of_operand i = function
  | Operand.Reg r -> RmReg (reg_num r)
  | Operand.Mem m -> RmMem m
  | Operand.Imm _ -> unencodable i

(* Immediate size for ALU-style imm forms; marks LCP for imm16. *)
let alu_imm_form i ~w ~op8 ~op_i8 ~op_full ~ext rm v =
  let f = with_width w { base_form with modrm = Some (ext, rm) } in
  if w = 1 then { f with opcode = op8; imm = Some (v, 1) }
  else if Operand.fits_i8 v && op_i8 >= 0 then
    { f with opcode = op_i8; imm = Some (v, 1) }
  else
    let isz = if w = 2 then 2 else 4 in
    if not (Operand.fits_i32 v) then unencodable i;
    { f with opcode = op_full; imm = Some (v, isz); lcp = (isz = 2) }

let alu_indices =
  Inst.[ ADD, 0; OR, 1; ADC, 2; SBB, 3; AND, 4; SUB, 5; XOR, 6; CMP, 7 ]

let shift_digits =
  Inst.[ ROL, 0; ROR, 1; SHL, 4; SHR, 5; SAR, 7 ]

let sse_legacy = function
  | Sse_table.PNone -> []
  | Sse_table.P66 -> [ 0x66 ]
  | Sse_table.PF2 -> [ 0xF2 ]
  | Sse_table.PF3 -> [ 0xF3 ]

let form_of_sse i =
  (* MOVQ between a GPR and an XMM register borrows MOVD's opcodes with
     REX.W set; route those operand shapes through the MOVD entries. *)
  let mnem, force_w =
    match i.Inst.mnem, i.Inst.ops with
    | Inst.MOVQ, [ Operand.Reg (Register.Gpr _); _ ]
    | Inst.MOVQ, [ _; Operand.Reg (Register.Gpr _) ] -> (Inst.MOVD, true)
    | m, _ -> (m, false)
  in
  let entries = Sse_table.find_by_mnem mnem in
  if entries = [] then unencodable i;
  let pick kinds =
    match
      List.find_opt (fun e -> List.mem e.Sse_table.kind kinds) entries
    with
    | Some e -> e
    | None -> unencodable i
  in
  let mk e = { base_form with legacy = sse_legacy e.Sse_table.pp;
               map = (match e.Sse_table.map with
                      | Sse_table.M0F -> `Esc0F
                      | Sse_table.M0F38 -> `Esc0F38
                      | Sse_table.M0F3A -> `Esc0F3A);
               opcode = e.Sse_table.op }
  in
  match i.Inst.ops with
  (* shift-group forms: pslld xmm, imm8 *)
  | [ Operand.Reg (Register.Xmm x); Operand.Imm v ] ->
    (match
       List.find_opt
         (fun e -> match e.Sse_table.kind with
            | Sse_table.Grp_imm8 _ -> true | _ -> false)
         entries
     with
     | Some ({ Sse_table.kind = Sse_table.Grp_imm8 d; _ } as e) ->
       { (mk e) with modrm = Some (d, RmReg x); imm = Some (v, 1) }
     | _ -> unencodable i)
  | [ Operand.Reg (Register.Xmm x); src; Operand.Imm v ] ->
    let e = pick [ Sse_table.Xx_imm8 ] in
    { (mk e) with modrm = Some (x, rm_of_operand i src); imm = Some (v, 1) }
  | [ Operand.Reg (Register.Xmm x);
      ((Operand.Reg (Register.Xmm _) | Operand.Mem _) as src) ] ->
    let e = pick [ Sse_table.Xx; Sse_table.X_gpr ] in
    let f = { (mk e) with modrm = Some (x, rm_of_operand i src) } in
    let wide =
      force_w
      || (e.Sse_table.kind = Sse_table.X_gpr
          && (match src with
              | Operand.Mem m -> m.Operand.width = 8
              | _ -> false))
    in
    if wide then { f with rex_w = true } else f
  | [ Operand.Reg (Register.Xmm x); Operand.Reg (Register.Gpr (w, g)) ] ->
    (* cvtsi2sd xmm, r32/r64 ; movd/movq xmm, r32/r64 *)
    let e = pick [ Sse_table.X_gpr ] in
    let f = { (mk e) with modrm = Some (x, RmReg (gidx g)) } in
    if w = Register.W64 || force_w then { f with rex_w = true } else f
  | [ Operand.Reg (Register.Gpr (w, g));
      ((Operand.Reg (Register.Xmm _) | Operand.Mem _) as src) ] ->
    (* cvttsd2si r, xmm/m — or movd/movq r, xmm (store direction) *)
    let e = pick [ Sse_table.Gpr_x; Sse_table.Gpr_store ] in
    let f =
      match e.Sse_table.kind with
      | Sse_table.Gpr_x ->
        { (mk e) with modrm = Some (gidx g, rm_of_operand i src) }
      | Sse_table.Gpr_store ->
        (match src with
         | Operand.Reg (Register.Xmm x) ->
           { (mk e) with modrm = Some (x, RmReg (gidx g)) }
         | _ -> unencodable i)
      | _ -> unencodable i
    in
    if w = Register.W64 || force_w then { f with rex_w = true } else f
  | [ (Operand.Mem _ as dst); Operand.Reg (Register.Xmm x) ] ->
    let e = pick [ Sse_table.Xx_store; Sse_table.Gpr_store ] in
    { (mk e) with modrm = Some (x, rm_of_operand i dst) }
  | _ -> unencodable i

let form_of_vex i =
  let entries = Sse_table.vfind_by_mnem i.Inst.mnem in
  if entries = [] then unencodable i;
  let vl =
    List.exists
      (function Operand.Reg (Register.Ymm _) -> true | _ -> false)
      i.Inst.ops
  in
  let vnum = function
    | Operand.Reg (Register.Xmm n) | Operand.Reg (Register.Ymm n) -> n
    | _ -> unencodable i
  in
  let pick k =
    match List.find_opt (fun e -> e.Sse_table.vkind = k) entries with
    | Some e -> e
    | None -> unencodable i
  in
  let mk e ~vvvv ~reg ~rm =
    let vw = match e.Sse_table.vw with Some b -> b | None -> false in
    { base_form with
      vex = Some { vpp = e.Sse_table.vpp; vmap = e.Sse_table.vmap; vw;
                   vl; vvvv };
      opcode = e.Sse_table.vop;
      modrm = Some (reg, rm) }
  in
  let gnum = function
    | Operand.Reg (Register.Gpr (_, g)) -> gidx g
    | _ -> unencodable i
  in
  let gpr_w =
    List.exists
      (function
        | Operand.Reg (Register.Gpr (Register.W64, _)) -> true
        | _ -> false)
      i.Inst.ops
  in
  match i.Inst.ops with
  | [ Operand.Reg (Register.Gpr _); _; _ ] ->
    (* BMI general-purpose forms; W encodes the operand width *)
    (match entries with
     | { Sse_table.vkind = Sse_table.Vgpr_rvm; _ } :: _ ->
       let e = pick Sse_table.Vgpr_rvm in
       (match i.Inst.ops with
        | [ dst; src1; src2 ] ->
          let f = mk e ~vvvv:(gnum src1) ~reg:(gnum dst)
                    ~rm:(rm_of_operand i src2) in
          { f with vex = Option.map (fun v -> { v with vw = gpr_w }) f.vex }
        | _ -> unencodable i)
     | { Sse_table.vkind = Sse_table.Vgpr_rmv; _ } :: _ ->
       let e = pick Sse_table.Vgpr_rmv in
       (match i.Inst.ops with
        | [ dst; src; count ] ->
          let f = mk e ~vvvv:(gnum count) ~reg:(gnum dst)
                    ~rm:(rm_of_operand i src) in
          { f with vex = Option.map (fun v -> { v with vw = gpr_w }) f.vex }
        | _ -> unencodable i)
     | _ -> unencodable i)
  | [ (Operand.Reg _ as dst); src1; src2 ] ->
    let e = pick Sse_table.Vrvm in
    mk e ~vvvv:(vnum src1) ~reg:(vnum dst) ~rm:(rm_of_operand i src2)
  | [ (Operand.Mem _ as dst); (Operand.Reg _ as src) ] ->
    let e = pick Sse_table.Vrm_store in
    mk e ~vvvv:0 ~reg:(vnum src) ~rm:(rm_of_operand i dst)
  | [ (Operand.Reg _ as dst); src ] ->
    let e = pick Sse_table.Vrm in
    mk e ~vvvv:0 ~reg:(vnum dst) ~rm:(rm_of_operand i src)
  | _ -> unencodable i

let form_of_inst (i : Inst.t) : form =
  let open Inst in
  let force = needs_force_rex i.ops in
  let form =
    match i.mnem, i.ops with
    (* ----- ALU binary ----- *)
    | (ADD | OR | ADC | SBB | AND | SUB | XOR | CMP), [ dst; src ] ->
      let idx = List.assoc i.mnem alu_indices in
      let w = int_width i in
      (match dst, src with
       | (Operand.Reg _ | Operand.Mem _), Operand.Reg r ->
         with_width w
           { base_form with
             opcode = (idx * 8) + (if w = 1 then 0x00 else 0x01);
             modrm = Some (reg_num r, rm_of_operand i dst) }
       | Operand.Reg r, Operand.Mem _ ->
         with_width w
           { base_form with
             opcode = (idx * 8) + (if w = 1 then 0x02 else 0x03);
             modrm = Some (reg_num r, rm_of_operand i src) }
       | (Operand.Reg _ | Operand.Mem _), Operand.Imm v ->
         alu_imm_form i ~w ~op8:0x80 ~op_i8:0x83 ~op_full:0x81 ~ext:idx
           (rm_of_operand i dst) v
       | _ -> unencodable i)
    (* ----- MOV ----- *)
    | MOV, [ dst; src ] ->
      let w = int_width i in
      (match dst, src with
       | (Operand.Reg _ | Operand.Mem _), Operand.Reg r ->
         with_width w
           { base_form with opcode = (if w = 1 then 0x88 else 0x89);
             modrm = Some (reg_num r, rm_of_operand i dst) }
       | Operand.Reg r, Operand.Mem _ ->
         with_width w
           { base_form with opcode = (if w = 1 then 0x8A else 0x8B);
             modrm = Some (reg_num r, rm_of_operand i src) }
       | Operand.Reg r, Operand.Imm v ->
         let n = reg_num r in
         (match w with
          | 1 -> { base_form with opcode = 0xB0; plus_reg = Some n;
                   imm = Some (v, 1) }
          | 2 -> { base_form with legacy = [ 0x66 ]; opcode = 0xB8;
                   plus_reg = Some n; imm = Some (v, 2); lcp = true }
          | 4 -> { base_form with opcode = 0xB8; plus_reg = Some n;
                   imm = Some (v, 4) }
          | _ ->
            if Operand.fits_i32 v then
              { base_form with rex_w = true; opcode = 0xC7;
                modrm = Some (0, RmReg n); imm = Some (v, 4) }
            else
              { base_form with rex_w = true; opcode = 0xB8;
                plus_reg = Some n; imm = Some (v, 8) })
       | Operand.Mem _, Operand.Imm v ->
         if w = 1 then
           { base_form with opcode = 0xC6;
             modrm = Some (0, rm_of_operand i dst); imm = Some (v, 1) }
         else begin
           let isz = if w = 2 then 2 else 4 in
           if not (Operand.fits_i32 v) then unencodable i;
           with_width w
             { base_form with opcode = 0xC7;
               modrm = Some (0, rm_of_operand i dst); imm = Some (v, isz);
               lcp = (isz = 2) }
         end
       | _ -> unencodable i)
    (* ----- TEST ----- *)
    | TEST, [ dst; src ] ->
      let w = int_width i in
      (match dst, src with
       | (Operand.Reg _ | Operand.Mem _), Operand.Reg r ->
         with_width w
           { base_form with opcode = (if w = 1 then 0x84 else 0x85);
             modrm = Some (reg_num r, rm_of_operand i dst) }
       | (Operand.Reg _ | Operand.Mem _), Operand.Imm v ->
         let isz = if w = 1 then 1 else if w = 2 then 2 else 4 in
         if not (Operand.fits_i32 v) then unencodable i;
         with_width w
           { base_form with opcode = (if w = 1 then 0xF6 else 0xF7);
             modrm = Some (0, rm_of_operand i dst); imm = Some (v, isz);
             lcp = (isz = 2) }
       | _ -> unencodable i)
    (* ----- unary groups ----- *)
    | (NEG | NOT | MUL | DIV | IDIV), [ dst ] ->
      let ext = (match i.mnem with
                 | NOT -> 2 | NEG -> 3 | MUL -> 4 | DIV -> 6 | IDIV -> 7
                 | _ -> assert false) in
      let w = int_width i in
      with_width w
        { base_form with opcode = (if w = 1 then 0xF6 else 0xF7);
          modrm = Some (ext, rm_of_operand i dst) }
    | (INC | DEC), [ dst ] ->
      let ext = if i.mnem = INC then 0 else 1 in
      let w = int_width i in
      with_width w
        { base_form with opcode = (if w = 1 then 0xFE else 0xFF);
          modrm = Some (ext, rm_of_operand i dst) }
    (* ----- IMUL ----- *)
    | IMUL, [ Operand.Reg r; src ] ->
      let w = int_width i in
      with_width w
        { base_form with map = `Esc0F; opcode = 0xAF;
          modrm = Some (reg_num r, rm_of_operand i src) }
    | IMUL, [ Operand.Reg r; src; Operand.Imm v ] ->
      let w = int_width i in
      let f = with_width w
          { base_form with modrm = Some (reg_num r, rm_of_operand i src) } in
      if Operand.fits_i8 v then { f with opcode = 0x6B; imm = Some (v, 1) }
      else begin
        let isz = if w = 2 then 2 else 4 in
        if not (Operand.fits_i32 v) then unencodable i;
        { f with opcode = 0x69; imm = Some (v, isz); lcp = (isz = 2) }
      end
    (* ----- shifts ----- *)
    | (SHL | SHR | SAR | ROL | ROR), [ dst; amount ] ->
      let d = List.assoc i.mnem shift_digits in
      let w = int_width i in
      (match amount with
       | Operand.Imm v ->
         with_width w
           { base_form with opcode = (if w = 1 then 0xC0 else 0xC1);
             modrm = Some (d, rm_of_operand i dst); imm = Some (v, 1) }
       | Operand.Reg (Register.Gpr (Register.W8, Register.RCX)) ->
         with_width w
           { base_form with opcode = (if w = 1 then 0xD2 else 0xD3);
             modrm = Some (d, rm_of_operand i dst) }
       | _ -> unencodable i)
    (* ----- widening moves ----- *)
    | (MOVZX | MOVSX), [ Operand.Reg r; src ] ->
      let srcw = (match src with
                  | Operand.Reg s -> reg_width_bytes s
                  | Operand.Mem m -> m.Operand.width
                  | _ -> unencodable i) in
      let base = if i.mnem = MOVZX then 0xB6 else 0xBE in
      let opcode = (match srcw with 1 -> base | 2 -> base + 1
                    | _ -> unencodable i) in
      with_width (reg_width_bytes r)
        { base_form with map = `Esc0F; opcode;
          modrm = Some (reg_num r, rm_of_operand i src) }
    | MOVSXD, [ Operand.Reg r; src ] ->
      { base_form with rex_w = true; opcode = 0x63;
        modrm = Some (reg_num r, rm_of_operand i src) }
    (* ----- exchange ----- *)
    | XCHG, [ dst; Operand.Reg r ] ->
      let w = int_width i in
      with_width w
        { base_form with opcode = (if w = 1 then 0x86 else 0x87);
          modrm = Some (reg_num r, rm_of_operand i dst) }
    | BSWAP, [ Operand.Reg r ] ->
      let w = reg_width_bytes r in
      if w <> 4 && w <> 8 then unencodable i;
      with_width w
        { base_form with map = `Esc0F; opcode = 0xC8;
          plus_reg = Some (reg_num r) }
    (* ----- stack ----- *)
    | PUSH, [ Operand.Reg (Register.Gpr (Register.W64, g)) ] ->
      { base_form with opcode = 0x50; plus_reg = Some (gidx g) }
    | POP, [ Operand.Reg (Register.Gpr (Register.W64, g)) ] ->
      { base_form with opcode = 0x58; plus_reg = Some (gidx g) }
    (* ----- bit scans & counts ----- *)
    | (BSF | BSR), [ Operand.Reg r; src ] ->
      with_width (reg_width_bytes r)
        { base_form with map = `Esc0F;
          opcode = (if i.mnem = BSF then 0xBC else 0xBD);
          modrm = Some (reg_num r, rm_of_operand i src) }
    | (POPCNT | LZCNT | TZCNT), [ Operand.Reg r; src ] ->
      let opcode = (match i.mnem with
                    | POPCNT -> 0xB8 | LZCNT -> 0xBD | TZCNT -> 0xBC
                    | _ -> assert false) in
      let f = with_width (reg_width_bytes r)
          { base_form with map = `Esc0F; opcode;
            modrm = Some (reg_num r, rm_of_operand i src) } in
      { f with legacy = f.legacy @ [ 0xF3 ] }
    (* ----- sign extensions of the accumulator ----- *)
    | CDQ, [] -> { base_form with opcode = 0x99 }
    | CQO, [] -> { base_form with opcode = 0x99; rex_w = true }
    | CWDE, [] -> { base_form with opcode = 0x98 }
    | CDQE, [] -> { base_form with opcode = 0x98; rex_w = true }
    | CMC, [] -> { base_form with opcode = 0xF5 }
    | CLC, [] -> { base_form with opcode = 0xF8 }
    | STC, [] -> { base_form with opcode = 0xF9 }
    | (BT | BTS | BTR | BTC), [ dst; Operand.Reg r ] ->
      let opcode = (match i.mnem with
                    | BT -> 0xA3 | BTS -> 0xAB | BTR -> 0xB3 | _ -> 0xBB) in
      with_width (int_width i)
        { base_form with map = `Esc0F; opcode;
          modrm = Some (reg_num r, rm_of_operand i dst) }
    | (BT | BTS | BTR | BTC), [ dst; Operand.Imm v ] ->
      let ext = (match i.mnem with
                 | BT -> 4 | BTS -> 5 | BTR -> 6 | _ -> 7) in
      with_width (int_width i)
        { base_form with map = `Esc0F; opcode = 0xBA;
          modrm = Some (ext, rm_of_operand i dst); imm = Some (v, 1) }
    | (SHLD | SHRD), [ dst; Operand.Reg r; Operand.Imm v ] ->
      with_width (int_width i)
        { base_form with map = `Esc0F;
          opcode = (if i.mnem = SHLD then 0xA4 else 0xAC);
          modrm = Some (reg_num r, rm_of_operand i dst); imm = Some (v, 1) }
    | MOVBE, [ Operand.Reg r; (Operand.Mem _ as src) ] ->
      with_width (reg_width_bytes r)
        { base_form with map = `Esc0F38; opcode = 0xF0;
          modrm = Some (reg_num r, rm_of_operand i src) }
    | MOVBE, [ (Operand.Mem _ as dst); Operand.Reg r ] ->
      with_width (reg_width_bytes r)
        { base_form with map = `Esc0F38; opcode = 0xF1;
          modrm = Some (reg_num r, rm_of_operand i dst) }
    (* ----- nops ----- *)
    | NOP, [] -> { base_form with opcode = 0x90 }
    | NOPL, [ (Operand.Mem m as dst) ] ->
      let f = { base_form with map = `Esc0F; opcode = 0x1F;
                modrm = Some (0, rm_of_operand i dst) } in
      if m.Operand.width = 2 then { f with legacy = [ 0x66 ] } else f
    (* ----- control flow ----- *)
    | JMP, [ Operand.Imm v ] ->
      if Operand.fits_i8 v then
        { base_form with opcode = 0xEB; imm = Some (v, 1) }
      else { base_form with opcode = 0xE9; imm = Some (v, 4) }
    | Jcc c, [ Operand.Imm v ] ->
      if Operand.fits_i8 v then
        { base_form with opcode = 0x70 + Inst.cond_code c; imm = Some (v, 1) }
      else
        { base_form with map = `Esc0F; opcode = 0x80 + Inst.cond_code c;
          imm = Some (v, 4) }
    | SETcc c, [ dst ] ->
      { base_form with map = `Esc0F; opcode = 0x90 + Inst.cond_code c;
        modrm = Some (0, rm_of_operand i dst) }
    | CMOVcc c, [ Operand.Reg r; src ] ->
      with_width (reg_width_bytes r)
        { base_form with map = `Esc0F; opcode = 0x40 + Inst.cond_code c;
          modrm = Some (reg_num r, rm_of_operand i src) }
    (* ----- address generation ----- *)
    | LEA, [ Operand.Reg r; (Operand.Mem _ as src) ] ->
      with_width (reg_width_bytes r)
        { base_form with opcode = 0x8D;
          modrm = Some (reg_num r, rm_of_operand i src) }
    (* ----- SSE / AVX ----- *)
    | _ ->
      if Inst.is_vex i then form_of_vex i else form_of_sse i
  in
  { form with force_rex = form.force_rex || force }

let encode i = render (form_of_inst i)

let length i = String.length (encode i).bytes

type layout = {
  inst : Inst.t;
  off : int;
  len : int;
  nominal_opcode_off : int;
  lcp : bool;
}

let encode_block insts =
  let buf = Buffer.create 64 in
  let layouts =
    List.map
      (fun inst ->
        let e = encode inst in
        let off = Buffer.length buf in
        Buffer.add_string buf e.bytes;
        { inst; off; len = String.length e.bytes;
          nominal_opcode_off = off + e.opcode_off; lcp = e.has_lcp })
      insts
  in
  (Buffer.contents buf, layouts)
