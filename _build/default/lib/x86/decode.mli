(** x86-64 machine-code decoder for the supported instruction subset.

    The decoder is the inverse of {!Encode}: for every instruction the
    encoder can produce, [decode] reconstructs the original {!Inst.t}
    (including canonical memory-operand widths), and
    [encode (decode bytes) = bytes]. *)

exception Decode_error of string * int
(** [Decode_error (msg, offset)] is raised on bytes outside the
    supported encoding subset; [offset] is the position of the
    offending instruction start. *)

(** [decode_one s ~pos] decodes the instruction starting at [pos] and
    returns it together with its encoded length.
    @raise Decode_error on unsupported or truncated encodings. *)
val decode_one : string -> pos:int -> Inst.t * int

(** [decode_block s] decodes a whole basic block, returning the same
    layout records {!Encode.encode_block} would produce for it. *)
val decode_block : string -> Encode.layout list

(** [instructions s] is [decode_block] without the layout metadata. *)
val instructions : string -> Inst.t list
