(** Architectural read/write sets of instructions, used by the
    dependence analysis (Facile's Precedence component) and by the
    pipeline simulator's register renaming.

    Registers are tracked at full width ({!Register.full}); partial
    writes are treated as full writes, and the status flags are a single
    resource. Memory is not a tracked resource (the modeling assumptions
    exclude store-to-load aliasing), but address registers of memory
    operands are reads. *)

type resource =
  | Reg of Register.t  (** always full-width canonical *)
  | Flags

val resource_equal : resource -> resource -> bool
val pp_resource : Format.formatter -> resource -> unit

(** [reads i] lists the resources whose values [i] consumes (register
    sources, address registers, flags for conditional / carry-consuming
    instructions, implicit accumulators). Duplicates are removed. *)
val reads : Inst.t -> resource list

(** [writes i] lists the resources [i] produces. Duplicates removed. *)
val writes : Inst.t -> resource list
