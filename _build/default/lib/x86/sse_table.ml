type pp = PNone | P66 | PF2 | PF3
type omap = M0F | M0F38 | M0F3A

type kind =
  | Xx
  | Xx_store
  | Xx_imm8
  | X_gpr
  | Gpr_x
  | Gpr_store
  | Grp_imm8 of int

type entry = { mnem : Inst.mnemonic; pp : pp; map : omap; op : int; kind : kind }

let e mnem pp op kind = { mnem; pp; map = M0F; op; kind }

let entries =
  let open Inst in
  [ e MOVAPS PNone 0x28 Xx; e MOVAPS PNone 0x29 Xx_store;
    e MOVUPS PNone 0x10 Xx; e MOVUPS PNone 0x11 Xx_store;
    e MOVAPD P66 0x28 Xx; e MOVAPD P66 0x29 Xx_store;
    e MOVSS PF3 0x10 Xx; e MOVSS PF3 0x11 Xx_store;
    e MOVSD PF2 0x10 Xx; e MOVSD PF2 0x11 Xx_store;
    e ADDPS PNone 0x58 Xx; e ADDPD P66 0x58 Xx;
    e ADDSS PF3 0x58 Xx; e ADDSD PF2 0x58 Xx;
    e SUBPS PNone 0x5C Xx; e SUBPD P66 0x5C Xx;
    e SUBSS PF3 0x5C Xx; e SUBSD PF2 0x5C Xx;
    e MULPS PNone 0x59 Xx; e MULPD P66 0x59 Xx;
    e MULSS PF3 0x59 Xx; e MULSD PF2 0x59 Xx;
    e DIVPS PNone 0x5E Xx; e DIVPD P66 0x5E Xx;
    e DIVSS PF3 0x5E Xx; e DIVSD PF2 0x5E Xx;
    e MINPS PNone 0x5D Xx; e MAXPS PNone 0x5F Xx;
    e SQRTPS PNone 0x51 Xx; e SQRTPD P66 0x51 Xx;
    e SQRTSS PF3 0x51 Xx; e SQRTSD PF2 0x51 Xx;
    e ANDPS PNone 0x54 Xx; e ANDPD P66 0x54 Xx;
    e ORPS PNone 0x56 Xx;
    e XORPS PNone 0x57 Xx; e XORPD P66 0x57 Xx;
    e UCOMISS PNone 0x2E Xx; e UCOMISD P66 0x2E Xx;
    e PXOR P66 0xEF Xx; e POR P66 0xEB Xx; e PAND P66 0xDB Xx;
    e PADDB P66 0xFC Xx; e PADDD P66 0xFE Xx; e PADDQ P66 0xD4 Xx;
    e PSUBD P66 0xFA Xx;
    { mnem = PMULLD; pp = P66; map = M0F38; op = 0x40; kind = Xx };
    e PMULUDQ P66 0xF4 Xx;
    e PUNPCKLDQ P66 0x62 Xx;
    e PSHUFD P66 0x70 Xx_imm8;
    e PSLLD P66 0x72 (Grp_imm8 6); e PSRLD P66 0x72 (Grp_imm8 2);
    e CVTSI2SD PF2 0x2A X_gpr; e CVTSI2SS PF3 0x2A X_gpr;
    e CVTTSD2SI PF2 0x2C Gpr_x;
    e CVTSS2SD PF3 0x5A Xx; e CVTSD2SS PF2 0x5A Xx;
    (* MOVD/MOVQ share opcodes 6E/7E; decode distinguishes via REX.W *)
    e MOVD P66 0x6E X_gpr; e MOVD P66 0x7E Gpr_store;
    e MOVQ PF3 0x7E Xx; e MOVQ P66 0xD6 Xx_store;
    e MOVDQA P66 0x6F Xx; e MOVDQA P66 0x7F Xx_store;
    e MOVDQU PF3 0x6F Xx; e MOVDQU PF3 0x7F Xx_store;
    e MINPD P66 0x5D Xx; e MAXPD P66 0x5F Xx;
    e MINSS PF3 0x5D Xx; e MAXSS PF3 0x5F Xx;
    e MINSD PF2 0x5D Xx; e MAXSD PF2 0x5F Xx;
    e HADDPS PF2 0x7C Xx;
    e SHUFPS PNone 0xC6 Xx_imm8;
    e UNPCKHPS PNone 0x15 Xx; e UNPCKLPD P66 0x14 Xx;
    e PCMPEQB P66 0x74 Xx; e PCMPEQD P66 0x76 Xx; e PCMPGTD P66 0x66 Xx;
    e PMAXUB P66 0xDE Xx; e PMINUB P66 0xDA Xx;
    { mnem = PMAXSD; pp = P66; map = M0F38; op = 0x3D; kind = Xx };
    { mnem = PMINSD; pp = P66; map = M0F38; op = 0x39; kind = Xx };
    { mnem = PSHUFB; pp = P66; map = M0F38; op = 0x00; kind = Xx };
    e PACKSSDW P66 0x6B Xx;
    { mnem = PALIGNR; pp = P66; map = M0F3A; op = 0x0F; kind = Xx_imm8 };
    { mnem = ROUNDSD; pp = P66; map = M0F3A; op = 0x0B; kind = Xx_imm8 };
    e PSLLDQ P66 0x73 (Grp_imm8 7); e PSRLDQ P66 0x73 (Grp_imm8 3);
    e CVTDQ2PS PNone 0x5B Xx; e CVTPS2DQ P66 0x5B Xx;
    e CVTTPS2DQ PF3 0x5B Xx ]

let find_by_mnem m = List.filter (fun x -> x.mnem = m) entries

let find_by_opcode pp map op =
  List.find_opt (fun x -> x.pp = pp && x.map = map && x.op = op) entries

type vkind =
  | Vrm
  | Vrm_store
  | Vrvm
  | Vgpr_rvm  (* ANDN-style: dst(reg), src1(vvvv), src2(rm); GPR operands *)
  | Vgpr_rmv  (* SHLX-style: dst(reg), src(rm), count(vvvv); GPR operands *)

type ventry = {
  vmnem : Inst.mnemonic;
  vpp : int;
  vmap : int;
  vop : int;
  vw : bool option;
  vkind : vkind;
}

let v vmnem vpp vop vkind = { vmnem; vpp; vmap = 1; vop; vw = None; vkind }

let ventries =
  let open Inst in
  [ v VMOVAPS 0 0x28 Vrm; v VMOVAPS 0 0x29 Vrm_store;
    v VMOVUPS 0 0x10 Vrm; v VMOVUPS 0 0x11 Vrm_store;
    v VADDPS 0 0x58 Vrvm; v VADDPD 1 0x58 Vrvm;
    v VSUBPS 0 0x5C Vrvm;
    v VMULPS 0 0x59 Vrvm; v VMULPD 1 0x59 Vrvm;
    v VDIVPS 0 0x5E Vrvm;
    v VSQRTPS 0 0x51 Vrm;
    v VXORPS 0 0x57 Vrvm; v VANDPS 0 0x54 Vrvm;
    v VPXOR 1 0xEF Vrvm; v VPADDD 1 0xFE Vrvm;
    { vmnem = VPMULLD; vpp = 1; vmap = 2; vop = 0x40; vw = None; vkind = Vrvm };
    { vmnem = VFMADD231PS; vpp = 1; vmap = 2; vop = 0xB8; vw = Some false; vkind = Vrvm };
    { vmnem = VFMADD231PD; vpp = 1; vmap = 2; vop = 0xB8; vw = Some true; vkind = Vrvm };
    { vmnem = VFMADD231SS; vpp = 1; vmap = 2; vop = 0xB9; vw = Some false; vkind = Vrvm };
    { vmnem = VFMADD231SD; vpp = 1; vmap = 2; vop = 0xB9; vw = Some true; vkind = Vrvm };
    { vmnem = VFMADD132PS; vpp = 1; vmap = 2; vop = 0x98; vw = Some false; vkind = Vrvm };
    { vmnem = VFMADD213PS; vpp = 1; vmap = 2; vop = 0xA8; vw = Some false; vkind = Vrvm };
    { vmnem = VMOVDQA; vpp = 1; vmap = 1; vop = 0x6F; vw = None; vkind = Vrm };
    { vmnem = VMOVDQA; vpp = 1; vmap = 1; vop = 0x7F; vw = None; vkind = Vrm_store };
    { vmnem = VMOVDQU; vpp = 2; vmap = 1; vop = 0x6F; vw = None; vkind = Vrm };
    { vmnem = VMOVDQU; vpp = 2; vmap = 1; vop = 0x7F; vw = None; vkind = Vrm_store };
    v VMINPS 0 0x5D Vrvm; v VMAXPS 0 0x5F Vrvm;
    v VPAND 1 0xDB Vrvm; v VPOR 1 0xEB Vrvm;
    (* BMI: VEX-encoded general-purpose instructions; W selects 32/64 *)
    { vmnem = ANDN; vpp = 0; vmap = 2; vop = 0xF2; vw = None; vkind = Vgpr_rvm };
    { vmnem = BZHI; vpp = 0; vmap = 2; vop = 0xF5; vw = None; vkind = Vgpr_rmv };
    { vmnem = SHLX; vpp = 1; vmap = 2; vop = 0xF7; vw = None; vkind = Vgpr_rmv };
    { vmnem = SHRX; vpp = 3; vmap = 2; vop = 0xF7; vw = None; vkind = Vgpr_rmv };
    { vmnem = SARX; vpp = 2; vmap = 2; vop = 0xF7; vw = None; vkind = Vgpr_rmv } ]

let vfind_by_mnem m = List.filter (fun x -> x.vmnem = m) ventries

let vfind_by_opcode ~pp ~map ~op ~w =
  List.find_opt
    (fun x ->
      x.vpp = pp && x.vmap = map && x.vop = op
      && (match x.vw with None -> true | Some b -> b = w))
    ventries
