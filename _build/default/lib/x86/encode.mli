(** x86-64 machine-code encoder.

    Produces real instruction encodings (legacy prefixes, REX, VEX,
    ModRM/SIB, displacements, immediates) together with the layout
    metadata the Facile front-end components need: total length, the
    offset of the nominal opcode (the first byte that is not a legacy or
    REX prefix), and whether the instruction carries a length-changing
    prefix (LCP). *)

type encoded = {
  bytes : string;      (** the machine code, 1 to 15 bytes *)
  opcode_off : int;    (** offset of the first non-prefix byte *)
  has_lcp : bool;      (** 66H prefix together with a 16-bit immediate *)
}

exception Unencodable of string
(** Raised when an instruction/operand combination has no encoding in
    the supported subset (e.g. a three-operand ADD). The message names
    the offending instruction. *)

(** [encode i] encodes one instruction.
    @raise Unencodable on unsupported operand combinations. *)
val encode : Inst.t -> encoded

(** [length i] is [String.length (encode i).bytes]. *)
val length : Inst.t -> int

(** Per-instruction layout within an encoded block. *)
type layout = {
  inst : Inst.t;
  off : int;          (** byte offset of the instruction in the block *)
  len : int;
  nominal_opcode_off : int;  (** block-relative offset of the nominal opcode *)
  lcp : bool;
}

(** [encode_block insts] encodes the instructions back to back starting
    at offset 0 and returns the concatenated bytes plus the layout of
    every instruction. *)
val encode_block : Inst.t list -> string * layout list
