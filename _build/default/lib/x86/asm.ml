let print_inst = Inst.to_string

let print_block insts =
  String.concat "\n" (List.map print_inst insts)

(* ------------------------------------------------------------------ *)

let trim = String.trim

let split_on_string ~sep s =
  (* split on a single character separator, keeping empty fields out *)
  String.split_on_char sep s |> List.map trim |> List.filter (( <> ) "")

let parse_int s =
  let s = trim s in
  match int_of_string_opt s with
  | Some v -> Some v
  | None -> None

let size_keywords =
  [ "byte", 1; "word", 2; "dword", 4; "qword", 8;
    "xmmword", 16; "ymmword", 32 ]

(* Parse the inside of a bracketed memory expression:
   terms separated by '+' or '-', each a register, reg*scale, or
   displacement. *)
let parse_mem_body body ~width =
  let buf = Buffer.create 16 in
  let terms = ref [] in
  let flush sign =
    if Buffer.length buf > 0 then begin
      terms := (sign, Buffer.contents buf) :: !terms;
      Buffer.clear buf
    end
  in
  let sign = ref 1 in
  String.iter
    (fun ch ->
      match ch with
      | '+' -> flush !sign; sign := 1
      | '-' -> flush !sign; sign := -1
      | ' ' | '\t' -> ()
      | c -> Buffer.add_char buf c)
    body;
  flush !sign;
  let terms = List.rev !terms in
  let base = ref None and index = ref None and disp = ref 0 in
  let err = ref None in
  let set_err m = if !err = None then err := Some m in
  let add_reg sign name scale =
    if sign < 0 then set_err "negative register term"
    else
      match Register.of_name name with
      | Some (Register.Gpr (Register.W64, g)) ->
        (match scale with
         | None ->
           if !base = None then base := Some g
           else if !index = None then index := Some (g, Operand.S1)
           else set_err "too many registers in address"
         | Some k ->
           (match Operand.scale_of_int k with
            | Some s ->
              if !index = None then index := Some (g, s)
              else set_err "two scaled index registers"
            | None -> set_err "bad scale factor"))
      | Some _ -> set_err "address registers must be 64-bit"
      | None -> set_err ("unknown register: " ^ name)
  in
  List.iter
    (fun (sign, t) ->
      match String.index_opt t '*' with
      | Some k ->
        let l = String.sub t 0 k in
        let r = String.sub t (k + 1) (String.length t - k - 1) in
        (match parse_int r with
         | Some sc -> add_reg sign l (Some sc)
         | None ->
           (match parse_int l with
            | Some sc -> add_reg sign r (Some sc)
            | None -> set_err ("bad scaled term: " ^ t)))
      | None ->
        (match parse_int t with
         | Some v -> disp := !disp + (sign * v)
         | None -> add_reg sign t None))
    terms;
  match !err with
  | Some m -> Error m
  | None ->
    (try Ok (Operand.mem ?base:!base ?index:!index ~disp:!disp ~width ())
     with Invalid_argument m -> Error m)

let parse_operand s =
  let s = trim s in
  if s = "" then Error "empty operand"
  else
    match Register.of_name s with
    | Some r -> Ok (Operand.Reg r)
    | None ->
      if String.contains s '[' then begin
        (* optional "<size> ptr" prefix *)
        let lb = String.index s '[' in
        let head = trim (String.sub s 0 lb) in
        let width =
          let head = String.lowercase_ascii head in
          let head =
            match Filename.check_suffix head "ptr" with
            | true -> trim (Filename.chop_suffix head "ptr")
            | false -> head
          in
          if head = "" then 0
          else match List.assoc_opt head size_keywords with
            | Some w -> w
            | None -> -1
        in
        if width < 0 then Error ("unknown size keyword: " ^ head)
        else
          match String.index_opt s ']' with
          | None -> Error "missing ']'"
          | Some rb when rb > lb ->
            parse_mem_body (String.sub s (lb + 1) (rb - lb - 1)) ~width
          | Some _ -> Error "malformed memory operand"
      end
      else
        match Int64.of_string_opt s with
        | Some v -> Ok (Operand.Imm v)
        | None -> Error ("cannot parse operand: " ^ s)

(* If a memory operand was written without a size keyword, infer its
   width from a sibling register operand, or from the mnemonic for
   vector instructions. *)
let fixup_widths mnem ops =
  let reg_width =
    List.find_map
      (function
        | Operand.Reg (Register.Gpr (w, _)) -> Some (Register.width_bytes w)
        | Operand.Reg (Register.Xmm _) ->
          Some (Inst.vec_mem_width ~w:false ~ymm:false mnem)
        | Operand.Reg (Register.Ymm _) ->
          Some (Inst.vec_mem_width ~w:false ~ymm:true mnem)
        | _ -> None)
      ops
  in
  List.map
    (function
      | Operand.Mem m when m.Operand.width = 0 ->
        (match reg_width with
         | Some w -> Operand.Mem { m with Operand.width = w }
         | None -> Operand.Mem { m with Operand.width = 8 })
      | op -> op)
    ops

let parse_inst s =
  let s = trim s in
  let mnem_str, rest =
    match String.index_opt s ' ' with
    | None -> (s, "")
    | Some k -> (String.sub s 0 k, String.sub s (k + 1) (String.length s - k - 1))
  in
  match Inst.mnemonic_of_name mnem_str with
  | None -> Error ("unknown mnemonic: " ^ mnem_str)
  | Some mnem ->
    let rec parse_ops acc = function
      | [] -> Ok (List.rev acc)
      | o :: rest ->
        (match parse_operand o with
         | Ok op -> parse_ops (op :: acc) rest
         | Error _ as e -> e)
    in
    (match parse_ops [] (split_on_string ~sep:',' rest) with
     | Ok ops ->
       let inst = Inst.make mnem (fixup_widths mnem ops) in
       (* validate the operand shape by encoding *)
       (match Encode.encode inst with
        | _ -> Ok inst
        | exception Encode.Unencodable m ->
          Error ("invalid operand combination: " ^ m))
     | Error m -> Error m)

let parse_block s =
  let strip_comment line =
    match String.index_opt line '#' with
    | Some k -> String.sub line 0 k
    | None -> line
  in
  let lines =
    String.split_on_char '\n' s
    |> List.concat_map (String.split_on_char ';')
    |> List.map (fun l -> trim (strip_comment l))
    |> List.filter (( <> ) "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest ->
      (match parse_inst l with
       | Ok i -> go (i :: acc) rest
       | Error m -> Error (m ^ " (in: " ^ l ^ ")"))
  in
  go [] lines
