exception Decode_error of string * int

type cursor = { data : string; mutable pos : int; start : int }

let fail c msg = raise (Decode_error (msg, c.start))

let byte c =
  if c.pos >= String.length c.data then fail c "truncated instruction";
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let peek c =
  if c.pos >= String.length c.data then fail c "truncated instruction";
  Char.code c.data.[c.pos]

(* Read an n-byte little-endian immediate, sign-extended to 64 bits
   (except n = 8, which is read in full). *)
let imm_le c n =
  let v = ref 0L in
  for k = 0 to n - 1 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte c)) (8 * k))
  done;
  if n = 8 then !v
  else
    let shift = 64 - (8 * n) in
    Int64.shift_right (Int64.shift_left !v shift) shift

let width_of_bytes = function
  | 1 -> Register.W8 | 2 -> Register.W16 | 4 -> Register.W32
  | 8 -> Register.W64
  | _ -> invalid_arg "width_of_bytes"

let gr w n = Operand.Reg (Register.Gpr (width_of_bytes w, Register.gpr_of_index n))

type rm = RmReg of int | RmMem of Operand.mem

(* Parse ModRM (+ SIB + displacement); the memory width is fixed up by
   the caller once the operand size is known. *)
let parse_modrm c ~rex_x ~rex_b =
  let m = byte c in
  let md = m lsr 6 in
  let reg3 = (m lsr 3) land 7 in
  let rm3 = m land 7 in
  if md = 3 then (reg3, RmReg (rm3 lor (if rex_b then 8 else 0)))
  else begin
    let base, index, disp32_forced =
      if rm3 = 4 then begin
        let s = byte c in
        let sc = s lsr 6 in
        let idx3 = (s lsr 3) land 7 in
        let base3 = s land 7 in
        let index =
          if idx3 = 4 && not rex_x then None
          else
            let scale =
              match sc with
              | 0 -> Operand.S1 | 1 -> Operand.S2 | 2 -> Operand.S4
              | _ -> Operand.S8
            in
            Some (Register.gpr_of_index (idx3 lor (if rex_x then 8 else 0)), scale)
        in
        let base =
          if base3 = 5 && md = 0 then None
          else Some (Register.gpr_of_index (base3 lor (if rex_b then 8 else 0)))
        in
        (base, index, base3 = 5 && md = 0)
      end
      else begin
        if md = 0 && rm3 = 5 then fail c "RIP-relative addressing unsupported";
        (Some (Register.gpr_of_index (rm3 lor (if rex_b then 8 else 0))), None, false)
      end
    in
    let disp =
      if md = 1 then Int64.to_int (imm_le c 1)
      else if md = 2 || disp32_forced then Int64.to_int (imm_le c 4)
      else 0
    in
    (reg3, RmMem { Operand.base; index; disp; width = 0 })
  end

let rm_operand ~width = function
  | RmReg n -> gr width n
  | RmMem m -> Operand.Mem { m with Operand.width }

let rm_xmm_operand ~mem_width ~ymm = function
  | RmReg n -> Operand.Reg (if ymm then Register.Ymm n else Register.Xmm n)
  | RmMem m -> Operand.Mem { m with Operand.width = mem_width }

let alu_of_idx = function
  | 0 -> Inst.ADD | 1 -> Inst.OR | 2 -> Inst.ADC | 3 -> Inst.SBB
  | 4 -> Inst.AND | 5 -> Inst.SUB | 6 -> Inst.XOR | _ -> Inst.CMP

let shift_of_digit c = function
  | 0 -> Inst.ROL | 1 -> Inst.ROR | 4 -> Inst.SHL | 5 -> Inst.SHR
  | 7 -> Inst.SAR
  | _ -> fail c "unsupported shift-group digit"

let cl_reg = Operand.Reg (Register.Gpr (Register.W8, Register.RCX))

(* ------------------------------------------------------------------ *)

let decode_sse c ~p66 ~pf2 ~pf3 ~rex ~map =
  let rex_w = rex land 8 <> 0 in
  let rex_r = rex land 4 <> 0 in
  let rex_x = rex land 2 <> 0 in
  let rex_b = rex land 1 <> 0 in
  let pp_key =
    if pf2 then Sse_table.PF2
    else if pf3 then Sse_table.PF3
    else if p66 then Sse_table.P66
    else Sse_table.PNone
  in
  let op = byte c in
  let candidates =
    List.filter
      (fun e -> e.Sse_table.pp = pp_key && e.Sse_table.map = map
                && e.Sse_table.op = op)
      Sse_table.entries
  in
  if candidates = [] then fail c "unknown SSE opcode";
  let reg3, rm = parse_modrm c ~rex_x ~rex_b in
  let entry =
    match candidates with
    | [ e ] -> e
    | _ ->
      (* opcode groups (PSLLD / PSRLD): select by the /digit field *)
      (match
         List.find_opt
           (fun e -> match e.Sse_table.kind with
              | Sse_table.Grp_imm8 d -> d = reg3
              | _ -> false)
           candidates
       with
       | Some e -> e
       | None -> fail c "unknown opcode-group digit")
  in
  let regn = reg3 lor (if rex_r then 8 else 0) in
  (* 66 0F 6E/7E encode MOVD (W = 0) and MOVQ (W = 1). *)
  let mnem =
    if entry.Sse_table.mnem = Inst.MOVD && rex_w then Inst.MOVQ
    else entry.Sse_table.mnem
  in
  let mem_width = Inst.vec_mem_width ~w:rex_w ~ymm:false mnem in
  let xrm = rm_xmm_operand ~mem_width ~ymm:false rm in
  let gw = if rex_w then 8 else 4 in
  (* shuffle-control and shift-count immediates are unsigned bytes *)
  let uimm8 () = Int64.of_int (byte c) in
  match entry.Sse_table.kind with
  | Sse_table.Xx -> Inst.make mnem [ Operand.Reg (Register.Xmm regn); xrm ]
  | Sse_table.Xx_store -> Inst.make mnem [ xrm; Operand.Reg (Register.Xmm regn) ]
  | Sse_table.Xx_imm8 ->
    let v = uimm8 () in
    Inst.make mnem [ Operand.Reg (Register.Xmm regn); xrm; Operand.Imm v ]
  | Sse_table.Grp_imm8 _ ->
    let v = uimm8 () in
    (match rm with
     | RmReg n -> Inst.make mnem [ Operand.Reg (Register.Xmm n); Operand.Imm v ]
     | RmMem _ -> fail c "memory operand in vector shift group")
  | Sse_table.X_gpr ->
    let src = rm_operand ~width:gw rm in
    Inst.make mnem [ Operand.Reg (Register.Xmm regn); src ]
  | Sse_table.Gpr_x ->
    Inst.make mnem [ gr gw regn; xrm ]
  | Sse_table.Gpr_store ->
    let dst = rm_operand ~width:gw rm in
    Inst.make mnem [ dst; Operand.Reg (Register.Xmm regn) ]

let decode_0f c ~p66 ~pf2 ~pf3 ~rex =
  let rex_w = rex land 8 <> 0 in
  let rex_r = rex land 4 <> 0 in
  let rex_x = rex land 2 <> 0 in
  let rex_b = rex land 1 <> 0 in
  let ew = if rex_w then 8 else if p66 then 2 else 4 in
  let modrm () = parse_modrm c ~rex_x ~rex_b in
  let regn reg3 = reg3 lor (if rex_r then 8 else 0) in
  let op2 = peek c in
  if op2 = 0x38 then begin
    let _ = byte c in
    let op3 = peek c in
    if op3 = 0xF0 || op3 = 0xF1 then begin
      let _ = byte c in
      let reg3, rm = modrm () in
      let r = gr ew (regn reg3) in
      let m = rm_operand ~width:ew rm in
      Inst.make Inst.MOVBE (if op3 = 0xF0 then [ r; m ] else [ m; r ])
    end
    else decode_sse c ~p66 ~pf2 ~pf3 ~rex ~map:Sse_table.M0F38
  end
  else if op2 = 0x3A then begin
    let _ = byte c in
    decode_sse c ~p66 ~pf2 ~pf3 ~rex ~map:Sse_table.M0F3A
  end
  else
    match op2 with
    | 0x1F ->
      let _ = byte c in
      let _, rm = modrm () in
      Inst.make Inst.NOPL [ rm_operand ~width:(if p66 then 2 else 4) rm ]
    | 0xAF ->
      let _ = byte c in
      let reg3, rm = modrm () in
      Inst.make Inst.IMUL [ gr ew (regn reg3); rm_operand ~width:ew rm ]
    | 0xB6 | 0xB7 | 0xBE | 0xBF when not pf3 ->
      let o = byte c in
      let mnem = if o < 0xBE then Inst.MOVZX else Inst.MOVSX in
      let srcw = if o land 1 = 0 then 1 else 2 in
      let reg3, rm = modrm () in
      Inst.make mnem [ gr ew (regn reg3); rm_operand ~width:srcw rm ]
    | 0xB8 when pf3 ->
      let _ = byte c in
      let reg3, rm = modrm () in
      Inst.make Inst.POPCNT [ gr ew (regn reg3); rm_operand ~width:ew rm ]
    | 0xBC | 0xBD when pf3 ->
      let o = byte c in
      let mnem = if o = 0xBC then Inst.TZCNT else Inst.LZCNT in
      let reg3, rm = modrm () in
      Inst.make mnem [ gr ew (regn reg3); rm_operand ~width:ew rm ]
    | 0xBC | 0xBD ->
      let o = byte c in
      let mnem = if o = 0xBC then Inst.BSF else Inst.BSR in
      let reg3, rm = modrm () in
      Inst.make mnem [ gr ew (regn reg3); rm_operand ~width:ew rm ]
    | 0xA3 | 0xAB | 0xB3 | 0xBB ->
      let o = byte c in
      let mnem = (match o with
                  | 0xA3 -> Inst.BT | 0xAB -> Inst.BTS | 0xB3 -> Inst.BTR
                  | _ -> Inst.BTC) in
      let reg3, rm = modrm () in
      Inst.make mnem [ rm_operand ~width:ew rm; gr ew (regn reg3) ]
    | 0xA4 | 0xAC ->
      let o = byte c in
      let mnem = if o = 0xA4 then Inst.SHLD else Inst.SHRD in
      let reg3, rm = modrm () in
      let v = imm_le c 1 in
      Inst.make mnem
        [ rm_operand ~width:ew rm; gr ew (regn reg3); Operand.Imm v ]
    | 0xBA ->
      let _ = byte c in
      let ext, rm = modrm () in
      let mnem = (match ext with
                  | 4 -> Inst.BT | 5 -> Inst.BTS | 6 -> Inst.BTR
                  | 7 -> Inst.BTC
                  | _ -> fail c "unsupported 0F BA group digit") in
      let v = imm_le c 1 in
      Inst.make mnem [ rm_operand ~width:ew rm; Operand.Imm v ]
    | _ when op2 >= 0x40 && op2 <= 0x4F ->
      let o = byte c in
      let reg3, rm = modrm () in
      Inst.make (Inst.CMOVcc (Inst.cond_of_code (o land 0xF)))
        [ gr ew (regn reg3); rm_operand ~width:ew rm ]
    | _ when op2 >= 0x80 && op2 <= 0x8F ->
      let o = byte c in
      let v = imm_le c 4 in
      Inst.make (Inst.Jcc (Inst.cond_of_code (o land 0xF))) [ Operand.Imm v ]
    | _ when op2 >= 0x90 && op2 <= 0x9F ->
      let o = byte c in
      let _, rm = modrm () in
      Inst.make (Inst.SETcc (Inst.cond_of_code (o land 0xF)))
        [ rm_operand ~width:1 rm ]
    | _ when op2 >= 0xC8 && op2 <= 0xCF ->
      let o = byte c in
      let w = if rex_w then 8 else 4 in
      Inst.make Inst.BSWAP [ gr w ((o land 7) lor (if rex_b then 8 else 0)) ]
    | _ -> decode_sse c ~p66 ~pf2 ~pf3 ~rex ~map:Sse_table.M0F

let decode_vex c =
  let v0 = byte c in
  let r, x, b, map, w, vvvv, l, pp =
    if v0 = 0xC5 then begin
      let b2 = byte c in
      (b2 land 0x80 = 0, false, false, 1, false,
       lnot (b2 lsr 3) land 0xF, b2 land 4 <> 0, b2 land 3)
    end
    else begin
      let b2 = byte c in
      let b3 = byte c in
      (b2 land 0x80 = 0, b2 land 0x40 = 0, b2 land 0x20 = 0,
       b2 land 0x1F, b3 land 0x80 <> 0,
       lnot (b3 lsr 3) land 0xF, b3 land 4 <> 0, b3 land 3)
    end
  in
  let op = byte c in
  match Sse_table.vfind_by_opcode ~pp ~map ~op ~w with
  | None -> fail c "unknown VEX opcode"
  | Some e ->
    let reg3, rm = parse_modrm c ~rex_x:x ~rex_b:b in
    let regn = reg3 lor (if r then 8 else 0) in
    let vreg n =
      Operand.Reg (if l then Register.Ymm n else Register.Xmm n)
    in
    let mem_width = Inst.vec_mem_width ~w ~ymm:l e.Sse_table.vmnem in
    let xrm = rm_xmm_operand ~mem_width ~ymm:l rm in
    let gw = if w then 8 else 4 in
    (match e.Sse_table.vkind with
     | Sse_table.Vrm ->
       if vvvv <> 0 then fail c "VEX.vvvv must be 1111 for 2-operand form";
       Inst.make e.Sse_table.vmnem [ vreg regn; xrm ]
     | Sse_table.Vrm_store ->
       if vvvv <> 0 then fail c "VEX.vvvv must be 1111 for 2-operand form";
       Inst.make e.Sse_table.vmnem [ xrm; vreg regn ]
     | Sse_table.Vrvm ->
       Inst.make e.Sse_table.vmnem [ vreg regn; vreg vvvv; xrm ]
     | Sse_table.Vgpr_rvm ->
       Inst.make e.Sse_table.vmnem
         [ gr gw regn; gr gw vvvv; rm_operand ~width:gw rm ]
     | Sse_table.Vgpr_rmv ->
       Inst.make e.Sse_table.vmnem
         [ gr gw regn; rm_operand ~width:gw rm; gr gw vvvv ])

let decode_primary c ~p66 ~pf2 ~pf3 ~rex =
  let rex_w = rex land 8 <> 0 in
  let rex_r = rex land 4 <> 0 in
  let rex_x = rex land 2 <> 0 in
  let rex_b = rex land 1 <> 0 in
  let ew = if rex_w then 8 else if p66 then 2 else 4 in
  let modrm () = parse_modrm c ~rex_x ~rex_b in
  let regn reg3 = reg3 lor (if rex_r then 8 else 0) in
  let full_imm_size = if ew = 2 then 2 else 4 in
  let op = byte c in
  if op = 0x0F then decode_0f c ~p66 ~pf2 ~pf3 ~rex
  else if op < 0x40 && op land 7 <= 3 then begin
    let mnem = alu_of_idx (op lsr 3) in
    let w = if op land 1 = 0 then 1 else ew in
    let dir = op land 2 <> 0 in
    let reg3, rm = modrm () in
    let r = gr w (regn reg3) in
    let m = rm_operand ~width:w rm in
    Inst.make mnem (if dir then [ r; m ] else [ m; r ])
  end
  else if op >= 0x50 && op <= 0x57 then
    Inst.make Inst.PUSH [ gr 8 ((op land 7) lor (if rex_b then 8 else 0)) ]
  else if op >= 0x58 && op <= 0x5F then
    Inst.make Inst.POP [ gr 8 ((op land 7) lor (if rex_b then 8 else 0)) ]
  else if op >= 0x70 && op <= 0x7F then
    let v = imm_le c 1 in
    Inst.make (Inst.Jcc (Inst.cond_of_code (op land 0xF))) [ Operand.Imm v ]
  else if op >= 0xB0 && op <= 0xB7 then
    let n = (op land 7) lor (if rex_b then 8 else 0) in
    let v = imm_le c 1 in
    Inst.make Inst.MOV [ gr 1 n; Operand.Imm v ]
  else if op >= 0xB8 && op <= 0xBF then begin
    let n = (op land 7) lor (if rex_b then 8 else 0) in
    let isz = if rex_w then 8 else if p66 then 2 else 4 in
    let v = imm_le c isz in
    Inst.make Inst.MOV [ gr ew n; Operand.Imm v ]
  end
  else
    match op with
    | 0x63 ->
      let reg3, rm = modrm () in
      Inst.make Inst.MOVSXD [ gr 8 (regn reg3); rm_operand ~width:4 rm ]
    | 0x69 | 0x6B ->
      let reg3, rm = modrm () in
      let isz = if op = 0x6B then 1 else full_imm_size in
      let v = imm_le c isz in
      Inst.make Inst.IMUL
        [ gr ew (regn reg3); rm_operand ~width:ew rm; Operand.Imm v ]
    | 0x80 | 0x81 | 0x83 ->
      let ext, rm = modrm () in
      let w = if op = 0x80 then 1 else ew in
      let isz = if op = 0x81 then full_imm_size else 1 in
      let v = imm_le c isz in
      Inst.make (alu_of_idx ext) [ rm_operand ~width:w rm; Operand.Imm v ]
    | 0x84 | 0x85 ->
      let reg3, rm = modrm () in
      let w = if op = 0x84 then 1 else ew in
      Inst.make Inst.TEST [ rm_operand ~width:w rm; gr w (regn reg3) ]
    | 0x86 | 0x87 ->
      let reg3, rm = modrm () in
      let w = if op = 0x86 then 1 else ew in
      Inst.make Inst.XCHG [ rm_operand ~width:w rm; gr w (regn reg3) ]
    | 0x88 | 0x89 ->
      let reg3, rm = modrm () in
      let w = if op = 0x88 then 1 else ew in
      Inst.make Inst.MOV [ rm_operand ~width:w rm; gr w (regn reg3) ]
    | 0x8A | 0x8B ->
      let reg3, rm = modrm () in
      let w = if op = 0x8A then 1 else ew in
      Inst.make Inst.MOV [ gr w (regn reg3); rm_operand ~width:w rm ]
    | 0x8D ->
      let reg3, rm = modrm () in
      (match rm with
       | RmMem _ ->
         Inst.make Inst.LEA [ gr ew (regn reg3); rm_operand ~width:ew rm ]
       | RmReg _ -> fail c "LEA with register source")
    | 0x90 -> Inst.make Inst.NOP []
    | 0x98 -> Inst.make (if rex_w then Inst.CDQE else Inst.CWDE) []
    | 0x99 -> Inst.make (if rex_w then Inst.CQO else Inst.CDQ) []
    | 0xF5 -> Inst.make Inst.CMC []
    | 0xF8 -> Inst.make Inst.CLC []
    | 0xF9 -> Inst.make Inst.STC []
    | 0xC0 | 0xC1 ->
      let ext, rm = modrm () in
      let w = if op = 0xC0 then 1 else ew in
      let v = imm_le c 1 in
      Inst.make (shift_of_digit c ext) [ rm_operand ~width:w rm; Operand.Imm v ]
    | 0xD2 | 0xD3 ->
      let ext, rm = modrm () in
      let w = if op = 0xD2 then 1 else ew in
      Inst.make (shift_of_digit c ext) [ rm_operand ~width:w rm; cl_reg ]
    | 0xC6 | 0xC7 ->
      let ext, rm = modrm () in
      if ext <> 0 then fail c "unsupported C6/C7 group digit";
      let w = if op = 0xC6 then 1 else ew in
      let isz = if w = 1 then 1 else full_imm_size in
      let v = imm_le c isz in
      Inst.make Inst.MOV [ rm_operand ~width:w rm; Operand.Imm v ]
    | 0xE9 ->
      let v = imm_le c 4 in
      Inst.make Inst.JMP [ Operand.Imm v ]
    | 0xEB ->
      let v = imm_le c 1 in
      Inst.make Inst.JMP [ Operand.Imm v ]
    | 0xF6 | 0xF7 ->
      let ext, rm = modrm () in
      let w = if op = 0xF6 then 1 else ew in
      (match ext with
       | 0 ->
         let isz = if w = 1 then 1 else full_imm_size in
         let v = imm_le c isz in
         Inst.make Inst.TEST [ rm_operand ~width:w rm; Operand.Imm v ]
       | 2 -> Inst.make Inst.NOT [ rm_operand ~width:w rm ]
       | 3 -> Inst.make Inst.NEG [ rm_operand ~width:w rm ]
       | 4 -> Inst.make Inst.MUL [ rm_operand ~width:w rm ]
       | 6 -> Inst.make Inst.DIV [ rm_operand ~width:w rm ]
       | 7 -> Inst.make Inst.IDIV [ rm_operand ~width:w rm ]
       | _ -> fail c "unsupported F6/F7 group digit")
    | 0xFE | 0xFF ->
      let ext, rm = modrm () in
      let w = if op = 0xFE then 1 else ew in
      (match ext with
       | 0 -> Inst.make Inst.INC [ rm_operand ~width:w rm ]
       | 1 -> Inst.make Inst.DEC [ rm_operand ~width:w rm ]
       | _ -> fail c "unsupported FE/FF group digit")
    | _ -> fail c (Printf.sprintf "unknown opcode 0x%02X" op)

let decode_one data ~pos =
  let c = { data; pos; start = pos } in
  (* legacy prefixes, then an optional REX, then the opcode *)
  let p66 = ref false and pf2 = ref false and pf3 = ref false in
  let rec legacy () =
    match peek c with
    | 0x66 -> p66 := true; c.pos <- c.pos + 1; legacy ()
    | 0xF2 -> pf2 := true; c.pos <- c.pos + 1; legacy ()
    | 0xF3 -> pf3 := true; c.pos <- c.pos + 1; legacy ()
    | _ -> ()
  in
  legacy ();
  let rex =
    let b = peek c in
    if b >= 0x40 && b <= 0x4F then begin
      c.pos <- c.pos + 1;
      b land 0xF
    end
    else 0
  in
  let inst =
    let b = peek c in
    if (b = 0xC4 || b = 0xC5) && not (!p66 || !pf2 || !pf3) && rex = 0 then
      decode_vex c
    else decode_primary c ~p66:!p66 ~pf2:!pf2 ~pf3:!pf3 ~rex
  in
  (inst, c.pos - pos)

let instructions data =
  let rec go pos acc =
    if pos >= String.length data then List.rev acc
    else
      let inst, len = decode_one data ~pos in
      go (pos + len) (inst :: acc)
  in
  go 0 []

let decode_block data =
  let insts = instructions data in
  let bytes, layouts = Encode.encode_block insts in
  if bytes <> data then
    raise (Decode_error ("re-encoding mismatch (non-canonical input)", 0));
  layouts
