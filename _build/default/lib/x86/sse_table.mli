(** Shared opcode table for SSE (legacy-prefixed) and AVX (VEX-encoded)
    instructions, used by both the encoder and the decoder. *)

(** Mandatory legacy prefix of an SSE opcode. *)
type pp = PNone | P66 | PF2 | PF3

(** Opcode map (escape sequence). *)
type omap = M0F | M0F38 | M0F3A

(** Operand pattern of a table entry. *)
type kind =
  | Xx              (** xmm <- xmm/m *)
  | Xx_store        (** xmm/m <- xmm *)
  | Xx_imm8         (** xmm <- xmm/m, imm8 *)
  | X_gpr           (** xmm <- r/m (GPR-width source; W selects 32/64) *)
  | Gpr_x           (** r <- xmm/m *)
  | Gpr_store       (** r/m <- xmm *)
  | Grp_imm8 of int (** opcode-group shift: /digit with imm8, rm is xmm *)

type entry = { mnem : Inst.mnemonic; pp : pp; map : omap; op : int; kind : kind }

(** All legacy-SSE entries. Keys [(pp, map, op)] are unique except that
    MOVD/MOVQ share 0x6E/0x7E (distinguished by REX.W at decode). *)
val entries : entry list

(** [find_by_mnem m] lists the entries for mnemonic [m] (a data-movement
    mnemonic has both a load and a store entry). *)
val find_by_mnem : Inst.mnemonic -> entry list

(** [find_by_opcode pp map op] finds the decoding entry, if any. *)
val find_by_opcode : pp -> omap -> int -> entry option

(** VEX operand pattern. *)
type vkind =
  | Vrm        (** dst <- src (vvvv unused) *)
  | Vrm_store  (** dst/m <- src *)
  | Vrvm       (** dst <- src1, src2/m (vvvv = src1) *)
  | Vgpr_rvm   (** BMI ANDN-style: GPR dst(reg), src1(vvvv), src2(rm) *)
  | Vgpr_rmv   (** BMI SHLX-style: GPR dst(reg), src(rm), count(vvvv) *)

type ventry = {
  vmnem : Inst.mnemonic;
  vpp : int;           (** VEX.pp: 0 = none, 1 = 66, 2 = F3, 3 = F2 (Intel SDM) *)
  vmap : int;          (** 1 = 0F, 2 = 0F38, 3 = 0F3A *)
  vop : int;
  vw : bool option;    (** [Some b]: W must equal [b]; [None]: W ignored *)
  vkind : vkind;
}

val ventries : ventry list
val vfind_by_mnem : Inst.mnemonic -> ventry list
val vfind_by_opcode : pp:int -> map:int -> op:int -> w:bool -> ventry option
