(** Instruction operands: registers, memory references, and immediates. *)

(** Index scale factor of a memory operand. *)
type scale = S1 | S2 | S4 | S8

(** A memory reference [\[base + index*scale + disp\]]. The index
    register must not be RSP (not encodable). [width] is the access
    size in bytes of the memory operand (1, 2, 4, 8, 16, or 32). *)
type mem = {
  base : Register.gpr option;
  index : (Register.gpr * scale) option;
  disp : int;
  width : int;
}

type t =
  | Reg of Register.t
  | Mem of mem
  | Imm of int64

val equal : t -> t -> bool

val scale_factor : scale -> int
val scale_of_int : int -> scale option

(** [mem ?base ?index ?disp ~width ()] builds a memory operand.
    @raise Invalid_argument if the index register is RSP. *)
val mem :
  ?base:Register.gpr ->
  ?index:Register.gpr * scale ->
  ?disp:int ->
  width:int ->
  unit ->
  t

(** Convenience constructors. *)
val reg : Register.t -> t

val imm : int -> t

(** [fits_i8 v] ([fits_i32 v]) holds when [v] is representable as a
    sign-extended 8-bit (32-bit) immediate. *)
val fits_i8 : int64 -> bool

val fits_i32 : int64 -> bool

(** Intel-syntax printer, e.g. [qword ptr \[rax+rbx*4+16\]]. *)
val pp : Format.formatter -> t -> unit
