let round2 v = Float.round (v *. 100.0) /. 100.0

let mape pairs =
  let used = List.filter (fun (m, _) -> m <> 0.0) pairs in
  match used with
  | [] -> invalid_arg "Error_metrics.mape: no usable pairs"
  | _ ->
    let total =
      List.fold_left
        (fun acc (m, p) -> acc +. abs_float ((m -. p) /. m))
        0.0 used
    in
    total /. float_of_int (List.length used)

let within ~tol pairs =
  match pairs with
  | [] -> invalid_arg "Error_metrics.within"
  | _ ->
    let ok =
      List.length
        (List.filter
           (fun (m, p) -> m <> 0.0 && abs_float ((m -. p) /. m) <= tol)
           pairs)
    in
    float_of_int ok /. float_of_int (List.length pairs)
