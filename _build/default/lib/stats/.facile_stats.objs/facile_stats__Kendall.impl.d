lib/stats/kendall.ml: Array
