lib/stats/error_metrics.ml: Float List
