lib/stats/error_metrics.mli:
