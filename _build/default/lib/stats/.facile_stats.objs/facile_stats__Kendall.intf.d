lib/stats/kendall.mli:
