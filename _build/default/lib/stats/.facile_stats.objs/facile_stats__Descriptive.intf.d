lib/stats/descriptive.mli:
