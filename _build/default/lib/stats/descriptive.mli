(** Small descriptive-statistics helpers for the benchmark reports. *)

val mean : float list -> float
val geomean : float list -> float
val stddev : float list -> float
val minimum : float list -> float
val maximum : float list -> float

(** [percentile p l] for [p] in [0, 100], by linear interpolation. *)
val percentile : float -> float list -> float

val median : float list -> float

(** [histogram ~buckets l] returns [(lo, hi, count)] rows covering
    [min, max] with equal-width buckets. *)
val histogram : buckets:int -> float list -> (float * float * int) list
