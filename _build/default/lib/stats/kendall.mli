(** Kendall's tau-b rank-correlation coefficient, with tie correction,
    as used for throughput-predictor comparison [24].

    [tau_b] runs in O(n log n) (merge-sort discordance counting);
    [tau_b_naive] is the O(n²) definition, kept as the property-test
    oracle. *)

(** @raise Invalid_argument on lists of length < 2 or mismatched
    lengths. Returns [nan] when either variable is constant. *)
val tau_b : (float * float) list -> float

val tau_b_naive : (float * float) list -> float
