(** Accuracy metrics used in the paper's evaluation (§6.2). *)

(** [mape pairs] — mean absolute percentage error of [(measured,
    predicted)] pairs, as a fraction (0.01 = 1%). Pairs with a zero
    measurement are skipped (matching the BHive evaluation convention).
    @raise Invalid_argument on an empty list. *)
val mape : (float * float) list -> float

(** [round2 v] rounds to two decimal digits — predictions and
    measurements are rounded the same way before comparison, as in the
    paper. *)
val round2 : float -> float

(** Fraction of pairs where the prediction is within [tol] (relative)
    of the measurement. *)
val within : tol:float -> (float * float) list -> float
