let sign a b = if a < b then -1 else if a > b then 1 else 0

let tau_b_naive pairs =
  let arr = Array.of_list pairs in
  let n = Array.length arr in
  if n < 2 then invalid_arg "Kendall.tau_b_naive";
  let cd = ref 0 and nx = ref 0 and ny = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let x1, y1 = arr.(i) and x2, y2 = arr.(j) in
      let sx = sign x1 x2 and sy = sign y1 y2 in
      cd := !cd + (sx * sy);
      if sx <> 0 then incr nx;
      if sy <> 0 then incr ny
    done
  done;
  if !nx = 0 || !ny = 0 then nan
  else float_of_int !cd /. sqrt (float_of_int !nx *. float_of_int !ny)

(* Merge-sort based counting of discordant pairs: after sorting by
   (x, y), the number of inversions of the y sequence equals the number
   of discordant pairs (x-ties contribute no inversions because their y
   values are sorted ascending). *)
let count_inversions (a : float array) =
  let n = Array.length a in
  let buf = Array.make n 0.0 in
  let inv = ref 0 in
  let rec sort lo hi =
    (* [lo, hi) *)
    if hi - lo > 1 then begin
      let mid = (lo + hi) / 2 in
      sort lo mid;
      sort mid hi;
      let i = ref lo and j = ref mid and k = ref lo in
      while !i < mid && !j < hi do
        if a.(!i) <= a.(!j) then begin
          buf.(!k) <- a.(!i); incr i
        end
        else begin
          buf.(!k) <- a.(!j);
          incr j;
          inv := !inv + (mid - !i)
        end;
        incr k
      done;
      while !i < mid do buf.(!k) <- a.(!i); incr i; incr k done;
      while !j < hi do buf.(!k) <- a.(!j); incr j; incr k done;
      Array.blit buf lo a lo (hi - lo)
    end
  in
  sort 0 n;
  !inv

(* Count SUM over tie-groups of g*(g-1)/2 for the key function. *)
let tie_pairs sorted key =
  let n = Array.length sorted in
  let total = ref 0 in
  let i = ref 0 in
  while !i < n do
    let j = ref (!i + 1) in
    while !j < n && key sorted.(!j) = key sorted.(!i) do incr j done;
    let g = !j - !i in
    total := !total + (g * (g - 1) / 2);
    i := !j
  done;
  !total

let tau_b pairs =
  let arr = Array.of_list pairs in
  let n = Array.length arr in
  if n < 2 then invalid_arg "Kendall.tau_b";
  Array.sort
    (fun (x1, y1) (x2, y2) ->
      match compare x1 x2 with 0 -> compare y1 y2 | c -> c)
    arr;
  let tot = n * (n - 1) / 2 in
  let xtie = tie_pairs arr fst in
  let xytie = tie_pairs arr (fun p -> p) in
  let ys = Array.map snd arr in
  let dis = count_inversions (Array.copy ys) in
  (* y ties: sort by y *)
  let by_y = Array.copy arr in
  Array.sort (fun (_, y1) (_, y2) -> compare y1 y2) by_y;
  let ytie = tie_pairs by_y snd in
  let con_minus_dis =
    float_of_int (tot - xtie - ytie + xytie - (2 * dis))
  in
  let denom =
    sqrt (float_of_int (tot - xtie) *. float_of_int (tot - ytie))
  in
  if denom = 0.0 then nan else con_minus_dis /. denom
