let req l = if l = [] then invalid_arg "Descriptive: empty list"

let mean l =
  req l;
  List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let geomean l =
  req l;
  exp (mean (List.map (fun x -> log (Float.max x 1e-300)) l))

let stddev l =
  req l;
  let m = mean l in
  sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) l))

let minimum l = req l; List.fold_left Float.min infinity l
let maximum l = req l; List.fold_left Float.max neg_infinity l

let percentile p l =
  req l;
  let arr = Array.of_list l in
  Array.sort compare arr;
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
  end

let median l = percentile 50.0 l

let histogram ~buckets l =
  req l;
  if buckets <= 0 then invalid_arg "Descriptive.histogram";
  let lo = minimum l and hi = maximum l in
  let width =
    if hi = lo then 1.0 else (hi -. lo) /. float_of_int buckets
  in
  let counts = Array.make buckets 0 in
  List.iter
    (fun x ->
      let idx =
        min (buckets - 1) (int_of_float ((x -. lo) /. width))
      in
      counts.(idx) <- counts.(idx) + 1)
    l;
  List.init buckets (fun i ->
      ( lo +. (float_of_int i *. width),
        lo +. (float_of_int (i + 1) *. width),
        counts.(i) ))
