open Facile_x86
open Facile_uarch

exception Unsupported of string

type uop_kind =
  | Load
  | Compute
  | Store_addr
  | Store_data
  | Div_pseudo

type uop = { kind : uop_kind; ports : Port.t }

type t = {
  fused_uops : int;
  issued_uops : int;
  dispatched : uop list;
  latency : int;
  complex_decode : bool;
  available_simple_dec : int;
  eliminated : bool;
  zero_idiom : bool;
  macro_fusible : bool;
}

let is_zero_idiom (i : Inst.t) =
  match i.Inst.mnem, i.Inst.ops with
  | (Inst.XOR | Inst.SUB), [ Operand.Reg a; Operand.Reg b ] ->
    Register.equal a b
    && (match a with
        | Register.Gpr ((Register.W32 | Register.W64), _) -> true
        | _ -> false)
  | (Inst.PXOR | Inst.XORPS | Inst.XORPD | Inst.PSUBD),
    [ Operand.Reg a; Operand.Reg b ] ->
    Register.equal a b
  | (Inst.VPXOR | Inst.VXORPS), [ Operand.Reg _; Operand.Reg a; Operand.Reg b ] ->
    Register.equal a b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Era helpers and per-family latencies                                *)

let pre_skl cfg =
  match cfg.Config.arch with
  | Config.SNB | Config.IVB | Config.HSW | Config.BDW -> true
  | _ -> false

let snb_ivb cfg =
  match cfg.Config.arch with Config.SNB | Config.IVB -> true | _ -> false

let icl_plus cfg =
  match cfg.Config.arch with
  | Config.ICL | Config.TGL | Config.RKL -> true
  | _ -> false

let fp_add_lat cfg = if pre_skl cfg then 3 else 4

let fp_mul_lat cfg =
  match cfg.Config.arch with
  | Config.SNB | Config.IVB | Config.HSW -> 5
  | Config.BDW -> 3
  | _ -> 4

let fma_lat cfg =
  match cfg.Config.arch with Config.HSW | Config.BDW -> 5 | _ -> 4

(* (latency, divider occupancy in cycles) *)
let div_scalar_single cfg =
  if snb_ivb cfg then (14, 7) else if pre_skl cfg then (13, 7) else (11, 3)

let div_scalar_double cfg =
  if snb_ivb cfg then (22, 14) else if pre_skl cfg then (20, 8) else (14, 4)

let sqrt_single cfg = if snb_ivb cfg then (14, 7) else (12, 3)
let sqrt_double cfg = if snb_ivb cfg then (21, 14) else (18, 6)

(* ------------------------------------------------------------------ *)

type profile = { comp : uop list; lat : int; fusible : bool }

let cu ports = { kind = Compute; ports }
let du ports = { kind = Div_pseudo; ports }
let rep n x = List.init n (fun _ -> x)

let prof ?(fusible = false) comp lat = { comp; lat; fusible }

(* Divider-style operation: one compute µop plus (occ - 1) cycles of
   extra divider occupancy. *)
let divider_prof pm (lat, occ) =
  prof (cu pm.Config.divider :: rep (max 0 (occ - 1)) (du pm.Config.divider)) lat

let unsupported i = raise (Unsupported (Inst.to_string i))

let int_width (i : Inst.t) =
  let rec go = function
    | [] -> 8
    | Operand.Reg (Register.Gpr (w, _)) :: _ -> Register.width_bytes w
    | Operand.Mem m :: _ -> m.Operand.width
    | _ :: rest -> go rest
  in
  go i.Inst.ops

let has_mem_src (i : Inst.t) =
  match i.Inst.ops with
  | _ :: rest -> List.exists (function Operand.Mem _ -> true | _ -> false) rest
  | [] -> false

let ymm_operand (i : Inst.t) =
  List.exists
    (function Operand.Reg (Register.Ymm _) -> true
            | Operand.Mem m -> m.Operand.width = 32
            | _ -> false)
    i.Inst.ops

(* Compute-µop profile assuming register operands; memory µops are
   added by [describe]. [comp = []] marks pure data movement where the
   load or store µops do all the work. *)
let compute_profile cfg (i : Inst.t) : profile =
  let pm = cfg.Config.pm in
  let alu1 ~fusible = prof ~fusible [ cu pm.Config.alu ] 1 in
  let mem_src = has_mem_src i in
  let mem_dst =
    match i.Inst.ops with Operand.Mem _ :: _ -> true | _ -> false
  in
  match i.Inst.mnem with
  | Inst.ADD | Inst.SUB | Inst.AND ->
    alu1 ~fusible:(not (snb_ivb cfg))
  | Inst.OR | Inst.XOR -> alu1 ~fusible:false
  | Inst.CMP | Inst.TEST -> alu1 ~fusible:true
  | Inst.ADC | Inst.SBB ->
    if pre_skl cfg && cfg.Config.arch <> Config.BDW then
      prof [ cu pm.Config.alu; cu pm.Config.alu ] 2
    else prof [ cu pm.Config.alu ] 1
  | Inst.INC | Inst.DEC -> alu1 ~fusible:(not (snb_ivb cfg))
  | Inst.NEG | Inst.NOT -> alu1 ~fusible:false
  | Inst.MOV ->
    if mem_src || mem_dst then prof [] 0 else alu1 ~fusible:false
  | Inst.MOVZX | Inst.MOVSX | Inst.MOVSXD ->
    if mem_src then prof [] 0 else alu1 ~fusible:false
  | Inst.LEA ->
    let m =
      match i.Inst.ops with
      | [ _; Operand.Mem m ] -> m
      | _ -> unsupported i
    in
    let three_component =
      m.Operand.base <> None && m.Operand.index <> None && m.Operand.disp <> 0
    in
    if three_component then prof [ cu pm.Config.slow_lea ] 3
    else prof [ cu pm.Config.lea ] 1
  | Inst.IMUL -> prof [ cu pm.Config.slow_int ] 3
  | Inst.MUL | Inst.IDIV | Inst.DIV ->
    let w = int_width i in
    (match i.Inst.mnem with
     | Inst.MUL ->
       if w = 8 then prof [ cu pm.Config.slow_int; cu pm.Config.alu ] 3
       else
         prof [ cu pm.Config.slow_int; cu pm.Config.alu; cu pm.Config.alu ] 4
     | _ ->
       (* integer division: microcoded; much faster from ICL on *)
       let lat, divider_occ, helpers =
         if icl_plus cfg then (18, 4, 4)
         else if w = 8 then (40, 12, 8)
         else (26, 6, 4)
       in
       prof
         (cu pm.Config.divider
          :: rep (divider_occ - 1) (du pm.Config.divider)
          @ rep helpers (cu pm.Config.alu))
         lat)
  | Inst.SHL | Inst.SHR | Inst.SAR | Inst.ROL | Inst.ROR ->
    (match i.Inst.ops with
     | [ _; Operand.Imm _ ] -> prof [ cu pm.Config.shift ] 1
     | _ -> prof [ cu pm.Config.shift; cu pm.Config.shift ] 2)
  | Inst.XCHG ->
    prof [ cu pm.Config.alu; cu pm.Config.alu; cu pm.Config.alu ] 1
  | Inst.BSWAP ->
    if int_width i = 8 then prof [ cu pm.Config.alu; cu pm.Config.alu ] 2
    else prof [ cu pm.Config.alu ] 1
  | Inst.PUSH | Inst.POP -> prof [] 0
  | Inst.BSF | Inst.BSR | Inst.POPCNT | Inst.LZCNT | Inst.TZCNT ->
    prof [ cu pm.Config.slow_int ] 3
  | Inst.CDQ | Inst.CQO | Inst.CWDE | Inst.CDQE ->
    prof [ cu pm.Config.shift ] 1
  | Inst.SHLD | Inst.SHRD -> prof [ cu pm.Config.slow_int ] 3
  | Inst.BT -> prof [ cu pm.Config.shift ] 1
  | Inst.BTS | Inst.BTR | Inst.BTC -> prof [ cu pm.Config.shift ] 1
  | Inst.MOVBE -> prof [ cu pm.Config.alu ] 1
  | Inst.CLC | Inst.STC | Inst.CMC -> prof [ cu pm.Config.alu ] 1
  | Inst.ANDN -> prof [ cu pm.Config.alu ] 1
  | Inst.BZHI -> prof [ cu pm.Config.alu ] 1
  | Inst.SHLX | Inst.SHRX | Inst.SARX -> prof [ cu pm.Config.shift ] 1
  | Inst.NOP | Inst.NOPL -> prof [] 0
  | Inst.JMP | Inst.Jcc _ -> prof [ cu pm.Config.branch ] 1
  | Inst.SETcc _ -> prof [ cu pm.Config.shift ] 1
  | Inst.CMOVcc _ ->
    if pre_skl cfg then prof [ cu pm.Config.alu; cu pm.Config.alu ] 2
    else prof [ cu pm.Config.branch ] 1
  (* ----- SSE/AVX data movement ----- *)
  | Inst.MOVAPS | Inst.MOVUPS | Inst.MOVAPD | Inst.MOVDQA | Inst.MOVDQU
  | Inst.VMOVAPS | Inst.VMOVUPS | Inst.VMOVDQA | Inst.VMOVDQU ->
    if mem_src || mem_dst then prof [] 0 else prof [ cu pm.Config.vec_alu ] 1
  | Inst.MOVSS | Inst.MOVSD ->
    if mem_src || mem_dst then prof [] 0 else prof [ cu pm.Config.shuffle ] 1
  | Inst.MOVD ->
    if mem_src || mem_dst then prof [] 0
    else (match i.Inst.ops with
          | [ Operand.Reg (Register.Xmm _); _ ] ->
            prof [ cu pm.Config.shuffle ] 2
          | _ -> prof [ cu (Port.singleton 0) ] 2)
  | Inst.MOVQ ->
    if mem_src || mem_dst then prof [] 0
    else (match i.Inst.ops with
          | [ Operand.Reg (Register.Xmm _); Operand.Reg (Register.Xmm _) ] ->
            prof [ cu pm.Config.vec_alu ] 1
          | [ Operand.Reg (Register.Xmm _); _ ] ->
            prof [ cu pm.Config.shuffle ] 2
          | _ -> prof [ cu (Port.singleton 0) ] 2)
  (* ----- FP arithmetic ----- *)
  | Inst.ADDPS | Inst.ADDPD | Inst.ADDSS | Inst.ADDSD
  | Inst.SUBPS | Inst.SUBPD | Inst.SUBSS | Inst.SUBSD
  | Inst.MINPS | Inst.MAXPS | Inst.MINPD | Inst.MAXPD
  | Inst.MINSS | Inst.MAXSS | Inst.MINSD | Inst.MAXSD
  | Inst.VADDPS | Inst.VADDPD | Inst.VSUBPS | Inst.VMINPS | Inst.VMAXPS ->
    prof [ cu pm.Config.fp_add ] (fp_add_lat cfg)
  | Inst.HADDPS ->
    prof [ cu pm.Config.shuffle; cu pm.Config.shuffle; cu pm.Config.fp_add ] 6
  | Inst.ROUNDSD -> prof [ cu pm.Config.fp_add ] 8
  | Inst.CVTDQ2PS | Inst.CVTPS2DQ | Inst.CVTTPS2DQ ->
    prof [ cu pm.Config.fp_add ] (fp_add_lat cfg)
  | Inst.MULPS | Inst.MULPD | Inst.MULSS | Inst.MULSD
  | Inst.VMULPS | Inst.VMULPD ->
    prof [ cu pm.Config.fp_mul ] (fp_mul_lat cfg)
  | Inst.DIVSS -> divider_prof pm (div_scalar_single cfg)
  | Inst.DIVPS | Inst.VDIVPS ->
    let lat, occ = div_scalar_single cfg in
    let occ = if ymm_operand i then occ * 2 else occ in
    divider_prof pm (lat, occ)
  | Inst.DIVSD -> divider_prof pm (div_scalar_double cfg)
  | Inst.DIVPD -> divider_prof pm (div_scalar_double cfg)
  | Inst.SQRTSS -> divider_prof pm (sqrt_single cfg)
  | Inst.SQRTPS | Inst.VSQRTPS ->
    let lat, occ = sqrt_single cfg in
    let occ = if ymm_operand i then occ * 2 else occ in
    divider_prof pm (lat, occ)
  | Inst.SQRTSD | Inst.SQRTPD -> divider_prof pm (sqrt_double cfg)
  | Inst.ANDPS | Inst.ANDPD | Inst.ORPS | Inst.XORPS | Inst.XORPD
  | Inst.VXORPS | Inst.VANDPS ->
    prof [ cu pm.Config.vec_alu ] 1
  | Inst.PCMPEQB | Inst.PCMPEQD | Inst.PCMPGTD
  | Inst.PMAXSD | Inst.PMINSD | Inst.PMAXUB | Inst.PMINUB ->
    prof [ cu pm.Config.vec_alu ] 1
  | Inst.PSHUFB | Inst.PALIGNR | Inst.PACKSSDW
  | Inst.PSLLDQ | Inst.PSRLDQ
  | Inst.SHUFPS | Inst.UNPCKHPS | Inst.UNPCKLPD ->
    prof [ cu pm.Config.shuffle ] 1
  | Inst.UCOMISS | Inst.UCOMISD -> prof [ cu pm.Config.fp_add ] 2
  (* ----- SIMD integer ----- *)
  | Inst.PXOR | Inst.POR | Inst.PAND | Inst.VPXOR | Inst.VPAND
  | Inst.VPOR ->
    prof [ cu pm.Config.vec_alu ] 1
  | Inst.PADDB | Inst.PADDD | Inst.PADDQ | Inst.PSUBD | Inst.VPADDD ->
    prof [ cu pm.Config.vec_alu ] 1
  | Inst.PMULLD | Inst.VPMULLD ->
    if snb_ivb cfg then prof [ cu pm.Config.vec_imul ] 5
    else prof [ cu pm.Config.vec_imul; cu pm.Config.vec_imul ] 10
  | Inst.PMULUDQ -> prof [ cu pm.Config.vec_imul ] 5
  | Inst.PUNPCKLDQ | Inst.PSHUFD -> prof [ cu pm.Config.shuffle ] 1
  | Inst.PSLLD | Inst.PSRLD -> prof [ cu pm.Config.vec_shift ] 1
  (* ----- conversions ----- *)
  | Inst.CVTSI2SD | Inst.CVTSI2SS ->
    prof [ cu pm.Config.shuffle; cu pm.Config.fp_add ] 6
  | Inst.CVTTSD2SI ->
    prof [ cu pm.Config.fp_add; cu (Port.singleton 0) ] 6
  | Inst.CVTSS2SD | Inst.CVTSD2SS ->
    prof [ cu pm.Config.fp_add; cu pm.Config.shuffle ] 5
  (* ----- FMA ----- *)
  | Inst.VFMADD231PS | Inst.VFMADD231PD | Inst.VFMADD231SS
  | Inst.VFMADD231SD | Inst.VFMADD132PS | Inst.VFMADD213PS ->
    prof [ cu pm.Config.fp_fma ] (fma_lat cfg)

let check_supported cfg (i : Inst.t) =
  (* FMA and BMI arrived with Haswell, together with AVX2 *)
  let fma_or_bmi =
    match i.Inst.mnem with
    | Inst.VFMADD231PS | Inst.VFMADD231PD | Inst.VFMADD231SS
    | Inst.VFMADD231SD | Inst.VFMADD132PS | Inst.VFMADD213PS
    | Inst.ANDN | Inst.BZHI | Inst.SHLX | Inst.SHRX | Inst.SARX
    | Inst.MOVBE -> true
    | _ -> false
  in
  let avx2_int =
    (match i.Inst.mnem with
     | Inst.VPXOR | Inst.VPADDD | Inst.VPMULLD | Inst.VPAND | Inst.VPOR ->
       true
     | _ -> false)
    && ymm_operand i
  in
  if (fma_or_bmi || avx2_int) && not cfg.Config.has_avx2_fma then
    unsupported i

(* Unlamination of micro-fused µops at rename (see DESIGN.md):
   pre-SKL any indexed addressing unlaminates; from SKL on only
   instructions with an index register and at least two other register
   sources (approximating the operand-count rule). *)
let unlaminates cfg (i : Inst.t) =
  match Inst.mem_operand i with
  | None -> false
  | Some m ->
    (match m.Operand.index with
     | None -> false
     | Some _ ->
       if not cfg.Config.unlamination_simple_ok then true
       else
         let reg_sources =
           List.length
             (List.filter
                (function Operand.Reg _ -> true | _ -> false)
                i.Inst.ops)
         in
         reg_sources >= 2)

let eliminated_desc cfg ~zero_idiom =
  { fused_uops = 1;
    issued_uops = 1;
    dispatched = [];
    latency = 0;
    complex_decode = false;
    available_simple_dec = cfg.Config.n_decoders - 1;
    eliminated = true;
    zero_idiom;
    macro_fusible = false }

let is_reg_move_elimination cfg (i : Inst.t) =
  match i.Inst.mnem, i.Inst.ops with
  | Inst.MOV,
    [ Operand.Reg (Register.Gpr ((Register.W32 | Register.W64), _));
      Operand.Reg (Register.Gpr ((Register.W32 | Register.W64), _)) ] ->
    cfg.Config.mov_elim_gpr
  | (Inst.MOVAPS | Inst.MOVUPS | Inst.MOVAPD | Inst.MOVDQA | Inst.MOVDQU
    | Inst.VMOVAPS | Inst.VMOVUPS | Inst.VMOVDQA | Inst.VMOVDQU),
    [ Operand.Reg (Register.Xmm _ | Register.Ymm _);
      Operand.Reg (Register.Xmm _ | Register.Ymm _) ] ->
    cfg.Config.mov_elim_vec
  | Inst.MOVQ,
    [ Operand.Reg (Register.Xmm _); Operand.Reg (Register.Xmm _) ] ->
    cfg.Config.mov_elim_vec
  | _ -> false

let describe cfg (i : Inst.t) : t =
  check_supported cfg i;
  if is_zero_idiom i then eliminated_desc cfg ~zero_idiom:true
  else if i.Inst.mnem = Inst.NOP || i.Inst.mnem = Inst.NOPL then
    eliminated_desc cfg ~zero_idiom:false
  else if is_reg_move_elimination cfg i then
    eliminated_desc cfg ~zero_idiom:false
  else begin
    let pm = cfg.Config.pm in
    let p = compute_profile cfg i in
    let loads = Inst.loads i in
    let stores = Inst.stores i in
    let load_uops = if loads then [ { kind = Load; ports = pm.Config.load } ] else [] in
    let store_uops =
      if stores then
        [ { kind = Store_addr; ports = pm.Config.store_agu };
          { kind = Store_data; ports = pm.Config.store_data } ]
      else []
    in
    let dispatched = load_uops @ p.comp @ store_uops in
    let n_comp = List.length p.comp in
    (* fused domain: the load micro-fuses with the first compute µop;
       the store pair is one fused µop *)
    let fused_uops =
      max 1
        (n_comp
         + (if loads && n_comp = 0 then 1 else 0)
         + (if stores then 1 else 0))
    in
    let issued_uops =
      if unlaminates cfg i then
        fused_uops
        + (if loads && n_comp > 0 then 1 else 0)
        + (if stores then 1 else 0)
      else fused_uops
    in
    let complex_decode = fused_uops > 1 in
    let available_simple_dec =
      if fused_uops > cfg.Config.n_decoders then 0
      else if complex_decode then cfg.Config.n_decoders - fused_uops
      else cfg.Config.n_decoders - 1
    in
    let macro_fusible =
      p.fusible
      && cfg.Config.macro_fusion
      && not (Inst.mem_operand i <> None
              && List.exists
                   (function Operand.Imm _ -> true | _ -> false)
                   i.Inst.ops)
    in
    { fused_uops; issued_uops; dispatched; latency = p.lat; complex_decode;
      available_simple_dec; eliminated = false; zero_idiom = false;
      macro_fusible }
  end

let supported cfg i =
  match describe cfg i with
  | _ -> true
  | exception Unsupported _ -> false
