lib/db/db.ml: Config Facile_uarch Facile_x86 Inst List Operand Port Register
