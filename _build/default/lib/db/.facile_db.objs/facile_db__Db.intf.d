lib/db/db.mli: Config Facile_uarch Facile_x86 Inst Port
