let eps = 1e-9

(* A very negative finite sentinel used instead of [neg_infinity] so
   that [r * count] never produces NaN for count = 0. *)
let minus_huge = -1e30

(* ------------------------------------------------------------------ *)
(* Lawler's parametric search with positive-cycle detection.           *)

(* Does the graph contain a cycle of positive weight under the edge
   reweighting [w - r * t]? Bellman-Ford from a virtual super-source. *)
let has_positive_cycle g rho =
  let n = Digraph.n_nodes g in
  let dist = Array.make (max n 1) 0.0 in
  let edges = Digraph.edges g in
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass <= n do
    changed := false;
    incr pass;
    List.iter
      (fun e ->
        let w = e.Digraph.weight -. (rho *. float_of_int e.Digraph.count) in
        if dist.(e.Digraph.src) +. w > dist.(e.Digraph.dst) +. 1e-12 then begin
          dist.(e.Digraph.dst) <- dist.(e.Digraph.src) +. w;
          changed := true
        end)
      edges
  done;
  !changed

let lawler ?(epsilon = 1e-9) g =
  let bound =
    List.fold_left
      (fun acc e -> acc +. abs_float e.Digraph.weight)
      1.0 (Digraph.edges g)
  in
  let lo = -.bound and hi = bound in
  if has_positive_cycle g hi then
    failwith "Cycle_ratio.lawler: cycle with zero count";
  if not (has_positive_cycle g lo) then None
  else begin
    let lo = ref lo and hi = ref hi in
    while !hi -. !lo > epsilon do
      let mid = 0.5 *. (!lo +. !hi) in
      if has_positive_cycle g mid then lo := mid else hi := mid
    done;
    Some (0.5 *. (!lo +. !hi))
  end

(* ------------------------------------------------------------------ *)
(* Howard's policy iteration for the maximum cycle ratio.              *)

let howard g =
  let n = Digraph.n_nodes g in
  if n = 0 then None
  else begin
    (* Trim to the cyclic core: repeatedly drop nodes with no outgoing
       edge into the remaining set. Every surviving policy path then
       necessarily reaches a cycle, so node ratios stay finite and the
       improvement step cannot get stuck behind a sink. *)
    let alive = Array.make n true in
    let changed = ref true in
    while !changed do
      changed := false;
      for u = 0 to n - 1 do
        if alive.(u) then begin
          let has_out =
            List.exists
              (fun e -> alive.(e.Digraph.dst))
              (Digraph.out_edges g u)
          in
          if not has_out then begin
            alive.(u) <- false;
            changed := true
          end
        end
      done
    done;
    let out =
      Array.init n (fun u ->
          if not alive.(u) then [||]
          else
            Array.of_list
              (List.filter
                 (fun e -> alive.(e.Digraph.dst))
                 (Digraph.out_edges g u)))
    in
    let policy =
      Array.init n (fun u -> if Array.length out.(u) = 0 then None else Some out.(u).(0))
    in
    let r = Array.make n minus_huge in
    let d = Array.make n 0.0 in
    (* Evaluate the current policy: every node following its policy edge
       either reaches a cycle (giving it that cycle's ratio) or a sink
       (ratio stays [minus_huge]). *)
    let evaluate () =
      let state = Array.make n 0 in
      (* 0 = white, 1 = on current path, 2 = done *)
      Array.fill r 0 n minus_huge;
      Array.fill d 0 n 0.0;
      for s = 0 to n - 1 do
        if state.(s) = 0 then begin
          (* follow the policy, recording the path *)
          let path = ref [] in
          let u = ref s in
          let stop = ref false in
          while not !stop do
            state.(!u) <- 1;
            path := !u :: !path;
            match policy.(!u) with
            | None ->
              (* sink: ratio minus_huge *)
              state.(!u) <- 2;
              stop := true
            | Some e ->
              if state.(e.Digraph.dst) = 1 then begin
                (* found a new cycle: e.dst .. !u *)
                let rec cycle_nodes acc = function
                  | [] -> assert false
                  | v :: rest ->
                    if v = e.Digraph.dst then v :: acc
                    else cycle_nodes (v :: acc) rest
                in
                let cyc = cycle_nodes [] !path in
                let sum_w = ref 0.0 and sum_t = ref 0 in
                List.iter
                  (fun v ->
                    match policy.(v) with
                    | Some pe ->
                      sum_w := !sum_w +. pe.Digraph.weight;
                      sum_t := !sum_t + pe.Digraph.count
                    | None -> assert false)
                  cyc;
                let rc =
                  if !sum_t = 0 then
                    if !sum_w > eps then
                      failwith "Cycle_ratio.howard: cycle with zero count"
                    else minus_huge
                  else !sum_w /. float_of_int !sum_t
                in
                (* set d around the cycle: root = e.dst with d = 0, then
                   in reverse cycle order *)
                List.iter (fun v -> r.(v) <- rc; state.(v) <- 2) cyc;
                d.(e.Digraph.dst) <- 0.0;
                let rev = List.rev cyc in
                (* rev = [ u_k; ...; u_1; root ], where policy u_k = root *)
                List.iter
                  (fun v ->
                    if v <> e.Digraph.dst then
                      match policy.(v) with
                      | Some pe ->
                        d.(v) <-
                          pe.Digraph.weight
                          -. (rc *. float_of_int pe.Digraph.count)
                          +. d.(pe.Digraph.dst)
                      | None -> assert false)
                  rev;
                stop := true
              end
              else if state.(e.Digraph.dst) = 2 then begin
                state.(!u) <- 2;
                stop := true
              end
              else u := e.Digraph.dst
          done;
          (* unwind the path: propagate from each node's successor *)
          List.iter
            (fun v ->
              if state.(v) = 1 || (state.(v) = 2 && r.(v) = minus_huge) then begin
                (match policy.(v) with
                 | None -> r.(v) <- minus_huge; d.(v) <- 0.0
                 | Some pe ->
                   let w = pe.Digraph.dst in
                   if r.(w) <= minus_huge /. 2.0 then begin
                     r.(v) <- minus_huge; d.(v) <- 0.0
                   end
                   else begin
                     r.(v) <- r.(w);
                     d.(v) <-
                       pe.Digraph.weight
                       -. (r.(w) *. float_of_int pe.Digraph.count)
                       +. d.(w)
                   end);
                state.(v) <- 2
              end)
            !path
        end
      done
    in
    (* Improve: for each node pick the out-edge with the
       lexicographically best (successor ratio, reduced value). The
       current policy edge is scored with the same formula, so a switch
       happens only on a strict improvement. *)
    let improve () =
      let improved = ref false in
      for u = 0 to n - 1 do
        match policy.(u) with
        | None -> ()
        | Some cur ->
          let score e =
            let v = e.Digraph.dst in
            ( r.(v),
              e.Digraph.weight
              -. (r.(v) *. float_of_int e.Digraph.count)
              +. d.(v) )
          in
          let better (r1, v1) (r2, v2) =
            r1 > r2 +. eps
            || (abs_float (r1 -. r2) <= eps && v1 > v2 +. 1e-6)
          in
          let best = ref cur and best_score = ref (score cur) in
          Array.iter
            (fun e ->
              let s = score e in
              if better s !best_score then begin
                best := e;
                best_score := s
              end)
            out.(u);
          if !best != cur then begin
            policy.(u) <- Some !best;
            improved := true
          end
      done;
      !improved
    in
    let guard = ref ((n * Digraph.n_edges g) + 64) in
    evaluate ();
    while improve () && !guard > 0 do
      decr guard;
      evaluate ()
    done;
    if !guard <= 0 then
      (* extremely defensive: fall back to the parametric search *)
      lawler g
    else begin
      let best = Array.fold_left max minus_huge r in
      if best <= minus_huge /. 2.0 then None else Some best
    end
  end

(* ------------------------------------------------------------------ *)

let critical_cycle g r =
  let n = Digraph.n_nodes g in
  if n = 0 then None
  else begin
    let rho = r -. 1e-6 in
    let dist = Array.make n 0.0 in
    let pred = Array.make n None in
    let edges = Digraph.edges g in
    let last_updated = ref (-1) in
    for _pass = 0 to n do
      last_updated := -1;
      List.iter
        (fun e ->
          let w = e.Digraph.weight -. (rho *. float_of_int e.Digraph.count) in
          if dist.(e.Digraph.src) +. w > dist.(e.Digraph.dst) +. 1e-12 then begin
            dist.(e.Digraph.dst) <- dist.(e.Digraph.src) +. w;
            pred.(e.Digraph.dst) <- Some e;
            last_updated := e.Digraph.dst
          end)
        edges
    done;
    if !last_updated < 0 then None
    else begin
      (* walk back n steps to land inside the cycle, then collect it *)
      let u = ref !last_updated in
      for _ = 1 to n do
        match pred.(!u) with
        | Some e -> u := e.Digraph.src
        | None -> ()
      done;
      let start = !u in
      let rec collect v acc =
        match pred.(v) with
        | None -> None
        | Some e ->
          let acc = e :: acc in
          if e.Digraph.src = start then Some acc else collect e.Digraph.src acc
      in
      collect start []
    end
  end
