(** Directed graphs with doubly-weighted edges, as used by the
    Precedence analysis: each edge carries a latency [weight] and an
    iteration-distance [count]. The throughput bound of a cycle is
    [sum weight / sum count]. *)

type edge = { src : int; dst : int; weight : float; count : int }

type t

(** [create ~n] is an empty graph on nodes [0 .. n-1]. *)
val create : n:int -> t

val n_nodes : t -> int

(** [add_edge g ~src ~dst ~weight ~count] adds a directed edge.
    @raise Invalid_argument if an endpoint is out of range or
    [count < 0]. *)
val add_edge : t -> src:int -> dst:int -> weight:float -> count:int -> unit

(** Outgoing edges of a node (in insertion order). *)
val out_edges : t -> int -> edge list

(** All edges. *)
val edges : t -> edge list

val n_edges : t -> int
