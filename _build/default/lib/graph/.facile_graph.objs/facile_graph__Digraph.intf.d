lib/graph/digraph.mli:
