lib/graph/cycle_ratio.ml: Array Digraph List
