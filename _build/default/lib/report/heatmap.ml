let shades = " .:-=+*#@"

let render ~max_value ~bins pairs =
  if bins <= 0 || max_value <= 0.0 then invalid_arg "Heatmap.render";
  let grid = Array.make_matrix bins bins 0 in
  let clamp v = min (bins - 1) (max 0 v) in
  let used = ref 0 in
  List.iter
    (fun (m, p) ->
      if m >= 0.0 && m <= max_value && p >= 0.0 && p <= max_value then begin
        incr used;
        let x = clamp (int_of_float (m /. max_value *. float_of_int bins)) in
        let y = clamp (int_of_float (p /. max_value *. float_of_int bins)) in
        grid.(y).(x) <- grid.(y).(x) + 1
      end)
    pairs;
  let maxc =
    Array.fold_left
      (fun acc row -> Array.fold_left max acc row)
      1 grid
  in
  let shade c =
    if c = 0 then ' '
    else begin
      let logmax = log (float_of_int maxc +. 1.0) in
      let idx =
        int_of_float
          (log (float_of_int c +. 1.0) /. logmax
           *. float_of_int (String.length shades - 1))
      in
      shades.[max 1 (min idx (String.length shades - 1))]
    end
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "predicted ^ (%d points shown, max %.0f cycles)\n" !used
       max_value);
  for y = bins - 1 downto 0 do
    Buffer.add_string buf "  |";
    for x = 0 to bins - 1 do
      let c = grid.(y).(x) in
      if c = 0 && x = y then Buffer.add_char buf '\\'
      else Buffer.add_char buf (shade c)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf ("  +" ^ String.make bins '-' ^ "> measured\n");
  Buffer.contents buf
