(** Textual Sankey-style flow rendering (Figure 6): how the set of
    benchmarks migrates between bottleneck categories from one
    microarchitecture to the next. *)

(** [render ~from_label ~to_label flows] where each flow is
    [(source category, destination category, count)]. Shows per-category
    totals on both sides and the individual flows with proportional
    bars. *)
val render :
  from_label:string ->
  to_label:string ->
  (string * string * int) list ->
  string
