(** ASCII heatmaps of measured vs. predicted throughput (Figure 3). *)

(** [render ~max_value ~bins pairs] bins [(measured, predicted)] points
    into a [bins] x [bins] grid over [\[0, max_value\]] on both axes and
    renders density with the characters [" .:-=+*#@"]. The measured
    value runs along the x axis, the prediction up the y axis; the
    diagonal is marked where empty. *)
val render : max_value:float -> bins:int -> (float * float) list -> string
