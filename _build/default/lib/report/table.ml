let pct v = Printf.sprintf "%.2f%%" (v *. 100.0)
let f2 v = Printf.sprintf "%.2f" v
let f4 v = Printf.sprintf "%.4f" v

let render ~header rows =
  let all = header :: rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all
  in
  let width = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> width.(i) <- max width.(i) (String.length cell))
        row)
    all;
  let pad i cell =
    let w = width.(i) in
    let n = w - String.length cell in
    if i = 0 then cell ^ String.make n ' ' else String.make n ' ' ^ cell
  in
  let render_row row =
    String.concat "  " (List.mapi pad row)
  in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') width))
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows)

let print ~title ~header rows =
  Printf.printf "\n%s\n%s\n%s\n" title
    (String.make (String.length title) '=')
    (render ~header rows)
