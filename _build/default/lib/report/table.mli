(** Plain-text table rendering for the experiment reports. *)

(** [render ~header rows] aligns columns (first column left, the rest
    right) and separates the header with a rule. *)
val render : header:string list -> string list list -> string

(** [print ~title ~header rows] renders with a title line to stdout. *)
val print : title:string -> header:string list -> string list list -> unit

(** Format helpers. *)
val pct : float -> string   (** 0.0123 -> "1.23%" *)

val f2 : float -> string    (** two decimals *)

val f4 : float -> string    (** four decimals *)
