let bar n total width =
  if total = 0 then ""
  else String.make (max 1 (n * width / max total 1)) '#'

let render ~from_label ~to_label flows =
  let total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 flows in
  let sum_by f =
    List.fold_left
      (fun acc (s, d, n) ->
        let k = f (s, d) in
        let cur = try List.assoc k acc with Not_found -> 0 in
        (k, cur + n) :: List.remove_assoc k acc)
      [] flows
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let left = sum_by fst and right = sum_by snd in
  let buf = Buffer.create 512 in
  let side label sums =
    Buffer.add_string buf (Printf.sprintf "%s:\n" label);
    List.iter
      (fun (k, n) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-12s %5d (%4.1f%%) %s\n" k n
             (100.0 *. float_of_int n /. float_of_int (max total 1))
             (bar n total 40)))
      sums
  in
  side from_label left;
  Buffer.add_string buf "flows:\n";
  List.sort (fun (_, _, a) (_, _, b) -> compare b a) flows
  |> List.iter (fun (s, d, n) ->
         if n > 0 && s <> d then
           Buffer.add_string buf
             (Printf.sprintf "  %-12s -> %-12s %5d %s\n" s d n
                (bar n total 30)));
  side to_label right;
  Buffer.contents buf
