lib/report/heatmap.ml: Array Buffer List Printf String
