lib/report/heatmap.mli:
