lib/report/sankey.mli:
