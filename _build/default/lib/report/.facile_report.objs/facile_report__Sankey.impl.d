lib/report/sankey.ml: Buffer List Printf String
