lib/report/table.mli:
