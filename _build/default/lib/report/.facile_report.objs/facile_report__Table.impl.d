lib/report/table.ml: Array List Printf String
