(** The decoder component (paper §4.4, Algorithm 1).

    Simulates the allocation of (logical) instructions to the one
    complex + several simple decoders until the first instruction of the
    block lands on the same decoder for the second time, then reads the
    steady-state throughput off the complex-decoder usage counts.

    Extension over the paper's Algorithm 1: microcoded instructions
    (more than 4 fused µops) occupy the complex decoder for
    [ceil (µops / 4)] cycles instead of one. *)

val throughput : Block.t -> float

(** The SimpleDec baseline: [max (n / #decoders) c] where [c] is the
    number of instructions requiring the complex decoder. *)
val simple : Block.t -> float
