open Facile_x86
open Facile_uarch

type weighted = { insts : Inst.t list; weight : float }

type result = {
  cycles : float;
  naive : float;
  bottleneck : Model.component;
  component_values : (Model.component * float) list;
  per_block : (Model.prediction * float) list;
}

(* Frequency-weighted port-contention bound over the pooled µops of the
   whole region: same pairwise-combination heuristic as Ports, but each
   µop counts with its block's weight. *)
let pooled_ports blocks =
  let masks =
    List.concat_map
      (fun ((b : Block.t), w) ->
        List.concat_map
          (fun (l : Block.logical) ->
            if l.Block.eliminated then []
            else
              List.filter_map
                (fun (u : Facile_db.Db.uop) ->
                  if Port.is_empty u.Facile_db.Db.ports then None
                  else Some (u.Facile_db.Db.ports, w))
                l.Block.dispatched)
          b.Block.logicals)
      blocks
  in
  let pc =
    List.fold_left
      (fun acc (m, _) ->
        if List.exists (Port.equal m) acc then acc else m :: acc)
      [] masks
  in
  let pc' =
    List.fold_left
      (fun acc comb ->
        if List.exists (Port.equal comb) acc then acc else comb :: acc)
      []
      (List.concat_map (fun a -> List.map (Port.union a) pc) pc)
  in
  List.fold_left
    (fun best comb ->
      let weight_sum =
        List.fold_left
          (fun acc (m, w) -> if Port.subset m comb then acc +. w else acc)
          0.0 masks
      in
      Float.max best (weight_sum /. float_of_int (Port.cardinal comb)))
    0.0 pc'

let analyze cfg (ws : weighted list) =
  if ws = [] then invalid_arg "Region.analyze: empty region";
  List.iter
    (fun w ->
      if w.weight <= 0.0 then
        invalid_arg "Region.analyze: nonpositive weight")
    ws;
  let total = List.fold_left (fun acc w -> acc +. w.weight) 0.0 ws in
  let blocks =
    List.map
      (fun w -> (Block.of_instructions cfg w.insts, w.weight /. total))
      ws
  in
  let per_block =
    List.map (fun (b, w) -> (Model.predict b, w)) blocks
  in
  let naive =
    List.fold_left
      (fun acc ((p : Model.prediction), w) -> acc +. (w *. p.Model.cycles))
      0.0 per_block
  in
  (* aggregate: pooled ports, pooled issue, per-block weighted front end
     and precedence *)
  let weighted_value c =
    List.fold_left
      (fun acc ((p : Model.prediction), w) ->
        acc +. (w *. List.assoc c p.Model.values))
      0.0 per_block
  in
  let fe =
    (* each block's µops still have to come through the front end; the
       front-end work is serial across the trace *)
    List.fold_left
      (fun acc ((b : Block.t), w) ->
        let p = Model.predict b in
        let fe_bound =
          match p.Model.fe_path with
          | Model.FE_none ->
            Float.max
              (List.assoc Model.Predec p.Model.values)
              (List.assoc Model.Dec p.Model.values)
          | Model.FE_decoders ->
            Float.max
              (List.assoc Model.Predec p.Model.values)
              (List.assoc Model.Dec p.Model.values)
          | Model.FE_lsd -> List.assoc Model.LSD p.Model.values
          | Model.FE_dsb -> List.assoc Model.DSB p.Model.values
        in
        acc +. (w *. fe_bound))
      0.0 blocks
  in
  let issue = weighted_value Model.Issue in
  let ports = pooled_ports blocks in
  let precedence = weighted_value Model.Precedence in
  let component_values =
    [ Model.Predec, fe; Model.Issue, issue; Model.Ports, ports;
      Model.Precedence, precedence ]
  in
  let cycles =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 component_values
  in
  let bottleneck =
    match
      List.find_opt
        (fun (_, v) -> abs_float (v -. cycles) < 1e-9)
        component_values
    with
    | Some (c, _) -> c
    | None -> Model.Issue
  in
  { cycles; naive; bottleneck; component_values; per_block }
