lib/core/dec.mli: Block
