lib/core/dsb.ml: Block Config Facile_uarch
