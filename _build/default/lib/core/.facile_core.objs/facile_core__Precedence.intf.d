lib/core/precedence.mli: Block Facile_graph Facile_x86 Semantics
