lib/core/block.mli: Config Db Encode Facile_db Facile_uarch Facile_x86 Inst Semantics
