lib/core/issue.ml: Block Config Facile_uarch
