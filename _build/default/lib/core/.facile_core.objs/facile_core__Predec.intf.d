lib/core/predec.mli: Block
