lib/core/region.mli: Config Facile_uarch Facile_x86 Inst Model
