lib/core/block.ml: Config Db Decode Encode Facile_db Facile_uarch Facile_x86 Inst List Semantics String
