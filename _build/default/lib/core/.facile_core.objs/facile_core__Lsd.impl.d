lib/core/lsd.ml: Block Config Facile_uarch
