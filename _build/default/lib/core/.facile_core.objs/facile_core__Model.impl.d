lib/core/model.ml: Block Config Dec Dsb Facile_uarch Float Issue List Lsd Ports Precedence Predec
