lib/core/issue.mli: Block
