lib/core/ports.mli: Block Facile_uarch Port
