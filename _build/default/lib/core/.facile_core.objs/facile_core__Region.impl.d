lib/core/region.ml: Block Facile_db Facile_uarch Facile_x86 Float Inst List Model Port
