lib/core/dsb.mli: Block
