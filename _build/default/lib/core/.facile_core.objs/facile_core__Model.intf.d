lib/core/model.mli: Block
