lib/core/predec.ml: Array Block Encode Facile_uarch Facile_x86 List
