lib/core/lsd.mli: Block
