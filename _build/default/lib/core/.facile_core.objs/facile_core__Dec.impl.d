lib/core/dec.ml: Array Block Config Facile_uarch Float List
