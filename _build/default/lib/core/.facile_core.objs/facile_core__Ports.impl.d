lib/core/ports.ml: Block Facile_db Facile_uarch List Port
