lib/core/precedence.ml: Array Block Cycle_ratio Digraph Facile_graph Facile_uarch Facile_x86 Hashtbl Inst List Operand Printf Register Semantics
