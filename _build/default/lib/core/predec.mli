(** The predecoder component (paper §4.3).

    Models 16-byte fetch blocks, the 5-instructions-per-cycle predecode
    width, the one-cycle penalty for instructions whose nominal opcode
    and last byte fall in different fetch blocks, and the three-cycle
    penalty per length-changing prefix (partially hidden behind the
    previous block's predecode time). *)

(** [throughput ~mode b] is the average predecode cycles per iteration
    of [b]. Under [`Unrolled] the steady state repeats after
    [lcm (len, 16) / len] copies; under [`Loop] fetch restarts at the
    block start every iteration. *)
val throughput : mode:[ `Unrolled | `Loop ] -> Block.t -> float

(** The SimplePredec baseline: [len / 16]. *)
val simple : Block.t -> float
