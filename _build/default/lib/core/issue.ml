open Facile_uarch

let throughput (b : Block.t) =
  let n = Block.issued_uops b in
  float_of_int n /. float_of_int b.Block.cfg.Config.issue_width
