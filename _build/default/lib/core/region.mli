(** Multi-block region analysis — the extension the paper sketches as
    future work (§7: "extend Facile to handle more complex code, e.g.,
    involving branches", combining static predictions with profiling
    information).

    A region is a set of basic blocks with execution frequencies (one
    weight per block, e.g. from a profile). Because Facile's component
    bounds are additive resource counts, they compose across blocks:
    execution-port pressure, issue slots, and front-end work aggregate
    frequency-weighted across the region, while dependence chains remain
    per-block (chains across unrelated blocks of a region are broken by
    the intervening control flow).

    The resulting bound is at least as high as the weighted sum of the
    resources, and the region bottleneck is identified the same way as
    for single blocks. *)

open Facile_x86
open Facile_uarch

type weighted = { insts : Inst.t list; weight : float }

type result = {
  cycles : float;
      (** expected steady-state cycles per weighted region execution *)
  naive : float;
      (** frequency-weighted sum of standalone block predictions — the
          estimate without cross-block resource aggregation *)
  bottleneck : Model.component;
  component_values : (Model.component * float) list;
      (** aggregated bounds: Ports/Issue pooled across blocks; front-end
          and Precedence combined per block *)
  per_block : (Model.prediction * float) list;
}

(** [analyze cfg blocks] analyzes a region. Weights must be positive;
    they are normalized to sum to 1 (expected block mix per region
    iteration). Each block is analyzed under its own notion (loop if it
    ends in a branch).
    @raise Invalid_argument on an empty region or nonpositive weight. *)
val analyze : Config.t -> weighted list -> result
