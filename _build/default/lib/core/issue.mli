(** The issue (rename) component (paper §4.7): fused-domain µops after
    unlamination, divided by the issue width. *)

val throughput : Block.t -> float
