(** Analyzed basic blocks: instructions + encoding layout + per-µarch
    instruction descriptors + macro-fusion pairing.

    This is the input representation shared by all of Facile's component
    predictors, the baselines, and the pipeline simulator. *)

open Facile_x86
open Facile_db
open Facile_uarch

(** One raw instruction with its encoding layout and DB descriptor. *)
type entry = {
  inst : Inst.t;
  layout : Encode.layout;
  desc : Db.t;
  fuses_with_next : bool;  (** macro-fuses with the following Jcc *)
  fused_into_prev : bool;  (** this Jcc is absorbed by its predecessor *)
}

(** A {e logical} instruction: either a single instruction or a
    macro-fused pair, with the merged µop-level characteristics.
    This is the unit the decoder, renamer and scheduler operate on. *)
type logical = {
  insts : Inst.t list;
  fused_uops : int;
  issued_uops : int;
  dispatched : Db.uop list;
  latency : int;
  complex_decode : bool;
  available_simple_dec : int;
  eliminated : bool;
  zero_idiom : bool;
  is_branch : bool;
  macro_fused : bool;
  reads : Semantics.resource list;
  writes : Semantics.resource list;
  loads : bool;
}

type t = {
  cfg : Config.t;
  entries : entry list;
  logicals : logical list;
  bytes : string;
  len : int;  (** block length in bytes *)
}

(** [of_instructions cfg insts] encodes and analyzes a block.
    @raise Encode.Unencodable or [Db.Unsupported] on bad input. *)
val of_instructions : Config.t -> Inst.t list -> t

(** [of_bytes cfg code] decodes machine code and analyzes it.
    @raise Decode.Decode_error on undecodable input. *)
val of_bytes : Config.t -> string -> t

(** Whether the block ends in a (possibly conditional) branch and is
    therefore analyzed as a loop ([TP_L]); otherwise as unrolled
    ([TP_U]). *)
val ends_in_branch : t -> bool

(** Total fused-domain µops (decode/DSB/LSD view). *)
val fused_uops : t -> int

(** Total issue-domain µops (after unlamination). *)
val issued_uops : t -> int

(** The JCC-erratum test: does some branch (or macro-fused pair) cross
    or end on a 32-byte boundary? Only meaningful when
    [cfg.jcc_erratum] holds. *)
val jcc_erratum_affected : t -> bool
