open Facile_uarch

let applicable (b : Block.t) =
  b.Block.cfg.Config.lsd_enabled
  && Block.fused_uops b <= b.Block.cfg.Config.idq_size

let throughput (b : Block.t) =
  let n = Block.fused_uops b in
  if n = 0 then 0.0
  else begin
    let cfg = b.Block.cfg in
    let i = cfg.Config.issue_width in
    let u = Config.lsd_unroll cfg n in
    float_of_int (((n * u) + i - 1) / i) /. float_of_int u
  end
