open Facile_x86
open Facile_db
open Facile_uarch

type entry = {
  inst : Inst.t;
  layout : Encode.layout;
  desc : Db.t;
  fuses_with_next : bool;
  fused_into_prev : bool;
}

type logical = {
  insts : Inst.t list;
  fused_uops : int;
  issued_uops : int;
  dispatched : Db.uop list;
  latency : int;
  complex_decode : bool;
  available_simple_dec : int;
  eliminated : bool;
  zero_idiom : bool;
  is_branch : bool;
  macro_fused : bool;
  reads : Semantics.resource list;
  writes : Semantics.resource list;
  loads : bool;
}

type t = {
  cfg : Config.t;
  entries : entry list;
  logicals : logical list;
  bytes : string;
  len : int;
}

let logical_of_entry (e : entry) =
  let d = e.desc in
  { insts = [ e.inst ];
    fused_uops = d.Db.fused_uops;
    issued_uops = d.Db.issued_uops;
    dispatched = d.Db.dispatched;
    latency = d.Db.latency;
    complex_decode = d.Db.complex_decode;
    available_simple_dec = d.Db.available_simple_dec;
    eliminated = d.Db.eliminated;
    zero_idiom = d.Db.zero_idiom;
    is_branch = Inst.is_branch e.inst;
    macro_fused = false;
    reads = (if d.Db.zero_idiom then [] else Semantics.reads e.inst);
    writes = Semantics.writes e.inst;
    loads = Inst.loads e.inst }

(* A macro-fused pair: one fused-domain µop executing on the branch
   unit; the first instruction's load µop (if any) stays micro-fused. *)
let logical_of_pair cfg (first : entry) (jcc : entry) =
  let d = first.desc in
  let load_uops =
    List.filter (fun u -> u.Db.kind = Db.Load) d.Db.dispatched
  in
  let branch_uop =
    { Db.kind = Db.Compute; ports = cfg.Config.pm.Config.branch }
  in
  let reads_first = Semantics.reads first.inst in
  let writes_first = Semantics.writes first.inst in
  let reads_jcc =
    List.filter
      (fun r -> not (List.mem r writes_first))
      (Semantics.reads jcc.inst)
  in
  let dedup l =
    List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l
    |> List.rev
  in
  { insts = [ first.inst; jcc.inst ];
    fused_uops = d.Db.fused_uops;
    issued_uops = d.Db.issued_uops;
    dispatched = load_uops @ [ branch_uop ];
    latency = d.Db.latency;
    complex_decode = d.Db.complex_decode;
    available_simple_dec = d.Db.available_simple_dec;
    eliminated = false;
    zero_idiom = false;
    is_branch = true;
    macro_fused = true;
    reads = dedup (reads_first @ reads_jcc);
    writes = writes_first;
    loads = Inst.loads first.inst }

let build cfg bytes (layouts : Encode.layout list) =
  let raw =
    List.map
      (fun (l : Encode.layout) ->
        { inst = l.Encode.inst;
          layout = l;
          desc = Db.describe cfg l.Encode.inst;
          fuses_with_next = false;
          fused_into_prev = false })
      layouts
  in
  (* mark macro-fusion pairs *)
  let rec mark = function
    | a :: b :: rest
      when cfg.Config.macro_fusion
           && a.desc.Db.macro_fusible
           && Inst.is_cond_branch b.inst ->
      { a with fuses_with_next = true }
      :: { b with fused_into_prev = true }
      :: mark rest
    | a :: rest -> a :: mark rest
    | [] -> []
  in
  let entries = mark raw in
  let rec logicals = function
    | a :: b :: rest when a.fuses_with_next ->
      logical_of_pair cfg a b :: logicals rest
    | a :: rest -> logical_of_entry a :: logicals rest
    | [] -> []
  in
  { cfg; entries; logicals = logicals entries; bytes;
    len = String.length bytes }

let of_instructions cfg insts =
  let bytes, layouts = Encode.encode_block insts in
  build cfg bytes layouts

let of_bytes cfg code = build cfg code (Decode.decode_block code)

let ends_in_branch t =
  match List.rev t.entries with
  | e :: _ -> Inst.is_branch e.inst
  | [] -> false

let fused_uops t =
  List.fold_left (fun acc l -> acc + l.fused_uops) 0 t.logicals

let issued_uops t =
  List.fold_left (fun acc l -> acc + l.issued_uops) 0 t.logicals

let jcc_erratum_affected t =
  (* a jump (or macro-fused jump pair) that crosses or ends on a 32-byte
     boundary prevents the block from being cached in the DSB/LSD *)
  let rec check = function
    | a :: b :: rest when a.fuses_with_next ->
      let s = a.layout.Encode.off in
      let e = b.layout.Encode.off + b.layout.Encode.len in
      touches s e || check rest
    | a :: rest when Inst.is_branch a.inst ->
      let s = a.layout.Encode.off in
      let e = s + a.layout.Encode.len in
      touches s e || check rest
    | _ :: rest -> check rest
    | [] -> false
  and touches s e = s / 32 <> (e - 1) / 32 || e mod 32 = 0 in
  check t.entries
