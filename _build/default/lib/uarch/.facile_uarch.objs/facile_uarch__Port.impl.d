lib/uarch/port.ml: Format List Stdlib String
