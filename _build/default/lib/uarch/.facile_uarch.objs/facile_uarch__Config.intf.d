lib/uarch/config.mli: Port
