lib/uarch/port.mli: Format
