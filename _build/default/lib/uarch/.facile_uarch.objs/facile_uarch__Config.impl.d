lib/uarch/config.ml: List Port String
