type t = int

let empty = 0
let singleton i = 1 lsl i
let of_list l = List.fold_left (fun acc i -> acc lor (1 lsl i)) 0 l

let to_list m =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if m land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go 15 []

let cardinal m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let union = ( lor )
let inter = ( land )
let mem i m = m land (1 lsl i) <> 0
let subset a b = a land lnot b = 0
let equal (a : t) b = a = b
let compare = Stdlib.compare
let is_empty m = m = 0

let to_string m =
  if m = 0 then "none"
  else "p" ^ String.concat "" (List.map string_of_int (to_list m))

let pp fmt m = Format.pp_print_string fmt (to_string m)
