(** Execution-port sets, represented as bit masks over port indices
    0 through 15. Facile's Ports component manipulates these
    combinations heavily, so the representation is a plain [int]. *)

type t = private int

val empty : t
val of_list : int list -> t
val to_list : t -> int list
val singleton : int -> t

(** Number of ports in the set. *)
val cardinal : t -> int

val union : t -> t -> t
val inter : t -> t -> t
val mem : int -> t -> bool

(** [subset a b] holds when every port of [a] is in [b]. *)
val subset : t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val is_empty : t -> bool

(** Prints in the conventional "p015" style. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
