lib/sim/sim.ml: Array Block Config Db Encode Facile_core Facile_db Facile_uarch Facile_x86 Hashtbl Inst List Lsd Operand Port Queue Register Semantics
