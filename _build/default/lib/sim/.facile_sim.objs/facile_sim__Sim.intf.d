lib/sim/sim.mli: Facile_core
