(** Cycle-level pipeline simulator of the paper's Figure-1 machine:
    predecoder → decoders → IDQ (fed by the legacy decode path, the DSB,
    or the LSD) → rename/issue (with unlamination, move elimination and
    macro fusion) → per-port scheduler → execution → in-order retire.

    Two fidelities:
    - [Hardware] plays the role of the real CPUs the paper measures on:
      ports are bound at issue with a greedy least-loaded heuristic,
      ROB/RS capacities are enforced, and taken branches insert a
      one-cycle fetch bubble on the legacy decode path.
    - [Model] is the uiCA-like simulation baseline: the same pipeline
      with idealized port selection (at dispatch, any free allowed
      port) and unbounded buffers.

    Facile's component bounds are all lower bounds on what this machine
    can do, so Facile is optimistic w.r.t. the simulator by design —
    the property the paper observes against real hardware (§6.2). *)

type fidelity = Hardware | Model

exception Did_not_converge
(** Raised if the pipeline fails to retire the requested number of
    iterations within a generous cycle budget (indicates a deadlock —
    never expected on DB-supported blocks). *)

(** [cycles_per_iteration ~mode b] runs the block repeatedly
    ([`Unrolled]: back-to-back copies through the legacy decode path;
    [`Loop]: the steady-state front-end path chosen per Equation 3) and
    returns the measured cycles per iteration, averaged over [measure]
    iterations after [warmup] iterations (defaults 64 and 48; the measure window is a multiple of every front-end repeat period). *)
val cycles_per_iteration :
  ?fidelity:fidelity ->
  ?warmup:int ->
  ?measure:int ->
  mode:[ `Unrolled | `Loop ] ->
  Facile_core.Block.t ->
  float

(** [measure b] — the "measurement" convention used by the evaluation
    harness: hardware fidelity, mode chosen by
    {!Facile_core.Block.ends_in_branch}. *)
val measure : Facile_core.Block.t -> float

(** [uica_like b] — the simulation-based baseline: model fidelity, same
    mode selection. *)
val uica_like : Facile_core.Block.t -> float
