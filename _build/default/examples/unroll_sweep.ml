(* Loop-unrolling sweep: how does the predicted throughput per original
   iteration change when a small loop body is manually unrolled 1x..8x?

   Small loops pay the loop-stream / DSB iteration bubble; unrolling
   amortizes it until the front end or the dependence chain takes over —
   the crossover the TP_L machinery (LSD unrolling, DSB windows) models.

   Run with: dune exec examples/unroll_sweep.exe *)

open Facile_x86
open Facile_uarch
open Facile_core

(* one iteration: a[i] += k; i++ *)
let body = {|
  add qword ptr [rdi+rbx*8], rcx
  add rbx, 1
|}

(* rename the induction-free temporaries per copy so copies stay
   independent except for the induction variable *)
let unrolled_copies n insts =
  List.concat (List.init n (fun _ -> insts))

let () =
  let insts =
    match Asm.parse_block body with Ok l -> l | Error m -> failwith m
  in
  List.iter
    (fun (cfg : Config.t) ->
      Printf.printf "\n%s (issue %d-wide, LSD %s):\n" cfg.Config.name
        cfg.Config.issue_width
        (if cfg.Config.lsd_enabled then "on" else "off");
      Printf.printf
        "  unroll  cycles/orig-iter  front end   bottleneck\n";
      List.iter
        (fun n ->
          let copies = unrolled_copies n insts in
          let looped = Facile_bhive.Genblock.looped copies in
          let block = Block.of_instructions cfg looped in
          let p = Model.predict_l block in
          let per_iter = p.Model.cycles /. float_of_int n in
          Printf.printf "  %5dx  %16.3f  %-10s  %s\n" n per_iter
            (match p.Model.fe_path with
             | Model.FE_lsd -> "LSD"
             | Model.FE_dsb -> "DSB"
             | Model.FE_decoders -> "decoders"
             | Model.FE_none -> "-")
            (String.concat "+"
               (List.map Model.component_name p.Model.bottlenecks)))
        [ 1; 2; 4; 8 ])
    [ Config.by_arch Config.HSW; Config.by_arch Config.SKL;
      Config.by_arch Config.RKL ]
