(* Superoptimizer-style search: the use case the paper motivates for a
   fast throughput model (§1, §7). We search over dependence-preserving
   reorderings of a kernel, using Facile as the cost model, and verify
   the winner against the pipeline simulator.

   Run with: dune exec examples/superopt.exe *)

open Facile_x86
open Facile_uarch
open Facile_core

(* Float-to-int conversion burst followed by counter updates: the
   two-µop conversions cluster on the complex decoder, so the schedule
   determines the decode throughput. *)
let kernel = {|
  cvttsd2si rax, xmm0
  cvttsd2si rbx, xmm1
  cvttsd2si rcx, xmm2
  add    r8, 1
  add    r9, 1
  add    r10, 1
  add    r11, 1
  add    r12, 1
  add    r13, 1
|}

(* Dependence DAG over the block: i -> j when j must stay after i
   (read-after-write, write-after-read, or write-after-write on any
   architectural resource). *)
let dependence_dag insts =
  let arr = Array.of_list insts in
  let n = Array.length arr in
  let reads = Array.map Semantics.reads arr in
  let writes = Array.map Semantics.writes arr in
  let conflict i j =
    let inter a b = List.exists (fun x -> List.mem x b) a in
    inter writes.(i) reads.(j)
    || inter reads.(i) writes.(j)
    || inter writes.(i) writes.(j)
  in
  let preds = Array.make n [] in
  for j = 0 to n - 1 do
    for i = 0 to j - 1 do
      if conflict i j then preds.(j) <- i :: preds.(j)
    done
  done;
  preds

(* A random topological order of the DAG (Kahn's algorithm with random
   tie-breaking). *)
let random_topo_order rng preds n =
  let remaining_preds = Array.map List.length preds in
  let succs = Array.make n [] in
  Array.iteri (fun j ps -> List.iter (fun i -> succs.(i) <- j :: succs.(i)) ps)
    preds;
  let ready = ref [] in
  Array.iteri (fun i p -> if p = 0 then ready := i :: !ready) remaining_preds;
  let order = ref [] in
  while !ready <> [] do
    let k = Facile_bhive.Prng.int rng (List.length !ready) in
    let pick = List.nth !ready k in
    ready := List.filteri (fun i _ -> i <> k) !ready;
    order := pick :: !order;
    List.iter
      (fun j ->
        remaining_preds.(j) <- remaining_preds.(j) - 1;
        if remaining_preds.(j) = 0 then ready := j :: !ready)
      succs.(pick)
  done;
  List.rev !order

let () =
  let insts =
    match Asm.parse_block kernel with Ok l -> l | Error m -> failwith m
  in
  let cfg = Config.by_arch Config.SKL in
  let arr = Array.of_list insts in
  let preds = dependence_dag insts in
  let rng = Facile_bhive.Prng.create 2023 in
  let cost insts =
    (Model.predict_u (Block.of_instructions cfg insts)).Model.cycles
  in
  let baseline = cost insts in
  let candidates = 2000 in
  let best = ref insts and best_cost = ref baseline in
  let t0 = Sys.time () in
  for _ = 1 to candidates do
    let order = random_topo_order rng preds (Array.length arr) in
    let candidate = List.map (fun i -> arr.(i)) order in
    let c = cost candidate in
    if c < !best_cost then begin
      best := candidate;
      best_cost := c
    end
  done;
  let dt = Sys.time () -. t0 in
  Printf.printf "searched %d dependence-preserving schedules in %.2fs \
                 (%.0f candidates/s)\n\n"
    candidates dt (float_of_int candidates /. dt);
  Printf.printf "original schedule:  %.2f cycles/iter (Facile)\n" baseline;
  Printf.printf "best schedule:      %.2f cycles/iter (Facile)\n\n" !best_cost;
  Printf.printf "best schedule found:\n%s\n\n" (Asm.print_block !best);
  let sim insts =
    Facile_sim.Sim.cycles_per_iteration ~fidelity:Facile_sim.Sim.Hardware
      ~mode:`Unrolled
      (Block.of_instructions cfg insts)
  in
  Printf.printf "simulator check: original %.2f -> best %.2f cycles/iter\n"
    (sim insts) (sim !best);
  let p = Model.predict_u (Block.of_instructions cfg !best) in
  Printf.printf "remaining bottleneck: %s\n"
    (String.concat ", " (List.map Model.component_name p.Model.bottlenecks))
