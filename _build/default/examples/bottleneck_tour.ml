(* A tour of the bottleneck classes Facile distinguishes: one small
   kernel per pipeline component, with the interpretable feedback the
   model provides for each.

   Run with: dune exec examples/bottleneck_tour.exe *)

open Facile_x86
open Facile_uarch
open Facile_core

let kernels =
  [ ( "predecode-bound (long instructions, LCP stalls)",
      `Unrolled,
      {|
        add ax, 0x1234
        mov bx, 300
        imul cx, dx, 0x7ff
        add rsi, 0x12345678
      |} );
    ( "decode-bound (multi-uop instructions)",
      `Unrolled,
      {|
        cvttsd2si rax, xmm0
        cvttsd2si rbx, xmm1
        cvttsd2si rcx, xmm2
        xchg r8, r9
      |} );
    ( "issue-bound (more uops than issue slots)",
      `Loop,
      {|
        add rax, 1
        add rbx, 1
        add rcx, 1
        add rdx, 1
        add rsi, 1
        add rdi, 1
        add r8, 1
        add r9, 1
        add r10, 1
        add r11, 1
      |} );
    ( "ports-bound (shuffle pressure on p5)",
      `Loop,
      {|
        pshufd xmm0, xmm1, 0x1b
        pshufd xmm2, xmm3, 0x1b
        pshufd xmm4, xmm5, 0x1b
        add rax, rbx
      |} );
    ( "precedence-bound (loop-carried dependency chain)",
      `Loop,
      {|
        imul rax, rbx
        add rax, rcx
      |} ) ]

let () =
  let cfg = Config.by_arch Config.SKL in
  List.iter
    (fun (title, mode, src) ->
      let insts =
        match Asm.parse_block src with Ok l -> l | Error m -> failwith m
      in
      let insts =
        match mode with
        | `Loop -> Facile_bhive.Genblock.looped insts
        | `Unrolled -> insts
      in
      let block = Block.of_instructions cfg insts in
      let p =
        match mode with
        | `Loop -> Model.predict_l block
        | `Unrolled -> Model.predict_u block
      in
      Printf.printf "== %s ==\n" title;
      Printf.printf "   prediction: %.2f cycles/iteration; bottleneck: %s\n"
        p.Model.cycles
        (String.concat ", " (List.map Model.component_name p.Model.bottlenecks));
      if List.mem Model.Ports p.Model.bottlenecks then
        (match Ports.critical_combination block with
         | Some (pc, count) ->
           Printf.printf "   port feedback: %d uops restricted to %s\n" count
             (Port.to_string pc)
         | None -> ());
      if List.mem Model.Precedence p.Model.bottlenecks then begin
        Printf.printf "   dependency chain:";
        List.iter (Printf.printf " %s") (Precedence.critical_chain block);
        print_newline ()
      end;
      let sim =
        Facile_sim.Sim.cycles_per_iteration ~fidelity:Facile_sim.Sim.Hardware
          ~mode block
      in
      Printf.printf "   simulator measures %.2f cycles/iteration\n\n" sim)
    kernels
