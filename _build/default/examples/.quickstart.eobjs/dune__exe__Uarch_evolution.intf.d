examples/uarch_evolution.mli:
