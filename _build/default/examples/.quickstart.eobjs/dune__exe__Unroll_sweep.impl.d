examples/unroll_sweep.ml: Asm Block Config Facile_bhive Facile_core Facile_uarch Facile_x86 List Model Printf String
