examples/superopt.mli:
