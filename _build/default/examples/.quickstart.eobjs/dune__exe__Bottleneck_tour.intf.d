examples/bottleneck_tour.mli:
