examples/bottleneck_tour.ml: Asm Block Config Facile_bhive Facile_core Facile_sim Facile_uarch Facile_x86 List Model Port Ports Precedence Printf String
