examples/quickstart.mli:
