examples/quickstart.ml: Asm Block Config Facile_core Facile_sim Facile_uarch Facile_x86 List Model Printf
