examples/unroll_sweep.mli:
