examples/superopt.ml: Array Asm Block Config Facile_bhive Facile_core Facile_sim Facile_uarch Facile_x86 List Model Printf Semantics String Sys
