(* Quickstart: parse a basic block, predict its throughput on Skylake,
   and inspect the per-component bounds.

   Run with: dune exec examples/quickstart.exe *)

open Facile_x86
open Facile_uarch
open Facile_core

let kernel = {|
  # one iteration of a dot-product-style loop body
  movsd  xmm0, qword ptr [rax+rbx*8]
  mulsd  xmm0, qword ptr [rcx+rbx*8]
  addsd  xmm1, xmm0
  add    rbx, 1
  cmp    rbx, rdx
  jne    -24
|}

let () =
  let insts =
    match Asm.parse_block kernel with
    | Ok insts -> insts
    | Error m -> failwith m
  in
  let cfg = Config.by_arch Config.SKL in
  let block = Block.of_instructions cfg insts in

  (* the block ends in a branch, so the loop notion (TP_L) applies *)
  let p = Model.predict block in
  Printf.printf "kernel (%d instructions, %d bytes):\n%s\n\n"
    (List.length insts) block.Block.len
    (Asm.print_block insts);
  Printf.printf "predicted inverse throughput on %s: %.2f cycles/iteration\n\n"
    cfg.Config.name p.Model.cycles;

  Printf.printf "component bounds:\n";
  List.iter
    (fun (c, v) ->
      Printf.printf "  %-11s %5.2f%s\n"
        (Model.component_name c) v
        (if List.mem c p.Model.bottlenecks then "   <- bottleneck" else ""))
    p.Model.values;

  (* cross-check against the cycle-level pipeline simulator *)
  let sim = Facile_sim.Sim.measure block in
  Printf.printf "\npipeline simulator measures: %.2f cycles/iteration\n" sim;

  (* the same block analyzed under unrolling (TP_U) *)
  let body = List.filteri (fun i _ -> i < List.length insts - 1) insts in
  let unrolled = Block.of_instructions cfg body in
  Printf.printf "without the branch, unrolled (TP_U): %.2f cycles/iteration\n"
    (Model.predict_u unrolled).Model.cycles
