(* Interpretability across microarchitectures (paper §6.4): how does a
   kernel's predicted throughput and bottleneck structure evolve from
   Sandy Bridge (2011) to Rocket Lake (2021), and where would a
   designer's effort pay off (counterfactual idealization, Table 4)?

   Run with: dune exec examples/uarch_evolution.exe *)

open Facile_x86
open Facile_uarch
open Facile_core

let kernel = {|
  movzx  eax, byte ptr [rsi]
  movzx  ebx, byte ptr [rsi+1]
  lea    rcx, [rax+rbx*2]
  imul   ecx, ecx, 31
  add    edx, ecx
  shl    edx, 3
  xor    edx, ecx
  add    rsi, 2
|}

let () =
  let insts =
    match Asm.parse_block kernel with Ok l -> l | Error m -> failwith m
  in
  Printf.printf "kernel:\n%s\n\n" (Asm.print_block insts);
  Printf.printf "%-14s %7s  %-22s %s\n" "uArch" "cycles" "bottleneck"
    "speedup if idealized (Predec/Dec/Ports/Prec)";
  List.iter
    (fun (cfg : Config.t) ->
      let block = Block.of_instructions cfg insts in
      let p = Model.predict_u block in
      let speedup c = Model.speedup_idealizing block c in
      Printf.printf "%-14s %7.2f  %-22s %.2f / %.2f / %.2f / %.2f\n"
        cfg.Config.name p.Model.cycles
        (String.concat "+" (List.map Model.component_name p.Model.bottlenecks))
        (speedup Model.Predec) (speedup Model.Dec) (speedup Model.Ports)
        (speedup Model.Precedence))
    Config.all;
  print_newline ();
  (* the same analysis for the loop variant *)
  let looped = Facile_bhive.Genblock.looped insts in
  Printf.printf "as a loop (TP_L), front-end path per uarch:\n";
  List.iter
    (fun (cfg : Config.t) ->
      let block = Block.of_instructions cfg looped in
      let p = Model.predict_l block in
      Printf.printf "  %-14s %5.2f cycles via %s\n" cfg.Config.name
        p.Model.cycles
        (match p.Model.fe_path with
         | Model.FE_decoders -> "legacy decoders (JCC erratum)"
         | Model.FE_lsd -> "LSD"
         | Model.FE_dsb -> "DSB"
         | Model.FE_none -> "-"))
    Config.all
