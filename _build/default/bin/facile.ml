(* Command-line front end, the role facile.py plays for the original
   tool: predict basic-block throughput, explain bottlenecks, sweep
   microarchitectures, or run the reference pipeline simulator. *)

open Cmdliner
open Facile_x86
open Facile_uarch
open Facile_core

let read_input = function
  | Some path ->
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  | None ->
    let buf = Buffer.create 1024 in
    (try
       while true do
         Buffer.add_channel buf stdin 1
       done
     with End_of_file -> ());
    Buffer.contents buf

let unhex s =
  let clean =
    String.to_seq s
    |> Seq.filter (fun c ->
           not (c = ' ' || c = '\n' || c = '\t' || c = '\r'))
    |> String.of_seq
  in
  if String.length clean mod 2 <> 0 then
    failwith "hex input must have an even number of digits";
  String.init
    (String.length clean / 2)
    (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub clean (2 * i) 2)))

let load_block cfg ~hex ~file =
  if hex then Block.of_bytes cfg (unhex (read_input file))
  else
    match Asm.parse_block (read_input file) with
    | Ok insts -> Block.of_instructions cfg insts
    | Error m -> failwith ("cannot parse assembly: " ^ m)

let mode_of_block block = function
  | "loop" -> `Loop
  | "unroll" -> `Unrolled
  | "auto" -> if Block.ends_in_branch block then `Loop else `Unrolled
  | m -> failwith ("unknown mode: " ^ m ^ " (expected loop|unroll|auto)")

let predict_block block mode =
  match mode with
  | `Loop -> Model.predict_l block
  | `Unrolled -> Model.predict_u block

let print_prediction cfg block mode =
  let p = predict_block block mode in
  Printf.printf "block: %d instructions, %d bytes, %d fused-domain uops\n"
    (List.length block.Block.entries)
    block.Block.len (Block.fused_uops block);
  Printf.printf "uarch: %s (%s), mode: %s\n" cfg.Config.name cfg.Config.abbrev
    (match mode with `Loop -> "loop (TP_L)" | `Unrolled -> "unrolled (TP_U)");
  Printf.printf "predicted inverse throughput: %.2f cycles/iteration\n\n"
    p.Model.cycles;
  Printf.printf "component bounds:\n";
  List.iter
    (fun (c, v) ->
      let tag = if List.mem c p.Model.bottlenecks then "  <- bottleneck" else "" in
      Printf.printf "  %-11s %6.2f%s\n" (Model.component_name c) v tag)
    p.Model.values;
  p

(* ----- predict ----- *)

let arch_arg =
  let doc = "Target microarchitecture (SNB, IVB, HSW, BDW, SKL, CLX, ICL, TGL, RKL)." in
  Arg.(value & opt string "SKL" & info [ "a"; "arch" ] ~docv:"ARCH" ~doc)

let mode_arg =
  let doc = "Throughput notion: loop (TP_L), unroll (TP_U), or auto." in
  Arg.(value & opt string "auto" & info [ "m"; "mode" ] ~docv:"MODE" ~doc)

let hex_arg =
  let doc = "Treat the input as hex-encoded machine code instead of assembly." in
  Arg.(value & flag & info [ "x"; "hex" ] ~doc)

let file_arg =
  let doc = "Input file (defaults to stdin)." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let with_cfg arch f =
  match Config.of_abbrev arch with
  | Some cfg -> (try f cfg; 0 with Failure m -> prerr_endline ("error: " ^ m); 1)
  | None -> prerr_endline ("unknown microarchitecture: " ^ arch); 1

let predict_cmd =
  let run arch mode hex file =
    with_cfg arch (fun cfg ->
        let block = load_block cfg ~hex ~file in
        ignore (print_prediction cfg block (mode_of_block block mode)))
  in
  Cmd.v (Cmd.info "predict" ~doc:"Predict basic-block throughput.")
    Term.(const run $ arch_arg $ mode_arg $ hex_arg $ file_arg)

(* ----- explain ----- *)

let explain_cmd =
  let run arch mode hex file =
    with_cfg arch (fun cfg ->
        let block = load_block cfg ~hex ~file in
        let mode = mode_of_block block mode in
        let p = print_prediction cfg block mode in
        print_newline ();
        if List.mem Model.Precedence p.Model.bottlenecks then begin
          Printf.printf "critical dependency chain (instr:value:def/use):\n";
          List.iter (Printf.printf "  %s\n") (Precedence.critical_chain block)
        end;
        if List.mem Model.Ports p.Model.bottlenecks then begin
          match Ports.critical_combination block with
          | Some (pc, n) ->
            Printf.printf "critical port combination: %s (%d uops -> %.2f)\n"
              (Port.to_string pc) n
              (float_of_int n /. float_of_int (Port.cardinal pc))
          | None -> ()
        end;
        (match mode with
         | `Loop ->
           Printf.printf "front-end path: %s\n"
             (match p.Model.fe_path with
              | Model.FE_decoders -> "legacy decoders (JCC erratum)"
              | Model.FE_lsd -> "loop stream detector"
              | Model.FE_dsb -> "decoded stream buffer"
              | Model.FE_none -> "-")
         | `Unrolled -> ());
        Printf.printf "\ncounterfactual speedups (component made infinitely fast):\n";
        List.iter
          (fun c ->
            Printf.printf "  %-11s %.2fx\n" (Model.component_name c)
              (Model.speedup_idealizing block c))
          Model.[ Predec; Dec; Issue; Ports; Precedence ])
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Predict and explain bottlenecks with interpretable feedback.")
    Term.(const run $ arch_arg $ mode_arg $ hex_arg $ file_arg)

(* ----- sweep ----- *)

let sweep_cmd =
  let run mode hex file =
    (try
       (* read the input once: stdin cannot be re-read per µarch *)
       let text = read_input file in
       let build cfg =
         if hex then Block.of_bytes cfg (unhex text)
         else
           match Asm.parse_block text with
           | Ok insts -> Block.of_instructions cfg insts
           | Error m -> failwith ("cannot parse assembly: " ^ m)
       in
       let blocks = List.map (fun cfg -> (cfg, build cfg)) Config.all in
       Printf.printf "%-14s %6s  %-24s\n" "uArch" "cycles" "bottlenecks";
       List.iter
         (fun ((cfg : Config.t), block) ->
           let p = predict_block block (mode_of_block block mode) in
           Printf.printf "%-14s %6.2f  %s\n" cfg.Config.name p.Model.cycles
             (String.concat "+"
                (List.map Model.component_name p.Model.bottlenecks)))
         blocks;
       0
     with Failure m -> prerr_endline ("error: " ^ m); 1)
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Predict across all nine microarchitectures.")
    Term.(const run $ mode_arg $ hex_arg $ file_arg)

(* ----- simulate ----- *)

let simulate_cmd =
  let run arch mode hex file =
    with_cfg arch (fun cfg ->
        let block = load_block cfg ~hex ~file in
        let mode = mode_of_block block mode in
        let p = predict_block block mode in
        let hw =
          Facile_sim.Sim.cycles_per_iteration ~fidelity:Facile_sim.Sim.Hardware
            ~mode block
        in
        Printf.printf
          "facile: %.2f cycles/iter; pipeline simulator: %.2f cycles/iter \
           (%.1f%% difference)\n"
          p.Model.cycles hw
          (100.0 *. abs_float (hw -. p.Model.cycles) /. Float.max hw 1e-9))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Compare the analytical prediction against the pipeline simulator.")
    Term.(const run $ arch_arg $ mode_arg $ hex_arg $ file_arg)

(* ----- isa: dump the instruction database ----- *)

let isa_cmd =
  let run arch filter =
    with_cfg arch (fun cfg ->
        (* describe each distinct mnemonic once, on register operands *)
        let rng = Facile_bhive.Prng.create 1 in
        let seen = Hashtbl.create 128 in
        let rows = ref [] in
        List.iter
          (fun profile ->
            for _ = 1 to 3000 do
              let i =
                Facile_bhive.Genblock.random_inst rng profile ~allow_fma:true
              in
              let name = Inst.mnemonic_name i.Inst.mnem in
              let mem = Inst.mem_operand i <> None in
              let key = (name, mem) in
              if
                (not (Hashtbl.mem seen key))
                && (filter = "" || name = String.lowercase_ascii filter)
              then begin
                match Facile_db.Db.describe cfg i with
                | d ->
                  Hashtbl.add seen key ();
                  let ports =
                    String.concat "+"
                      (List.map
                         (fun (u : Facile_db.Db.uop) ->
                           Facile_uarch.Port.to_string u.Facile_db.Db.ports)
                         d.Facile_db.Db.dispatched)
                  in
                  rows :=
                    [ (if mem then name ^ " (mem)" else name);
                      string_of_int d.Facile_db.Db.fused_uops;
                      string_of_int d.Facile_db.Db.issued_uops;
                      string_of_int d.Facile_db.Db.latency;
                      (if d.Facile_db.Db.eliminated then "elim"
                       else if ports = "" then "-"
                       else ports);
                      (if d.Facile_db.Db.macro_fusible then "yes" else "") ]
                    :: !rows
                | exception Facile_db.Db.Unsupported _ -> ()
              end
            done)
          Facile_bhive.Genblock.all_profiles;
        let rows = List.sort_uniq compare !rows in
        Printf.printf
          "Instruction characteristics on %s (register operand forms):\n\n"
          cfg.Config.name;
        print_endline
          (Facile_report.Table.render
             ~header:
               [ "mnemonic"; "fused"; "issued"; "lat"; "ports"; "fuses" ]
             rows))
  in
  let filter_arg =
    let doc = "Only show this mnemonic." in
    Arg.(value & opt string "" & info [ "f"; "filter" ] ~docv:"MNEMONIC" ~doc)
  in
  Cmd.v
    (Cmd.info "isa"
       ~doc:"Dump the per-microarchitecture instruction database.")
    Term.(const run $ arch_arg $ filter_arg)

(* ----- region: weighted multi-block analysis ----- *)

let region_cmd =
  let run arch file =
    with_cfg arch (fun cfg ->
        (* input format: blocks separated by lines "== <weight>" *)
        let text = read_input file in
        let sections =
          String.split_on_char '\n' text
          |> List.fold_left
               (fun acc line ->
                 let t = String.trim line in
                 if String.length t >= 2 && String.sub t 0 2 = "==" then
                   let w =
                     float_of_string
                       (String.trim (String.sub t 2 (String.length t - 2)))
                   in
                   (w, Buffer.create 64) :: acc
                 else begin
                   (match acc with
                    | (_, buf) :: _ ->
                      Buffer.add_string buf line;
                      Buffer.add_char buf '\n'
                    | [] -> ());
                   acc
                 end)
               []
          |> List.rev
        in
        if sections = [] then
          failwith "no blocks: separate blocks with '== <weight>' lines";
        let region =
          List.map
            (fun (w, buf) ->
              match Asm.parse_block (Buffer.contents buf) with
              | Ok insts -> { Region.insts; weight = w }
              | Error m -> failwith m)
            sections
        in
        let r = Region.analyze cfg region in
        Printf.printf
          "region of %d blocks on %s:\n\
          \  naive weighted sum:      %.2f cycles\n\
          \  aggregated region bound: %.2f cycles\n\
          \  bottleneck:              %s\n"
          (List.length region) cfg.Config.name r.Region.naive r.Region.cycles
          (Model.component_name r.Region.bottleneck);
        List.iter
          (fun (c, v) ->
            Printf.printf "    %-11s %.2f\n" (Model.component_name c) v)
          r.Region.component_values)
  in
  Cmd.v
    (Cmd.info "region"
       ~doc:
         "Analyze a multi-block region with execution frequencies \
          (blocks separated by '== <weight>' lines).")
    Term.(const run $ arch_arg $ file_arg)

(* ----- disasm: decode machine code with layout details ----- *)

let disasm_cmd =
  let run arch file =
    with_cfg arch (fun cfg ->
        let code = unhex (read_input file) in
        let block = Block.of_bytes cfg code in
        Printf.printf "%-6s %-4s %-22s %-40s %s\n" "off" "len" "bytes"
          "instruction" "uops/lat";
        List.iter
          (fun (e : Block.entry) ->
            let lay = e.Block.layout in
            let bytes =
              String.concat ""
                (List.init lay.Encode.len (fun i ->
                     Printf.sprintf "%02x"
                       (Char.code code.[lay.Encode.off + i])))
            in
            let d = e.Block.desc in
            Printf.printf "%-6d %-4d %-22s %-40s %d uop%s, lat %d%s%s%s\n"
              lay.Encode.off lay.Encode.len bytes
              (Inst.to_string e.Block.inst)
              d.Facile_db.Db.fused_uops
              (if d.Facile_db.Db.fused_uops = 1 then "" else "s")
              d.Facile_db.Db.latency
              (if lay.Encode.lcp then ", LCP" else "")
              (if d.Facile_db.Db.eliminated then ", eliminated" else "")
              (if e.Block.fuses_with_next then ", fuses with next" else ""))
          block.Block.entries)
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Disassemble hex machine code with per-instruction layout and \
             µop information.")
    Term.(const run $ arch_arg $ file_arg)

let () =
  let info =
    Cmd.info "facile" ~version:"1.0"
      ~doc:"Fast, accurate, and interpretable basic-block throughput prediction."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ predict_cmd; explain_cmd; sweep_cmd; simulate_cmd; isa_cmd;
            region_cmd; disasm_cmd ]))
